package clustercolor

import (
	"math"
	"strings"
	"testing"

	"clustercolor/internal/core"
)

func mustGNP(t *testing.T, n int, p float64, seed uint64) *Graph {
	t.Helper()
	h, err := GNP(n, p, seed)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestColorQuickstart(t *testing.T) {
	h := mustGNP(t, 300, 0.05, 42)
	res, err := Color(h, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(h, res.Colors()); err != nil {
		t.Fatal(err)
	}
	if res.NumColors() > h.MaxDegree()+1 {
		t.Fatalf("used %d colors for Δ=%d", res.NumColors(), h.MaxDegree())
	}
	if res.Rounds() <= 0 {
		t.Fatal("no rounds recorded")
	}
	if !strings.Contains(res.CostSummary(), "rounds=") {
		t.Fatal("cost summary empty")
	}
	if res.ColorOf(0) < 1 {
		t.Fatal("ColorOf out of range")
	}
}

func TestColorAllTopologies(t *testing.T) {
	h := mustGNP(t, 120, 0.08, 7)
	tests := []struct {
		name string
		opts Options
	}{
		{name: "singleton", opts: Options{Topology: Singleton, Seed: 2}},
		{name: "star", opts: Options{Topology: StarCluster, MachinesPerCluster: 4, Seed: 2}},
		{name: "path", opts: Options{Topology: PathCluster, MachinesPerCluster: 3, Seed: 2}},
		{name: "tree", opts: Options{Topology: TreeCluster, MachinesPerCluster: 5, RedundantLinks: 2, Seed: 2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res, err := Color(h, tt.opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(h, res.Colors()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestVerifyRejectsBadColorings(t *testing.T) {
	h := Clique(4)
	res, err := Color(h, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	good := res.Colors()
	if err := Verify(h, good); err != nil {
		t.Fatal(err)
	}
	// Wrong length.
	if err := Verify(h, good[:2]); err == nil {
		t.Fatal("short assignment accepted")
	}
	// Monochromatic edge.
	bad := append([]int(nil), good...)
	bad[1] = bad[0]
	if err := Verify(h, bad); err == nil {
		t.Fatal("monochromatic edge accepted")
	}
	// Out-of-range color.
	bad2 := append([]int(nil), good...)
	bad2[0] = h.MaxDegree() + 2
	if err := Verify(h, bad2); err == nil {
		t.Fatal("out-of-range color accepted")
	}
}

func TestPowerGraphColoring(t *testing.T) {
	// Corollary 1.3's shape: distance-2 coloring via the square graph.
	g := mustGNP(t, 150, 0.03, 11)
	h2, err := Power(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Color(h2, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(h2, res.Colors()); err != nil {
		t.Fatal(err)
	}
	// The coloring of the square is a distance-2 coloring of g.
	colors := res.Colors()
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			if colors[v] == colors[int(u)] {
				t.Fatalf("distance-1 conflict %d,%d", v, u)
			}
			for _, w := range g.Neighbors(int(u)) {
				if int(w) != v && colors[v] == colors[int(w)] {
					t.Fatalf("distance-2 conflict %d,%d", v, w)
				}
			}
		}
	}
}

func TestDefaultBandwidthIsLogarithmic(t *testing.T) {
	if DefaultBandwidth(1024) >= DefaultBandwidth(1<<20) {
		t.Fatal("bandwidth not increasing")
	}
	if DefaultBandwidth(1<<20) > 100 {
		t.Fatalf("bandwidth %d too large for 2^20 machines", DefaultBandwidth(1<<20))
	}
}

func TestGraphBuilderFacade(t *testing.T) {
	b := NewGraphBuilder(3)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	h := b.Build()
	res, err := Color(h, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(h, res.Colors()); err != nil {
		t.Fatal(err)
	}
}

// TestSeedZeroIsExplicit pins the Options.Seed contract: 0 is a usable
// explicit seed (it used to be conflated with "unset" and silently replaced
// by 1), runs are deterministic per seed, and different seeds actually steer
// the randomness.
func TestSeedZeroIsExplicit(t *testing.T) {
	h := mustGNP(t, 200, 0.1, 13)
	run := func(seed uint64) []int {
		t.Helper()
		res, err := Color(h, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(h, res.Colors()); err != nil {
			t.Fatal(err)
		}
		return res.Colors()
	}
	zeroA, zeroB := run(0), run(0)
	for i := range zeroA {
		if zeroA[i] != zeroB[i] {
			t.Fatal("Seed 0 runs not deterministic")
		}
	}
	one := run(1)
	same := true
	for i := range zeroA {
		if zeroA[i] != one[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("Seed 0 produced the same coloring as Seed 1 — still being treated as unset")
	}
}

// TestExplicitParamsRespected pins the Params defaulting path: a non-zero
// Params must be used as given (with Options.Seed layered on top), not
// silently swapped for DefaultParams.
func TestExplicitParamsRespected(t *testing.T) {
	h := mustGNP(t, 150, 0.1, 21)
	p := core.DefaultParams(h.N())
	p.MaxFallbackRounds = 77 // a value DefaultParams never produces
	res, err := Color(h, Options{Seed: 4, Params: p})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(h, res.Colors()); err != nil {
		t.Fatal(err)
	}
	// An invalid explicit Params must surface as an error, not be replaced
	// by defaults.
	bad := core.DefaultParams(h.N())
	bad.Eps = 0.9
	if _, err := Color(h, Options{Seed: 4, Params: bad}); err == nil {
		t.Fatal("invalid explicit Params silently accepted")
	}
}

// TestColoringIndependentOfBuildOrder pins the CSR regression contract: the
// same edge set, inserted in different orders and orientations, must color
// byte-identically (adjacency is canonicalized by Build, and the pipeline
// consumes only that canonical form).
func TestColoringIndependentOfBuildOrder(t *testing.T) {
	ref := mustGNP(t, 120, 0.08, 31)
	var edges [][2]int
	for v := 0; v < ref.N(); v++ {
		for _, w := range ref.Neighbors(v) {
			if int(w) > v {
				edges = append(edges, [2]int{v, int(w)})
			}
		}
	}
	forward := NewGraphBuilder(ref.N())
	for _, e := range edges {
		if err := forward.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	backward := NewGraphBuilder(ref.N())
	for i := len(edges) - 1; i >= 0; i-- {
		if err := backward.AddEdge(edges[i][1], edges[i][0]); err != nil {
			t.Fatal(err)
		}
	}
	opts := Options{Seed: 6}
	resA, err := Color(forward.Build(), opts)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := Color(backward.Build(), opts)
	if err != nil {
		t.Fatal(err)
	}
	a, b := resA.Colors(), resB.Colors()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("vertex %d colored %d vs %d depending on build order", i, a[i], b[i])
		}
	}
}

// TestNewGeneratorsColor runs the full public pipeline on each new scenario
// generator.
func TestNewGeneratorsColor(t *testing.T) {
	gens := map[string]func() (*Graph, error){
		"ba":          func() (*Graph, error) { return BarabasiAlbert(150, 3, 5) },
		"regular":     func() (*Graph, error) { return RandomRegular(150, 6, 5) },
		"ringcliques": func() (*Graph, error) { return RingOfCliques(6, 20) },
		"geometric":   func() (*Graph, error) { return RandomGeometric(200, 0.1, 5) },
	}
	for name, gen := range gens {
		t.Run(name, func(t *testing.T) {
			h, err := gen()
			if err != nil {
				t.Fatal(err)
			}
			res, err := Color(h, Options{Seed: 2})
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(h, res.Colors()); err != nil {
				t.Fatal(err)
			}
			if res.NumColors() > h.MaxDegree()+1 {
				t.Fatalf("%d colors for Δ=%d", res.NumColors(), h.MaxDegree())
			}
		})
	}
}

// TestGeneratorErrorsPropagate pins the wrapper contract: invalid generator
// parameters surface as errors from the public API instead of silently
// degenerate graphs.
func TestGeneratorErrorsPropagate(t *testing.T) {
	if _, err := GNP(100, math.NaN(), 1); err == nil {
		t.Fatal("NaN p accepted by GNP wrapper")
	}
	if _, err := RandomGeometric(100, math.NaN(), 1); err == nil {
		t.Fatal("NaN radius accepted by RandomGeometric wrapper")
	}
	if _, err := BarabasiAlbert(10, 20, 1); err == nil {
		t.Fatal("attach >= n accepted by BarabasiAlbert wrapper")
	}
	if _, err := RandomRegular(5, 3, 1); err == nil {
		t.Fatal("odd n·d accepted by RandomRegular wrapper")
	}
	if _, err := RingOfCliques(3, 0); err == nil {
		t.Fatal("cliqueSize 0 accepted by RingOfCliques wrapper")
	}
	if _, err := Power(Clique(3), 0); err == nil {
		t.Fatal("Power(0) accepted by wrapper")
	}
}
