package clustercolor

import (
	"strings"
	"testing"
)

func TestColorQuickstart(t *testing.T) {
	h := GNP(300, 0.05, 42)
	res, err := Color(h, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(h, res.Colors()); err != nil {
		t.Fatal(err)
	}
	if res.NumColors() > h.MaxDegree()+1 {
		t.Fatalf("used %d colors for Δ=%d", res.NumColors(), h.MaxDegree())
	}
	if res.Rounds() <= 0 {
		t.Fatal("no rounds recorded")
	}
	if !strings.Contains(res.CostSummary(), "rounds=") {
		t.Fatal("cost summary empty")
	}
	if res.ColorOf(0) < 1 {
		t.Fatal("ColorOf out of range")
	}
}

func TestColorAllTopologies(t *testing.T) {
	h := GNP(120, 0.08, 7)
	tests := []struct {
		name string
		opts Options
	}{
		{name: "singleton", opts: Options{Topology: Singleton, Seed: 2}},
		{name: "star", opts: Options{Topology: StarCluster, MachinesPerCluster: 4, Seed: 2}},
		{name: "path", opts: Options{Topology: PathCluster, MachinesPerCluster: 3, Seed: 2}},
		{name: "tree", opts: Options{Topology: TreeCluster, MachinesPerCluster: 5, RedundantLinks: 2, Seed: 2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res, err := Color(h, tt.opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(h, res.Colors()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestVerifyRejectsBadColorings(t *testing.T) {
	h := Clique(4)
	res, err := Color(h, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	good := res.Colors()
	if err := Verify(h, good); err != nil {
		t.Fatal(err)
	}
	// Wrong length.
	if err := Verify(h, good[:2]); err == nil {
		t.Fatal("short assignment accepted")
	}
	// Monochromatic edge.
	bad := append([]int(nil), good...)
	bad[1] = bad[0]
	if err := Verify(h, bad); err == nil {
		t.Fatal("monochromatic edge accepted")
	}
	// Out-of-range color.
	bad2 := append([]int(nil), good...)
	bad2[0] = h.MaxDegree() + 2
	if err := Verify(h, bad2); err == nil {
		t.Fatal("out-of-range color accepted")
	}
}

func TestPowerGraphColoring(t *testing.T) {
	// Corollary 1.3's shape: distance-2 coloring via the square graph.
	g := GNP(150, 0.03, 11)
	h2 := Power(g, 2)
	res, err := Color(h2, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(h2, res.Colors()); err != nil {
		t.Fatal(err)
	}
	// The coloring of the square is a distance-2 coloring of g.
	colors := res.Colors()
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			if colors[v] == colors[int(u)] {
				t.Fatalf("distance-1 conflict %d,%d", v, u)
			}
			for _, w := range g.Neighbors(int(u)) {
				if int(w) != v && colors[v] == colors[int(w)] {
					t.Fatalf("distance-2 conflict %d,%d", v, w)
				}
			}
		}
	}
}

func TestDefaultBandwidthIsLogarithmic(t *testing.T) {
	if DefaultBandwidth(1024) >= DefaultBandwidth(1<<20) {
		t.Fatal("bandwidth not increasing")
	}
	if DefaultBandwidth(1<<20) > 100 {
		t.Fatalf("bandwidth %d too large for 2^20 machines", DefaultBandwidth(1<<20))
	}
}

func TestGraphBuilderFacade(t *testing.T) {
	b := NewGraphBuilder(3)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	h := b.Build()
	res, err := Color(h, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(h, res.Colors()); err != nil {
		t.Fatal(err)
	}
}
