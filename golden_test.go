package clustercolor

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"testing"

	"clustercolor/internal/acd"
	"clustercolor/internal/core"
	"clustercolor/internal/graph"
	"clustercolor/internal/parwork"
	"clustercolor/internal/shard"
	"clustercolor/internal/sketch"
)

// colorFingerprint is a stable FNV-64a hash of a run's full color vector
// (little-endian int32 per vertex). It pins the exact coloring, not just
// its properness: a refactor that changes any vertex's color changes the
// fingerprint.
func colorFingerprint(colors []int) uint64 {
	h := fnv.New64a()
	var buf [4]byte
	for _, c := range colors {
		buf[0] = byte(c)
		buf[1] = byte(c >> 8)
		buf[2] = byte(c >> 16)
		buf[3] = byte(c >> 24)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// goldenCase is one pinned scenario × seed cell.
type goldenCase struct {
	name  string
	build func(seed uint64) (*Graph, error)
	opts  Options
	seed  uint64
	want  uint64 // pinned fingerprint (a mismatch failure prints the repin value)
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{
			name:  "gnp/n300/low",
			build: func(seed uint64) (*Graph, error) { return GNP(300, 0.08, seed) },
			opts:  Options{},
			seed:  3,
			want:  0x603aa863bb1eb991,
		},
		{
			name:  "gnp/n300/low/seed9",
			build: func(seed uint64) (*Graph, error) { return GNP(300, 0.08, seed) },
			opts:  Options{},
			seed:  9,
			want:  0x652984d40b004c6b,
		},
		{
			name:  "ringcliques/high",
			build: func(seed uint64) (*Graph, error) { return RingOfCliques(10, 40) },
			opts:  Options{Topology: StarCluster, MachinesPerCluster: 3},
			seed:  5,
			want:  0x3be2ffefb100de67,
		},
		{
			name:  "ba/tree-clusters",
			build: func(seed uint64) (*Graph, error) { return BarabasiAlbert(260, 6, seed) },
			opts:  Options{Topology: TreeCluster, MachinesPerCluster: 4},
			seed:  7,
			want:  0x0a350649a27f8530,
		},
		{
			name: "geometric/redundant",
			build: func(seed uint64) (*Graph, error) {
				return RandomGeometric(220, 0.16, seed)
			},
			opts: Options{Topology: StarCluster, MachinesPerCluster: 3, RedundantLinks: 2},
			seed: 11,
			want: 0x5559977f8ae710ac,
		},
	}
}

// TestGoldenColorFingerprints pins a stable hash of Color's full output per
// scenario kind × seed × parallelism level: a refactor that changes any
// coloring fails loudly here instead of silently shifting results, and the
// parallel stage loops must reproduce the sequential fingerprint exactly.
func TestGoldenColorFingerprints(t *testing.T) {
	for _, gc := range goldenCases() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			h, err := gc.build(gc.seed)
			if err != nil {
				t.Fatal(err)
			}
			var ref uint64
			for _, par := range []int{1, 4, runtime.GOMAXPROCS(0)} {
				prev := parwork.SetParallelism(par)
				res, err := Color(h, Options{
					Topology:           gc.opts.Topology,
					MachinesPerCluster: gc.opts.MachinesPerCluster,
					RedundantLinks:     gc.opts.RedundantLinks,
					Seed:               gc.seed,
				})
				parwork.SetParallelism(prev)
				if err != nil {
					t.Fatalf("parallelism %d: %v", par, err)
				}
				got := colorFingerprint(res.Colors())
				if par == 1 {
					ref = got
					if got != gc.want {
						t.Errorf("fingerprint = %#016x, pinned %#016x\n"+
							"(if this change to the coloring is intended, repin: %s)",
							got, gc.want, repinLine(gc.name, got))
					}
				} else if got != ref {
					t.Errorf("parallelism %d fingerprint %#016x != sequential %#016x", par, got, ref)
				}
			}
		})
	}
}

func repinLine(name string, got uint64) string {
	return fmt.Sprintf("update goldenCases entry %q to want: %#016x", name, got)
}

// TestGoldenColorFingerprintsSharded pins the partitioned substrate to the
// same fingerprints: routing the decomposition through shard slices with
// boundary exchanges must not move a single color, at any shard count or
// parallelism. The pinned values are shared with TestGoldenColorFingerprints
// — there is one truth, not a sharded variant of it.
func TestGoldenColorFingerprintsSharded(t *testing.T) {
	for _, gc := range goldenCases() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			h, err := gc.build(gc.seed)
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{2, 4} {
				for _, par := range []int{1, 4, runtime.GOMAXPROCS(0)} {
					prev := parwork.SetParallelism(par)
					res, err := Color(h, Options{
						Topology:           gc.opts.Topology,
						MachinesPerCluster: gc.opts.MachinesPerCluster,
						RedundantLinks:     gc.opts.RedundantLinks,
						Shards:             shards,
						Seed:               gc.seed,
					})
					parwork.SetParallelism(prev)
					if err != nil {
						t.Fatalf("shards=%d parallelism=%d: %v", shards, par, err)
					}
					if got := colorFingerprint(res.Colors()); got != gc.want {
						t.Errorf("shards=%d parallelism=%d: fingerprint %#016x, pinned %#016x",
							shards, par, got, gc.want)
					}
				}
			}
		})
	}
}

// decompFingerprint is a stable FNV-64a hash of a decomposition + profile:
// CliqueOf as little-endian int32 per vertex followed by one cabal-flag byte
// per clique. It pins the exact clique structure and classification, not
// just its validity.
func decompFingerprint(d *acd.Decomposition, prof *acd.Profile) uint64 {
	h := fnv.New64a()
	var buf [4]byte
	for _, k := range d.CliqueOf {
		buf[0] = byte(k)
		buf[1] = byte(k >> 8)
		buf[2] = byte(k >> 16)
		buf[3] = byte(k >> 24)
		h.Write(buf[:])
	}
	for _, cab := range prof.IsCabal {
		if cab {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	return h.Sum64()
}

// goldenDecompCase pins one decomposition scenario × seed cell.
type goldenDecompCase struct {
	name  string
	build func(seed uint64) (*Graph, error)
	opts  Options
	seed  uint64
	want  uint64
}

func goldenDecompCases() []goldenDecompCase {
	return []goldenDecompCase{
		{
			name:  "acd/gnp/n300",
			build: func(seed uint64) (*Graph, error) { return GNP(300, 0.08, seed) },
			opts:  Options{},
			seed:  3,
			want:  0xd339907f3b080c35,
		},
		{
			name:  "acd/ringcliques",
			build: func(seed uint64) (*Graph, error) { return RingOfCliques(10, 40) },
			opts:  Options{Topology: StarCluster, MachinesPerCluster: 3},
			seed:  5,
			want:  0xcb309dece80e959f,
		},
		{
			name:  "acd/planted",
			build: func(seed uint64) (*Graph, error) { return plantedGolden(seed) },
			opts:  Options{Topology: TreeCluster, MachinesPerCluster: 4},
			seed:  7,
			want:  0x1204cf504d5262d8,
		},
		{
			name: "acd/geometric/redundant",
			build: func(seed uint64) (*Graph, error) {
				return RandomGeometric(220, 0.16, seed)
			},
			opts: Options{Topology: StarCluster, MachinesPerCluster: 3, RedundantLinks: 2},
			seed: 11,
			want: 0x0b2675dc07c0d875,
		},
	}
}

func plantedGolden(seed uint64) (*Graph, error) {
	h, _, err := PlantedACD(PlantedACDSpec{
		NumCliques:     4,
		CliqueSize:     40,
		DropFraction:   0.04,
		ExternalDegree: 3,
		SparseN:        80,
		SparseP:        0.06,
	}, seed)
	return h, err
}

// TestGoldenDecompositionFingerprints pins a stable hash of the
// decomposition stage's full output (CliqueOf per vertex + cabal flag per
// clique) per scenario × seed × parallelism level: the arena-backed waves
// must reproduce the sequential decomposition bit for bit, and any intended
// change to the decomposition fails loudly here with a repin line.
func TestGoldenDecompositionFingerprints(t *testing.T) {
	for _, gc := range goldenDecompCases() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			h, err := gc.build(gc.seed)
			if err != nil {
				t.Fatal(err)
			}
			cg, _, err := buildClusterGraph(h, Options{
				Topology:           gc.opts.Topology,
				MachinesPerCluster: gc.opts.MachinesPerCluster,
				RedundantLinks:     gc.opts.RedundantLinks,
				Seed:               gc.seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			params := core.DefaultParams(h.N())
			var ref uint64
			for _, par := range []int{1, 4, runtime.GOMAXPROCS(0)} {
				prev := parwork.SetParallelism(par)
				rng := parwork.StreamRNG(gc.seed)
				ws := acd.NewWorkspace()
				d, err := acd.ComputeWith(cg, params.Eps, rng, ws)
				if err == nil {
					var prof *acd.Profile
					prof, err = acd.BuildProfileWith(cg, d, float64(h.MaxDegree()), params.Ell(h.N()), rng, ws)
					if err == nil {
						got := decompFingerprint(d, prof)
						if par == 1 {
							ref = got
							if got != gc.want {
								t.Errorf("fingerprint = %#016x, pinned %#016x\n"+
									"(if this change to the decomposition is intended, repin: update goldenDecompCases entry %q to want: %#016x)",
									got, gc.want, gc.name, got)
							}
						} else if got != ref {
							t.Errorf("parallelism %d fingerprint %#016x != sequential %#016x", par, got, ref)
						}
					}
				}
				parwork.SetParallelism(prev)
				if err != nil {
					t.Fatalf("parallelism %d: %v", par, err)
				}
			}
		})
	}
}

// TestGoldenDecompositionFingerprintsSharded runs the decomposition stage on
// the shard engine at shard counts 2 and 4 and checks it against the same
// pinned fingerprints as the unsharded stage.
func TestGoldenDecompositionFingerprintsSharded(t *testing.T) {
	for _, gc := range goldenDecompCases() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			h, err := gc.build(gc.seed)
			if err != nil {
				t.Fatal(err)
			}
			cg, _, err := buildClusterGraph(h, Options{
				Topology:           gc.opts.Topology,
				MachinesPerCluster: gc.opts.MachinesPerCluster,
				RedundantLinks:     gc.opts.RedundantLinks,
				Seed:               gc.seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			params := core.DefaultParams(h.N())
			for _, shards := range []int{2, 4} {
				for _, par := range []int{1, 4} {
					prev := parwork.SetParallelism(par)
					rng := parwork.StreamRNG(gc.seed)
					ws := acd.NewWorkspace()
					sg, err := graph.NewShardedGraph(cg.H, shards)
					if err == nil {
						se := shard.NewEngine(sg, sketch.MaxKernel{})
						var d *acd.Decomposition
						d, err = acd.ComputeShardedWith(cg, se, params.Eps, rng, ws)
						if err == nil {
							var prof *acd.Profile
							prof, err = acd.BuildProfileShardedWith(cg, se, d, float64(h.MaxDegree()), params.Ell(h.N()), rng, ws)
							if err == nil {
								if got := decompFingerprint(d, prof); got != gc.want {
									t.Errorf("shards=%d parallelism=%d: fingerprint %#016x, pinned %#016x",
										shards, par, got, gc.want)
								}
							}
						}
					}
					parwork.SetParallelism(prev)
					if err != nil {
						t.Fatalf("shards=%d parallelism=%d: %v", shards, par, err)
					}
				}
			}
		})
	}
}
