package clustercolor

import (
	"fmt"

	"clustercolor/internal/baseline"
	"clustercolor/internal/cluster"
	"clustercolor/internal/coloring"
	"clustercolor/internal/core"
	"clustercolor/internal/graph"
	"clustercolor/internal/network"
	"clustercolor/internal/virtual"
)

// ColorClustered colors the cluster graph defined by a machine-to-cluster
// assignment over an explicit communication network g (Definition 3.1): the
// vertices of the colored graph H are the clusters, and two clusters are
// adjacent iff some link of g connects them. This is the workflow of
// algorithms that contract edges or grow clusters (network decomposition,
// maximum-flow j-trees — Section 1.1) and then need to color the contracted
// graph.
//
// clusterOf must assign every machine a cluster id in [0, k) for some k,
// and every cluster must induce a connected subgraph of g.
func ColorClustered(g *Graph, clusterOf []int, opts Options) (*Result, error) {
	h, exp, err := contract(g, clusterOf)
	if err != nil {
		return nil, err
	}
	bw := opts.BandwidthBits
	if bw == 0 {
		bw = DefaultBandwidth(g.N())
	}
	cost, err := network.NewCostModel(bw)
	if err != nil {
		return nil, err
	}
	cg, err := cluster.New(h, exp, cost)
	if err != nil {
		return nil, err
	}
	params := resolveParams(opts, h.N())
	col, stats, err := core.Color(cg, params)
	if err != nil {
		return nil, err
	}
	colors := make([]int32, h.N())
	for v := 0; v < h.N(); v++ {
		colors[v] = col.Get(v)
	}
	return &Result{colors: colors, stats: stats, cost: cost}, nil
}

// ContractedGraph returns the cluster graph H induced by clusterOf over g,
// without coloring it. Useful to inspect Δ or verify colorings of clustered
// instances.
func ContractedGraph(g *Graph, clusterOf []int) (*Graph, error) {
	h, _, err := contract(g, clusterOf)
	return h, err
}

func contract(g *Graph, clusterOf []int) (*Graph, *graph.Expansion, error) {
	if len(clusterOf) != g.N() {
		return nil, nil, fmt.Errorf("clustercolor: %d assignments for %d machines", len(clusterOf), g.N())
	}
	k := 0
	for m, c := range clusterOf {
		if c < 0 {
			return nil, nil, fmt.Errorf("clustercolor: machine %d has negative cluster %d", m, c)
		}
		if c+1 > k {
			k = c + 1
		}
	}
	machines := make([][]int32, k)
	for m, c := range clusterOf {
		machines[c] = append(machines[c], int32(m))
	}
	for c, ms := range machines {
		if len(ms) == 0 {
			return nil, nil, fmt.Errorf("clustercolor: cluster %d has no machines (ids must be dense)", c)
		}
	}
	b := graph.NewBuilder(k)
	for m := 0; m < g.N(); m++ {
		cu := clusterOf[m]
		for _, m2 := range g.Neighbors(m) {
			cv := clusterOf[m2]
			if cu != cv {
				// Each link is seen from both endpoints; Build merges the
				// repeats into one H-edge.
				if err := b.AddEdge(cu, cv); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	h := b.Build()
	exp := &graph.Expansion{G: g, ClusterOf: append([]int(nil), clusterOf...), Machines: machines}
	return h, exp, nil
}

// ColorDistance2 computes a distance-2 coloring of g (Corollary 1.3) via
// the virtual-graph route of Appendix A: H = G² with closed-neighborhood
// supports (congestion 2, dilation ≤ 2), every round charged with the
// congestion overhead factor. The returned colors, indexed by g's vertices,
// are distinct within every distance-2 pair and use at most Δ²+1 colors.
func ColorDistance2(g *Graph, opts Options) (*Result, error) {
	vg, err := virtual.Distance2(g)
	if err != nil {
		return nil, err
	}
	bw := opts.BandwidthBits
	if bw == 0 {
		bw = DefaultBandwidth(g.N())
	}
	cg, cost, err := vg.ClusterView(bw)
	if err != nil {
		return nil, err
	}
	params := resolveParams(opts, vg.H.N())
	col, stats, err := core.Color(cg, params)
	if err != nil {
		return nil, err
	}
	colors := make([]int32, vg.H.N())
	for v := 0; v < vg.H.N(); v++ {
		colors[v] = col.Get(v)
	}
	return &Result{colors: colors, stats: stats, cost: cost}, nil
}

// BaselineKind selects a comparison algorithm for ColorBaseline.
type BaselineKind int

const (
	// LubyBaseline is the Johansson/Luby O(log n)-round random-trials
	// algorithm, paying the honest Θ(Δ/log n) palette-learning cost per
	// wave on cluster graphs.
	LubyBaseline BaselineKind = iota + 1
	// PaletteSparsificationBaseline is the FGH+24-style list algorithm
	// (the previous best for cluster graphs, O(log² n) rounds).
	PaletteSparsificationBaseline
)

// ColorBaseline runs a comparison algorithm under the same model and cost
// accounting as Color.
func ColorBaseline(h *Graph, kind BaselineKind, opts Options) (*Result, error) {
	cg, cost, err := buildClusterGraph(h, opts)
	if err != nil {
		return nil, err
	}
	col := coloring.New(h.N(), h.MaxDegree())
	rng := graph.NewRand(opts.Seed + 11)
	maxWaves := 4*h.N() + 100
	switch kind {
	case LubyBaseline:
		if _, err := baseline.RandomTrials(cg, col, maxWaves, rng); err != nil {
			return nil, err
		}
	case PaletteSparsificationBaseline:
		if _, err := baseline.PaletteSparsification(cg, col, 2.0, maxWaves, rng); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("clustercolor: unknown baseline %d", kind)
	}
	if err := coloring.VerifyComplete(h, col); err != nil {
		return nil, err
	}
	colors := make([]int32, h.N())
	for v := 0; v < h.N(); v++ {
		colors[v] = col.Get(v)
	}
	stats := &core.Stats{
		Path:           "baseline",
		Rounds:         cost.Rounds(),
		PhaseRounds:    cost.PhaseRounds(),
		MaxPayloadBits: cost.MaxPayload(),
		Delta:          h.MaxDegree(),
		Dilation:       cg.Dilation,
	}
	return &Result{colors: colors, stats: stats, cost: cost}, nil
}
