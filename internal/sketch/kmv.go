package sketch

import (
	"math"
	"sort"

	"clustercolor/internal/parwork"
)

// The k-min-values kernel: a row of width k holds the k smallest distinct
// 15-bit hashes seen, sorted ascending, padded with a sentinel that sorts
// last. Merging two rows keeps the k smallest distinct values of the union —
// a semilattice join like the max kernel — and the wire format is the
// delta/Elias-gamma encoding of the sorted values, which undercuts the max
// kernel's O(t)-trial deviation encoding when equal accuracy needs fewer
// minima than trials. It is opt-in (set as an Engine's kernel); the
// decomposition stays on the max kernel, whose semantics the paper's lemmas
// are stated for.

// kmvSentinel marks an unused cell; it is the largest int16, so it sorts
// after every real hash and a fresh row is all-sentinel.
const kmvSentinel = int16(math.MaxInt16)

// kmvRange is the hash range: values are uniform in [0, kmvRange), leaving
// kmvSentinel itself out of range.
const kmvRange = math.MaxInt16

// KMVKernel is the k-min-values kernel. The row width fixes k.
type KMVKernel struct{}

// Name implements Kernel.
func (KMVKernel) Name() string { return "kmv" }

// EmptyCell implements Kernel.
func (KMVKernel) EmptyCell() int16 { return kmvSentinel }

// Fill writes the party's singleton row: its one hash — uniform in
// [0, kmvRange) as a pure function of rowSeed — followed by sentinels.
func (KMVKernel) Fill(row []int16, rowSeed uint64) {
	if len(row) == 0 {
		return
	}
	row[0] = int16(parwork.RowSeed(rowSeed, 0) % kmvRange)
	for i := 1; i < len(row); i++ {
		row[i] = kmvSentinel
	}
}

// Merge implements Kernel via MergeKMV.
func (KMVKernel) Merge(dst, src []int16) { MergeKMV(dst, src) }

// EncodedBits implements Kernel: Elias-gamma of the occupied count, then the
// first value and the successive deltas (≥ 1, values are distinct) in
// Elias-gamma. counts is unused — the encoding needs no scratch.
func (KMVKernel) EncodedBits(row []int16, counts *[]int) int {
	v := kmvOccupied(row)
	bits := eliasGammaBits(uint64(v) + 1)
	if v > 0 {
		bits += eliasGammaBits(uint64(row[0]) + 1)
		for i := 1; i < v; i++ {
			bits += eliasGammaBits(uint64(row[i] - row[i-1]))
		}
	}
	return bits
}

// kmvOccupied returns the number of real (non-sentinel) values, by binary
// search over the sorted row.
func kmvOccupied(row []int16) int {
	return sort.Search(len(row), func(i int) bool { return row[i] == kmvSentinel })
}

// MergeKMV folds src into dst: dst becomes the k smallest distinct values of
// the union, sorted ascending. It panics if the lengths differ. The merge is
// in place — each src value is placed by binary search and an insertion
// shift — so it needs no temporary row; src is ascending, so the loop stops
// at the first value that cannot make the cut.
func MergeKMV(dst, src []int16) {
	k := len(dst)
	if k != len(src) {
		panic("sketch: MergeKMV length mismatch")
	}
	if k == 0 || &dst[0] == &src[0] {
		return // self-merge is a no-op by idempotence
	}
	for _, v := range src {
		if v == kmvSentinel {
			break
		}
		pos := sort.Search(k, func(i int) bool { return dst[i] >= v })
		if pos == k {
			// v exceeds every kept value; so does the rest of src.
			break
		}
		if dst[pos] == v {
			continue // already present
		}
		copy(dst[pos+1:], dst[pos:k-1])
		dst[pos] = v
	}
}

// KMVWidthFor returns the row width k giving relative error ≈ xi for the
// KMV estimator (error ≈ 1/√(k−2)), clamped to at least 8.
func KMVWidthFor(xi float64) int {
	if xi <= 0 || xi >= 1 {
		xi = 0.25
	}
	k := int(math.Ceil(1/(xi*xi))) + 2
	if k < 8 {
		k = 8
	}
	return k
}

// KMVEstimator inverts KMV rows: with the row saturated, the classic
// unbiased estimate is d̂ = (k−1)·R/m where m is the k-th smallest hash and
// R the hash range; short of saturation the row has seen every distinct
// hash, so the occupied count is the estimate. It is stateless.
type KMVEstimator struct{}

// Name implements Estimator.
func (KMVEstimator) Name() string { return "kmv" }

// Estimate implements Estimator.
func (KMVEstimator) Estimate(row []int16) float64 {
	k := len(row)
	v := kmvOccupied(row)
	if v < k {
		return float64(v)
	}
	m := row[k-1]
	if m <= 0 {
		// k distinct values cannot all be ≤ 0; only a width-1 row holding
		// hash 0 gets here, where "at least one element" is all we know.
		return float64(k)
	}
	return float64(k-1) * float64(kmvRange) / float64(m)
}
