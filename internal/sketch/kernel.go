package sketch

import (
	"math/bits"
	"unsafe"

	"clustercolor/internal/parwork"
)

// Empty is the max kernel's identity cell: every geometric sample is ≥ 0, so
// -1 acts as the identity of max-aggregation.
const Empty = int16(-1)

// MaxKernel is the paper's Section 5 fingerprint kernel: cells are maxima of
// independent geometric(1/2) samples, merge is the pointwise max, and the
// wire format is the deviation encoding of Lemmas 5.5–5.6. It is the kernel
// the decomposition runs on.
type MaxKernel struct{}

// Name implements Kernel.
func (MaxKernel) Name() string { return "max" }

// EmptyCell implements Kernel.
func (MaxKernel) EmptyCell() int16 { return Empty }

// Fill draws independent geometric(1/2) samples from the row's counter
// stream: cell j is the trailing zero count of the word RowSeed(rowSeed, j).
// An all-zero word maps to 64 trailing zeros — a legal (astronomically rare)
// sample well inside int16 range.
func (MaxKernel) Fill(row []int16, rowSeed uint64) {
	for j := range row {
		row[j] = int16(bits.TrailingZeros64(parwork.RowSeed(rowSeed, j)))
	}
}

// Merge implements Kernel via MergeMax.
func (MaxKernel) Merge(dst, src []int16) { MergeMax(dst, src) }

// EncodedBits implements Kernel: the deviation encoding of Lemmas 5.5–5.6.
func (MaxKernel) EncodedBits(row []int16, counts *[]int) int {
	k, c := DeviationBaseline(row, *counts)
	*counts = c
	return DeviationBits(row, k)
}

// swarHigh masks the sign bit of each 16-bit lane of a word; xor-ing it
// biases int16 lanes to unsigned order-preserving form and back.
const swarHigh = 0x8000800080008000

// MergeMax folds src into dst pointwise (dst[i] = max(dst[i], src[i])) and
// panics if the lengths differ. This is the hot inner loop of every
// max-kernel fold; the word-at-a-time body below shows up directly in the
// decomposition's wave time, so it is benchmarked in isolation
// (BenchmarkMergeMax, BENCH_sketch.json).
//
// When both rows are 8-byte aligned — arena rows always are, see
// Arena.Reset's stride — four lanes merge per machine word with branch-free
// SWAR compares: sketch maxima are effectively random, so the scalar loop's
// per-cell branch mispredicts about half the time, and removing it is worth
// more than the extra ALU ops. Misaligned or short rows take the scalar
// tail, which the conformance suite pins byte-equal to the SWAR path.
func MergeMax(dst, src []int16) {
	if len(dst) != len(src) {
		panic("sketch: MergeMax length mismatch")
	}
	n := len(src)
	i := 0
	if n >= 8 &&
		uintptr(unsafe.Pointer(&dst[0]))%8 == 0 &&
		uintptr(unsafe.Pointer(&src[0]))%8 == 0 {
		words := n / 4
		dw := unsafe.Slice((*uint64)(unsafe.Pointer(&dst[0])), words)
		sw := unsafe.Slice((*uint64)(unsafe.Pointer(&src[0])), words)
		for w := 0; w < words; w++ {
			x := dw[w] ^ swarHigh // bias lanes to unsigned order
			y := sw[w] ^ swarHigh
			// Borrow-free per-lane subtract: lane = (xlow15 + 0x8000) − ylow15
			// stays in [0x0001, 0xFFFF], so its sign bit is xlow15 ≥ ylow15.
			z := (x | swarHigh) - (y &^ swarHigh)
			// Per-lane x ≥ y (unsigned): high bits differ → x's high bit
			// wins; equal → the low-15 compare in z decides.
			m := ((x &^ y) | (^(x ^ y) & z)) & swarHigh
			// Spread each lane's decision bit to a full-lane mask.
			mask := (m - m>>15) | m
			dw[w] = ((x & mask) | (y &^ mask)) ^ swarHigh
		}
		i = words * 4
	}
	for ; i < n; i++ {
		if src[i] > dst[i] {
			dst[i] = src[i]
		}
	}
}

// MergeMaxGeneric is the reference scalar merge the SWAR kernel is verified
// against; benchmarks keep it around to report the kernel's speedup.
func MergeMaxGeneric(dst, src []int16) {
	if len(dst) != len(src) {
		panic("sketch: MergeMaxGeneric length mismatch")
	}
	dst = dst[:len(src)]
	for i, v := range src {
		if v > dst[i] {
			dst[i] = v
		}
	}
}
