package sketch

import (
	"math"
	"math/bits"
	"unsafe"

	"clustercolor/internal/parwork"
)

// Empty is the max kernel's identity cell: every geometric sample is ≥ 0, so
// -1 acts as the identity of max-aggregation. It is untyped so it serves
// both the kernel's narrow int8 rows and the int16 fingerprint adapter.
const Empty = -1

// MaxCell8 is the saturation ceiling of the max kernel's narrow cells. Fill
// values are trailing-zero counts, at most 64, so organic rows never come
// near it; SaturateCell8 defines the behavior for hand-built or adversarially
// decoded values anyway: cells clamp here, merging preserves the ceiling
// (the max of in-range values is in range), and the estimator clamps
// saturated cells into its top histogram bucket, so a saturated row still
// satisfies the merge laws and estimates to a finite value.
const MaxCell8 = int8(math.MaxInt8)

// SaturateCell8 clamps y into the max kernel's narrow cell range
// [Empty, MaxCell8].
func SaturateCell8(y int) int8 {
	if y > int(MaxCell8) {
		return MaxCell8
	}
	if y < Empty {
		return Empty
	}
	return int8(y)
}

// MaxKernel is the paper's Section 5 fingerprint kernel: cells are maxima of
// independent geometric(1/2) samples, merge is the pointwise max, and the
// wire format is the deviation encoding of Lemmas 5.5–5.6. It is the kernel
// the decomposition runs on. Rows are int8 (see the package doc's cell-width
// contract): values are at most 64, so the narrow cells are exact, and the
// halved row footprint halves the memory traffic of every max-kernel fold.
type MaxKernel struct{}

// Name implements Kernel.
func (MaxKernel) Name() string { return "max" }

// EmptyCell implements Kernel.
func (MaxKernel) EmptyCell() int8 { return Empty }

// Fill draws independent geometric(1/2) samples from the row's counter
// stream: cell j is the trailing zero count of the word RowSeed(rowSeed, j).
// An all-zero word maps to 64 trailing zeros — a legal (astronomically rare)
// sample well inside the narrow cell range; SaturateCell8 guards the clamp
// anyway so the value contract holds even for adversarial fills.
func (MaxKernel) Fill(row []int8, rowSeed uint64) {
	for j := range row {
		row[j] = SaturateCell8(bits.TrailingZeros64(parwork.RowSeed(rowSeed, j)))
	}
}

// Merge implements Kernel via MergeMax8.
func (MaxKernel) Merge(dst, src []int8) { MergeMax8(dst, src) }

// MergePair implements PairMerger: the collect wave's fold is bound by the
// memory latency of fetching scattered neighbor rows, and folding two rows
// per pass keeps two miss streams in flight while touching dst once.
func (MaxKernel) MergePair(dst, a, b []int8) { MergeMax8Pair(dst, a, b) }

// EncodedBits implements Kernel: the deviation encoding of Lemmas 5.5–5.6.
// The encoding is value-based, so the narrow storage width does not change a
// single bit of the wire size (`sketch_bits`).
func (MaxKernel) EncodedBits(row []int8, counts *[]int) int {
	k, c := DeviationBaseline(row, *counts)
	*counts = c
	return DeviationBits(row, k)
}

// swarHigh masks the sign bit of each 16-bit lane of a word; xor-ing it
// biases int16 lanes to unsigned order-preserving form and back.
const swarHigh = 0x8000800080008000

// swarHigh8 is the 8-bit-lane analog: the sign bit of each byte lane.
const swarHigh8 = 0x8080808080808080

// MergeMax8 folds src into dst pointwise (dst[i] = max(dst[i], src[i])) and
// panics if the lengths differ. This is the hot inner loop of every
// max-kernel fold; the word-at-a-time body below shows up directly in the
// decomposition's wave time, so it is benchmarked in isolation
// (BenchmarkMergeMax8, BENCH_sketch.json).
//
// When both rows are 8-byte aligned — arena rows always are, see
// Arena.Reset's stride — eight int8 lanes merge per machine word with
// branch-free SWAR compares, twice the lanes of the int16 MergeMax on half
// the memory traffic: sketch maxima are effectively random, so the scalar
// loop's per-cell branch mispredicts about half the time, and removing it is
// worth more than the extra ALU ops. Misaligned or short rows take the
// scalar tail, which the conformance suite pins byte-equal to the SWAR path.
// swarMax8Word returns the per-lane signed max of two words of eight int8
// lanes. No biasing is needed: the decision bit per lane is "signs differ
// and s is negative" (s &^ d at the sign bit) or "signs agree and d's low
// seven bits are the larger" (the borrow-free subtract z, masked to
// same-sign lanes by &^ (d ^ s)).
func swarMax8Word(d, s uint64) uint64 {
	// Borrow-free per-lane subtract: lane = (dlow7 + 0x80) − slow7 stays in
	// [0x01, 0xFF], so its sign bit is dlow7 ≥ slow7 with no cross-lane
	// borrow.
	z := (d | swarHigh8) - (s &^ swarHigh8)
	m := ((s &^ d) | (z &^ (d ^ s))) & swarHigh8
	// Spread each lane's decision bit to a full-lane mask.
	mask := (m - m>>7) | m
	return (d & mask) | (s &^ mask)
}

func MergeMax8(dst, src []int8) {
	if len(dst) != len(src) {
		panic("sketch: MergeMax8 length mismatch")
	}
	n := len(src)
	i := 0
	if n >= 16 &&
		uintptr(unsafe.Pointer(&dst[0]))%8 == 0 &&
		uintptr(unsafe.Pointer(&src[0]))%8 == 0 {
		words := n / 8
		dw := unsafe.Slice((*uint64)(unsafe.Pointer(&dst[0])), words)
		sw := unsafe.Slice((*uint64)(unsafe.Pointer(&src[0])), words)
		// Unrolled 4× so four independent ~7-op dependency chains are in
		// flight at once; the rolled loop is latency-bound on one chain.
		w := 0
		for ; w+4 <= words; w += 4 {
			dw[w] = swarMax8Word(dw[w], sw[w])
			dw[w+1] = swarMax8Word(dw[w+1], sw[w+1])
			dw[w+2] = swarMax8Word(dw[w+2], sw[w+2])
			dw[w+3] = swarMax8Word(dw[w+3], sw[w+3])
		}
		for ; w < words; w++ {
			dw[w] = swarMax8Word(dw[w], sw[w])
		}
		i = words * 8
	}
	for ; i < n; i++ {
		if src[i] > dst[i] {
			dst[i] = src[i]
		}
	}
}

// MergeMax8Pair folds two source rows into dst in one pass
// (dst[i] = max(dst[i], a[i], b[i])). The result is exactly two MergeMax8
// calls — max is associative — but the single pass reads dst once instead
// of twice and, more importantly for the collect wave's scattered neighbor
// rows, keeps two independent source-row miss streams in flight at once.
func MergeMax8Pair(dst, a, b []int8) {
	if len(dst) != len(a) || len(dst) != len(b) {
		panic("sketch: MergeMax8Pair length mismatch")
	}
	n := len(dst)
	i := 0
	if n >= 16 &&
		uintptr(unsafe.Pointer(&dst[0]))%8 == 0 &&
		uintptr(unsafe.Pointer(&a[0]))%8 == 0 &&
		uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		words := n / 8
		dw := unsafe.Slice((*uint64)(unsafe.Pointer(&dst[0])), words)
		aw := unsafe.Slice((*uint64)(unsafe.Pointer(&a[0])), words)
		bw := unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), words)
		w := 0
		for ; w+2 <= words; w += 2 {
			dw[w] = swarMax8Word(dw[w], swarMax8Word(aw[w], bw[w]))
			dw[w+1] = swarMax8Word(dw[w+1], swarMax8Word(aw[w+1], bw[w+1]))
		}
		for ; w < words; w++ {
			dw[w] = swarMax8Word(dw[w], swarMax8Word(aw[w], bw[w]))
		}
		i = words * 8
	}
	for ; i < n; i++ {
		v := a[i]
		if b[i] > v {
			v = b[i]
		}
		if v > dst[i] {
			dst[i] = v
		}
	}
}

// MergeMax8Generic is the reference scalar merge the 8-lane SWAR kernel is
// verified against; benchmarks keep it around to report the kernel's
// speedup.
func MergeMax8Generic(dst, src []int8) {
	if len(dst) != len(src) {
		panic("sketch: MergeMax8Generic length mismatch")
	}
	dst = dst[:len(src)]
	for i, v := range src {
		if v > dst[i] {
			dst[i] = v
		}
	}
}

// MergeMax is the int16 pointwise max: the same fold as MergeMax8 for the
// wide rows the fingerprint adapter keeps (machine-level distsim replays,
// weighted samples whose clamp is MaxInt16). It panics if the lengths
// differ. When both rows are 8-byte aligned, four lanes merge per machine
// word; misaligned or short rows take the scalar tail.
func MergeMax(dst, src []int16) {
	if len(dst) != len(src) {
		panic("sketch: MergeMax length mismatch")
	}
	n := len(src)
	i := 0
	if n >= 8 &&
		uintptr(unsafe.Pointer(&dst[0]))%8 == 0 &&
		uintptr(unsafe.Pointer(&src[0]))%8 == 0 {
		words := n / 4
		dw := unsafe.Slice((*uint64)(unsafe.Pointer(&dst[0])), words)
		sw := unsafe.Slice((*uint64)(unsafe.Pointer(&src[0])), words)
		for w := 0; w < words; w++ {
			x := dw[w] ^ swarHigh // bias lanes to unsigned order
			y := sw[w] ^ swarHigh
			// Borrow-free per-lane subtract: lane = (xlow15 + 0x8000) − ylow15
			// stays in [0x0001, 0xFFFF], so its sign bit is xlow15 ≥ ylow15.
			z := (x | swarHigh) - (y &^ swarHigh)
			// Per-lane x ≥ y (unsigned): high bits differ → x's high bit
			// wins; equal → the low-15 compare in z decides.
			m := ((x &^ y) | (^(x ^ y) & z)) & swarHigh
			// Spread each lane's decision bit to a full-lane mask.
			mask := (m - m>>15) | m
			dw[w] = ((x & mask) | (y &^ mask)) ^ swarHigh
		}
		i = words * 4
	}
	for ; i < n; i++ {
		if src[i] > dst[i] {
			dst[i] = src[i]
		}
	}
}

// MergeMaxGeneric is the reference scalar merge the 4-lane SWAR kernel is
// verified against; benchmarks keep it around to report the kernel's
// speedup.
func MergeMaxGeneric(dst, src []int16) {
	if len(dst) != len(src) {
		panic("sketch: MergeMaxGeneric length mismatch")
	}
	dst = dst[:len(src)]
	for i, v := range src {
		if v > dst[i] {
			dst[i] = v
		}
	}
}
