package sketch

import (
	"math/rand/v2"
	"sort"
	"testing"
	"unsafe"
)

// The kernel conformance suite: every Kernel must be a semilattice join
// (identity, idempotent, commutative, associative) — the laws the
// byte-identical-at-any-parallelism contract and the redundant-path safety
// of the waves rest on — and each SWAR merge must agree byte-for-byte with
// its scalar reference on every alignment and length, including the
// saturation ceiling of the narrow cells.

// randMaxRow builds a max-kernel row with realistic value spread (Empty
// through ~18, the range geometric maxima actually occupy).
func randMaxRow(rng *rand.Rand, t int) []int8 {
	row := make([]int8, t)
	for i := range row {
		row[i] = int8(rng.IntN(20)) - 1
	}
	return row
}

// randMaxRowSaturated builds a max-kernel row that mixes organic values with
// cells at and near the narrow-width ceiling MaxCell8.
func randMaxRowSaturated(rng *rand.Rand, t int) []int8 {
	row := randMaxRow(rng, t)
	for i := range row {
		switch rng.IntN(4) {
		case 0:
			row[i] = MaxCell8
		case 1:
			row[i] = MaxCell8 - 1
		}
	}
	return row
}

// randKMVRow builds a valid KMV row of width k: a sorted ascending set of
// distinct hashes padded with sentinels.
func randKMVRow(rng *rand.Rand, k int) []int16 {
	m := rng.IntN(k + 1)
	seen := make(map[int16]bool, m)
	var vals []int16
	for len(vals) < m {
		v := int16(rng.IntN(kmvRange))
		if !seen[v] {
			seen[v] = true
			vals = append(vals, v)
		}
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	row := make([]int16, k)
	copy(row, vals)
	for i := len(vals); i < k; i++ {
		row[i] = kmvSentinel
	}
	return row
}

func rowsEqual[C Cell](a, b []C) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func cloneRow[C Cell](a []C) []C {
	out := make([]C, len(a))
	copy(out, a)
	return out
}

// checkMergeLaws asserts the semilattice laws for kernel k on rows a, b, c.
func checkMergeLaws[C Cell](t *testing.T, k Kernel[C], a, b, c []C) {
	t.Helper()
	empty := make([]C, len(a))
	for i := range empty {
		empty[i] = k.EmptyCell()
	}
	// Identity: empty ⊔ a = a and a ⊔ empty = a.
	got := cloneRow(empty)
	k.Merge(got, a)
	if !rowsEqual(got, a) {
		t.Fatalf("%s: empty ⊔ a != a\n a=%v\n got=%v", k.Name(), a, got)
	}
	got = cloneRow(a)
	k.Merge(got, empty)
	if !rowsEqual(got, a) {
		t.Fatalf("%s: a ⊔ empty != a\n a=%v\n got=%v", k.Name(), a, got)
	}
	// Idempotence: a ⊔ a = a.
	got = cloneRow(a)
	k.Merge(got, a)
	if !rowsEqual(got, a) {
		t.Fatalf("%s: a ⊔ a != a\n a=%v\n got=%v", k.Name(), a, got)
	}
	// Commutativity: a ⊔ b = b ⊔ a.
	ab := cloneRow(a)
	k.Merge(ab, b)
	ba := cloneRow(b)
	k.Merge(ba, a)
	if !rowsEqual(ab, ba) {
		t.Fatalf("%s: a ⊔ b != b ⊔ a\n a=%v\n b=%v\n ab=%v\n ba=%v", k.Name(), a, b, ab, ba)
	}
	// Associativity: (a ⊔ b) ⊔ c = a ⊔ (b ⊔ c).
	left := cloneRow(a)
	k.Merge(left, b)
	k.Merge(left, c)
	bc := cloneRow(b)
	k.Merge(bc, c)
	right := cloneRow(a)
	k.Merge(right, bc)
	if !rowsEqual(left, right) {
		t.Fatalf("%s: merge not associative\n a=%v\n b=%v\n c=%v\n left=%v\n right=%v",
			k.Name(), a, b, c, left, right)
	}
}

func TestMaxKernelMergeLaws(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 200; trial++ {
		width := 1 + rng.IntN(40)
		checkMergeLaws[int8](t, MaxKernel{},
			randMaxRow(rng, width), randMaxRow(rng, width), randMaxRow(rng, width))
	}
}

// TestMaxKernelMergeLawsSaturated pins the saturation guard: the semilattice
// laws must keep holding on rows at the narrow-width ceiling — the max of
// in-range values is in range, so MaxCell8 is an absorbing top element, not
// an overflow hazard.
func TestMaxKernelMergeLawsSaturated(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	for trial := 0; trial < 200; trial++ {
		width := 1 + rng.IntN(40)
		checkMergeLaws[int8](t, MaxKernel{},
			randMaxRowSaturated(rng, width), randMaxRowSaturated(rng, width), randMaxRowSaturated(rng, width))
	}
}

// TestSaturateCell8 pins the clamp: values above the ceiling saturate to
// MaxCell8, values below the identity clamp to Empty, and the organic range
// passes through unchanged.
func TestSaturateCell8(t *testing.T) {
	cases := []struct {
		in   int
		want int8
	}{
		{-1000, Empty}, {-2, Empty}, {Empty, Empty}, {0, 0}, {64, 64},
		{int(MaxCell8), MaxCell8}, {int(MaxCell8) + 1, MaxCell8}, {1 << 20, MaxCell8},
	}
	for _, tc := range cases {
		if got := SaturateCell8(tc.in); got != tc.want {
			t.Errorf("SaturateCell8(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestKMVKernelMergeLaws(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 200; trial++ {
		width := 1 + rng.IntN(24)
		checkMergeLaws[int16](t, KMVKernel{},
			randKMVRow(rng, width), randKMVRow(rng, width), randKMVRow(rng, width))
	}
}

// TestMergeKMVAgainstBruteForce pins the in-place insertion merge to the
// obvious specification: the k smallest distinct values of the union.
func TestMergeKMVAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 500; trial++ {
		k := 1 + rng.IntN(24)
		a := randKMVRow(rng, k)
		b := randKMVRow(rng, k)
		seen := make(map[int16]bool)
		var union []int16
		for _, row := range [][]int16{a, b} {
			for _, v := range row {
				if v != kmvSentinel && !seen[v] {
					seen[v] = true
					union = append(union, v)
				}
			}
		}
		sort.Slice(union, func(i, j int) bool { return union[i] < union[j] })
		want := make([]int16, k)
		m := copy(want, union)
		for i := m; i < k; i++ {
			want[i] = kmvSentinel
		}
		got := cloneRow(a)
		MergeKMV(got, b)
		if !rowsEqual(got, want) {
			t.Fatalf("MergeKMV mismatch\n a=%v\n b=%v\n got=%v\n want=%v", a, b, got, want)
		}
	}
}

// TestMergeMax8MatchesGeneric pins the 8-lane SWAR path to the scalar
// reference over every small length (exercising the word body, the tail, and
// the short-row fallback) and over the full int8 value range, including the
// saturation ceiling and the identity.
func TestMergeMax8MatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	for n := 0; n <= 67; n++ {
		for trial := 0; trial < 50; trial++ {
			dst := make([]int8, n)
			src := make([]int8, n)
			for i := 0; i < n; i++ {
				dst[i] = int8(rng.IntN(256))
				src[i] = int8(rng.IntN(256))
			}
			// Sprinkle the values the clamp produces so the lane compare is
			// exercised exactly at the contract's boundary cells.
			if n > 0 {
				dst[rng.IntN(n)] = MaxCell8
				src[rng.IntN(n)] = Empty
			}
			want := cloneRow(dst)
			MergeMax8Generic(want, src)
			got := cloneRow(dst)
			MergeMax8(got, src)
			if !rowsEqual(got, want) {
				t.Fatalf("n=%d: MergeMax8 != generic\n dst=%v\n src=%v\n got=%v\n want=%v",
					n, dst, src, got, want)
			}
		}
	}
}

// TestMergeMax8Misaligned shifts the rows off 8-byte alignment (every offset
// combination of a shared backing) and checks the result never depends on
// which path ran.
func TestMergeMax8Misaligned(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 16))
	const n = 41
	for dOff := 0; dOff < 8; dOff++ {
		for sOff := 0; sOff < 8; sOff++ {
			dBack := make([]int8, n+8)
			sBack := make([]int8, n+8)
			for i := range dBack {
				dBack[i] = int8(rng.IntN(256))
				sBack[i] = int8(rng.IntN(256))
			}
			dst := dBack[dOff : dOff+n]
			src := sBack[sOff : sOff+n]
			want := cloneRow(dst)
			MergeMax8Generic(want, src)
			got := cloneRow(dst)
			MergeMax8(got, src)
			if !rowsEqual(got, want) {
				t.Fatalf("offsets (%d,%d): MergeMax8 != generic", dOff, sOff)
			}
		}
	}
}

// TestMergeMaxMatchesGeneric pins the 4-lane int16 SWAR path (kept for the
// fingerprint adapter's wide rows) to the scalar reference over every small
// length and the full int16 value range.
func TestMergeMaxMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for n := 0; n <= 67; n++ {
		for trial := 0; trial < 50; trial++ {
			dst := make([]int16, n)
			src := make([]int16, n)
			for i := 0; i < n; i++ {
				dst[i] = int16(rng.IntN(1 << 16))
				src[i] = int16(rng.IntN(1 << 16))
			}
			want := cloneRow(dst)
			MergeMaxGeneric(want, src)
			got := cloneRow(dst)
			MergeMax(got, src)
			if !rowsEqual(got, want) {
				t.Fatalf("n=%d: MergeMax != generic\n dst=%v\n src=%v\n got=%v\n want=%v",
					n, dst, src, got, want)
			}
		}
	}
}

// TestMergeMaxMisaligned shifts the rows off 8-byte alignment (every offset
// combination of a shared backing) and checks the result never depends on
// which path ran.
func TestMergeMaxMisaligned(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	const n = 33
	for dOff := 0; dOff < 4; dOff++ {
		for sOff := 0; sOff < 4; sOff++ {
			dBack := make([]int16, n+4)
			sBack := make([]int16, n+4)
			for i := range dBack {
				dBack[i] = int16(rng.IntN(1 << 16))
				sBack[i] = int16(rng.IntN(1 << 16))
			}
			dst := dBack[dOff : dOff+n]
			src := sBack[sOff : sOff+n]
			want := cloneRow(dst)
			MergeMaxGeneric(want, src)
			got := cloneRow(dst)
			MergeMax(got, src)
			if !rowsEqual(got, want) {
				t.Fatalf("offsets (%d,%d): MergeMax != generic", dOff, sOff)
			}
		}
	}
}

// TestArenaRowsAligned checks the stride contract the SWAR fast paths rely
// on: every arena row starts on an 8-byte boundary for every width, at both
// cell widths.
func TestArenaRowsAligned(t *testing.T) {
	widths := []int{1, 2, 3, 4, 5, 7, 8, 63, 64, 65, 1099}
	var a8 Arena[int8]
	for _, width := range widths {
		a8.Reset(9, width)
		if a8.Trials() != width || a8.Rows() != 9 {
			t.Fatalf("int8 t=%d: arena shape %dx%d", width, a8.Rows(), a8.Trials())
		}
		for i := 0; i < a8.Rows(); i++ {
			row := a8.Row(i)
			if len(row) != width {
				t.Fatalf("int8 t=%d: row %d has length %d", width, i, len(row))
			}
			if uintptr(unsafe.Pointer(&row[0]))%8 != 0 {
				t.Fatalf("int8 t=%d: row %d not 8-byte aligned", width, i)
			}
		}
	}
	var a16 Arena[int16]
	for _, width := range widths {
		a16.Reset(9, width)
		if a16.Trials() != width || a16.Rows() != 9 {
			t.Fatalf("int16 t=%d: arena shape %dx%d", width, a16.Rows(), a16.Trials())
		}
		for i := 0; i < a16.Rows(); i++ {
			row := a16.Row(i)
			if len(row) != width {
				t.Fatalf("int16 t=%d: row %d has length %d", width, i, len(row))
			}
			if uintptr(unsafe.Pointer(&row[0]))%8 != 0 {
				t.Fatalf("int16 t=%d: row %d not 8-byte aligned", width, i)
			}
		}
	}
}

// TestMergeMax8PairMatchesSequential pins the paired fold to its definition:
// MergeMax8Pair(dst, a, b) must equal two sequential generic merges, over
// random lengths (covering the SWAR gate, the unrolled pairs, and the scalar
// tail), saturated cells, and every alignment combination of the three rows.
func TestMergeMax8PairMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(27, 28))
	for n := 0; n <= 67; n++ {
		dst := randMaxRow(rng, n)
		a := randMaxRowSaturated(rng, n)
		b := randMaxRow(rng, n)
		want := cloneRow(dst)
		MergeMax8Generic(want, a)
		MergeMax8Generic(want, b)
		got := cloneRow(dst)
		MergeMax8Pair(got, a, b)
		if !rowsEqual(got, want) {
			t.Fatalf("n=%d: MergeMax8Pair != sequential merges", n)
		}
	}
	const n = 41
	for dOff := 0; dOff < 8; dOff++ {
		for aOff := 0; aOff < 8; aOff += 3 {
			for bOff := 0; bOff < 8; bOff += 5 {
				back := func(off int) []int8 {
					bk := make([]int8, n+8)
					for i := range bk {
						bk[i] = int8(rng.IntN(256))
					}
					return bk[off : off+n]
				}
				dst, a, b := back(dOff), back(aOff), back(bOff)
				want := cloneRow(dst)
				MergeMax8Generic(want, a)
				MergeMax8Generic(want, b)
				got := cloneRow(dst)
				MergeMax8Pair(got, a, b)
				if !rowsEqual(got, want) {
					t.Fatalf("offsets (%d,%d,%d): MergeMax8Pair != sequential", dOff, aOff, bOff)
				}
			}
		}
	}
}

// TestMergeMax8PairLengthMismatch: all three rows must share one width.
func TestMergeMax8PairLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MergeMax8Pair accepted rows of different lengths")
		}
	}()
	MergeMax8Pair(make([]int8, 4), make([]int8, 4), make([]int8, 5))
}
