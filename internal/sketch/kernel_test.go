package sketch

import (
	"math/rand/v2"
	"sort"
	"testing"
	"unsafe"
)

// The kernel conformance suite: every Kernel must be a semilattice join
// (identity, idempotent, commutative, associative) — the laws the
// byte-identical-at-any-parallelism contract and the redundant-path safety
// of the waves rest on — and the SWAR MergeMax must agree byte-for-byte with
// the scalar reference on every alignment and length.

// randMaxRow builds a max-kernel row with realistic value spread (Empty
// through ~18, the range geometric maxima actually occupy).
func randMaxRow(rng *rand.Rand, t int) []int16 {
	row := make([]int16, t)
	for i := range row {
		row[i] = int16(rng.IntN(20)) - 1
	}
	return row
}

// randKMVRow builds a valid KMV row of width k: a sorted ascending set of
// distinct hashes padded with sentinels.
func randKMVRow(rng *rand.Rand, k int) []int16 {
	m := rng.IntN(k + 1)
	seen := make(map[int16]bool, m)
	var vals []int16
	for len(vals) < m {
		v := int16(rng.IntN(kmvRange))
		if !seen[v] {
			seen[v] = true
			vals = append(vals, v)
		}
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	row := make([]int16, k)
	copy(row, vals)
	for i := len(vals); i < k; i++ {
		row[i] = kmvSentinel
	}
	return row
}

func rowsEqual(a, b []int16) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func cloneRow(a []int16) []int16 {
	out := make([]int16, len(a))
	copy(out, a)
	return out
}

// checkMergeLaws asserts the semilattice laws for kernel k on rows a, b, c.
func checkMergeLaws(t *testing.T, k Kernel, a, b, c []int16) {
	t.Helper()
	empty := make([]int16, len(a))
	for i := range empty {
		empty[i] = k.EmptyCell()
	}
	// Identity: empty ⊔ a = a and a ⊔ empty = a.
	got := cloneRow(empty)
	k.Merge(got, a)
	if !rowsEqual(got, a) {
		t.Fatalf("%s: empty ⊔ a != a\n a=%v\n got=%v", k.Name(), a, got)
	}
	got = cloneRow(a)
	k.Merge(got, empty)
	if !rowsEqual(got, a) {
		t.Fatalf("%s: a ⊔ empty != a\n a=%v\n got=%v", k.Name(), a, got)
	}
	// Idempotence: a ⊔ a = a.
	got = cloneRow(a)
	k.Merge(got, a)
	if !rowsEqual(got, a) {
		t.Fatalf("%s: a ⊔ a != a\n a=%v\n got=%v", k.Name(), a, got)
	}
	// Commutativity: a ⊔ b = b ⊔ a.
	ab := cloneRow(a)
	k.Merge(ab, b)
	ba := cloneRow(b)
	k.Merge(ba, a)
	if !rowsEqual(ab, ba) {
		t.Fatalf("%s: a ⊔ b != b ⊔ a\n a=%v\n b=%v\n ab=%v\n ba=%v", k.Name(), a, b, ab, ba)
	}
	// Associativity: (a ⊔ b) ⊔ c = a ⊔ (b ⊔ c).
	left := cloneRow(a)
	k.Merge(left, b)
	k.Merge(left, c)
	bc := cloneRow(b)
	k.Merge(bc, c)
	right := cloneRow(a)
	k.Merge(right, bc)
	if !rowsEqual(left, right) {
		t.Fatalf("%s: merge not associative\n a=%v\n b=%v\n c=%v\n left=%v\n right=%v",
			k.Name(), a, b, c, left, right)
	}
}

func TestMaxKernelMergeLaws(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 200; trial++ {
		width := 1 + rng.IntN(40)
		checkMergeLaws(t, MaxKernel{},
			randMaxRow(rng, width), randMaxRow(rng, width), randMaxRow(rng, width))
	}
}

func TestKMVKernelMergeLaws(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 200; trial++ {
		width := 1 + rng.IntN(24)
		checkMergeLaws(t, KMVKernel{},
			randKMVRow(rng, width), randKMVRow(rng, width), randKMVRow(rng, width))
	}
}

// TestMergeKMVAgainstBruteForce pins the in-place insertion merge to the
// obvious specification: the k smallest distinct values of the union.
func TestMergeKMVAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 500; trial++ {
		k := 1 + rng.IntN(24)
		a := randKMVRow(rng, k)
		b := randKMVRow(rng, k)
		seen := make(map[int16]bool)
		var union []int16
		for _, row := range [][]int16{a, b} {
			for _, v := range row {
				if v != kmvSentinel && !seen[v] {
					seen[v] = true
					union = append(union, v)
				}
			}
		}
		sort.Slice(union, func(i, j int) bool { return union[i] < union[j] })
		want := make([]int16, k)
		m := copy(want, union)
		for i := m; i < k; i++ {
			want[i] = kmvSentinel
		}
		got := cloneRow(a)
		MergeKMV(got, b)
		if !rowsEqual(got, want) {
			t.Fatalf("MergeKMV mismatch\n a=%v\n b=%v\n got=%v\n want=%v", a, b, got, want)
		}
	}
}

// TestMergeMaxMatchesGeneric pins the SWAR path to the scalar reference over
// every small length (exercising the word body, the tail, and the short-row
// fallback) and over the full int16 value range.
func TestMergeMaxMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for n := 0; n <= 67; n++ {
		for trial := 0; trial < 50; trial++ {
			dst := make([]int16, n)
			src := make([]int16, n)
			for i := 0; i < n; i++ {
				dst[i] = int16(rng.IntN(1 << 16))
				src[i] = int16(rng.IntN(1 << 16))
			}
			want := cloneRow(dst)
			MergeMaxGeneric(want, src)
			got := cloneRow(dst)
			MergeMax(got, src)
			if !rowsEqual(got, want) {
				t.Fatalf("n=%d: MergeMax != generic\n dst=%v\n src=%v\n got=%v\n want=%v",
					n, dst, src, got, want)
			}
		}
	}
}

// TestMergeMaxMisaligned shifts the rows off 8-byte alignment (every offset
// combination of a shared backing) and checks the result never depends on
// which path ran.
func TestMergeMaxMisaligned(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	const n = 33
	for dOff := 0; dOff < 4; dOff++ {
		for sOff := 0; sOff < 4; sOff++ {
			dBack := make([]int16, n+4)
			sBack := make([]int16, n+4)
			for i := range dBack {
				dBack[i] = int16(rng.IntN(1 << 16))
				sBack[i] = int16(rng.IntN(1 << 16))
			}
			dst := dBack[dOff : dOff+n]
			src := sBack[sOff : sOff+n]
			want := cloneRow(dst)
			MergeMaxGeneric(want, src)
			got := cloneRow(dst)
			MergeMax(got, src)
			if !rowsEqual(got, want) {
				t.Fatalf("offsets (%d,%d): MergeMax != generic", dOff, sOff)
			}
		}
	}
}

// TestArenaRowsAligned checks the stride contract MergeMax's fast path
// relies on: every arena row starts on an 8-byte boundary for every width.
func TestArenaRowsAligned(t *testing.T) {
	var a Arena
	for _, width := range []int{1, 2, 3, 4, 5, 7, 8, 63, 64, 65, 1099} {
		a.Reset(9, width)
		if a.Trials() != width || a.Rows() != 9 {
			t.Fatalf("t=%d: arena shape %dx%d", width, a.Rows(), a.Trials())
		}
		for i := 0; i < a.Rows(); i++ {
			row := a.Row(i)
			if len(row) != width {
				t.Fatalf("t=%d: row %d has length %d", width, i, len(row))
			}
			if uintptr(unsafe.Pointer(&row[0]))%8 != 0 {
				t.Fatalf("t=%d: row %d not 8-byte aligned", width, i)
			}
		}
	}
}
