// Package sketch is the generic mergeable-sketch engine behind the
// decomposition's approximate counting: flat arenas of fixed-width []int16
// rows, a pluggable merge kernel whose fold is commutative, associative, and
// idempotent, and estimators that invert a merged row back into a count.
//
// The shape is the one federated aggregation systems use for
// communication-efficient, order-independent state: because merging is a
// semilattice join, rows can be folded in any order, across any number of
// workers, over redundant paths, or shard by shard, and the result is
// byte-identical every time. The paper's Section 5 fingerprint machinery
// (per-trial geometric maxima, Lemma 5.2-style estimation) is the first
// kernel; a k-min-values kernel provides the classic alternative trade-off
// between row width and wire size. internal/fingerprint remains the
// paper-semantics adapter over this package, and the machine-level distsim
// replays route their merges through the same kernels, so vertex-level and
// machine-level execution share one merge implementation.
//
// Ownership contract (moved here from internal/fingerprint): an Arena — and
// any Scratch — belongs to one wave at a time. Arena.Reset reuses the flat
// backing across waves; rows returned by Row alias the backing and are
// invalidated by the next Reset. Estimators and Scratches are owned by one
// goroutine; parallel folds give each chunk its own.
package sketch

// Kernel defines one mergeable-sketch family over fixed-width []int16 rows.
//
// Merge must be commutative, associative, and idempotent — a semilattice
// join — and a row of EmptyCell values must be its identity. Those four laws
// (checked by the conformance suite and FuzzSketchMerge) are what make every
// fold in this package order-independent and therefore byte-identical at any
// parallelism, immune to redundant-path double counting (the Section 1.1
// hazard), and safe to aggregate shard by shard.
//
// Kernels are stateless values: methods must be safe for concurrent use, and
// any per-call scratch is passed in by the caller.
type Kernel interface {
	// Name identifies the kernel in benchmarks and reports.
	Name() string
	// EmptyCell is the identity cell value: a row filled with it merges as
	// a no-op ("no elements seen").
	EmptyCell() int16
	// Fill writes one party's singleton sketch into row, deriving all
	// randomness from rowSeed's counter stream (parwork.RowSeed) so the row
	// is a pure function of (rowSeed, width).
	Fill(row []int16, rowSeed uint64)
	// Merge folds src into dst (dst = dst ⊔ src). Lengths must match; rows
	// must not partially overlap (dst == src is allowed and is a no-op by
	// idempotence).
	Merge(dst, src []int16)
	// EncodedBits returns the wire size of row under the kernel's
	// serialization, using *counts as reusable scratch (grown as needed).
	EncodedBits(row []int16, counts *[]int) int
}

// Estimator inverts a merged row into an approximate count of the distinct
// parties folded into it. Implementations carry reusable scratch and are
// owned by one goroutine; the zero value is ready to use.
type Estimator interface {
	// Name identifies the estimator variant in benchmarks and reports.
	Name() string
	// Estimate returns d̂ for the row (0 when no party was seen).
	Estimate(row []int16) float64
}
