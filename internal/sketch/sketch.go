// Package sketch is the generic mergeable-sketch engine behind the
// decomposition's approximate counting: flat arenas of fixed-width cell
// rows, a pluggable merge kernel whose fold is commutative, associative, and
// idempotent, and estimators that invert a merged row back into a count.
//
// The shape is the one federated aggregation systems use for
// communication-efficient, order-independent state: because merging is a
// semilattice join, rows can be folded in any order, across any number of
// workers, over redundant paths, or shard by shard, and the result is
// byte-identical every time. The paper's Section 5 fingerprint machinery
// (per-trial geometric maxima, Lemma 5.2-style estimation) is the first
// kernel; a k-min-values kernel provides the classic alternative trade-off
// between row width and wire size. internal/fingerprint remains the
// paper-semantics adapter over this package, and the machine-level distsim
// replays route their merges through the same kernels, so vertex-level and
// machine-level execution share one merge implementation.
//
// # Cell-width contract
//
// Arenas, kernels, and estimators are generic over the Cell storage width.
// Each kernel picks the narrowest width its value range needs:
//
//   - MaxKernel stores int8 cells. Its values are maxima of geometric(1/2)
//     samples — at most 64 (one machine word of trailing zeros), far below
//     the MaxCell8 = 127 saturation ceiling. Cells saturate at MaxCell8
//     (SaturateCell8): merging preserves the ceiling (max of in-range values
//     stays in range) and the estimator clamps saturated values into its
//     histogram, so a saturated row still obeys the merge laws and estimates
//     to a documented finite value. Halving bytes per row halves the memory
//     traffic of the collect wave, the per-edge merges, and the shard
//     boundary exchange — the single most-trafficked path in the repo.
//   - KMVKernel keeps int16 cells: its values are 15-bit hashes and the
//     kmvSentinel is MaxInt16, which genuinely need the width.
//
// Cell width is storage only: estimator inputs, the deviation encoding, and
// therefore every charged payload (`sketch_bits`) are value-based and
// byte-identical whichever width stores the same values.
//
// # Stride and alignment
//
// Arena rows are laid out at a stride padded up to a full 8-byte machine
// word (8 cells for int8, 4 for int16), so every row starts 8-byte aligned —
// the precondition of the SWAR merge kernels (MergeMax8 moves 8 lanes per
// word, MergeMax 4). Rows obtained elsewhere fall back to the scalar tail.
//
// Ownership contract (moved here from internal/fingerprint): an Arena — and
// any Scratch — belongs to one wave at a time. Arena.Reset reuses the flat
// backing across waves; rows returned by Row alias the backing and are
// invalidated by the next Reset. Estimators and Scratches are owned by one
// goroutine; parallel folds give each chunk its own.
package sketch

// Cell is the constraint over sketch storage widths: kernels declare the
// narrowest integer type that holds their value range (see the cell-width
// contract in the package doc).
type Cell interface {
	~int8 | ~int16
}

// Kernel defines one mergeable-sketch family over fixed-width []C rows.
//
// Merge must be commutative, associative, and idempotent — a semilattice
// join — and a row of EmptyCell values must be its identity. Those four laws
// (checked by the conformance suite and FuzzSketchMerge) are what make every
// fold in this package order-independent and therefore byte-identical at any
// parallelism, immune to redundant-path double counting (the Section 1.1
// hazard), and safe to aggregate shard by shard.
//
// Kernels are stateless values: methods must be safe for concurrent use, and
// any per-call scratch is passed in by the caller.
type Kernel[C Cell] interface {
	// Name identifies the kernel in benchmarks and reports.
	Name() string
	// EmptyCell is the identity cell value: a row filled with it merges as
	// a no-op ("no elements seen").
	EmptyCell() C
	// Fill writes one party's singleton sketch into row, deriving all
	// randomness from rowSeed's counter stream (parwork.RowSeed) so the row
	// is a pure function of (rowSeed, width).
	Fill(row []C, rowSeed uint64)
	// Merge folds src into dst (dst = dst ⊔ src). Lengths must match; rows
	// must not partially overlap (dst == src is allowed and is a no-op by
	// idempotence).
	Merge(dst, src []C)
	// EncodedBits returns the wire size of row under the kernel's
	// serialization, using *counts as reusable scratch (grown as needed).
	EncodedBits(row []C, counts *[]int) int
}

// PairMerger is an optional kernel fast path: MergePair folds two source
// rows into dst in one pass (dst = dst ⊔ a ⊔ b), exactly equal to two
// sequential Merge calls by associativity. The collect wave's fold is bound
// by the memory latency of fetching scattered sample rows, so a kernel that
// can keep two source streams in flight roughly halves the stall per cell;
// kernels without it are folded one source at a time.
type PairMerger[C Cell] interface {
	MergePair(dst, a, b []C)
}

// Estimator inverts a merged row into an approximate count of the distinct
// parties folded into it. Implementations carry reusable scratch and are
// owned by one goroutine; the zero value is ready to use.
type Estimator[C Cell] interface {
	// Name identifies the estimator variant in benchmarks and reports.
	Name() string
	// Estimate returns d̂ for the row (0 when no party was seen).
	Estimate(row []C) float64
}
