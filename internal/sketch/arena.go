package sketch

import (
	"unsafe"

	"clustercolor/internal/parwork"
)

// Arena is a flat backing for n fixed-width sketch rows of cell type C. Rows
// are laid out at a stride padded up to a full 8-byte machine word — 8 cells
// for int8, 4 for int16 — so that every row starts on an 8-byte boundary,
// the alignment the SWAR merge kernels (MergeMax8, MergeMax) require, while
// Row still returns exactly the logical width. The padding cells are never
// read or written.
//
// The zero value is an empty arena; Reset sizes it.
type Arena[C Cell] struct {
	t      int // logical row width
	stride int // padded row width, a whole number of 8-byte words
	data   []C
}

// Reset sizes the arena to n rows of t cells, reusing the backing when it is
// large enough. Row contents are undefined afterwards — callers fill every
// row they read (Fill, Collect).
func (a *Arena[C]) Reset(n, t int) {
	a.t = t
	lanes := 8 / int(unsafe.Sizeof(*new(C))) // cells per 8-byte word
	a.stride = (t + lanes - 1) &^ (lanes - 1)
	size := n * a.stride
	if cap(a.data) < size {
		a.data = make([]C, size)
	} else {
		a.data = a.data[:size]
	}
}

// Rows returns the number of rows.
func (a *Arena[C]) Rows() int {
	if a.stride == 0 {
		return 0
	}
	return len(a.data) / a.stride
}

// Trials returns the logical row width t.
func (a *Arena[C]) Trials() int { return a.t }

// Row returns row i as a view into the backing. The view is valid until the
// next Reset; its capacity is clipped so appends cannot stomp the next row.
func (a *Arena[C]) Row(i int) []C {
	off := i * a.stride
	return a.data[off : off+a.t : off+a.stride]
}

// Fill fills every row with the kernel's singleton sketch for that row's
// party, drawing all randomness from per-row counter streams: row v is
// k.Fill(row, RowSeed(seed, v)). Rows are generated in parallel and depend
// only on (seed, v), so any schedule produces the same arena — the property
// the byte-identical-at-any-parallelism contract rests on.
func (a *Arena[C]) Fill(k Kernel[C], seed uint64) error {
	return parwork.ForRange(a.Rows(), func(lo, hi int) error {
		for v := lo; v < hi; v++ {
			k.Fill(a.Row(v), parwork.RowSeed(seed, v))
		}
		return nil
	})
}

// Scratch bundles the per-goroutine reusable buffers of max-kernel waves: a
// merge row for two-row unions, the estimator histogram, and the counting
// buffer behind deviation encodings. The zero value is ready to use.
type Scratch[C Cell] struct {
	// Est estimates rows without allocating per call.
	Est    MaxEstimator[C]
	merged []C
	counts []int
}

// MergeTwo returns max(a, b) in the scratch's merge row. The returned slice
// is valid until the next MergeTwo. Hot loops that only need the estimate of
// the union should call Est.EstimateMerged instead, which fuses the merge
// into the histogram pass with no materialized row.
func (sc *Scratch[C]) MergeTwo(a, b []C) []C {
	sc.merged = append(sc.merged[:0], a...)
	m := sc.merged
	for i, v := range b {
		if v > m[i] {
			m[i] = v
		}
	}
	return m
}

// EncodedBits returns the deviation-encoded size of the row with the
// baseline-selection buffer reused across calls.
func (sc *Scratch[C]) EncodedBits(row []C) int {
	k, counts := DeviationBaseline(row, sc.counts)
	sc.counts = counts
	return DeviationBits(row, k)
}
