package sketch

import "clustercolor/internal/parwork"

// Arena is a flat backing for n fixed-width sketch rows. Rows are laid out
// at a stride padded up to a multiple of four cells so that every row starts
// on an 8-byte boundary — the alignment MergeMax's word-at-a-time path
// requires — while Row still returns exactly the logical width. The padding
// cells are never read or written.
//
// The zero value is an empty arena; Reset sizes it.
type Arena struct {
	t      int // logical row width
	stride int // padded row width, multiple of 4
	data   []int16
}

// Reset sizes the arena to n rows of t cells, reusing the backing when it is
// large enough. Row contents are undefined afterwards — callers fill every
// row they read (Fill, Collect).
func (a *Arena) Reset(n, t int) {
	a.t = t
	a.stride = (t + 3) &^ 3
	size := n * a.stride
	if cap(a.data) < size {
		a.data = make([]int16, size)
	} else {
		a.data = a.data[:size]
	}
}

// Rows returns the number of rows.
func (a *Arena) Rows() int {
	if a.stride == 0 {
		return 0
	}
	return len(a.data) / a.stride
}

// Trials returns the logical row width t.
func (a *Arena) Trials() int { return a.t }

// Row returns row i as a view into the backing. The view is valid until the
// next Reset; its capacity is clipped so appends cannot stomp the next row.
func (a *Arena) Row(i int) []int16 {
	off := i * a.stride
	return a.data[off : off+a.t : off+a.stride]
}

// Fill fills every row with the kernel's singleton sketch for that row's
// party, drawing all randomness from per-row counter streams: row v is
// k.Fill(row, RowSeed(seed, v)). Rows are generated in parallel and depend
// only on (seed, v), so any schedule produces the same arena — the property
// the byte-identical-at-any-parallelism contract rests on.
func (a *Arena) Fill(k Kernel, seed uint64) error {
	return parwork.ForRange(a.Rows(), func(lo, hi int) error {
		for v := lo; v < hi; v++ {
			k.Fill(a.Row(v), parwork.RowSeed(seed, v))
		}
		return nil
	})
}

// Scratch bundles the per-goroutine reusable buffers of max-kernel waves: a
// merge row for two-row unions, the estimator histogram, and the counting
// buffer behind deviation encodings. The zero value is ready to use.
type Scratch struct {
	// Est estimates rows without allocating per call.
	Est    MaxEstimator
	merged []int16
	counts []int
}

// MergeTwo returns max(a, b) in the scratch's merge row. The returned slice
// is valid until the next MergeTwo.
func (sc *Scratch) MergeTwo(a, b []int16) []int16 {
	sc.merged = append(sc.merged[:0], a...)
	MergeMax(sc.merged, b)
	return sc.merged
}

// EncodedBits returns the deviation-encoded size of the row with the
// baseline-selection buffer reused across calls.
func (sc *Scratch) EncodedBits(row []int16) int {
	k, counts := DeviationBaseline(row, sc.counts)
	sc.counts = counts
	return DeviationBits(row, k)
}
