package sketch

import (
	"fmt"
	"math/bits"
)

// The max kernel's wire format is the deviation encoding of Lemmas 5.5–5.6:
// a sketch's maxima concentrate around log d, so instead of spending
// O(log log n) bits per entry we store a baseline k plus each entry's
// deviation |Y_i − k| in unary with a sign bit. Lemma 5.5 bounds the total
// deviation by O(t) w.h.p., so the whole row costs O(t + log log d) bits.

type bitWriter struct {
	buf  []byte
	nbit int
}

func (w *bitWriter) writeBit(b int) {
	if w.nbit%8 == 0 {
		w.buf = append(w.buf, 0)
	}
	if b != 0 {
		w.buf[len(w.buf)-1] |= 1 << (w.nbit % 8)
	}
	w.nbit++
}

func (w *bitWriter) writeUnary(m int) {
	for i := 0; i < m; i++ {
		w.writeBit(1)
	}
	w.writeBit(0)
}

// writeEliasGamma encodes x >= 1 in 2⌊log x⌋+1 bits.
func (w *bitWriter) writeEliasGamma(x uint64) {
	n := bits.Len64(x)
	for i := 0; i < n-1; i++ {
		w.writeBit(0)
	}
	for i := n - 1; i >= 0; i-- {
		w.writeBit(int(x >> i & 1))
	}
}

type bitReader struct {
	buf  []byte
	nbit int
}

func (r *bitReader) readBit() (int, error) {
	if r.nbit >= len(r.buf)*8 {
		return 0, fmt.Errorf("sketch: truncated encoding")
	}
	b := int(r.buf[r.nbit/8] >> (r.nbit % 8) & 1)
	r.nbit++
	return b, nil
}

func (r *bitReader) readUnary() (int, error) {
	m := 0
	for {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		if b == 0 {
			return m, nil
		}
		m++
	}
}

func (r *bitReader) readEliasGamma() (uint64, error) {
	zeros := 0
	for {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		zeros++
	}
	x := uint64(1)
	for i := 0; i < zeros; i++ {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		x = x<<1 | uint64(b)
	}
	return x, nil
}

// DeviationBaseline returns the k minimizing Σ|Y_i − k| — the median of the
// row, by counting selection over the small value range of sketch maxima —
// with a caller-owned counting buffer; it returns the (possibly grown)
// buffer for reuse, so per-row loops allocate only until the buffer covers
// the observed value range. The selection is value-based, so narrow and wide
// rows holding the same values pick the same baseline.
func DeviationBaseline[C Cell](row []C, counts []int) (int, []int) {
	if len(row) == 0 {
		return 0, counts
	}
	lo, hi := int(row[0]), int(row[0])
	for _, y := range row {
		if int(y) < lo {
			lo = int(y)
		}
		if int(y) > hi {
			hi = int(y)
		}
	}
	size := hi - lo + 1
	if cap(counts) < size {
		counts = make([]int, size)
	} else {
		counts = counts[:size]
		for i := range counts {
			counts[i] = 0
		}
	}
	for _, y := range row {
		counts[int(y)-lo]++
	}
	mid := (len(row) + 1) / 2
	run := 0
	for i, c := range counts {
		run += c
		if run >= mid {
			return lo + i, counts
		}
	}
	return hi, counts
}

// EncodeDeviation serializes the row with the deviation encoding:
// Elias-gamma of t, Elias-gamma of baseline k (offset so k ≥ -1 is
// representable), then a sign bit and unary deviation per trial.
func EncodeDeviation[C Cell](row []C) []byte {
	w := &bitWriter{}
	w.writeEliasGamma(uint64(len(row)) + 1)
	k, _ := DeviationBaseline(row, nil)
	w.writeEliasGamma(uint64(k) + 2) // k >= -1 → encoded >= 1
	for _, y := range row {
		dev := int(y) - k
		if dev >= 0 {
			w.writeBit(0)
			w.writeUnary(dev)
		} else {
			w.writeBit(1)
			w.writeUnary(-dev)
		}
	}
	return w.buf
}

// DeviationBits returns the exact bit length of EncodeDeviation's output for
// baseline k without materializing it.
func DeviationBits[C Cell](row []C, k int) int {
	n := eliasGammaBits(uint64(len(row))+1) + eliasGammaBits(uint64(k)+2)
	for _, y := range row {
		dev := int(y) - k
		if dev < 0 {
			dev = -dev
		}
		n += 2 + dev // sign bit + unary + separator
	}
	return n
}

func eliasGammaBits(x uint64) int { return 2*bits.Len64(x) - 1 }

// DecodeDeviation reverses EncodeDeviation. Values decode into int16 — wide
// enough for any cell width's values; narrow-row callers re-clamp with
// SaturateCell8 if they need cells back.
func DecodeDeviation(buf []byte) ([]int16, error) {
	r := &bitReader{buf: buf}
	tPlus, err := r.readEliasGamma()
	if err != nil {
		return nil, err
	}
	if tPlus < 1 {
		return nil, fmt.Errorf("sketch: bad trial count")
	}
	t := int(tPlus - 1)
	kPlus, err := r.readEliasGamma()
	if err != nil {
		return nil, err
	}
	k := int(kPlus) - 2
	s := make([]int16, t)
	for i := 0; i < t; i++ {
		sign, err := r.readBit()
		if err != nil {
			return nil, err
		}
		dev, err := r.readUnary()
		if err != nil {
			return nil, err
		}
		if sign == 1 {
			dev = -dev
		}
		s[i] = int16(k + dev)
	}
	return s, nil
}
