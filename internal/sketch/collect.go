package sketch

import (
	"fmt"

	"clustercolor/internal/cluster"
	"clustercolor/internal/graph"
	"clustercolor/internal/parwork"
)

// CollectOptions configures Collect.
type CollectOptions struct {
	// IncludeSelf merges the vertex's own singleton row into its sketch.
	IncludeSelf bool
	// Pred filters which neighbors contribute to v's sketch; nil means all.
	// slot is the CSR position of the directed edge (v, u) — AdjOffset(v)+j
	// for the j-th neighbor — so callers can memoize per-edge predicates in
	// flat bitmaps instead of re-deriving them from the endpoints. Pred must
	// be safe for concurrent calls and must not depend on evaluation order.
	Pred func(v, u, slot int) bool
}

// Collect runs one aggregation wave of kernel k: out row v becomes the merge
// of the singleton rows of v's admitted neighbors. The fold runs as a
// parallel per-vertex CSR sweep; rows are disjoint and the kernel's merge is
// order-independent, so the output is byte-identical at any parallelism.
// The round cost is one H-round for the exchange plus the largest encoded
// payload that crossed a link, which is returned.
func Collect[C Cell](cg *cluster.CG, phase string, k Kernel[C], samples, out *Arena[C], opts CollectOptions) (int, error) {
	g := cg.H
	n := g.N()
	if samples.Rows() != n {
		return 0, fmt.Errorf("sketch: %d sample rows for %d vertices", samples.Rows(), n)
	}
	out.Reset(n, samples.Trials())
	cg.ChargeHRounds(phase, 1, 0) // payload charged below with true size
	maxBits, err := CollectRows(g, k, samples, out, opts, n, nil)
	if err != nil {
		return 0, err
	}
	cg.ChargeHRounds(phase+"/payload", 1, maxBits)
	return maxBits, nil
}

// CollectRows is the computational core of Collect: it folds the sample
// rows of each vertex's admitted neighbors into out rows [0, rows) over g
// and returns the largest encoded payload among those rows, without
// resetting the arena or charging the cost model. Partitioned callers (the
// shard engine) run it per slice — computing only the owned rows of a local
// CSR whose arena also carries halo rows — and charge the wave once
// globally. A non-nil pool bounds the fan-out to that shard's worker
// budget. Chunk bounds are degree-weighted from the CSR offsets array (plus
// a constant per row), so heavy vertices don't pile into straggler chunks;
// the fold itself is partition-independent (disjoint rows, max reduction),
// so the output is byte-identical at any parallelism and any budget split.
func CollectRows[C Cell](g *graph.Graph, k Kernel[C], samples, out *Arena[C], opts CollectOptions, rows int, pool *parwork.ShardPool) (int, error) {
	if rows > out.Rows() || rows > g.N() {
		return 0, fmt.Errorf("sketch: %d rows to collect exceeds %d out rows / %d vertices", rows, out.Rows(), g.N())
	}
	if samples.Rows() != g.N() {
		return 0, fmt.Errorf("sketch: %d sample rows for %d vertices", samples.Rows(), g.N())
	}
	chunks := parwork.RangeChunks(rows)
	if pool != nil {
		chunks = parwork.RangeChunksAt(rows, pool.Workers())
	}
	cum := func(v int) int64 { return int64(g.AdjOffset(v)) + 16*int64(v) }
	chunkBits := make([]int, chunks)
	pm, hasPair := any(k).(PairMerger[C])
	fold := func(ci int) error {
		lo, hi := parwork.WeightedChunkBounds(rows, chunks, ci, cum)
		var counts []int
		best := 1
		for v := lo; v < hi; v++ {
			row := out.Row(v)
			empty := true
			if opts.IncludeSelf {
				// Own samples merge locally; no network cost.
				copy(row, samples.Row(v))
				empty = false
			}
			base := g.AdjOffset(v)
			// Admitted neighbors fold two rows per pass when the kernel
			// supports it (held defers one source row until a partner
			// arrives); the result is identical by associativity, but the
			// paired pass keeps two scattered-row miss streams in flight.
			var held []C
			for j, u32 := range g.Neighbors(v) {
				u := int(u32)
				if opts.Pred != nil && !opts.Pred(v, u, base+j) {
					continue
				}
				if empty {
					copy(row, samples.Row(u))
					empty = false
					continue
				}
				if !hasPair {
					k.Merge(row, samples.Row(u))
					continue
				}
				if held == nil {
					held = samples.Row(u)
					continue
				}
				pm.MergePair(row, held, samples.Row(u))
				held = nil
			}
			if held != nil {
				k.Merge(row, held)
			}
			if empty {
				cell := k.EmptyCell()
				for i := range row {
					row[i] = cell
				}
			}
			if b := k.EncodedBits(row, &counts); b > best {
				best = b
			}
		}
		chunkBits[ci] = best
		return nil
	}
	var err error
	if pool != nil {
		err = pool.ForEach(chunks, fold)
	} else {
		_, err = parwork.ForEach(chunks, func(ci int) (struct{}, error) { return struct{}{}, fold(ci) })
	}
	if err != nil {
		return 0, err
	}
	// Max over fixed chunk bounds is grouping-independent: the largest
	// encoded row that would cross a link.
	maxBits := 1
	for _, b := range chunkBits {
		if b > maxBits {
			maxBits = b
		}
	}
	return maxBits, nil
}

// Engine is a sketch-engine handle: one kernel plus the sample and output
// arenas of its waves. Consumers that run repeated waves (the decomposition
// workspace, benchmarks) own an Engine so arena backings are reused across
// waves and allocation counts stay independent of n. The kernel is the
// configuration point for sketch variants — the max kernel is the default
// everywhere; the k-min-values kernel is opt-in.
type Engine[C Cell] struct {
	Kernel  Kernel[C]
	Samples Arena[C]
	Out     Arena[C]
}

// NewEngine returns an engine running kernel k with empty arenas. The cell
// width cannot be inferred from a concrete kernel value, so call sites
// instantiate explicitly: NewEngine[int8](MaxKernel{}).
func NewEngine[C Cell](k Kernel[C]) *Engine[C] { return &Engine[C]{Kernel: k} }

// FillSamples resets the sample arena to n rows of width t and fills it from
// the kernel's per-row counter streams (see Arena.Fill).
func (e *Engine[C]) FillSamples(n, t int, seed uint64) error {
	e.Samples.Reset(n, t)
	return e.Samples.Fill(e.Kernel, seed)
}

// Collect runs one aggregation wave from the sample arena into the output
// arena (see Collect) and returns the peak encoded payload in bits.
func (e *Engine[C]) Collect(cg *cluster.CG, phase string, opts CollectOptions) (int, error) {
	return Collect(cg, phase, e.Kernel, &e.Samples, &e.Out, opts)
}

// Row returns output row v of the latest Collect. The view is valid until
// the next Collect or FillSamples with a larger shape.
func (e *Engine[C]) Row(v int) []C { return e.Out.Row(v) }
