package sketch

import (
	"runtime"
	"testing"

	"clustercolor/internal/cluster"
	"clustercolor/internal/graph"
	"clustercolor/internal/network"
	"clustercolor/internal/parwork"
)

func testCG(t *testing.T, h *graph.Graph, seed uint64) *cluster.CG {
	t.Helper()
	rng := graph.NewRand(seed)
	exp, err := graph.Expand(h, graph.ExpandSpec{Topology: graph.TopologyStar, MachinesPerCluster: 3, RedundantLinks: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := network.NewCostModel(64)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := cluster.New(h, exp, cost)
	if err != nil {
		t.Fatal(err)
	}
	return cg
}

// runCollect runs one wave of kernel k at the given parallelism and returns
// the flat output rows, the charged payload, and the total rounds charged.
func runCollect[C Cell](t *testing.T, cg *cluster.CG, k Kernel[C], width int, par int, opts CollectOptions) ([]C, int, int64) {
	t.Helper()
	prev := parwork.SetParallelism(par)
	defer parwork.SetParallelism(prev)
	freshCost, err := network.NewCostModel(64)
	if err != nil {
		t.Fatal(err)
	}
	run := cg.WithCost(freshCost)
	eng := Engine[C]{Kernel: k}
	n := run.H.N()
	if err := eng.FillSamples(n, width, parwork.RowSeed(77, 0)); err != nil {
		t.Fatal(err)
	}
	maxBits, err := eng.Collect(run, "conformance", opts)
	if err != nil {
		t.Fatal(err)
	}
	flat := make([]C, 0, n*width)
	for v := 0; v < n; v++ {
		flat = append(flat, eng.Row(v)...)
	}
	return flat, maxBits, run.Cost().Rounds()
}

// checkCollectParallelism asserts one wave shape produces byte-identical
// rows, payload, and rounds at parallelism 1, 2, 4, and NumCPU.
func checkCollectParallelism[C Cell](t *testing.T, cg *cluster.CG, k Kernel[C], width int, opts CollectOptions) {
	t.Helper()
	levels := []int{1, 2, 4, runtime.NumCPU()}
	baseRows, baseBits, baseRounds := runCollect(t, cg, k, width, 1, opts)
	for _, par := range levels[1:] {
		rows, bits, rounds := runCollect(t, cg, k, width, par, opts)
		if !rowsEqual(rows, baseRows) {
			t.Fatalf("par %d: output rows differ from par 1", par)
		}
		if bits != baseBits {
			t.Fatalf("par %d: payload %d bits, par 1 charged %d", par, bits, baseBits)
		}
		if rounds != baseRounds {
			t.Fatalf("par %d: %d rounds, par 1 charged %d", par, rounds, baseRounds)
		}
	}
}

// TestCollectParallelismByteEquality is the engine's core conformance check:
// a collect wave must produce byte-identical rows, the same charged payload,
// and the same round count at parallelism 1, 2, 4, and NumCPU — for both
// kernels (at their respective cell widths), with and without a predicate.
func TestCollectParallelismByteEquality(t *testing.T) {
	h := graph.MustGNP(700, 0.02, graph.NewRand(11))
	cg := testCG(t, h, 5)
	pred := func(v, u, slot int) bool { return (v+u)%3 != 0 }
	t.Run("max", func(t *testing.T) {
		checkCollectParallelism[int8](t, cg, MaxKernel{}, 161, CollectOptions{})
	})
	t.Run("max/self", func(t *testing.T) {
		checkCollectParallelism[int8](t, cg, MaxKernel{}, 161, CollectOptions{IncludeSelf: true})
	})
	t.Run("max/pred", func(t *testing.T) {
		checkCollectParallelism[int8](t, cg, MaxKernel{}, 161, CollectOptions{Pred: pred})
	})
	t.Run("kmv", func(t *testing.T) {
		checkCollectParallelism[int16](t, cg, KMVKernel{}, KMVWidthFor(0.25), CollectOptions{})
	})
	t.Run("kmv/pred", func(t *testing.T) {
		checkCollectParallelism[int16](t, cg, KMVKernel{}, KMVWidthFor(0.25), CollectOptions{Pred: pred})
	})
}

// TestCollectMatchesDirectFold cross-checks one wave against a sequential
// per-vertex fold written directly against the kernel — no arena, no
// chunking — so a bug that broke both parallel paths the same way would
// still be caught.
func TestCollectMatchesDirectFold(t *testing.T) {
	h := graph.MustGNP(300, 0.04, graph.NewRand(21))
	cg := testCG(t, h, 9)
	const width = 97
	k := MaxKernel{}
	eng := Engine[int8]{Kernel: k}
	n := h.N()
	if err := eng.FillSamples(n, width, parwork.RowSeed(31, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Collect(cg, "direct", CollectOptions{IncludeSelf: true}); err != nil {
		t.Fatal(err)
	}
	tmp := make([]int8, width)
	for v := 0; v < n; v++ {
		want := make([]int8, width)
		k.Fill(want, parwork.RowSeed(parwork.RowSeed(31, 0), v))
		for _, u32 := range h.Neighbors(v) {
			k.Fill(tmp, parwork.RowSeed(parwork.RowSeed(31, 0), int(u32)))
			MergeMax8Generic(want, tmp)
		}
		if !rowsEqual(eng.Row(v), want) {
			t.Fatalf("vertex %d: wave row differs from direct fold", v)
		}
	}
}

// TestCollectRejectsShapeMismatch: a sample arena sized for a different
// vertex count must be rejected, not silently re-shaped.
func TestCollectRejectsShapeMismatch(t *testing.T) {
	h := graph.MustGNP(50, 0.1, graph.NewRand(3))
	cg := testCG(t, h, 1)
	var samples, out Arena[int8]
	samples.Reset(10, 32)
	if _, err := Collect(cg, "bad", MaxKernel{}, &samples, &out, CollectOptions{}); err == nil {
		t.Fatal("Collect accepted a sample arena with the wrong row count")
	}
}
