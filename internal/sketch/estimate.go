package sketch

import "math"

// maxTrackedY caps the value range of the estimator's histogram: geometric
// samples are at most 64 (one machine word of trailing zeros), so larger
// values — up to MaxCell8 for saturated narrow rows, or int16 extremes in
// hand-built or adversarially decoded wide rows — only occur outside organic
// fills, where clamping merely saturates the estimate (a documented finite
// value; see TestMaxEstimatorSaturated).
const maxTrackedY = 64

// logTail[y] = ln(1 − 2^−(y+1)), the log-CDF slope of the max-of-geometrics
// law: P[Y ≤ y] = (1 − 2^−(y+1))^d.
var logTail [maxTrackedY + 2]float64

func init() {
	for y := range logTail {
		logTail[y] = math.Log1p(-math.Exp2(-float64(y + 1)))
	}
}

// harmonicMean returns E[2^−Y] for Y the maximum of d geometric(1/2)
// samples; it is strictly decreasing in d (≈ c/d for large d).
func harmonicMean(d float64) float64 {
	var sum, prev float64
	for y := 0; y < len(logTail); y++ {
		arg := d * logTail[y] // ≤ 0
		var f float64
		switch {
		case arg < -40:
			f = 0
		case arg > -1e-12:
			f = 1
		default:
			f = math.Exp(arg)
		}
		sum += math.Exp2(-float64(y)) * (f - prev)
		if f == 1 {
			// All remaining increments vanish.
			return sum
		}
		prev = f
	}
	return sum
}

// MaxEstimator inverts max-kernel rows with the harmonic-sum statistic
// S = (1/t)·Σ_i 2^−Y_i against the exact law E[2^−Y] of the maximum of d
// geometrics — the Flajolet–Martin/HyperLogLog extraction applied to the
// paper's sketch. It uses every trial (empirical error ≈ 1.04/√t, the rate
// fingerprint.TrialsFor is calibrated for) instead of the single-threshold
// count of the Lemma 5.2 proof, whose statistic is ~2× noisier with heavy
// tails at the decision margins the decomposition cares about; the lemma's
// literal estimator remains available as EstimateThreshold (and, behind the
// Estimator interface, as ThresholdEstimator).
//
// The estimate depends only on the cell values, never the storage width: the
// same values in an int8 or int16 row produce bit-identical floats.
//
// The struct is the reusable scratch: a value histogram filled in one pass
// over the row, from which both statistics derive. A MaxEstimator is owned
// by one goroutine; the zero value is ready to use.
type MaxEstimator[C Cell] struct {
	hist []int
}

// Name implements Estimator.
func (e *MaxEstimator[C]) Name() string { return "max/harmonic" }

// sizeHist sizes and zeroes the histogram for values up to maxY.
func (e *MaxEstimator[C]) sizeHist(maxY int) {
	size := maxY + 2
	if cap(e.hist) < size {
		e.hist = make([]int, size)
	} else {
		e.hist = e.hist[:size]
		for i := range e.hist {
			e.hist[i] = 0
		}
	}
}

// fill builds the value histogram (hist[k] counts maxima equal to k−1,
// values above maxTrackedY clamped) in one pass. The histogram is always
// sized to the full tracked range — zeroing its 66 fixed buckets is far
// cheaper than the extra max-scan over the row a minimal sizing would need,
// and zero-count buckets contribute nothing downstream.
func (e *MaxEstimator[C]) fill(s []C) {
	e.sizeHist(maxTrackedY)
	for _, y := range s {
		k := int(y)
		if k > maxTrackedY {
			k = maxTrackedY
		}
		e.hist[k+1]++
	}
}

// fillMerged is fill over the pointwise max of two equal-length rows,
// computed on the fly: the histogram it leaves behind is byte-identical to
// fill(max(a, b)) with no merged row ever materialized.
func (e *MaxEstimator[C]) fillMerged(a, b []C) {
	e.sizeHist(maxTrackedY)
	for i, y := range a {
		if b[i] > y {
			y = b[i]
		}
		k := int(y)
		if k > maxTrackedY {
			k = maxTrackedY
		}
		e.hist[k+1]++
	}
}

// estimateFromHist inverts the filled histogram: S = (1/t)·Σ 2^−Y_i, then
// damped log-Newton against harmonicMean (harmonicMean(d) ≈ c/d, so each
// step is a near-exact Newton step in ln d). It allocates nothing beyond the
// reused histogram.
func (e *MaxEstimator[C]) estimateFromHist(t int) float64 {
	if e.hist[0] == t {
		// No trial saw any element: the counted set is empty.
		return 0
	}
	var sum float64
	for k, c := range e.hist {
		if c > 0 {
			// Index k holds value k−1; the Empty cell (value −1, weight 2)
			// only arises in hand-built rows and pushes d̂ down.
			sum += float64(c) * math.Exp2(-float64(k-1))
		}
	}
	S := sum / float64(t)
	d := 1 / S
	for i := 0; i < 48; i++ {
		g := harmonicMean(d)
		if g <= 0 {
			break
		}
		ratio := g / S
		if math.Abs(ratio-1) < 1e-10 {
			break
		}
		d *= ratio
	}
	return d
}

// Estimate computes the harmonic-sum statistic of the row and inverts it.
func (e *MaxEstimator[C]) Estimate(s []C) float64 {
	t := len(s)
	if t == 0 {
		return 0
	}
	e.fill(s)
	return e.estimateFromHist(t)
}

// EstimateMerged is the fused merge+estimate kernel: it returns
// Estimate(max(a, b)) — bit-identical floats — in one pass over the two
// rows, with no materialized merged row and no separate histogram fill. It
// is the per-edge hot path of the decomposition's buddy predicate, which
// previously copied a into scratch, merged b, and re-scanned the result. It
// panics if the lengths differ.
func (e *MaxEstimator[C]) EstimateMerged(a, b []C) float64 {
	if len(a) != len(b) {
		panic("sketch: EstimateMerged length mismatch")
	}
	t := len(a)
	if t == 0 {
		return 0
	}
	e.fillMerged(a, b)
	return e.estimateFromHist(t)
}

// EstimateThreshold implements the literal Lemma 5.2 statistic: compute
// Z_k = |{i : Y_i < k}|, pick K* = min{k : Z_k ≥ (27/40)t}, and return
//
//	d̂ = ln(Z_K*/t) / ln(1 − 2^−K*).
//
// It returns 0 when most trials saw no element at all. Estimate supersedes
// it in production paths (same sketch, ~2× lower error); it is kept for
// reference and for experiments that measure the proof's own estimator.
func (e *MaxEstimator[C]) EstimateThreshold(s []C) float64 {
	t := len(s)
	if t == 0 {
		return 0
	}
	threshold := int(math.Ceil(27.0 / 40.0 * float64(t)))
	e.fill(s)
	z := 0
	for k := 0; k < len(e.hist); k++ {
		z += e.hist[k]
		if z < threshold {
			continue
		}
		if k == 0 {
			// Most trials empty: the counted set is (near) empty.
			return 0
		}
		zk := z
		if zk == t {
			// Degenerate small-d corner: all maxima below k. Clamp so the
			// logarithm stays informative.
			zk = t - 1
			if zk < 1 {
				return 0
			}
		}
		num := math.Log(float64(zk) / float64(t))
		den := math.Log(1 - math.Pow(2, -float64(k)))
		if den == 0 {
			return 0
		}
		return num / den
	}
	return 0
}

// ThresholdEstimator adapts EstimateThreshold to the Estimator interface so
// benchmarks and accuracy sweeps can treat the Lemma 5.2 statistic as one
// more variant next to the harmonic extraction and the KMV estimator.
type ThresholdEstimator[C Cell] struct {
	E MaxEstimator[C]
}

// Name implements Estimator.
func (e *ThresholdEstimator[C]) Name() string { return "max/threshold" }

// Estimate implements Estimator via the threshold statistic.
func (e *ThresholdEstimator[C]) Estimate(s []C) float64 { return e.E.EstimateThreshold(s) }
