package sketch

import (
	"sort"
	"testing"
)

// FuzzSketchMerge throws arbitrary byte strings at both kernels' merges. For
// the max kernel the rows decode to raw int16s (the full value range, far
// beyond what geometric fills produce) and the SWAR path must match the
// scalar reference exactly alongside the semilattice laws. For the KMV
// kernel the bytes are canonicalized into valid rows (sorted distinct,
// sentinel-padded) first, since MergeKMV's contract only covers rows the
// kernel itself can produce.
func FuzzSketchMerge(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Add([]byte{0xff, 0x7f, 0x00, 0x80, 0xff, 0xff, 0x01, 0x00})
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		pairs := len(data) / 2
		width := pairs / 2
		if width == 0 {
			return
		}
		a := make([]int16, width)
		b := make([]int16, width)
		for i := 0; i < width; i++ {
			a[i] = int16(data[2*i]) | int16(data[2*i+1])<<8
			b[i] = int16(data[2*(width+i)]) | int16(data[2*(width+i)+1])<<8
		}
		// SWAR vs reference on raw values.
		got := cloneRow(a)
		MergeMax(got, b)
		want := cloneRow(a)
		MergeMaxGeneric(want, b)
		if !rowsEqual(got, want) {
			t.Fatalf("MergeMax != generic\n a=%v\n b=%v\n got=%v\n want=%v", a, b, got, want)
		}
		// Semilattice laws for both kernels, on rows canonicalized into each
		// kernel's value domain (the identity law only holds there); derive a
		// third row for associativity by swapping the halves.
		c := append(cloneRow(b[width/2:]), b[:width/2]...)
		checkMergeLaws(t, MaxKernel{}, canonMax(a), canonMax(b), canonMax(c))
		checkMergeLaws(t, KMVKernel{}, canonKMV(a), canonKMV(b), canonKMV(c))
	})
}

// canonMax folds values below the max kernel's identity (-1) back into its
// value domain while keeping the fuzzer's spread.
func canonMax(raw []int16) []int16 {
	row := cloneRow(raw)
	for i, v := range row {
		if v < Empty {
			row[i] = -v - 2
		}
	}
	return row
}

// canonKMV maps arbitrary int16s to a valid KMV row of the same width.
func canonKMV(raw []int16) []int16 {
	vals := make([]int16, 0, len(raw))
	seen := make(map[int16]bool, len(raw))
	for _, v := range raw {
		if v < 0 {
			v = -v - 1 // fold negatives into range
		}
		if v == kmvSentinel {
			continue
		}
		if !seen[v] {
			seen[v] = true
			vals = append(vals, v)
		}
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	row := make([]int16, len(raw))
	m := copy(row, vals)
	for i := m; i < len(row); i++ {
		row[i] = kmvSentinel
	}
	return row
}
