package sketch

import (
	"sort"
	"testing"
)

// FuzzSketchMerge throws arbitrary byte strings at every merge kernel. The
// raw bytes decode into int8 rows (the narrow max kernel's full value range,
// including the saturation ceiling, at every alignment of a shared backing)
// and into int16 rows (the wide reference kernel's full range), and each
// SWAR path must match its scalar reference exactly alongside the
// semilattice laws. For the KMV kernel the bytes are canonicalized into
// valid rows (sorted distinct, sentinel-padded) first, since MergeKMV's
// contract only covers rows the kernel itself can produce.
func FuzzSketchMerge(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Add([]byte{0xff, 0x7f, 0x00, 0x80, 0xff, 0xff, 0x01, 0x00})
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		pairs := len(data) / 2
		width := pairs / 2
		if width == 0 {
			return
		}
		a := make([]int16, width)
		b := make([]int16, width)
		for i := 0; i < width; i++ {
			a[i] = int16(data[2*i]) | int16(data[2*i+1])<<8
			b[i] = int16(data[2*(width+i)]) | int16(data[2*(width+i)+1])<<8
		}
		// 4-lane SWAR vs reference on raw int16 values.
		got := cloneRow(a)
		MergeMax(got, b)
		want := cloneRow(a)
		MergeMaxGeneric(want, b)
		if !rowsEqual(got, want) {
			t.Fatalf("MergeMax != generic\n a=%v\n b=%v\n got=%v\n want=%v", a, b, got, want)
		}
		// 8-lane SWAR vs reference on raw int8 values, at the alignment the
		// first byte selects: both rows slice off a shared backing so the
		// aligned fast path and the misaligned scalar fallback both fuzz.
		w8 := len(data) / 2
		off := int(data[0]) % 8
		aBack := make([]int8, w8+8)
		bBack := make([]int8, w8+8)
		for i := 0; i < w8; i++ {
			aBack[off+i] = int8(data[i])
			bBack[off+i] = int8(data[w8+i])
		}
		a8 := aBack[off : off+w8]
		b8 := bBack[off : off+w8]
		got8 := cloneRow(a8)
		MergeMax8(got8, b8)
		want8 := cloneRow(a8)
		MergeMax8Generic(want8, b8)
		if !rowsEqual(got8, want8) {
			t.Fatalf("MergeMax8 != generic (off=%d)\n a=%v\n b=%v\n got=%v\n want=%v", off, a8, b8, got8, want8)
		}
		// The paired fold must equal two sequential merges — the identity
		// the collect wave relies on to fold neighbors two at a time.
		pair := cloneRow(a8)
		MergeMax8Pair(pair, b8, want8)
		wantPair := cloneRow(a8)
		MergeMax8Generic(wantPair, b8)
		MergeMax8Generic(wantPair, want8)
		if !rowsEqual(pair, wantPair) {
			t.Fatalf("MergeMax8Pair != sequential (off=%d)\n a=%v\n b=%v", off, a8, b8)
		}
		// Semilattice laws for both kernels, on rows canonicalized into each
		// kernel's value domain (the identity law only holds there); derive a
		// third row for associativity by swapping the halves.
		c8 := append(cloneRow(b8[w8/2:]), b8[:w8/2]...)
		checkMergeLaws[int8](t, MaxKernel{}, canonMax8(a8), canonMax8(b8), canonMax8(c8))
		c := append(cloneRow(b[width/2:]), b[:width/2]...)
		checkMergeLaws[int16](t, KMVKernel{}, canonKMV(a), canonKMV(b), canonKMV(c))
	})
}

// canonMax8 folds values below the max kernel's identity (-1) back into its
// value domain while keeping the fuzzer's spread — the result still covers
// the whole legal range [Empty, MaxCell8].
func canonMax8(raw []int8) []int8 {
	row := cloneRow(raw)
	for i, v := range row {
		if v < Empty {
			row[i] = -v - 2
		}
	}
	return row
}

// canonKMV maps arbitrary int16s to a valid KMV row of the same width.
func canonKMV(raw []int16) []int16 {
	vals := make([]int16, 0, len(raw))
	seen := make(map[int16]bool, len(raw))
	for _, v := range raw {
		if v < 0 {
			v = -v - 1 // fold negatives into range
		}
		if v == kmvSentinel {
			continue
		}
		if !seen[v] {
			seen[v] = true
			vals = append(vals, v)
		}
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	row := make([]int16, len(raw))
	m := copy(row, vals)
	for i := m; i < len(row); i++ {
		row[i] = kmvSentinel
	}
	return row
}
