package sketch

import (
	"testing"

	"clustercolor/internal/parwork"
)

// benchRows8 builds an aligned pair of max-kernel rows of the given width.
func benchRows8(width int) (dst, src []int8) {
	var a Arena[int8]
	a.Reset(2, width)
	dst, src = a.Row(0), a.Row(1)
	k := MaxKernel{}
	k.Fill(dst, parwork.RowSeed(1, 0))
	k.Fill(src, parwork.RowSeed(1, 1))
	return dst, src
}

// benchRows16 widens the same fill into aligned int16 rows, so the wide
// reference kernels bench on identical values.
func benchRows16(width int) (dst, src []int16) {
	d8, s8 := benchRows8(width)
	var a Arena[int16]
	a.Reset(2, width)
	dst, src = a.Row(0), a.Row(1)
	for i := range d8 {
		dst[i] = int16(d8[i])
		src[i] = int16(s8[i])
	}
	return dst, src
}

// BenchmarkMergeMax8 measures the 8-lane SWAR merge — the decomposition's
// hot inner loop — on an arena-aligned row of the width the decomposition
// actually runs (t ≈ 1099 at ξ = 0.125, n = 10⁵).
func BenchmarkMergeMax8(b *testing.B) {
	dst, src := benchRows8(1099)
	b.SetBytes(int64(2 * len(dst)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergeMax8(dst, src)
	}
}

// BenchmarkMergeMax8Generic is the scalar reference on the same rows; the
// ratio to BenchmarkMergeMax8 is the SWAR speedup reported in
// BENCH_sketch.json.
func BenchmarkMergeMax8Generic(b *testing.B) {
	dst, src := benchRows8(1099)
	b.SetBytes(int64(2 * len(dst)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergeMax8Generic(dst, src)
	}
}

// BenchmarkMergeMax measures the 4-lane int16 merge kept for the fingerprint
// adapter's wide rows, on the same values as the narrow benchmarks.
func BenchmarkMergeMax(b *testing.B) {
	dst, src := benchRows16(1099)
	b.SetBytes(int64(2 * 2 * len(dst)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergeMax(dst, src)
	}
}

// BenchmarkMergeMaxGeneric is the scalar int16 reference on the same rows.
func BenchmarkMergeMaxGeneric(b *testing.B) {
	dst, src := benchRows16(1099)
	b.SetBytes(int64(2 * 2 * len(dst)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergeMaxGeneric(dst, src)
	}
}

// benchEstimate keeps estimator results observable across iterations.
var benchEstimate float64

// BenchmarkEstimateMerged measures the fused merge+estimate kernel on the
// per-edge hot-path shape: two collected rows whose union the buddy
// predicate thresholds.
func BenchmarkEstimateMerged(b *testing.B) {
	x, y := benchRows8(1099)
	var sc Scratch[int8]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchEstimate += sc.Est.EstimateMerged(x, y)
	}
}

// BenchmarkEstimateMergeTwo is the materialize-then-estimate baseline the
// fused kernel replaced; the ratio to BenchmarkEstimateMerged is the fusion
// win.
func BenchmarkEstimateMergeTwo(b *testing.B) {
	x, y := benchRows8(1099)
	var sc Scratch[int8]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchEstimate += sc.Est.Estimate(sc.MergeTwo(x, y))
	}
}

// BenchmarkMergeKMV measures the in-place KMV insertion merge at the width
// matching ξ = 0.125 accuracy. Merging dst into itself would be a no-op, so
// the loop alternates two source rows that keep displacing each other.
func BenchmarkMergeKMV(b *testing.B) {
	width := KMVWidthFor(0.125)
	var a Arena[int16]
	a.Reset(3, width)
	k := KMVKernel{}
	rows := [3][]int16{a.Row(0), a.Row(1), a.Row(2)}
	for i, row := range rows {
		k.Fill(row, parwork.RowSeed(2, i))
	}
	b.SetBytes(int64(2 * width))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergeKMV(rows[0], rows[1+i%2])
	}
}

// BenchmarkArenaFill measures per-row counter-stream filling at the current
// parallelism.
func BenchmarkArenaFill(b *testing.B) {
	var a Arena[int8]
	a.Reset(4096, 1099)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Fill(MaxKernel{}, 7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMergeMax8Pair measures the paired fold the collect wave uses to
// keep two neighbor-row miss streams in flight; compare against two
// BenchmarkMergeMax8 iterations.
func BenchmarkMergeMax8Pair(b *testing.B) {
	var ar Arena[int8]
	ar.Reset(3, 1099)
	dst, x, y := ar.Row(0), ar.Row(1), ar.Row(2)
	k := MaxKernel{}
	k.Fill(dst, parwork.RowSeed(3, 0))
	k.Fill(x, parwork.RowSeed(3, 1))
	k.Fill(y, parwork.RowSeed(3, 2))
	b.SetBytes(int64(3 * len(dst)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergeMax8Pair(dst, x, y)
	}
}
