package sketch

import (
	"testing"

	"clustercolor/internal/parwork"
)

// benchRows builds an aligned pair of max-kernel rows of the given width.
func benchRows(width int) (dst, src []int16) {
	var a Arena
	a.Reset(2, width)
	dst, src = a.Row(0), a.Row(1)
	k := MaxKernel{}
	k.Fill(dst, parwork.RowSeed(1, 0))
	k.Fill(src, parwork.RowSeed(1, 1))
	return dst, src
}

// BenchmarkMergeMax measures the SWAR word-at-a-time merge on an
// arena-aligned row of the width the decomposition actually runs
// (t ≈ 1099 at ξ = 0.125, n = 10⁵).
func BenchmarkMergeMax(b *testing.B) {
	dst, src := benchRows(1099)
	b.SetBytes(int64(2 * len(dst)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergeMax(dst, src)
	}
}

// BenchmarkMergeMaxGeneric is the scalar reference on the same rows; the
// ratio to BenchmarkMergeMax is the SWAR speedup reported in
// BENCH_sketch.json.
func BenchmarkMergeMaxGeneric(b *testing.B) {
	dst, src := benchRows(1099)
	b.SetBytes(int64(2 * len(dst)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergeMaxGeneric(dst, src)
	}
}

// BenchmarkMergeKMV measures the in-place KMV insertion merge at the width
// matching ξ = 0.125 accuracy. Merging dst into itself would be a no-op, so
// the loop alternates two source rows that keep displacing each other.
func BenchmarkMergeKMV(b *testing.B) {
	width := KMVWidthFor(0.125)
	var a Arena
	a.Reset(3, width)
	k := KMVKernel{}
	rows := [3][]int16{a.Row(0), a.Row(1), a.Row(2)}
	for i, row := range rows {
		k.Fill(row, parwork.RowSeed(2, i))
	}
	b.SetBytes(int64(2 * width))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergeKMV(rows[0], rows[1+i%2])
	}
}

// BenchmarkArenaFill measures per-row counter-stream filling at the current
// parallelism.
func BenchmarkArenaFill(b *testing.B) {
	var a Arena
	a.Reset(4096, 1099)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Fill(MaxKernel{}, 7); err != nil {
			b.Fatal(err)
		}
	}
}
