package sketch

import (
	"math"
	"testing"

	"clustercolor/internal/parwork"
)

// mergedRow builds the sketch of d parties by folding d singleton fills of
// kernel k — exactly what a collect wave computes for a vertex with d
// admitted neighbors.
func mergedRow(k Kernel, width, d int, seed uint64) []int16 {
	row := make([]int16, width)
	cell := k.EmptyCell()
	for i := range row {
		row[i] = cell
	}
	tmp := make([]int16, width)
	for p := 0; p < d; p++ {
		k.Fill(tmp, parwork.RowSeed(seed, p))
		k.Merge(row, tmp)
	}
	return row
}

func relErr(got, want float64) float64 {
	return math.Abs(got-want) / want
}

// TestEstimatorAccuracy bounds the relative error of each estimator variant
// on rows built from known counts. The harmonic extraction is the production
// path (error ≈ 1.04/√t); the Lemma 5.2 threshold statistic is ~2× noisier;
// KMV runs at its own width with error ≈ 1/√(k−2).
func TestEstimatorAccuracy(t *testing.T) {
	const trials = 2048
	counts := []int{10, 100, 1000, 20000}
	var est MaxEstimator
	var thr ThresholdEstimator
	for i, d := range counts {
		row := mergedRow(MaxKernel{}, trials, d, 0x9e3779b97f4a7c15+uint64(i))
		if e := relErr(est.Estimate(row), float64(d)); e > 0.10 {
			t.Errorf("max/harmonic d=%d: relative error %.3f > 0.10", d, e)
		}
		if e := relErr(thr.Estimate(row), float64(d)); e > 0.25 {
			t.Errorf("max/threshold d=%d: relative error %.3f > 0.25", d, e)
		}
	}
	kmvWidth := KMVWidthFor(0.1)
	var kmv KMVEstimator
	// KMV counts distinct 15-bit hashes, so its accuracy claim only covers
	// counts well below the hash range (at d ≈ R the birthday bound makes
	// distinct hashes saturate under d itself — a property of the kernel's
	// wire width, not estimator noise).
	for i, d := range []int{10, 100, 1000, 2000} {
		row := mergedRow(KMVKernel{}, kmvWidth, d, 0xd1b54a32d192ed03+uint64(i))
		if e := relErr(kmv.Estimate(row), float64(d)); e > 0.35 {
			t.Errorf("kmv d=%d (k=%d): relative error %.3f > 0.35", d, kmvWidth, e)
		}
	}
}

// TestEstimatorsOnEmptyRow: an all-identity row means no party was seen; all
// estimators must return 0.
func TestEstimatorsOnEmptyRow(t *testing.T) {
	maxEmpty := make([]int16, 128)
	for i := range maxEmpty {
		maxEmpty[i] = Empty
	}
	var est MaxEstimator
	if got := est.Estimate(maxEmpty); got != 0 {
		t.Errorf("max/harmonic on empty row: %v, want 0", got)
	}
	var thr ThresholdEstimator
	if got := thr.Estimate(maxEmpty); got != 0 {
		t.Errorf("max/threshold on empty row: %v, want 0", got)
	}
	kmvEmpty := make([]int16, 16)
	for i := range kmvEmpty {
		kmvEmpty[i] = kmvSentinel
	}
	var kmv KMVEstimator
	if got := kmv.Estimate(kmvEmpty); got != 0 {
		t.Errorf("kmv on empty row: %v, want 0", got)
	}
}

// TestKMVSubSaturation: short of saturation the row holds every distinct
// hash, so the estimate is the (near-exact) occupancy count.
func TestKMVSubSaturation(t *testing.T) {
	const k = 128
	const d = 40
	row := mergedRow(KMVKernel{}, k, d, 42)
	var kmv KMVEstimator
	got := kmv.Estimate(row)
	// Hash collisions among d parties can only lower the count, and with
	// d²/(2·32767) ≈ 0.02 expected collisions they essentially never do.
	if got < d-2 || got > d {
		t.Errorf("kmv sub-saturation estimate %v, want ≈ %d", got, d)
	}
}

// TestDeviationBitsExact pins EncodedBits to the materialized encoding:
// DeviationBits must equal the true bit position the writer ends at, with
// Encode padding only to the next byte.
func TestDeviationBitsExact(t *testing.T) {
	for i, d := range []int{1, 7, 50, 900} {
		row := mergedRow(MaxKernel{}, 257, d, 0xabcdef+uint64(i))
		k, _ := DeviationBaseline(row, nil)
		bits := DeviationBits(row, k)
		buf := EncodeDeviation(row)
		if len(buf) != (bits+7)/8 {
			t.Errorf("d=%d: DeviationBits=%d but Encode produced %d bytes", d, bits, len(buf))
		}
		back, err := DecodeDeviation(buf)
		if err != nil {
			t.Fatalf("d=%d: decode: %v", d, err)
		}
		if !rowsEqual(back, row) {
			t.Errorf("d=%d: decode round-trip mismatch", d)
		}
	}
}

// TestKernelEncodedBitsPositive: every kernel must charge at least one bit
// for any row, including the empty one (the wave charges max(bits, 1)).
func TestKernelEncodedBitsPositive(t *testing.T) {
	for _, k := range []Kernel{MaxKernel{}, KMVKernel{}} {
		row := make([]int16, 33)
		cell := k.EmptyCell()
		for i := range row {
			row[i] = cell
		}
		var counts []int
		if b := k.EncodedBits(row, &counts); b <= 0 {
			t.Errorf("%s: EncodedBits(empty row) = %d, want > 0", k.Name(), b)
		}
	}
}
