package sketch

import (
	"math"
	"math/rand/v2"
	"testing"

	"clustercolor/internal/parwork"
)

// mergedRow builds the sketch of d parties by folding d singleton fills of
// kernel k — exactly what a collect wave computes for a vertex with d
// admitted neighbors.
func mergedRow[C Cell](k Kernel[C], width, d int, seed uint64) []C {
	row := make([]C, width)
	cell := k.EmptyCell()
	for i := range row {
		row[i] = cell
	}
	tmp := make([]C, width)
	for p := 0; p < d; p++ {
		k.Fill(tmp, parwork.RowSeed(seed, p))
		k.Merge(row, tmp)
	}
	return row
}

func relErr(got, want float64) float64 {
	return math.Abs(got-want) / want
}

// TestEstimatorAccuracy bounds the relative error of each estimator variant
// on rows built from known counts. The harmonic extraction is the production
// path (error ≈ 1.04/√t); the Lemma 5.2 threshold statistic is ~2× noisier;
// KMV runs at its own width with error ≈ 1/√(k−2).
func TestEstimatorAccuracy(t *testing.T) {
	const trials = 2048
	counts := []int{10, 100, 1000, 20000}
	var est MaxEstimator[int8]
	var thr ThresholdEstimator[int8]
	for i, d := range counts {
		row := mergedRow[int8](MaxKernel{}, trials, d, 0x9e3779b97f4a7c15+uint64(i))
		if e := relErr(est.Estimate(row), float64(d)); e > 0.10 {
			t.Errorf("max/harmonic d=%d: relative error %.3f > 0.10", d, e)
		}
		if e := relErr(thr.Estimate(row), float64(d)); e > 0.25 {
			t.Errorf("max/threshold d=%d: relative error %.3f > 0.25", d, e)
		}
	}
	kmvWidth := KMVWidthFor(0.1)
	var kmv KMVEstimator
	// KMV counts distinct 15-bit hashes, so its accuracy claim only covers
	// counts well below the hash range (at d ≈ R the birthday bound makes
	// distinct hashes saturate under d itself — a property of the kernel's
	// wire width, not estimator noise).
	for i, d := range []int{10, 100, 1000, 2000} {
		row := mergedRow[int16](KMVKernel{}, kmvWidth, d, 0xd1b54a32d192ed03+uint64(i))
		if e := relErr(kmv.Estimate(row), float64(d)); e > 0.35 {
			t.Errorf("kmv d=%d (k=%d): relative error %.3f > 0.35", d, kmvWidth, e)
		}
	}
}

// TestEstimatorWidthIndependence pins the cell-width contract's estimator
// half: the same values in an int8 and an int16 row must produce
// bit-identical estimates from both max-kernel statistics.
func TestEstimatorWidthIndependence(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	var e8 MaxEstimator[int8]
	var e16 MaxEstimator[int16]
	for trial := 0; trial < 100; trial++ {
		narrow := randMaxRow(rng, 1+rng.IntN(300))
		wide := make([]int16, len(narrow))
		for i, v := range narrow {
			wide[i] = int16(v)
		}
		if got, want := e8.Estimate(narrow), e16.Estimate(wide); got != want {
			t.Fatalf("harmonic estimate differs across widths: %v vs %v", got, want)
		}
		if got, want := e8.EstimateThreshold(narrow), e16.EstimateThreshold(wide); got != want {
			t.Fatalf("threshold estimate differs across widths: %v vs %v", got, want)
		}
	}
}

// TestEstimateMergedMatchesEstimate pins the fused merge+estimate kernel:
// EstimateMerged(a, b) must produce bit-identical floats to estimating the
// materialized pointwise max, without modifying either input row.
func TestEstimateMergedMatchesEstimate(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 24))
	var est MaxEstimator[int8]
	for trial := 0; trial < 200; trial++ {
		width := 1 + rng.IntN(300)
		a := randMaxRow(rng, width)
		b := randMaxRow(rng, width)
		if trial%3 == 0 {
			// Include saturated cells so the fused clamp path is covered too.
			a = randMaxRowSaturated(rng, width)
		}
		aCopy, bCopy := cloneRow(a), cloneRow(b)
		merged := cloneRow(a)
		MergeMax8Generic(merged, b)
		want := est.Estimate(merged)
		got := est.EstimateMerged(a, b)
		if got != want {
			t.Fatalf("EstimateMerged = %v, Estimate(merged) = %v", got, want)
		}
		if !rowsEqual(a, aCopy) || !rowsEqual(b, bCopy) {
			t.Fatal("EstimateMerged modified an input row")
		}
	}
	// Zero-width rows estimate to 0 through both paths.
	if got := est.EstimateMerged(nil, nil); got != 0 {
		t.Fatalf("EstimateMerged(nil, nil) = %v, want 0", got)
	}
}

// TestEstimateMergedLengthMismatch: the fused kernel must refuse rows of
// different widths loudly rather than silently truncating.
func TestEstimateMergedLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EstimateMerged accepted rows of different lengths")
		}
	}()
	var est MaxEstimator[int8]
	est.EstimateMerged(make([]int8, 4), make([]int8, 5))
}

// TestMaxEstimatorSaturated is the saturation guard's estimator half: rows
// clamped at the narrow-width ceiling MaxCell8 — unreachable through organic
// fills, whose values stay ≤ 64 — must still produce finite estimates from
// every statistic, through both the plain and the fused path.
func TestMaxEstimatorSaturated(t *testing.T) {
	var est MaxEstimator[int8]
	var thr ThresholdEstimator[int8]
	saturated := make([]int8, 256)
	for i := range saturated {
		saturated[i] = MaxCell8
	}
	organic := mergedRow[int8](MaxKernel{}, 256, 1000, 77)
	for _, row := range [][]int8{saturated, organic} {
		if got := est.Estimate(row); math.IsInf(got, 0) || math.IsNaN(got) || got <= 0 {
			t.Fatalf("harmonic estimate on saturated row not finite positive: %v", got)
		}
		if got := thr.Estimate(row); math.IsInf(got, 0) || math.IsNaN(got) {
			t.Fatalf("threshold estimate on saturated row not finite: %v", got)
		}
		if got := est.EstimateMerged(row, saturated); math.IsInf(got, 0) || math.IsNaN(got) || got <= 0 {
			t.Fatalf("fused estimate on saturated row not finite positive: %v", got)
		}
	}
}

// TestEstimatorsOnEmptyRow: an all-identity row means no party was seen; all
// estimators must return 0.
func TestEstimatorsOnEmptyRow(t *testing.T) {
	maxEmpty := make([]int8, 128)
	for i := range maxEmpty {
		maxEmpty[i] = Empty
	}
	var est MaxEstimator[int8]
	if got := est.Estimate(maxEmpty); got != 0 {
		t.Errorf("max/harmonic on empty row: %v, want 0", got)
	}
	if got := est.EstimateMerged(maxEmpty, maxEmpty); got != 0 {
		t.Errorf("fused estimate on empty rows: %v, want 0", got)
	}
	var thr ThresholdEstimator[int8]
	if got := thr.Estimate(maxEmpty); got != 0 {
		t.Errorf("max/threshold on empty row: %v, want 0", got)
	}
	kmvEmpty := make([]int16, 16)
	for i := range kmvEmpty {
		kmvEmpty[i] = kmvSentinel
	}
	var kmv KMVEstimator
	if got := kmv.Estimate(kmvEmpty); got != 0 {
		t.Errorf("kmv on empty row: %v, want 0", got)
	}
}

// TestKMVSubSaturation: short of saturation the row holds every distinct
// hash, so the estimate is the (near-exact) occupancy count.
func TestKMVSubSaturation(t *testing.T) {
	const k = 128
	const d = 40
	row := mergedRow[int16](KMVKernel{}, k, d, 42)
	var kmv KMVEstimator
	got := kmv.Estimate(row)
	// Hash collisions among d parties can only lower the count, and with
	// d²/(2·32767) ≈ 0.02 expected collisions they essentially never do.
	if got < d-2 || got > d {
		t.Errorf("kmv sub-saturation estimate %v, want ≈ %d", got, d)
	}
}

// TestDeviationBitsExact pins EncodedBits to the materialized encoding:
// DeviationBits must equal the true bit position the writer ends at, with
// Encode padding only to the next byte.
func TestDeviationBitsExact(t *testing.T) {
	for i, d := range []int{1, 7, 50, 900} {
		row := mergedRow[int8](MaxKernel{}, 257, d, 0xabcdef+uint64(i))
		k, _ := DeviationBaseline(row, nil)
		bits := DeviationBits(row, k)
		buf := EncodeDeviation(row)
		if len(buf) != (bits+7)/8 {
			t.Errorf("d=%d: DeviationBits=%d but Encode produced %d bytes", d, bits, len(buf))
		}
		back, err := DecodeDeviation(buf)
		if err != nil {
			t.Fatalf("d=%d: decode: %v", d, err)
		}
		if len(back) != len(row) {
			t.Fatalf("d=%d: decode round-trip width %d, want %d", d, len(back), len(row))
		}
		for j := range row {
			if back[j] != int16(row[j]) {
				t.Errorf("d=%d: decode round-trip mismatch at cell %d", d, j)
				break
			}
		}
	}
}

// TestDeviationEncodingWidthIndependence pins the cell-width contract's wire
// half: the deviation encoding of the same values must be byte-identical —
// same baseline, same bit count, same bytes — from narrow and wide rows.
func TestDeviationEncodingWidthIndependence(t *testing.T) {
	rng := rand.New(rand.NewPCG(25, 26))
	for trial := 0; trial < 100; trial++ {
		narrow := randMaxRow(rng, 1+rng.IntN(300))
		wide := make([]int16, len(narrow))
		for i, v := range narrow {
			wide[i] = int16(v)
		}
		k8, _ := DeviationBaseline(narrow, nil)
		k16, _ := DeviationBaseline(wide, nil)
		if k8 != k16 {
			t.Fatalf("baseline differs across widths: %d vs %d", k8, k16)
		}
		if b8, b16 := DeviationBits(narrow, k8), DeviationBits(wide, k16); b8 != b16 {
			t.Fatalf("bit count differs across widths: %d vs %d", b8, b16)
		}
		e8, e16 := EncodeDeviation(narrow), EncodeDeviation(wide)
		if len(e8) != len(e16) {
			t.Fatalf("encoding length differs across widths: %d vs %d", len(e8), len(e16))
		}
		for i := range e8 {
			if e8[i] != e16[i] {
				t.Fatalf("encoding differs across widths at byte %d", i)
			}
		}
	}
}

// TestKernelEncodedBitsPositive: every kernel must charge at least one bit
// for any row, including the empty one (the wave charges max(bits, 1)).
func TestKernelEncodedBitsPositive(t *testing.T) {
	var counts []int
	maxRow := make([]int8, 33)
	for i := range maxRow {
		maxRow[i] = MaxKernel{}.EmptyCell()
	}
	if b := (MaxKernel{}).EncodedBits(maxRow, &counts); b <= 0 {
		t.Errorf("max: EncodedBits(empty row) = %d, want > 0", b)
	}
	kmvRow := make([]int16, 33)
	for i := range kmvRow {
		kmvRow[i] = KMVKernel{}.EmptyCell()
	}
	if b := (KMVKernel{}).EncodedBits(kmvRow, &counts); b <= 0 {
		t.Errorf("kmv: EncodedBits(empty row) = %d, want > 0", b)
	}
}
