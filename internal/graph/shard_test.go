package graph

import (
	"slices"
	"testing"
)

// checkSharded verifies every structural invariant of a sharded view
// against its global graph: partition coverage, local CSR content, id
// round-trips, the slot map bijection, and the boundary tables.
func checkSharded(t *testing.T, g *Graph, sg *ShardedGraph) {
	t.Helper()
	k := sg.NumShards()
	if int(sg.Starts[0]) != 0 || int(sg.Starts[k]) != g.N() {
		t.Fatalf("partition [%d, %d) does not cover [0, %d)", sg.Starts[0], sg.Starts[k], g.N())
	}
	slotSeen := make([]bool, 2*g.M())
	for s, sl := range sg.Slices {
		if sl.Shard != s || sl.Lo != int(sg.Starts[s]) || sl.Hi != int(sg.Starts[s+1]) {
			t.Fatalf("slice %d bounds [%d,%d) disagree with Starts", s, sl.Lo, sl.Hi)
		}
		own := sl.Own()
		if sl.CSR.N() != own+len(sl.Halo) {
			t.Fatalf("slice %d CSR has %d vertices, want %d own + %d halo", s, sl.CSR.N(), own, len(sl.Halo))
		}
		// Id round-trips.
		for l := 0; l < sl.CSR.N(); l++ {
			gv := sl.ToGlobal(l)
			back, ok := sl.LocalOf(gv)
			if !ok || back != l {
				t.Fatalf("slice %d local %d -> global %d -> local %d (ok=%v)", s, l, gv, back, ok)
			}
		}
		for i, u := range sl.Halo {
			if i > 0 && sl.Halo[i-1] >= u {
				t.Fatalf("slice %d halo not sorted/deduped at %d", s, i)
			}
			if o := sg.Owner(int(u)); int(sl.HaloOwner[i]) != o {
				t.Fatalf("slice %d halo %d owner %d, want %d", s, u, sl.HaloOwner[i], o)
			}
			if o := sg.Owner(int(u)); o == s {
				t.Fatalf("slice %d halo vertex %d is owned", s, u)
			}
		}
		// Owned rows: exactly the global row, partitioned into owned and
		// halo neighbors, with the slot map pointing at the global slot.
		boundaryEdges := 0
		boundarySet := make(map[int32]bool)
		for _, b := range sl.Boundary {
			boundarySet[b] = true
		}
		for v := sl.Lo; v < sl.Hi; v++ {
			lv := v - sl.Lo
			row := g.Neighbors(v)
			localRow := sl.CSR.Neighbors(lv)
			if len(localRow) != len(row) {
				t.Fatalf("slice %d vertex %d degree %d, want %d", s, v, len(localRow), len(row))
			}
			hasHalo := false
			globalBase := g.AdjOffset(v)
			localBase := sl.CSR.AdjOffset(lv)
			seen := make(map[int]bool, len(row))
			for j, lu := range localRow {
				gu := sl.ToGlobal(int(lu))
				seen[gu] = true
				if gu < sl.Lo || gu >= sl.Hi {
					hasHalo = true
					boundaryEdges++
				}
				gslot := int(sl.SlotToGlobal[localBase+j])
				if gslot < globalBase || gslot >= globalBase+len(row) {
					t.Fatalf("slice %d slot (%d,%d) maps to %d outside row [%d,%d)", s, v, gu, gslot, globalBase, globalBase+len(row))
				}
				if int(row[gslot-globalBase]) != gu {
					t.Fatalf("slice %d slot (%d,%d) maps to global neighbor %d", s, v, gu, row[gslot-globalBase])
				}
				if slotSeen[gslot] {
					t.Fatalf("global slot %d claimed twice", gslot)
				}
				slotSeen[gslot] = true
			}
			for _, u := range row {
				if !seen[int(u)] {
					t.Fatalf("slice %d vertex %d missing neighbor %d", s, v, u)
				}
			}
			if hasHalo != boundarySet[int32(lv)] {
				t.Fatalf("slice %d vertex %d boundary flag %v, want %v", s, v, boundarySet[int32(lv)], hasHalo)
			}
		}
		if boundaryEdges != sl.BoundaryEdges {
			t.Fatalf("slice %d BoundaryEdges %d, want %d", s, sl.BoundaryEdges, boundaryEdges)
		}
		// Halo rows never reach other halo vertices.
		for l := own; l < sl.CSR.N(); l++ {
			for _, lu := range sl.CSR.Neighbors(l) {
				if int(lu) >= own {
					t.Fatalf("slice %d has halo-halo edge %d-%d", s, l, lu)
				}
			}
		}
	}
	// Every owned directed global slot is claimed exactly once across shards.
	for slot, ok := range slotSeen {
		if !ok {
			t.Fatalf("global slot %d unclaimed", slot)
		}
	}
}

func TestShardedGraphInvariants(t *testing.T) {
	rng := NewRand(7)
	g := MustGNP(97, 0.12, rng)
	for _, k := range []int{1, 2, 3, 4, 7, 96, 97, 120} {
		sg, err := NewShardedGraph(g, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if sg.NumShards() != k {
			t.Fatalf("k=%d: got %d shards", k, sg.NumShards())
		}
		checkSharded(t, g, sg)
	}
}

// TestShardedGraphEmptyShards covers k > n: trailing shards own nothing and
// must come out structurally empty but well-formed.
func TestShardedGraphEmptyShards(t *testing.T) {
	g := Clique(3)
	sg, err := NewShardedGraph(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	checkSharded(t, g, sg)
	empty := 0
	for _, sl := range sg.Slices {
		if sl.Own() == 0 {
			empty++
			if len(sl.Halo) != 0 || sl.CSR.N() != 0 || sl.BoundaryEdges != 0 {
				t.Fatalf("empty shard %d has halo %d / csr %d / boundary %d", sl.Shard, len(sl.Halo), sl.CSR.N(), sl.BoundaryEdges)
			}
		}
	}
	if empty != 5 {
		t.Fatalf("want 5 empty shards, got %d", empty)
	}
}

// TestShardedGraphSingleVertexShards covers k == n: every shard owns one
// vertex and every edge is a boundary edge.
func TestShardedGraphSingleVertexShards(t *testing.T) {
	g := Clique(6)
	sg, err := NewShardedGraph(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	checkSharded(t, g, sg)
	for _, sl := range sg.Slices {
		if sl.Own() != 1 || sl.BoundaryEdges != 5 || len(sl.Halo) != 5 {
			t.Fatalf("shard %d: own %d, boundary %d, halo %d", sl.Shard, sl.Own(), sl.BoundaryEdges, len(sl.Halo))
		}
	}
}

// TestShardedGraphMidCliqueSplit pins the all-boundary case the issue calls
// out: a ring of cliques partitioned mid-clique, so shard borders cut
// through maximally dense subgraphs.
func TestShardedGraphMidCliqueSplit(t *testing.T) {
	g, err := RingOfCliques(6, 10) // n=60; k=8 puts borders inside cliques
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 4, 8} {
		sg, err := NewShardedGraph(g, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		checkSharded(t, g, sg)
	}
	// An explicit nasty partition: one clique split across three shards.
	sg, err := ShardedGraphFromStarts(g, []int32{0, 3, 7, 10, int32(g.N())})
	if err != nil {
		t.Fatal(err)
	}
	checkSharded(t, g, sg)
}

// TestShardedGraphUnevenShards covers shard counts that do not divide n.
func TestShardedGraphUnevenShards(t *testing.T) {
	rng := NewRand(11)
	g := MustGNP(101, 0.08, rng) // prime n
	for _, k := range []int{2, 3, 4, 5, 7} {
		sg, err := NewShardedGraph(g, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		total := 0
		for _, sl := range sg.Slices {
			total += sl.Own()
		}
		if total != g.N() {
			t.Fatalf("k=%d: shards own %d vertices, want %d", k, total, g.N())
		}
		checkSharded(t, g, sg)
	}
}

func TestShardedGraphRejectsBadPartitions(t *testing.T) {
	g := Path(5)
	if _, err := NewShardedGraph(g, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := ShardedGraphFromStarts(g, []int32{0, 3, 2, 5}); err == nil {
		t.Fatal("decreasing starts accepted")
	}
	if _, err := ShardedGraphFromStarts(g, []int32{0, 4}); err == nil {
		t.Fatal("short cover accepted")
	}
	if _, err := ShardedGraphFromStarts(g, []int32{1, 5}); err == nil {
		t.Fatal("offset cover accepted")
	}
}

// TestShardedIDMapsProperty drives Owner, LocalOf, and ToGlobal against
// brute-force scans over randomized partitions — including empty shards,
// k > n, and single-vertex slices — on both construction paths.
func TestShardedIDMapsProperty(t *testing.T) {
	rng := NewRand(42)
	for trial := 0; trial < 60; trial++ {
		n := rng.IntN(40)
		k := 1 + rng.IntN(n+5) // routinely exceeds n, forcing empty shards
		starts := make([]int32, k+1)
		for s := 1; s < k; s++ {
			starts[s] = int32(rng.IntN(n + 1))
		}
		starts[k] = int32(n)
		slices.Sort(starts)
		g, err := GNP(n, 0.2, rng)
		if err != nil {
			t.Fatal(err)
		}
		mat, err := ShardedGraphFromStarts(g, starts)
		if err != nil {
			t.Fatal(err)
		}
		str, err := ShardedGraphFromEdgeStarts(n, starts, StreamOf(g))
		if err != nil {
			t.Fatal(err)
		}
		for name, sg := range map[string]*ShardedGraph{"materialized": mat, "streamed": str} {
			if sg.N() != n || sg.M() != g.M() || sg.MaxDegree() != g.MaxDegree() {
				t.Fatalf("trial %d %s: dims n=%d m=%d Δ=%d, want %d/%d/%d",
					trial, name, sg.N(), sg.M(), sg.MaxDegree(), n, g.M(), g.MaxDegree())
			}
			for v := 0; v < n; v++ {
				// Brute force: last shard whose range contains v.
				want := -1
				for s := 0; s < k; s++ {
					if v >= int(starts[s]) && v < int(starts[s+1]) {
						want = s
						break
					}
				}
				if got := sg.Owner(v); got != want {
					t.Fatalf("trial %d %s: Owner(%d) = %d, want %d (starts %v)", trial, name, v, got, want, starts)
				}
			}
			for s, sl := range sg.Slices {
				for v := 0; v < n; v++ {
					// Brute force: owned if in range, else linear halo scan.
					wantLocal, wantOK := -1, false
					if v >= sl.Lo && v < sl.Hi {
						wantLocal, wantOK = v-sl.Lo, true
					} else {
						for i, h := range sl.Halo {
							if int(h) == v {
								wantLocal, wantOK = sl.Own()+i, true
								break
							}
						}
					}
					got, ok := sl.LocalOf(v)
					if ok != wantOK || (ok && got != wantLocal) {
						t.Fatalf("trial %d %s: slice %d LocalOf(%d) = (%d,%v), want (%d,%v)",
							trial, name, s, v, got, ok, wantLocal, wantOK)
					}
					if wantOK && sl.ToGlobal(wantLocal) != v {
						t.Fatalf("trial %d %s: slice %d ToGlobal(%d) != %d", trial, name, s, wantLocal, v)
					}
				}
			}
		}
	}
}
