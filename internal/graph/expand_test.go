package graph

import "testing"

// edgeKey normalizes an undirected pair for use as a map key in tests.
func edgeKey(u, v int) [2]int32 {
	if u > v {
		u, v = v, u
	}
	return [2]int32{int32(u), int32(v)}
}

func TestExpandTopologies(t *testing.T) {
	h := Cycle(6)
	tests := []struct {
		name string
		spec ExpandSpec
	}{
		{name: "singleton", spec: ExpandSpec{Topology: TopologySingleton}},
		{name: "path", spec: ExpandSpec{Topology: TopologyPath, MachinesPerCluster: 4}},
		{name: "star", spec: ExpandSpec{Topology: TopologyStar, MachinesPerCluster: 5}},
		{name: "tree", spec: ExpandSpec{Topology: TopologyTree, MachinesPerCluster: 6}},
		{name: "redundant", spec: ExpandSpec{Topology: TopologyStar, MachinesPerCluster: 5, RedundantLinks: 3}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rng := NewRand(42)
			exp, err := Expand(h, tt.spec, rng)
			if err != nil {
				t.Fatal(err)
			}
			size := tt.spec.MachinesPerCluster
			if tt.spec.Topology == TopologySingleton {
				size = 1
			}
			if exp.G.N() != h.N()*size {
				t.Fatalf("G.N() = %d, want %d", exp.G.N(), h.N()*size)
			}
			// Clusters must be connected within G.
			for v := 0; v < h.N(); v++ {
				ms := exp.Machines[v]
				if len(ms) != size {
					t.Fatalf("cluster %d has %d machines, want %d", v, len(ms), size)
				}
				inCluster := func(m int) bool { return exp.ClusterOf[m] == v }
				depth, _ := exp.G.BFSDepths(int(ms[0]), inCluster)
				for _, m := range ms {
					if depth[m] < 0 {
						t.Fatalf("cluster %d disconnected at machine %d", v, m)
					}
				}
			}
			// Every H-edge must be realized by >= 1 inter-cluster link, and
			// every inter-cluster link must realize an H-edge.
			realized := map[[2]int32]bool{}
			for m := 0; m < exp.G.N(); m++ {
				cu := exp.ClusterOf[m]
				for _, m2 := range exp.G.Neighbors(m) {
					cv := exp.ClusterOf[m2]
					if cu == cv {
						continue
					}
					if !h.HasEdge(cu, cv) {
						t.Fatalf("inter-cluster link (%d,%d) between non-adjacent clusters %d,%d", m, m2, cu, cv)
					}
					realized[edgeKey(cu, cv)] = true
				}
			}
			for u := 0; u < h.N(); u++ {
				for _, w := range h.Neighbors(u) {
					if int(w) > u && !realized[edgeKey(u, int(w))] {
						t.Fatalf("H-edge {%d,%d} not realized", u, w)
					}
				}
			}
		})
	}
}

func TestExpandRejectsBadSpec(t *testing.T) {
	rng := NewRand(1)
	if _, err := Expand(Path(3), ExpandSpec{Topology: TopologyPath, MachinesPerCluster: 0}, rng); err == nil {
		t.Fatal("zero machines accepted")
	}
	if _, err := Expand(Path(3), ExpandSpec{Topology: ClusterTopology(99), MachinesPerCluster: 2}, rng); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestTopologyString(t *testing.T) {
	tests := []struct {
		topo ClusterTopology
		want string
	}{
		{TopologySingleton, "singleton"},
		{TopologyPath, "path"},
		{TopologyStar, "star"},
		{TopologyTree, "tree"},
		{ClusterTopology(42), "ClusterTopology(42)"},
	}
	for _, tt := range tests {
		if got := tt.topo.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestExpandRedundantLinksCreateMultiplePaths(t *testing.T) {
	rng := NewRand(8)
	h := Clique(4)
	exp, err := Expand(h, ExpandSpec{Topology: TopologyStar, MachinesPerCluster: 8, RedundantLinks: 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Count inter-cluster links per H-edge; expect more than one for at
	// least one pair (with 4 attempts each over 8x8 machine pairs this is
	// essentially certain).
	count := map[[2]int32]int{}
	for m := 0; m < exp.G.N(); m++ {
		for _, m2 := range exp.G.Neighbors(m) {
			if int(m2) < m {
				continue
			}
			cu, cv := exp.ClusterOf[m], exp.ClusterOf[m2]
			if cu != cv {
				count[edgeKey(cu, cv)]++
			}
		}
	}
	multi := 0
	for _, c := range count {
		if c > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no H-edge got redundant links")
	}
}
