package graph

import (
	"fmt"
	"slices"
	"sort"

	"clustercolor/internal/parwork"
)

// EdgeStream produces the undirected edges of a graph by calling emit(u, v)
// once per edge occurrence (duplicates and either endpoint order are fine —
// construction dedupes exactly like Builder). Streams must be re-runnable:
// invoking the stream again replays the identical edge sequence, which is
// what lets a multi-process deployment build one slice per pass without any
// shard ever holding the global edge set.
type EdgeStream func(emit func(u, v int) error) error

// StreamOf adapts a materialized graph into an EdgeStream replaying its
// edges (each undirected edge once, in CSR row order). It exists mostly for
// the conformance harness: any scenario graph becomes a stream, and
// streaming construction from it must be byte-identical to the materialized
// partition.
func StreamOf(g *Graph) EdgeStream {
	return func(emit func(u, v int) error) error {
		for v := 0; v < g.N(); v++ {
			for _, u := range g.Neighbors(v) {
				if int(u) > v {
					if err := emit(v, int(u)); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
}

// ShardedBuilder accumulates a partitioned graph directly from edges: every
// edge is routed to the buffer of each endpoint's owner shard (cross-shard
// edges land in both), and Build turns each buffer into a ShardSlice — local
// CSR, halo, boundary — without ever materializing the global CSR. The
// global Graph pointer of the result is nil and slices carry no SlotToGlobal
// map; per-edge state downstream must be keyed by local slots. The
// maxBuilderEdges cap applies per shard, not globally, so instances past the
// global builder cap are constructible once partitioned finely enough.
type ShardedBuilder struct {
	n      int
	starts []int32
	edges  [][]uint64 // per shard: packed lo<<32 | hi, lo < hi
	peak   int        // largest single-shard buffer seen (edge count)
	built  bool
}

// NewShardedBuilder returns a builder for a partitioned graph on n vertices
// with the explicit partition starts (validated like
// ShardedGraphFromStarts).
func NewShardedBuilder(n int, starts []int32) (*ShardedBuilder, error) {
	if n < 0 {
		n = 0
	}
	if err := validStarts(n, starts); err != nil {
		return nil, err
	}
	return &ShardedBuilder{n: n, starts: starts, edges: make([][]uint64, len(starts)-1)}, nil
}

// owner returns the shard owning global vertex v under the builder's starts.
func (sb *ShardedBuilder) owner(v int) int {
	return sort.Search(len(sb.starts)-1, func(s int) bool { return int(sb.starts[s+1]) > v })
}

// AddEdge buffers the undirected edge {u, v} with Builder's validation
// (range, self-loops; duplicates merged at Build). The edge is routed to
// both endpoint owners' buffers; each buffer is capped at maxBuilderEdges.
func (sb *ShardedBuilder) AddEdge(u, v int) error {
	if sb.built {
		panic("graph: ShardedBuilder used after Build")
	}
	if u < 0 || u >= sb.n || v < 0 || v >= sb.n {
		return fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, sb.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	if u > v {
		u, v = v, u
	}
	e := uint64(u)<<32 | uint64(v)
	su, sv := sb.owner(u), sb.owner(v)
	if err := sb.push(su, e); err != nil {
		return err
	}
	if sv != su {
		return sb.push(sv, e)
	}
	return nil
}

func (sb *ShardedBuilder) push(s int, e uint64) error {
	if len(sb.edges[s]) >= maxBuilderEdges {
		return fmt.Errorf("graph: shard %d edge count exceeds %d", s, maxBuilderEdges)
	}
	sb.edges[s] = append(sb.edges[s], e)
	if len(sb.edges[s]) > sb.peak {
		sb.peak = len(sb.edges[s])
	}
	return nil
}

// PeakBufferedEdges returns the largest per-shard edge buffer the builder
// held — the streaming-construction memory high-water mark a bench row
// reports (a multi-process deployment holds exactly one such buffer).
func (sb *ShardedBuilder) PeakBufferedEdges() int { return sb.peak }

// Build finalizes every slice in parallel and returns the global-graph-less
// ShardedGraph. The builder must not be used afterwards.
func (sb *ShardedBuilder) Build() (*ShardedGraph, error) {
	if sb.built {
		panic("graph: ShardedBuilder used after Build")
	}
	sb.built = true
	k := len(sb.starts) - 1
	sg := &ShardedGraph{Starts: sb.starts, n: sb.n}
	slices, err := parwork.ForEach(k, func(s int) (*ShardSlice, error) {
		sl := sliceFromEdges(sb.starts, s, sb.edges[s])
		sb.edges[s] = nil // construction is the peak; free eagerly
		return sl, nil
	})
	if err != nil {
		return nil, err
	}
	sg.Slices = slices
	// Owned local degrees equal global degrees, so global dimensions fall
	// out of the slices: every directed edge has exactly one owner.
	ownedSlots := 0
	for _, sl := range slices {
		ownedSlots += sl.CSR.AdjOffset(sl.Own())
		for lv := 0; lv < sl.Own(); lv++ {
			if d := len(sl.CSR.Neighbors(lv)); d > sg.maxDeg {
				sg.maxDeg = d
			}
		}
	}
	sg.m = ownedSlots / 2
	return sg, nil
}

// sliceFromEdges builds one ShardSlice from the deduped edges touching it:
// the same halo/local-CSR layout buildSlice derives from the global CSR, so
// the two constructions are byte-identical (minus SlotToGlobal, which only
// the materialized path can provide).
func sliceFromEdges(starts []int32, shard int, edges []uint64) *ShardSlice {
	lo, hi := int(starts[shard]), int(starts[shard+1])
	sl := &ShardSlice{Shard: shard, Lo: lo, Hi: hi}
	own := hi - lo
	slices.Sort(edges)
	edges = slices.Compact(edges)
	// Halo: distinct out-of-range endpoints, ascending. Every buffered edge
	// touches the shard, so at most one endpoint is out of range and each
	// cross edge is exactly one directed owned→halo edge.
	var halo []int32
	boundary := make([]bool, own)
	for _, e := range edges {
		a, b := int(e>>32), int(uint32(e))
		if a < lo || a >= hi {
			halo = append(halo, int32(a))
			boundary[b-lo] = true
			sl.BoundaryEdges++
		} else if b < lo || b >= hi {
			halo = append(halo, int32(b))
			boundary[a-lo] = true
			sl.BoundaryEdges++
		}
	}
	sort.Slice(halo, func(i, j int) bool { return halo[i] < halo[j] })
	halo = dedupe(halo)
	sl.Halo = halo
	sl.HaloOwner = make([]int32, len(halo))
	for i, u := range halo {
		sl.HaloOwner[i] = int32(ownerOf(starts, int(u)))
	}
	for lv, isB := range boundary {
		if isB {
			sl.Boundary = append(sl.Boundary, int32(lv))
		}
	}
	// Local CSR over owned-then-halo ids. The edges are already simple, and
	// Builder's sort lays rows out sorted, matching the materialized slice.
	bld := NewBuilder(own + len(halo))
	local := func(g int) int {
		if g >= lo && g < hi {
			return g - lo
		}
		return own + sort.Search(len(halo), func(i int) bool { return int(halo[i]) >= g })
	}
	for _, e := range edges {
		// Endpoints were validated at AddEdge; local ids are in range by
		// construction, so this cannot fail.
		if err := bld.AddEdge(local(int(e>>32)), local(int(uint32(e)))); err != nil {
			panic("graph: sliceFromEdges: " + err.Error())
		}
	}
	sl.CSR = bld.Build()
	return sl
}

// ownerOf returns the shard owning global vertex v under starts.
func ownerOf(starts []int32, v int) int {
	return sort.Search(len(starts)-1, func(s int) bool { return int(starts[s+1]) > v })
}

// NewShardedGraphFromEdges builds a global-graph-less sharded graph on n
// vertices from an edge stream, partitioned into k near-even contiguous
// shards (the NewShardedGraph partition). One pass over the stream routes
// every edge to its owner slices; no global CSR is ever materialized.
func NewShardedGraphFromEdges(n, k int, stream EdgeStream) (*ShardedGraph, error) {
	starts, err := EvenStarts(n, k)
	if err != nil {
		return nil, err
	}
	return ShardedGraphFromEdgeStarts(n, starts, stream)
}

// ShardedGraphFromEdgeStarts is NewShardedGraphFromEdges for an explicit
// partition.
func ShardedGraphFromEdgeStarts(n int, starts []int32, stream EdgeStream) (*ShardedGraph, error) {
	sb, err := NewShardedBuilder(n, starts)
	if err != nil {
		return nil, err
	}
	if err := stream(sb.AddEdge); err != nil {
		return nil, err
	}
	return sb.Build()
}

// NewShardSliceFromEdges builds the single slice of one shard from a pass
// over the stream, discarding every edge that does not touch it — the
// multi-process construction shape: k processes each replay the stream
// (streams are re-runnable) and hold only their own slice plus its edge
// buffer, never the global edge set. The slice is byte-identical to the
// corresponding slice of ShardedGraphFromEdgeStarts.
func NewShardSliceFromEdges(n int, starts []int32, shard int, stream EdgeStream) (*ShardSlice, error) {
	if err := validStarts(n, starts); err != nil {
		return nil, err
	}
	if shard < 0 || shard >= len(starts)-1 {
		return nil, fmt.Errorf("graph: shard %d out of range [0,%d)", shard, len(starts)-1)
	}
	lo, hi := int(starts[shard]), int(starts[shard+1])
	var edges []uint64
	err := stream(func(u, v int) error {
		if u < 0 || u >= n || v < 0 || v >= n {
			return fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, n)
		}
		if u == v {
			return fmt.Errorf("graph: self-loop at %d", u)
		}
		if u > v {
			u, v = v, u
		}
		if (u < lo || u >= hi) && (v < lo || v >= hi) {
			return nil
		}
		if len(edges) >= maxBuilderEdges {
			return fmt.Errorf("graph: shard %d edge count exceeds %d", shard, maxBuilderEdges)
		}
		edges = append(edges, uint64(u)<<32|uint64(v))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sliceFromEdges(starts, shard, edges), nil
}
