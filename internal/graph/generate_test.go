package graph

import (
	"hash/fnv"
	"math"
	"testing"
)

// edgeFingerprint hashes the full sorted edge list, for pinning generator
// determinism across representation changes.
func edgeFingerprint(g *Graph) uint64 {
	h := fnv.New64a()
	buf := make([]byte, 8)
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Neighbors(v) {
			if int(w) > v {
				buf[0] = byte(v)
				buf[1] = byte(v >> 8)
				buf[2] = byte(v >> 16)
				buf[3] = byte(v >> 24)
				buf[4] = byte(w)
				buf[5] = byte(w >> 8)
				buf[6] = byte(w >> 16)
				buf[7] = byte(w >> 24)
				h.Write(buf)
			}
		}
	}
	return h.Sum64()
}

func assertSortedAdjacency(t *testing.T, g *Graph) {
	t.Helper()
	for v := 0; v < g.N(); v++ {
		nb := g.Neighbors(v)
		for i := 1; i < len(nb); i++ {
			if nb[i-1] >= nb[i] {
				t.Fatalf("vertex %d adjacency not strictly sorted: %v", v, nb)
			}
		}
	}
}

func TestGNPValidation(t *testing.T) {
	rng := NewRand(1)
	for _, p := range []float64{math.NaN(), -0.1, 1.1, math.Inf(1)} {
		if _, err := GNP(10, p, rng); err == nil {
			t.Fatalf("GNP accepted p = %v", p)
		}
	}
	if _, err := GNP(-1, 0.5, rng); err == nil {
		t.Fatal("GNP accepted n = -1")
	}
}

func TestGNPEdgeCases(t *testing.T) {
	rng := NewRand(2)
	for _, n := range []int{0, 1} {
		g, err := GNP(n, 0.7, rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.N() != n || g.M() != 0 {
			t.Fatalf("GNP(%d): N,M = %d,%d", n, g.N(), g.M())
		}
	}
	g, err := GNP(40, 0, rng)
	if err != nil || g.M() != 0 {
		t.Fatalf("GNP(p=0): M = %d, err = %v", g.M(), err)
	}
	g, err = GNP(40, 1, rng)
	if err != nil || g.M() != 40*39/2 {
		t.Fatalf("GNP(p=1): M = %d, err = %v; want complete", g.M(), err)
	}
}

func TestGNPDeterministicPerSeed(t *testing.T) {
	a := MustGNP(500, 0.02, NewRand(77))
	b := MustGNP(500, 0.02, NewRand(77))
	if edgeFingerprint(a) != edgeFingerprint(b) {
		t.Fatal("same seed produced different GNP graphs")
	}
	c := MustGNP(500, 0.02, NewRand(78))
	if edgeFingerprint(a) == edgeFingerprint(c) {
		t.Fatal("different seeds produced identical GNP graphs")
	}
	assertSortedAdjacency(t, a)
}

func TestRandomGeometricValidation(t *testing.T) {
	rng := NewRand(3)
	if _, _, err := RandomGeometric(10, math.NaN(), rng); err == nil {
		t.Fatal("NaN radius accepted")
	}
	if _, _, err := RandomGeometric(10, -0.5, rng); err == nil {
		t.Fatal("negative radius accepted")
	}
	if _, _, err := RandomGeometric(10, math.Inf(1), rng); err == nil {
		t.Fatal("infinite radius accepted")
	}
	if _, _, err := RandomGeometric(-1, 0.1, rng); err == nil {
		t.Fatal("negative n accepted")
	}
}

func TestRandomGeometricEdgeCases(t *testing.T) {
	rng := NewRand(4)
	for _, n := range []int{0, 1} {
		g, pts, err := RandomGeometric(n, 0.3, rng)
		if err != nil || g.N() != n || len(pts) != n || g.M() != 0 {
			t.Fatalf("n=%d: N=%d M=%d pts=%d err=%v", n, g.N(), g.M(), len(pts), err)
		}
	}
	// radius ≥ √2 covers the whole unit square: complete graph.
	g, _, err := RandomGeometric(30, math.Sqrt2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 30*29/2 {
		t.Fatalf("radius √2: M = %d, want complete %d", g.M(), 30*29/2)
	}
	// radius 0 connects nothing.
	g, _, err = RandomGeometric(30, 0, rng)
	if err != nil || g.M() != 0 {
		t.Fatalf("radius 0: M = %d, err = %v", g.M(), err)
	}
}

func TestRandomGeometricGridMatchesBruteForceAcrossRadii(t *testing.T) {
	// Sweep radii so the bucket grid takes several dimensions, including the
	// single-cell and √n-capped regimes, and compare against the quadratic
	// definition.
	// The Nextafter radii sit one ulp above 1/k, where 1/radius rounds up
	// to exactly k and a naive grid would make cells narrower than radius.
	// 1e-20 exercises the tiny-radius path where 1/radius would overflow
	// an int conversion if not capped in float first.
	for _, radius := range []float64{0.01, 0.07, 0.25, 0.9, 1.5, 1e-20,
		math.Nextafter(1.0/9, 1), math.Nextafter(1.0/17, 1)} {
		g, pts, err := RandomGeometric(120, radius, NewRand(uint64(radius*1000)))
		if err != nil {
			t.Fatal(err)
		}
		r2 := radius * radius
		for u := 0; u < g.N(); u++ {
			for v := u + 1; v < g.N(); v++ {
				dx := pts[u][0] - pts[v][0]
				dy := pts[u][1] - pts[v][1]
				within := dx*dx+dy*dy <= r2
				if g.HasEdge(u, v) != within {
					t.Fatalf("radius %v: edge (%d,%d) = %v, want %v", radius, u, v, g.HasEdge(u, v), within)
				}
			}
		}
		assertSortedAdjacency(t, g)
	}
}

func TestPlantedACDValidation(t *testing.T) {
	rng := NewRand(5)
	bad := []PlantedACDSpec{
		{NumCliques: -1},
		{DropFraction: 1.5},
		{DropFraction: math.NaN()},
		{SparseP: math.NaN(), SparseN: 5},
		{SparseP: -0.2},
		{ExternalDegree: -3},
	}
	for _, spec := range bad {
		if _, _, err := PlantedACD(spec, rng); err == nil {
			t.Fatalf("spec %+v accepted", spec)
		}
	}
}

func TestPlantedACDDuplicateHeavyExternalEdges(t *testing.T) {
	// ExternalDegree far above what distinct endpoints allow: the generator
	// draws the same pairs over and over, and Build must merge them into a
	// simple graph.
	spec := PlantedACDSpec{NumCliques: 3, CliqueSize: 4, ExternalDegree: 100}
	g, blocks, err := PlantedACD(spec, NewRand(6))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 12 || len(blocks) != 12 {
		t.Fatalf("N = %d", g.N())
	}
	assertSortedAdjacency(t, g)
	sum := 0
	for v := 0; v < g.N(); v++ {
		sum += g.Degree(v)
		if g.Degree(v) > g.N()-1 {
			t.Fatalf("vertex %d degree %d exceeds simple-graph bound", v, g.Degree(v))
		}
	}
	if sum != 2*g.M() {
		t.Fatalf("degree sum %d != 2M %d", sum, 2*g.M())
	}
}

func TestCycleSmall(t *testing.T) {
	for _, tt := range []struct{ n, wantM int }{{0, 0}, {1, 0}, {2, 1}, {3, 3}} {
		g := Cycle(tt.n)
		if g.N() != tt.n || g.M() != tt.wantM {
			t.Fatalf("Cycle(%d): N,M = %d,%d; want %d,%d", tt.n, g.N(), g.M(), tt.n, tt.wantM)
		}
	}
}

func TestPowerSemantics(t *testing.T) {
	g := Path(5)
	for _, k := range []int{0, -1} {
		if _, err := g.Power(k); err == nil {
			t.Fatalf("Power(%d) accepted", k)
		}
	}
	p1, err := g.Power(1)
	if err != nil {
		t.Fatal(err)
	}
	if p1.M() != g.M() || p1.N() != g.N() {
		t.Fatalf("Power(1) changed shape: %d,%d", p1.N(), p1.M())
	}
	// Power(k ≥ diameter) of a connected graph is complete.
	p4, err := g.Power(4)
	if err != nil {
		t.Fatal(err)
	}
	if p4.M() != 5*4/2 {
		t.Fatalf("Power(diam) M = %d, want complete", p4.M())
	}
	empty := NewBuilder(0).Build()
	if _, err := empty.Power(2); err != nil {
		t.Fatalf("Power on empty graph: %v", err)
	}
}

func TestBarabasiAlbert(t *testing.T) {
	rng := NewRand(7)
	n, attach := 400, 3
	g, err := BarabasiAlbert(n, attach, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != n {
		t.Fatalf("N = %d", g.N())
	}
	// Exact edge count: vertex v adds min(attach, v) edges.
	wantM := 0
	for v := 1; v < n; v++ {
		if v < attach {
			wantM += v
		} else {
			wantM += attach
		}
	}
	if g.M() != wantM {
		t.Fatalf("M = %d, want %d", g.M(), wantM)
	}
	if _, count := g.ConnectedComponents(); count != 1 {
		t.Fatalf("BA graph has %d components", count)
	}
	// Preferential attachment must produce hubs: Δ well above the attach
	// parameter.
	if g.MaxDegree() < 4*attach {
		t.Fatalf("Δ = %d suspiciously small for preferential attachment", g.MaxDegree())
	}
	assertSortedAdjacency(t, g)
	// Determinism.
	h, err := BarabasiAlbert(n, attach, NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	if edgeFingerprint(g) != edgeFingerprint(h) {
		t.Fatal("same seed produced different BA graphs")
	}
}

func TestBarabasiAlbertValidation(t *testing.T) {
	rng := NewRand(8)
	if _, err := BarabasiAlbert(10, 0, rng); err == nil {
		t.Fatal("attach 0 accepted")
	}
	if _, err := BarabasiAlbert(5, 5, rng); err == nil {
		t.Fatal("attach >= n accepted")
	}
	if _, err := BarabasiAlbert(-1, 2, rng); err == nil {
		t.Fatal("negative n accepted")
	}
	g, err := BarabasiAlbert(0, 1, rng)
	if err != nil || g.N() != 0 {
		t.Fatalf("BA(0,1) = %v, %v", g, err)
	}
}

func TestRandomRegular(t *testing.T) {
	for _, tt := range []struct{ n, d int }{{50, 4}, {101, 6}, {40, 11}} {
		g, err := RandomRegular(tt.n, tt.d, NewRand(uint64(tt.n)))
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) != tt.d {
				t.Fatalf("RandomRegular(%d,%d): degree(%d) = %d", tt.n, tt.d, v, g.Degree(v))
			}
		}
		assertSortedAdjacency(t, g)
	}
	// Determinism.
	a, err := RandomRegular(60, 5, NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomRegular(60, 5, NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	if edgeFingerprint(a) != edgeFingerprint(b) {
		t.Fatal("same seed produced different regular graphs")
	}
}

func TestRandomRegularValidation(t *testing.T) {
	rng := NewRand(10)
	if _, err := RandomRegular(5, 3, rng); err == nil {
		t.Fatal("odd n·d accepted")
	}
	if _, err := RandomRegular(4, 4, rng); err == nil {
		t.Fatal("d >= n accepted")
	}
	if _, err := RandomRegular(-1, 2, rng); err == nil {
		t.Fatal("negative n accepted")
	}
	g, err := RandomRegular(7, 0, rng)
	if err != nil || g.M() != 0 {
		t.Fatalf("d=0: M = %d, err = %v", g.M(), err)
	}
}

func TestRingOfCliques(t *testing.T) {
	g, err := RingOfCliques(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 20 {
		t.Fatalf("N = %d", g.N())
	}
	wantM := 5*(4*3/2) + 5
	if g.M() != wantM {
		t.Fatalf("M = %d, want %d", g.M(), wantM)
	}
	if _, count := g.ConnectedComponents(); count != 1 {
		t.Fatalf("%d components", count)
	}
	// Degenerate shapes.
	if g, err = RingOfCliques(4, 1); err != nil || g.M() != 4 {
		t.Fatalf("RingOfCliques(4,1) = cycle C4: M = %d, err = %v", g.M(), err)
	}
	if g, err = RingOfCliques(2, 1); err != nil || g.M() != 1 {
		t.Fatalf("RingOfCliques(2,1): M = %d (duplicate bridge must merge), err = %v", g.M(), err)
	}
	if g, err = RingOfCliques(1, 6); err != nil || g.M() != 15 {
		t.Fatalf("RingOfCliques(1,6) = K6: M = %d, err = %v", g.M(), err)
	}
	if g, err = RingOfCliques(0, 3); err != nil || g.N() != 0 {
		t.Fatalf("RingOfCliques(0,3): N = %d, err = %v", g.N(), err)
	}
	if _, err = RingOfCliques(3, 0); err == nil {
		t.Fatal("cliqueSize 0 accepted")
	}
	if _, err = RingOfCliques(-1, 2); err == nil {
		t.Fatal("negative numCliques accepted")
	}
	// Capacity guard: over-cap instances error up front instead of
	// silently truncating (these would need > 2^30-1 edges).
	if _, err = RingOfCliques(1<<20, 50); err == nil {
		t.Fatal("over-capacity RingOfCliques accepted")
	}
	if _, err = RingOfCliques(2, 70000); err == nil {
		t.Fatal("over-capacity cliqueSize accepted")
	}
}

func TestCliqueCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("over-capacity Clique did not panic")
		}
	}()
	Clique(1 << 20) // would need ~2^39 edges; must panic before allocating
}

// TestBuilderOrderIndependence pins the CSR contract: the same edge set
// inserted in any order, with any duplication, builds byte-identical
// adjacency.
func TestBuilderOrderIndependence(t *testing.T) {
	edges := [][2]int{{0, 5}, {2, 3}, {1, 4}, {0, 1}, {3, 5}, {2, 5}, {1, 2}}
	forward := NewBuilder(6)
	for _, e := range edges {
		if err := forward.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	backward := NewBuilder(6)
	for i := len(edges) - 1; i >= 0; i-- {
		// Reversed order AND reversed orientation, plus a duplicate.
		if err := backward.AddEdge(edges[i][1], edges[i][0]); err != nil {
			t.Fatal(err)
		}
	}
	if err := backward.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	a, b := forward.Build(), backward.Build()
	if a.N() != b.N() || a.M() != b.M() || a.MaxDegree() != b.MaxDegree() {
		t.Fatalf("shape mismatch: %d,%d,%d vs %d,%d,%d", a.N(), a.M(), a.MaxDegree(), b.N(), b.M(), b.MaxDegree())
	}
	for v := 0; v < a.N(); v++ {
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			t.Fatalf("vertex %d degree mismatch", v)
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("vertex %d adjacency differs: %v vs %v", v, na, nb)
			}
		}
	}
	assertSortedAdjacency(t, a)
}

func TestZeroValueGraph(t *testing.T) {
	var g Graph
	if g.N() != 0 || g.M() != 0 || g.MaxDegree() != 0 {
		t.Fatalf("zero value: N=%d M=%d Δ=%d", g.N(), g.M(), g.MaxDegree())
	}
	if _, count := g.ConnectedComponents(); count != 0 {
		t.Fatalf("zero value has %d components", count)
	}
}
