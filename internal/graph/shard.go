package graph

import (
	"fmt"
	"sort"

	"clustercolor/internal/parwork"
)

// ShardSlice is one shard of a partitioned graph: a contiguous range of
// owned global vertices [Lo, Hi) renumbered into a local CSR, plus the halo
// — the out-of-shard neighbors of owned vertices — appended after the owned
// range. The local CSR holds every owned↔owned and owned↔halo edge (never
// halo↔halo: a shard knows its boundary, not other shards' interiors), and
// the slot map ties each owned directed edge back to its global CSR slot so
// partitioned passes can write global per-slot state.
//
// Local ids order owned vertices ascending by global id (local = global −
// Lo) followed by halo vertices ascending by global id, so a local neighbor
// row is the owned sub-row followed by the halo sub-row, each in global
// order.
type ShardSlice struct {
	// Shard is this slice's index in the partition.
	Shard int
	// Lo, Hi delimit the owned global vertex range [Lo, Hi).
	Lo, Hi int
	// CSR is the local graph over Own()+len(Halo) vertices.
	CSR *Graph
	// Halo lists the out-of-shard neighbor vertices by global id, sorted
	// ascending; halo vertex i has local id Own()+i.
	Halo []int32
	// HaloOwner[i] is the shard owning Halo[i].
	HaloOwner []int32
	// Boundary lists the owned local ids with at least one halo neighbor —
	// the rows a boundary-exchange phase must ship — ascending.
	Boundary []int32
	// SlotToGlobal maps the local directed slot of an owned vertex (the
	// first CSR.AdjOffset(Own()) slots) to its global directed slot.
	SlotToGlobal []int32
	// BoundaryEdges counts the directed owned→halo edges.
	BoundaryEdges int
}

// Own returns the number of owned vertices.
func (s *ShardSlice) Own() int { return s.Hi - s.Lo }

// ToGlobal maps a local id (owned or halo) to its global vertex id.
func (s *ShardSlice) ToGlobal(local int) int {
	if own := s.Own(); local >= own {
		return int(s.Halo[local-own])
	}
	return s.Lo + local
}

// LocalOf maps a global vertex to its local id; ok is false when the vertex
// is neither owned nor in the halo.
func (s *ShardSlice) LocalOf(global int) (int, bool) {
	if global >= s.Lo && global < s.Hi {
		return global - s.Lo, true
	}
	i := sort.Search(len(s.Halo), func(i int) bool { return int(s.Halo[i]) >= global })
	if i < len(s.Halo) && int(s.Halo[i]) == global {
		return s.Own() + i, true
	}
	return 0, false
}

// ShardedGraph is the partitioned view of a graph: k contiguous shard
// slices whose owned ranges cover [0, n). The global graph is optional:
// materialized construction (NewShardedGraph) keeps it mapped for consumers
// that need global CSR slots, while streaming construction
// (NewShardedGraphFromEdges) leaves G nil — slices then carry no
// SlotToGlobal map and per-edge state must be keyed by local slots. Global
// dimensions (N, M, MaxDegree) are recorded at construction either way, so
// consumers never need G for sizing.
type ShardedGraph struct {
	G      *Graph
	Starts []int32 // len k+1; shard s owns [Starts[s], Starts[s+1])
	Slices []*ShardSlice

	n, m, maxDeg int
}

// NumShards returns the shard count.
func (sg *ShardedGraph) NumShards() int { return len(sg.Slices) }

// N returns the global vertex count, available with or without the global
// graph.
func (sg *ShardedGraph) N() int { return sg.n }

// M returns the global undirected edge count, available with or without the
// global graph.
func (sg *ShardedGraph) M() int { return sg.m }

// MaxDegree returns the global maximum degree. Owned local rows hold every
// global neighbor, so the maximum owned local degree over all slices equals
// the global maximum and streaming construction records it without ever
// holding the global CSR.
func (sg *ShardedGraph) MaxDegree() int { return sg.maxDeg }

// Owner returns the shard owning global vertex v.
func (sg *ShardedGraph) Owner(v int) int {
	return sort.Search(len(sg.Starts)-1, func(s int) bool { return int(sg.Starts[s+1]) > v })
}

// NewShardedGraph partitions g into k contiguous near-even vertex ranges
// (shard s owns [s·n/k, (s+1)·n/k), so k need not divide n and k > n leaves
// trailing shards empty) and builds the per-shard slices in parallel.
func NewShardedGraph(g *Graph, k int) (*ShardedGraph, error) {
	starts, err := EvenStarts(g.N(), k)
	if err != nil {
		return nil, err
	}
	return ShardedGraphFromStarts(g, starts)
}

// ShardedGraphFromStarts builds the sharded view for an explicit partition:
// starts must be non-decreasing with starts[0] = 0 and starts[k] = n. Slices
// construct independently, so the work fans across the worker pool.
func ShardedGraphFromStarts(g *Graph, starts []int32) (*ShardedGraph, error) {
	k := len(starts) - 1
	if err := validStarts(g.N(), starts); err != nil {
		return nil, err
	}
	sg := &ShardedGraph{G: g, Starts: starts, n: g.N(), m: g.M(), maxDeg: g.MaxDegree()}
	slices, err := parwork.ForEach(k, func(s int) (*ShardSlice, error) {
		return buildSlice(g, sg, s, int(starts[s]), int(starts[s+1]))
	})
	if err != nil {
		return nil, err
	}
	sg.Slices = slices
	return sg, nil
}

// buildSlice constructs one shard slice: gather and sort the halo, build
// the local CSR over owned-then-halo ids, and derive the slot map by merging
// each owned vertex's global row against its local layout.
func buildSlice(g *Graph, sg *ShardedGraph, shard, lo, hi int) (*ShardSlice, error) {
	sl := &ShardSlice{Shard: shard, Lo: lo, Hi: hi}
	own := hi - lo
	// Halo: distinct out-of-range neighbors, ascending.
	var halo []int32
	for v := lo; v < hi; v++ {
		for _, u := range g.Neighbors(v) {
			if int(u) < lo || int(u) >= hi {
				halo = append(halo, u)
				sl.BoundaryEdges++
			}
		}
	}
	sort.Slice(halo, func(i, j int) bool { return halo[i] < halo[j] })
	halo = dedupe(halo)
	sl.Halo = halo
	sl.HaloOwner = make([]int32, len(halo))
	for i, u := range halo {
		sl.HaloOwner[i] = int32(sg.Owner(int(u)))
	}
	// Local CSR: owned local ids [0, own), halo local ids [own, own+h).
	b := NewBuilder(own + len(halo))
	for v := lo; v < hi; v++ {
		lv := v - lo
		isBoundary := false
		for _, u32 := range g.Neighbors(v) {
			u := int(u32)
			if u >= lo && u < hi {
				if u > v { // owned↔owned edges once
					if err := b.AddEdge(lv, u-lo); err != nil {
						return nil, err
					}
				}
				continue
			}
			hIdx := sort.Search(len(halo), func(i int) bool { return int(halo[i]) >= u })
			if err := b.AddEdge(lv, own+hIdx); err != nil {
				return nil, err
			}
			isBoundary = true
		}
		if isBoundary {
			sl.Boundary = append(sl.Boundary, int32(lv))
		}
	}
	sl.CSR = b.Build()
	// Slot map: an owned local row is the owned sub-row then the halo
	// sub-row, each ascending in global id, so one merge pass over the
	// global row assigns every local slot its global slot without searches.
	sl.SlotToGlobal = make([]int32, sl.CSR.AdjOffset(own))
	for v := lo; v < hi; v++ {
		lv := v - lo
		globalBase := g.AdjOffset(v)
		localBase := sl.CSR.AdjOffset(lv)
		ownPos := localBase
		haloPos := localBase + ownedDegree(g, v, lo, hi)
		for j, u := range g.Neighbors(v) {
			if int(u) >= lo && int(u) < hi {
				sl.SlotToGlobal[ownPos] = int32(globalBase + j)
				ownPos++
			} else {
				sl.SlotToGlobal[haloPos] = int32(globalBase + j)
				haloPos++
			}
		}
	}
	return sl, nil
}

// ownedDegree counts v's neighbors inside [lo, hi) — the length of the owned
// sub-row. Neighbor rows are sorted, so two binary searches suffice.
func ownedDegree(g *Graph, v, lo, hi int) int {
	row := g.Neighbors(v)
	a := sort.Search(len(row), func(i int) bool { return int(row[i]) >= lo })
	b := sort.Search(len(row), func(i int) bool { return int(row[i]) >= hi })
	return b - a
}

// EvenStarts returns the near-even contiguous partition of [0, n) into k
// shards: shard s owns [s·n/k, (s+1)·n/k), so k need not divide n and k > n
// leaves trailing shards empty.
func EvenStarts(n, k int) ([]int32, error) {
	if k < 1 {
		return nil, fmt.Errorf("graph: shard count %d < 1", k)
	}
	starts := make([]int32, k+1)
	for s := 0; s <= k; s++ {
		starts[s] = int32(s * n / k)
	}
	return starts, nil
}

// validStarts checks a partition: non-decreasing starts covering [0, n).
func validStarts(n int, starts []int32) error {
	k := len(starts) - 1
	if k < 1 {
		return fmt.Errorf("graph: partition needs at least one shard")
	}
	if starts[0] != 0 || int(starts[k]) != n {
		return fmt.Errorf("graph: partition bounds [%d, %d) do not cover [0, %d)", starts[0], starts[k], n)
	}
	for s := 0; s < k; s++ {
		if starts[s] > starts[s+1] {
			return fmt.Errorf("graph: partition starts decrease at shard %d", s)
		}
	}
	return nil
}

func dedupe(s []int32) []int32 {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}
