package graph

import (
	"fmt"
	"slices"
	"testing"
)

// equalSliceStructures fails unless the two slices agree on everything
// except the slot map (which only materialized construction can provide):
// bounds, CSR bytes, halo, halo owners, boundary rows, boundary edge count.
func equalSliceStructures(t *testing.T, label string, want, got *ShardSlice) {
	t.Helper()
	if got.Shard != want.Shard || got.Lo != want.Lo || got.Hi != want.Hi {
		t.Fatalf("%s: bounds (%d,[%d,%d)) vs (%d,[%d,%d))", label, got.Shard, got.Lo, got.Hi, want.Shard, want.Lo, want.Hi)
	}
	if !slices.Equal(got.CSR.offsets, want.CSR.offsets) || !slices.Equal(got.CSR.nbrs, want.CSR.nbrs) {
		t.Fatalf("%s: local CSR differs", label)
	}
	if got.CSR.m != want.CSR.m || got.CSR.maxDeg != want.CSR.maxDeg {
		t.Fatalf("%s: local CSR dims (%d,%d) vs (%d,%d)", label, got.CSR.m, got.CSR.maxDeg, want.CSR.m, want.CSR.maxDeg)
	}
	if !slices.Equal(got.Halo, want.Halo) {
		t.Fatalf("%s: halo %v vs %v", label, got.Halo, want.Halo)
	}
	if !slices.Equal(got.HaloOwner, want.HaloOwner) {
		t.Fatalf("%s: halo owners %v vs %v", label, got.HaloOwner, want.HaloOwner)
	}
	if !slices.Equal(got.Boundary, want.Boundary) {
		t.Fatalf("%s: boundary %v vs %v", label, got.Boundary, want.Boundary)
	}
	if got.BoundaryEdges != want.BoundaryEdges {
		t.Fatalf("%s: boundary edges %d vs %d", label, got.BoundaryEdges, want.BoundaryEdges)
	}
}

// equalShardedStructures checks a streamed sharded graph against its
// materialized reference: same partition, dimensions, and slice structures,
// with the streamed side global-graph-less and slot-map-less.
func equalShardedStructures(t *testing.T, label string, want, got *ShardedGraph) {
	t.Helper()
	if got.G != nil {
		t.Fatalf("%s: streamed graph materialized a global CSR", label)
	}
	if !slices.Equal(got.Starts, want.Starts) {
		t.Fatalf("%s: starts %v vs %v", label, got.Starts, want.Starts)
	}
	if got.N() != want.N() || got.M() != want.M() || got.MaxDegree() != want.MaxDegree() {
		t.Fatalf("%s: dims (n=%d m=%d Δ=%d) vs (n=%d m=%d Δ=%d)", label,
			got.N(), got.M(), got.MaxDegree(), want.N(), want.M(), want.MaxDegree())
	}
	if got.NumShards() != want.NumShards() {
		t.Fatalf("%s: %d shards vs %d", label, got.NumShards(), want.NumShards())
	}
	for s := range want.Slices {
		if want.Slices[s].SlotToGlobal == nil {
			t.Fatalf("%s: materialized slice %d has no slot map", label, s)
		}
		if got.Slices[s].SlotToGlobal != nil {
			t.Fatalf("%s: streamed slice %d grew a slot map", label, s)
		}
		equalSliceStructures(t, fmt.Sprintf("%s slice %d", label, s), want.Slices[s], got.Slices[s])
	}
}

// streamGraphs builds the scenario spread the streaming construction is
// checked on: GNP, ring-of-cliques (dense blocks spanning shard cuts),
// random-regular, an edgeless graph, and a two-vertex path.
func streamGraphs(t *testing.T) map[string]*Graph {
	t.Helper()
	gnp, err := GNP(300, 0.05, NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	roc, err := RingOfCliques(12, 25)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := RandomRegular(200, 6, NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	edgeless := NewBuilder(17).Build()
	pb := NewBuilder(2)
	if err := pb.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	return map[string]*Graph{
		"gnp":      gnp,
		"cliques":  roc,
		"regular":  reg,
		"edgeless": edgeless,
		"path":     pb.Build(),
	}
}

// TestStreamingMatchesMaterialized pins the tentpole contract: building
// slices from an edge stream must be byte-identical to partitioning the
// materialized graph, at shard counts 1/2/4 and on uneven explicit
// partitions with empty shards.
func TestStreamingMatchesMaterialized(t *testing.T) {
	for name, g := range streamGraphs(t) {
		n := g.N()
		for _, k := range []int{1, 2, 4} {
			want, err := NewShardedGraph(g, k)
			if err != nil {
				t.Fatal(err)
			}
			got, err := NewShardedGraphFromEdges(n, k, StreamOf(g))
			if err != nil {
				t.Fatal(err)
			}
			equalShardedStructures(t, fmt.Sprintf("%s k=%d", name, k), want, got)
		}
		// Uneven partition with an empty middle shard.
		starts := []int32{0, int32(n / 3), int32(n / 3), int32(n)}
		want, err := ShardedGraphFromStarts(g, starts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ShardedGraphFromEdgeStarts(n, starts, StreamOf(g))
		if err != nil {
			t.Fatal(err)
		}
		equalShardedStructures(t, name+" uneven", want, got)
		// Per-slice passes (the multi-process shape) must agree with the
		// one-pass builder slice for slice.
		for s := range got.Slices {
			sl, err := NewShardSliceFromEdges(n, starts, s, StreamOf(g))
			if err != nil {
				t.Fatal(err)
			}
			equalSliceStructures(t, fmt.Sprintf("%s per-slice %d", name, s), want.Slices[s], sl)
		}
	}
}

// TestGNPStreamMatchesGNP pins the generator contract: the streamed GNP edge
// sequence for a seed is exactly the edge set of GNP under NewRand(seed),
// and re-running the stream replays it.
func TestGNPStreamMatchesGNP(t *testing.T) {
	const n, p, seed = 500, 0.02, uint64(11)
	g, err := GNP(n, p, NewRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	stream, err := GNPStream(n, p, seed)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ { // second pass checks re-runnability
		b := NewBuilder(n)
		if err := stream(b.AddEdge); err != nil {
			t.Fatal(err)
		}
		sg := b.Build()
		if !slices.Equal(sg.offsets, g.offsets) || !slices.Equal(sg.nbrs, g.nbrs) {
			t.Fatalf("pass %d: streamed GNP differs from materialized GNP", pass)
		}
	}
	if _, err := GNPStream(-1, p, seed); err == nil {
		t.Fatal("negative n accepted")
	}
	if _, err := GNPStream(n, 1.5, seed); err == nil {
		t.Fatal("p out of range accepted")
	}
}

// TestShardedBuilderValidation checks the builder rejects exactly what
// Builder rejects, plus bad partitions, and that the peak-buffer gauge
// moves.
func TestShardedBuilderValidation(t *testing.T) {
	if _, err := NewShardedBuilder(4, []int32{1, 4}); err == nil {
		t.Fatal("partition not starting at 0 accepted")
	}
	if _, err := NewShardedBuilder(4, []int32{0, 3}); err == nil {
		t.Fatal("partition not covering n accepted")
	}
	if _, err := NewShardedBuilder(4, []int32{0, 3, 2, 4}); err == nil {
		t.Fatal("decreasing partition accepted")
	}
	sb, err := NewShardedBuilder(4, []int32{0, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := sb.AddEdge(0, 0); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := sb.AddEdge(0, 4); err == nil {
		t.Fatal("out-of-range endpoint accepted")
	}
	if err := sb.AddEdge(-1, 1); err == nil {
		t.Fatal("negative endpoint accepted")
	}
	if err := sb.AddEdge(1, 2); err != nil { // cross-shard: buffered twice
		t.Fatal(err)
	}
	if sb.PeakBufferedEdges() != 1 {
		t.Fatalf("peak %d after one edge, want 1", sb.PeakBufferedEdges())
	}
	sg, err := sb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sg.N() != 4 || sg.M() != 1 || sg.MaxDegree() != 1 {
		t.Fatalf("dims n=%d m=%d Δ=%d, want 4/1/1", sg.N(), sg.M(), sg.MaxDegree())
	}
	if sg.NumShards() != 2 || len(sg.Slices[0].Halo) != 1 || len(sg.Slices[1].Halo) != 1 {
		t.Fatalf("cross edge did not produce a one-vertex halo on both sides")
	}
}
