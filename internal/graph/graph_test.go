package graph

import (
	"testing"
	"testing/quick"
)

func TestBuilderRejectsBadEdges(t *testing.T) {
	tests := []struct {
		name string
		u, v int
	}{
		{name: "self loop", u: 1, v: 1},
		{name: "negative", u: -1, v: 2},
		{name: "out of range", u: 0, v: 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b := NewBuilder(5)
			if err := b.AddEdge(tt.u, tt.v); err == nil {
				t.Fatalf("AddEdge(%d,%d) = nil error, want error", tt.u, tt.v)
			}
		})
	}
}

func TestBuilderMergesDuplicates(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	// The same edge in both orientations, repeatedly: Build must merge.
	if err := b.AddEdge(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2 (duplicates merged)", g.M())
	}
	if g.Degree(1) != 2 || g.Degree(0) != 1 {
		t.Fatalf("degrees = %d,%d; want 1,2", g.Degree(0), g.Degree(1))
	}
}

func TestBuilderPanicsAfterBuild(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	b.Build()
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge on a finalized Builder did not panic")
		}
	}()
	_ = b.AddEdge(1, 2)
}

func TestGraphBasics(t *testing.T) {
	b := NewBuilder(4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 2}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("N,M = %d,%d; want 4,4", g.N(), g.M())
	}
	if g.Degree(2) != 3 {
		t.Fatalf("Degree(2) = %d, want 3", g.Degree(2))
	}
	if !g.HasEdge(0, 2) || g.HasEdge(0, 3) || g.HasEdge(1, 1) {
		t.Fatal("HasEdge wrong")
	}
	if g.MaxDegree() != 3 {
		t.Fatalf("MaxDegree = %d, want 3", g.MaxDegree())
	}
	if got := g.CommonNeighbors(0, 3); got != 1 { // both adjacent to 2
		t.Fatalf("CommonNeighbors(0,3) = %d, want 1", got)
	}
	if got := g.UnionNeighborhoodSize(0, 3); got != 2 { // N(0)∪N(3) = {1,2}∪{2} = {1,2}
		t.Fatalf("UnionNeighborhoodSize(0,3) = %d, want 2", got)
	}
}

func TestUnionNeighborhoodMatchesBruteForce(t *testing.T) {
	rng := NewRand(7)
	g := MustGNP(40, 0.2, rng)
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			set := map[int32]bool{}
			for _, w := range g.Neighbors(u) {
				set[w] = true
			}
			for _, w := range g.Neighbors(v) {
				set[w] = true
			}
			if got := g.UnionNeighborhoodSize(u, v); got != len(set) {
				t.Fatalf("union size (%d,%d) = %d, want %d", u, v, got, len(set))
			}
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{name: "empty", g: NewBuilder(5).Build(), want: 5},
		{name: "path", g: Path(6), want: 1},
		{name: "clique", g: Clique(4), want: 1},
		{name: "two cliques", g: twoCliques(t), want: 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			labels, count := tt.g.ConnectedComponents()
			if count != tt.want {
				t.Fatalf("count = %d, want %d", count, tt.want)
			}
			// Labels of adjacent vertices must agree.
			for v := 0; v < tt.g.N(); v++ {
				for _, w := range tt.g.Neighbors(v) {
					if labels[v] != labels[w] {
						t.Fatalf("adjacent %d,%d in different components", v, w)
					}
				}
			}
		})
	}
}

func twoCliques(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(8)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			if err := b.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
			if err := b.AddEdge(u+4, v+4); err != nil {
				t.Fatal(err)
			}
		}
	}
	return b.Build()
}

func TestBFSDepths(t *testing.T) {
	g := Path(5)
	depth, parent := g.BFSDepths(0, nil)
	for v := 0; v < 5; v++ {
		if depth[v] != v {
			t.Fatalf("depth[%d] = %d, want %d", v, depth[v], v)
		}
	}
	if parent[0] != -1 || parent[3] != 2 {
		t.Fatalf("parents = %v", parent)
	}
	// Restricted BFS cannot cross disallowed vertices.
	depth, _ = g.BFSDepths(0, func(v int) bool { return v != 2 })
	if depth[3] != -1 || depth[4] != -1 {
		t.Fatalf("restricted BFS leaked past blocked vertex: %v", depth)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Clique(5)
	sub, orig := g.InducedSubgraph([]int{0, 2, 4})
	if sub.N() != 3 || sub.M() != 3 {
		t.Fatalf("induced N,M = %d,%d; want 3,3", sub.N(), sub.M())
	}
	if orig[1] != 2 {
		t.Fatalf("orig = %v", orig)
	}
}

func mustPower(t *testing.T, g *Graph, k int) *Graph {
	t.Helper()
	p, err := g.Power(k)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPowerGraph(t *testing.T) {
	// Path 0-1-2-3: square adds {0,2},{1,3}.
	p := mustPower(t, Path(4), 2)
	wantEdges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 2}, {1, 3}}
	if p.M() != len(wantEdges) {
		t.Fatalf("M = %d, want %d", p.M(), len(wantEdges))
	}
	for _, e := range wantEdges {
		if !p.HasEdge(e[0], e[1]) {
			t.Fatalf("missing power edge %v", e)
		}
	}
	if p.HasEdge(0, 3) {
		t.Fatal("distance-3 pair adjacent in square")
	}
}

func TestPowerGraphMatchesBFS(t *testing.T) {
	rng := NewRand(11)
	g := MustGNP(30, 0.1, rng)
	p := mustPower(t, g, 2)
	for u := 0; u < g.N(); u++ {
		depth, _ := g.BFSDepths(u, nil)
		for v := 0; v < g.N(); v++ {
			if u == v {
				continue
			}
			want := depth[v] >= 1 && depth[v] <= 2
			if got := p.HasEdge(u, v); got != want {
				t.Fatalf("power edge (%d,%d) = %v, want %v (dist %d)", u, v, got, want, depth[v])
			}
		}
	}
}

func TestGNPDegreeConcentration(t *testing.T) {
	rng := NewRand(3)
	n, p := 400, 0.1
	g := MustGNP(n, p, rng)
	mean := 0.0
	for v := 0; v < n; v++ {
		mean += float64(g.Degree(v))
	}
	mean /= float64(n)
	want := p * float64(n-1)
	if mean < want*0.8 || mean > want*1.2 {
		t.Fatalf("mean degree %.1f far from np = %.1f", mean, want)
	}
}

func TestGenerators(t *testing.T) {
	rng := NewRand(5)
	tests := []struct {
		name       string
		g          *Graph
		wantN      int
		wantM      int
		wantMaxDeg int
	}{
		{name: "clique", g: Clique(6), wantN: 6, wantM: 15, wantMaxDeg: 5},
		{name: "path", g: Path(6), wantN: 6, wantM: 5, wantMaxDeg: 2},
		{name: "cycle", g: Cycle(6), wantN: 6, wantM: 6, wantMaxDeg: 2},
		{name: "star", g: Star(6), wantN: 6, wantM: 5, wantMaxDeg: 5},
		{name: "tree", g: RandomTree(20, rng), wantN: 20, wantM: 19, wantMaxDeg: -1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.g.N() != tt.wantN || tt.g.M() != tt.wantM {
				t.Fatalf("N,M = %d,%d; want %d,%d", tt.g.N(), tt.g.M(), tt.wantN, tt.wantM)
			}
			if tt.wantMaxDeg >= 0 && tt.g.MaxDegree() != tt.wantMaxDeg {
				t.Fatalf("MaxDegree = %d, want %d", tt.g.MaxDegree(), tt.wantMaxDeg)
			}
		})
	}
}

func TestRandomTreeConnected(t *testing.T) {
	rng := NewRand(13)
	g := RandomTree(50, rng)
	if _, count := g.ConnectedComponents(); count != 1 {
		t.Fatalf("tree has %d components", count)
	}
}

func TestPlantedACD(t *testing.T) {
	rng := NewRand(9)
	spec := PlantedACDSpec{
		NumCliques:     3,
		CliqueSize:     30,
		DropFraction:   0.05,
		ExternalDegree: 2,
		SparseN:        40,
		SparseP:        0.05,
	}
	g, blocks, err := PlantedACD(spec, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3*30+40 {
		t.Fatalf("N = %d", g.N())
	}
	// Dense vertices must be mostly adjacent within their block.
	for v := 0; v < 90; v++ {
		if blocks[v] < 0 {
			t.Fatalf("dense vertex %d has no block", v)
		}
		inBlock := 0
		for _, w := range g.Neighbors(v) {
			if blocks[w] == blocks[v] {
				inBlock++
			}
		}
		if inBlock < 20 {
			t.Fatalf("vertex %d has only %d in-block neighbors", v, inBlock)
		}
	}
	for v := 90; v < g.N(); v++ {
		if blocks[v] != -1 {
			t.Fatalf("sparse vertex %d has block %d", v, blocks[v])
		}
	}
}

func TestPlantedACDRejectsBadSpec(t *testing.T) {
	rng := NewRand(1)
	if _, _, err := PlantedACD(PlantedACDSpec{NumCliques: -1}, rng); err == nil {
		t.Fatal("negative spec accepted")
	}
	if _, _, err := PlantedACD(PlantedACDSpec{DropFraction: 1.5}, rng); err == nil {
		t.Fatal("bad drop fraction accepted")
	}
}

func TestAntiDegreeWithin(t *testing.T) {
	b := NewBuilder(4)
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(0, 2)
	g := b.Build()
	members := []int32{0, 1, 2, 3}
	if got := g.AntiDegreeWithin(0, members); got != 1 { // only 3 is a non-neighbor
		t.Fatalf("AntiDegreeWithin(0) = %d, want 1", got)
	}
	if got := g.AntiDegreeWithin(3, members); got != 3 {
		t.Fatalf("AntiDegreeWithin(3) = %d, want 3", got)
	}
}

// Property: HasEdge is symmetric and consistent with Neighbors.
func TestHasEdgeSymmetryProperty(t *testing.T) {
	rng := NewRand(21)
	g := MustGNP(60, 0.15, rng)
	f := func(a, b uint8) bool {
		u := int(a) % g.N()
		v := int(b) % g.N()
		if g.HasEdge(u, v) != g.HasEdge(v, u) {
			return false
		}
		inList := false
		for _, w := range g.Neighbors(u) {
			if int(w) == v {
				inList = true
			}
		}
		return g.HasEdge(u, v) == inList
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: degree sums equal 2M on random graphs.
func TestDegreeSumProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRand(seed)
		g := MustGNP(30+int(seed%20), 0.2, rng)
		sum := 0
		for v := 0; v < g.N(); v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomGeometric(t *testing.T) {
	rng := NewRand(41)
	g, pts, err := RandomGeometric(200, 0.12, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 200 || len(pts) != 200 {
		t.Fatalf("N = %d, pts = %d", g.N(), len(pts))
	}
	// Every edge respects the radius; every in-radius pair is an edge.
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			dx := pts[u][0] - pts[v][0]
			dy := pts[u][1] - pts[v][1]
			within := dx*dx+dy*dy <= 0.12*0.12
			if g.HasEdge(u, v) != within {
				t.Fatalf("edge (%d,%d) = %v but within = %v", u, v, g.HasEdge(u, v), within)
			}
		}
	}
	// Expected degree ≈ n·π·r² ≈ 9; demand a sane band.
	mean := 0.0
	for v := 0; v < g.N(); v++ {
		mean += float64(g.Degree(v))
	}
	mean /= float64(g.N())
	if mean < 3 || mean > 20 {
		t.Fatalf("mean degree %.1f outside sane band", mean)
	}
}
