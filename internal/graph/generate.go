package graph

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// NewRand returns a deterministic PCG-backed random source for the given
// seed. All generators in this package take an explicit *rand.Rand so that
// experiments are reproducible.
func NewRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// validProb reports whether p is a probability in [0,1]. NaN fails every
// comparison, so the check must be written positively: a bare
// "p < 0 || p > 1" lets NaN through and silently degenerates the output.
func validProb(p float64) bool {
	return p >= 0 && p <= 1
}

// GNP samples an Erdős–Rényi graph G(n, p) in O(n + m) expected time by
// geometric skip sampling (Batagelj–Brandes): instead of flipping a coin per
// pair, it jumps between successful pairs with geometrically distributed
// strides, so million-vertex sparse instances cost seconds, not hours.
func GNP(n int, p float64, rng *rand.Rand) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: GNP n %d < 0", n)
	}
	if !validProb(p) {
		return nil, fmt.Errorf("graph: GNP p %v out of [0,1]", p)
	}
	b := NewBuilder(n)
	if err := gnpInto(b, 0, n, p, rng); err != nil {
		return nil, err
	}
	return b.Build(), nil
}

// MustGNP is GNP for compile-time-constant parameters (tests, benchmarks,
// examples); it panics on the errors GNP would return.
func MustGNP(n int, p float64, rng *rand.Rand) *Graph {
	g, err := GNP(n, p, rng)
	if err != nil {
		panic(err)
	}
	return g
}

// gnpInto adds the edges of G(hi-lo, p) on the vertex window [lo, hi) of b.
// p must already be validated to [0,1].
func gnpInto(b *Builder, lo, hi int, p float64, rng *rand.Rand) error {
	return gnpPairs(hi-lo, p, rng, func(v, w int) error {
		return b.AddEdge(lo+v, lo+w)
	})
}

// gnpPairs enumerates the edges of G(n, p) by geometric skip sampling,
// calling visit(v, w), w < v, once per edge in row order. Both the
// materialized generator and the streaming emitter run through this one
// loop, so for the same rng state they produce the same edge sequence.
func gnpPairs(n int, p float64, rng *rand.Rand, visit func(v, w int) error) error {
	if n < 2 || p == 0 {
		return nil
	}
	if p == 1 {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if err := visit(v, u); err != nil {
					return err
				}
			}
		}
		return nil
	}
	// Batagelj–Brandes: enumerate pairs (v, w), w < v, in row order and skip
	// ahead Geometric(p) positions between successes.
	logq := math.Log1p(-p)
	pairs := float64(n) * float64(n) // loose bound on remaining positions
	v, w := 1, -1
	for v < n {
		skip := math.Floor(math.Log1p(-rng.Float64()) / logq)
		if skip >= pairs {
			break // jumped past every remaining pair
		}
		w += 1 + int(skip)
		for v < n && w >= v {
			w -= v
			v++
		}
		if v < n {
			if err := visit(v, w); err != nil {
				return err
			}
		}
	}
	return nil
}

// GNPStream returns a re-runnable EdgeStream of G(n, p): each invocation
// replays the identical edge sequence from a fresh NewRand(seed), so
// GNPStream(n, p, seed) feeding streaming shard construction yields slices
// byte-identical to partitioning GNP(n, p, NewRand(seed)) — while never
// requiring the global CSR, which is what lets instances past the global
// builder cap be generated shard-by-shard.
func GNPStream(n int, p float64, seed uint64) (EdgeStream, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: GNP n %d < 0", n)
	}
	if !validProb(p) {
		return nil, fmt.Errorf("graph: GNP p %v out of [0,1]", p)
	}
	return func(emit func(u, v int) error) error {
		return gnpPairs(n, p, NewRand(seed), emit)
	}, nil
}

// CliqueFits reports whether K_n fits the builder's edge capacity; callers
// that must not panic (CLIs, servers) should check it before Clique.
// n < 65536 keeps the product overflow-free; anything larger is past the
// cap on its own.
func CliqueFits(n int) bool {
	return n < 65536 && (n < 2 || int64(n)*int64(n-1)/2 <= maxBuilderEdges)
}

// Clique returns the complete graph K_n. It panics if n(n-1)/2 exceeds the
// builder's edge capacity (n > ~46000, see CliqueFits): such a graph cannot
// be represented in the int32 CSR arrays, and truncating it silently would
// be worse.
func Clique(n int) *Graph {
	if !CliqueFits(n) {
		panic(fmt.Sprintf("graph: Clique(%d) exceeds the %d-edge CSR capacity", n, maxBuilderEdges))
	}
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			_ = b.AddEdge(u, v) // in-range, distinct, capacity pre-checked: cannot fail
		}
	}
	return b.Build()
}

// Path returns the path graph on n vertices.
func Path(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		_ = b.AddEdge(v-1, v)
	}
	return b.Build()
}

// Cycle returns the cycle graph on n vertices. For n >= 3 this is C_n; for
// n = 2 the "cycle" collapses to the single edge {0,1} (simple graphs have
// no parallel edges), and for n <= 1 the graph is edgeless.
func Cycle(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		_ = b.AddEdge(v-1, v)
	}
	if n >= 3 {
		_ = b.AddEdge(n-1, 0)
	}
	return b.Build()
}

// Star returns the star graph with center 0 and n-1 leaves.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		_ = b.AddEdge(0, v)
	}
	return b.Build()
}

// RandomTree returns a uniform-ish random tree on n vertices (each vertex
// v >= 1 attaches to a uniform earlier vertex).
func RandomTree(n int, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		_ = b.AddEdge(rng.IntN(v), v)
	}
	return b.Build()
}

// RandomGeometric samples n points uniformly in the unit square and
// connects pairs within Euclidean distance radius — the standard model of
// wireless interference networks, the motivating workload for distance-2
// coloring (Corollary 1.3). It returns the graph and the point coordinates.
//
// Pairs are found by bucketing points into a uniform grid with cells no
// smaller than the radius and comparing each point only against the 3×3
// surrounding cells, for O(n + m) expected time instead of Θ(n²).
func RandomGeometric(n int, radius float64, rng *rand.Rand) (*Graph, [][2]float64, error) {
	if n < 0 {
		return nil, nil, fmt.Errorf("graph: RandomGeometric n %d < 0", n)
	}
	if math.IsNaN(radius) || math.IsInf(radius, 0) || radius < 0 {
		return nil, nil, fmt.Errorf("graph: RandomGeometric radius %v invalid (want finite >= 0)", radius)
	}
	pts := make([][2]float64, n)
	for i := range pts {
		pts[i] = [2]float64{rng.Float64(), rng.Float64()}
	}
	b := NewBuilder(n)
	if radius == 0 || n < 2 {
		return b.Build(), pts, nil
	}
	// Grid dimension: cells must be at least radius wide (so neighbors are
	// confined to the 3×3 block), and at most ~√n per side (so the grid
	// itself stays O(n) even for tiny radii).
	dim := 1
	if radius < 1 {
		// Compare in float before converting: for tiny radii 1/radius
		// overflows the int conversion (implementation-defined, negative on
		// amd64), which would skip the cap and degrade to one Θ(n²) cell.
		if cap := int(math.Sqrt(float64(n))) + 1; 1/radius > float64(cap) {
			dim = cap
		} else {
			dim = int(1 / radius)
		}
		// 1/radius can round up to exactly dim, leaving cells one ulp
		// narrower than radius and a pair two cells apart but within range.
		for dim > 1 && 1/float64(dim) < radius {
			dim--
		}
		if dim < 1 {
			dim = 1
		}
	}
	cellOf := make([]int32, n)
	counts := make([]int32, dim*dim+1)
	for i, pt := range pts {
		gx := int(pt[0] * float64(dim))
		gy := int(pt[1] * float64(dim))
		if gx >= dim {
			gx = dim - 1
		}
		if gy >= dim {
			gy = dim - 1
		}
		c := int32(gx*dim + gy)
		cellOf[i] = c
		counts[c+1]++
	}
	for c := 0; c < dim*dim; c++ {
		counts[c+1] += counts[c]
	}
	bucket := make([]int32, n) // point ids grouped by cell, ascending within a cell
	cursor := make([]int32, dim*dim)
	copy(cursor, counts[:dim*dim])
	for i := 0; i < n; i++ {
		c := cellOf[i]
		bucket[cursor[c]] = int32(i)
		cursor[c]++
	}
	r2 := radius * radius
	for u := 0; u < n; u++ {
		cu := int(cellOf[u])
		gx, gy := cu/dim, cu%dim
		for dx := -1; dx <= 1; dx++ {
			x := gx + dx
			if x < 0 || x >= dim {
				continue
			}
			for dy := -1; dy <= 1; dy++ {
				y := gy + dy
				if y < 0 || y >= dim {
					continue
				}
				c := x*dim + y
				for _, v := range bucket[counts[c]:counts[c+1]] {
					if int(v) <= u {
						continue
					}
					ddx := pts[u][0] - pts[v][0]
					ddy := pts[u][1] - pts[v][1]
					if ddx*ddx+ddy*ddy <= r2 {
						if err := b.AddEdge(u, int(v)); err != nil {
							return nil, nil, err
						}
					}
				}
			}
		}
	}
	return b.Build(), pts, nil
}

// PlantedACDSpec describes a synthetic instance with a known almost-clique
// decomposition: NumCliques dense blocks of CliqueSize vertices each, where a
// DropFraction of internal edges is removed (creating anti-edges), each dense
// vertex gets about ExternalDegree edges leaving its block, and SparseN
// additional vertices form a sparse G(n, SparseP) region attached to the
// dense blocks.
//
// This is the workload shape the paper's analysis revolves around: dense
// almost-cliques (cabals when ExternalDegree is small) embedded in a sparser
// graph.
type PlantedACDSpec struct {
	NumCliques     int
	CliqueSize     int
	DropFraction   float64
	ExternalDegree int
	SparseN        int
	SparseP        float64
}

// Validate checks the spec's fields, rejecting NaN and out-of-range values
// that would otherwise silently degenerate the instance (a NaN DropFraction
// fails every ">=" comparison and used to drop every dense edge).
func (spec PlantedACDSpec) Validate() error {
	if spec.NumCliques < 0 || spec.CliqueSize < 0 || spec.SparseN < 0 {
		return fmt.Errorf("graph: negative size in spec %+v", spec)
	}
	if spec.ExternalDegree < 0 {
		return fmt.Errorf("graph: ExternalDegree %d < 0", spec.ExternalDegree)
	}
	if !(spec.DropFraction >= 0 && spec.DropFraction < 1) {
		return fmt.Errorf("graph: DropFraction %v out of [0,1)", spec.DropFraction)
	}
	if !validProb(spec.SparseP) {
		return fmt.Errorf("graph: SparseP %v out of [0,1]", spec.SparseP)
	}
	return nil
}

// PlantedACD generates the instance described by spec. It returns the graph
// and the planted block label per vertex (-1 for sparse vertices).
func PlantedACD(spec PlantedACDSpec, rng *rand.Rand) (*Graph, []int, error) {
	if err := spec.Validate(); err != nil {
		return nil, nil, err
	}
	denseN := spec.NumCliques * spec.CliqueSize
	n := denseN + spec.SparseN
	b := NewBuilder(n)
	blocks := make([]int, n)
	for i := range blocks {
		blocks[i] = -1
	}
	// Dense blocks with dropped edges.
	for c := 0; c < spec.NumCliques; c++ {
		base := c * spec.CliqueSize
		for i := 0; i < spec.CliqueSize; i++ {
			blocks[base+i] = c
			for j := i + 1; j < spec.CliqueSize; j++ {
				if rng.Float64() >= spec.DropFraction {
					if err := b.AddEdge(base+i, base+j); err != nil {
						return nil, nil, err
					}
				}
			}
		}
	}
	// External edges between blocks (and into the sparse part if present).
	// Repeat draws of the same pair are buffered and merged at Build.
	if spec.NumCliques > 1 || spec.SparseN > 0 {
		for v := 0; v < denseN; v++ {
			for k := 0; k < spec.ExternalDegree; k++ {
				u := rng.IntN(n)
				if u == v || blocks[u] == blocks[v] {
					continue
				}
				if err := b.AddEdge(v, u); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	// Sparse region.
	if err := gnpInto(b, denseN, n, spec.SparseP, rng); err != nil {
		return nil, nil, err
	}
	return b.Build(), blocks, nil
}

// CabalSpec describes the simplified Section 2.4 setting: NumCliques blocks
// that are (S − r)-cliques of size S where every vertex has about R external
// neighbors in other blocks. With small R these blocks are cabals.
type CabalSpec struct {
	NumCliques int
	CliqueSize int
	External   int
}

// PlantedCabals generates near-disjoint cliques with R external edges per
// vertex, the setting used to evaluate put-aside coloring (Proposition 4.19).
func PlantedCabals(spec CabalSpec, rng *rand.Rand) (*Graph, []int, error) {
	return PlantedACD(PlantedACDSpec{
		NumCliques:     spec.NumCliques,
		CliqueSize:     spec.CliqueSize,
		ExternalDegree: spec.External,
	}, rng)
}

// BarabasiAlbert grows a preferential-attachment power-law graph: vertices
// arrive one at a time and attach to attach distinct existing vertices
// chosen proportionally to degree (the first vertices attach to all earlier
// ones). The result has heavy-tailed degrees — the hub-and-spoke scenario
// complementing GNP's concentrated degrees — and costs O(n · attach).
func BarabasiAlbert(n, attach int, rng *rand.Rand) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: BarabasiAlbert n %d < 0", n)
	}
	if attach < 1 {
		return nil, fmt.Errorf("graph: BarabasiAlbert attach %d < 1", attach)
	}
	if n > 0 && attach >= n {
		return nil, fmt.Errorf("graph: BarabasiAlbert attach %d >= n %d", attach, n)
	}
	b := NewBuilder(n)
	// repeats holds every edge endpoint once; sampling an index uniformly is
	// exactly degree-proportional sampling.
	repeats := make([]int32, 0, 2*attach*n)
	chosen := make([]int32, 0, attach)
	for v := 1; v < n; v++ {
		chosen = chosen[:0]
		if v <= attach {
			for u := 0; u < v; u++ {
				chosen = append(chosen, int32(u))
			}
		} else {
			for len(chosen) < attach {
				u := repeats[rng.IntN(len(repeats))]
				dup := false
				for _, c := range chosen {
					if c == u {
						dup = true
						break
					}
				}
				if !dup {
					chosen = append(chosen, u)
				}
			}
		}
		for _, u := range chosen {
			if err := b.AddEdge(int(u), v); err != nil {
				return nil, err
			}
			repeats = append(repeats, u, int32(v))
		}
	}
	return b.Build(), nil
}

// RandomRegular samples a d-regular graph on n vertices via the pairing
// (configuration) model: d stubs per vertex are shuffled and matched, pairs
// that would create self-loops or parallel edges are thrown back, and the
// whole construction restarts on the (rare) dead end where only unsuitable
// pairs remain. n·d must be even and d < n.
func RandomRegular(n, d int, rng *rand.Rand) (*Graph, error) {
	if n < 0 || d < 0 {
		return nil, fmt.Errorf("graph: RandomRegular n %d, d %d must be >= 0", n, d)
	}
	if d >= n && d > 0 {
		return nil, fmt.Errorf("graph: RandomRegular d %d >= n %d", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: RandomRegular n·d = %d·%d is odd", n, d)
	}
	if d == 0 {
		return NewBuilder(n).Build(), nil
	}
	const maxRestarts = 100
	for attempt := 0; attempt < maxRestarts; attempt++ {
		b := NewBuilder(n)
		seen := make(map[uint64]struct{}, n*d/2)
		stubs := make([]int32, 0, n*d)
		for v := 0; v < n; v++ {
			for i := 0; i < d; i++ {
				stubs = append(stubs, int32(v))
			}
		}
		for len(stubs) > 0 {
			rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
			leftover := stubs[:0:0]
			for i := 0; i+1 < len(stubs); i += 2 {
				u, v := stubs[i], stubs[i+1]
				lo, hi := u, v
				if lo > hi {
					lo, hi = hi, lo
				}
				key := uint64(lo)<<32 | uint64(hi)
				if u == v {
					leftover = append(leftover, u, v)
					continue
				}
				if _, dup := seen[key]; dup {
					leftover = append(leftover, u, v)
					continue
				}
				seen[key] = struct{}{}
				if err := b.AddEdge(int(u), int(v)); err != nil {
					return nil, err
				}
			}
			if len(leftover) == len(stubs) {
				break // no progress: only unsuitable pairs remain, restart
			}
			stubs = leftover
		}
		if len(stubs) == 0 {
			return b.Build(), nil
		}
	}
	return nil, fmt.Errorf("graph: RandomRegular(%d, %d) failed to realize after %d restarts", n, d, maxRestarts)
}

// RingOfCliques returns numCliques cliques of cliqueSize vertices arranged
// in a ring, consecutive cliques joined by a single edge (the last vertex of
// one to the first vertex of the next). It is the canonical
// high-local-density / low-expansion stress shape: every block is an
// almost-clique, yet global information must cross single-edge bridges.
// With cliqueSize = 1 it degenerates to the cycle C_numCliques.
func RingOfCliques(numCliques, cliqueSize int) (*Graph, error) {
	if numCliques < 0 || cliqueSize < 1 {
		return nil, fmt.Errorf("graph: RingOfCliques needs numCliques >= 0 and cliqueSize >= 1, got %d, %d", numCliques, cliqueSize)
	}
	// Capacity: reject instances whose edges cannot fit the int32 CSR cap
	// before buffering gigabytes of endpoints (cliqueSize < 65536 keeps the
	// per-clique product overflow-free; larger cliques are past the cap on
	// their own, and the bound is conservative by one ring link per clique).
	if numCliques > 0 {
		perClique := int64(cliqueSize)*int64(cliqueSize-1)/2 + 1
		if cliqueSize >= 65536 || int64(numCliques) > int64(maxBuilderEdges)/perClique {
			return nil, fmt.Errorf("graph: RingOfCliques(%d, %d) exceeds the %d-edge CSR capacity", numCliques, cliqueSize, maxBuilderEdges)
		}
	}
	n := numCliques * cliqueSize
	b := NewBuilder(n)
	for c := 0; c < numCliques; c++ {
		base := c * cliqueSize
		for i := 0; i < cliqueSize; i++ {
			for j := i + 1; j < cliqueSize; j++ {
				_ = b.AddEdge(base+i, base+j) // in-range, distinct, capacity pre-checked: cannot fail
			}
		}
	}
	if numCliques >= 2 {
		for c := 0; c < numCliques; c++ {
			u := c*cliqueSize + cliqueSize - 1
			v := ((c + 1) % numCliques) * cliqueSize
			if u != v {
				_ = b.AddEdge(u, v) // k=2, size=1 draws {0,1} twice; Build merges it
			}
		}
	}
	return b.Build(), nil
}
