package graph

import (
	"fmt"
	"math/rand/v2"
)

// NewRand returns a deterministic PCG-backed random source for the given
// seed. All generators in this package take an explicit *rand.Rand so that
// experiments are reproducible.
func NewRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// GNP samples an Erdős–Rényi graph G(n, p).
func GNP(n int, p float64, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				// In-range distinct endpoints: cannot fail.
				_ = b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

// Clique returns the complete graph K_n.
func Clique(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			_ = b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// Path returns the path graph on n vertices.
func Path(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		_ = b.AddEdge(v-1, v)
	}
	return b.Build()
}

// Cycle returns the cycle graph on n >= 3 vertices.
func Cycle(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		_ = b.AddEdge(v-1, v)
	}
	if n >= 3 {
		_ = b.AddEdge(n-1, 0)
	}
	return b.Build()
}

// Star returns the star graph with center 0 and n-1 leaves.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		_ = b.AddEdge(0, v)
	}
	return b.Build()
}

// RandomTree returns a uniform-ish random tree on n vertices (each vertex
// v >= 1 attaches to a uniform earlier vertex).
func RandomTree(n int, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		_ = b.AddEdge(rng.IntN(v), v)
	}
	return b.Build()
}

// RandomGeometric samples n points uniformly in the unit square and
// connects pairs within Euclidean distance radius — the standard model of
// wireless interference networks, the motivating workload for distance-2
// coloring (Corollary 1.3). It returns the graph and the point coordinates.
func RandomGeometric(n int, radius float64, rng *rand.Rand) (*Graph, [][2]float64) {
	pts := make([][2]float64, n)
	for i := range pts {
		pts[i] = [2]float64{rng.Float64(), rng.Float64()}
	}
	b := NewBuilder(n)
	r2 := radius * radius
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			dx := pts[u][0] - pts[v][0]
			dy := pts[u][1] - pts[v][1]
			if dx*dx+dy*dy <= r2 {
				_ = b.AddEdge(u, v)
			}
		}
	}
	return b.Build(), pts
}

// PlantedACDSpec describes a synthetic instance with a known almost-clique
// decomposition: NumCliques dense blocks of CliqueSize vertices each, where a
// DropFraction of internal edges is removed (creating anti-edges), each dense
// vertex gets about ExternalDegree edges leaving its block, and SparseN
// additional vertices form a sparse G(n, SparseP) region attached to the
// dense blocks.
//
// This is the workload shape the paper's analysis revolves around: dense
// almost-cliques (cabals when ExternalDegree is small) embedded in a sparser
// graph.
type PlantedACDSpec struct {
	NumCliques     int
	CliqueSize     int
	DropFraction   float64
	ExternalDegree int
	SparseN        int
	SparseP        float64
}

// PlantedACD generates the instance described by spec. It returns the graph
// and the planted block label per vertex (-1 for sparse vertices).
func PlantedACD(spec PlantedACDSpec, rng *rand.Rand) (*Graph, []int, error) {
	if spec.NumCliques < 0 || spec.CliqueSize < 0 || spec.SparseN < 0 {
		return nil, nil, fmt.Errorf("graph: negative size in spec %+v", spec)
	}
	if spec.DropFraction < 0 || spec.DropFraction >= 1 {
		return nil, nil, fmt.Errorf("graph: DropFraction %v out of [0,1)", spec.DropFraction)
	}
	denseN := spec.NumCliques * spec.CliqueSize
	n := denseN + spec.SparseN
	b := NewBuilder(n)
	blocks := make([]int, n)
	for i := range blocks {
		blocks[i] = -1
	}
	// Dense blocks with dropped edges.
	for c := 0; c < spec.NumCliques; c++ {
		base := c * spec.CliqueSize
		for i := 0; i < spec.CliqueSize; i++ {
			blocks[base+i] = c
			for j := i + 1; j < spec.CliqueSize; j++ {
				if rng.Float64() >= spec.DropFraction {
					_ = b.AddEdge(base+i, base+j)
				}
			}
		}
	}
	// External edges between blocks (and into the sparse part if present).
	if spec.NumCliques > 1 || spec.SparseN > 0 {
		for v := 0; v < denseN; v++ {
			for k := 0; k < spec.ExternalDegree; k++ {
				u := rng.IntN(n)
				if u == v || blocks[u] == blocks[v] {
					continue
				}
				if _, err := b.AddEdgeIfAbsent(v, u); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	// Sparse region.
	for u := denseN; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < spec.SparseP {
				_ = b.AddEdge(u, v)
			}
		}
	}
	return b.Build(), blocks, nil
}

// CabalSpec describes the simplified Section 2.4 setting: NumCliques blocks
// that are (S − r)-cliques of size S where every vertex has about R external
// neighbors in other blocks. With small R these blocks are cabals.
type CabalSpec struct {
	NumCliques int
	CliqueSize int
	External   int
}

// PlantedCabals generates near-disjoint cliques with R external edges per
// vertex, the setting used to evaluate put-aside coloring (Proposition 4.19).
func PlantedCabals(spec CabalSpec, rng *rand.Rand) (*Graph, []int, error) {
	return PlantedACD(PlantedACDSpec{
		NumCliques:     spec.NumCliques,
		CliqueSize:     spec.CliqueSize,
		ExternalDegree: spec.External,
	}, rng)
}
