package graph

import (
	"testing"
)

// FuzzBuilder round-trips arbitrary edge lists through the CSR builder: for
// any byte string interpreted as (n, edge pairs), the built graph must be
// simple and symmetric with sorted deduplicated adjacency, and every
// accepted edge must be present.
func FuzzBuilder(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{4, 0, 1, 1, 2, 2, 3, 3, 0})
	f.Add([]byte{3, 0, 1, 0, 1, 1, 0}) // duplicates + reversed duplicate
	f.Add([]byte{2, 0, 0})             // self-loop (rejected by AddEdge)
	f.Add([]byte{16, 250, 1, 3, 200})  // out-of-range endpoints
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := int(data[0]%64) + 1
		b := NewBuilder(n)
		type edge struct{ u, v int }
		accepted := make(map[edge]bool)
		for i := 1; i+1 < len(data) && i < 256; i += 2 {
			u, v := int(data[i]), int(data[i+1])
			err := b.AddEdge(u, v)
			switch {
			case u == v || u >= n || v >= n:
				if err == nil {
					t.Fatalf("AddEdge(%d,%d) with n=%d accepted invalid edge", u, v, n)
				}
			case err != nil:
				t.Fatalf("AddEdge(%d,%d) with n=%d rejected valid edge: %v", u, v, n, err)
			default:
				if u > v {
					u, v = v, u
				}
				accepted[edge{u, v}] = true
			}
		}
		g := b.Build()
		if g.N() != n {
			t.Fatalf("built %d vertices, want %d", g.N(), n)
		}
		if g.M() != len(accepted) {
			t.Fatalf("built %d edges, accepted %d distinct", g.M(), len(accepted))
		}
		degSum := 0
		for v := 0; v < n; v++ {
			nbrs := g.Neighbors(v)
			degSum += len(nbrs)
			for i, u := range nbrs {
				if int(u) == v {
					t.Fatalf("vertex %d adjacent to itself", v)
				}
				if i > 0 && nbrs[i-1] >= u {
					t.Fatalf("vertex %d adjacency not strictly sorted: %v", v, nbrs)
				}
				uu, vv := v, int(u)
				if uu > vv {
					uu, vv = vv, uu
				}
				if !accepted[edge{uu, vv}] {
					t.Fatalf("edge {%d,%d} in graph but never accepted", uu, vv)
				}
				if !g.HasEdge(int(u), v) {
					t.Fatalf("edge {%d,%d} not symmetric", v, u)
				}
			}
			if len(nbrs) > g.MaxDegree() {
				t.Fatalf("vertex %d degree %d exceeds MaxDegree %d", v, len(nbrs), g.MaxDegree())
			}
		}
		if degSum != 2*g.M() {
			t.Fatalf("degree sum %d, want 2·M = %d", degSum, 2*g.M())
		}
		for e := range accepted {
			if !g.HasEdge(e.u, e.v) {
				t.Fatalf("accepted edge {%d,%d} missing from graph", e.u, e.v)
			}
		}
	})
}

// FuzzShardStream pins streaming ≡ materialized shard construction on
// arbitrary small edge lists: bytes decode as (n, k, edge pairs), the valid
// edges build a materialized graph partitioned the usual way, and streaming
// the same (duplicated, unordered) edge sequence through the sharded builder
// must reproduce every slice byte for byte.
func FuzzShardStream(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{4, 2, 0, 1, 1, 2, 2, 3, 3, 0})
	f.Add([]byte{6, 3, 0, 5, 5, 0, 1, 4}) // cross-shard + reversed duplicate
	f.Add([]byte{3, 7, 0, 1})             // k > n: empty shards
	f.Add([]byte{5, 1, 0, 0, 9, 1})       // invalid edges among valid ones
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		n := int(data[0]%48) + 1
		k := int(data[1]%8) + 1
		var edges [][2]int
		for i := 2; i+1 < len(data) && i < 200; i += 2 {
			u, v := int(data[i]), int(data[i+1])
			if u == v || u >= n || v >= n {
				continue
			}
			edges = append(edges, [2]int{u, v})
		}
		b := NewBuilder(n)
		for _, e := range edges {
			if err := b.AddEdge(e[0], e[1]); err != nil {
				t.Fatalf("AddEdge(%d,%d): %v", e[0], e[1], err)
			}
		}
		g := b.Build()
		want, err := NewShardedGraph(g, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := NewShardedGraphFromEdges(n, k, func(emit func(u, v int) error) error {
			for _, e := range edges {
				if err := emit(e[0], e[1]); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		equalShardedStructures(t, "fuzz", want, got)
	})
}
