// Package graph provides the static undirected graph substrate used by the
// cluster-graph coloring algorithms: CSR adjacency graphs, degree and
// neighborhood queries, and the structural generators that the paper's
// evaluation needs (planted almost-clique instances, cluster expansions,
// power graphs, and classic random graphs).
//
// Vertices are identified by dense integers 0..N()-1. Graphs are built with a
// Builder and are immutable afterwards, which makes them safe for concurrent
// read access from the simulator's per-cluster goroutines.
package graph

import (
	"fmt"
	"slices"
	"sort"
)

// Graph is an immutable simple undirected graph in compressed sparse row
// (CSR) form: one flat neighbor array indexed by per-vertex offsets, with
// each vertex's neighbor list sorted ascending. Two flat arrays instead of a
// slice-of-slices keeps million-vertex instances cache-friendly and
// allocation-light.
//
// The zero value is an empty graph with no vertices. Use NewBuilder to
// construct non-trivial graphs.
type Graph struct {
	offsets []int32 // len N()+1; vertex v's neighbors are nbrs[offsets[v]:offsets[v+1]]
	nbrs    []int32 // len 2·M(), sorted ascending within each vertex's window
	m       int
	maxDeg  int
}

// maxBuilderEdges caps the buffered edge count so that 2·M() = 2³¹−2 stays
// representable in the int32 CSR offsets (the cap is hit only by instances
// that would need >16 GB of adjacency anyway).
const maxBuilderEdges = 1<<30 - 1

// Builder accumulates edges for a Graph. Endpoints are validated at Add
// time (range, self-loops); duplicate edges are buffered freely and merged
// by a single sort+scan in Build, so no per-edge hash map is kept and adding
// an edge is a bounds check plus one append.
type Builder struct {
	n     int
	edges []uint64 // packed lo<<32 | hi with lo < hi
	built bool
}

// NewBuilder returns a Builder for a graph on n vertices (n < 0 is treated
// as 0).
func NewBuilder(n int) *Builder {
	if n < 0 {
		n = 0
	}
	return &Builder{n: n}
}

// AddEdge buffers the undirected edge {u, v}. It returns an error for
// out-of-range endpoints and self-loops. Duplicate edges are accepted and
// merged in Build, so the resulting graph is always simple.
func (b *Builder) AddEdge(u, v int) error {
	if b.built {
		panic("graph: Builder used after Build")
	}
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, b.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	if len(b.edges) >= maxBuilderEdges {
		return fmt.Errorf("graph: edge count exceeds %d", maxBuilderEdges)
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, uint64(u)<<32|uint64(v))
	return nil
}

// Build finalizes the graph: sorts the buffered endpoint pairs, drops
// duplicates in one scan, and lays the survivors out in CSR form. Because
// the pairs are normalized (lo < hi) and sorted lexicographically, filling
// both directions in pair order yields sorted neighbor lists without any
// per-vertex sort. The Builder must not be used afterwards: AddEdge and
// Build panic on a finalized Builder rather than silently dropping the
// pre-Build edges.
func (b *Builder) Build() *Graph {
	if b.built {
		panic("graph: Builder used after Build")
	}
	b.built = true
	slices.Sort(b.edges)
	edges := slices.Compact(b.edges)
	offsets := make([]int32, b.n+1)
	for _, e := range edges {
		offsets[e>>32+1]++
		offsets[uint32(e)+1]++
	}
	maxDeg := 0
	for v := 0; v < b.n; v++ {
		if d := int(offsets[v+1]); d > maxDeg {
			maxDeg = d
		}
		offsets[v+1] += offsets[v]
	}
	cursor := make([]int32, b.n)
	copy(cursor, offsets[:b.n])
	nbrs := make([]int32, 2*len(edges))
	for _, e := range edges {
		u, v := int32(e>>32), int32(uint32(e))
		nbrs[cursor[u]] = v
		cursor[u]++
		nbrs[cursor[v]] = u
		cursor[v]++
	}
	g := &Graph{offsets: offsets, nbrs: nbrs, m: len(edges), maxDeg: maxDeg}
	b.edges = nil
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return int(g.offsets[v+1] - g.offsets[v]) }

// Neighbors returns the sorted neighbor list of v. The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int32 { return g.nbrs[g.offsets[v]:g.offsets[v+1]] }

// AdjOffset returns the CSR position of v's first neighbor: the directed
// edge (v, Neighbors(v)[j]) occupies slot AdjOffset(v)+j in [0, 2·M()).
// Slot indices let callers memoize per-edge values in flat arrays without a
// map from vertex pairs.
func (g *Graph) AdjOffset(v int) int { return int(g.offsets[v]) }

// NeighborIndex returns j such that Neighbors(u)[j] == v, or -1 when {u, v}
// is not an edge — the mirror lookup for CSR slot indexing, by binary search
// on u's sorted neighbor list.
func (g *Graph) NeighborIndex(u, v int) int {
	nb := g.Neighbors(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= int32(v) })
	if i < len(nb) && nb[i] == int32(v) {
		return i
	}
	return -1
}

// HasEdge reports whether {u, v} is an edge, by binary search on the sorted
// adjacency list of the lower-degree endpoint.
func (g *Graph) HasEdge(u, v int) bool {
	if u == v {
		return false
	}
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	nb := g.Neighbors(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= int32(v) })
	return i < len(nb) && nb[i] == int32(v)
}

// MaxDegree returns Δ, the maximum degree (0 for an empty graph).
func (g *Graph) MaxDegree() int { return g.maxDeg }

// CommonNeighbors returns |N(u) ∩ N(v)| by merging the two sorted lists.
func (g *Graph) CommonNeighbors(u, v int) int {
	a, b := g.Neighbors(u), g.Neighbors(v)
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// UnionNeighborhoodSize returns |N(u) ∪ N(v)|.
func (g *Graph) UnionNeighborhoodSize(u, v int) int {
	return g.Degree(u) + g.Degree(v) - g.CommonNeighbors(u, v)
}

// ConnectedComponents returns a component label per vertex and the number of
// components. Labels are dense in [0, count).
func (g *Graph) ConnectedComponents() (labels []int, count int) {
	labels = make([]int, g.N())
	for i := range labels {
		labels[i] = -1
	}
	var queue []int32
	for s := 0; s < g.N(); s++ {
		if labels[s] >= 0 {
			continue
		}
		labels[s] = count
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.Neighbors(int(v)) {
				if labels[w] < 0 {
					labels[w] = count
					queue = append(queue, w)
				}
			}
		}
		count++
	}
	return labels, count
}

// BFSDepths runs breadth-first search from src restricted to the vertex set
// allowed (nil means all vertices) and returns the depth per vertex (-1 if
// unreachable) and the parent per vertex (-1 for src/unreachable).
func (g *Graph) BFSDepths(src int, allowed func(int) bool) (depth, parent []int) {
	depth = make([]int, g.N())
	parent = make([]int, g.N())
	for i := range depth {
		depth[i] = -1
		parent[i] = -1
	}
	if allowed != nil && !allowed(src) {
		return depth, parent
	}
	depth[src] = 0
	queue := []int32{int32(src)}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(int(v)) {
			if depth[w] >= 0 {
				continue
			}
			if allowed != nil && !allowed(int(w)) {
				continue
			}
			depth[w] = depth[v] + 1
			parent[w] = int(v)
			queue = append(queue, w)
		}
	}
	return depth, parent
}

// SubgraphScratch is the reusable membership index of InducedSubgraphWith:
// flat epoch-stamped arrays replace the per-call map (the same trick as the
// Power BFS and acd.Validate), so repeated extraction costs one stamp per
// member and no hashing. A scratch belongs to one caller at a time; the zero
// value is ready to use.
type SubgraphScratch struct {
	index []int32 // new index of v, valid iff epoch[v] == cur
	epoch []int32
	cur   int32
}

// InducedSubgraph returns the subgraph induced by vertices (in the given
// order) together with the mapping from new index to original vertex.
func (g *Graph) InducedSubgraph(vertices []int) (*Graph, []int) {
	return g.InducedSubgraphWith(vertices, &SubgraphScratch{})
}

// InducedSubgraphWith is InducedSubgraph with caller-owned scratch, for
// replay and virtual-graph paths that extract subgraphs repeatedly.
func (g *Graph) InducedSubgraphWith(vertices []int, sc *SubgraphScratch) (*Graph, []int) {
	n := g.N()
	if cap(sc.index) < n {
		sc.index = make([]int32, n)
		sc.epoch = make([]int32, n)
		sc.cur = 0
	}
	sc.index = sc.index[:n]
	sc.epoch = sc.epoch[:n]
	sc.cur++
	if sc.cur <= 0 { // int32 wraparound after ~2³¹ extractions: restamp
		for i := range sc.epoch {
			sc.epoch[i] = 0
		}
		sc.cur = 1
	}
	for i, v := range vertices {
		sc.index[v] = int32(i)
		sc.epoch[v] = sc.cur
	}
	b := NewBuilder(len(vertices))
	for i, v := range vertices {
		for _, w := range g.Neighbors(v) {
			if sc.epoch[w] != sc.cur {
				continue
			}
			if j := int(sc.index[w]); i < j {
				// Insertion between in-range distinct indices cannot fail.
				_ = b.AddEdge(i, j)
			}
		}
	}
	orig := make([]int, len(vertices))
	copy(orig, vertices)
	return b.Build(), orig
}

// Power returns the k-th power of g: vertices u != v are adjacent iff their
// distance in g is at most k. For k=2 this is the distance-2 conflict graph
// used by Corollary 1.3. The exponent must be >= 1; Power(1) returns g
// itself (graphs are immutable, so sharing is safe).
//
// Each source runs a depth-bounded BFS over flat epoch-stamped arrays — no
// per-source maps — so the cost is the sum of the explored ball sizes, which
// is proportional to the output size for bounded-degree inputs.
func (g *Graph) Power(k int) (*Graph, error) {
	if k < 1 {
		return nil, fmt.Errorf("graph: power exponent %d < 1 (distance-0 adjacency is undefined)", k)
	}
	if k == 1 {
		return g, nil
	}
	n := g.N()
	b := NewBuilder(n)
	visited := make([]int32, n) // epoch stamp: visited[v] == s+1 ⇔ seen in source s's BFS
	depth := make([]int32, n)
	var queue []int32
	for s := 0; s < n; s++ {
		epoch := int32(s) + 1
		visited[s] = epoch
		depth[s] = 0
		queue = append(queue[:0], int32(s))
		for i := 0; i < len(queue); i++ {
			v := queue[i]
			if int(depth[v]) == k {
				continue
			}
			for _, w := range g.Neighbors(int(v)) {
				if visited[w] == epoch {
					continue
				}
				visited[w] = epoch
				depth[w] = depth[v] + 1
				queue = append(queue, w)
				if int(w) > s {
					// Endpoints are in range, but G^k can blow past the
					// edge cap even for a small input (a large star's
					// square is a giant clique) — propagate, never
					// truncate.
					if err := b.AddEdge(s, int(w)); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return b.Build(), nil
}

// Complement anti-edges: AntiDegreeWithin returns |K \ N(v)| - 1 for v in the
// vertex set K, i.e. the number of non-neighbors of v inside K.
func (g *Graph) AntiDegreeWithin(v int, members []int32) int {
	a := 0
	for _, u := range members {
		if int(u) != v && !g.HasEdge(v, int(u)) {
			a++
		}
	}
	return a
}
