// Package graph provides the static undirected graph substrate used by the
// cluster-graph coloring algorithms: adjacency-list graphs, degree and
// neighborhood queries, and the structural generators that the paper's
// evaluation needs (planted almost-clique instances, cluster expansions,
// power graphs, and classic random graphs).
//
// Vertices are identified by dense integers 0..N()-1. Graphs are built with a
// Builder and are immutable afterwards, which makes them safe for concurrent
// read access from the simulator's per-cluster goroutines.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable simple undirected graph.
//
// The zero value is an empty graph with no vertices. Use NewBuilder to
// construct non-trivial graphs.
type Graph struct {
	adj [][]int32
	m   int
}

// Builder accumulates edges for a Graph. Duplicate edges and self-loops are
// rejected at Add time so that the resulting graph is always simple.
type Builder struct {
	n    int
	adj  [][]int32
	seen map[[2]int32]struct{}
}

// NewBuilder returns a Builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{
		n:    n,
		adj:  make([][]int32, n),
		seen: make(map[[2]int32]struct{}, n),
	}
}

// AddEdge inserts the undirected edge {u, v}. It returns an error for
// out-of-range endpoints, self-loops, and duplicate edges.
func (b *Builder) AddEdge(u, v int) error {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, b.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	key := edgeKey(u, v)
	if _, dup := b.seen[key]; dup {
		return fmt.Errorf("graph: duplicate edge {%d,%d}", u, v)
	}
	b.seen[key] = struct{}{}
	b.adj[u] = append(b.adj[u], int32(v))
	b.adj[v] = append(b.adj[v], int32(u))
	return nil
}

// AddEdgeIfAbsent inserts {u, v} unless it already exists or is a self-loop.
// It reports whether the edge was inserted. Out-of-range endpoints still
// return an error.
func (b *Builder) AddEdgeIfAbsent(u, v int) (bool, error) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return false, fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, b.n)
	}
	if u == v {
		return false, nil
	}
	if _, dup := b.seen[edgeKey(u, v)]; dup {
		return false, nil
	}
	// Reuse AddEdge for the actual insertion; preconditions already hold.
	if err := b.AddEdge(u, v); err != nil {
		return false, err
	}
	return true, nil
}

// HasEdge reports whether {u,v} has already been added.
func (b *Builder) HasEdge(u, v int) bool {
	if u == v || u < 0 || v < 0 || u >= b.n || v >= b.n {
		return false
	}
	_, ok := b.seen[edgeKey(u, v)]
	return ok
}

// Build finalizes the graph. The Builder must not be used afterwards.
func (b *Builder) Build() *Graph {
	m := 0
	for _, nb := range b.adj {
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
		m += len(nb)
	}
	g := &Graph{adj: b.adj, m: m / 2}
	b.adj = nil
	b.seen = nil
	return g
}

func edgeKey(u, v int) [2]int32 {
	if u > v {
		u, v = v, u
	}
	return [2]int32{int32(u), int32(v)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the sorted neighbor list of v. The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int32 { return g.adj[v] }

// HasEdge reports whether {u, v} is an edge, by binary search on the sorted
// adjacency list of the lower-degree endpoint.
func (g *Graph) HasEdge(u, v int) bool {
	if u == v {
		return false
	}
	if len(g.adj[u]) > len(g.adj[v]) {
		u, v = v, u
	}
	nb := g.adj[u]
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= int32(v) })
	return i < len(nb) && nb[i] == int32(v)
}

// MaxDegree returns Δ, the maximum degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for _, nb := range g.adj {
		if len(nb) > max {
			max = len(nb)
		}
	}
	return max
}

// CommonNeighbors returns |N(u) ∩ N(v)| by merging the two sorted lists.
func (g *Graph) CommonNeighbors(u, v int) int {
	a, b := g.adj[u], g.adj[v]
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// UnionNeighborhoodSize returns |N(u) ∪ N(v)|.
func (g *Graph) UnionNeighborhoodSize(u, v int) int {
	return len(g.adj[u]) + len(g.adj[v]) - g.CommonNeighbors(u, v)
}

// ConnectedComponents returns a component label per vertex and the number of
// components. Labels are dense in [0, count).
func (g *Graph) ConnectedComponents() (labels []int, count int) {
	labels = make([]int, g.N())
	for i := range labels {
		labels[i] = -1
	}
	var queue []int32
	for s := 0; s < g.N(); s++ {
		if labels[s] >= 0 {
			continue
		}
		labels[s] = count
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.adj[v] {
				if labels[w] < 0 {
					labels[w] = count
					queue = append(queue, w)
				}
			}
		}
		count++
	}
	return labels, count
}

// BFSDepths runs breadth-first search from src restricted to the vertex set
// allowed (nil means all vertices) and returns the depth per vertex (-1 if
// unreachable) and the parent per vertex (-1 for src/unreachable).
func (g *Graph) BFSDepths(src int, allowed func(int) bool) (depth, parent []int) {
	depth = make([]int, g.N())
	parent = make([]int, g.N())
	for i := range depth {
		depth[i] = -1
		parent[i] = -1
	}
	if allowed != nil && !allowed(src) {
		return depth, parent
	}
	depth[src] = 0
	queue := []int32{int32(src)}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[v] {
			if depth[w] >= 0 {
				continue
			}
			if allowed != nil && !allowed(int(w)) {
				continue
			}
			depth[w] = depth[v] + 1
			parent[w] = int(v)
			queue = append(queue, w)
		}
	}
	return depth, parent
}

// InducedSubgraph returns the subgraph induced by vertices (in the given
// order) together with the mapping from new index to original vertex.
func (g *Graph) InducedSubgraph(vertices []int) (*Graph, []int) {
	index := make(map[int]int, len(vertices))
	for i, v := range vertices {
		index[v] = i
	}
	b := NewBuilder(len(vertices))
	for i, v := range vertices {
		for _, w := range g.adj[v] {
			j, ok := index[int(w)]
			if ok && i < j {
				// Insertion between in-range distinct indices cannot fail.
				_ = b.AddEdge(i, j)
			}
		}
	}
	orig := make([]int, len(vertices))
	copy(orig, vertices)
	return b.Build(), orig
}

// Power returns the k-th power of g: vertices u != v are adjacent iff their
// distance in g is at most k. For k=2 this is the distance-2 conflict graph
// used by Corollary 1.3.
func (g *Graph) Power(k int) *Graph {
	b := NewBuilder(g.N())
	for s := 0; s < g.N(); s++ {
		// Bounded BFS to depth k.
		depth := map[int32]int{int32(s): 0}
		queue := []int32{int32(s)}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			if depth[v] == k {
				continue
			}
			for _, w := range g.adj[v] {
				if _, seen := depth[w]; !seen {
					depth[w] = depth[v] + 1
					queue = append(queue, w)
				}
			}
		}
		for v := range depth {
			if int(v) > s {
				if _, err := b.AddEdgeIfAbsent(s, int(v)); err != nil {
					// Unreachable: s and v are validated in-range.
					panic(err)
				}
			}
		}
	}
	return b.Build()
}

// Complement anti-edges: AntiDegreeWithin returns |K \ N(v)| - 1 for v in the
// vertex set K, i.e. the number of non-neighbors of v inside K.
func (g *Graph) AntiDegreeWithin(v int, members []int32) int {
	a := 0
	for _, u := range members {
		if int(u) != v && !g.HasEdge(v, int(u)) {
			a++
		}
	}
	return a
}
