package graph

import (
	"fmt"
	"math/rand/v2"
)

// ClusterTopology selects the internal machine topology used when expanding
// an input graph H into a communication network G (Definition 3.1).
type ClusterTopology int

const (
	// TopologySingleton puts one machine per cluster (the CONGEST special
	// case H = G).
	TopologySingleton ClusterTopology = iota + 1
	// TopologyPath connects a cluster's machines in a path, the
	// worst-dilation shape from Figure 2 (a bridge link in the middle).
	TopologyPath
	// TopologyStar connects a cluster's machines in a star (dilation 2).
	TopologyStar
	// TopologyTree connects a cluster's machines in a random tree.
	TopologyTree
)

func (t ClusterTopology) String() string {
	switch t {
	case TopologySingleton:
		return "singleton"
	case TopologyPath:
		return "path"
	case TopologyStar:
		return "star"
	case TopologyTree:
		return "tree"
	default:
		return fmt.Sprintf("ClusterTopology(%d)", int(t))
	}
}

// ExpandSpec controls how an input graph H is turned into a communication
// network G with a cluster per H-vertex.
type ExpandSpec struct {
	// Topology is the internal wiring of each cluster.
	Topology ClusterTopology
	// MachinesPerCluster is the cluster size (>= 1). Ignored for
	// TopologySingleton.
	MachinesPerCluster int
	// RedundantLinks, when >= 1, is the number of parallel G-links created
	// per H-edge (between distinct machine pairs when possible). Values
	// above 1 exercise the double-counting hazards of Section 1.1.
	RedundantLinks int
}

// Expansion is the result of expanding H into a communication network.
type Expansion struct {
	// G is the communication network.
	G *Graph
	// ClusterOf maps each machine of G to its H-vertex.
	ClusterOf []int
	// Machines maps each H-vertex to its machines in G.
	Machines [][]int32
}

// Expand builds a communication network realizing h as a cluster graph
// (Definition 3.1): each h-vertex becomes a connected cluster of machines
// and each h-edge becomes at least one inter-cluster link.
func Expand(h *Graph, spec ExpandSpec, rng *rand.Rand) (*Expansion, error) {
	size := spec.MachinesPerCluster
	if spec.Topology == TopologySingleton {
		size = 1
	}
	if size < 1 {
		return nil, fmt.Errorf("graph: MachinesPerCluster %d < 1", size)
	}
	redundant := spec.RedundantLinks
	if redundant < 1 {
		redundant = 1
	}
	nG := h.N() * size
	b := NewBuilder(nG)
	clusterOf := make([]int, nG)
	machines := make([][]int32, h.N())
	// One flat backing array for every cluster's machine list — per-vertex
	// slice allocations would dominate instance construction at scale.
	flat := make([]int32, nG)
	for v := 0; v < h.N(); v++ {
		base := v * size
		ms := flat[base : base+size : base+size]
		for i := 0; i < size; i++ {
			clusterOf[base+i] = v
			ms[i] = int32(base + i)
		}
		machines[v] = ms
		if err := wireCluster(b, base, size, spec.Topology, rng); err != nil {
			return nil, err
		}
	}
	// Inter-cluster links: each H-edge gets `redundant` links between
	// random machine pairs. Links between clusters v and w can only arise
	// from the H-edge {v,w}, so deduplication is local to this loop body —
	// a scan of the few pairs already drawn for the same H-edge.
	drawn := make([][2]int32, 0, redundant)
	for v := 0; v < h.N(); v++ {
		for _, w := range h.Neighbors(v) {
			if int(w) < v {
				continue
			}
			// The first attempt always succeeds (drawn is empty, so no dup),
			// so every H-edge gets at least one link.
			drawn = drawn[:0]
			for attempt := 0; attempt < redundant*4 && len(drawn) < redundant; attempt++ {
				mu := int(machines[v][rng.IntN(size)])
				mw := int(machines[w][rng.IntN(size)])
				pair := [2]int32{int32(mu), int32(mw)}
				dup := false
				for _, d := range drawn {
					if d == pair {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
				drawn = append(drawn, pair)
				if err := b.AddEdge(mu, mw); err != nil {
					return nil, err
				}
			}
		}
	}
	return &Expansion{G: b.Build(), ClusterOf: clusterOf, Machines: machines}, nil
}

func wireCluster(b *Builder, base, size int, topo ClusterTopology, rng *rand.Rand) error {
	switch topo {
	case TopologySingleton:
		return nil
	case TopologyPath:
		for i := 1; i < size; i++ {
			if err := b.AddEdge(base+i-1, base+i); err != nil {
				return err
			}
		}
		return nil
	case TopologyStar:
		for i := 1; i < size; i++ {
			if err := b.AddEdge(base, base+i); err != nil {
				return err
			}
		}
		return nil
	case TopologyTree:
		for i := 1; i < size; i++ {
			if err := b.AddEdge(base+rng.IntN(i), base+i); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("graph: unknown topology %v", topo)
	}
}
