package cluster

import (
	"fmt"
	"sort"

	"clustercolor/internal/parwork"
)

// HTree is a rooted tree on H-vertices produced by BFSForest. Children are
// ordered (by vertex id), which induces the total vertex order used by
// PrefixSums (Lemma 3.3). The representation is member-indexed: parent and
// depth are stored per member (parallel to Vertices) with a position map for
// lookups, so a tree costs O(members) memory rather than O(n) — on
// million-vertex instances with thousands of cliques the dense arrays this
// replaces were the profile stage's dominant allocation.
type HTree struct {
	Root int
	// Vertices lists the tree's members in the tree order ≺ (root first,
	// then recursively by ordered children — a preorder).
	Vertices []int
	// Height is the maximum depth.
	Height int
	// parent[i] is the parent of Vertices[i] (-1 for the root); depth[i] is
	// its BFS depth. pos maps a member vertex to its index in Vertices.
	parent []int32
	depth  []int32
	pos    map[int]int32
}

// Contains reports whether v belongs to the tree.
func (t *HTree) Contains(v int) bool {
	_, ok := t.pos[v]
	return ok
}

// Parent returns v's parent in the tree, -1 for the root and for vertices
// outside the tree.
func (t *HTree) Parent(v int) int {
	i, ok := t.pos[v]
	if !ok {
		return -1
	}
	return int(t.parent[i])
}

// Depth returns v's BFS depth, -1 for vertices outside the tree.
func (t *HTree) Depth(v int) int {
	i, ok := t.pos[v]
	if !ok {
		return -1
	}
	return int(t.depth[i])
}

// Len returns the number of member vertices.
func (t *HTree) Len() int { return len(t.Vertices) }

// BFSForest implements Lemma 3.2: a parallel t-hop BFS in vertex-disjoint
// subgraphs of H. Each subgraph is given by its member set and a source
// inside it. The BFS trees are returned together with the charged cost:
// O(maxDepth) H-rounds with O(log n)-bit messages, executed in parallel
// across the subgraphs.
func (cg *CG) BFSForest(phase string, subgraphs [][]int, sources []int, maxDepth int) ([]*HTree, error) {
	if len(subgraphs) != len(sources) {
		return nil, fmt.Errorf("cluster: %d subgraphs but %d sources", len(subgraphs), len(sources))
	}
	owner := make([]int, cg.H.N())
	for i := range owner {
		owner[i] = -1
	}
	for i, sub := range subgraphs {
		for _, v := range sub {
			if v < 0 || v >= cg.H.N() {
				return nil, fmt.Errorf("cluster: subgraph %d member %d out of range", i, v)
			}
			if owner[v] >= 0 {
				return nil, fmt.Errorf("cluster: vertex %d in subgraphs %d and %d (must be disjoint)", v, owner[v], i)
			}
			owner[v] = i
		}
	}
	for i, src := range sources {
		if owner[src] != i {
			return nil, fmt.Errorf("cluster: source %d not in subgraph %d", src, i)
		}
	}
	// The subgraphs are vertex-disjoint, so each tree builds independently:
	// the Lemma 3.2 parallelism is real, not just a cost-model fiction. Each
	// worker reads only the shared owner array and writes only its own tree.
	trees, err := parwork.ForEach(len(subgraphs), func(i int) (*HTree, error) {
		src := sources[i]
		tr := &HTree{Root: src}
		// Member-local BFS state: maps sized by the subgraph, never by n.
		depth := make(map[int]int32, len(subgraphs[i]))
		parent := make(map[int]int, len(subgraphs[i]))
		depth[src] = 0
		frontier := []int{src}
		for d := 0; d < maxDepth && len(frontier) > 0; d++ {
			var next []int
			for _, v := range frontier {
				for _, w := range cg.H.Neighbors(v) {
					u := int(w)
					if owner[u] != i {
						continue
					}
					if _, seen := depth[u]; seen {
						continue
					}
					depth[u] = int32(d + 1)
					parent[u] = v
					next = append(next, u)
				}
			}
			sort.Ints(next)
			frontier = next
			if len(next) > 0 {
				tr.Height = d + 1
			}
		}
		// Preorder traversal with children ordered by id, then freeze the
		// member-indexed arrays in that order.
		tr.Vertices = preorder(tr, parent, len(depth))
		tr.parent = make([]int32, len(tr.Vertices))
		tr.depth = make([]int32, len(tr.Vertices))
		tr.pos = make(map[int]int32, len(tr.Vertices))
		for idx, v := range tr.Vertices {
			tr.pos[v] = int32(idx)
			tr.depth[idx] = depth[v]
			if p, ok := parent[v]; ok {
				tr.parent[idx] = int32(p)
			} else {
				tr.parent[idx] = -1
			}
		}
		return tr, nil
	})
	if err != nil {
		return nil, err
	}
	deepest := 0
	for _, tr := range trees {
		if tr.Height > deepest {
			deepest = tr.Height
		}
	}
	// Cost: the BFS trees grow one H-hop per H-round, in parallel across
	// disjoint subgraphs (Lemma 3.2 gives O(t) rounds on G per hop budget).
	rounds := deepest
	if rounds < 1 {
		rounds = 1
	}
	cg.ChargeHRounds(phase, rounds, cg.idBits())
	return trees, nil
}

func preorder(t *HTree, parent map[int]int, members int) []int {
	children := make(map[int][]int, len(parent))
	for v, p := range parent {
		children[p] = append(children[p], v)
	}
	for _, c := range children {
		sort.Ints(c)
	}
	order := make([]int, 0, members)
	var walk func(v int)
	walk = func(v int) {
		order = append(order, v)
		for _, c := range children[v] {
			walk(c)
		}
	}
	walk(t.Root)
	return order
}

// PrefixSums implements Lemma 3.3 on an HTree: each member vertex u in S
// (those with a value in x) learns the sum of x over members strictly before
// it in the tree order ≺. Trees passed in one call are assumed edge-disjoint
// and run in parallel; the cost is O(height) H-rounds.
func (cg *CG) PrefixSums(phase string, trees []*HTree, x []map[int]int64) ([]map[int]int64, error) {
	if len(trees) != len(x) {
		return nil, fmt.Errorf("cluster: %d trees but %d value maps", len(trees), len(x))
	}
	out := make([]map[int]int64, len(trees))
	height := 0
	for i, tr := range trees {
		res := make(map[int]int64, len(x[i]))
		var running int64
		for _, v := range tr.Vertices {
			val, ok := x[i][v]
			if !ok {
				continue
			}
			res[v] = running
			running += val
		}
		out[i] = res
		if tr.Height > height {
			height = tr.Height
		}
	}
	if height < 1 {
		height = 1
	}
	// Lemma 3.3: O(d_tree) rounds; values are poly(n) so O(log n) bits.
	cg.ChargeHRounds(phase, height, 2*cg.idBits())
	return out, nil
}

// Enumerate assigns the members of each tree that satisfy pred distinct
// ranks 1..k (in tree order) via prefix sums with x_u = 1, the standard use
// of Lemma 3.3. It returns rank per vertex (0 for non-members) and the count
// per tree.
func (cg *CG) Enumerate(phase string, trees []*HTree, pred func(v int) bool) ([]int, []int, error) {
	xs := make([]map[int]int64, len(trees))
	for i, tr := range trees {
		m := make(map[int]int64)
		for _, v := range tr.Vertices {
			if pred(v) {
				m[v] = 1
			}
		}
		xs[i] = m
	}
	sums, err := cg.PrefixSums(phase, trees, xs)
	if err != nil {
		return nil, nil, err
	}
	rank := make([]int, cg.H.N())
	counts := make([]int, len(trees))
	for i, tr := range trees {
		for _, v := range tr.Vertices {
			if _, ok := xs[i][v]; ok {
				rank[v] = int(sums[i][v]) + 1
				counts[i]++
			}
		}
	}
	return rank, counts, nil
}

// idBits returns the bits of an identifier, Θ(log n) for the simulated
// network.
func (cg *CG) idBits() int {
	bits := 1
	for 1<<bits < cg.machineN+1 {
		bits++
	}
	return bits
}

// IDBits exposes the identifier width used for message accounting.
func (cg *CG) IDBits() int { return cg.idBits() }
