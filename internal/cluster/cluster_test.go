package cluster

import (
	"testing"

	"clustercolor/internal/graph"
	"clustercolor/internal/network"
)

func mustCG(t *testing.T, h *graph.Graph, spec graph.ExpandSpec, seed uint64) *CG {
	t.Helper()
	rng := graph.NewRand(seed)
	exp, err := graph.Expand(h, spec, rng)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := network.NewCostModel(64)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := New(h, exp, cost)
	if err != nil {
		t.Fatal(err)
	}
	return cg
}

func TestNewComputesSupportTrees(t *testing.T) {
	tests := []struct {
		name         string
		spec         graph.ExpandSpec
		wantDilation int
	}{
		{name: "singleton", spec: graph.ExpandSpec{Topology: graph.TopologySingleton}, wantDilation: 0},
		{name: "star5", spec: graph.ExpandSpec{Topology: graph.TopologyStar, MachinesPerCluster: 5}, wantDilation: 1},
		{name: "path4", spec: graph.ExpandSpec{Topology: graph.TopologyPath, MachinesPerCluster: 4}, wantDilation: 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cg := mustCG(t, graph.Cycle(5), tt.spec, 3)
			if cg.Dilation != tt.wantDilation {
				t.Fatalf("Dilation = %d, want %d", cg.Dilation, tt.wantDilation)
			}
			// Tree structure: every non-leader machine has a parent in the
			// same cluster at depth-1.
			for m := 0; m < cg.G.N(); m++ {
				v := cg.ClusterOf[m]
				if int32(m) == cg.Leader[v] {
					if cg.TreeParent[m] != -1 || cg.TreeDepth[m] != 0 {
						t.Fatalf("leader %d has parent %d depth %d", m, cg.TreeParent[m], cg.TreeDepth[m])
					}
					continue
				}
				p := cg.TreeParent[m]
				if p < 0 || cg.ClusterOf[p] != v {
					t.Fatalf("machine %d parent %d outside cluster", m, p)
				}
				if cg.TreeDepth[m] != cg.TreeDepth[p]+1 {
					t.Fatalf("machine %d depth %d, parent depth %d", m, cg.TreeDepth[m], cg.TreeDepth[p])
				}
				if !cg.G.HasEdge(m, int(p)) {
					t.Fatalf("tree edge {%d,%d} not a G-link", m, p)
				}
			}
		})
	}
}

func TestNewRejectsNilCost(t *testing.T) {
	rng := graph.NewRand(1)
	h := graph.Path(3)
	exp, err := graph.Expand(h, graph.ExpandSpec{Topology: graph.TopologySingleton}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(h, exp, nil); err == nil {
		t.Fatal("nil cost model accepted")
	}
}

func TestCollectNeighborsComputesMax(t *testing.T) {
	cg := mustCG(t, graph.Cycle(6), graph.ExpandSpec{Topology: graph.TopologyStar, MachinesPerCluster: 3}, 7)
	before := cg.Cost().Rounds()
	vals := CollectNeighbors(cg, "test", 16,
		func(v int) int { return -1 },
		func(v int) int { return v * 10 },
		func(v int, acc int, u int, uval int) int {
			if uval > acc {
				return uval
			}
			return acc
		})
	for v := 0; v < 6; v++ {
		want := -1
		for _, u := range cg.H.Neighbors(v) {
			if int(u)*10 > want {
				want = int(u) * 10
			}
		}
		if vals[v] != want {
			t.Fatalf("vals[%d] = %d, want %d", v, vals[v], want)
		}
	}
	if cg.Cost().Rounds() <= before {
		t.Fatal("CollectNeighbors charged no rounds")
	}
}

func TestCollectNeighborsSubset(t *testing.T) {
	cg := mustCG(t, graph.Path(5), graph.ExpandSpec{Topology: graph.TopologySingleton}, 7)
	active := []bool{true, false, true, true, false}
	sums := CollectNeighborsSubset(cg, "test", 8, active,
		func(v int) int { return 0 },
		func(v int) int { return 1 },
		func(v int, acc int, u int, uval int) int { return acc + uval })
	// Path 0-1-2-3-4; active {0,2,3}. Active neighbors: 0 has none (1
	// inactive), 2 has 3, 3 has 2.
	want := []int{0, 0, 1, 1, 0}
	for v, w := range want {
		if sums[v] != w {
			t.Fatalf("sums[%d] = %d, want %d", v, sums[v], w)
		}
	}
}

func TestHopsPerRoundAndCharge(t *testing.T) {
	cg := mustCG(t, graph.Path(3), graph.ExpandSpec{Topology: graph.TopologyPath, MachinesPerCluster: 4}, 7)
	if got, want := cg.HopsPerRound(), 2*3+1; got != want {
		t.Fatalf("HopsPerRound = %d, want %d", got, want)
	}
	rounds := cg.ChargeHRounds("x", 2, 10)
	if rounds != 2*cg.HopsPerRound() {
		t.Fatalf("ChargeHRounds = %d, want %d", rounds, 2*cg.HopsPerRound())
	}
}

func TestBFSForestMatchesSequentialBFS(t *testing.T) {
	rng := graph.NewRand(23)
	h := graph.MustGNP(40, 0.15, rng)
	cg := mustCG(t, h, graph.ExpandSpec{Topology: graph.TopologySingleton}, 5)
	// Two disjoint subgraphs: even vertices and odd vertices.
	var even, odd []int
	for v := 0; v < h.N(); v++ {
		if v%2 == 0 {
			even = append(even, v)
		} else {
			odd = append(odd, v)
		}
	}
	trees, err := cg.BFSForest("bfs", [][]int{even, odd}, []int{0, 1}, h.N())
	if err != nil {
		t.Fatal(err)
	}
	for i, allow := range []func(int) bool{func(v int) bool { return v%2 == 0 }, func(v int) bool { return v%2 == 1 }} {
		depth, _ := h.BFSDepths(trees[i].Root, allow)
		for v := 0; v < h.N(); v++ {
			if trees[i].Depth(v) != depth[v] {
				t.Fatalf("tree %d depth[%d] = %d, want %d", i, v, trees[i].Depth(v), depth[v])
			}
			if trees[i].Contains(v) != (depth[v] >= 0) {
				t.Fatalf("tree %d Contains(%d) = %v, depth %d", i, v, trees[i].Contains(v), depth[v])
			}
		}
		// Parent edges are H-edges and decrease depth by one.
		for v := 0; v < h.N(); v++ {
			p := trees[i].Parent(v)
			if p < 0 {
				continue
			}
			if !h.HasEdge(v, p) || trees[i].Depth(v) != trees[i].Depth(p)+1 {
				t.Fatalf("tree %d bad parent edge %d->%d", i, v, p)
			}
		}
		if trees[i].Len() != len(trees[i].Vertices) {
			t.Fatalf("tree %d Len %d != %d members", i, trees[i].Len(), len(trees[i].Vertices))
		}
	}
}

func TestBFSForestRejectsOverlap(t *testing.T) {
	cg := mustCG(t, graph.Clique(4), graph.ExpandSpec{Topology: graph.TopologySingleton}, 5)
	_, err := cg.BFSForest("bfs", [][]int{{0, 1}, {1, 2}}, []int{0, 1}, 3)
	if err == nil {
		t.Fatal("overlapping subgraphs accepted")
	}
	if _, err := cg.BFSForest("bfs", [][]int{{0, 1}}, []int{2}, 3); err == nil {
		t.Fatal("source outside subgraph accepted")
	}
	if _, err := cg.BFSForest("bfs", [][]int{{0}}, []int{0, 1}, 3); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestBFSForestRespectsDepthBudget(t *testing.T) {
	cg := mustCG(t, graph.Path(6), graph.ExpandSpec{Topology: graph.TopologySingleton}, 5)
	all := []int{0, 1, 2, 3, 4, 5}
	trees, err := cg.BFSForest("bfs", [][]int{all}, []int{0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if trees[0].Depth(2) != 2 || trees[0].Depth(3) != -1 {
		t.Fatalf("depth budget ignored: depth(2)=%d depth(3)=%d", trees[0].Depth(2), trees[0].Depth(3))
	}
}

func TestPrefixSumsMatchSequential(t *testing.T) {
	cg := mustCG(t, graph.Path(7), graph.ExpandSpec{Topology: graph.TopologySingleton}, 5)
	all := []int{0, 1, 2, 3, 4, 5, 6}
	trees, err := cg.BFSForest("bfs", [][]int{all}, []int{0}, 7)
	if err != nil {
		t.Fatal(err)
	}
	x := map[int]int64{1: 10, 3: 20, 5: 30, 6: 40}
	sums, err := cg.PrefixSums("ps", trees, []map[int]int64{x})
	if err != nil {
		t.Fatal(err)
	}
	// Path rooted at 0: preorder is 0,1,...,6; members in order 1,3,5,6.
	want := map[int]int64{1: 0, 3: 10, 5: 30, 6: 60}
	for v, w := range want {
		if sums[0][v] != w {
			t.Fatalf("prefix[%d] = %d, want %d", v, sums[0][v], w)
		}
	}
	if _, ok := sums[0][2]; ok {
		t.Fatal("non-member got a prefix sum")
	}
}

func TestPrefixSumsLengthMismatch(t *testing.T) {
	cg := mustCG(t, graph.Path(3), graph.ExpandSpec{Topology: graph.TopologySingleton}, 5)
	trees, err := cg.BFSForest("bfs", [][]int{{0, 1, 2}}, []int{0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cg.PrefixSums("ps", trees, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestEnumerateAssignsDenseRanks(t *testing.T) {
	cg := mustCG(t, graph.Clique(6), graph.ExpandSpec{Topology: graph.TopologySingleton}, 5)
	all := []int{0, 1, 2, 3, 4, 5}
	trees, err := cg.BFSForest("bfs", [][]int{all}, []int{0}, 6)
	if err != nil {
		t.Fatal(err)
	}
	pred := func(v int) bool { return v%2 == 1 } // members 1,3,5
	rank, counts, err := cg.Enumerate("enum", trees, pred)
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 3 {
		t.Fatalf("count = %d, want 3", counts[0])
	}
	seen := map[int]bool{}
	for v := 0; v < 6; v++ {
		if pred(v) {
			if rank[v] < 1 || rank[v] > 3 || seen[rank[v]] {
				t.Fatalf("bad rank %d for %d", rank[v], v)
			}
			seen[rank[v]] = true
		} else if rank[v] != 0 {
			t.Fatalf("non-member %d has rank %d", v, rank[v])
		}
	}
}

func TestBroadcastAndAggregateMachineLevel(t *testing.T) {
	cg := mustCG(t, graph.Cycle(4), graph.ExpandSpec{Topology: graph.TopologyTree, MachinesPerCluster: 6}, 11)
	vals, err := cg.BroadcastFromLeader("b", 16, func(v int) uint64 { return uint64(100 + v) })
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < cg.G.N(); m++ {
		if vals[m] != uint64(100+cg.ClusterOf[m]) {
			t.Fatalf("machine %d got %d, want %d", m, vals[m], 100+cg.ClusterOf[m])
		}
	}
	// Aggregate: sum machine indices per cluster.
	sums, err := cg.AggregateToLeader("a", 16, func(m int) uint64 { return uint64(m) },
		func(a, b uint64) uint64 { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < cg.H.N(); v++ {
		var want uint64
		for _, m := range cg.Machines[v] {
			want += uint64(m)
		}
		if sums[v] != want {
			t.Fatalf("cluster %d sum = %d, want %d", v, sums[v], want)
		}
	}
}

func TestLeaderRoundComputesNeighborMax(t *testing.T) {
	cg := mustCG(t, graph.Cycle(5), graph.ExpandSpec{Topology: graph.TopologyStar, MachinesPerCluster: 4, RedundantLinks: 3}, 13)
	max := func(a, b uint64) uint64 {
		if a > b {
			return a
		}
		return b
	}
	got, err := cg.LeaderRound("round", 16, func(v int) uint64 { return uint64(v * 7) }, 0, max)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 5; v++ {
		var want uint64
		for _, u := range cg.H.Neighbors(v) {
			want = max(want, uint64(u*7))
		}
		if got[v] != want {
			t.Fatalf("LeaderRound[%d] = %d, want %d (redundant links must not corrupt idempotent aggregation)", v, got[v], want)
		}
	}
}

func TestIDBits(t *testing.T) {
	cg := mustCG(t, graph.Path(3), graph.ExpandSpec{Topology: graph.TopologySingleton}, 5)
	if cg.IDBits() < 2 {
		t.Fatalf("IDBits = %d", cg.IDBits())
	}
}

func TestWithCostIsolatesCharges(t *testing.T) {
	cg := mustCG(t, graph.Path(3), graph.ExpandSpec{Topology: graph.TopologySingleton}, 3)
	scratch, err := network.NewCostModel(64)
	if err != nil {
		t.Fatal(err)
	}
	sub := cg.WithCost(scratch)
	sub.ChargeHRounds("sub", 2, 8)
	if cg.Cost().Rounds() != 0 {
		t.Fatalf("main model charged %d rounds via WithCost copy", cg.Cost().Rounds())
	}
	if scratch.Rounds() == 0 {
		t.Fatal("scratch model not charged")
	}
	// Structure is shared.
	if sub.H != cg.H || sub.Dilation != cg.Dilation {
		t.Fatal("WithCost copy lost structure")
	}
}

func TestNewAbstract(t *testing.T) {
	h := graph.Cycle(5)
	g := graph.Path(8)
	cost, err := network.NewCostModel(32)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := NewAbstract(h, g, 2, cost)
	if err != nil {
		t.Fatal(err)
	}
	if cg.HopsPerRound() != 5 {
		t.Fatalf("HopsPerRound = %d, want 5", cg.HopsPerRound())
	}
	// Vertex-level primitives work without machine structure.
	vals := CollectNeighbors(cg, "x", 8,
		func(v int) int { return 0 },
		func(v int) int { return 1 },
		func(v int, acc int, u int, uval int) int { return acc + uval })
	for v, s := range vals {
		if s != 2 {
			t.Fatalf("cycle vertex %d sum = %d, want 2", v, s)
		}
	}
	if _, err := NewAbstract(h, g, -1, cost); err == nil {
		t.Fatal("negative dilation accepted")
	}
	if _, err := NewAbstract(h, g, 1, nil); err == nil {
		t.Fatal("nil cost accepted")
	}
}
