package cluster

import "fmt"

// The operations in this file execute at machine granularity: values travel
// along actual support-tree links level by level. They back the vertex-level
// primitives with a checkable machine-level semantics and are exercised
// directly by the CONGEST example and the tests.

// BroadcastFromLeader floods one value from each cluster's leader down its
// support tree and returns the value received per machine. Cost: Dilation
// H-hops with payloadBits per tree link.
func (cg *CG) BroadcastFromLeader(phase string, payloadBits int, leaderValue func(v int) uint64) ([]uint64, error) {
	got := make([]uint64, cg.G.N())
	have := make([]bool, cg.G.N())
	for v := 0; v < cg.H.N(); v++ {
		l := cg.Leader[v]
		got[l] = leaderValue(v)
		have[l] = true
	}
	// Level-by-level flood: a machine at depth k hears in hop k.
	for hop := 1; hop <= cg.Dilation; hop++ {
		for m := 0; m < cg.G.N(); m++ {
			if cg.TreeDepth[m] != hop {
				continue
			}
			p := cg.TreeParent[m]
			if p < 0 || !have[p] {
				return nil, fmt.Errorf("cluster: machine %d at depth %d has no informed parent", m, hop)
			}
			got[m] = got[p]
			have[m] = true
		}
	}
	for m := 0; m < cg.G.N(); m++ {
		if !have[m] {
			return nil, fmt.Errorf("cluster: machine %d never informed", m)
		}
	}
	hops := cg.Dilation
	if hops < 1 {
		hops = 1
	}
	cg.cost.Charge(phase, payloadBits, hops)
	return got, nil
}

// AggregateToLeader folds one value per machine up the support trees with a
// commutative, associative combine, returning the aggregate at each cluster's
// leader. Per-link traffic stays at payloadBits because combine merges
// values (aggregation, not concatenation). Cost: Dilation hops.
func (cg *CG) AggregateToLeader(phase string, payloadBits int,
	machineValue func(m int) uint64,
	combine func(a, b uint64) uint64,
) ([]uint64, error) {
	acc := make([]uint64, cg.G.N())
	for m := 0; m < cg.G.N(); m++ {
		acc[m] = machineValue(m)
	}
	// Deepest levels first: each machine pushes its accumulated value to
	// its parent.
	for hop := cg.Dilation; hop >= 1; hop-- {
		for m := 0; m < cg.G.N(); m++ {
			if cg.TreeDepth[m] != hop {
				continue
			}
			p := cg.TreeParent[m]
			if p < 0 {
				return nil, fmt.Errorf("cluster: machine %d at depth %d has no parent", m, hop)
			}
			acc[p] = combine(acc[p], acc[m])
		}
	}
	out := make([]uint64, cg.H.N())
	for v := 0; v < cg.H.N(); v++ {
		out[v] = acc[cg.Leader[v]]
	}
	hops := cg.Dilation
	if hops < 1 {
		hops = 1
	}
	cg.cost.Charge(phase, payloadBits, hops)
	return out, nil
}

// LeaderRound is the paper's canonical H-round at machine level: broadcast a
// leader value down the trees, let boundary machines exchange with adjacent
// clusters over inter-cluster links, and aggregate the echoes back to the
// leaders. The exchange applies combine over the neighbor-cluster values
// heard on incident inter-cluster links (double hearing the same neighbor is
// harmless exactly when combine is idempotent — the aggregation-safety
// condition of Section 1.1).
func (cg *CG) LeaderRound(phase string, payloadBits int,
	leaderValue func(v int) uint64,
	identity uint64,
	combine func(a, b uint64) uint64,
) ([]uint64, error) {
	down, err := cg.BroadcastFromLeader(phase+"/bcast", payloadBits, leaderValue)
	if err != nil {
		return nil, err
	}
	// Inter-cluster exchange: each machine hears the values of adjacent
	// machines in other clusters. One G-round.
	heard := make([]uint64, cg.G.N())
	for m := range heard {
		heard[m] = identity
	}
	for m := 0; m < cg.G.N(); m++ {
		for _, nb := range cg.G.Neighbors(m) {
			if cg.ClusterOf[nb] != cg.ClusterOf[m] {
				heard[m] = combine(heard[m], down[nb])
			}
		}
	}
	cg.cost.Charge(phase+"/exchange", payloadBits, 1)
	return cg.AggregateToLeader(phase+"/aggregate", payloadBits,
		func(m int) uint64 { return heard[m] }, combine)
}
