// Package cluster implements the cluster-graph layer of the paper's model
// (Definition 3.1 and Section 3.2): a graph H whose vertices are disjoint
// connected clusters of machines in a communication network G.
//
// Each cluster elects a leader and computes a support tree spanning its
// machines. A round on H consists of a broadcast down the support trees, a
// computation on inter-cluster links, and an aggregation back up — costing
// O(d) rounds on G, where d is the dilation (maximum support-tree diameter).
//
// Algorithm code interacts with the layer through primitives that both
// compute the information a vertex legitimately learns and charge the
// corresponding rounds and bandwidth to a network.CostModel:
//
//   - CollectNeighbors: one H-round of per-neighbor payload exchange,
//   - BFSForest (Lemma 3.2): parallel BFS in vertex-disjoint subgraphs,
//   - PrefixSums (Lemma 3.3): ordered-tree prefix sums,
//   - Broadcast/Aggregate helpers for within-cluster dissemination.
package cluster

import (
	"fmt"

	"clustercolor/internal/graph"
	"clustercolor/internal/network"
)

// CG is a cluster graph: H on top of a communication network G.
type CG struct {
	// H is the graph to color (vertices = clusters).
	H *graph.Graph
	// G is the communication network (vertices = machines).
	G *graph.Graph
	// ClusterOf maps machines to H-vertices.
	ClusterOf []int
	// Machines maps H-vertices to their machines.
	Machines [][]int32
	// Leader is the support-tree root per H-vertex.
	Leader []int32
	// TreeParent maps each machine to its parent machine in its cluster's
	// support tree (-1 for leaders).
	TreeParent []int32
	// TreeDepth maps each machine to its depth in its support tree.
	TreeDepth []int
	// Dilation is the maximum support-tree height over all clusters; the
	// paper's d is within a factor two of this.
	Dilation int

	cost *network.CostModel
	// machineN is the machine count identifier widths are computed from. It
	// is recorded at construction so cost accounting (IDBits) works on
	// headless views where G itself is nil.
	machineN int
}

// New builds the cluster layer from an expansion of H. Every cluster must be
// connected inside G (Definition 3.1 requires it). The cost model accumulates
// rounds for all subsequent primitives.
func New(h *graph.Graph, exp *graph.Expansion, cost *network.CostModel) (*CG, error) {
	if cost == nil {
		return nil, fmt.Errorf("cluster: nil cost model")
	}
	if len(exp.Machines) != h.N() {
		return nil, fmt.Errorf("cluster: expansion has %d clusters for %d vertices", len(exp.Machines), h.N())
	}
	cg := &CG{
		H:          h,
		G:          exp.G,
		ClusterOf:  exp.ClusterOf,
		Machines:   exp.Machines,
		Leader:     make([]int32, h.N()),
		TreeParent: make([]int32, exp.G.N()),
		TreeDepth:  make([]int, exp.G.N()),
		cost:       cost,
		machineN:   exp.G.N(),
	}
	for i := range cg.TreeParent {
		cg.TreeParent[i] = -1
		cg.TreeDepth[i] = -1
	}
	// Support trees for all clusters are built by one scratch BFS: clusters
	// are vertex-disjoint, so a single depth array (-1 = unvisited) and a
	// reused queue serve every cluster, making construction O(|G| + |E(G)|)
	// total instead of O(n) fresh arrays per cluster.
	var queue []int32
	for v := 0; v < h.N(); v++ {
		ms := exp.Machines[v]
		if len(ms) == 0 {
			return nil, fmt.Errorf("cluster: vertex %d has no machines", v)
		}
		leader := ms[0]
		for _, m := range ms {
			if m < leader {
				leader = m
			}
		}
		cg.Leader[v] = leader
		cg.TreeDepth[leader] = 0
		queue = append(queue[:0], leader)
		height := 0
		for head := 0; head < len(queue); head++ {
			m := queue[head]
			for _, w := range exp.G.Neighbors(int(m)) {
				if cg.TreeDepth[w] >= 0 || exp.ClusterOf[w] != v {
					continue
				}
				cg.TreeDepth[w] = cg.TreeDepth[m] + 1
				cg.TreeParent[w] = m
				if cg.TreeDepth[w] > height {
					height = cg.TreeDepth[w]
				}
				queue = append(queue, w)
			}
		}
		for _, m := range ms {
			if cg.TreeDepth[m] < 0 {
				return nil, fmt.Errorf("cluster: vertex %d disconnected at machine %d", v, m)
			}
		}
		if height > cg.Dilation {
			cg.Dilation = height
		}
	}
	return cg, nil
}

// NewAbstract builds a cluster-graph view whose machine-level structure is
// accounted entirely through the cost model: vertex-level primitives work
// (they need only H, the dilation, and the charger), while machine-level
// tree operations are unavailable. Virtual graphs with overlapping supports
// (Appendix A) use this view with a congestion-multiplied cost model.
func NewAbstract(h *graph.Graph, g *graph.Graph, dilation int, cost *network.CostModel) (*CG, error) {
	if cost == nil {
		return nil, fmt.Errorf("cluster: nil cost model")
	}
	if dilation < 0 {
		return nil, fmt.Errorf("cluster: negative dilation %d", dilation)
	}
	return &CG{H: h, G: g, Dilation: dilation, cost: cost, machineN: g.N()}, nil
}

// NewHeadless builds a cluster-graph view with no materialized graphs at
// all: only the dilation and the machine count for identifier widths, so
// round and payload accounting (ChargeHRounds, IDBits) work while every
// primitive that walks H or G is unavailable. Streaming partitioned runs —
// where the decomposition executes over shard slices and the global graph
// is never built — use this view with machines = n, the singleton-expansion
// topology, making their charges byte-identical to a materialized
// singleton-expansion run.
func NewHeadless(machines, dilation int, cost *network.CostModel) (*CG, error) {
	if cost == nil {
		return nil, fmt.Errorf("cluster: nil cost model")
	}
	if dilation < 0 {
		return nil, fmt.Errorf("cluster: negative dilation %d", dilation)
	}
	if machines < 0 {
		return nil, fmt.Errorf("cluster: negative machine count %d", machines)
	}
	return &CG{Dilation: dilation, cost: cost, machineN: machines}, nil
}

// Cost exposes the underlying cost model.
func (cg *CG) Cost() *network.CostModel { return cg.cost }

// WithCost returns a shallow copy of the cluster graph bound to a different
// cost model. Stages that run in parallel over vertex-disjoint subgraphs
// execute against per-subgraph scratch models, which the caller then merges
// with CostModel.AbsorbParallel so concurrent work charges max rounds, not
// the sum.
func (cg *CG) WithCost(cost *network.CostModel) *CG {
	out := *cg
	out.cost = cost
	return &out
}

// HopsPerRound returns the G-rounds of a single H-round: broadcast down the
// support trees, one inter-cluster link step, aggregation back up.
func (cg *CG) HopsPerRound() int { return 2*cg.Dilation + 1 }

// ChargeHRounds charges k cluster-graph rounds with the given per-link
// payload to the cost model and returns the G-rounds consumed.
func (cg *CG) ChargeHRounds(phase string, k, payloadBits int) int {
	total := 0
	for i := 0; i < k; i++ {
		total += cg.cost.Charge(phase, payloadBits, cg.HopsPerRound())
	}
	return total
}

// NeighborScratch holds the announcement and accumulator buffers of a
// CollectNeighbors exchange, so callers that run an exchange per iteration
// reuse two n-sized slices instead of allocating them every round. A scratch
// belongs to one exchange at a time; the slice the With variants return
// aliases it and is valid until the next exchange through the same scratch.
// The zero value is ready to use.
type NeighborScratch[T any] struct {
	vals []T
	out  []T
}

// scratchBuf resizes buf to n, reusing the backing when possible. When clear
// is set, reused cells are reset to the zero value (fresh allocations
// already are) — the subset exchange relies on untouched cells reading as
// zero.
func scratchBuf[T any](buf []T, n int, clear bool) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	buf = buf[:n]
	if clear {
		var zero T
		for i := range buf {
			buf[i] = zero
		}
	}
	return buf
}

// CollectNeighbors performs one H-round: every vertex v announces
// value(v), every neighbor aggregates the announcements with fold, starting
// from zero(v). payloadBits is the announced message size; the exchange is
// charged as one H-round. Aggregation along support trees combines values,
// so the per-link bits stay at payloadBits (the paper's central point —
// aggregation, not concatenation).
func CollectNeighbors[T any](cg *CG, phase string, payloadBits int,
	zero func(v int) T,
	value func(v int) T,
	fold func(v int, acc T, u int, uval T) T,
) []T {
	return CollectNeighborsWith(cg, phase, payloadBits, &NeighborScratch[T]{}, zero, value, fold)
}

// CollectNeighborsWith is CollectNeighbors with caller-owned scratch: hot
// paths that exchange every iteration hold one NeighborScratch and stop
// allocating per round. The returned slice aliases sc.
func CollectNeighborsWith[T any](cg *CG, phase string, payloadBits int, sc *NeighborScratch[T],
	zero func(v int) T,
	value func(v int) T,
	fold func(v int, acc T, u int, uval T) T,
) []T {
	cg.ChargeHRounds(phase, 1, payloadBits)
	n := cg.H.N()
	// Values are computed before folding so that the exchange is
	// simultaneous (round-based), not sequential. Every cell is written, so
	// stale scratch contents never leak through.
	sc.vals = scratchBuf(sc.vals, n, false)
	sc.out = scratchBuf(sc.out, n, false)
	vals, out := sc.vals, sc.out
	for v := 0; v < n; v++ {
		vals[v] = value(v)
	}
	for v := 0; v < n; v++ {
		acc := zero(v)
		for _, u := range cg.H.Neighbors(v) {
			acc = fold(v, acc, int(u), vals[u])
		}
		out[v] = acc
	}
	return out
}

// CollectNeighborsSubset is CollectNeighbors restricted to an active vertex
// set: only active vertices announce, and only active vertices listen.
func CollectNeighborsSubset[T any](cg *CG, phase string, payloadBits int, active []bool,
	zero func(v int) T,
	value func(v int) T,
	fold func(v int, acc T, u int, uval T) T,
) []T {
	return CollectNeighborsSubsetWith(cg, phase, payloadBits, active, &NeighborScratch[T]{}, zero, value, fold)
}

// CollectNeighborsSubsetWith is CollectNeighborsSubset with caller-owned
// scratch (see CollectNeighborsWith). Inactive vertices read as the zero
// value, exactly as with fresh slices.
func CollectNeighborsSubsetWith[T any](cg *CG, phase string, payloadBits int, active []bool, sc *NeighborScratch[T],
	zero func(v int) T,
	value func(v int) T,
	fold func(v int, acc T, u int, uval T) T,
) []T {
	cg.ChargeHRounds(phase, 1, payloadBits)
	n := cg.H.N()
	sc.vals = scratchBuf(sc.vals, n, true)
	sc.out = scratchBuf(sc.out, n, true)
	vals, out := sc.vals, sc.out
	for v := 0; v < n; v++ {
		if active[v] {
			vals[v] = value(v)
		}
	}
	for v := 0; v < n; v++ {
		if !active[v] {
			continue
		}
		acc := zero(v)
		for _, u := range cg.H.Neighbors(v) {
			if active[u] {
				acc = fold(v, acc, int(u), vals[u])
			}
		}
		out[v] = acc
	}
	return out
}
