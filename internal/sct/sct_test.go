package sct

import (
	"testing"

	"clustercolor/internal/cluster"
	"clustercolor/internal/coloring"
	"clustercolor/internal/graph"
	"clustercolor/internal/network"
)

func testCG(t *testing.T, h *graph.Graph) *cluster.CG {
	t.Helper()
	rng := graph.NewRand(2)
	exp, err := graph.Expand(h, graph.ExpandSpec{Topology: graph.TopologyStar, MachinesPerCluster: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := network.NewCostModel(64)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := cluster.New(h, exp, cost)
	if err != nil {
		t.Fatal(err)
	}
	return cg
}

func irange(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

func TestRunColorsIsolatedCliqueCompletely(t *testing.T) {
	// A standalone clique with |S| = |K| ≤ |L(K)|: distinct palette colors
	// mean zero conflicts, so everyone gets colored in one shot.
	h := graph.Clique(40)
	cg := testCG(t, h)
	col := coloring.New(h.N(), h.MaxDegree())
	res, err := Run(cg, col, Options{
		Phase:        "sct",
		Members:      irange(0, 40),
		Participants: irange(0, 40),
	}, graph.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Colored != 40 {
		t.Fatalf("colored %d/40 in isolated clique", res.Colored)
	}
	if err := coloring.VerifyComplete(h, col); err != nil {
		t.Fatal(err)
	}
}

func TestRunLeavesOnlyExternalConflicts(t *testing.T) {
	// Two cliques joined by external edges (the Lemma 4.13 regime): after
	// one trial per clique, the uncolored count per clique is bounded by
	// the external degree scale, not the clique size.
	rng := graph.NewRand(5)
	g, blocks, err := graph.PlantedACD(graph.PlantedACDSpec{
		NumCliques:     2,
		CliqueSize:     50,
		ExternalDegree: 3,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cg := testCG(t, g)
	col := coloring.New(g.N(), g.MaxDegree())
	var optsList []Options
	for k := 0; k < 2; k++ {
		var members []int
		for v := 0; v < g.N(); v++ {
			if blocks[v] == k {
				members = append(members, v)
			}
		}
		optsList = append(optsList, Options{
			Phase:        "sct",
			Members:      members,
			Participants: members,
		})
	}
	results, err := RunAll(cg, col, optsList, graph.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := coloring.VerifyProper(g, col); err != nil {
		t.Fatal(err)
	}
	for k, res := range results {
		uncolored := res.Tried - res.Colored
		// Average external degree ≈ 6; Lemma 4.13 bounds leftovers by
		// O(e_K). 25 is a generous constant for 50-vertex cliques.
		if uncolored > 25 {
			t.Fatalf("clique %d left %d/50 uncolored, want O(e_K)", k, uncolored)
		}
	}
}

func TestRunRespectsReservedColors(t *testing.T) {
	h := graph.Clique(20)
	cg := testCG(t, h)
	col := coloring.New(h.N(), h.MaxDegree()) // colors 1..20
	res, err := Run(cg, col, Options{
		Phase:        "sct",
		Members:      irange(0, 20),
		Participants: irange(0, 15),
		ReservedMax:  5,
	}, graph.NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	if res.Colored != 15 {
		t.Fatalf("colored %d/15", res.Colored)
	}
	for v := 0; v < 20; v++ {
		if c := col.Get(v); c != coloring.None && c <= 5 {
			t.Fatalf("vertex %d got reserved color %d", v, c)
		}
	}
}

func TestRunRejectsTooManyParticipants(t *testing.T) {
	h := graph.Clique(10)
	cg := testCG(t, h)
	col := coloring.New(h.N(), h.MaxDegree()) // 10 colors
	_, err := Run(cg, col, Options{
		Phase:        "sct",
		Members:      irange(0, 10),
		Participants: irange(0, 10),
		ReservedMax:  5, // only 5 non-reserved colors for 10 participants
	}, graph.NewRand(11))
	if err == nil {
		t.Fatal("participant overflow accepted")
	}
}

func TestRunRejectsColoredParticipant(t *testing.T) {
	h := graph.Clique(5)
	cg := testCG(t, h)
	col := coloring.New(h.N(), h.MaxDegree())
	if err := col.Set(2, 1); err != nil {
		t.Fatal(err)
	}
	_, err := Run(cg, col, Options{
		Phase:        "sct",
		Members:      irange(0, 5),
		Participants: irange(0, 5),
	}, graph.NewRand(13))
	if err == nil {
		t.Fatal("colored participant accepted")
	}
}

func TestRunSkipsUsedPaletteColors(t *testing.T) {
	// Pre-color some members; the trial must only assign palette colors,
	// so the result stays proper.
	h := graph.Clique(30)
	cg := testCG(t, h)
	col := coloring.New(h.N(), h.MaxDegree())
	for v := 0; v < 10; v++ {
		if err := col.Set(v, int32(v+1)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Run(cg, col, Options{
		Phase:        "sct",
		Members:      irange(0, 30),
		Participants: irange(10, 30),
	}, graph.NewRand(15))
	if err != nil {
		t.Fatal(err)
	}
	if res.Colored != 20 {
		t.Fatalf("colored %d/20", res.Colored)
	}
	if err := coloring.VerifyComplete(h, col); err != nil {
		t.Fatal(err)
	}
}

func TestRunChargesRounds(t *testing.T) {
	h := graph.Clique(10)
	cg := testCG(t, h)
	col := coloring.New(h.N(), h.MaxDegree())
	before := cg.Cost().Rounds()
	if _, err := Run(cg, col, Options{Phase: "sct", Members: irange(0, 10), Participants: irange(0, 5)}, graph.NewRand(17)); err != nil {
		t.Fatal(err)
	}
	if cg.Cost().Rounds() <= before {
		t.Fatal("no rounds charged")
	}
}
