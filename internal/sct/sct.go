// Package sct implements the synchronized color trial (Lemma 4.13, Appendix
// D.9): inside an almost-clique K, a set S of uncolored vertices is ordered
// 1..|S| (prefix sums on a BFS tree spanning K, Lemma 3.3), a pseudorandom
// permutation π — describable by an O(log n)-bit seed — is broadcast, and
// the π(i)-th vertex of S tries the i-th color of the clique palette beyond
// the reserved prefix. Because every vertex of S tries a distinct in-clique
// color, the only conflicts are with external neighbors, and w.h.p. at most
// O(max{e_K, ℓ}) vertices remain uncolored.
package sct

import (
	"fmt"
	"math/rand/v2"

	"clustercolor/internal/cluster"
	"clustercolor/internal/coloring"
	"clustercolor/internal/prng"
)

// Options configures one synchronized color trial in one almost-clique.
type Options struct {
	// Phase labels the cost entries.
	Phase string
	// Members is the almost-clique K.
	Members []int
	// Participants is S ⊆ K, the uncolored vertices taking part. Must
	// satisfy |S| ≤ |L(K)| − reserved (Lemma 4.13's precondition); excess
	// participants are rejected.
	Participants []int
	// ReservedMax: colors 1..ReservedMax are not used by the trial.
	ReservedMax int32
}

// Result reports a trial's outcome for one clique.
type Result struct {
	// Tried is the number of participants that received a candidate color.
	Tried int
	// Colored is the number that kept it.
	Colored int
}

// Run performs the synchronized color trial in one clique. Conflict
// detection with external neighbors is one O(log Δ)-bit H-round.
func Run(cg *cluster.CG, col *coloring.Coloring, opts Options, rng *rand.Rand) (*Result, error) {
	cp := coloring.BuildCliquePalette(cg, col, opts.Members)
	// Palette beyond the reserved prefix.
	free := make([]int32, 0, cp.FreeCount())
	for _, c := range cp.FreeView() {
		if c > opts.ReservedMax {
			free = append(free, c)
		}
	}
	if len(opts.Participants) > len(free) {
		return nil, fmt.Errorf("sct: %d participants but only %d non-reserved palette colors (Lemma 4.13 precondition)",
			len(opts.Participants), len(free))
	}
	for _, v := range opts.Participants {
		if col.IsColored(v) {
			return nil, fmt.Errorf("sct: participant %d already colored", v)
		}
	}
	// Order S by prefix sums over the clique tree (Lemma 3.3), then apply
	// the pseudorandom permutation sampled by the clique leader.
	cg.ChargeHRounds(opts.Phase+"/enumerate", 2, 2*cg.IDBits())
	seed := rng.Uint64()
	perm := prng.Permutation(len(opts.Participants), seed)
	cg.ChargeHRounds(opts.Phase+"/perm-seed", 1, 64)
	// Assignment: participant at position i tries free[perm[i]].
	candidate := make(map[int]int32, len(opts.Participants))
	for i, v := range opts.Participants {
		candidate[v] = free[perm[i]]
	}
	// One H-round of conflict detection with external neighbors: a
	// candidate survives unless an external neighbor holds it or also
	// tries it with a smaller index (in-clique candidates are distinct by
	// construction).
	cg.ChargeHRounds(opts.Phase+"/conflict", 1, 16)
	res := &Result{Tried: len(opts.Participants)}
	for _, v := range opts.Participants {
		c := candidate[v]
		ok := true
		for _, u := range cg.H.Neighbors(v) {
			w := int(u)
			if col.Get(w) == c {
				ok = false
				break
			}
			if cw, trying := candidate[w]; trying && cw == c && w < v {
				ok = false
				break
			}
		}
		if ok {
			if err := col.Set(v, c); err != nil {
				return nil, fmt.Errorf("sct: adopting color: %w", err)
			}
			res.Colored++
		}
	}
	return res, nil
}

// RunAll executes trials in many cliques; the cliques are vertex-disjoint so
// the trials run in parallel (one shared round structure). It returns
// per-clique results.
func RunAll(cg *cluster.CG, col *coloring.Coloring, optsList []Options, rng *rand.Rand) ([]*Result, error) {
	out := make([]*Result, len(optsList))
	for i, opts := range optsList {
		res, err := Run(cg, col, opts, rng)
		if err != nil {
			return nil, fmt.Errorf("sct: clique %d: %w", i, err)
		}
		out[i] = res
	}
	return out, nil
}
