package virtual

import (
	"testing"

	"clustercolor/internal/cluster"
	"clustercolor/internal/coloring"
	"clustercolor/internal/core"
	"clustercolor/internal/graph"
	"clustercolor/internal/network"
)

func TestNewValidation(t *testing.T) {
	g := graph.Path(4)
	h := graph.Path(2)
	if _, err := New(h, g, [][]int32{{0}}); err == nil {
		t.Fatal("support count mismatch accepted")
	}
	if _, err := New(h, g, [][]int32{{}, {1}}); err == nil {
		t.Fatal("empty support accepted")
	}
	if _, err := New(h, g, [][]int32{{0, 9}, {1}}); err == nil {
		t.Fatal("out-of-range machine accepted")
	}
	// Disconnected support {0,3} in a path 0-1-2-3 without 1,2.
	if _, err := New(h, g, [][]int32{{0, 3}, {1}}); err == nil {
		t.Fatal("disconnected support accepted")
	}
	// H-edge without touching supports: supports {0} and {3} are two hops
	// apart.
	if _, err := New(h, g, [][]int32{{0}, {3}}); err == nil {
		t.Fatal("non-touching supports accepted")
	}
}

func TestNewComputesCongestionAndDilation(t *testing.T) {
	// Path 0-1-2 as G; two vertices with supports {0,1,2} and {1,2}: the
	// link {1,2} carries both trees → congestion 2; dilation = 2 (the
	// height of the first tree rooted at 0).
	g := graph.Path(3)
	h := graph.Path(2)
	vg, err := New(h, g, [][]int32{{0, 1, 2}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if vg.Congestion != 2 {
		t.Fatalf("congestion = %d, want 2", vg.Congestion)
	}
	if vg.Dilation != 2 {
		t.Fatalf("dilation = %d, want 2", vg.Dilation)
	}
}

func TestDistance2Shape(t *testing.T) {
	rng := graph.NewRand(3)
	g := graph.MustGNP(60, 0.06, rng)
	vg, err := Distance2(g)
	if err != nil {
		t.Fatal(err)
	}
	// Corollary 1.3's constants: star supports give congestion exactly 2
	// (each link serves its two endpoint stars) and dilation ≤ 2.
	if vg.Congestion != 2 {
		t.Fatalf("congestion = %d, want 2", vg.Congestion)
	}
	if vg.Dilation > 2 {
		t.Fatalf("dilation = %d, want ≤ 2", vg.Dilation)
	}
	// H is the square.
	want, err := g.Power(2)
	if err != nil {
		t.Fatal(err)
	}
	if vg.H.M() != want.M() {
		t.Fatalf("H has %d edges, square has %d", vg.H.M(), want.M())
	}
}

func TestDistance2EndToEndColoring(t *testing.T) {
	rng := graph.NewRand(5)
	g := graph.MustGNP(120, 0.035, rng)
	vg, err := Distance2(g)
	if err != nil {
		t.Fatal(err)
	}
	cg, cost, err := vg.ClusterView(48)
	if err != nil {
		t.Fatal(err)
	}
	p := core.DefaultParams(vg.H.N())
	p.Seed = 7
	col, stats, err := core.Color(cg, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := coloring.VerifyComplete(vg.H, col); err != nil {
		t.Fatal(err)
	}
	// Distance-2 properness on the base graph.
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			if col.Get(v) == col.Get(int(u)) {
				t.Fatalf("distance-1 conflict %d,%d", v, u)
			}
		}
	}
	if stats.Rounds != cost.Rounds() {
		t.Fatalf("stats rounds %d != cost rounds %d", stats.Rounds, cost.Rounds())
	}
}

func TestCongestionMultiplierDoublesRounds(t *testing.T) {
	// The same H colored through a congestion-2 virtual view must charge
	// exactly twice the rounds of a congestion-1 run with equal structure.
	rng := graph.NewRand(9)
	g := graph.MustGNP(80, 0.05, rng)
	vg, err := Distance2(g)
	if err != nil {
		t.Fatal(err)
	}
	cgVirtual, _, err := vg.ClusterView(48)
	if err != nil {
		t.Fatal(err)
	}
	p := core.DefaultParams(vg.H.N())
	p.Seed = 11
	_, statsVirtual, err := core.Color(cgVirtual, p)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: same abstract view with multiplier 1.
	cost1, err := newCost(48)
	if err != nil {
		t.Fatal(err)
	}
	cgRef, err := newAbstract(vg, cost1)
	if err != nil {
		t.Fatal(err)
	}
	_, statsRef, err := core.Color(cgRef, p)
	if err != nil {
		t.Fatal(err)
	}
	if statsVirtual.Rounds != 2*statsRef.Rounds {
		t.Fatalf("congestion-2 rounds %d != 2× reference %d", statsVirtual.Rounds, statsRef.Rounds)
	}
}

// test helpers bridging to the abstract constructors.
func newCost(bw int) (*network.CostModel, error) { return network.NewCostModel(bw) }

func newAbstract(vg *Graph, cost *network.CostModel) (*cluster.CG, error) {
	return cluster.NewAbstract(vg.H, vg.G, vg.Dilation, cost)
}
