// Package virtual implements the paper's Appendix A extension: virtual
// graphs, where the support sets V(v) ⊆ V_G of different vertices may
// overlap. Two parameters govern the overhead (Equation 19):
//
//	congestion c = max #support trees sharing a G-link,
//	dilation   d = max support-tree diameter.
//
// Appendix A's translation principle — "everything in this paper
// immediately translates to virtual graphs, with the additional overhead
// factor of the edge congestion" — is realized by running the unchanged
// coloring pipeline against an abstract cluster-graph view whose cost model
// multiplies every charged round by c.
//
// The flagship instance is the distance-2 coloring of Corollary 1.3:
// H = G², V(v) = N_G[v] with a star support tree, giving c = 2 and d = 2.
package virtual

import (
	"fmt"
	"sort"

	"clustercolor/internal/cluster"
	"clustercolor/internal/graph"
	"clustercolor/internal/network"
)

// Graph is a virtual graph: H over G with (possibly overlapping) supports.
type Graph struct {
	// H is the graph to color.
	H *graph.Graph
	// G is the communication network.
	G *graph.Graph
	// Supports maps each H-vertex to its machines; supports may overlap.
	Supports [][]int32
	// TreeEdges lists each vertex's support-tree edges in G.
	TreeEdges [][][2]int32
	// Congestion is c of Equation (19).
	Congestion int
	// Dilation is d of Equation (19) (max support-tree height here).
	Dilation int
}

// New validates a virtual graph: every support must be non-empty and induce
// a connected subgraph of g, adjacent H-vertices must have intersecting or
// adjacent supports, and congestion/dilation are computed from BFS support
// trees.
func New(h, g *graph.Graph, supports [][]int32) (*Graph, error) {
	if len(supports) != h.N() {
		return nil, fmt.Errorf("virtual: %d supports for %d vertices", len(supports), h.N())
	}
	vg := &Graph{
		H:         h,
		G:         g,
		Supports:  supports,
		TreeEdges: make([][][2]int32, h.N()),
	}
	linkUse := make(map[[2]int32]int)
	for v := 0; v < h.N(); v++ {
		sup := supports[v]
		if len(sup) == 0 {
			return nil, fmt.Errorf("virtual: vertex %d has empty support", v)
		}
		inSup := make(map[int]bool, len(sup))
		for _, m := range sup {
			if int(m) < 0 || int(m) >= g.N() {
				return nil, fmt.Errorf("virtual: vertex %d support machine %d out of range", v, m)
			}
			inSup[int(m)] = true
		}
		// The first listed machine roots the support tree, so callers
		// control the tree shape (Distance2 lists v first to obtain the
		// star and hence congestion exactly 2).
		root := int(sup[0])
		depth, parent := g.BFSDepths(root, func(m int) bool { return inSup[m] })
		height := 0
		for _, m := range sup {
			if depth[m] < 0 {
				return nil, fmt.Errorf("virtual: vertex %d support disconnected at machine %d", v, m)
			}
			if depth[m] > height {
				height = depth[m]
			}
			if p := parent[m]; p >= 0 {
				e := linkKey(int(m), p)
				vg.TreeEdges[v] = append(vg.TreeEdges[v], e)
				linkUse[e]++
			}
		}
		if height > vg.Dilation {
			vg.Dilation = height
		}
		sort.Slice(vg.TreeEdges[v], func(i, j int) bool {
			a, b := vg.TreeEdges[v][i], vg.TreeEdges[v][j]
			if a[0] != b[0] {
				return a[0] < b[0]
			}
			return a[1] < b[1]
		})
	}
	vg.Congestion = 1
	for _, c := range linkUse {
		if c > vg.Congestion {
			vg.Congestion = c
		}
	}
	// Adjacency sanity: H-edges need overlapping or adjacent supports.
	for v := 0; v < h.N(); v++ {
		for _, u := range h.Neighbors(v) {
			if int(u) < v {
				continue
			}
			if !supportsTouch(g, supports[v], supports[u]) {
				return nil, fmt.Errorf("virtual: H-edge {%d,%d} without touching supports", v, u)
			}
		}
	}
	return vg, nil
}

func supportsTouch(g *graph.Graph, a, b []int32) bool {
	inB := make(map[int32]bool, len(b))
	for _, m := range b {
		inB[m] = true
	}
	for _, m := range a {
		if inB[m] {
			return true
		}
		for _, nb := range g.Neighbors(int(m)) {
			if inB[nb] {
				return true
			}
		}
	}
	return false
}

func linkKey(a, b int) [2]int32 {
	if a > b {
		a, b = b, a
	}
	return [2]int32{int32(a), int32(b)}
}

// Distance2 builds the Corollary 1.3 virtual graph over g: H = G² with the
// closed neighborhood N[v] as v's support (star support tree ⇒ d ≤ 2, and
// each G-link carries exactly the two stars of its endpoints ⇒ c = 2).
func Distance2(g *graph.Graph) (*Graph, error) {
	h, err := g.Power(2)
	if err != nil {
		return nil, err
	}
	supports := make([][]int32, g.N())
	for v := 0; v < g.N(); v++ {
		sup := make([]int32, 0, g.Degree(v)+1)
		sup = append(sup, int32(v))
		sup = append(sup, g.Neighbors(v)...)
		supports[v] = sup
	}
	return New(h, g, supports)
}

// ClusterView returns the abstract cluster-graph view of the virtual graph,
// with a fresh cost model whose round multiplier is the congestion. Run the
// ordinary coloring pipeline against it; all charged rounds include the
// Appendix A overhead factor automatically.
func (vg *Graph) ClusterView(bandwidthBits int) (*cluster.CG, *network.CostModel, error) {
	cost, err := network.NewCostModel(bandwidthBits)
	if err != nil {
		return nil, nil, err
	}
	if err := cost.SetMultiplier(vg.Congestion); err != nil {
		return nil, nil, err
	}
	cg, err := cluster.NewAbstract(vg.H, vg.G, vg.Dilation, cost)
	if err != nil {
		return nil, nil, err
	}
	return cg, cost, nil
}
