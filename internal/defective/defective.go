// Package defective implements weighted defective coloring (Definition 9.5)
// on cluster graphs, the building block of the Ghaffari–Kuhn small-instance
// machinery (Section 9.4, Lemma 9.6): a q-coloring ψ such that for every
// vertex the weight of its monochromatic edges is at most a δ-fraction of
// its total incident weight.
//
// Weights are per-vertex 2^-b-integral values (Definition 9.3), the form
// Lemma 9.4 aggregates: the defect of v under ψ is
// Σ_{u∈N(v), ψ(u)=ψ(v)} x_u. Each refinement round estimates, for every
// candidate color, the weight of the would-be conflicts with one weighted
// fingerprint wave (Lemma 9.4), and moves each activated vertex to a color
// within a factor two of its minimum — exactly the tolerance Lemma 9.6's
// analysis grants the approximate aggregation.
package defective

import (
	"fmt"
	"math/rand/v2"

	"clustercolor/internal/cluster"
	"clustercolor/internal/fingerprint"
	"clustercolor/internal/graph"
)

// Options configures a defective coloring computation.
type Options struct {
	// Phase labels cost entries.
	Phase string
	// Q is the number of defective color classes (Lemma 9.6: O(1/δ²)).
	Q int
	// B is the integrality exponent: x_u = Weights[u] / 2^B.
	B int
	// Weights are the per-vertex numerators k_u (non-negative).
	Weights []int64
	// Rounds is the number of refinement waves (default 2·log₂ q + 2).
	Rounds int
	// Xi is the fingerprint accuracy for conflict estimation (default 0.25).
	Xi float64
}

// Color computes a weighted defective Q-coloring. The returned slice maps
// each vertex to a class in [0, Q).
func Color(cg *cluster.CG, opts Options, rng *rand.Rand) ([]int, error) {
	n := cg.H.N()
	if opts.Q < 1 {
		return nil, fmt.Errorf("defective: q = %d must be positive", opts.Q)
	}
	if len(opts.Weights) != n {
		return nil, fmt.Errorf("defective: %d weights for %d vertices", len(opts.Weights), n)
	}
	xi := opts.Xi
	if xi <= 0 {
		xi = 0.25
	}
	rounds := opts.Rounds
	if rounds <= 0 {
		rounds = 8
	}
	psi := make([]int, n)
	for v := range psi {
		psi[v] = rng.IntN(opts.Q)
	}
	for r := 0; r < rounds; r++ {
		// One weighted fingerprint wave per class: W_{v,c} = Σ of weights
		// of v's class-c neighbors (Lemma 9.4 with α = "ψ(u)=c").
		conflict := make([][]float64, opts.Q)
		for c := 0; c < opts.Q; c++ {
			est, err := fingerprint.ApproxWeightedSum(cg, opts.Phase+"/estimate", xi, opts.B,
				opts.Weights, func(v, u int) bool { return psi[u] == c }, rng)
			if err != nil {
				return nil, err
			}
			conflict[c] = est
		}
		// Activated vertices move to a near-minimum class; simultaneous
		// moves are handled by the half activation (the standard
		// local-search trick, also used by Lemma 9.6's color reduction).
		next := make([]int, n)
		copy(next, psi)
		for v := 0; v < n; v++ {
			if rng.Float64() >= 0.5 {
				continue
			}
			best, bestW := psi[v], conflict[psi[v]][v]
			for c := 0; c < opts.Q; c++ {
				if conflict[c][v] < bestW/2 { // factor-2 improvement rule
					best, bestW = c, conflict[c][v]
				}
			}
			next[v] = best
		}
		psi = next
		// Class announcements: one O(log q)-bit round.
		cg.ChargeHRounds(opts.Phase+"/announce", 1, 8)
	}
	return psi, nil
}

// RelativeDefect returns max_v defect(v)/total(v) under ψ: the δ the
// coloring actually achieves (0 when no vertex has incident weight).
func RelativeDefect(h *graph.Graph, psi []int, weights []int64) float64 {
	worst := 0.0
	for v := 0; v < h.N(); v++ {
		var mono, total int64
		for _, u := range h.Neighbors(v) {
			total += weights[u]
			if psi[int(u)] == psi[v] {
				mono += weights[u]
			}
		}
		if total == 0 {
			continue
		}
		if frac := float64(mono) / float64(total); frac > worst {
			worst = frac
		}
	}
	return worst
}

// AverageDefect returns the weight-averaged defect fraction, the quantity
// Lemma 9.6's cost function bounds.
func AverageDefect(h *graph.Graph, psi []int, weights []int64) float64 {
	var mono, total int64
	for v := 0; v < h.N(); v++ {
		for _, u := range h.Neighbors(v) {
			total += weights[u]
			if psi[int(u)] == psi[v] {
				mono += weights[u]
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(mono) / float64(total)
}
