package defective

import (
	"testing"

	"clustercolor/internal/cluster"
	"clustercolor/internal/graph"
	"clustercolor/internal/network"
)

func testCG(t *testing.T, h *graph.Graph, seed uint64) *cluster.CG {
	t.Helper()
	rng := graph.NewRand(seed)
	exp, err := graph.Expand(h, graph.ExpandSpec{Topology: graph.TopologySingleton}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := network.NewCostModel(64)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := cluster.New(h, exp, cost)
	if err != nil {
		t.Fatal(err)
	}
	return cg
}

func unitWeights(n int) []int64 {
	w := make([]int64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

func TestColorValidation(t *testing.T) {
	h := graph.Path(4)
	cg := testCG(t, h, 1)
	if _, err := Color(cg, Options{Phase: "x", Q: 0, Weights: unitWeights(4)}, graph.NewRand(1)); err == nil {
		t.Fatal("q=0 accepted")
	}
	if _, err := Color(cg, Options{Phase: "x", Q: 2, Weights: unitWeights(3)}, graph.NewRand(1)); err == nil {
		t.Fatal("weight count mismatch accepted")
	}
}

func TestColorReducesDefectBelowAverage(t *testing.T) {
	// With q classes, a uniform random coloring has expected defect 1/q;
	// local search should land at or below that on average.
	rng := graph.NewRand(3)
	h := graph.MustGNP(150, 0.1, rng)
	cg := testCG(t, h, 5)
	w := unitWeights(h.N())
	q := 8
	psi, err := Color(cg, Options{Phase: "def", Q: q, B: 0, Weights: w, Rounds: 6}, graph.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	avg := AverageDefect(h, psi, w)
	if avg > 1.5/float64(q) {
		t.Fatalf("average defect %.3f above 1.5/q = %.3f", avg, 1.5/float64(q))
	}
	for v, c := range psi {
		if c < 0 || c >= q {
			t.Fatalf("vertex %d has class %d outside [0,%d)", v, c, q)
		}
	}
}

func TestColorMoreClassesLessDefect(t *testing.T) {
	rng := graph.NewRand(9)
	h := graph.MustGNP(120, 0.15, rng)
	w := unitWeights(h.N())
	defectAt := func(q int) float64 {
		cg := testCG(t, h, 11)
		psi, err := Color(cg, Options{Phase: "def", Q: q, Weights: w, Rounds: 6}, graph.NewRand(13))
		if err != nil {
			t.Fatal(err)
		}
		return AverageDefect(h, psi, w)
	}
	d2, d16 := defectAt(2), defectAt(16)
	if d16 >= d2 {
		t.Fatalf("defect did not drop with more classes: q=2 → %.3f, q=16 → %.3f", d2, d16)
	}
}

func TestColorRespectsWeights(t *testing.T) {
	// A heavy vertex pair should end up in different classes: build a path
	// u–v–w where u and w are heavy; v's defect is dominated by them.
	b := graph.NewBuilder(5)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	h := b.Build()
	w := []int64{1000, 1, 1000, 1, 1}
	cg := testCG(t, h, 15)
	psi, err := Color(cg, Options{Phase: "def", Q: 4, Weights: w, Rounds: 10}, graph.NewRand(17))
	if err != nil {
		t.Fatal(err)
	}
	// Vertex 1 must avoid the class of at least one heavy neighbor; its
	// relative defect must be far below 1.
	def := RelativeDefect(h, psi, w)
	if def > 0.9 {
		t.Fatalf("relative defect %.3f: weighting ignored (psi=%v)", def, psi)
	}
}

func TestDefectMetricsOnKnownColoring(t *testing.T) {
	h := graph.Path(4) // 0-1-2-3
	w := unitWeights(4)
	psi := []int{0, 0, 1, 1}
	// Monochromatic incidences: edge {0,1} (both class 0) counts at both
	// endpoints; edge {2,3} likewise. Total incidences = 2·M = 6.
	if got := AverageDefect(h, psi, w); got != 4.0/6.0 {
		t.Fatalf("AverageDefect = %v, want 4/6", got)
	}
	// Vertex 0: single neighbor 1 same class → defect 1.
	if got := RelativeDefect(h, psi, w); got != 1.0 {
		t.Fatalf("RelativeDefect = %v, want 1", got)
	}
	proper := []int{0, 1, 0, 1}
	if got := AverageDefect(h, proper, w); got != 0 {
		t.Fatalf("proper coloring has defect %v", got)
	}
}

func TestDefectMetricsEmptyGraph(t *testing.T) {
	h := graph.NewBuilder(3).Build()
	if AverageDefect(h, []int{0, 0, 0}, unitWeights(3)) != 0 {
		t.Fatal("empty graph has defect")
	}
	if RelativeDefect(h, []int{0, 0, 0}, unitWeights(3)) != 0 {
		t.Fatal("empty graph has relative defect")
	}
}
