package fingerprint

import (
	"math"
	"testing"
	"testing/quick"

	"clustercolor/internal/graph"
)

func TestSketchMergeIsIdempotentCommutativeAssociative(t *testing.T) {
	rng := graph.NewRand(1)
	a := NewSketch(32)
	b := NewSketch(32)
	c := NewSketch(32)
	for i := 0; i < 5; i++ {
		_ = a.AddSamples(NewSamples(32, rng))
		_ = b.AddSamples(NewSamples(32, rng))
		_ = c.AddSamples(NewSamples(32, rng))
	}
	// Idempotent: a ∪ a = a.
	aa := a.Clone()
	_ = aa.Merge(a)
	assertEqual(t, aa, a, "idempotence")
	// Commutative: a ∪ b = b ∪ a.
	ab := a.Clone()
	_ = ab.Merge(b)
	ba := b.Clone()
	_ = ba.Merge(a)
	assertEqual(t, ab, ba, "commutativity")
	// Associative: (a ∪ b) ∪ c = a ∪ (b ∪ c).
	abc1 := a.Clone()
	_ = abc1.Merge(b)
	_ = abc1.Merge(c)
	bc := b.Clone()
	_ = bc.Merge(c)
	abc2 := a.Clone()
	_ = abc2.Merge(bc)
	assertEqual(t, abc1, abc2, "associativity")
}

func assertEqual(t *testing.T, a, b Sketch, what string) {
	t.Helper()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s violated at trial %d: %d != %d", what, i, a[i], b[i])
		}
	}
}

func TestSketchLengthMismatch(t *testing.T) {
	s := NewSketch(8)
	if err := s.AddSamples(make(Samples, 4)); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := s.Merge(NewSketch(4)); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestEstimateAccuracy(t *testing.T) {
	// Lemma 5.2: with t = Θ(ξ⁻² log n) trials the estimate is within
	// (1±ξ)d. Check across magnitudes with ξ = 0.25 and generous trials.
	rng := graph.NewRand(2)
	for _, d := range []int{1, 4, 16, 100, 1000, 20000} {
		t.Run("", func(t *testing.T) {
			const trials = 2048
			s := NewSketch(trials)
			for j := 0; j < d; j++ {
				if err := s.AddSamples(NewSamples(trials, rng)); err != nil {
					t.Fatal(err)
				}
			}
			got := s.Estimate()
			if got < 0.75*float64(d) || got > 1.25*float64(d) {
				t.Fatalf("Estimate for d=%d: %.1f (off by more than 25%%)", d, got)
			}
		})
	}
}

func TestEstimateEmpty(t *testing.T) {
	s := NewSketch(64)
	if got := s.Estimate(); got != 0 {
		t.Fatalf("empty sketch estimate = %v, want 0", got)
	}
	if got := s.EstimateInt(); got != 0 {
		t.Fatalf("empty sketch EstimateInt = %d, want 0", got)
	}
	var zero Sketch
	if zero.Estimate() != 0 {
		t.Fatal("zero-length sketch estimate != 0")
	}
}

func TestTrialsFor(t *testing.T) {
	if _, err := TrialsFor(0, 100); err == nil {
		t.Fatal("xi=0 accepted")
	}
	if _, err := TrialsFor(1, 100); err == nil {
		t.Fatal("xi=1 accepted")
	}
	t1, err := TrialsFor(0.5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := TrialsFor(0.1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if t2 <= t1 {
		t.Fatalf("smaller xi should need more trials: %d vs %d", t1, t2)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := graph.NewRand(3)
	tests := []struct {
		name string
		d    int
		t    int
	}{
		{name: "empty", d: 0, t: 16},
		{name: "single", d: 1, t: 16},
		{name: "small", d: 10, t: 64},
		{name: "large", d: 5000, t: 64},
		{name: "one trial", d: 3, t: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := NewSketch(tt.t)
			for j := 0; j < tt.d; j++ {
				_ = s.AddSamples(NewSamples(tt.t, rng))
			}
			buf := s.Encode()
			got, err := Decode(buf)
			if err != nil {
				t.Fatal(err)
			}
			assertEqual(t, got, s, "round trip")
			if want := s.EncodedBits(); (want+7)/8 != len(buf) {
				t.Fatalf("EncodedBits=%d but buffer is %d bytes", want, len(buf))
			}
		})
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(seed uint64, dRaw uint16) bool {
		rng := graph.NewRand(seed)
		d := int(dRaw%500) + 1
		s := NewSketch(48)
		for j := 0; j < d; j++ {
			_ = s.AddSamples(NewSamples(48, rng))
		}
		got, err := Decode(s.Encode())
		if err != nil {
			return false
		}
		for i := range s {
			if got[i] != s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	rng := graph.NewRand(4)
	s := NewSketch(32)
	_ = s.AddSamples(NewSamples(32, rng))
	buf := s.Encode()
	if _, err := Decode(buf[:1]); err == nil {
		t.Fatal("truncated buffer decoded")
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("nil buffer decoded")
	}
}

func TestEncodedBitsIsCompact(t *testing.T) {
	// Lemma 5.5/5.6: total deviation is O(t) w.h.p., so the encoding is
	// O(t + log log d) bits — far below the naive t·log(maxY) encoding.
	rng := graph.NewRand(5)
	const trials = 256
	for _, d := range []int{16, 256, 4096, 65536} {
		s := NewSketch(trials)
		for j := 0; j < d; j++ {
			_ = s.AddSamples(NewSamples(trials, rng))
		}
		bits := s.EncodedBits()
		// 8t is the Lemma 5.5 deviation bound; allow the full budget plus
		// per-entry overhead and headers.
		budget := 10*trials + 64
		if bits > budget {
			t.Fatalf("d=%d: encoding %d bits exceeds O(t) budget %d", d, bits, budget)
		}
	}
}

func TestBaselineIsMedianMinimizer(t *testing.T) {
	s := Sketch{3, 3, 4, 4, 4, 5, 9}
	k := s.baseline()
	cost := func(k int) int {
		c := 0
		for _, y := range s {
			d := int(y) - k
			if d < 0 {
				d = -d
			}
			c += d
		}
		return c
	}
	for cand := 0; cand <= 10; cand++ {
		if cost(cand) < cost(k) {
			t.Fatalf("baseline %d not optimal: %d beats it", k, cand)
		}
	}
}

func TestEstimateMatchesExactCountDistribution(t *testing.T) {
	// Repeated estimates should concentrate: over 30 repetitions for d=200
	// the mean should be within 10%.
	rng := graph.NewRand(6)
	const d, trials, reps = 200, 1024, 30
	sum := 0.0
	for r := 0; r < reps; r++ {
		s := NewSketch(trials)
		for j := 0; j < d; j++ {
			_ = s.AddSamples(NewSamples(trials, rng))
		}
		sum += s.Estimate()
	}
	mean := sum / reps
	if math.Abs(mean-d) > 0.1*d {
		t.Fatalf("mean estimate %.1f far from %d", mean, d)
	}
}
