package fingerprint

import "clustercolor/internal/sketch"

// The deviation encoding of Lemmas 5.5–5.6 lives in internal/sketch (it is
// the max kernel's wire format); these methods keep the paper-side API.

// baseline returns the k minimizing Σ|Y_i − k|: the median of the maxima.
func (s Sketch) baseline() int {
	k, _ := sketch.DeviationBaseline(s, nil)
	return k
}

// Encode serializes the sketch with the deviation encoding: Elias-gamma of
// t, Elias-gamma of baseline k (offset so k ≥ -1 is representable), then a
// sign bit and unary deviation per trial.
func (s Sketch) Encode() []byte { return sketch.EncodeDeviation(s) }

// EncodedBits returns the exact bit length of Encode's output without
// materializing it.
func (s Sketch) EncodedBits() int {
	return sketch.DeviationBits(s, s.baseline())
}

// Decode reverses Encode.
func Decode(buf []byte) (Sketch, error) {
	row, err := sketch.DecodeDeviation(buf)
	return Sketch(row), err
}
