package fingerprint

import (
	"fmt"
	"math"
	"math/rand/v2"

	"clustercolor/internal/cluster"
)

// This file implements Lemma 9.4: approximating weighted neighborhood sums
// W_v = Σ_{u∈N(v)} α_{u→v}·x_u for 2^-b-integral weights x_u = k_u/2^b.
// Conceptually each party contributes k_u independent geometric samples;
// the maximum of the whole collection estimates Σk_u, and dividing by 2^b
// recovers the weighted sum. A party's contribution is sampled directly
// from the max-of-k distribution, so the cost stays O(t) per party
// regardless of k.

// MaxGeometricOf samples max of k independent geometric(1/2) variables in
// O(1) expected time via inverse-transform sampling:
// Pr[max < y] = (1 − 2^−y)^k.
func MaxGeometricOf(k int64, rng *rand.Rand) int16 {
	if k <= 0 {
		return Empty
	}
	if k == 1 {
		v := rng.Uint64()
		// GeometricHalf inline to avoid the prng import cycle risk:
		// trailing zeros of a uniform word.
		if v == 0 {
			return 64
		}
		n := 0
		for v&1 == 0 {
			n++
			v >>= 1
		}
		return int16(n)
	}
	u := rng.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	// CDF: Pr[max ≤ y] = (1 − 2^−(y+1))^k, so the inverse transform is
	// X = min{y ≥ 0 : 2^−(y+1) ≤ 1 − u^{1/k}} = ⌈−log₂(tail)⌉ − 1.
	root := math.Pow(u, 1.0/float64(k))
	tail := 1 - root
	if tail <= 0 {
		// Numerical underflow for huge k: use the asymptotic
		// 1 − u^{1/k} ≈ −ln(u)/k.
		tail = -math.Log(u) / float64(k)
	}
	y := math.Ceil(-math.Log2(tail)) - 1
	if y < 0 {
		y = 0
	}
	if y > math.MaxInt16 {
		y = math.MaxInt16
	}
	return int16(y)
}

// WeightedSamples returns a party's fingerprint contribution when it counts
// with integer multiplicity k: per trial, the maximum of k geometric
// samples.
func WeightedSamples(t int, k int64, rng *rand.Rand) Samples {
	s := make(Samples, t)
	for i := range s {
		s[i] = MaxGeometricOf(k, rng)
	}
	return s
}

// ApproxWeightedSum implements Lemma 9.4 on a cluster graph: every vertex v
// estimates W_v = Σ_{u∈N(v)} α(v,u)·x_u where x_u = weights[u]/2^b (alpha
// nil means all ones). The result is within (1±ξ)W_v w.h.p. for
// t = Θ(ξ⁻² log n) trials.
func ApproxWeightedSum(cg *cluster.CG, phase string, xi float64, b int,
	weights []int64, alpha func(v, u int) bool, rng *rand.Rand) ([]float64, error) {
	if b < 0 || b > 62 {
		return nil, fmt.Errorf("fingerprint: integrality exponent %d out of [0,62]", b)
	}
	n := cg.H.N()
	if len(weights) != n {
		return nil, fmt.Errorf("fingerprint: %d weights for %d vertices", len(weights), n)
	}
	for v, k := range weights {
		if k < 0 {
			return nil, fmt.Errorf("fingerprint: negative weight %d at vertex %d", k, v)
		}
	}
	t, err := TrialsFor(xi, n)
	if err != nil {
		return nil, err
	}
	samples := make([]Samples, n)
	for v := 0; v < n; v++ {
		samples[v] = WeightedSamples(t, weights[v], rng)
	}
	sketches := CollectNeighborSketches(cg, phase, samples, CollectOptions{
		Pred: alpha,
	})
	scale := float64(int64(1) << uint(b))
	out := make([]float64, n)
	for v, s := range sketches {
		out[v] = s.Estimate() / scale
	}
	return out, nil
}
