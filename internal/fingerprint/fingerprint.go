// Package fingerprint implements the sketching technique of Section 5:
// aggregating maxima of independent geometric random variables to
// approximately count in cluster graphs.
//
// A fingerprint (Sketch) is a vector of t maxima of geometric(1/2)
// variables. Maxima are idempotent under merging, so fingerprints survive
// the redundant-path aggregation hazards of Section 1.1. The estimator of
// Lemma 5.2 recovers the count d within (1±ξ) with probability
// 1 − 6·exp(−ξ²t/200), and the deviation encoding of Lemmas 5.5–5.6
// serializes a sketch in O(t + log log d) bits.
package fingerprint

import (
	"fmt"
	"math"
	"math/rand/v2"

	"clustercolor/internal/prng"
)

// Empty is the sketch cell value for "no element seen": every geometric
// sample is ≥ 0, so -1 acts as the identity of max-aggregation.
const Empty = int16(-1)

// Samples is one party's vector of geometric(1/2) samples (X_{v,1..t}).
type Samples []int16

// NewSamples draws t independent geometric(1/2) samples.
func NewSamples(t int, rng *rand.Rand) Samples {
	s := make(Samples, t)
	for i := range s {
		v := prng.GeometricHalf(rng)
		if v > math.MaxInt16 {
			v = math.MaxInt16
		}
		s[i] = int16(v)
	}
	return s
}

// Sketch is a vector of per-trial maxima (Y_1..Y_t). The zero-length sketch
// is invalid; use NewSketch.
type Sketch []int16

// NewSketch returns the empty sketch with t trials.
func NewSketch(t int) Sketch {
	s := make(Sketch, t)
	for i := range s {
		s[i] = Empty
	}
	return s
}

// Clone returns a copy of the sketch.
func (s Sketch) Clone() Sketch {
	out := make(Sketch, len(s))
	copy(out, s)
	return out
}

// AddSamples merges one party's samples into the sketch (pointwise max).
func (s Sketch) AddSamples(x Samples) error {
	if len(x) != len(s) {
		return fmt.Errorf("fingerprint: sample length %d != sketch length %d", len(x), len(s))
	}
	for i, v := range x {
		if v > s[i] {
			s[i] = v
		}
	}
	return nil
}

// Merge folds another sketch into s (pointwise max). Merging is commutative,
// associative, and idempotent — the property that makes fingerprints safe to
// aggregate over redundant paths.
func (s Sketch) Merge(other Sketch) error {
	if len(other) != len(s) {
		return fmt.Errorf("fingerprint: sketch lengths %d != %d", len(other), len(s))
	}
	for i, v := range other {
		if v > s[i] {
			s[i] = v
		}
	}
	return nil
}

// TrialsFor returns the number of trials t needed for accuracy ξ and failure
// probability about n^-c, per Lemma 5.2: t = Θ(ξ⁻² log n). The lemma's
// literal constant (200/ξ² · ln n) is a proof artifact; the estimator's
// empirical relative error is ≈ 1.1/√t, so a calibrated constant keeps the
// same Θ(ξ⁻² log n) shape at simulation-friendly sizes.
func TrialsFor(xi float64, n int) (int, error) {
	if xi <= 0 || xi >= 1 {
		return 0, fmt.Errorf("fingerprint: xi %v out of (0,1)", xi)
	}
	if n < 2 {
		n = 2
	}
	t := int(math.Ceil(6.0/(xi*xi))) + 4*int(math.Ceil(math.Log2(float64(n))))
	if t < 64 {
		t = 64
	}
	return t, nil
}

// Estimate implements Lemma 5.2: from the per-trial maxima, compute
// Z_k = |{i : Y_i < k}|, pick K* = min{k : Z_k ≥ (27/40)t}, and return
//
//	d̂ = ln(Z_K*/t) / ln(1 − 2^−K*).
//
// It returns 0 when most trials saw no element at all.
func (s Sketch) Estimate() float64 {
	t := len(s)
	if t == 0 {
		return 0
	}
	threshold := int(math.Ceil(27.0 / 40.0 * float64(t)))
	maxY := int(Empty)
	for _, y := range s {
		if int(y) > maxY {
			maxY = int(y)
		}
	}
	for k := 0; k <= maxY+1; k++ {
		z := 0
		for _, y := range s {
			if int(y) < k {
				z++
			}
		}
		if z < threshold {
			continue
		}
		if k == 0 {
			// Most trials empty: the counted set is (near) empty.
			return 0
		}
		if z == t {
			// Degenerate small-d corner: all maxima below k. Clamp so the
			// logarithm stays informative.
			z = t - 1
			if z < 1 {
				return 0
			}
		}
		num := math.Log(float64(z) / float64(t))
		den := math.Log(1 - math.Pow(2, -float64(k)))
		if den == 0 {
			return 0
		}
		return num / den
	}
	return 0
}

// EstimateInt returns the rounded estimate, never negative.
func (s Sketch) EstimateInt() int {
	e := int(math.Round(s.Estimate()))
	if e < 0 {
		return 0
	}
	return e
}
