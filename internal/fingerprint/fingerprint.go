// Package fingerprint implements the sketching technique of Section 5:
// aggregating maxima of independent geometric random variables to
// approximately count in cluster graphs.
//
// A fingerprint (Sketch) is a vector of t maxima of geometric(1/2)
// variables. Maxima are idempotent under merging, so fingerprints survive
// the redundant-path aggregation hazards of Section 1.1. Estimation
// recovers the count d within (1±ξ) w.h.p. per Lemma 5.2 (production paths
// use the variance-optimal harmonic extraction of the same statistic; see
// Sketch.Estimate), and the deviation encoding of Lemmas 5.5–5.6 serializes
// a sketch in O(t + log log d) bits.
package fingerprint

import (
	"fmt"
	"math"
	"math/rand/v2"

	"clustercolor/internal/prng"
)

// Empty is the sketch cell value for "no element seen": every geometric
// sample is ≥ 0, so -1 acts as the identity of max-aggregation.
const Empty = int16(-1)

// Samples is one party's vector of geometric(1/2) samples (X_{v,1..t}).
type Samples []int16

// NewSamples draws t independent geometric(1/2) samples.
func NewSamples(t int, rng *rand.Rand) Samples {
	s := make(Samples, t)
	for i := range s {
		v := prng.GeometricHalf(rng)
		if v > math.MaxInt16 {
			v = math.MaxInt16
		}
		s[i] = int16(v)
	}
	return s
}

// Sketch is a vector of per-trial maxima (Y_1..Y_t). The zero-length sketch
// is invalid; use NewSketch.
type Sketch []int16

// NewSketch returns the empty sketch with t trials.
func NewSketch(t int) Sketch {
	s := make(Sketch, t)
	for i := range s {
		s[i] = Empty
	}
	return s
}

// Clone returns a copy of the sketch.
func (s Sketch) Clone() Sketch {
	out := make(Sketch, len(s))
	copy(out, s)
	return out
}

// AddSamples merges one party's samples into the sketch (pointwise max).
func (s Sketch) AddSamples(x Samples) error {
	if len(x) != len(s) {
		return fmt.Errorf("fingerprint: sample length %d != sketch length %d", len(x), len(s))
	}
	for i, v := range x {
		if v > s[i] {
			s[i] = v
		}
	}
	return nil
}

// Merge folds another sketch into s (pointwise max). Merging is commutative,
// associative, and idempotent — the property that makes fingerprints safe to
// aggregate over redundant paths.
func (s Sketch) Merge(other Sketch) error {
	if len(other) != len(s) {
		return fmt.Errorf("fingerprint: sketch lengths %d != %d", len(other), len(s))
	}
	for i, v := range other {
		if v > s[i] {
			s[i] = v
		}
	}
	return nil
}

// TrialsFor returns the number of trials t needed for accuracy ξ and failure
// probability about n^-c, per Lemma 5.2: t = Θ(ξ⁻² log n). The lemma's
// literal constant (200/ξ² · ln n) is a proof artifact; the estimator's
// empirical relative error is ≈ 1.1/√t, so a calibrated constant keeps the
// same Θ(ξ⁻² log n) shape at simulation-friendly sizes.
func TrialsFor(xi float64, n int) (int, error) {
	if xi <= 0 || xi >= 1 {
		return 0, fmt.Errorf("fingerprint: xi %v out of (0,1)", xi)
	}
	if n < 2 {
		n = 2
	}
	t := int(math.Ceil(6.0/(xi*xi))) + 4*int(math.Ceil(math.Log2(float64(n))))
	if t < 64 {
		t = 64
	}
	return t, nil
}

// Estimate recovers d from the per-trial maxima. It returns 0 when no trial
// saw any element. Hot loops that estimate many sketches should hold an
// Estimator and call its Estimate to reuse the histogram scratch.
//
// The extraction is the harmonic-sum statistic S = (1/t)·Σ_i 2^−Y_i,
// inverted against the exact law E[2^−Y] of the maximum of d geometrics —
// the Flajolet–Martin/HyperLogLog aggregation applied to the paper's
// sketch. It uses every trial (empirical error ≈ 1.04/√t, the rate
// TrialsFor is calibrated for) instead of the single-threshold count of the
// Lemma 5.2 proof, whose statistic is ~2× noisier with heavy tails at the
// decision margins the decomposition cares about; the lemma's literal
// estimator remains available as EstimateThreshold. Sketch semantics,
// communication, and the Θ(ξ⁻² log n) trial bound are unchanged.
func (s Sketch) Estimate() float64 {
	var e Estimator
	return e.Estimate(s)
}

// maxTrackedY caps the value range of the estimator's histogram: geometric
// samples are at most 64 (one machine word of trailing zeros), so larger
// values only occur in hand-built or adversarially decoded sketches, where
// clamping merely saturates the estimate.
const maxTrackedY = 64

// logTail[y] = ln(1 − 2^−(y+1)), the log-CDF slope of the max-of-geometrics
// law: P[Y ≤ y] = (1 − 2^−(y+1))^d.
var logTail [maxTrackedY + 2]float64

func init() {
	for y := range logTail {
		logTail[y] = math.Log1p(-math.Exp2(-float64(y + 1)))
	}
}

// harmonicMean returns E[2^−Y] for Y the maximum of d geometric(1/2)
// samples; it is strictly decreasing in d (≈ c/d for large d).
func harmonicMean(d float64) float64 {
	var sum, prev float64
	for y := 0; y < len(logTail); y++ {
		arg := d * logTail[y] // ≤ 0
		var f float64
		switch {
		case arg < -40:
			f = 0
		case arg > -1e-12:
			f = 1
		default:
			f = math.Exp(arg)
		}
		sum += math.Exp2(-float64(y)) * (f - prev)
		if f == 1 {
			// All remaining increments vanish.
			return sum
		}
		prev = f
	}
	return sum
}

// Estimator is the reusable scratch of Estimate: a value histogram filled in
// one pass over the sketch, from which both the harmonic statistic and the
// threshold statistic derive. An Estimator is owned by one goroutine; the
// zero value is ready to use.
type Estimator struct {
	hist []int
}

// fill builds the value histogram (hist[k] counts maxima equal to k−1,
// values above maxTrackedY clamped) and returns the largest observed value.
func (e *Estimator) fill(s Sketch) int {
	maxY := int(Empty)
	for _, y := range s {
		if int(y) > maxY {
			maxY = int(y)
		}
	}
	if maxY > maxTrackedY {
		maxY = maxTrackedY
	}
	size := maxY + 2
	if cap(e.hist) < size {
		e.hist = make([]int, size)
	} else {
		e.hist = e.hist[:size]
		for i := range e.hist {
			e.hist[i] = 0
		}
	}
	for _, y := range s {
		k := int(y)
		if k > maxTrackedY {
			k = maxTrackedY
		}
		e.hist[k+1]++
	}
	return maxY
}

// Estimate is Sketch.Estimate without allocating beyond the reused
// histogram: it computes S = (1/t)·Σ 2^−Y_i and inverts harmonicMean by
// damped log-Newton iteration (harmonicMean(d) ≈ c/d, so each step is a
// near-exact Newton step in ln d).
func (e *Estimator) Estimate(s Sketch) float64 {
	t := len(s)
	if t == 0 {
		return 0
	}
	e.fill(s)
	if e.hist[0] == t {
		// No trial saw any element: the counted set is empty.
		return 0
	}
	var sum float64
	for k, c := range e.hist {
		if c > 0 {
			// Index k holds value k−1; the Empty cell (value −1, weight 2)
			// only arises in hand-built sketches and pushes d̂ down.
			sum += float64(c) * math.Exp2(-float64(k-1))
		}
	}
	S := sum / float64(t)
	d := 1 / S
	for i := 0; i < 48; i++ {
		g := harmonicMean(d)
		if g <= 0 {
			break
		}
		ratio := g / S
		if math.Abs(ratio-1) < 1e-10 {
			break
		}
		d *= ratio
	}
	return d
}

// EstimateThreshold implements the literal Lemma 5.2 statistic: compute
// Z_k = |{i : Y_i < k}|, pick K* = min{k : Z_k ≥ (27/40)t}, and return
//
//	d̂ = ln(Z_K*/t) / ln(1 − 2^−K*).
//
// It returns 0 when most trials saw no element at all. Estimate supersedes
// it in production paths (same sketch, ~2× lower error); it is kept for
// reference and for experiments that measure the proof's own estimator.
func (e *Estimator) EstimateThreshold(s Sketch) float64 {
	t := len(s)
	if t == 0 {
		return 0
	}
	threshold := int(math.Ceil(27.0 / 40.0 * float64(t)))
	maxY := e.fill(s)
	z := 0
	for k := 0; k <= maxY+1; k++ {
		z += e.hist[k]
		if z < threshold {
			continue
		}
		if k == 0 {
			// Most trials empty: the counted set is (near) empty.
			return 0
		}
		zk := z
		if zk == t {
			// Degenerate small-d corner: all maxima below k. Clamp so the
			// logarithm stays informative.
			zk = t - 1
			if zk < 1 {
				return 0
			}
		}
		num := math.Log(float64(zk) / float64(t))
		den := math.Log(1 - math.Pow(2, -float64(k)))
		if den == 0 {
			return 0
		}
		return num / den
	}
	return 0
}

// EstimateInt returns the rounded estimate, never negative.
func (s Sketch) EstimateInt() int {
	e := int(math.Round(s.Estimate()))
	if e < 0 {
		return 0
	}
	return e
}
