// Package fingerprint implements the sketching technique of Section 5:
// aggregating maxima of independent geometric random variables to
// approximately count in cluster graphs.
//
// A fingerprint (Sketch) is a vector of t maxima of geometric(1/2)
// variables. Maxima are idempotent under merging, so fingerprints survive
// the redundant-path aggregation hazards of Section 1.1. Estimation
// recovers the count d within (1±ξ) w.h.p. per Lemma 5.2 (production paths
// use the variance-optimal harmonic extraction of the same statistic; see
// Sketch.Estimate), and the deviation encoding of Lemmas 5.5–5.6 serializes
// a sketch in O(t + log log d) bits.
//
// The package is the paper-semantics adapter over internal/sketch, which
// owns the mechanics: the max-merge kernel, the arena storage and parallel
// CSR folds, the estimators, and the deviation encoding (along with the
// arena ownership contract) all live there. What stays here is the paper's
// vocabulary — Samples, Sketch, the Lemma 5.2 trial budget, and the
// Lemma 5.7/9.4 cluster-graph counting protocols.
package fingerprint

import (
	"fmt"
	"math"
	"math/rand/v2"

	"clustercolor/internal/prng"
	"clustercolor/internal/sketch"
)

// Empty is the sketch cell value for "no element seen": every geometric
// sample is ≥ 0, so -1 acts as the identity of max-aggregation.
const Empty = sketch.Empty

// Samples is one party's vector of geometric(1/2) samples (X_{v,1..t}).
type Samples []int16

// NewSamples draws t independent geometric(1/2) samples.
func NewSamples(t int, rng *rand.Rand) Samples {
	s := make(Samples, t)
	for i := range s {
		v := prng.GeometricHalf(rng)
		if v > math.MaxInt16 {
			v = math.MaxInt16
		}
		s[i] = int16(v)
	}
	return s
}

// Sketch is a vector of per-trial maxima (Y_1..Y_t). The zero-length sketch
// is invalid; use NewSketch.
type Sketch []int16

// NewSketch returns the empty sketch with t trials.
func NewSketch(t int) Sketch {
	s := make(Sketch, t)
	for i := range s {
		s[i] = Empty
	}
	return s
}

// Clone returns a copy of the sketch.
func (s Sketch) Clone() Sketch {
	out := make(Sketch, len(s))
	copy(out, s)
	return out
}

// AddSamples merges one party's samples into the sketch (pointwise max).
func (s Sketch) AddSamples(x Samples) error {
	if len(x) != len(s) {
		return fmt.Errorf("fingerprint: sample length %d != sketch length %d", len(x), len(s))
	}
	sketch.MergeMax(s, x)
	return nil
}

// Merge folds another sketch into s (pointwise max). Merging is commutative,
// associative, and idempotent — the property that makes fingerprints safe to
// aggregate over redundant paths. The fold goes through the sketch package's
// max kernel, so vertex-level waves and the machine-level distsim replays
// share one merge implementation.
func (s Sketch) Merge(other Sketch) error {
	if len(other) != len(s) {
		return fmt.Errorf("fingerprint: sketch lengths %d != %d", len(other), len(s))
	}
	sketch.MergeMax(s, other)
	return nil
}

// TrialsFor returns the number of trials t needed for accuracy ξ and failure
// probability about n^-c, per Lemma 5.2: t = Θ(ξ⁻² log n). The lemma's
// literal constant (200/ξ² · ln n) is a proof artifact; the estimator's
// empirical relative error is ≈ 1.1/√t, so a calibrated constant keeps the
// same Θ(ξ⁻² log n) shape at simulation-friendly sizes.
func TrialsFor(xi float64, n int) (int, error) {
	if xi <= 0 || xi >= 1 {
		return 0, fmt.Errorf("fingerprint: xi %v out of (0,1)", xi)
	}
	if n < 2 {
		n = 2
	}
	t := int(math.Ceil(6.0/(xi*xi))) + 4*int(math.Ceil(math.Log2(float64(n))))
	if t < 64 {
		t = 64
	}
	return t, nil
}

// Estimator is the reusable harmonic/threshold estimator of the max kernel
// (moved to internal/sketch; the alias keeps the paper-side name). An
// Estimator is owned by one goroutine; the zero value is ready to use.
type Estimator = sketch.MaxEstimator[int16]

// Estimate recovers d from the per-trial maxima. It returns 0 when no trial
// saw any element. Hot loops that estimate many sketches should hold an
// Estimator and call its Estimate to reuse the histogram scratch.
//
// The extraction is sketch.MaxEstimator's harmonic-sum statistic
// S = (1/t)·Σ_i 2^−Y_i, inverted against the exact law E[2^−Y] of the
// maximum of d geometrics — the Flajolet–Martin/HyperLogLog aggregation
// applied to the paper's sketch. It uses every trial (empirical error
// ≈ 1.04/√t, the rate TrialsFor is calibrated for) instead of the
// single-threshold count of the Lemma 5.2 proof, whose statistic is ~2×
// noisier with heavy tails at the decision margins the decomposition cares
// about; the lemma's literal estimator remains available as
// Estimator.EstimateThreshold. Sketch semantics, communication, and the
// Θ(ξ⁻² log n) trial bound are unchanged.
func (s Sketch) Estimate() float64 {
	var e Estimator
	return e.Estimate(s)
}

// EstimateInt returns the rounded estimate, never negative.
func (s Sketch) EstimateInt() int {
	e := int(math.Round(s.Estimate()))
	if e < 0 {
		return 0
	}
	return e
}
