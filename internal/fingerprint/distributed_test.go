package fingerprint

import (
	"testing"

	"clustercolor/internal/cluster"
	"clustercolor/internal/graph"
	"clustercolor/internal/network"
)

func testCG(t *testing.T, h *graph.Graph, seed uint64) *cluster.CG {
	t.Helper()
	rng := graph.NewRand(seed)
	exp, err := graph.Expand(h, graph.ExpandSpec{Topology: graph.TopologyStar, MachinesPerCluster: 3, RedundantLinks: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := network.NewCostModel(64)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := cluster.New(h, exp, cost)
	if err != nil {
		t.Fatal(err)
	}
	return cg
}

func TestApproxDegreesOnCluster(t *testing.T) {
	rng := graph.NewRand(31)
	h := graph.MustGNP(120, 0.3, rng)
	cg := testCG(t, h, 7)
	ests, err := ApproxDegrees(cg, "deg", 0.3, graph.NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	okCount := 0
	for v := 0; v < h.N(); v++ {
		d := float64(h.Degree(v))
		if d == 0 {
			if ests[v] == 0 {
				okCount++
			}
			continue
		}
		if ests[v] >= 0.6*d && ests[v] <= 1.4*d {
			okCount++
		}
	}
	if okCount < h.N()*9/10 {
		t.Fatalf("only %d/%d degree estimates within 40%%", okCount, h.N())
	}
	if cg.Cost().Rounds() == 0 {
		t.Fatal("no rounds charged")
	}
}

func TestApproxCountWithPredicate(t *testing.T) {
	// Count only neighbors with even ids.
	rng := graph.NewRand(33)
	h := graph.MustGNP(150, 0.4, rng)
	cg := testCG(t, h, 8)
	pred := func(v, u int) bool { return u%2 == 0 }
	ests, err := ApproxCount(cg, "even", 0.3, pred, graph.NewRand(10))
	if err != nil {
		t.Fatal(err)
	}
	okCount := 0
	for v := 0; v < h.N(); v++ {
		want := 0
		for _, u := range h.Neighbors(v) {
			if int(u)%2 == 0 {
				want++
			}
		}
		if want == 0 {
			if ests[v] < 1 {
				okCount++
			}
			continue
		}
		if ests[v] >= 0.6*float64(want) && ests[v] <= 1.4*float64(want) {
			okCount++
		}
	}
	if okCount < h.N()*9/10 {
		t.Fatalf("only %d/%d filtered estimates within 40%%", okCount, h.N())
	}
}

func TestApproxCountRejectsBadXi(t *testing.T) {
	cg := testCG(t, graph.Path(3), 1)
	if _, err := ApproxCount(cg, "x", 0, nil, graph.NewRand(1)); err == nil {
		t.Fatal("xi=0 accepted")
	}
}

func TestCollectSketchesValidation(t *testing.T) {
	cg := testCG(t, graph.Path(3), 2)
	if _, err := CollectSketches(cg, "x", make([]Samples, 2), CollectOptions{}); err == nil {
		t.Fatal("sample count mismatch accepted")
	}
	bad := []Samples{make(Samples, 4), make(Samples, 8), make(Samples, 4)}
	if _, err := CollectSketches(cg, "x", bad, CollectOptions{}); err == nil {
		t.Fatal("uneven trial counts accepted")
	}
}

func TestCollectSketchesIncludeSelf(t *testing.T) {
	// On an edgeless graph, IncludeSelf makes each sketch the vertex's own
	// samples; otherwise sketches stay empty.
	h := graph.NewBuilder(4).Build()
	cg := testCG(t, h, 3)
	samples := SampleAll(4, 16, graph.NewRand(4))
	with, err := CollectSketches(cg, "x", samples, CollectOptions{IncludeSelf: true})
	if err != nil {
		t.Fatal(err)
	}
	without, err := CollectSketches(cg, "x", samples, CollectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 4; v++ {
		for i := 0; i < 16; i++ {
			if with[v][i] != samples[v][i] {
				t.Fatalf("IncludeSelf sketch differs from own samples at %d/%d", v, i)
			}
			if without[v][i] != Empty {
				t.Fatalf("isolated vertex %d has non-empty sketch", v)
			}
		}
	}
}

func TestCollectSketchesMatchBruteForceMaxima(t *testing.T) {
	rng := graph.NewRand(35)
	h := graph.MustGNP(40, 0.3, rng)
	cg := testCG(t, h, 9)
	samples := SampleAll(h.N(), 24, graph.NewRand(11))
	sketches, err := CollectSketches(cg, "x", samples, CollectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < h.N(); v++ {
		want := NewSketch(24)
		for _, u := range h.Neighbors(v) {
			_ = want.AddSamples(samples[u])
		}
		for i := range want {
			if sketches[v][i] != want[i] {
				t.Fatalf("sketch[%d][%d] = %d, want %d", v, i, sketches[v][i], want[i])
			}
		}
	}
}
