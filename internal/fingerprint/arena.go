package fingerprint

import (
	"fmt"
	"math/bits"

	"clustercolor/internal/cluster"
	"clustercolor/internal/parwork"
)

// This file holds the arena-backed, parallel form of the Section 5 sketch
// machinery. The classic API (SampleAll, CollectSketches) allocates one heap
// slice per party, which is fine for protocol-level simulations but makes
// the decomposition allocation-bound at n = 10⁶. The Arena keeps all n rows
// in one flat []int16 backing, sample rows are generated from per-row
// counter streams (parwork.RowSeed) instead of a shared sequential PRNG, and
// CollectArena runs the neighbor fold as a parallel per-vertex CSR sweep —
// max-merge is commutative and idempotent, so the result is byte-identical
// at every parallelism level.
//
// Ownership contract: an Arena (and a Scratch) belongs to one wave at a
// time. Reset reuses the backing across waves; rows returned by Row alias
// the backing and are invalidated by the next Reset.

// Arena is a flat backing for n fixed-width sample or sketch rows.
// The zero value is an empty arena; Reset sizes it.
type Arena struct {
	t    int
	data []int16
}

// Reset sizes the arena to n rows of t trials, reusing the backing when it
// is large enough. Row contents are undefined afterwards — callers fill
// every row they read (FillGeometric, CollectArena).
func (a *Arena) Reset(n, t int) {
	size := n * t
	if cap(a.data) < size {
		a.data = make([]int16, size)
	} else {
		a.data = a.data[:size]
	}
	a.t = t
}

// Rows returns the number of rows.
func (a *Arena) Rows() int {
	if a.t == 0 {
		return 0
	}
	return len(a.data) / a.t
}

// Trials returns the row width t.
func (a *Arena) Trials() int { return a.t }

// Row returns row i as a Sketch view into the backing. The view is valid
// until the next Reset.
func (a *Arena) Row(i int) Sketch { return a.data[i*a.t : (i+1)*a.t] }

// FillGeometric fills every row with independent geometric(1/2) samples
// drawn from per-row counter streams: row v's j-th sample is the trailing
// zero count of the word RowSeed(RowSeed(seed, v), j). Rows are generated in
// parallel and depend only on (seed, v, j), so any schedule produces the
// same arena — the property the decomposition's byte-identical-at-any-
// parallelism contract rests on.
func (a *Arena) FillGeometric(seed uint64) error {
	t := a.t
	return parwork.ForRange(a.Rows(), func(lo, hi int) error {
		for v := lo; v < hi; v++ {
			rowSeed := parwork.RowSeed(seed, v)
			row := a.Row(v)
			for j := 0; j < t; j++ {
				// An all-zero word maps to 64 trailing zeros — a legal
				// (astronomically rare) sample well inside int16 range.
				row[j] = int16(bits.TrailingZeros64(parwork.RowSeed(rowSeed, j)))
			}
		}
		return nil
	})
}

// Scratch bundles the per-goroutine reusable buffers of arena waves: a merge
// row for two-sketch unions and the counting buffers behind estimates and
// deviation encodings. The zero value is ready to use.
type Scratch struct {
	// Est estimates sketches without allocating per call.
	Est    Estimator
	merged Sketch
	counts []int
}

// MergeTwo returns max(a, b) in the scratch's merge row. The returned slice
// is valid until the next MergeTwo.
func (sc *Scratch) MergeTwo(a, b Sketch) Sketch {
	sc.merged = append(sc.merged[:0], a...)
	mergeMax(sc.merged, b)
	return sc.merged
}

// EncodedBits is Sketch.EncodedBits with the baseline-selection buffer
// reused across calls.
func (sc *Scratch) EncodedBits(s Sketch) int {
	k, counts := s.baselineWith(sc.counts)
	sc.counts = counts
	return s.encodedBitsFor(k)
}

// mergeMax folds src into dst pointwise (dst[i] = max(dst[i], src[i])).
// Lengths must match.
func mergeMax(dst, src Sketch) {
	dst = dst[:len(src)]
	for i, v := range src {
		if v > dst[i] {
			dst[i] = v
		}
	}
}

// ArenaCollectOptions configures CollectArena.
type ArenaCollectOptions struct {
	// IncludeSelf merges the vertex's own samples into its sketch.
	IncludeSelf bool
	// Pred filters which neighbors contribute to v's sketch; nil means all.
	// slot is the CSR position of the directed edge (v, u) — AdjOffset(v)+j
	// for the j-th neighbor — so callers can memoize per-edge predicates in
	// flat bitmaps instead of re-deriving them from the endpoints. Pred must
	// be safe for concurrent calls and must not depend on evaluation order.
	Pred func(v, u, slot int) bool
}

// CollectArena runs one aggregation wave arena-backed: out row v becomes the
// max-merge of the sample rows of v's admitted neighbors. The fold runs as a
// parallel per-vertex CSR sweep; rows are disjoint and max-merge is
// order-independent, so the output is byte-identical at any parallelism.
// The round cost matches CollectNeighborSketches — one H-round for the
// exchange plus the largest deviation-encoded payload, which is returned.
func CollectArena(cg *cluster.CG, phase string, samples, out *Arena, opts ArenaCollectOptions) (int, error) {
	g := cg.H
	n := g.N()
	if samples.Rows() != n {
		return 0, fmt.Errorf("fingerprint: %d sample rows for %d vertices", samples.Rows(), n)
	}
	t := samples.Trials()
	out.Reset(n, t)
	cg.ChargeHRounds(phase, 1, 0) // payload charged below with true size
	chunks := parwork.RangeChunks(n)
	chunkBits, err := parwork.ForEach(chunks, func(ci int) (int, error) {
		lo, hi := parwork.ChunkBounds(n, ci)
		var sc Scratch
		best := 1
		for v := lo; v < hi; v++ {
			row := out.Row(v)
			empty := true
			if opts.IncludeSelf {
				// Own samples merge locally; no network cost.
				copy(row, samples.Row(v))
				empty = false
			}
			base := g.AdjOffset(v)
			for j, u32 := range g.Neighbors(v) {
				u := int(u32)
				if opts.Pred != nil && !opts.Pred(v, u, base+j) {
					continue
				}
				if empty {
					copy(row, samples.Row(u))
					empty = false
					continue
				}
				mergeMax(row, samples.Row(u))
			}
			if empty {
				for i := range row {
					row[i] = Empty
				}
			}
			if b := sc.EncodedBits(row); b > best {
				best = b
			}
		}
		return best, nil
	})
	if err != nil {
		return 0, err
	}
	// Charge the true payload: the largest deviation-encoded sketch that
	// crossed a link. Max over fixed chunk bounds is grouping-independent.
	maxBits := 1
	for _, b := range chunkBits {
		if b > maxBits {
			maxBits = b
		}
	}
	cg.ChargeHRounds(phase+"/payload", 1, maxBits)
	return maxBits, nil
}
