package fingerprint

import (
	"math"
	"testing"

	"clustercolor/internal/graph"
)

func TestMaxGeometricOfMatchesExplicitMax(t *testing.T) {
	// Distributional check: CDF of MaxGeometricOf(k) vs the explicit max
	// of k GeometricHalf samples, compared at a few points.
	rng := graph.NewRand(1)
	const samples = 60000
	for _, k := range []int64{1, 4, 32} {
		direct := make([]int, 40)
		explicit := make([]int, 40)
		for i := 0; i < samples; i++ {
			d := int(MaxGeometricOf(k, rng))
			if d < len(direct) {
				direct[d]++
			}
			m := Empty
			s := NewSamples(int(k), rng)
			for _, x := range s {
				if x > m {
					m = x
				}
			}
			if int(m) < len(explicit) {
				explicit[int(m)]++
			}
		}
		// Compare CDFs at quartile-ish points.
		cum1, cum2 := 0.0, 0.0
		for y := 0; y < 20; y++ {
			cum1 += float64(direct[y]) / samples
			cum2 += float64(explicit[y]) / samples
			if math.Abs(cum1-cum2) > 0.02 {
				t.Fatalf("k=%d: CDF mismatch at %d: %.3f vs %.3f", k, y, cum1, cum2)
			}
		}
	}
}

func TestMaxGeometricOfZeroWeight(t *testing.T) {
	rng := graph.NewRand(2)
	if got := MaxGeometricOf(0, rng); got != Empty {
		t.Fatalf("weight 0 contribution = %d, want Empty", got)
	}
	if got := MaxGeometricOf(-3, rng); got != Empty {
		t.Fatalf("negative weight contribution = %d, want Empty", got)
	}
}

func TestMaxGeometricOfHugeWeight(t *testing.T) {
	// The max of 2^40 geometrics concentrates near 40.
	rng := graph.NewRand(3)
	sum := 0.0
	const reps = 2000
	for i := 0; i < reps; i++ {
		sum += float64(MaxGeometricOf(1<<40, rng))
	}
	mean := sum / reps
	if mean < 38 || mean < 0 || mean > 44 {
		t.Fatalf("mean max of 2^40 geometrics = %.1f, want ≈ 40–41", mean)
	}
}

func TestWeightedSketchEstimatesSum(t *testing.T) {
	// A sketch over parties with weights k_i estimates Σk_i.
	rng := graph.NewRand(4)
	weights := []int64{100, 300, 50, 550}
	var total float64
	for _, k := range weights {
		total += float64(k)
	}
	const trials = 2048
	s := NewSketch(trials)
	for _, k := range weights {
		if err := s.AddSamples(WeightedSamples(trials, k, rng)); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Estimate()
	if got < 0.75*total || got > 1.25*total {
		t.Fatalf("weighted estimate %.0f far from %.0f", got, total)
	}
}

func TestApproxWeightedSumOnCluster(t *testing.T) {
	rng := graph.NewRand(5)
	h := graph.MustGNP(100, 0.3, rng)
	cg := testCG(t, h, 7)
	// x_u = u's weight / 2^b with b = 3.
	b := 3
	weights := make([]int64, h.N())
	for v := range weights {
		weights[v] = int64(1 + v%16) // k_u in 1..16 → x_u in 1/8..2
	}
	got, err := ApproxWeightedSum(cg, "wsum", 0.25, b, weights, nil, graph.NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	ok := 0
	for v := 0; v < h.N(); v++ {
		var want float64
		for _, u := range h.Neighbors(v) {
			want += float64(weights[u]) / 8.0
		}
		if want == 0 {
			if got[v] < 0.5 {
				ok++
			}
			continue
		}
		if got[v] > 0.6*want && got[v] < 1.4*want {
			ok++
		}
	}
	if ok < h.N()*85/100 {
		t.Fatalf("only %d/%d weighted sums within 40%%", ok, h.N())
	}
}

func TestApproxWeightedSumWithAlpha(t *testing.T) {
	rng := graph.NewRand(11)
	h := graph.MustGNP(80, 0.3, rng)
	cg := testCG(t, h, 13)
	weights := make([]int64, h.N())
	for v := range weights {
		weights[v] = 8 // x_u = 1 at b = 3
	}
	alpha := func(v, u int) bool { return u%2 == 0 }
	got, err := ApproxWeightedSum(cg, "wsum", 0.25, 3, weights, alpha, graph.NewRand(15))
	if err != nil {
		t.Fatal(err)
	}
	ok := 0
	for v := 0; v < h.N(); v++ {
		want := 0.0
		for _, u := range h.Neighbors(v) {
			if int(u)%2 == 0 {
				want++
			}
		}
		if want == 0 {
			if got[v] < 0.5 {
				ok++
			}
			continue
		}
		if got[v] > 0.6*want && got[v] < 1.4*want {
			ok++
		}
	}
	if ok < h.N()*85/100 {
		t.Fatalf("only %d/%d filtered weighted sums acceptable", ok, h.N())
	}
}

func TestApproxWeightedSumValidation(t *testing.T) {
	h := graph.Path(3)
	cg := testCG(t, h, 17)
	if _, err := ApproxWeightedSum(cg, "x", 0.2, -1, make([]int64, 3), nil, graph.NewRand(1)); err == nil {
		t.Fatal("negative b accepted")
	}
	if _, err := ApproxWeightedSum(cg, "x", 0.2, 3, make([]int64, 2), nil, graph.NewRand(1)); err == nil {
		t.Fatal("weight count mismatch accepted")
	}
	if _, err := ApproxWeightedSum(cg, "x", 0.2, 3, []int64{1, -2, 1}, nil, graph.NewRand(1)); err == nil {
		t.Fatal("negative weight accepted")
	}
}
