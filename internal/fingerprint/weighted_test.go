package fingerprint

import (
	"math"
	"math/rand/v2"
	"testing"

	"clustercolor/internal/graph"
	"clustercolor/internal/sketch"
)

func TestMaxGeometricOfMatchesExplicitMax(t *testing.T) {
	// Distributional check: CDF of MaxGeometricOf(k) vs the explicit max
	// of k GeometricHalf samples, compared at a few points.
	rng := graph.NewRand(1)
	const samples = 60000
	for _, k := range []int64{1, 4, 32} {
		direct := make([]int, 40)
		explicit := make([]int, 40)
		for i := 0; i < samples; i++ {
			d := int(MaxGeometricOf(k, rng))
			if d < len(direct) {
				direct[d]++
			}
			m := int16(Empty)
			s := NewSamples(int(k), rng)
			for _, x := range s {
				if x > m {
					m = x
				}
			}
			if int(m) < len(explicit) {
				explicit[int(m)]++
			}
		}
		// Compare CDFs at quartile-ish points.
		cum1, cum2 := 0.0, 0.0
		for y := 0; y < 20; y++ {
			cum1 += float64(direct[y]) / samples
			cum2 += float64(explicit[y]) / samples
			if math.Abs(cum1-cum2) > 0.02 {
				t.Fatalf("k=%d: CDF mismatch at %d: %.3f vs %.3f", k, y, cum1, cum2)
			}
		}
	}
}

func TestMaxGeometricOfZeroWeight(t *testing.T) {
	rng := graph.NewRand(2)
	if got := MaxGeometricOf(0, rng); got != Empty {
		t.Fatalf("weight 0 contribution = %d, want Empty", got)
	}
	if got := MaxGeometricOf(-3, rng); got != Empty {
		t.Fatalf("negative weight contribution = %d, want Empty", got)
	}
}

func TestMaxGeometricOfHugeWeight(t *testing.T) {
	// The max of 2^40 geometrics concentrates near 40.
	rng := graph.NewRand(3)
	sum := 0.0
	const reps = 2000
	for i := 0; i < reps; i++ {
		sum += float64(MaxGeometricOf(1<<40, rng))
	}
	mean := sum / reps
	if mean < 38 || mean < 0 || mean > 44 {
		t.Fatalf("mean max of 2^40 geometrics = %.1f, want ≈ 40–41", mean)
	}
}

func TestWeightedSketchEstimatesSum(t *testing.T) {
	// A sketch over parties with weights k_i estimates Σk_i.
	rng := graph.NewRand(4)
	weights := []int64{100, 300, 50, 550}
	var total float64
	for _, k := range weights {
		total += float64(k)
	}
	const trials = 2048
	s := NewSketch(trials)
	for _, k := range weights {
		if err := s.AddSamples(WeightedSamples(trials, k, rng)); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Estimate()
	if got < 0.75*total || got > 1.25*total {
		t.Fatalf("weighted estimate %.0f far from %.0f", got, total)
	}
}

func TestApproxWeightedSumOnCluster(t *testing.T) {
	rng := graph.NewRand(5)
	h := graph.MustGNP(100, 0.3, rng)
	cg := testCG(t, h, 7)
	// x_u = u's weight / 2^b with b = 3.
	b := 3
	weights := make([]int64, h.N())
	for v := range weights {
		weights[v] = int64(1 + v%16) // k_u in 1..16 → x_u in 1/8..2
	}
	got, err := ApproxWeightedSum(cg, "wsum", 0.25, b, weights, nil, graph.NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	ok := 0
	for v := 0; v < h.N(); v++ {
		var want float64
		for _, u := range h.Neighbors(v) {
			want += float64(weights[u]) / 8.0
		}
		if want == 0 {
			if got[v] < 0.5 {
				ok++
			}
			continue
		}
		if got[v] > 0.6*want && got[v] < 1.4*want {
			ok++
		}
	}
	if ok < h.N()*85/100 {
		t.Fatalf("only %d/%d weighted sums within 40%%", ok, h.N())
	}
}

func TestApproxWeightedSumWithAlpha(t *testing.T) {
	rng := graph.NewRand(11)
	h := graph.MustGNP(80, 0.3, rng)
	cg := testCG(t, h, 13)
	weights := make([]int64, h.N())
	for v := range weights {
		weights[v] = 8 // x_u = 1 at b = 3
	}
	alpha := func(v, u int) bool { return u%2 == 0 }
	got, err := ApproxWeightedSum(cg, "wsum", 0.25, 3, weights, alpha, graph.NewRand(15))
	if err != nil {
		t.Fatal(err)
	}
	ok := 0
	for v := 0; v < h.N(); v++ {
		want := 0.0
		for _, u := range h.Neighbors(v) {
			if int(u)%2 == 0 {
				want++
			}
		}
		if want == 0 {
			if got[v] < 0.5 {
				ok++
			}
			continue
		}
		if got[v] > 0.6*want && got[v] < 1.4*want {
			ok++
		}
	}
	if ok < h.N()*85/100 {
		t.Fatalf("only %d/%d filtered weighted sums acceptable", ok, h.N())
	}
}

func TestApproxWeightedSumValidation(t *testing.T) {
	h := graph.Path(3)
	cg := testCG(t, h, 17)
	if _, err := ApproxWeightedSum(cg, "x", 0.2, -1, make([]int64, 3), nil, graph.NewRand(1)); err == nil {
		t.Fatal("negative b accepted")
	}
	if _, err := ApproxWeightedSum(cg, "x", 0.2, 3, make([]int64, 2), nil, graph.NewRand(1)); err == nil {
		t.Fatal("weight count mismatch accepted")
	}
	if _, err := ApproxWeightedSum(cg, "x", 0.2, 3, []int64{1, -2, 1}, nil, graph.NewRand(1)); err == nil {
		t.Fatal("negative weight accepted")
	}
}

// extremeSource is a rand source that cycles a fixed word list — the lever
// that drives MaxGeometricOf's uniform draw to the exact edges of Float64's
// granularity (all-ones → u = 1−2⁻⁵³, the smallest tail; all-zeros → u = 0).
type extremeSource struct {
	vals []uint64
	i    int
}

func (s *extremeSource) Uint64() uint64 {
	v := s.vals[s.i%len(s.vals)]
	s.i++
	return v
}

// TestMaxGeometricOfFitsNarrowCells pins the value-range contract the sketch
// package's narrow int8 cells depend on: over every weight up to 10⁸ — the
// largest n the simulations target — the sample is bounded by
// ⌈53 + log₂k⌉ − 1 ≈ 79 even at the extreme edges of the uniform draw, well
// inside sketch.MaxCell8. (The sketch arenas store these via the int16
// fingerprint adapter today; this test is what licenses the narrow width for
// every organically fillable value.)
func TestMaxGeometricOfFitsNarrowCells(t *testing.T) {
	sources := func() []*extremeSource {
		return []*extremeSource{
			{vals: []uint64{^uint64(0)}},                        // u at the top of Float64's range
			{vals: []uint64{0}},                                 // u = 0
			{vals: []uint64{1}},                                 // subnormal-corner u
			{vals: []uint64{0xfffffffffffff800}},                // max mantissa pattern
			{vals: []uint64{0xdeadbeefcafef00d, ^uint64(0), 0}}, // mixed
		}
	}
	for _, k := range []int64{1, 2, 3, 1000, 1 << 26, 100_000_000} {
		bound := int16(math.Ceil(53+math.Log2(float64(k)))) - 1
		if b := int16(64); k == 1 && bound < b {
			bound = b // k=1 draws trailing zeros: at most 64
		}
		if bound > int16(sketch.MaxCell8) {
			t.Fatalf("k=%d: analytic bound %d exceeds narrow cell range", k, bound)
		}
		for si, src := range sources() {
			rng := rand.New(src)
			for rep := 0; rep < 64; rep++ {
				y := MaxGeometricOf(k, rng)
				if y < 0 || y > bound {
					t.Fatalf("k=%d source=%d: sample %d outside [0, %d]", k, si, y, bound)
				}
			}
		}
	}
}
