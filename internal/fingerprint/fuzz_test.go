package fingerprint

import (
	"testing"

	"clustercolor/internal/graph"
)

// FuzzDecode hardens the deviation decoder against arbitrary byte strings:
// it must either return a valid sketch or an error — never panic and never
// return a sketch disagreeing with a re-encode round trip.
func FuzzDecode(f *testing.F) {
	rng := graph.NewRand(1)
	for _, d := range []int{0, 1, 100} {
		s := NewSketch(16)
		for j := 0; j < d; j++ {
			_ = s.AddSamples(NewSamples(16, rng))
		}
		f.Add(s.Encode())
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		// A successfully decoded sketch must round-trip.
		again, err := Decode(s.Encode())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(s) {
			t.Fatalf("round trip changed length %d → %d", len(s), len(again))
		}
		for i := range s {
			if again[i] != s[i] {
				t.Fatalf("round trip changed trial %d: %d → %d", i, s[i], again[i])
			}
		}
	})
}
