package fingerprint

import (
	"fmt"
	"math/rand/v2"

	"clustercolor/internal/cluster"
)

// This file implements Lemma 5.7 — distributed approximate counting on a
// cluster graph — and the sketch-collection primitive behind it. Each vertex
// samples a geometric vector; neighbors aggregate maxima (with a predicate
// filter) over support trees. Per-link traffic is the deviation encoding of
// the partial aggregate, charged to the cost model; a payload above the link
// bandwidth pipelines over multiple rounds, reproducing the O(ξ⁻²) round
// bound.

// SampleAll draws a sample vector of t trials for each of n parties.
func SampleAll(n, t int, rng *rand.Rand) []Samples {
	out := make([]Samples, n)
	for i := range out {
		out[i] = NewSamples(t, rng)
	}
	return out
}

// CollectOptions configures CollectSketches.
type CollectOptions struct {
	// IncludeSelf merges the vertex's own samples into its sketch.
	IncludeSelf bool
	// Pred filters which neighbors contribute to v's sketch; nil means all
	// neighbors. Pred must be evaluable by the machines on the shared link
	// (Lemma 5.7's requirement).
	Pred func(v, u int) bool
}

// CollectSketches runs one aggregation wave: every vertex v obtains the
// merged sketch of the samples of its admitted neighbors. The round cost is
// one H-round per bandwidth slot of the largest encoded sketch.
func CollectSketches(cg *cluster.CG, phase string, samples []Samples, opts CollectOptions) ([]Sketch, error) {
	n := cg.H.N()
	if len(samples) != n {
		return nil, fmt.Errorf("fingerprint: %d sample vectors for %d vertices", len(samples), n)
	}
	t := 0
	if n > 0 {
		t = len(samples[0])
	}
	for v, s := range samples {
		if len(s) != t {
			return nil, fmt.Errorf("fingerprint: vertex %d has %d trials, want %d", v, len(s), t)
		}
	}
	sketches := CollectNeighborSketches(cg, phase, samples, opts)
	return sketches, nil
}

// CollectNeighborSketches is the internal fold; exposed for reuse by the
// almost-clique decomposition which needs the same wave with a different
// predicate.
func CollectNeighborSketches(cg *cluster.CG, phase string, samples []Samples, opts CollectOptions) []Sketch {
	t := 0
	if len(samples) > 0 {
		t = len(samples[0])
	}
	out := cluster.CollectNeighbors(cg, phase, 0, // payload charged below with true size
		func(v int) Sketch {
			s := NewSketch(t)
			if opts.IncludeSelf {
				// Own samples merge locally; no network cost.
				_ = s.AddSamples(samples[v])
			}
			return s
		},
		func(v int) Sketch {
			s := NewSketch(t)
			_ = s.AddSamples(samples[v])
			return s
		},
		func(v int, acc Sketch, u int, uval Sketch) Sketch {
			if opts.Pred != nil && !opts.Pred(v, u) {
				return acc
			}
			_ = acc.Merge(uval)
			return acc
		})
	// Charge the true payload: the largest deviation-encoded sketch that
	// crossed a link.
	maxBits := 1
	for _, s := range out {
		if b := s.EncodedBits(); b > maxBits {
			maxBits = b
		}
	}
	cg.ChargeHRounds(phase+"/payload", 1, maxBits)
	return out
}

// ApproxCount implements Lemma 5.7: every vertex v estimates
// |{u ∈ N(v) : pred(v,u)}| within (1±ξ) w.h.p. It returns the per-vertex
// estimates.
func ApproxCount(cg *cluster.CG, phase string, xi float64, pred func(v, u int) bool, rng *rand.Rand) ([]float64, error) {
	t, err := TrialsFor(xi, cg.H.N())
	if err != nil {
		return nil, err
	}
	samples := SampleAll(cg.H.N(), t, rng)
	sketches, err := CollectSketches(cg, phase, samples, CollectOptions{Pred: pred})
	if err != nil {
		return nil, err
	}
	out := make([]float64, cg.H.N())
	for v, s := range sketches {
		out[v] = s.Estimate()
	}
	return out, nil
}

// ApproxDegrees estimates every vertex's degree (the trivial predicate).
func ApproxDegrees(cg *cluster.CG, phase string, xi float64, rng *rand.Rand) ([]float64, error) {
	return ApproxCount(cg, phase, xi, nil, rng)
}
