package baseline

import (
	"testing"

	"clustercolor/internal/cluster"
	"clustercolor/internal/coloring"
	"clustercolor/internal/graph"
	"clustercolor/internal/network"
)

func testCG(t *testing.T, h *graph.Graph) *cluster.CG {
	t.Helper()
	rng := graph.NewRand(2)
	exp, err := graph.Expand(h, graph.ExpandSpec{Topology: graph.TopologySingleton}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := network.NewCostModel(48)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := cluster.New(h, exp, cost)
	if err != nil {
		t.Fatal(err)
	}
	return cg
}

func TestGreedyProperOnVariousGraphs(t *testing.T) {
	rng := graph.NewRand(3)
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{name: "clique", g: graph.Clique(20)},
		{name: "path", g: graph.Path(20)},
		{name: "gnp", g: graph.MustGNP(150, 0.1, rng)},
		{name: "empty", g: graph.NewBuilder(5).Build()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			col, err := Greedy(tt.g)
			if err != nil {
				t.Fatal(err)
			}
			if err := coloring.VerifyComplete(tt.g, col); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRandomTrialsCompletes(t *testing.T) {
	rng := graph.NewRand(5)
	h := graph.MustGNP(200, 0.1, rng)
	cg := testCG(t, h)
	col := coloring.New(h.N(), h.MaxDegree())
	res, err := RandomTrials(cg, col, 500, graph.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := coloring.VerifyComplete(h, col); err != nil {
		t.Fatal(err)
	}
	if res.Waves == 0 || res.Rounds == 0 {
		t.Fatalf("result %+v records no work", res)
	}
}

func TestRandomTrialsWaveBudget(t *testing.T) {
	h := graph.Clique(30)
	cg := testCG(t, h)
	col := coloring.New(h.N(), h.MaxDegree())
	if _, err := RandomTrials(cg, col, 1, graph.NewRand(9)); err == nil {
		t.Fatal("clique colored in one wave?")
	}
}

func TestRandomTrialsWavesGrowLogarithmically(t *testing.T) {
	// The O(log n) shape: wave counts for n=100 vs n=800 should stay
	// within a few of each other, far below linear growth.
	waves := func(n int) int {
		rng := graph.NewRand(uint64(n))
		h := graph.MustGNP(n, 8.0/float64(n), rng)
		cg := testCG(t, h)
		col := coloring.New(h.N(), h.MaxDegree())
		res, err := RandomTrials(cg, col, 1000, graph.NewRand(11))
		if err != nil {
			t.Fatal(err)
		}
		return res.Waves
	}
	w100, w800 := waves(100), waves(800)
	if w800 > 8*w100+16 {
		t.Fatalf("waves grew too fast: %d → %d", w100, w800)
	}
}

func TestPaletteSparsificationCompletes(t *testing.T) {
	rng := graph.NewRand(13)
	h := graph.MustGNP(200, 0.15, rng)
	cg := testCG(t, h)
	col := coloring.New(h.N(), h.MaxDegree())
	res, err := PaletteSparsification(cg, col, 1.0, 500, graph.NewRand(15))
	if err != nil {
		t.Fatal(err)
	}
	if err := coloring.VerifyComplete(h, col); err != nil {
		t.Fatal(err)
	}
	if res.Rounds == 0 {
		t.Fatal("no rounds recorded")
	}
}

func TestPaletteSparsificationSmallListsCanFail(t *testing.T) {
	// A clique needs Ω(log n)-sized lists (the ACK19 bound); a factor that
	// produces tiny lists must fail loudly rather than loop.
	h := graph.Clique(60)
	cg := testCG(t, h)
	col := coloring.New(h.N(), h.MaxDegree())
	_, err := PaletteSparsification(cg, col, 0.05, 200, graph.NewRand(17))
	if err == nil {
		// Small chance tiny lists suffice; accept but require properness.
		if verr := coloring.VerifyComplete(h, col); verr != nil {
			t.Fatal(verr)
		}
		t.Skip("tiny lists happened to succeed")
	}
}

func TestPaletteSparsificationEmptyGraph(t *testing.T) {
	h := graph.NewBuilder(0).Build()
	cg := testCG(t, h)
	col := coloring.New(0, 0)
	if _, err := PaletteSparsification(cg, col, 1, 10, graph.NewRand(1)); err != nil {
		t.Fatal(err)
	}
}
