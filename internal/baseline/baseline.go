// Package baseline implements the comparison algorithms the paper's result
// is measured against:
//
//   - Greedy — the centralized sequential (Δ+1)-coloring; the correctness
//     yardstick (always succeeds, no distributed cost).
//
//   - RandomTrials — the classic Johansson/Luby O(log n)-round algorithm:
//     every uncolored vertex repeatedly tries a uniform palette color. On a
//     cluster graph each wave must learn palette state, so the honest cost
//     is ⌈Δ/bandwidth⌉ rounds per wave (Figure 2's lower-bound primitive).
//
//   - PaletteSparsification — the FGH+24-style comparator: each vertex
//     samples an O(log² n)-color list up front and colors only within it.
//     List exchange is cheap, but the completion needs Θ(log n) waves and
//     the lists must be large enough, matching the O(log² n) round shape
//     the paper improves on.
package baseline

import (
	"fmt"
	"math"
	"math/rand/v2"

	"clustercolor/internal/cluster"
	"clustercolor/internal/coloring"
	"clustercolor/internal/graph"
	"clustercolor/internal/parwork"
)

// decideWave resolves one announce wave for both baselines: vertex v adopts
// tried[v] iff no neighbor holds it and no lower-ID neighbor tried it.
// Decisions are computed in parallel — they depend only on the pre-wave
// coloring and the tried array, since a lower-ID neighbor newly adopting c
// must have tried c — and applied sequentially in vertex order, preserving
// the deterministic write-apply contract. Reports whether any vertex was
// colored.
func decideWave(h *graph.Graph, col *coloring.Coloring, tried, win []int32) (bool, error) {
	n := h.N()
	if err := parwork.ForRange(n, func(lo, hi int) error {
		for v := lo; v < hi; v++ {
			c := tried[v]
			win[v] = coloring.None
			if c == coloring.None {
				continue
			}
			ok := true
			for _, u := range h.Neighbors(v) {
				w := int(u)
				if col.Get(w) == c || (w < v && tried[w] == c) {
					ok = false
					break
				}
			}
			if ok {
				win[v] = c
			}
		}
		return nil
	}); err != nil {
		return false, err
	}
	progress := false
	for v := 0; v < n; v++ {
		if win[v] == coloring.None {
			continue
		}
		if err := col.Set(v, win[v]); err != nil {
			return progress, err
		}
		progress = true
	}
	return progress, nil
}

// Greedy colors the graph sequentially with first-fit and returns the
// coloring; it always uses at most Δ+1 colors.
func Greedy(g *graph.Graph) (*coloring.Coloring, error) {
	col := coloring.New(g.N(), g.MaxDegree())
	for v := 0; v < g.N(); v++ {
		pal := coloring.Palette(g, col, v)
		if len(pal) == 0 {
			return nil, fmt.Errorf("baseline: greedy found empty palette at %d", v)
		}
		if err := col.Set(v, pal[0]); err != nil {
			return nil, err
		}
	}
	return col, nil
}

// Result reports a distributed baseline's outcome.
type Result struct {
	// Rounds is the G-round cost charged to the cluster graph's model.
	Rounds int64
	// Waves is the number of algorithm iterations used.
	Waves int
}

// RandomTrials runs the Johansson/Luby baseline on a cluster graph until
// total or maxWaves, charging the honest palette-learning cost per wave.
func RandomTrials(cg *cluster.CG, col *coloring.Coloring, maxWaves int, rng *rand.Rand) (*Result, error) {
	h := cg.H
	before := cg.Cost().Rounds()
	bw := cg.Cost().Bandwidth()
	paletteHops := (col.Delta() + bw - 1) / bw
	if paletteHops < 1 {
		paletteHops = 1
	}
	waves := 0
	tried := make([]int32, h.N())
	win := make([]int32, h.N())
	for ; waves < maxWaves; waves++ {
		if col.DomSize() == col.N() {
			break
		}
		// Palette learning + announce + respond.
		cg.ChargeHRounds("baseline/luby-palette", paletteHops, bw)
		cg.ChargeHRounds("baseline/luby-try", 2, 2*cg.IDBits())
		for i := range tried {
			tried[i] = coloring.None
		}
		for v := 0; v < h.N(); v++ {
			if col.IsColored(v) {
				continue
			}
			pal := coloring.Palette(h, col, v)
			if len(pal) == 0 {
				continue
			}
			tried[v] = pal[rng.IntN(len(pal))]
		}
		if _, err := decideWave(h, col, tried, win); err != nil {
			return nil, err
		}
	}
	if col.DomSize() != col.N() {
		return nil, fmt.Errorf("baseline: random trials incomplete after %d waves", maxWaves)
	}
	return &Result{Rounds: cg.Cost().Rounds() - before, Waves: waves}, nil
}

// PaletteSparsification runs the FGH+24-style list-based baseline: vertex v
// samples listFactor·log² n colors (at least deg+1-proportional), then only
// list colors are ever tried. Returns an error if the lists were too small
// to finish — the sparsification theorem's trade-off.
func PaletteSparsification(cg *cluster.CG, col *coloring.Coloring, listFactor float64, maxWaves int, rng *rand.Rand) (*Result, error) {
	h := cg.H
	before := cg.Cost().Rounds()
	n := h.N()
	if n == 0 {
		return &Result{}, nil
	}
	lg := math.Log2(float64(n) + 1)
	listSize := int(listFactor * lg * lg)
	if listSize < 4 {
		listSize = 4
	}
	if listSize > int(col.MaxColor()) {
		listSize = int(col.MaxColor())
	}
	// Sample lists; announcing a list costs listSize·log Δ bits, pipelined.
	// Lists are kept in draw order — ranging over the dedup map would leak
	// Go's randomized map iteration into the wave outcomes and break the
	// tables-are-a-pure-function-of-the-seed contract.
	lists := make([][]int32, n)
	for v := 0; v < n; v++ {
		seen := make(map[int32]struct{}, listSize)
		lst := make([]int32, 0, listSize)
		for len(lst) < listSize {
			c := int32(rng.IntN(int(col.MaxColor()))) + 1
			if _, dup := seen[c]; dup {
				continue
			}
			seen[c] = struct{}{}
			lst = append(lst, c)
		}
		lists[v] = lst
	}
	listBits := listSize * (cg.IDBits() / 2)
	cg.ChargeHRounds("baseline/ps-lists", 1, listBits)
	waves := 0
	tried := make([]int32, n)
	win := make([]int32, n)
	var avail []int32
	for ; waves < maxWaves; waves++ {
		if col.DomSize() == col.N() {
			break
		}
		cg.ChargeHRounds("baseline/ps-try", 2, 2*cg.IDBits())
		for i := range tried {
			tried[i] = coloring.None
		}
		for v := 0; v < n; v++ {
			if col.IsColored(v) {
				continue
			}
			avail = avail[:0]
			for _, c := range lists[v] {
				if coloring.Available(h, col, v, c) {
					avail = append(avail, c)
				}
			}
			if len(avail) == 0 {
				continue
			}
			tried[v] = avail[rng.IntN(len(avail))]
		}
		progress, err := decideWave(h, col, tried, win)
		if err != nil {
			return nil, err
		}
		if !progress && col.DomSize() != col.N() {
			return nil, fmt.Errorf("baseline: palette sparsification stuck with lists of %d colors", listSize)
		}
	}
	if col.DomSize() != col.N() {
		return nil, fmt.Errorf("baseline: palette sparsification incomplete after %d waves", maxWaves)
	}
	return &Result{Rounds: cg.Cost().Rounds() - before, Waves: waves}, nil
}
