package distsim

import (
	"testing"

	"clustercolor/internal/cluster"
	"clustercolor/internal/fingerprint"
	"clustercolor/internal/graph"
	"clustercolor/internal/network"
)

// FuzzWave runs the machine-level fingerprint wave on arbitrary small
// cluster graphs: whatever (n, topology, cluster size, redundancy, edge
// list, seed) the fuzzer invents, the wave must terminate within its round
// budget (the engine's budget turns a would-be deadlock into an error),
// never panic, byte-match the vertex-level aggregation, and pass the
// CheckBudget contract.
func FuzzWave(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{6, 0, 1, 5, 0, 1, 1, 2, 2, 3, 3, 0})
	f.Add([]byte{12, 1, 2, 9, 0, 1, 0, 2, 0, 3})         // path clusters
	f.Add([]byte{8, 2, 5, 3, 0, 1, 2, 3, 4, 5, 6, 7})    // star clusters, redundant links
	f.Add([]byte{10, 3, 4, 7, 0, 9, 1, 8, 2, 7, 3, 6})   // tree clusters
	f.Add([]byte{4, 0, 1, 1, 0, 1, 0, 1, 1, 0, 0, 1, 1}) // duplicate edges
	f.Add([]byte{20, 2, 3, 11})                          // edgeless
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		n := int(data[0]%20) + 2
		topo := []graph.ClusterTopology{
			graph.TopologySingleton, graph.TopologyPath, graph.TopologyStar, graph.TopologyTree,
		}[data[1]%4]
		spec := graph.ExpandSpec{
			Topology:           topo,
			MachinesPerCluster: int(data[2]%4) + 1,
			RedundantLinks:     int(data[2]%3) + 1,
		}
		seed := uint64(data[3])
		b := graph.NewBuilder(n)
		for i := 4; i+1 < len(data) && i < 84; i += 2 {
			u, v := int(data[i])%n, int(data[i+1])%n
			if u == v {
				continue
			}
			if err := b.AddEdge(u, v); err != nil {
				t.Fatalf("AddEdge(%d,%d) on n=%d: %v", u, v, n, err)
			}
		}
		h := b.Build()
		exp, err := graph.Expand(h, spec, graph.NewRand(seed^0xab))
		if err != nil {
			t.Fatalf("Expand: %v", err)
		}
		cost, err := network.NewCostModel(64)
		if err != nil {
			t.Fatal(err)
		}
		cg, err := cluster.New(h, exp, cost)
		if err != nil {
			t.Fatalf("cluster.New: %v", err)
		}
		trials := int(seed%12) + 1
		samples := fingerprint.SampleAll(h.N(), trials, graph.NewRand(seed))
		got, stats, err := FingerprintWave(cg, samples, 0)
		if err != nil {
			t.Fatalf("wave failed on n=%d m=%d topo=%v seed=%d: %v", h.N(), h.M(), topo, seed, err)
		}
		sub, err := network.NewCostModel(cg.Cost().Bandwidth())
		if err != nil {
			t.Fatal(err)
		}
		want := fingerprint.CollectNeighborSketches(cg.WithCost(sub), "fuzz/wave", samples, fingerprint.CollectOptions{})
		for v := 0; v < h.N(); v++ {
			for i := 0; i < trials; i++ {
				if got[v][i] != want[v][i] {
					t.Fatalf("vertex %d trial %d: machine %d != vertex %d (n=%d topo=%v seed=%d)",
						v, i, got[v][i], want[v][i], h.N(), topo, seed)
				}
			}
		}
		if budget := WaveRoundBudget(cg.Dilation); stats.Rounds > budget {
			t.Fatalf("wave took %d rounds, budget %d (dilation %d)", stats.Rounds, budget, cg.Dilation)
		}
		if err := CheckBudget("wave", stats, sub.Rounds(), 0); err != nil {
			t.Fatal(err)
		}
	})
}
