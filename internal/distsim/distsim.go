// Package distsim executes cluster-graph primitives at true machine
// granularity on the goroutine message-passing engine (network.Engine),
// rather than through the vertex-level cost-charged layer. It exists to
// validate the layer: a primitive executed here — real messages over real
// links, every machine an independent goroutine — must produce exactly the
// results the vertex-level simulation computes, and must respect the
// bandwidth cap with the round counts the cost model charges.
//
// The package is a conformance subsystem covering every cluster primitive
// the pipeline relies on:
//
//   - the fingerprint aggregation wave (Section 5 / Lemma 5.7) in this
//     file: leaders broadcast their cluster's geometric samples down the
//     support trees, boundary machines exchange sketches over
//     inter-cluster links, and the per-link maxima aggregate back up;
//     idempotence of max makes it immune to redundant inter-cluster links
//     (the Section 1.1 double-counting hazard);
//   - the canonical leader broadcast/exchange/convergecast H-round
//     (leaderround.go), the machine counterpart of cluster.CG.LeaderRound;
//   - the per-clique stage primitives — colorful matching, synchronized
//     color trial, put-aside donation — as an announce+gossip protocol
//     with leader-side replay (stage.go, replay.go).
//
// Conformance (conformance.go) is the differential harness tying them
// together: it traces the pipeline's stages via core.ColorTraced, re-runs
// each on the engine with the same RowSeed-derived seeds, and asserts
// byte-conformance, rounds ≤ charged (CheckBudget, budget.go), and the
// per-link bandwidth cap across the scenario matrix.
package distsim

import (
	"fmt"
	"sync"

	"clustercolor/internal/cluster"
	"clustercolor/internal/fingerprint"
	"clustercolor/internal/graph"
	"clustercolor/internal/network"
)

// phase tags of the wave protocol.
const (
	phaseDown     = iota // sketch travelling from the leader toward leaves
	phaseExchange        // sketch crossing an inter-cluster link
	phaseUp              // aggregated sketch travelling back to the leader
)

type payload struct {
	phase  int
	sketch fingerprint.Sketch
}

// waveMachine is one machine of the communication network running the
// fingerprint wave. All state is owned by the machine (the shared topology
// is read-only); Step is driven concurrently by the engine.
type waveMachine struct {
	t  *machineTopo
	id int

	mu sync.Mutex
	// own is the cluster's sample vector (held by the leader).
	own fingerprint.Samples
	// down is the sketch received from the parent (own samples at leader).
	down fingerprint.Sketch
	// acc accumulates the neighbor maxima on the way up.
	acc fingerprint.Sketch
	// pendingUp counts children yet to report.
	pendingUp int
	// pendingExchange counts cross-link peers yet to send their sketch
	// (each sends exactly one; waiting on all of them prevents losing
	// contributions from clusters with deeper trees).
	pendingExchange int
	sentDown        bool
	exchanged       bool
	sentUp          bool
	// result is the final neighbor sketch (leader only).
	result fingerprint.Sketch
	done   bool
}

func (m *waveMachine) Step(round int, inbox []network.Message) ([]network.Message, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []network.Message
	for _, msg := range inbox {
		p, ok := msg.Payload.(payload)
		if !ok {
			return nil, fmt.Errorf("distsim: machine %d got %T", m.id, msg.Payload)
		}
		switch p.phase {
		case phaseDown:
			if m.down != nil {
				return nil, fmt.Errorf("distsim: machine %d double down", m.id)
			}
			m.down = p.sketch.Clone()
		case phaseExchange:
			// Merge the neighbor cluster's sketch into the accumulator.
			if err := m.acc.Merge(p.sketch); err != nil {
				return nil, err
			}
			m.pendingExchange--
			if m.pendingExchange < 0 {
				return nil, fmt.Errorf("distsim: machine %d got excess exchange messages", m.id)
			}
		case phaseUp:
			if err := m.acc.Merge(p.sketch); err != nil {
				return nil, err
			}
			m.pendingUp--
			if m.pendingUp < 0 {
				return nil, fmt.Errorf("distsim: machine %d got excess up-messages", m.id)
			}
		}
	}
	// Leader seeds the down phase in round 0.
	if m.t.leader[m.id] && m.down == nil {
		m.down = fingerprint.NewSketch(len(m.own))
		if err := m.down.AddSamples(m.own); err != nil {
			return nil, err
		}
	}
	// Forward down once the sketch arrived.
	if m.down != nil && !m.sentDown {
		m.sentDown = true
		for _, c := range m.t.children[m.id] {
			out = append(out, m.send(int(c), phaseDown, m.down))
		}
	}
	// Exchange across inter-cluster links once we know our cluster's value.
	if m.down != nil && !m.exchanged {
		m.exchanged = true
		for _, ce := range m.t.cross[m.id] {
			out = append(out, m.send(int(ce.peer), phaseExchange, m.down))
		}
	}
	// Report up once every child reported and every expected exchange
	// message has arrived.
	if m.exchanged && m.pendingUp == 0 && m.pendingExchange == 0 && !m.sentUp {
		m.sentUp = true
		if m.t.leader[m.id] {
			m.result = m.acc.Clone()
			m.done = true
		} else {
			out = append(out, m.send(int(m.t.parent[m.id]), phaseUp, m.acc))
		}
	}
	return out, nil
}

func (m *waveMachine) send(to, phase int, s fingerprint.Sketch) network.Message {
	return network.Message{
		From:    m.id,
		To:      to,
		Bits:    s.EncodedBits(),
		Payload: payload{phase: phase, sketch: s.Clone()},
	}
}

// WaveRoundBudget is the provable round bound of the fingerprint wave on a
// cluster graph with the given dilation D (the maximum support-tree height):
//
//   - down: a machine at tree depth k first holds its cluster's sketch in
//     round k (the leader seeds it in round 0 and every hop costs one
//     round), so the deepest machine holds it by round D;
//   - exchange: a machine sends its cross-link sketches in the round it
//     first holds the down-sketch, so every exchange message is delivered
//     by round D+1;
//   - up: by induction, a machine at depth k has all child reports and all
//     exchange inputs by round 2D+1−k and reports up in that round, so the
//     leader (k = 0) completes during round 2D+1.
//
// Executing rounds 0..2D+1 takes 2D+2 = 2·(D+1) engine steps, and the D = 0
// case (singleton clusters: exchange in round 0, merge in round 1) meets
// the bound exactly, so the budget is tight.
func WaveRoundBudget(dilation int) int { return 2 * (dilation + 1) }

// FingerprintWave executes the Lemma 5.7 aggregation at machine level: each
// vertex's samples live at its leader; the returned sketches are the
// per-vertex neighbor maxima, computed purely by message passing. The
// engine's LinkStats are returned for bandwidth inspection.
//
// bandwidthBits caps per-link traffic per round; sketches larger than the
// cap make the engine fail, mirroring the model (callers pick the cap or
// pass 0 to disable, accounting pipelining separately).
func FingerprintWave(cg *cluster.CG, samples []fingerprint.Samples, bandwidthBits int) ([]fingerprint.Sketch, network.LinkStats, error) {
	return FingerprintWaveWith(cg, samples, bandwidthBits, network.SchedulerPooled)
}

// FingerprintWaveWith is FingerprintWave under an explicit engine
// scheduler; the wave must behave identically under all of them.
func FingerprintWaveWith(cg *cluster.CG, samples []fingerprint.Samples, bandwidthBits int, sched network.Scheduler) ([]fingerprint.Sketch, network.LinkStats, error) {
	wave, err := buildWaveMachines(cg, samples)
	if err != nil {
		return nil, network.LinkStats{}, err
	}
	machines := make([]network.Machine, len(wave))
	for i, wm := range wave {
		machines[i] = wm
	}
	eng, err := network.NewEngineWithScheduler(cg.G, machines, bandwidthBits, sched)
	if err != nil {
		return nil, network.LinkStats{}, err
	}
	defer eng.Close()
	if _, err := eng.Run(WaveRoundBudget(cg.Dilation), waveDone(wave)); err != nil {
		return nil, eng.Stats(), err
	}
	return waveResults(cg, wave), eng.Stats(), nil
}

// FingerprintWaveSharded is the wave on a partitioned substrate: machines of
// the communication graph G are split across shards of a MultiEngine, with
// messages between machines in different shards carried by the coordinator's
// boundary-exchange phase. The returned sketches and LinkStats must be
// byte-identical to FingerprintWave at every shard count; the exchanged row
// count is returned for traffic inspection.
func FingerprintWaveSharded(cg *cluster.CG, samples []fingerprint.Samples, bandwidthBits, shards int) ([]fingerprint.Sketch, network.LinkStats, int64, error) {
	wave, err := buildWaveMachines(cg, samples)
	if err != nil {
		return nil, network.LinkStats{}, 0, err
	}
	machines := make([]network.Machine, len(wave))
	for i, wm := range wave {
		machines[i] = wm
	}
	sg, err := graph.NewShardedGraph(cg.G, shards)
	if err != nil {
		return nil, network.LinkStats{}, 0, err
	}
	me, err := network.NewMultiEngine(sg, machines, bandwidthBits)
	if err != nil {
		return nil, network.LinkStats{}, 0, err
	}
	defer me.Close()
	if _, err := me.Run(WaveRoundBudget(cg.Dilation), waveDone(wave)); err != nil {
		exRows, _ := me.Exchanged()
		return nil, me.Stats(), exRows, err
	}
	exRows, _ := me.Exchanged()
	return waveResults(cg, wave), me.Stats(), exRows, nil
}

// buildWaveMachines constructs the wave protocol's machine set for cg.
func buildWaveMachines(cg *cluster.CG, samples []fingerprint.Samples) ([]*waveMachine, error) {
	g := cg.G
	if len(samples) != cg.H.N() {
		return nil, fmt.Errorf("distsim: %d sample vectors for %d vertices", len(samples), cg.H.N())
	}
	t := 0
	if len(samples) > 0 {
		t = len(samples[0])
	}
	topo := newMachineTopo(cg)
	wave := make([]*waveMachine, g.N())
	for mID := 0; mID < g.N(); mID++ {
		wm := &waveMachine{
			t:   topo,
			id:  mID,
			acc: fingerprint.NewSketch(t),
		}
		if topo.leader[mID] {
			wm.own = samples[int(topo.cluster[mID])]
		}
		wm.pendingUp = len(topo.children[mID])
		wm.pendingExchange = len(topo.cross[mID])
		wave[mID] = wm
	}
	return wave, nil
}

// waveDone reports whether every leader has its aggregated result.
func waveDone(wave []*waveMachine) func() bool {
	return func() bool {
		for _, wm := range wave {
			if wm.t.leader[wm.id] {
				wm.mu.Lock()
				done := wm.done
				wm.mu.Unlock()
				if !done {
					return false
				}
			}
		}
		return true
	}
}

// waveResults gathers the per-vertex neighbor sketches from the leaders.
func waveResults(cg *cluster.CG, wave []*waveMachine) []fingerprint.Sketch {
	out := make([]fingerprint.Sketch, cg.H.N())
	if len(wave) == 0 {
		return out
	}
	topo := wave[0].t
	for v := 0; v < cg.H.N(); v++ {
		wm := wave[topo.leaderOf[v]]
		wm.mu.Lock()
		out[v] = wm.result.Clone()
		wm.mu.Unlock()
	}
	return out
}
