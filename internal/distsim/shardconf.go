package distsim

import (
	"fmt"
	"math"
	"math/bits"

	"clustercolor/internal/acd"
	"clustercolor/internal/cluster"
	"clustercolor/internal/core"
	"clustercolor/internal/fingerprint"
	"clustercolor/internal/graph"
	"clustercolor/internal/network"
	"clustercolor/internal/parwork"
	"clustercolor/internal/shard"
	"clustercolor/internal/sketch"
)

// ShardReport summarizes one scenario's shard-conformance run at one shard
// count. A returned report means every layer byte-matched its unsharded
// counterpart; any divergence surfaces as an error instead.
type ShardReport struct {
	Scenario string `json:"scenario"`
	Seed     uint64 `json:"seed"`
	Shards   int    `json:"shards"`
	Vertices int    `json:"vertices"`
	Machines int    `json:"machines"`
	// WaveExchangedRows counts wave-protocol messages the MultiEngine
	// re-routed across shard boundaries.
	WaveExchangedRows int64 `json:"wave_exchanged_rows"`
	// DecompRounds is the decomposition's charged round count — equal on
	// both substrates by the conformance assertion.
	DecompRounds int64 `json:"decomp_rounds"`
	// DecompExchangedRows/Bits are the sketch rows (and deviation-encoded
	// bits) the shard engine's boundary exchanges shipped.
	DecompExchangedRows int64 `json:"decomp_exchanged_rows"`
	DecompExchangedBits int64 `json:"decomp_exchanged_bits"`
	// PipelineRounds is the full pipeline's charged rounds — also equal on
	// both substrates.
	PipelineRounds int64 `json:"pipeline_rounds"`
}

// ShardConformance is the partitioned substrate's differential harness: for
// one scenario it asserts, at the given shard count, that
//
//  1. the machine-level fingerprint wave on a MultiEngine (per-shard
//     sub-engines stitched by boundary exchange) produces byte-identical
//     sketches AND byte-identical LinkStats to the single engine — per-link
//     traffic of a partitioned run sums to the single-engine budgets — and
//     stays within the charged round budget (CheckBudget);
//  2. the vertex-level decomposition on the shard engine (per-shard arenas,
//     boundary-exchange phases, merged boundary rows) reproduces the
//     unsharded decomposition and profile bit for bit with equal charged
//     rounds;
//  3. the full coloring pipeline with Params.Shards set emits the exact
//     coloring and round count of the unsharded run.
func ShardConformance(sc Scenario, seed uint64, engineBandwidth, shards int) (*ShardReport, error) {
	if engineBandwidth <= 0 {
		engineBandwidth = DefaultEngineBandwidth
	}
	h, err := sc.Build(seed)
	if err != nil {
		return nil, fmt.Errorf("distsim: %s: build: %w", sc.Name, err)
	}
	exp, err := graph.Expand(h, sc.Expand, graph.NewRand(seed^0xc0ffee))
	if err != nil {
		return nil, fmt.Errorf("distsim: %s: expand: %w", sc.Name, err)
	}
	nG := exp.G.N()
	if nG < 2 {
		nG = 2
	}
	modelB := 2*bits.Len(uint(nG)) + 16
	cost, err := network.NewCostModel(modelB)
	if err != nil {
		return nil, err
	}
	cg, err := cluster.New(h, exp, cost)
	if err != nil {
		return nil, fmt.Errorf("distsim: %s: cluster: %w", sc.Name, err)
	}
	rep := &ShardReport{
		Scenario: sc.Name,
		Seed:     seed,
		Shards:   shards,
		Vertices: h.N(),
		Machines: exp.G.N(),
	}
	if err := conformShardWave(cg, seed, engineBandwidth, shards, rep); err != nil {
		return nil, fmt.Errorf("distsim: %s: %w", sc.Name, err)
	}
	if err := conformShardDecomp(cg, seed, shards, rep); err != nil {
		return nil, fmt.Errorf("distsim: %s: %w", sc.Name, err)
	}
	if err := conformShardPipeline(cg, sc, seed, shards, rep); err != nil {
		return nil, fmt.Errorf("distsim: %s: %w", sc.Name, err)
	}
	return rep, nil
}

// conformShardWave runs the machine-granularity fingerprint wave on both
// substrates and asserts byte-identical sketches and LinkStats.
func conformShardWave(cg *cluster.CG, seed uint64, engineBandwidth, shards int, rep *ShardReport) error {
	samples := fingerprint.SampleAll(cg.H.N(), 24, graph.NewRand(seed^0x5eed))
	sub, err := network.NewCostModel(cg.Cost().Bandwidth())
	if err != nil {
		return err
	}
	fingerprint.CollectNeighborSketches(cg.WithCost(sub), "conf/wave", samples, fingerprint.CollectOptions{})
	want, wantStats, err := FingerprintWaveWith(cg, samples, engineBandwidth, network.SchedulerPooled)
	if err != nil {
		return fmt.Errorf("wave: %w", err)
	}
	got, gotStats, exRows, err := FingerprintWaveSharded(cg, samples, engineBandwidth, shards)
	if err != nil {
		return fmt.Errorf("sharded wave: %w", err)
	}
	for v := 0; v < cg.H.N(); v++ {
		for i := range want[v] {
			if got[v][i] != want[v][i] {
				return fmt.Errorf("sharded wave: vertex %d trial %d: sharded %d != unsharded %d", v, i, got[v][i], want[v][i])
			}
		}
	}
	if gotStats != wantStats {
		return fmt.Errorf("sharded wave: LinkStats diverge: sharded %+v unsharded %+v — per-link budgets must sum to the single-engine budgets", gotStats, wantStats)
	}
	if err := CheckBudget("sharded-wave", gotStats, sub.Rounds(), engineBandwidth); err != nil {
		return err
	}
	if shards == 1 && exRows != 0 {
		return fmt.Errorf("sharded wave: single shard exchanged %d rows", exRows)
	}
	rep.WaveExchangedRows = exRows
	return nil
}

// conformShardDecomp runs the decomposition + profile on both substrates
// with identical seeds and asserts bit-identical outputs and equal charges.
func conformShardDecomp(cg *cluster.CG, seed uint64, shards int, rep *ShardReport) error {
	eps, ell := 0.25, 8.0
	delta := float64(cg.H.MaxDegree())
	runOne := func(k int) (*acd.Decomposition, *acd.Profile, int64, *shard.Engine[int8], error) {
		sub, err := network.NewCostModel(cg.Cost().Bandwidth())
		if err != nil {
			return nil, nil, 0, nil, err
		}
		run := cg.WithCost(sub)
		rng := parwork.StreamRNG(seed ^ 0xdec0)
		ws := acd.NewWorkspace()
		if k <= 0 {
			d, err := acd.ComputeWith(run, eps, rng, ws)
			if err != nil {
				return nil, nil, 0, nil, err
			}
			p, err := acd.BuildProfileWith(run, d, delta, ell, rng, ws)
			return d, p, sub.Rounds(), nil, err
		}
		sg, err := graph.NewShardedGraph(run.H, k)
		if err != nil {
			return nil, nil, 0, nil, err
		}
		se := shard.NewEngine(sg, sketch.MaxKernel{})
		d, err := acd.ComputeShardedWith(run, se, eps, rng, ws)
		if err != nil {
			return nil, nil, 0, nil, err
		}
		p, err := acd.BuildProfileShardedWith(run, se, d, delta, ell, rng, ws)
		return d, p, sub.Rounds(), se, err
	}
	wantD, wantP, wantRounds, _, err := runOne(0)
	if err != nil {
		return fmt.Errorf("decomp: %w", err)
	}
	gotD, gotP, gotRounds, se, err := runOne(shards)
	if err != nil {
		return fmt.Errorf("sharded decomp: %w", err)
	}
	for v := range wantD.CliqueOf {
		if gotD.CliqueOf[v] != wantD.CliqueOf[v] {
			return fmt.Errorf("sharded decomp: CliqueOf[%d] = %d, want %d", v, gotD.CliqueOf[v], wantD.CliqueOf[v])
		}
	}
	if len(gotD.Cliques) != len(wantD.Cliques) {
		return fmt.Errorf("sharded decomp: %d cliques, want %d", len(gotD.Cliques), len(wantD.Cliques))
	}
	for i := range wantP.AvgExt {
		if math.Float64bits(gotP.AvgExt[i]) != math.Float64bits(wantP.AvgExt[i]) || gotP.IsCabal[i] != wantP.IsCabal[i] {
			return fmt.Errorf("sharded decomp: profile of clique %d diverges", i)
		}
	}
	for v := range wantP.ExtDeg {
		if math.Float64bits(gotP.ExtDeg[v]) != math.Float64bits(wantP.ExtDeg[v]) {
			return fmt.Errorf("sharded decomp: ExtDeg[%d] diverges", v)
		}
	}
	if gotRounds != wantRounds {
		return fmt.Errorf("sharded decomp: charged %d rounds, want %d — sharding must not change the budget", gotRounds, wantRounds)
	}
	rep.DecompRounds = gotRounds
	if se != nil {
		rep.DecompExchangedRows = se.Stats.Rows
		rep.DecompExchangedBits = se.Stats.Bits
	}
	return nil
}

// conformShardPipeline runs the full coloring with and without
// Params.Shards and asserts the exact coloring and round count.
func conformShardPipeline(cg *cluster.CG, sc Scenario, seed uint64, shards int, rep *ShardReport) error {
	runOne := func(k int) ([]int32, int64, *core.Stats, error) {
		sub, err := network.NewCostModel(cg.Cost().Bandwidth())
		if err != nil {
			return nil, 0, nil, err
		}
		run := cg.WithCost(sub)
		params := core.DefaultParams(cg.H.N())
		if sc.Params != nil {
			params = sc.Params(cg.H.N())
		}
		params.Seed = seed
		params.Shards = k
		col, stats, err := core.Color(run, params)
		if err != nil {
			return nil, 0, nil, err
		}
		out := make([]int32, cg.H.N())
		for v := range out {
			out[v] = col.Get(v)
		}
		return out, sub.Rounds(), stats, nil
	}
	want, wantRounds, _, err := runOne(0)
	if err != nil {
		return fmt.Errorf("pipeline: %w", err)
	}
	got, gotRounds, stats, err := runOne(shards)
	if err != nil {
		return fmt.Errorf("sharded pipeline: %w", err)
	}
	for v := range want {
		if got[v] != want[v] {
			return fmt.Errorf("sharded pipeline: color of %d = %d, want %d", v, got[v], want[v])
		}
	}
	if gotRounds != wantRounds {
		return fmt.Errorf("sharded pipeline: charged %d rounds, want %d", gotRounds, wantRounds)
	}
	if shards > 1 && stats.Path == "high-degree" && stats.Shards != shards {
		return fmt.Errorf("sharded pipeline: stats report %d shards, want %d", stats.Shards, shards)
	}
	rep.PipelineRounds = gotRounds
	return nil
}
