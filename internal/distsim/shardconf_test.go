package distsim

import (
	"runtime"
	"testing"

	"clustercolor/internal/parwork"
)

// TestShardConformanceMatrix is the partitioned substrate's acceptance
// gate: for every scenario of the matrix and shard counts 1, 2, and 4, the
// machine-level wave on the multi-engine, the vertex-level decomposition on
// the shard engine, and the full pipeline with Params.Shards must all
// byte-match their single-address-space counterparts with identical charged
// rounds and link budgets.
func TestShardConformanceMatrix(t *testing.T) {
	for _, sc := range Matrix() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			for _, shards := range []int{1, 2, 4} {
				rep, err := ShardConformance(sc, 2, 0, shards)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				if rep.PipelineRounds <= 0 || rep.DecompRounds < 0 {
					t.Fatalf("shards=%d: implausible rounds %+v", shards, rep)
				}
				if shards == 1 && (rep.WaveExchangedRows != 0 || rep.DecompExchangedRows != 0) {
					t.Fatalf("shards=1 exchanged traffic: %+v", rep)
				}
				if shards > 1 && rep.WaveExchangedRows == 0 {
					t.Fatalf("shards=%d: wave crossed no shard boundaries on %s", shards, sc.Name)
				}
			}
		})
	}
}

// TestShardConformanceRace is the race-mode cell the CI runs under -race:
// shards=4 at full parallelism, so every concurrent surface of the
// partitioned path — per-shard pools, boundary exchanges, the multi-engine's
// compute/exchange/deliver phases — runs at once.
func TestShardConformanceRace(t *testing.T) {
	prev := parwork.SetParallelism(runtime.NumCPU())
	defer parwork.SetParallelism(prev)
	for _, name := range []string{"gnp/singleton", "planted/redundant"} {
		if _, err := ShardConformance(scenarioByName(t, name), 7, 0, 4); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
