package distsim

import "testing"

// TestStreamConformanceMatrix is the streaming construction's acceptance
// gate: for every scenario of the matrix and shard counts 1, 2, and 4,
// building the slices from an edge stream — no global CSR — must be
// byte-identical to partitioning the materialized graph, and the sharded
// decomposition over the streamed slices must reproduce the materialized
// run's bits, charged rounds, and boundary-exchange traffic exactly.
func TestStreamConformanceMatrix(t *testing.T) {
	for _, sc := range Matrix() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			for _, shards := range []int{1, 2, 4} {
				rep, err := StreamConformance(sc, 2, shards)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				if rep.DecompRounds < 0 {
					t.Fatalf("shards=%d: implausible rounds %+v", shards, rep)
				}
				if rep.PeakBufferedEdges <= 0 {
					t.Fatalf("shards=%d: builder buffered no edges on %s", shards, sc.Name)
				}
				if shards == 1 && rep.DecompExchangedRows != 0 {
					t.Fatalf("shards=1 exchanged traffic: %+v", rep)
				}
			}
		})
	}
}
