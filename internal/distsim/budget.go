package distsim

import (
	"fmt"

	"clustercolor/internal/network"
)

// CommRounds returns the number of message-delivering rounds of an engine
// run: the engine's first Step (round 0) only composes initial messages, so
// a protocol that ran R Steps used the links R−1 times. This is the number
// the cost model's charged rounds are compared against.
func CommRounds(stats network.LinkStats) int {
	if stats.Rounds <= 0 {
		return 0
	}
	return stats.Rounds - 1
}

// CheckBudget is the reusable conformance assertion every machine-level
// primitive must pass (the generalization of the original wave bandwidth
// test): the communication rounds the engine executed never exceed what the
// cost model charged for the same primitive, and no single link carried
// more than bandwidthBits in any round (0 disables the bandwidth check —
// the engine itself enforces a positive cap during the run, so the check
// here mostly guards stats plumbing).
func CheckBudget(primitive string, stats network.LinkStats, chargedRounds int64, bandwidthBits int) error {
	if comm := CommRounds(stats); int64(comm) > chargedRounds {
		return fmt.Errorf("distsim: %s used %d communication rounds but the cost model charged only %d",
			primitive, comm, chargedRounds)
	}
	if bandwidthBits > 0 && stats.MaxLinkBits > bandwidthBits {
		return fmt.Errorf("distsim: %s pushed %d bits over a link in one round, cap %d",
			primitive, stats.MaxLinkBits, bandwidthBits)
	}
	return nil
}
