package distsim

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"clustercolor/internal/coloring"
	"clustercolor/internal/core"
	"clustercolor/internal/fingerprint"
	"clustercolor/internal/parwork"
	"clustercolor/internal/prng"
)

// A clique's leaders replay the vertex-level decision procedure of their
// stage from the gossiped records and the shared seed. Every step below
// mirrors its vertex-level counterpart statement for statement —
// matching.Sampling / FingerprintMatching / ColorPairs, the sct.Run trial,
// and putaside.ColorPutAside — consuming the derived RNG stream in the
// identical order, so the outcome is byte-identical by construction and any
// divergence (missing information, wrong message content, order dependence)
// fails the conformance byte-comparison. Availability and palette queries
// run through coloring.PaletteScratch over the received bitsets: the same
// bitset machinery the vertex-level hot paths use, assembled from messages
// instead of from the graph.

// cliqueState is a leader's materialized view of its clique: evolving
// member colors plus the static record data.
type cliqueState struct {
	rt      *cliqueStatics
	color   []int32 // evolving member colors (snapshot at start)
	scratch *coloring.PaletteScratch
}

type cliqueStatics struct {
	n        int // H vertices (for min-wise hash domains)
	maxColor int32
	members  []int
	idxOf    map[int]int
	adj      [][]uint64
	ext      [][]uint64
}

func newCliqueState(rt *stageRuntime, k int, records []memberRecord) *cliqueState {
	members := rt.spec.members(k)
	st := &cliqueState{
		rt: &cliqueStatics{
			n:        rt.n,
			maxColor: int32(rt.delta + 1),
			members:  members,
			idxOf:    make(map[int]int, len(members)),
			adj:      make([][]uint64, len(members)),
			ext:      make([][]uint64, len(members)),
		},
		color:   make([]int32, len(members)),
		scratch: coloring.NewPaletteScratch(),
	}
	for j, v := range members {
		st.rt.idxOf[v] = j
	}
	for _, rec := range records {
		st.color[rec.idx] = rec.color
		st.rt.adj[rec.idx] = rec.adj
		st.rt.ext[rec.idx] = rec.ext
	}
	return st
}

// stageRNG reconstructs the per-clique RNG stream exactly as the parallel
// vertex-level stage loop does from its RowSeed-derived seed.
func stageRNG(seed uint64) *rand.Rand { return parwork.StreamRNG(seed) }

func (st *cliqueState) hasEdge(i, j int) bool {
	return st.rt.adj[i][j>>6]&(1<<uint(j&63)) != 0
}

func (st *cliqueState) extHolds(i int, c int32) bool {
	return st.rt.ext[i][c>>6]&(1<<uint(c&63)) != 0
}

// memberNeighborHolds reports whether a member-neighbor of i currently
// holds c, optionally excluding one member.
func (st *cliqueState) memberNeighborHolds(i int, c int32, exclude int) bool {
	for j := range st.rt.members {
		if j == i || j == exclude || !st.hasEdge(i, j) {
			continue
		}
		if st.color[j] == c {
			return true
		}
	}
	return false
}

// available mirrors coloring.Available over the message-built neighborhood.
func (st *cliqueState) available(i int, c int32) bool {
	if c < 1 || c > st.rt.maxColor {
		return false
	}
	return !st.extHolds(i, c) && !st.memberNeighborHolds(i, c, -1)
}

// usedScratch mirrors PaletteScratch.Load for member i: the scratch holds
// φ(N(member i)) assembled from the external bitset and the current member
// colors; LoadedAvailable and FreeColors then answer exactly as they do for
// the vertex-level code.
func (st *cliqueState) usedScratch(i int) *coloring.PaletteScratch {
	s := st.scratch
	s.Reset(st.rt.maxColor)
	s.MarkWords(st.rt.ext[i])
	for j := range st.rt.members {
		if j != i && st.hasEdge(i, j) {
			s.Mark(st.color[j])
		}
	}
	return s
}

// properAt mirrors putaside's post-swap safety check.
func (st *cliqueState) properAt(i int) bool {
	c := st.color[i]
	if c == coloring.None {
		return true
	}
	return !st.extHolds(i, c) && !st.memberNeighborHolds(i, c, -1)
}

// --- colorful matching ---------------------------------------------------

// replayMatching mirrors core.MatchingJob: matching.Sampling with the
// optional fingerprint backup (FingerprintMatching + ColorPairs).
func (st *cliqueState) replayMatching(task core.MatchingTask, seed uint64) (int, error) {
	rng := stageRNG(seed)
	repeats, err := st.replaySampling(task, rng)
	if err != nil {
		return 0, err
	}
	if task.WithFingerprint && repeats < task.TargetRepeats && len(task.Members) >= 8 {
		var uncolored []int
		for i := range st.rt.members {
			if st.color[i] == coloring.None {
				uncolored = append(uncolored, i)
			}
		}
		if len(uncolored) >= 4 {
			pairs, err := st.replayFingerprintMatching(uncolored, task.FingerprintTrials, task.TargetRepeats-repeats, rng)
			if err != nil {
				return 0, err
			}
			colored, err := st.replayColorPairs(pairs, task.ReservedMax, rng)
			if err != nil {
				return 0, err
			}
			repeats += colored
		}
	}
	return repeats, nil
}

// replaySampling mirrors matching.Sampling. Iterating the color classes in
// ascending order is equivalent to the vertex code's map iteration: a
// vertex proposes exactly one color per round, and a class's outcome
// depends only on colors equal to it, so classes are independent.
func (st *cliqueState) replaySampling(task core.MatchingTask, rng *rand.Rand) (int, error) {
	if len(task.Members) == 0 {
		return 0, fmt.Errorf("distsim: empty clique in matching replay")
	}
	rounds := task.Rounds
	if rounds <= 0 {
		rounds = 8
	}
	if task.ReservedMax >= st.rt.maxColor {
		return 0, fmt.Errorf("distsim: reserved prefix %d leaves no colors", task.ReservedMax)
	}
	repeats := 0
	for r := 0; r < rounds; r++ {
		if task.TargetRepeats > 0 && repeats >= task.TargetRepeats {
			break
		}
		byColor := make(map[int32][]int)
		for i := range st.rt.members {
			if st.color[i] != coloring.None {
				continue
			}
			c := task.ReservedMax + 1 + int32(rng.IntN(int(st.rt.maxColor-task.ReservedMax)))
			byColor[c] = append(byColor[c], i)
		}
		classes := make([]int, 0, len(byColor))
		for c := range byColor {
			classes = append(classes, int(c))
		}
		sort.Ints(classes)
		for _, ci := range classes {
			c := int32(ci)
			var ok []int
			for _, i := range byColor[c] {
				if st.available(i, c) {
					ok = append(ok, i)
				}
			}
			var group []int
			for _, i := range ok {
				indep := true
				for _, j := range group {
					if st.hasEdge(i, j) {
						indep = false
						break
					}
				}
				if indep {
					group = append(group, i)
				}
			}
			if len(group) < 2 {
				continue
			}
			for _, i := range group {
				st.color[i] = c
			}
			repeats += len(group) - 1
		}
	}
	return repeats, nil
}

// replayFingerprintMatching mirrors matching.FingerprintMatching over the
// uncolored members (member indices in). Returned pairs hold member indices.
func (st *cliqueState) replayFingerprintMatching(in []int, trials, targetPairs int, rng *rand.Rand) ([][2]int, error) {
	k := trials
	if k <= 0 {
		return nil, fmt.Errorf("distsim: trial count %d must be positive", k)
	}
	if len(in) < 2 {
		return nil, fmt.Errorf("distsim: cabal of size %d too small", len(in))
	}
	inSet := make(map[int]bool, len(in))
	for _, i := range in {
		inSet[i] = true
	}
	samples := make(map[int]fingerprint.Samples, len(in))
	for _, i := range in {
		samples[i] = fingerprint.NewSamples(k, rng)
	}
	yK := fingerprint.NewSketch(k)
	for _, i := range in {
		if err := yK.AddSamples(samples[i]); err != nil {
			return nil, err
		}
	}
	yV := make(map[int]fingerprint.Sketch, len(in))
	for _, i := range in {
		s := fingerprint.NewSketch(k)
		for _, j := range in {
			if j != i && st.hasEdge(i, j) {
				if err := s.AddSamples(samples[j]); err != nil {
					return nil, err
				}
			}
		}
		yV[i] = s
	}
	uniqueMaxCount := make(map[int]int)
	type trial struct {
		u    int
		anti []int
	}
	var kept []trial
	for t := 0; t < k; t++ {
		maxVal := yK[t]
		var holder, count int
		for _, i := range in {
			if samples[i][t] == maxVal {
				holder = i
				count++
				if count > 1 {
					break
				}
			}
		}
		if count != 1 {
			continue
		}
		uniqueMaxCount[holder]++
		if uniqueMaxCount[holder] > 1 {
			continue
		}
		var anti []int
		for _, i := range in {
			if i != holder && yV[i][t] != maxVal {
				anti = append(anti, i)
			}
		}
		if len(anti) == 0 {
			continue
		}
		kept = append(kept, trial{u: holder, anti: anti})
	}
	type pick struct{ u, w int }
	var picks []pick
	for _, tr := range kept {
		// The min-wise hash runs over vertex identifiers, as at vertex level.
		h, err := prng.NewMinWiseHash(st.rt.n, 0.5, rng)
		if err != nil {
			return nil, err
		}
		ids := make([]int, len(tr.anti))
		for a, i := range tr.anti {
			ids[a] = st.rt.members[i]
		}
		w := h.ArgMin(ids)
		if w < 0 {
			continue
		}
		picks = append(picks, pick{u: tr.u, w: st.rt.idxOf[w]})
	}
	sampledAsW := make(map[int]bool)
	for _, p := range picks {
		sampledAsW[p.w] = true
	}
	usedW := make(map[int]bool)
	var pairs [][2]int
	for _, p := range picks {
		if sampledAsW[p.u] || usedW[p.w] {
			continue
		}
		usedW[p.w] = true
		pairs = append(pairs, [2]int{p.u, p.w})
		if targetPairs > 0 && len(pairs) >= targetPairs {
			break
		}
	}
	seen := make(map[int]bool)
	for _, p := range pairs {
		if st.hasEdge(p[0], p[1]) {
			return nil, fmt.Errorf("distsim: pair {%d,%d} is an edge, not an anti-edge", p[0], p[1])
		}
		if seen[p[0]] || seen[p[1]] {
			return nil, fmt.Errorf("distsim: pair {%d,%d} reuses a matched vertex", p[0], p[1])
		}
		seen[p[0]] = true
		seen[p[1]] = true
	}
	return pairs, nil
}

// replayColorPairs mirrors matching.ColorPairs (pairs hold member indices).
func (st *cliqueState) replayColorPairs(pairs [][2]int, reservedMax int32, rng *rand.Rand) (int, error) {
	if reservedMax >= st.rt.maxColor {
		return 0, fmt.Errorf("distsim: reserved prefix %d leaves no colors", reservedMax)
	}
	spaceLen := int(st.rt.maxColor - reservedMax)
	colored := 0
	const maxRounds = 40
	done := make([]bool, len(pairs))
	tried := make([]int32, len(pairs))
	for r := 0; r < maxRounds && colored < len(pairs); r++ {
		for i := range tried {
			tried[i] = coloring.None
		}
		for i, p := range pairs {
			if done[i] {
				continue
			}
			c := reservedMax + 1 + int32(rng.IntN(spaceLen))
			if st.available(p[0], c) && st.available(p[1], c) {
				tried[i] = c
			}
		}
		for i, p := range pairs {
			c := tried[i]
			if c == coloring.None {
				continue
			}
			conflict := false
			for j, q := range pairs {
				if j >= i || tried[j] != c {
					continue
				}
				if st.adjacentPairs(p, q) {
					conflict = true
					break
				}
			}
			if conflict {
				continue
			}
			st.color[p[0]] = c
			st.color[p[1]] = c
			done[i] = true
			colored++
		}
	}
	return colored, nil
}

func (st *cliqueState) adjacentPairs(p, q [2]int) bool {
	for _, a := range p {
		for _, b := range q {
			if a == b || st.hasEdge(a, b) {
				return true
			}
		}
	}
	return false
}

// --- synchronized color trial --------------------------------------------

// cliqueCounts mirrors coloring.BuildCliquePalette: per-color member usage
// counts plus the ascending free list.
func (st *cliqueState) cliqueCounts() (counts []int32, free []int32) {
	counts = make([]int32, st.rt.maxColor+1)
	for _, c := range st.color {
		if c != coloring.None {
			counts[c]++
		}
	}
	for c := int32(1); c <= st.rt.maxColor; c++ {
		if counts[c] == 0 {
			free = append(free, c)
		}
	}
	return counts, free
}

// replaySCT mirrors core.SCTJob + sct.Run. The clique palette is built
// through the PaletteScratch bitset — Mark each member color, read the free
// list back — the same machinery BuildCliquePalette's counts correspond to.
func (st *cliqueState) replaySCT(task core.SCTTask, seed uint64) (int, error) {
	rng := stageRNG(seed)
	s := st.scratch
	s.Reset(st.rt.maxColor)
	for _, c := range st.color {
		s.Mark(c) // Mark ignores None
	}
	freeAll := s.FreeColors()
	capacity := 0
	for _, c := range freeAll {
		if c > task.ReservedMax {
			capacity++
		}
	}
	var participants []int // member indices
	for j := range st.rt.members {
		if st.color[j] != coloring.None || !task.Inlier[j] || task.Exclude[j] {
			continue
		}
		if len(participants) == capacity {
			break
		}
		participants = append(participants, j)
	}
	if len(participants) == 0 {
		return 0, nil
	}
	// sct.Run rebuilds the palette (unchanged since the capacity pass).
	free := make([]int32, 0, capacity)
	for _, c := range freeAll {
		if c > task.ReservedMax {
			free = append(free, c)
		}
	}
	if len(participants) > len(free) {
		return 0, fmt.Errorf("distsim: %d participants but only %d non-reserved palette colors", len(participants), len(free))
	}
	permSeed := rng.Uint64()
	perm := prng.Permutation(len(participants), permSeed)
	candidate := make([]int32, len(st.rt.members))
	for pos, j := range participants {
		candidate[j] = free[perm[pos]]
	}
	colored := 0
	for _, j := range participants {
		c := candidate[j]
		ok := true
		if st.extHolds(j, c) {
			ok = false
		}
		if ok {
			for w := range st.rt.members {
				if w == j || !st.hasEdge(j, w) {
					continue
				}
				if st.color[w] == c {
					ok = false
					break
				}
				if candidate[w] == c && st.rt.members[w] < st.rt.members[j] {
					ok = false
					break
				}
			}
		}
		if ok {
			st.color[j] = c
			colored++
		}
	}
	return colored, nil
}

// --- put-aside donation --------------------------------------------------

// replayDonate mirrors core.DonateJob + putaside.ColorPutAside.
func (st *cliqueState) replayDonate(task core.DonateTask, seed uint64) (core.DonateAux, error) {
	if len(task.PutAside) == 0 {
		return core.DonateAux{}, nil
	}
	rng := stageRNG(seed)
	if task.BlockSize <= 0 {
		return core.DonateAux{}, fmt.Errorf("distsim: block size %d must be positive", task.BlockSize)
	}
	if task.SampleTries <= 0 {
		return core.DonateAux{}, fmt.Errorf("distsim: sample tries %d must be positive", task.SampleTries)
	}
	aux := core.DonateAux{}
	uncolored := make([]int, 0, len(task.PutAside)) // member indices, put-aside order
	for _, v := range task.PutAside {
		i := st.rt.idxOf[v]
		if st.color[i] != coloring.None {
			return core.DonateAux{}, fmt.Errorf("distsim: put-aside vertex %d already colored", v)
		}
		uncolored = append(uncolored, i)
	}
	counts, free := st.cliqueCounts()
	if len(free) >= task.FreeColorThreshold {
		aux.Free = st.replayTryFreeColors(uncolored, free, task.SampleTries, rng)
		uncolored = st.stillUncolored(uncolored)
	}
	if len(uncolored) > 0 {
		donated, err := st.replayDonateCore(uncolored, counts, free, task, rng)
		if err != nil {
			return core.DonateAux{}, err
		}
		aux.Donated = donated
		uncolored = st.stillUncolored(uncolored)
	}
	if len(uncolored) > 0 {
		aux.Fallback = st.replayFallbackExact(uncolored, rng)
	}
	return aux, nil
}

func (st *cliqueState) stillUncolored(is []int) []int {
	var out []int
	for _, i := range is {
		if st.color[i] == coloring.None {
			out = append(out, i)
		}
	}
	return out
}

// replayTryFreeColors mirrors putaside.tryFreeColors.
func (st *cliqueState) replayTryFreeColors(uncolored []int, free []int32, sampleTries int, rng *rand.Rand) int {
	if len(free) == 0 {
		return 0
	}
	colored := 0
	taken := make(map[int32]bool)
	for _, i := range uncolored {
		used := st.usedScratch(i)
		var chosen int32
		for try := 0; try < sampleTries; try++ {
			c := free[rng.IntN(len(free))]
			if taken[c] {
				continue
			}
			if used.LoadedAvailable(c) {
				chosen = c
				break
			}
		}
		if chosen == coloring.None {
			continue
		}
		taken[chosen] = true
		st.color[i] = chosen
		colored++
	}
	return colored
}

type donateGroupKey struct {
	recol int32
	block int32
}

// replayDonateCore mirrors putaside.donate. counts and free are the
// clique-palette snapshot taken at ColorPutAside entry (donate deliberately
// works from that stale build, as the vertex code does).
func (st *cliqueState) replayDonateCore(uncolored []int, counts []int32, free []int32,
	task core.DonateTask, rng *rand.Rand) (int, error) {
	inPut := make([]bool, len(st.rt.members))
	for _, v := range task.PutAside {
		inPut[st.rt.idxOf[v]] = true
	}
	var qK []int
	for j := range st.rt.members {
		if inPut[j] || st.color[j] == coloring.None {
			continue
		}
		if !task.Inlier[j] || task.Forbidden[j] {
			continue
		}
		if counts[st.color[j]] != 1 {
			continue
		}
		qK = append(qK, j)
	}
	if len(qK) == 0 {
		return 0, nil
	}
	if len(free) == 0 {
		return 0, nil
	}
	groups := make(map[donateGroupKey][]int)
	for _, j := range qK {
		c := free[rng.IntN(len(free))]
		if !st.available(j, c) {
			continue
		}
		block := (st.color[j] - 1) / int32(task.BlockSize)
		key := donateGroupKey{recol: c, block: block}
		groups[key] = append(groups[key], j)
	}
	keys := make([]donateGroupKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if len(groups[a]) != len(groups[b]) {
			return len(groups[a]) > len(groups[b])
		}
		if a.recol != b.recol {
			return a.recol < b.recol
		}
		return a.block < b.block
	})
	usedRecol := make(map[int32]bool)
	assignment := make(map[int]donateGroupKey)
	gi := 0
	for _, u := range uncolored {
		for gi < len(keys) {
			k := keys[gi]
			gi++
			if usedRecol[k.recol] {
				continue
			}
			usedRecol[k.recol] = true
			assignment[u] = k
			break
		}
	}
	usedDonor := make(map[int]bool)
	donated := 0
	for _, u := range uncolored {
		key, ok := assignment[u]
		if !ok {
			continue
		}
		donors := groups[key]
		used := st.usedScratch(u)
		donor := -1
		for try := 0; try < task.SampleTries && try < 4*len(donors); try++ {
			j := donors[rng.IntN(len(donors))]
			if usedDonor[j] {
				continue
			}
			if used.LoadedAvailable(st.color[j]) || st.onlyBlockerIsDonor(u, j) {
				donor = j
				break
			}
		}
		if donor < 0 {
			continue
		}
		usedDonor[donor] = true
		donatedColor := st.color[donor]
		st.color[donor] = key.recol
		st.color[u] = donatedColor
		if !st.properAt(donor) || !st.properAt(u) {
			st.color[u] = coloring.None
			st.color[donor] = donatedColor
			continue
		}
		donated++
	}
	return donated, nil
}

// onlyBlockerIsDonor mirrors putaside.onlyBlockerIsDonor for member indices.
func (st *cliqueState) onlyBlockerIsDonor(u, v int) bool {
	c := st.color[v]
	if st.extHolds(u, c) {
		return false // some non-member neighbor of u also holds c
	}
	if st.memberNeighborHolds(u, c, v) {
		return false
	}
	return st.hasEdge(u, v)
}

// replayFallbackExact mirrors putaside.fallbackExact: an exact palette
// lookup through the scratch, then a proper-at check.
func (st *cliqueState) replayFallbackExact(uncolored []int, rng *rand.Rand) int {
	colored := 0
	for _, i := range uncolored {
		pal := st.usedScratch(i).FreeColors()
		if len(pal) == 0 {
			continue
		}
		st.color[i] = pal[rng.IntN(len(pal))]
		if !st.properAt(i) {
			st.color[i] = coloring.None
			continue
		}
		colored++
	}
	return colored
}
