package distsim

import (
	"fmt"
	"hash/fnv"
	"math/bits"
	"sync"

	"clustercolor/internal/cluster"
	"clustercolor/internal/coloring"
	"clustercolor/internal/core"
	"clustercolor/internal/network"
	"clustercolor/internal/parwork"
)

// This file executes the paper's per-clique stage primitives — the colorful
// matching proposal/accept exchange, the synchronized color trial, and the
// put-aside donation handshake — at machine granularity on network.Engine.
//
// The protocol is the same for all three primitives because they share an
// information structure: every decision a clique member takes is a
// deterministic function of (a) the snapshot colors of its H-neighborhood,
// (b) the member-adjacency structure of its almost-clique K, (c) the static
// stage task (membership, flags, thresholds — computed and charged by
// earlier pipeline stages), and (d) one shared O(log n)-bit seed. The
// machine protocol moves exactly that information over real links:
//
//	H-round 1 (announce):  every cluster floods its snapshot color down its
//	                       support tree; boundary machines exchange it over
//	                       inter-cluster links; member clusters convergecast
//	                       a neighborhood report (member-adjacency bits plus
//	                       a bitset of colors held by non-member neighbors)
//	                       to their leaders, who assemble their member record.
//	H-rounds 2–3 (gossip): member leaders flood their record sets through
//	                       the clique. Almost-cliques have K-diameter ≤ 2
//	                       (any two members share a common member-neighbor
//	                       for ε < 1/2), so two gossip rounds give every
//	                       member leader the full record set.
//
// Each member leader then replays the primitive's decision procedure from
// its records and the shared seed (replay.go mirrors the vertex-level code
// exactly, answering availability queries through the same PaletteScratch
// bitset machinery) and adopts its own vertex's outcome. Record-set unions
// are idempotent, so redundant inter-cluster links (the Section 1.1 hazard)
// cannot corrupt the result. Three H-rounds never exceed what the cost
// model charges for any of the three primitives (each charges at least
// three H-rounds per stage), which CheckBudget asserts per run.

// StageKind selects which per-clique primitive a stage run executes.
type StageKind int

const (
	// StageMatching is the colorful-matching proposal/accept exchange
	// (Lemma 4.9 sampling plus the cabal fingerprint backup).
	StageMatching StageKind = iota + 1
	// StageSCT is the synchronized color trial (Lemma 4.13).
	StageSCT
	// StageDonate is the put-aside donation handshake (Algorithm 8).
	StageDonate
)

func (k StageKind) String() string {
	switch k {
	case StageMatching:
		return "matching"
	case StageSCT:
		return "sct"
	case StageDonate:
		return "donate"
	default:
		return fmt.Sprintf("StageKind(%d)", int(k))
	}
}

// StageSpec describes one machine-level stage run: the primitive, its
// per-clique tasks (the same task structs the vertex-level pipeline runs),
// and the base seed from which clique i derives its RNG stream — the same
// parwork.RowSeed derivation the parallel vertex-level stage loops use.
type StageSpec struct {
	Kind     StageKind
	Matching []core.MatchingTask
	SCT      []core.SCTTask
	Donate   []core.DonateTask
	BaseSeed uint64
	// Delta is the color-space Δ of the snapshot coloring.
	Delta int
}

func (s *StageSpec) tasks() int {
	switch s.Kind {
	case StageMatching:
		return len(s.Matching)
	case StageSCT:
		return len(s.SCT)
	case StageDonate:
		return len(s.Donate)
	}
	return 0
}

func (s *StageSpec) members(i int) []int {
	switch s.Kind {
	case StageMatching:
		return s.Matching[i].Members
	case StageSCT:
		return s.SCT[i].Members
	case StageDonate:
		return s.Donate[i].Members
	}
	return nil
}

// StageOutcome is what a machine-level stage run produced, in the same
// shape the vertex-level stage reports through core.StageTrace.
type StageOutcome struct {
	// Writes lists each clique's snapshot-relative member writes
	// (recolorings first, then newly colored — runPerClique's order).
	Writes [][]core.MemberWrite
	// Repeats (matching), Colored (SCT) and DonateAux (donate) are the
	// per-clique auxiliary outcomes; only the stage's own slice is non-nil.
	Repeats   []int
	Colored   []int
	DonateAux []core.DonateAux
	// RecordHashes fingerprints each clique's gossiped record set (every
	// member leader of a clique derived the identical set; RunStage fails
	// otherwise).
	RecordHashes []uint64
	// Stats is the engine's bandwidth/round accounting for the run.
	Stats network.LinkStats
}

// Protocol phases of the stage machines.
const (
	stAnnDown = iota
	stAnnExch
	stAnnUp
	stGossipDown
	stGossipExch
	stGossipUp
)

const gossipRounds = 2 // K-diameter bound of an almost-clique (ε < 1/2)

type stagePayload struct {
	phase  int
	ground int   // gossip round, 1-based (0 for announce phases)
	color  int32 // announce: sender cluster's snapshot color
	adj    []uint64
	ext    []uint64
	recs   []memberRecord
}

// stageRuntime is the read-only context shared by all machines of a run.
type stageRuntime struct {
	spec       *StageSpec
	topo       *machineTopo
	snapColors []int32 // H-vertex -> snapshot color
	cliqueOf   []int32 // H-vertex -> task index, -1 outside every clique
	memberIdx  []int32 // H-vertex -> index in its task's Members
	seeds      []uint64
	n          int // H vertices
	delta      int
	colorBits  int
	idxBits    []int // per task
	adjWords   []int // per task: bitmap words over members
	extWords   int   // bitset words over colors 1..Δ+1
}

func (rt *stageRuntime) recordBits(t int, rec *memberRecord) int {
	b := rt.idxBits[t] + rt.colorBits + len(rec.adj)*64 + len(rec.ext)*64
	if rec.hasSeed {
		b += 64
	}
	return b
}

// stageMachine runs the announce+gossip protocol for one machine.
type stageMachine struct {
	rt *stageRuntime
	id int

	mu sync.Mutex
	// announce state
	color                        int32
	haveColor                    bool
	sentAnn                      bool
	annAdj                       []uint64
	annExt                       []uint64
	annExchPending, annUpPending int
	sentAnnUp                    bool
	// gossip state, indexed by gossip round (0-based internally)
	gotDown                [gossipRounds]bool
	downRecs               [gossipRounds][]memberRecord
	sentDown               [gossipRounds]bool
	upRecs                 [gossipRounds][]memberRecord
	upSeen                 [gossipRounds][]bool // member idx already in upRecs
	exchPending, upPending [gossipRounds]int
	sentUp                 [gossipRounds]bool
	// leader state
	records []memberRecord // merged set, by member idx (nil slots = missing)
	phaseG  int            // next gossip round the leader will launch (0-based)
	done    bool
	// leader outputs
	ownColor int32
	auxInt   int
	auxDon   core.DonateAux
	recHash  uint64
	err      error
}

func (m *stageMachine) cliqueIdx() int32 {
	return m.rt.cliqueOf[m.rt.topo.cluster[m.id]]
}

func (m *stageMachine) Step(round int, inbox []network.Message) ([]network.Message, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rt := m.rt
	t := rt.topo
	k := m.cliqueIdx()
	for _, msg := range inbox {
		p, ok := msg.Payload.(stagePayload)
		if !ok {
			return nil, fmt.Errorf("distsim: machine %d got %T in stage run", m.id, msg.Payload)
		}
		switch p.phase {
		case stAnnDown:
			if m.haveColor {
				return nil, fmt.Errorf("distsim: machine %d double announce down", m.id)
			}
			m.color, m.haveColor = p.color, true
		case stAnnExch:
			if k < 0 {
				break // non-member clusters only listen to their own clique traffic
			}
			peerV := t.cluster[msg.From]
			if rt.cliqueOf[peerV] == k {
				idx := rt.memberIdx[peerV]
				m.annAdj[idx>>6] |= 1 << uint(idx&63)
			} else if c := p.color; c >= 1 {
				m.annExt[c>>6] |= 1 << uint(c&63)
			}
			if m.annExchPending--; m.annExchPending < 0 {
				return nil, fmt.Errorf("distsim: machine %d excess announce exchange", m.id)
			}
		case stAnnUp:
			orWords(m.annAdj, p.adj)
			orWords(m.annExt, p.ext)
			if m.annUpPending--; m.annUpPending < 0 {
				return nil, fmt.Errorf("distsim: machine %d excess announce up", m.id)
			}
		case stGossipDown:
			g := p.ground - 1
			if m.gotDown[g] {
				return nil, fmt.Errorf("distsim: machine %d double gossip down %d", m.id, p.ground)
			}
			m.gotDown[g] = true
			m.downRecs[g] = p.recs
		case stGossipExch:
			g := p.ground - 1
			m.mergeUp(g, p.recs)
			if m.exchPending[g]--; m.exchPending[g] < 0 {
				return nil, fmt.Errorf("distsim: machine %d excess gossip exchange %d", m.id, p.ground)
			}
		case stGossipUp:
			g := p.ground - 1
			m.mergeUp(g, p.recs)
			if m.upPending[g]--; m.upPending[g] < 0 {
				return nil, fmt.Errorf("distsim: machine %d excess gossip up %d", m.id, p.ground)
			}
		}
	}
	var out []network.Message
	// Announce: leaders seed their cluster's snapshot color; every machine
	// forwards it down its tree and over every inter-cluster link.
	if t.leader[m.id] && !m.haveColor {
		m.color, m.haveColor = rt.snapColors[t.cluster[m.id]], true
	}
	if m.haveColor && !m.sentAnn {
		m.sentAnn = true
		for _, c := range t.children[m.id] {
			out = append(out, network.Message{From: m.id, To: int(c), Bits: rt.colorBits,
				Payload: stagePayload{phase: stAnnDown, color: m.color}})
		}
		for _, ce := range t.cross[m.id] {
			out = append(out, network.Message{From: m.id, To: int(ce.peer), Bits: rt.colorBits,
				Payload: stagePayload{phase: stAnnExch, color: m.color}})
		}
	}
	if k < 0 {
		return out, nil // non-member clusters are done after announcing
	}
	// Member clusters convergecast the neighborhood report.
	if m.annExchPending == 0 && m.annUpPending == 0 && !m.sentAnnUp {
		m.sentAnnUp = true
		if t.leader[m.id] {
			m.buildOwnRecord(k)
		} else {
			bits := len(m.annAdj)*64 + len(m.annExt)*64
			out = append(out, network.Message{From: m.id, To: int(t.parent[m.id]), Bits: bits,
				Payload: stagePayload{phase: stAnnUp, adj: m.annAdj, ext: m.annExt}})
		}
	}
	// Gossip rounds: the leader floods its current record set; machines
	// forward it down, exchange it over same-clique links, and convergecast
	// the union of what they heard.
	for g := 0; g < gossipRounds; g++ {
		if t.leader[m.id] && m.records != nil && m.phaseG == g && (g == 0 || m.sentUp[g-1]) {
			// Launch gossip round g with the merged set — for g > 0 only
			// after round g−1's convergecast landed, so the flood carries
			// the records gathered so far, not just the leader's own.
			m.phaseG++
			m.gotDown[g] = true
			m.downRecs[g] = presentRecords(m.records)
		}
		if m.gotDown[g] && !m.sentDown[g] {
			m.sentDown[g] = true
			b := m.recsBits(k, m.downRecs[g])
			for _, c := range t.children[m.id] {
				out = append(out, network.Message{From: m.id, To: int(c), Bits: b,
					Payload: stagePayload{phase: stGossipDown, ground: g + 1, recs: m.downRecs[g]}})
			}
			for _, ce := range t.cross[m.id] {
				if rt.cliqueOf[ce.peerCluster] == k {
					out = append(out, network.Message{From: m.id, To: int(ce.peer), Bits: b,
						Payload: stagePayload{phase: stGossipExch, ground: g + 1, recs: m.downRecs[g]}})
				}
			}
		}
		if m.exchPending[g] == 0 && m.upPending[g] == 0 && !m.sentUp[g] && m.sentDown[g] {
			m.sentUp[g] = true
			if t.leader[m.id] {
				for _, rec := range m.upRecs[g] {
					m.mergeIntoRecords(rec)
				}
				if g == gossipRounds-1 {
					m.finish(k)
				}
			} else {
				b := m.recsBits(k, m.upRecs[g])
				out = append(out, network.Message{From: m.id, To: int(t.parent[m.id]), Bits: b,
					Payload: stagePayload{phase: stGossipUp, ground: g + 1, recs: m.upRecs[g]}})
			}
		}
	}
	return out, nil
}

// buildOwnRecord assembles the leader's member record from the announce
// convergecast and seeds the gossip phase.
func (m *stageMachine) buildOwnRecord(k int32) {
	rt := m.rt
	v := rt.topo.cluster[m.id]
	idx := rt.memberIdx[v]
	rec := memberRecord{
		idx:   idx,
		color: rt.snapColors[v],
		adj:   m.annAdj,
		ext:   m.annExt,
	}
	if idx == 0 {
		rec.seed = rt.seeds[k]
		rec.hasSeed = true
	}
	m.records = make([]memberRecord, len(rt.spec.members(int(k))))
	for i := range m.records {
		m.records[i].idx = -1
	}
	m.records[idx] = rec
}

func (m *stageMachine) mergeIntoRecords(rec memberRecord) {
	if m.records[rec.idx].idx < 0 {
		m.records[rec.idx] = rec
	}
}

func (m *stageMachine) recsBits(k int32, recs []memberRecord) int {
	b := 0
	for i := range recs {
		b += m.rt.recordBits(int(k), &recs[i])
	}
	return b
}

// finish verifies the record set is complete, replays the primitive, and
// extracts this leader's own outcome.
func (m *stageMachine) finish(k int32) {
	rt := m.rt
	for i := range m.records {
		if m.records[i].idx < 0 {
			m.err = fmt.Errorf("distsim: clique %d member %d never heard member %d after %d gossip rounds (K-diameter > %d?)",
				k, rt.memberIdx[rt.topo.cluster[m.id]], i, gossipRounds, gossipRounds)
			m.done = true
			return
		}
	}
	if !m.records[0].hasSeed {
		m.err = fmt.Errorf("distsim: clique %d lost the coordinator seed", k)
		m.done = true
		return
	}
	m.recHash = hashRecords(m.records)
	st := newCliqueState(rt, int(k), m.records)
	var err error
	switch rt.spec.Kind {
	case StageMatching:
		m.auxInt, err = st.replayMatching(rt.spec.Matching[k], m.records[0].seed)
	case StageSCT:
		m.auxInt, err = st.replaySCT(rt.spec.SCT[k], m.records[0].seed)
	case StageDonate:
		m.auxDon, err = st.replayDonate(rt.spec.Donate[k], m.records[0].seed)
	default:
		err = fmt.Errorf("distsim: unknown stage kind %v", rt.spec.Kind)
	}
	if err != nil {
		m.err = err
		m.done = true
		return
	}
	m.ownColor = st.color[rt.memberIdx[rt.topo.cluster[m.id]]]
	m.done = true
}

// memberRecord is the per-member information gossiped through a clique: the
// member's snapshot color, its member-adjacency bitmap, the bitset of colors
// held by its non-member H-neighbors, and (on the coordinator, member 0) the
// stage seed. idx < 0 marks an empty slot in a leader's merged set.
type memberRecord struct {
	idx     int32
	color   int32
	adj     []uint64
	ext     []uint64
	seed    uint64
	hasSeed bool
}

func orWords(dst, src []uint64) {
	for i := range src {
		dst[i] |= src[i]
	}
}

// mergeUp unions src into the round's up-set, deduplicated by member idx
// through a presence slice (idempotent: a member's record is identical
// wherever it is heard from, so dropping duplicates loses nothing).
func (m *stageMachine) mergeUp(g int, src []memberRecord) {
	for _, r := range src {
		if !m.upSeen[g][r.idx] {
			m.upSeen[g][r.idx] = true
			m.upRecs[g] = append(m.upRecs[g], r)
		}
	}
}

func presentRecords(records []memberRecord) []memberRecord {
	out := make([]memberRecord, 0, len(records))
	for _, r := range records {
		if r.idx >= 0 {
			out = append(out, r)
		}
	}
	return out
}

func hashRecords(records []memberRecord) uint64 {
	h := fnv.New64a()
	buf := make([]byte, 8)
	put := func(x uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(x >> (8 * i))
		}
		h.Write(buf)
	}
	for _, r := range records {
		put(uint64(uint32(r.idx)))
		put(uint64(uint32(r.color)))
		for _, w := range r.adj {
			put(w)
		}
		for _, w := range r.ext {
			put(w)
		}
		if r.hasSeed {
			put(r.seed)
		}
	}
	return h.Sum64()
}

// StageRoundBudget is the engine-step budget of a stage run: three H-rounds
// (announce plus two gossip rounds), each at most 2·dilation+1 deliveries,
// plus the initial compose step.
func StageRoundBudget(dilation int) int { return 3*(2*dilation+1) + 1 }

// RunStage executes a per-clique stage at machine granularity: every machine
// of cg.G is an engine machine, snap supplies the snapshot colors, and the
// spec's tasks run simultaneously on their vertex-disjoint cliques — the
// machine-level counterpart of the pipeline's parallel stage loops, driven
// by the same RowSeed-derived per-clique seeds. bandwidthBits caps per-link
// traffic per round (0 disables).
func RunStage(cg *cluster.CG, snap *coloring.Coloring, spec StageSpec, bandwidthBits int, sched network.Scheduler) (*StageOutcome, error) {
	nTasks := spec.tasks()
	if nTasks == 0 {
		return nil, fmt.Errorf("distsim: stage spec has no tasks")
	}
	if snap.N() != cg.H.N() {
		return nil, fmt.Errorf("distsim: snapshot has %d vertices, H has %d", snap.N(), cg.H.N())
	}
	rt := &stageRuntime{
		spec:       &spec,
		topo:       newMachineTopo(cg),
		snapColors: make([]int32, cg.H.N()),
		cliqueOf:   make([]int32, cg.H.N()),
		memberIdx:  make([]int32, cg.H.N()),
		seeds:      make([]uint64, nTasks),
		n:          cg.H.N(),
		delta:      spec.Delta,
		colorBits:  bits.Len(uint(spec.Delta+1)) + 1,
		idxBits:    make([]int, nTasks),
		adjWords:   make([]int, nTasks),
		extWords:   (spec.Delta+1)/64 + 1,
	}
	for v := 0; v < cg.H.N(); v++ {
		rt.snapColors[v] = snap.Get(v)
		rt.cliqueOf[v] = -1
	}
	for i := 0; i < nTasks; i++ {
		members := spec.members(i)
		rt.seeds[i] = parwork.RowSeed(spec.BaseSeed, i)
		rt.idxBits[i] = bits.Len(uint(len(members))) + 1
		rt.adjWords[i] = len(members)/64 + 1
		for j, v := range members {
			if rt.cliqueOf[v] >= 0 {
				return nil, fmt.Errorf("distsim: vertex %d in cliques %d and %d", v, rt.cliqueOf[v], i)
			}
			rt.cliqueOf[v] = int32(i)
			rt.memberIdx[v] = int32(j)
		}
	}
	machines := make([]network.Machine, cg.G.N())
	ms := make([]*stageMachine, cg.G.N())
	for mID := 0; mID < cg.G.N(); mID++ {
		sm := &stageMachine{rt: rt, id: mID}
		if k := rt.cliqueOf[rt.topo.cluster[mID]]; k >= 0 {
			sm.annAdj = make([]uint64, rt.adjWords[k])
			sm.annExt = make([]uint64, rt.extWords)
			sm.annExchPending = len(rt.topo.cross[mID])
			sm.annUpPending = len(rt.topo.children[mID])
			for g := 0; g < gossipRounds; g++ {
				sm.upSeen[g] = make([]bool, len(spec.members(int(k))))
				for _, ce := range rt.topo.cross[mID] {
					if rt.cliqueOf[ce.peerCluster] == k {
						sm.exchPending[g]++
					}
				}
				sm.upPending[g] = len(rt.topo.children[mID])
			}
		}
		ms[mID] = sm
		machines[mID] = sm
	}
	eng, err := network.NewEngineWithScheduler(cg.G, machines, bandwidthBits, sched)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	leaders := make([]*stageMachine, 0)
	for _, sm := range ms {
		if rt.topo.leader[sm.id] && sm.cliqueIdx() >= 0 {
			leaders = append(leaders, sm)
		}
	}
	allDone := func() bool {
		for _, sm := range leaders {
			sm.mu.Lock()
			d := sm.done
			sm.mu.Unlock()
			if !d {
				return false
			}
		}
		return true
	}
	if _, err := eng.Run(StageRoundBudget(cg.Dilation), allDone); err != nil {
		return nil, err
	}
	out := &StageOutcome{
		Writes:       make([][]core.MemberWrite, nTasks),
		RecordHashes: make([]uint64, nTasks),
		Stats:        eng.Stats(),
	}
	switch spec.Kind {
	case StageMatching:
		out.Repeats = make([]int, nTasks)
	case StageSCT:
		out.Colored = make([]int, nTasks)
	case StageDonate:
		out.DonateAux = make([]core.DonateAux, nTasks)
	}
	// Collect each leader's own outcome; all leaders of a clique must have
	// gossiped identical record sets and derived identical aux results.
	for i := 0; i < nTasks; i++ {
		members := spec.members(i)
		newColors := make([]int32, len(members))
		first := true
		for j, v := range members {
			sm := ms[rt.topo.leaderOf[v]]
			sm.mu.Lock()
			err, hash, ownColor := sm.err, sm.recHash, sm.ownColor
			auxInt, auxDon := sm.auxInt, sm.auxDon
			sm.mu.Unlock()
			if err != nil {
				return nil, fmt.Errorf("distsim: clique %d member %d: %w", i, j, err)
			}
			if first {
				out.RecordHashes[i] = hash
				switch spec.Kind {
				case StageMatching:
					out.Repeats[i] = auxInt
				case StageSCT:
					out.Colored[i] = auxInt
				case StageDonate:
					out.DonateAux[i] = auxDon
				}
				first = false
			} else {
				if hash != out.RecordHashes[i] {
					return nil, fmt.Errorf("distsim: clique %d member %d gossiped a diverging record set", i, j)
				}
				diverged := false
				switch spec.Kind {
				case StageMatching:
					diverged = auxInt != out.Repeats[i]
				case StageSCT:
					diverged = auxInt != out.Colored[i]
				case StageDonate:
					diverged = auxDon != out.DonateAux[i]
				}
				if diverged {
					return nil, fmt.Errorf("distsim: clique %d member %d replayed a diverging outcome", i, j)
				}
			}
			newColors[j] = ownColor
		}
		// Snapshot-relative writes in runPerClique's order: recolorings
		// first, then newly colored.
		for pass := 0; pass < 2; pass++ {
			for j, v := range members {
				nc, oc := newColors[j], rt.snapColors[v]
				if nc == oc {
					continue
				}
				if recolor := oc != coloring.None; (pass == 0) != recolor {
					continue
				}
				out.Writes[i] = append(out.Writes[i], core.MemberWrite{V: v, C: nc})
			}
		}
	}
	return out, nil
}
