package distsim

import (
	"clustercolor/internal/cluster"
)

// crossEdge is one inter-cluster link incident to a machine.
type crossEdge struct {
	peer        int32 // peer machine
	peerCluster int32 // peer's H-vertex
}

// machineTopo is the static wiring every distsim protocol machine runs on:
// per machine its cluster, support-tree parent/children, and incident
// inter-cluster links. It is read-only after construction and shared by all
// machines of an engine run (machines know their own links and tree edges —
// exactly the local knowledge the model grants them).
type machineTopo struct {
	cluster  []int32 // machine -> H-vertex
	leader   []bool  // machine is its cluster's support-tree root
	parent   []int32 // tree parent machine (-1 for leaders)
	children [][]int32
	cross    [][]crossEdge
	leaderOf []int32 // H-vertex -> leader machine
}

func newMachineTopo(cg *cluster.CG) *machineTopo {
	g := cg.G
	t := &machineTopo{
		cluster:  make([]int32, g.N()),
		leader:   make([]bool, g.N()),
		parent:   make([]int32, g.N()),
		children: make([][]int32, g.N()),
		cross:    make([][]crossEdge, g.N()),
		leaderOf: make([]int32, cg.H.N()),
	}
	for v := 0; v < cg.H.N(); v++ {
		t.leaderOf[v] = cg.Leader[v]
	}
	for m := 0; m < g.N(); m++ {
		v := cg.ClusterOf[m]
		t.cluster[m] = int32(v)
		t.leader[m] = cg.Leader[v] == int32(m)
		t.parent[m] = cg.TreeParent[m]
		for _, nb := range g.Neighbors(m) {
			peer := int(nb)
			switch {
			case cg.ClusterOf[peer] != v:
				t.cross[m] = append(t.cross[m], crossEdge{peer: nb, peerCluster: int32(cg.ClusterOf[peer])})
			case int(cg.TreeParent[peer]) == m:
				t.children[m] = append(t.children[m], nb)
			}
		}
	}
	return t
}
