package distsim

import (
	"math/bits"
	"reflect"
	"runtime"
	"testing"

	"clustercolor/internal/cluster"
	"clustercolor/internal/coloring"
	"clustercolor/internal/core"
	"clustercolor/internal/graph"
	"clustercolor/internal/network"
	"clustercolor/internal/parwork"
)

// buildTracedCG expands h per the scenario, runs the traced pipeline, and
// returns the collected stage traces with the cluster graph they ran on.
func buildTracedCG(t *testing.T, h *graph.Graph, sc Scenario, seed uint64) ([]*core.StageTrace, *cluster.CG) {
	t.Helper()
	exp, err := graph.Expand(h, sc.Expand, graph.NewRand(seed^0xc0ffee))
	if err != nil {
		t.Fatal(err)
	}
	nG := exp.G.N()
	if nG < 2 {
		nG = 2
	}
	cost, err := network.NewCostModel(2*bits.Len(uint(nG)) + 16)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := cluster.New(h, exp, cost)
	if err != nil {
		t.Fatal(err)
	}
	params := core.DefaultParams(h.N())
	if sc.Params != nil {
		params = sc.Params(h.N())
	}
	params.Seed = seed
	var traces []*core.StageTrace
	if _, _, err := core.ColorTraced(cg, params, func(tr *core.StageTrace) {
		traces = append(traces, tr)
	}); err != nil {
		t.Fatal(err)
	}
	if len(traces) == 0 {
		t.Fatal("pipeline produced no stage traces")
	}
	return traces, cg
}

// scenarioByName finds a matrix cell by name, so tests don't depend on the
// matrix's ordering.
func scenarioByName(t *testing.T, name string) Scenario {
	t.Helper()
	for _, sc := range Matrix() {
		if sc.Name == name {
			return sc
		}
	}
	t.Fatalf("scenario %s missing from matrix", name)
	return Scenario{}
}

// TestConformanceMatrix is the central correctness argument of the repo made
// executable: for every scenario of the matrix, every cluster primitive —
// the fingerprint wave, the leader round, and each per-clique stage the
// pipeline ran (colorful matching, synchronized color trial, put-aside
// donation) — is re-executed as real messages on network.Engine and must
// byte-match the vertex-level layer, stay within the rounds the cost model
// charged, and respect the per-link bandwidth cap.
func TestConformanceMatrix(t *testing.T) {
	for _, sc := range Matrix() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				rep, err := Conformance(sc, seed, 0, network.SchedulerPooled)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if len(rep.Primitives) < 2 {
					t.Fatalf("seed %d: only %d primitives conformed", seed, len(rep.Primitives))
				}
				for _, p := range rep.Primitives {
					if p.Skipped {
						continue
					}
					if p.CommRounds <= 0 {
						t.Fatalf("seed %d: %s executed no communication rounds", seed, p.Primitive)
					}
					if p.MaxLinkBits > rep.EngineBandwidth {
						t.Fatalf("seed %d: %s overflowed the link cap: %d > %d",
							seed, p.Primitive, p.MaxLinkBits, rep.EngineBandwidth)
					}
				}
			}
		})
	}
}

// TestConformanceCoversCliquePrimitives pins that the matrix actually
// exercises the per-clique protocols: the dense scenarios must conform
// matching, SCT, and a non-skipped donation stage.
func TestConformanceCoversCliquePrimitives(t *testing.T) {
	covered := map[string]bool{}
	for _, name := range []string{"ringcliques/path", "planted/redundant"} {
		rep, err := Conformance(scenarioByName(t, name), 3, 0, network.SchedulerPooled)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range rep.Primitives {
			if !p.Skipped && p.Cliques > 0 {
				switch {
				case p.Primitive == "donate":
					covered["donate"] = true
				case p.Primitive[:3] == "sct":
					covered["sct"] = true
				case p.Primitive[:8] == "matching":
					covered["matching"] = true
				}
			}
		}
	}
	for _, want := range []string{"matching", "sct", "donate"} {
		if !covered[want] {
			t.Errorf("no scenario conformed the %s primitive on real cliques", want)
		}
	}
}

// TestConformanceByteIdenticalAcrossParallelism runs the harness at
// parallelism 1, 4, and NumCPU: the vertex-level pipeline, the machine
// protocols, and therefore the whole report must be byte-identical (and the
// run race-clean under -race).
func TestConformanceByteIdenticalAcrossParallelism(t *testing.T) {
	sc := scenarioByName(t, "ringcliques/path") // all per-clique primitives run
	runAt := func(par int) *Report {
		prev := parwork.SetParallelism(par)
		defer parwork.SetParallelism(prev)
		rep, err := Conformance(sc, 5, 0, network.SchedulerPooled)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		return rep
	}
	ref := runAt(1)
	for _, par := range []int{4, runtime.GOMAXPROCS(0)} {
		if got := runAt(par); !reflect.DeepEqual(got, ref) {
			t.Fatalf("parallelism %d report diverges:\n got %+v\nwant %+v", par, got, ref)
		}
	}
}

// TestConformanceSchedulersAgree runs one dense scenario under both engine
// schedulers; the machine protocols must behave identically.
func TestConformanceSchedulersAgree(t *testing.T) {
	sc := scenarioByName(t, "planted/redundant")
	pooled, err := Conformance(sc, 7, 0, network.SchedulerPooled)
	if err != nil {
		t.Fatal(err)
	}
	spawn, err := Conformance(sc, 7, 0, network.SchedulerSpawn)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pooled, spawn) {
		t.Fatalf("schedulers diverge:\npooled %+v\nspawn  %+v", pooled, spawn)
	}
}

// TestStageSeamsReproducible drives the exported per-clique job seams in
// isolation: re-running a traced stage's jobs on its snapshot with the same
// RowSeed-derived streams must reproduce the traced writes exactly. This is
// the vertex-level half of the conformance argument, with no machines
// involved — it pins that traces are replayable from (snapshot, seed) alone.
func TestStageSeamsReproducible(t *testing.T) {
	sc := scenarioByName(t, "planted/redundant")
	h, err := sc.Build(3)
	if err != nil {
		t.Fatal(err)
	}
	traces, cg := buildTracedCG(t, h, sc, 3)
	for _, tr := range traces {
		for i := range tr.Writes {
			view := tr.Snapshot.Clone()
			rng := parwork.StreamRNG(parwork.RowSeed(tr.BaseSeed, i))
			sub, err := network.NewCostModel(cg.Cost().Bandwidth())
			if err != nil {
				t.Fatal(err)
			}
			subCG := cg.WithCost(sub)
			var members []int
			switch {
			case tr.Matching != nil:
				members = tr.Matching[i].Members
				if _, err := core.MatchingJob(subCG, view, tr.Matching[i], rng); err != nil {
					t.Fatal(err)
				}
			case tr.SCT != nil:
				members = tr.SCT[i].Members
				if _, err := core.SCTJob(subCG, view, tr.SCT[i], rng); err != nil {
					t.Fatal(err)
				}
			case tr.Donate != nil:
				members = tr.Donate[i].Members
				if _, err := core.DonateJob(subCG, view, tr.Donate[i], coloring.NewPaletteScratch(), rng); err != nil {
					t.Fatal(err)
				}
			}
			var writes []core.MemberWrite
			for pass := 0; pass < 2; pass++ {
				for _, v := range members {
					nc, oc := view.Get(v), tr.Snapshot.Get(v)
					if nc == oc {
						continue
					}
					if recolor := oc != coloring.None; (pass == 0) != recolor {
						continue
					}
					writes = append(writes, core.MemberWrite{V: v, C: nc})
				}
			}
			if !reflect.DeepEqual(writes, tr.Writes[i]) {
				t.Fatalf("stage %s clique %d: isolated job writes %v, traced %v",
					tr.Stage, i, writes, tr.Writes[i])
			}
		}
	}
}
