package distsim

import (
	"testing"

	"clustercolor/internal/cluster"
	"clustercolor/internal/fingerprint"
	"clustercolor/internal/graph"
	"clustercolor/internal/network"
)

func buildCG(t *testing.T, h *graph.Graph, spec graph.ExpandSpec, seed uint64) *cluster.CG {
	t.Helper()
	rng := graph.NewRand(seed)
	exp, err := graph.Expand(h, spec, rng)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := network.NewCostModel(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := cluster.New(h, exp, cost)
	if err != nil {
		t.Fatal(err)
	}
	return cg
}

// assertMatchesVertexLevel checks the machine-level wave against the
// vertex-level cluster layer on the same instance and samples.
func assertMatchesVertexLevel(t *testing.T, cg *cluster.CG, trials int, seed uint64) network.LinkStats {
	t.Helper()
	samples := fingerprint.SampleAll(cg.H.N(), trials, graph.NewRand(seed))
	got, stats, err := FingerprintWave(cg, samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint.CollectNeighborSketches(cg, "ref", samples, fingerprint.CollectOptions{})
	for v := 0; v < cg.H.N(); v++ {
		for i := 0; i < trials; i++ {
			if got[v][i] != want[v][i] {
				t.Fatalf("vertex %d trial %d: machine-level %d != vertex-level %d",
					v, i, got[v][i], want[v][i])
			}
		}
	}
	return stats
}

func TestWaveMatchesVertexLevelSingleton(t *testing.T) {
	rng := graph.NewRand(3)
	h := graph.MustGNP(60, 0.15, rng)
	cg := buildCG(t, h, graph.ExpandSpec{Topology: graph.TopologySingleton}, 5)
	stats := assertMatchesVertexLevel(t, cg, 16, 7)
	if stats.Messages == 0 {
		t.Fatal("no messages exchanged")
	}
}

func TestWaveMatchesVertexLevelDeepClusters(t *testing.T) {
	rng := graph.NewRand(9)
	h := graph.MustGNP(25, 0.25, rng)
	for _, spec := range []graph.ExpandSpec{
		{Topology: graph.TopologyStar, MachinesPerCluster: 5},
		{Topology: graph.TopologyPath, MachinesPerCluster: 6},
		{Topology: graph.TopologyTree, MachinesPerCluster: 8},
	} {
		t.Run(spec.Topology.String(), func(t *testing.T) {
			cg := buildCG(t, h, spec, 11)
			assertMatchesVertexLevel(t, cg, 24, 13)
		})
	}
}

func TestWaveImmuneToRedundantLinks(t *testing.T) {
	// The Section 1.1 hazard: multiple links between the same cluster pair
	// deliver the same sketch several times. Idempotent max-merging must
	// keep the result identical to the single-link case.
	rng := graph.NewRand(15)
	h := graph.MustGNP(20, 0.3, rng)
	cg := buildCG(t, h, graph.ExpandSpec{
		Topology:           graph.TopologyStar,
		MachinesPerCluster: 6,
		RedundantLinks:     4,
	}, 17)
	assertMatchesVertexLevel(t, cg, 24, 19)
}

func TestWaveRoundsBoundedByDilation(t *testing.T) {
	// The wave must complete within the provable WaveRoundBudget bound on
	// every topology, including deep path clusters where the support-tree
	// height equals the dilation.
	rng := graph.NewRand(21)
	h := graph.MustGNP(15, 0.3, rng)
	for _, spec := range []graph.ExpandSpec{
		{Topology: graph.TopologySingleton},
		{Topology: graph.TopologyStar, MachinesPerCluster: 4},
		{Topology: graph.TopologyPath, MachinesPerCluster: 7},
		{Topology: graph.TopologyTree, MachinesPerCluster: 9},
	} {
		t.Run(spec.Topology.String(), func(t *testing.T) {
			cg := buildCG(t, h, spec, 23)
			samples := fingerprint.SampleAll(h.N(), 8, graph.NewRand(25))
			_, stats, err := FingerprintWave(cg, samples, 0)
			if err != nil {
				t.Fatal(err)
			}
			if budget := WaveRoundBudget(cg.Dilation); stats.Rounds > budget {
				t.Fatalf("wave took %d rounds, budget %d (dilation %d)", stats.Rounds, budget, cg.Dilation)
			}
		})
	}
}

// TestWaveSchedulersAgree checks the wave end-to-end under both engine
// schedulers: identical sketches and byte-identical LinkStats.
func TestWaveSchedulersAgree(t *testing.T) {
	rng := graph.NewRand(43)
	h := graph.MustGNP(30, 0.2, rng)
	cg := buildCG(t, h, graph.ExpandSpec{Topology: graph.TopologyTree, MachinesPerCluster: 6}, 45)
	samples := fingerprint.SampleAll(h.N(), 24, graph.NewRand(47))
	pooled, statsPooled, err := FingerprintWaveWith(cg, samples, 0, network.SchedulerPooled)
	if err != nil {
		t.Fatal(err)
	}
	spawn, statsSpawn, err := FingerprintWaveWith(cg, samples, 0, network.SchedulerSpawn)
	if err != nil {
		t.Fatal(err)
	}
	if statsPooled != statsSpawn {
		t.Fatalf("LinkStats diverge: pooled=%+v spawn=%+v", statsPooled, statsSpawn)
	}
	for v := 0; v < h.N(); v++ {
		for i := range pooled[v] {
			if pooled[v][i] != spawn[v][i] {
				t.Fatalf("vertex %d trial %d: pooled %d != spawn %d", v, i, pooled[v][i], spawn[v][i])
			}
		}
	}
}

func TestWaveBandwidthObserved(t *testing.T) {
	// With a generous cap the wave completes within the CheckBudget
	// contract (comm rounds ≤ charged, per-link bits ≤ cap); with a tiny
	// cap the engine must reject oversized sketches.
	rng := graph.NewRand(27)
	h := graph.MustGNP(20, 0.3, rng)
	cg := buildCG(t, h, graph.ExpandSpec{Topology: graph.TopologyStar, MachinesPerCluster: 3}, 29)
	samples := fingerprint.SampleAll(h.N(), 32, graph.NewRand(31))
	_, stats, err := FingerprintWave(cg, samples, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MaxLinkBits == 0 {
		t.Fatal("no bandwidth recorded")
	}
	sub, err := network.NewCostModel(cg.Cost().Bandwidth())
	if err != nil {
		t.Fatal(err)
	}
	fingerprint.CollectNeighborSketches(cg.WithCost(sub), "budget/wave", samples, fingerprint.CollectOptions{})
	if err := CheckBudget("wave", stats, sub.Rounds(), 1<<16); err != nil {
		t.Fatal(err)
	}
	if err := CheckBudget("wave", stats, sub.Rounds(), stats.MaxLinkBits-1); err == nil {
		t.Fatal("CheckBudget accepted a cap below the observed per-link maximum")
	}
	if err := CheckBudget("wave", stats, int64(CommRounds(stats))-1, 0); err == nil {
		t.Fatal("CheckBudget accepted a charge below the executed rounds")
	}
	if _, _, err := FingerprintWave(cg, samples, 4); err == nil {
		t.Fatal("4-bit cap accepted sketches of dozens of bits")
	}
}

func TestWaveValidation(t *testing.T) {
	h := graph.Path(3)
	cg := buildCG(t, h, graph.ExpandSpec{Topology: graph.TopologySingleton}, 1)
	if _, _, err := FingerprintWave(cg, make([]fingerprint.Samples, 1), 0); err == nil {
		t.Fatal("sample count mismatch accepted")
	}
}

func TestWaveIsolatedVertices(t *testing.T) {
	h := graph.NewBuilder(4).Build() // no edges
	cg := buildCG(t, h, graph.ExpandSpec{Topology: graph.TopologyStar, MachinesPerCluster: 3}, 33)
	samples := fingerprint.SampleAll(4, 8, graph.NewRand(35))
	got, _, err := FingerprintWave(cg, samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 4; v++ {
		for i := 0; i < 8; i++ {
			if got[v][i] != fingerprint.Empty {
				t.Fatalf("isolated vertex %d has non-empty sketch", v)
			}
		}
	}
}

func TestWaveEstimatesDegrees(t *testing.T) {
	// End-to-end: the machine-level wave supports the same degree
	// estimation as Lemma 5.7.
	rng := graph.NewRand(37)
	h := graph.MustGNP(80, 0.3, rng)
	cg := buildCG(t, h, graph.ExpandSpec{Topology: graph.TopologyStar, MachinesPerCluster: 2}, 39)
	samples := fingerprint.SampleAll(h.N(), 512, graph.NewRand(41))
	sketches, _, err := FingerprintWave(cg, samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	ok := 0
	for v := 0; v < h.N(); v++ {
		d := float64(h.Degree(v))
		e := sketches[v].Estimate()
		if d == 0 && e == 0 || (e > 0.6*d && e < 1.4*d) {
			ok++
		}
	}
	if ok < h.N()*9/10 {
		t.Fatalf("only %d/%d machine-level degree estimates within 40%%", ok, h.N())
	}
}
