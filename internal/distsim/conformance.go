package distsim

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand/v2"
	"reflect"
	"strings"

	"clustercolor/internal/cluster"
	"clustercolor/internal/core"
	"clustercolor/internal/fingerprint"
	"clustercolor/internal/graph"
	"clustercolor/internal/network"
)

// Conformance is the differential harness that validates the vertex-level
// cost-charged layer against true machine-granularity execution: for a
// scenario it builds the cluster graph, runs the full pipeline under a
// stage tracer, and re-executes every cluster primitive as real messages on
// network.Engine — the fingerprint aggregation wave, the leader
// broadcast/convergecast round, and each traced per-clique stage (colorful
// matching, synchronized color trial, put-aside donation) with the same
// RowSeed-derived seeds the pipeline used. For every primitive it asserts:
//
//  1. byte-conformance — the machine protocol produces exactly the writes
//     and auxiliary outcomes the vertex-level layer computed;
//  2. round budget — the engine's communication rounds never exceed what
//     network.CostModel charged for the primitive (CheckBudget);
//  3. bandwidth — no link carries more than the engine cap in any round
//     (enforced by the engine, re-asserted from the stats).

// Scenario is one cell of the conformance matrix: an instance generator
// plus the machine expansion it runs on.
type Scenario struct {
	Name string
	// Build constructs the H graph for a seed.
	Build func(seed uint64) (*graph.Graph, error)
	// Expand wires each H-vertex into a machine cluster.
	Expand graph.ExpandSpec
	// Params returns pipeline parameters (nil = core.DefaultParams).
	Params func(n int) core.Params
}

// PrimitiveReport is one primitive's measured machine-level cost next to
// its vertex-level charge.
type PrimitiveReport struct {
	Primitive     string `json:"primitive"`
	Cliques       int    `json:"cliques,omitempty"`
	CommRounds    int    `json:"comm_rounds"`
	ChargedRounds int64  `json:"charged_rounds"`
	MaxLinkBits   int    `json:"max_link_bits"`
	TotalBits     int64  `json:"total_bits"`
	Messages      int64  `json:"messages"`
	// Skipped marks a stage with no communication on either layer (e.g. a
	// donate stage whose put-aside sets are all empty).
	Skipped bool `json:"skipped,omitempty"`
}

// Report summarizes one scenario's conformance run. A returned Report means
// every executed primitive byte-matched and stayed within budget; any
// violation surfaces as an error instead.
type Report struct {
	Scenario        string            `json:"scenario"`
	Seed            uint64            `json:"seed"`
	Vertices        int               `json:"vertices"`
	Machines        int               `json:"machines"`
	Dilation        int               `json:"dilation"`
	ModelBandwidth  int               `json:"model_bandwidth"`
	EngineBandwidth int               `json:"engine_bandwidth"`
	Primitives      []PrimitiveReport `json:"primitives"`
}

// DefaultEngineBandwidth is the per-link cap conformance engines run under.
// The cost model pipelines payloads wider than its Θ(log n) bandwidth over
// ⌈bits/B⌉ charged rounds; the engine instead delivers a whole payload in
// one physical round, so its cap must admit the largest aggregated record
// set while the round comparison stays sound (pipelining only increases the
// charged side).
const DefaultEngineBandwidth = 1 << 20

// Conformance runs the full primitive-by-primitive harness for one scenario.
func Conformance(sc Scenario, seed uint64, engineBandwidth int, sched network.Scheduler) (*Report, error) {
	if engineBandwidth <= 0 {
		engineBandwidth = DefaultEngineBandwidth
	}
	h, err := sc.Build(seed)
	if err != nil {
		return nil, fmt.Errorf("distsim: %s: build: %w", sc.Name, err)
	}
	exp, err := graph.Expand(h, sc.Expand, graph.NewRand(seed^0xc0ffee))
	if err != nil {
		return nil, fmt.Errorf("distsim: %s: expand: %w", sc.Name, err)
	}
	nG := exp.G.N()
	if nG < 2 {
		nG = 2
	}
	modelB := 2*bits.Len(uint(nG)) + 16
	cost, err := network.NewCostModel(modelB)
	if err != nil {
		return nil, err
	}
	cg, err := cluster.New(h, exp, cost)
	if err != nil {
		return nil, fmt.Errorf("distsim: %s: cluster: %w", sc.Name, err)
	}
	rep := &Report{
		Scenario:        sc.Name,
		Seed:            seed,
		Vertices:        h.N(),
		Machines:        exp.G.N(),
		Dilation:        cg.Dilation,
		ModelBandwidth:  modelB,
		EngineBandwidth: engineBandwidth,
	}

	// Primitive 1: the fingerprint aggregation wave.
	if err := conformWave(cg, seed, engineBandwidth, sched, rep); err != nil {
		return nil, fmt.Errorf("distsim: %s: %w", sc.Name, err)
	}
	// Primitive 2: the canonical leader broadcast/exchange/convergecast.
	if err := conformLeaderRound(cg, seed, engineBandwidth, sched, rep); err != nil {
		return nil, fmt.Errorf("distsim: %s: %w", sc.Name, err)
	}
	// Primitives 3–5: the traced per-clique stages of the pipeline.
	params := core.DefaultParams(h.N())
	if sc.Params != nil {
		params = sc.Params(h.N())
	}
	params.Seed = seed
	var traces []*core.StageTrace
	if _, _, err := core.ColorTraced(cg, params, func(tr *core.StageTrace) {
		traces = append(traces, tr)
	}); err != nil {
		return nil, fmt.Errorf("distsim: %s: pipeline: %w", sc.Name, err)
	}
	for _, tr := range traces {
		if err := conformStage(cg, tr, engineBandwidth, sched, rep); err != nil {
			return nil, fmt.Errorf("distsim: %s: %w", sc.Name, err)
		}
	}
	return rep, nil
}

func conformWave(cg *cluster.CG, seed uint64, engineBandwidth int, sched network.Scheduler, rep *Report) error {
	samples := fingerprint.SampleAll(cg.H.N(), 24, graph.NewRand(seed^0x5eed))
	sub, err := network.NewCostModel(cg.Cost().Bandwidth())
	if err != nil {
		return err
	}
	want := fingerprint.CollectNeighborSketches(cg.WithCost(sub), "conf/wave", samples, fingerprint.CollectOptions{})
	got, stats, err := FingerprintWaveWith(cg, samples, engineBandwidth, sched)
	if err != nil {
		return fmt.Errorf("wave: %w", err)
	}
	for v := 0; v < cg.H.N(); v++ {
		for i := range want[v] {
			if got[v][i] != want[v][i] {
				return fmt.Errorf("wave: vertex %d trial %d: machine %d != vertex %d", v, i, got[v][i], want[v][i])
			}
		}
	}
	if err := CheckBudget("wave", stats, sub.Rounds(), engineBandwidth); err != nil {
		return err
	}
	rep.Primitives = append(rep.Primitives, PrimitiveReport{
		Primitive:     "wave",
		CommRounds:    CommRounds(stats),
		ChargedRounds: sub.Rounds(),
		MaxLinkBits:   stats.MaxLinkBits,
		TotalBits:     stats.TotalBits,
		Messages:      stats.Messages,
	})
	return nil
}

func conformLeaderRound(cg *cluster.CG, seed uint64, engineBandwidth int, sched network.Scheduler, rep *Report) error {
	rng := rand.New(rand.NewPCG(seed^0x1eade4, seed|1))
	vals := make([]uint64, cg.H.N())
	for v := range vals {
		vals[v] = rng.Uint64()
	}
	leaderValue := func(v int) uint64 { return vals[v] }
	combine := func(a, b uint64) uint64 {
		if a > b {
			return a
		}
		return b
	}
	sub, err := network.NewCostModel(cg.Cost().Bandwidth())
	if err != nil {
		return err
	}
	want, err := cg.WithCost(sub).LeaderRound("conf/leader", 64, leaderValue, 0, combine)
	if err != nil {
		return fmt.Errorf("leader-round: vertex level: %w", err)
	}
	got, stats, err := LeaderRound(cg, 64, engineBandwidth, leaderValue, 0, combine, sched)
	if err != nil {
		return fmt.Errorf("leader-round: %w", err)
	}
	for v := range want {
		if got[v] != want[v] {
			return fmt.Errorf("leader-round: vertex %d: machine %d != vertex %d", v, got[v], want[v])
		}
	}
	if err := CheckBudget("leader-round", stats, sub.Rounds(), engineBandwidth); err != nil {
		return err
	}
	rep.Primitives = append(rep.Primitives, PrimitiveReport{
		Primitive:     "leader-round",
		CommRounds:    CommRounds(stats),
		ChargedRounds: sub.Rounds(),
		MaxLinkBits:   stats.MaxLinkBits,
		TotalBits:     stats.TotalBits,
		Messages:      stats.Messages,
	})
	return nil
}

// conformStage re-executes one traced per-clique stage on the engine and
// byte-compares it against the pipeline's recorded outcome.
func conformStage(cg *cluster.CG, tr *core.StageTrace, engineBandwidth int, sched network.Scheduler, rep *Report) error {
	if tr.Stage == "decompose" {
		// The decomposition trace is vertex-level (fingerprint waves + BFS,
		// no per-clique tasks or snapshot); its machine-level behaviour is
		// conformed by the standalone fingerprint-wave primitive above.
		rep.Primitives = append(rep.Primitives, PrimitiveReport{
			Primitive: tr.Stage, ChargedRounds: tr.ChargedRounds, Skipped: true,
		})
		return nil
	}
	spec := StageSpec{
		BaseSeed: tr.BaseSeed,
		Delta:    tr.Snapshot.Delta(),
	}
	switch {
	case strings.HasPrefix(tr.Stage, "matching"):
		spec.Kind = StageMatching
		spec.Matching = tr.Matching
	case strings.HasPrefix(tr.Stage, "sct"):
		spec.Kind = StageSCT
		spec.SCT = tr.SCT
	case tr.Stage == "donate":
		spec.Kind = StageDonate
		spec.Donate = tr.Donate
	default:
		return fmt.Errorf("stage %q: unknown kind", tr.Stage)
	}
	if spec.Kind == StageDonate {
		// A donate stage whose put-aside sets are all empty exchanges
		// nothing on either layer; there is no protocol to conform.
		empty := true
		for _, t := range tr.Donate {
			if len(t.PutAside) > 0 {
				empty = false
				break
			}
		}
		if empty {
			rep.Primitives = append(rep.Primitives, PrimitiveReport{
				Primitive: tr.Stage, Cliques: len(tr.Donate), Skipped: true,
			})
			return nil
		}
	}
	out, err := RunStage(cg, tr.Snapshot, spec, engineBandwidth, sched)
	if err != nil {
		return fmt.Errorf("stage %q: %w", tr.Stage, err)
	}
	if !reflect.DeepEqual(out.Writes, tr.Writes) {
		return fmt.Errorf("stage %q: machine writes diverge from vertex-level writes:\n machine: %v\n vertex:  %v",
			tr.Stage, out.Writes, tr.Writes)
	}
	switch spec.Kind {
	case StageMatching:
		if !reflect.DeepEqual(out.Repeats, tr.MatchingRepeats) {
			return fmt.Errorf("stage %q: repeats diverge: machine %v vertex %v", tr.Stage, out.Repeats, tr.MatchingRepeats)
		}
	case StageSCT:
		if !reflect.DeepEqual(out.Colored, tr.SCTColored) {
			return fmt.Errorf("stage %q: colored counts diverge: machine %v vertex %v", tr.Stage, out.Colored, tr.SCTColored)
		}
	case StageDonate:
		if !reflect.DeepEqual(out.DonateAux, tr.DonateAux) {
			return fmt.Errorf("stage %q: donate outcomes diverge: machine %v vertex %v", tr.Stage, out.DonateAux, tr.DonateAux)
		}
	}
	if err := CheckBudget(tr.Stage, out.Stats, tr.ChargedRounds, engineBandwidth); err != nil {
		return err
	}
	rep.Primitives = append(rep.Primitives, PrimitiveReport{
		Primitive:     tr.Stage,
		Cliques:       len(tr.Writes),
		CommRounds:    CommRounds(out.Stats),
		ChargedRounds: tr.ChargedRounds,
		MaxLinkBits:   out.Stats.MaxLinkBits,
		TotalBits:     out.Stats.TotalBits,
		Messages:      out.Stats.Messages,
	})
	return nil
}

// Matrix is the conformance scenario matrix: the workload families of the
// experiment battery (GNP, geometric, Barabási–Albert, ring-of-cliques,
// random trees, planted ACD) crossed with the machine topologies of the
// expansion layer, including a redundant-link cell for the Section 1.1
// double-counting hazard. Dense instances (planted, ring-of-cliques) take
// the high-degree pipeline, so their runs conform every per-clique
// primitive; sparse ones exercise the wave and leader-round protocols on
// diverse cluster shapes.
func Matrix() []Scenario {
	return []Scenario{
		{
			Name: "gnp/singleton",
			Build: func(seed uint64) (*graph.Graph, error) {
				return graph.GNP(240, 0.12, graph.NewRand(seed))
			},
			Expand: graph.ExpandSpec{Topology: graph.TopologySingleton},
		},
		{
			Name: "geometric/star",
			Build: func(seed uint64) (*graph.Graph, error) {
				radius := math.Sqrt(18 / (math.Pi * 220))
				g, _, err := graph.RandomGeometric(220, radius, graph.NewRand(seed))
				return g, err
			},
			Expand: graph.ExpandSpec{Topology: graph.TopologyStar, MachinesPerCluster: 3},
		},
		{
			Name: "ba/tree",
			Build: func(seed uint64) (*graph.Graph, error) {
				return graph.BarabasiAlbert(260, 6, graph.NewRand(seed))
			},
			Expand: graph.ExpandSpec{Topology: graph.TopologyTree, MachinesPerCluster: 4},
		},
		{
			Name: "ringcliques/path",
			Build: func(seed uint64) (*graph.Graph, error) {
				return graph.RingOfCliques(10, 40)
			},
			Expand: graph.ExpandSpec{Topology: graph.TopologyPath, MachinesPerCluster: 3},
		},
		{
			Name: "tree/star",
			Build: func(seed uint64) (*graph.Graph, error) {
				return graph.RandomTree(200, graph.NewRand(seed)), nil
			},
			Expand: graph.ExpandSpec{Topology: graph.TopologyStar, MachinesPerCluster: 4},
		},
		{
			Name: "planted/redundant",
			Build: func(seed uint64) (*graph.Graph, error) {
				h, _, err := graph.PlantedACD(graph.PlantedACDSpec{
					NumCliques:     4,
					CliqueSize:     40,
					DropFraction:   0.05,
					ExternalDegree: 3,
					SparseN:        100,
					SparseP:        0.1,
				}, graph.NewRand(seed))
				return h, err
			},
			Expand: graph.ExpandSpec{Topology: graph.TopologyStar, MachinesPerCluster: 3, RedundantLinks: 2},
		},
	}
}
