package distsim

import (
	"fmt"
	"math/bits"
	"slices"

	"clustercolor/internal/acd"
	"clustercolor/internal/cluster"
	"clustercolor/internal/graph"
	"clustercolor/internal/network"
	"clustercolor/internal/parwork"
	"clustercolor/internal/shard"
	"clustercolor/internal/sketch"
)

// StreamReport summarizes one scenario's streaming-conformance run at one
// shard count. As with ShardReport, a returned report means every compared
// surface byte-matched; divergence surfaces as an error.
type StreamReport struct {
	Scenario string `json:"scenario"`
	Seed     uint64 `json:"seed"`
	Shards   int    `json:"shards"`
	Vertices int    `json:"vertices"`
	// PeakBufferedEdges is the streaming builder's high-water mark of
	// buffered packed edges — the transient footprint the streaming path
	// pays instead of a global CSR.
	PeakBufferedEdges int `json:"peak_buffered_edges"`
	// DecompRounds is the charged round count, equal on both construction
	// paths by the conformance assertion.
	DecompRounds int64 `json:"decomp_rounds"`
	// DecompExchangedRows/Bits are the shard engine's boundary-exchange
	// totals for the streamed run.
	DecompExchangedRows int64 `json:"decomp_exchanged_rows"`
	DecompExchangedBits int64 `json:"decomp_exchanged_bits"`
}

// StreamConformance is the streaming construction's differential harness:
// for one scenario it builds the sharded view twice — partitioning the
// materialized graph, and re-building each slice from an edge stream with no
// global CSR — and asserts, at the given shard count, that
//
//  1. every slice is byte-identical: bounds, local CSR rows, halo and halo
//     owners, boundary rows and boundary-edge counts (the streamed side
//     additionally must carry no global graph and no slot map);
//  2. the decomposition on the streamed engine reproduces the materialized
//     engine's decomposition bit for bit with equal charged rounds and
//     equal boundary-exchange traffic.
//
// ShardConformance already ties the materialized sharded run to the
// unsharded run, so together the two harnesses pin streamed == materialized
// == unsharded over the scenario matrix.
func StreamConformance(sc Scenario, seed uint64, shards int) (*StreamReport, error) {
	h, err := sc.Build(seed)
	if err != nil {
		return nil, fmt.Errorf("distsim: %s: build: %w", sc.Name, err)
	}
	exp, err := graph.Expand(h, sc.Expand, graph.NewRand(seed^0xc0ffee))
	if err != nil {
		return nil, fmt.Errorf("distsim: %s: expand: %w", sc.Name, err)
	}
	nG := exp.G.N()
	if nG < 2 {
		nG = 2
	}
	modelB := 2*bits.Len(uint(nG)) + 16
	cost, err := network.NewCostModel(modelB)
	if err != nil {
		return nil, err
	}
	cg, err := cluster.New(h, exp, cost)
	if err != nil {
		return nil, fmt.Errorf("distsim: %s: cluster: %w", sc.Name, err)
	}
	rep := &StreamReport{
		Scenario: sc.Name,
		Seed:     seed,
		Shards:   shards,
		Vertices: h.N(),
	}
	mat, err := graph.NewShardedGraph(h, shards)
	if err != nil {
		return nil, fmt.Errorf("distsim: %s: materialized shard: %w", sc.Name, err)
	}
	sb, err := graph.NewShardedBuilder(h.N(), mat.Starts)
	if err != nil {
		return nil, fmt.Errorf("distsim: %s: stream builder: %w", sc.Name, err)
	}
	if err := graph.StreamOf(h)(sb.AddEdge); err != nil {
		return nil, fmt.Errorf("distsim: %s: stream: %w", sc.Name, err)
	}
	rep.PeakBufferedEdges = sb.PeakBufferedEdges()
	str, err := sb.Build()
	if err != nil {
		return nil, fmt.Errorf("distsim: %s: stream build: %w", sc.Name, err)
	}
	if err := conformStreamSlices(mat, str); err != nil {
		return nil, fmt.Errorf("distsim: %s: %w", sc.Name, err)
	}
	if err := conformStreamDecomp(cg, mat, str, seed, rep); err != nil {
		return nil, fmt.Errorf("distsim: %s: %w", sc.Name, err)
	}
	return rep, nil
}

// conformStreamSlices asserts the streamed sharded view is byte-identical to
// the materialized one on every surface both construction paths produce.
func conformStreamSlices(mat, str *graph.ShardedGraph) error {
	if str.G != nil {
		return fmt.Errorf("streamed view materialized a global graph")
	}
	if !slices.Equal(str.Starts, mat.Starts) {
		return fmt.Errorf("streamed starts %v, want %v", str.Starts, mat.Starts)
	}
	if str.N() != mat.N() || str.M() != mat.M() || str.MaxDegree() != mat.MaxDegree() {
		return fmt.Errorf("streamed dims n=%d m=%d Δ=%d, want n=%d m=%d Δ=%d",
			str.N(), str.M(), str.MaxDegree(), mat.N(), mat.M(), mat.MaxDegree())
	}
	for s := range mat.Slices {
		want, got := mat.Slices[s], str.Slices[s]
		if got.SlotToGlobal != nil {
			return fmt.Errorf("streamed slice %d grew a slot map", s)
		}
		if got.Shard != want.Shard || got.Lo != want.Lo || got.Hi != want.Hi {
			return fmt.Errorf("slice %d bounds [%d,%d), want [%d,%d)", s, got.Lo, got.Hi, want.Lo, want.Hi)
		}
		if got.CSR.N() != want.CSR.N() || got.CSR.M() != want.CSR.M() || got.CSR.MaxDegree() != want.CSR.MaxDegree() {
			return fmt.Errorf("slice %d local CSR dims diverge", s)
		}
		for lv := 0; lv < want.CSR.N(); lv++ {
			if got.CSR.AdjOffset(lv) != want.CSR.AdjOffset(lv) {
				return fmt.Errorf("slice %d local row %d offset diverges", s, lv)
			}
			if !slices.Equal(got.CSR.Neighbors(lv), want.CSR.Neighbors(lv)) {
				return fmt.Errorf("slice %d local row %d diverges", s, lv)
			}
		}
		if !slices.Equal(got.Halo, want.Halo) || !slices.Equal(got.HaloOwner, want.HaloOwner) {
			return fmt.Errorf("slice %d halo diverges", s)
		}
		if !slices.Equal(got.Boundary, want.Boundary) || got.BoundaryEdges != want.BoundaryEdges {
			return fmt.Errorf("slice %d boundary diverges", s)
		}
	}
	return nil
}

// conformStreamDecomp runs the sharded decomposition on both construction
// paths with identical seeds and asserts bit-identical decompositions with
// equal charged rounds and boundary-exchange traffic.
func conformStreamDecomp(cg *cluster.CG, mat, str *graph.ShardedGraph, seed uint64, rep *StreamReport) error {
	eps := 0.25
	runOne := func(sg *graph.ShardedGraph) (*acd.Decomposition, int64, *shard.Engine[int8], error) {
		sub, err := network.NewCostModel(cg.Cost().Bandwidth())
		if err != nil {
			return nil, 0, nil, err
		}
		run := cg.WithCost(sub)
		se := shard.NewEngine(sg, sketch.MaxKernel{})
		d, err := acd.ComputeShardedWith(run, se, eps, parwork.StreamRNG(seed^0xdec0), acd.NewWorkspace())
		if err != nil {
			return nil, 0, nil, err
		}
		return d, sub.Rounds(), se, nil
	}
	wantD, wantRounds, wantSE, err := runOne(mat)
	if err != nil {
		return fmt.Errorf("materialized decomp: %w", err)
	}
	gotD, gotRounds, gotSE, err := runOne(str)
	if err != nil {
		return fmt.Errorf("streamed decomp: %w", err)
	}
	for v := range wantD.CliqueOf {
		if gotD.CliqueOf[v] != wantD.CliqueOf[v] {
			return fmt.Errorf("streamed decomp: CliqueOf[%d] = %d, want %d", v, gotD.CliqueOf[v], wantD.CliqueOf[v])
		}
	}
	if len(gotD.Cliques) != len(wantD.Cliques) {
		return fmt.Errorf("streamed decomp: %d cliques, want %d", len(gotD.Cliques), len(wantD.Cliques))
	}
	if gotRounds != wantRounds {
		return fmt.Errorf("streamed decomp: charged %d rounds, want %d — construction must not change the budget", gotRounds, wantRounds)
	}
	if gotSE.Stats.Rows != wantSE.Stats.Rows || gotSE.Stats.Bits != wantSE.Stats.Bits ||
		gotSE.Stats.MaxPhaseBits != wantSE.Stats.MaxPhaseBits {
		return fmt.Errorf("streamed decomp: exchange stats %+v, want %+v", gotSE.Stats, wantSE.Stats)
	}
	rep.DecompRounds = gotRounds
	rep.DecompExchangedRows = gotSE.Stats.Rows
	rep.DecompExchangedBits = gotSE.Stats.Bits
	return nil
}
