package distsim

import (
	"fmt"
	"sync"

	"clustercolor/internal/cluster"
	"clustercolor/internal/network"
)

// This file executes the paper's canonical H-round — leader broadcast down
// the support trees, inter-cluster exchange, convergecast back to the
// leaders — at machine granularity, as real messages on network.Engine. It
// is the machine-level counterpart of cluster.CG.LeaderRound and must
// produce identical per-leader aggregates within the rounds that primitive
// charges.

type leaderPayload struct {
	phase int // phaseDown | phaseExchange | phaseUp
	value uint64
}

// leaderMachine is one machine running the leader-round protocol. combine
// must be commutative, associative, and idempotent (Section 1.1's
// aggregation-safety condition: redundant inter-cluster links deliver the
// same value twice).
type leaderMachine struct {
	t       *machineTopo
	id      int
	bits    int
	own     uint64 // leader's value (leaders only)
	combine func(a, b uint64) uint64

	mu              sync.Mutex
	down            uint64
	haveDown        bool
	acc             uint64
	sentDown        bool
	exchanged       bool
	sentUp          bool
	pendingUp       int
	pendingExchange int
	result          uint64
	done            bool
}

func (m *leaderMachine) Step(round int, inbox []network.Message) ([]network.Message, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []network.Message
	for _, msg := range inbox {
		p, ok := msg.Payload.(leaderPayload)
		if !ok {
			return nil, fmt.Errorf("distsim: machine %d got %T in leader round", m.id, msg.Payload)
		}
		switch p.phase {
		case phaseDown:
			if m.haveDown {
				return nil, fmt.Errorf("distsim: machine %d double down", m.id)
			}
			m.down, m.haveDown = p.value, true
		case phaseExchange:
			m.acc = m.combine(m.acc, p.value)
			if m.pendingExchange--; m.pendingExchange < 0 {
				return nil, fmt.Errorf("distsim: machine %d excess exchange", m.id)
			}
		case phaseUp:
			m.acc = m.combine(m.acc, p.value)
			if m.pendingUp--; m.pendingUp < 0 {
				return nil, fmt.Errorf("distsim: machine %d excess up", m.id)
			}
		}
	}
	if m.t.leader[m.id] && !m.haveDown {
		m.down, m.haveDown = m.own, true
	}
	if m.haveDown && !m.sentDown {
		m.sentDown = true
		for _, c := range m.t.children[m.id] {
			out = append(out, network.Message{From: m.id, To: int(c), Bits: m.bits,
				Payload: leaderPayload{phase: phaseDown, value: m.down}})
		}
	}
	if m.haveDown && !m.exchanged {
		m.exchanged = true
		for _, ce := range m.t.cross[m.id] {
			out = append(out, network.Message{From: m.id, To: int(ce.peer), Bits: m.bits,
				Payload: leaderPayload{phase: phaseExchange, value: m.down}})
		}
	}
	if m.exchanged && m.pendingUp == 0 && m.pendingExchange == 0 && !m.sentUp {
		m.sentUp = true
		if m.t.leader[m.id] {
			m.result = m.acc
			m.done = true
		} else {
			out = append(out, network.Message{From: m.id, To: int(m.t.parent[m.id]), Bits: m.bits,
				Payload: leaderPayload{phase: phaseUp, value: m.acc}})
		}
	}
	return out, nil
}

// LeaderRoundBudget is the step budget of the protocol: one full H-round,
// 2·(dilation+1) engine steps (the wave bound with a single wavefront).
func LeaderRoundBudget(dilation int) int { return 2 * (dilation + 1) }

// LeaderRound executes one machine-level H-round: each cluster's leader
// value floods down its support tree, boundary machines exchange it over
// inter-cluster links, and the combine of the values heard from adjacent
// clusters aggregates back to each leader. payloadBits is the declared
// per-message size; bandwidthBits caps per-link traffic per round (0
// disables). combine must be commutative, associative, and idempotent.
func LeaderRound(cg *cluster.CG, payloadBits, bandwidthBits int,
	leaderValue func(v int) uint64, identity uint64, combine func(a, b uint64) uint64,
	sched network.Scheduler) ([]uint64, network.LinkStats, error) {
	t := newMachineTopo(cg)
	machines := make([]network.Machine, cg.G.N())
	ms := make([]*leaderMachine, cg.G.N())
	for m := 0; m < cg.G.N(); m++ {
		lm := &leaderMachine{t: t, id: m, bits: payloadBits, acc: identity, combine: combine}
		if t.leader[m] {
			lm.own = leaderValue(int(t.cluster[m]))
		}
		lm.pendingUp = len(t.children[m])
		lm.pendingExchange = len(t.cross[m])
		ms[m] = lm
		machines[m] = lm
	}
	eng, err := network.NewEngineWithScheduler(cg.G, machines, bandwidthBits, sched)
	if err != nil {
		return nil, network.LinkStats{}, err
	}
	defer eng.Close()
	done := func() bool {
		for _, lm := range ms {
			if lm.t.leader[lm.id] {
				lm.mu.Lock()
				d := lm.done
				lm.mu.Unlock()
				if !d {
					return false
				}
			}
		}
		return true
	}
	if _, err := eng.Run(LeaderRoundBudget(cg.Dilation), done); err != nil {
		return nil, eng.Stats(), err
	}
	out := make([]uint64, cg.H.N())
	for v := 0; v < cg.H.N(); v++ {
		lm := ms[t.leaderOf[v]]
		lm.mu.Lock()
		out[v] = lm.result
		lm.mu.Unlock()
	}
	return out, eng.Stats(), nil
}
