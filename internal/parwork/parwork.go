// Package parwork holds the process-wide worker machinery shared by every
// embarrassingly-parallel loop in the repo: experiment row loops, the
// battery runner, and the per-clique stage loops of the coloring pipeline.
// One knob (SetParallelism, surfaced to users via experiments.SetParallelism
// and benchtables -parallel) governs them all, and every loop derives its
// per-item randomness from a seed and the item index only, so emitted
// tables and colorings are byte-identical at every parallelism level.
package parwork

import (
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelism is the worker count used by ForEach. It defaults to the
// machine's CPU count.
var parallelism atomic.Int64

func init() {
	parallelism.Store(int64(runtime.GOMAXPROCS(0)))
}

// SetParallelism sets how many goroutines ForEach fans out across; n < 1
// selects 1 (sequential). It returns the previous value.
func SetParallelism(n int) int {
	if n < 1 {
		n = 1
	}
	return int(parallelism.Swap(int64(n)))
}

// Parallelism returns the current worker count.
func Parallelism() int { return int(parallelism.Load()) }

// ForEach computes f(i) for every i in [0, n) across min(Parallelism(), n)
// goroutines and returns the results in index order. Workers pull indices
// from a shared counter, so uneven item costs balance out. If any f returns
// an error, the first error observed wins (any error aborts the whole loop
// and discards the outputs, so which one is reported doesn't affect results)
// and workers stop pulling new indices. The error path is the only one that
// allocates beyond the output slice: the happy path stays O(workers), not
// O(n). f must derive all of its randomness from its index (see RowSeed) and
// must not write shared state, or the byte-identical-at-any-parallelism
// contract breaks.
func ForEach[T any](n int, f func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	p := Parallelism()
	if p > n {
		p = n
	}
	if p <= 1 {
		for i := 0; i < n; i++ {
			v, err := f(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	var firstErr atomic.Pointer[error]
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for firstErr.Load() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				v, err := f(i)
				if err != nil {
					// Copy before taking the address: &err directly would
					// make err escape and cost one heap allocation per
					// iteration on the happy path too.
					e := err
					firstErr.CompareAndSwap(nil, &e)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if ep := firstErr.Load(); ep != nil {
		return nil, *ep
	}
	return out, nil
}

// Grain rule for ForRange-style loops. minRangeChunks is the historical
// fixed grain: enough chunks that the shared-counter scheduler balances
// uneven chunk costs at small worker counts, few enough that per-chunk
// scratch stays O(1) in n. chunksPerWorker scales the count up once the
// worker budget grows past minRangeChunks/chunksPerWorker, so tail chunks
// cannot straggle a wide machine; maxRangeChunks caps per-chunk scratch and
// chunk-level reduction arrays at a constant whatever the budget.
const (
	minRangeChunks  = 128
	chunksPerWorker = 8
	maxRangeChunks  = 2048
)

// RangeChunksAt returns the chunk count a ForRange-style loop splits [0, n)
// into at worker budget p: min(n, clamp(chunksPerWorker*p, 128, 2048)). It is
// a pure function of (n, p) — same inputs, same grain, on every box. The
// determinism contract for outputs does not rest on the grain at all: every
// chunk-level reduction in the repo is partition-independent (disjoint index
// writes, bitmap ORs, min/max/OR folds), so colorings, decompositions, and
// sketches are byte-identical at any chunk count. The grain only moves
// wall-clock and scratch constants.
func RangeChunksAt(n, p int) int {
	if p < 1 {
		p = 1
	}
	c := chunksPerWorker * p
	if c < minRangeChunks {
		c = minRangeChunks
	}
	if c > maxRangeChunks {
		c = maxRangeChunks
	}
	if n < c {
		c = n
	}
	return c
}

// RangeChunks returns RangeChunksAt(n, Parallelism()): the grain for the
// current process-wide budget. Callers must capture the result once and pass
// it to ChunkBoundsIn for every chunk of the same loop — re-deriving it
// per-chunk could tear if the parallelism knob moves mid-loop.
func RangeChunks(n int) int {
	return RangeChunksAt(n, Parallelism())
}

// ChunkBoundsIn returns the half-open bounds of chunk i when [0, n) is split
// into chunks contiguous near-even pieces. Pure in (n, chunks, i).
func ChunkBoundsIn(n, chunks, i int) (lo, hi int) {
	return i * n / chunks, (i + 1) * n / chunks
}

// WeightedChunkBounds returns the half-open bounds of chunk i when [0, n) is
// split into chunks contiguous pieces that equalize cumulative weight rather
// than item count. cum(v) must be the nondecreasing cumulative weight of
// items [0, v), defined for v in [0, n]; for a CSR degree sweep that is the
// offsets array plus a small constant per item (so zero-degree runs still
// split). Bounds are a pure function of (n, chunks, cum) — computed from the
// offsets array only, never from timing — so they are as deterministic as
// the even split. Cost is O(log n) per boundary.
func WeightedChunkBounds(n, chunks, i int, cum func(v int) int64) (lo, hi int) {
	base := cum(0)
	total := cum(n) - base
	if total <= 0 {
		return ChunkBoundsIn(n, chunks, i)
	}
	return weightedBoundary(n, chunks, i, base, total, cum),
		weightedBoundary(n, chunks, i+1, base, total, cum)
}

// weightedBoundary finds the smallest v with cum(v)-cum(0) ≥ i*total/chunks,
// clamped so boundary(0) = 0 and boundary(chunks) = n. Boundaries are
// nondecreasing in i, so the chunks partition [0, n) exactly (some possibly
// empty when one item carries more than a chunk's share of weight).
func weightedBoundary(n, chunks, i int, base, total int64, cum func(v int) int64) int {
	if i <= 0 {
		return 0
	}
	if i >= chunks {
		return n
	}
	target := base + int64(i)*total/int64(chunks)
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cum(mid) >= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// ForRange runs f over the RangeChunks(n) contiguous chunks covering [0, n),
// fanned across the worker pool. f owns [lo, hi) exclusively, so it may keep
// per-call scratch and write disjoint output indices without synchronization;
// like ForEach, it must derive any randomness from the indices alone.
func ForRange(n int, f func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	chunks := RangeChunks(n)
	_, err := ForEach(chunks, func(i int) (struct{}, error) {
		lo, hi := ChunkBoundsIn(n, chunks, i)
		return struct{}{}, f(lo, hi)
	})
	return err
}

// ForRangeWeighted is ForRange with WeightedChunkBounds: chunk boundaries
// equalize cum instead of item count, so degree-skewed CSR sweeps don't
// straggle on tail chunks that happen to hold the heavy vertices. Same
// ownership and determinism contract as ForRange.
func ForRangeWeighted(n int, cum func(v int) int64, f func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	chunks := RangeChunks(n)
	_, err := ForEach(chunks, func(i int) (struct{}, error) {
		lo, hi := WeightedChunkBounds(n, chunks, i, cum)
		return struct{}{}, f(lo, hi)
	})
	return err
}

// StreamRNG returns the canonical PRNG stream for a derived seed. Every
// consumer of a RowSeed-derived stream — the per-clique stage loops, the
// distsim machine-level replays, and the pipeline itself — must construct
// its generator through this one helper: byte-identical replay depends on
// all of them using the same derivation.
func StreamRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x6c62272e07bb0142))
}

// RowSeed derives an independent PRNG seed for item i of a loop from the
// loop's seed (a splitmix64 step), so items can run concurrently and in any
// order while the merged output stays identical to a sequential run.
func RowSeed(seed uint64, i int) uint64 {
	z := seed + 0x9e3779b97f4a7c15*uint64(i+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ z>>31
}
