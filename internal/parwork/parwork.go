// Package parwork holds the process-wide worker machinery shared by every
// embarrassingly-parallel loop in the repo: experiment row loops, the
// battery runner, and the per-clique stage loops of the coloring pipeline.
// One knob (SetParallelism, surfaced to users via experiments.SetParallelism
// and benchtables -parallel) governs them all, and every loop derives its
// per-item randomness from a seed and the item index only, so emitted
// tables and colorings are byte-identical at every parallelism level.
package parwork

import (
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelism is the worker count used by ForEach. It defaults to the
// machine's CPU count.
var parallelism atomic.Int64

func init() {
	parallelism.Store(int64(runtime.GOMAXPROCS(0)))
}

// SetParallelism sets how many goroutines ForEach fans out across; n < 1
// selects 1 (sequential). It returns the previous value.
func SetParallelism(n int) int {
	if n < 1 {
		n = 1
	}
	return int(parallelism.Swap(int64(n)))
}

// Parallelism returns the current worker count.
func Parallelism() int { return int(parallelism.Load()) }

// ForEach computes f(i) for every i in [0, n) across min(Parallelism(), n)
// goroutines and returns the results in index order. Workers pull indices
// from a shared counter, so uneven item costs balance out. If any f returns
// an error, the lowest-index error is reported. f must derive all of its
// randomness from its index (see RowSeed) and must not write shared state,
// or the byte-identical-at-any-parallelism contract breaks.
func ForEach[T any](n int, f func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	p := Parallelism()
	if p > n {
		p = n
	}
	if p <= 1 {
		for i := 0; i < n; i++ {
			out[i], errs[i] = f(i)
			if errs[i] != nil {
				return nil, errs[i]
			}
		}
		return out, nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = f(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// rangeChunks caps how many chunks ForRange-style loops split an index
// space into. The cap is what keeps per-chunk scratch allocations bounded by
// a constant rather than growing with n or with the parallelism level.
const rangeChunks = 128

// RangeChunks returns the chunk count ForRange splits [0, n) into:
// min(n, 128). It depends only on n — never on Parallelism() — so per-chunk
// scratch use and chunk-level reductions produce identical results at every
// worker count, and the number of chunk allocations stays O(1) in n.
func RangeChunks(n int) int {
	if n < rangeChunks {
		return n
	}
	return rangeChunks
}

// ChunkBounds returns the half-open bounds of chunk i when [0, n) is split
// into RangeChunks(n) contiguous near-even chunks.
func ChunkBounds(n, i int) (lo, hi int) {
	c := RangeChunks(n)
	return i * n / c, (i + 1) * n / c
}

// ForRange runs f over the RangeChunks(n) contiguous chunks covering [0, n),
// fanned across the worker pool. f owns [lo, hi) exclusively, so it may keep
// per-call scratch and write disjoint output indices without synchronization;
// like ForEach, it must derive any randomness from the indices alone.
func ForRange(n int, f func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	_, err := ForEach(RangeChunks(n), func(i int) (struct{}, error) {
		lo, hi := ChunkBounds(n, i)
		return struct{}{}, f(lo, hi)
	})
	return err
}

// StreamRNG returns the canonical PRNG stream for a derived seed. Every
// consumer of a RowSeed-derived stream — the per-clique stage loops, the
// distsim machine-level replays, and the pipeline itself — must construct
// its generator through this one helper: byte-identical replay depends on
// all of them using the same derivation.
func StreamRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x6c62272e07bb0142))
}

// RowSeed derives an independent PRNG seed for item i of a loop from the
// loop's seed (a splitmix64 step), so items can run concurrently and in any
// order while the merged output stays identical to a sequential run.
func RowSeed(seed uint64, i int) uint64 {
	z := seed + 0x9e3779b97f4a7c15*uint64(i+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ z>>31
}
