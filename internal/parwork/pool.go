package parwork

import (
	"sync"
	"sync/atomic"
)

// ShardPool is a worker budget carved out of the process-wide parallelism
// knob for one shard of a partitioned run. Pools exist so k shards can
// execute concurrently without multiplying the goroutine count: SplitPools
// divides Parallelism() across the shards, and each shard's inner loops fan
// out only across its own share. Chunking inside a pool stays
// RangeChunks-based — a function of n alone — so outputs are byte-identical
// whatever the budget split.
//
// Pools from one SplitPools call additionally share a token budget capping
// their total concurrently executing workers at the Parallelism() recorded
// at split time: with k > Parallelism() every pool still gets a worker (so
// no shard starves), but the floored shares can no longer multiply — k
// shards driven concurrently run at most max(Parallelism(), 1) workers
// in flight. Loops inside one pool's worker must not invoke a sibling pool
// of the same split (a worker holds its token for the duration of its
// drain), which no current caller does: shard engines use their own pool's
// loops only.
type ShardPool struct {
	workers int
	tokens  chan struct{} // shared across one SplitPools group; nil = ungated
}

// Workers returns the pool's goroutine budget (≥ 1).
func (p *ShardPool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// SplitPools divides the current Parallelism() budget near-evenly across k
// pools, every pool getting at least one worker. Earlier pools receive the
// remainder, so budgets differ by at most one. The pools share a token
// budget of max(Parallelism(), 1) concurrent workers, so the per-pool
// 1-worker floor cannot oversubscribe the process budget when k exceeds it.
func SplitPools(k int) []*ShardPool {
	if k < 1 {
		k = 1
	}
	p := Parallelism()
	if p < 1 {
		p = 1
	}
	tokens := make(chan struct{}, p)
	pools := make([]*ShardPool, k)
	for i := range pools {
		w := p / k
		if i < p%k {
			w++
		}
		if w < 1 {
			w = 1
		}
		pools[i] = &ShardPool{workers: w, tokens: tokens}
	}
	return pools
}

// acquire blocks until a worker token is free and returns its release.
// Ungated pools (nil, or constructed outside SplitPools) return a no-op.
func (p *ShardPool) acquire() func() {
	if p == nil || p.tokens == nil {
		return func() {}
	}
	p.tokens <- struct{}{}
	return func() { <-p.tokens }
}

// ForEach is ForEach bounded by the pool's budget instead of the global
// knob: f(i) runs for every i in [0, n) across min(Workers(), n) goroutines
// pulling from a shared counter. The lowest-index error wins. A nil pool
// runs sequentially.
func (p *ShardPool) ForEach(n int, f func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := p.Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		release := p.acquire()
		defer release()
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release := p.acquire()
			defer release()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = f(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ForRange runs f over the RangeChunks(n) contiguous chunks covering [0, n)
// on the pool's workers, with the same ownership contract as the package
// ForRange: chunk bounds depend only on n, so results are byte-identical at
// every budget.
func (p *ShardPool) ForRange(n int, f func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	return p.ForEach(RangeChunks(n), func(i int) error {
		lo, hi := ChunkBounds(n, i)
		return f(lo, hi)
	})
}
