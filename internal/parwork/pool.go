package parwork

import (
	"sync"
	"sync/atomic"
)

// ShardPool is a worker budget carved out of the process-wide parallelism
// knob for one shard of a partitioned run. Pools exist so k shards can
// execute concurrently without multiplying the goroutine count: SplitPools
// divides Parallelism() across the shards, and each shard's inner loops fan
// out only across its own share. Chunking inside a pool uses
// RangeChunksAt(n, Workers()) — a pure function of n and the pool's own
// budget — and every chunk-level reduction is partition-independent, so
// outputs are byte-identical whatever the budget split.
//
// Pools from one SplitPools call additionally share a token budget capping
// their total concurrently executing workers at the Parallelism() recorded
// at split time: with k > Parallelism() every pool still gets a worker (so
// no shard starves), but the floored shares can no longer multiply — k
// shards driven concurrently run at most max(Parallelism(), 1) workers
// in flight. Loops inside one pool's worker must not invoke a sibling pool
// of the same split (a worker holds its token for the duration of its
// drain), which no current caller does: shard engines use their own pool's
// loops only.
type ShardPool struct {
	workers int
	tokens  chan struct{} // shared across one SplitPools group; nil = ungated
}

// Workers returns the pool's goroutine budget (≥ 1).
func (p *ShardPool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// SplitPools divides the current Parallelism() budget near-evenly across k
// pools, every pool getting at least one worker. Earlier pools receive the
// remainder, so budgets differ by at most one. The pools share a token
// budget of max(Parallelism(), 1) concurrent workers, so the per-pool
// 1-worker floor cannot oversubscribe the process budget when k exceeds it.
func SplitPools(k int) []*ShardPool {
	if k < 1 {
		k = 1
	}
	p := Parallelism()
	if p < 1 {
		p = 1
	}
	tokens := make(chan struct{}, p)
	pools := make([]*ShardPool, k)
	for i := range pools {
		w := p / k
		if i < p%k {
			w++
		}
		if w < 1 {
			w = 1
		}
		pools[i] = &ShardPool{workers: w, tokens: tokens}
	}
	return pools
}

// acquire blocks until a worker token is free and returns its release.
// Ungated pools (nil, or constructed outside SplitPools) return a no-op.
func (p *ShardPool) acquire() func() {
	if p == nil || p.tokens == nil {
		return func() {}
	}
	p.tokens <- struct{}{}
	return func() { <-p.tokens }
}

// ForEach is ForEach bounded by the pool's budget instead of the global
// knob: f(i) runs for every i in [0, n) across min(Workers(), n) goroutines
// pulling from a shared counter. The first error observed wins and stops the
// loop (any error aborts the caller, so which one is reported doesn't affect
// results); the happy path allocates O(workers), not O(n). A nil pool runs
// sequentially.
func (p *ShardPool) ForEach(n int, f func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := p.Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		release := p.acquire()
		defer release()
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	var firstErr atomic.Pointer[error]
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release := p.acquire()
			defer release()
			for firstErr.Load() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := f(i); err != nil {
					// Copy before taking the address: &err directly would
					// make err escape and cost one heap allocation per
					// iteration on the happy path too.
					e := err
					firstErr.CompareAndSwap(nil, &e)
					return
				}
			}
		}()
	}
	wg.Wait()
	if ep := firstErr.Load(); ep != nil {
		return *ep
	}
	return nil
}

// ForRange runs f over the RangeChunksAt(n, Workers()) contiguous chunks
// covering [0, n) on the pool's workers, with the same ownership contract as
// the package ForRange. The grain is a pure function of (n, pool budget);
// chunk-level reductions stay partition-independent, so results are
// byte-identical at every budget.
func (p *ShardPool) ForRange(n int, f func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	chunks := RangeChunksAt(n, p.Workers())
	return p.ForEach(chunks, func(i int) error {
		lo, hi := ChunkBoundsIn(n, chunks, i)
		return f(lo, hi)
	})
}

// ForRangeWeighted is ForRange with WeightedChunkBounds over the pool's
// grain: boundaries equalize cum (e.g. a CSR offsets array plus a constant
// per item) so degree-skewed sweeps don't straggle on tail chunks.
func (p *ShardPool) ForRangeWeighted(n int, cum func(v int) int64, f func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	chunks := RangeChunksAt(n, p.Workers())
	return p.ForEach(chunks, func(i int) error {
		lo, hi := WeightedChunkBounds(n, chunks, i, cum)
		return f(lo, hi)
	})
}
