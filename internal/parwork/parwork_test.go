package parwork_test

import (
	"errors"
	"runtime"
	"sync"
	"testing"

	"clustercolor/internal/parwork"
)

// TestRangeChunksAtPure pins the grain rule as a pure function of (n, p):
// min(n, clamp(chunksPerWorker·p, 128, 2048)), unaffected by the process-wide
// parallelism knob. The old API derived the grain inside per-chunk bounds
// lookups, which could tear when the knob moved mid-loop; purity here is what
// lets callers capture the chunk count once.
func TestRangeChunksAtPure(t *testing.T) {
	cases := []struct{ n, p, want int }{
		{0, 1, 0},
		{50, 1, 50},     // n below the floor: one chunk per item
		{1000, 1, 128},  // small budgets keep the historical fixed grain
		{1000, 16, 128}, // 8·16 = 128: the boundary of the fixed grain
		{1000, 17, 136}, // grain starts scaling with the budget
		{100000, 32, 256},
		{100000, 1000, 2048}, // cap: scratch stays O(1) whatever the budget
		{100000, 0, 128},     // p < 1 clamps to 1
		{200, 1000, 200},     // n caps the count
		{2048, 1000, 2048},   // exactly at the cap
		{1 << 20, 256, 2048}, // 8·256 = 2048: at the cap from below
		{1 << 20, 257, 2048}, // and clamped above it
	}
	for _, c := range cases {
		if got := parwork.RangeChunksAt(c.n, c.p); got != c.want {
			t.Errorf("RangeChunksAt(%d, %d) = %d, want %d", c.n, c.p, got, c.want)
		}
	}
	// Purity against the knob: RangeChunksAt must not read Parallelism().
	prev := parwork.SetParallelism(1)
	at1 := parwork.RangeChunksAt(100000, 32)
	parwork.SetParallelism(64)
	at64 := parwork.RangeChunksAt(100000, 32)
	parwork.SetParallelism(prev)
	if at1 != at64 {
		t.Fatalf("RangeChunksAt reads the parallelism knob: %d vs %d", at1, at64)
	}
	// RangeChunks is the knob-bound instance of the same rule.
	prev = parwork.SetParallelism(32)
	defer parwork.SetParallelism(prev)
	if got, want := parwork.RangeChunks(100000), parwork.RangeChunksAt(100000, 32); got != want {
		t.Fatalf("RangeChunks(100000) = %d, want RangeChunksAt(100000, 32) = %d", got, want)
	}
}

// TestChunkBoundsInPartition checks that ChunkBoundsIn tiles [0, n) exactly:
// contiguous, nondecreasing, first chunk at 0, last at n.
func TestChunkBoundsInPartition(t *testing.T) {
	for _, n := range []int{1, 7, 128, 1000, 65536} {
		for _, chunks := range []int{1, 2, 128, 1000} {
			if chunks > n {
				chunks = n
			}
			prevHi := 0
			for i := 0; i < chunks; i++ {
				lo, hi := parwork.ChunkBoundsIn(n, chunks, i)
				if lo != prevHi {
					t.Fatalf("n=%d chunks=%d: chunk %d starts at %d, previous ended at %d", n, chunks, i, lo, prevHi)
				}
				if hi < lo {
					t.Fatalf("n=%d chunks=%d: chunk %d inverted [%d, %d)", n, chunks, i, lo, hi)
				}
				prevHi = hi
			}
			if prevHi != n {
				t.Fatalf("n=%d chunks=%d: last chunk ends at %d", n, chunks, prevHi)
			}
		}
	}
}

// TestWeightedChunkBoundsPartition checks the degree-weighted splitter on a
// skewed weight profile: the chunks still tile [0, n) exactly, boundaries are
// nondecreasing, and no chunk carries more than a chunk's fair share of
// weight plus one item's worth (the granularity limit of contiguous splits).
func TestWeightedChunkBoundsPartition(t *testing.T) {
	const n = 4096
	// CSR-like cumulative weights: mostly degree 2, a handful of hubs, plus
	// the constant per-item term that keeps zero-degree runs splittable.
	deg := make([]int64, n)
	for v := range deg {
		deg[v] = 2
	}
	deg[0] = 50_000
	deg[n/2] = 30_000
	for v := n - 64; v < n; v++ {
		deg[v] = 0 // zero-degree tail must still be divided
	}
	off := make([]int64, n+1)
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + deg[v]
	}
	cum := func(v int) int64 { return off[v] + 16*int64(v) }
	for _, chunks := range []int{1, 2, 13, 128, 512} {
		total := cum(n) - cum(0)
		fair := total/int64(chunks) + (50_000 + 16) // fair share + heaviest item
		prevHi := 0
		for i := 0; i < chunks; i++ {
			lo, hi := parwork.WeightedChunkBounds(n, chunks, i, cum)
			if lo != prevHi {
				t.Fatalf("chunks=%d: chunk %d starts at %d, previous ended at %d", chunks, i, lo, prevHi)
			}
			if hi < lo {
				t.Fatalf("chunks=%d: chunk %d inverted [%d, %d)", chunks, i, lo, hi)
			}
			if w := cum(hi) - cum(lo); w > fair {
				t.Fatalf("chunks=%d: chunk %d carries weight %d, over fair share %d", chunks, i, w, fair)
			}
			prevHi = hi
		}
		if prevHi != n {
			t.Fatalf("chunks=%d: last chunk ends at %d, want %d", chunks, prevHi, n)
		}
	}
	// Zero total weight falls back to the even split.
	zero := func(v int) int64 { return 7 }
	lo, hi := parwork.WeightedChunkBounds(100, 4, 1, zero)
	wlo, whi := parwork.ChunkBoundsIn(100, 4, 1)
	if lo != wlo || hi != whi {
		t.Fatalf("zero-weight bounds [%d, %d), want even split [%d, %d)", lo, hi, wlo, whi)
	}
}

// TestForRangeWeightedCovers checks the weighted fan-out visits every index
// exactly once, at a parallel budget.
func TestForRangeWeightedCovers(t *testing.T) {
	prev := parwork.SetParallelism(4)
	defer parwork.SetParallelism(prev)
	const n = 10_000
	cum := func(v int) int64 { return int64(v) * int64(v) } // quadratic skew
	var mu sync.Mutex
	seen := make([]int, n)
	err := parwork.ForRangeWeighted(n, cum, func(lo, hi int) error {
		mu.Lock()
		defer mu.Unlock()
		for v := lo; v < hi; v++ {
			seen[v]++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", v, c)
		}
	}
}

// TestForEachErrorSlotAllocs is the regression test for the first-error slot:
// an error-free parallel ForEach must not allocate O(n) for error reporting
// (the old implementation preallocated an errs []error of length n). The
// byte budget below is far under 8·n, so reintroducing the slice fails it.
func TestForEachErrorSlotAllocs(t *testing.T) {
	prev := parwork.SetParallelism(4)
	defer parwork.SetParallelism(prev)
	const n = 1 << 17 // 8·n = 1 MiB if an errs slice came back
	warm := func() {
		if _, err := parwork.ForEach(n, func(i int) (struct{}, error) {
			return struct{}{}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	warm()
	best := ^uint64(0)
	for trial := 0; trial < 5; trial++ {
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		warm()
		runtime.ReadMemStats(&m1)
		if b := m1.TotalAlloc - m0.TotalAlloc; b < best {
			best = b
		}
	}
	if best >= 8*n {
		t.Fatalf("error-free ForEach(n=%d) allocates %d bytes — error reporting must be a single atomic slot, not an O(n) slice", n, best)
	}
}

// TestForEachStillReportsError checks the slot still surfaces an injected
// error from the parallel path, and that the loop remains usable afterwards.
func TestForEachStillReportsError(t *testing.T) {
	prev := parwork.SetParallelism(4)
	defer parwork.SetParallelism(prev)
	boom := errors.New("boom")
	_, err := parwork.ForEach(10_000, func(i int) (int, error) {
		if i >= 5_000 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the injected error", err)
	}
	out, err := parwork.ForEach(100, func(i int) (int, error) { return i, nil })
	if err != nil || len(out) != 100 || out[99] != 99 {
		t.Fatalf("ForEach unusable after an error drain: %v %d", err, len(out))
	}
}
