package parwork_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clustercolor/internal/parwork"
)

// TestSplitPoolsBudget is the regression test for the worker-budget
// contract: k pools of one split driven fully concurrently (raw goroutines,
// deliberately bypassing parwork.ForEach's own cap) must never have more
// than max(Parallelism(), 1) workers in flight, even when k exceeds the
// budget and every pool floors at one worker.
func TestSplitPoolsBudget(t *testing.T) {
	for _, tc := range []struct{ par, k int }{
		{1, 8}, {2, 8}, {3, 5}, {4, 3}, {4, 4},
	} {
		prev := parwork.SetParallelism(tc.par)
		pools := parwork.SplitPools(tc.k)
		var inFlight, peak atomic.Int64
		var wg sync.WaitGroup
		for s := 0; s < tc.k; s++ {
			pool := pools[s]
			wg.Add(1)
			go func() {
				defer wg.Done()
				err := pool.ForEach(16, func(i int) error {
					cur := inFlight.Add(1)
					for {
						p := peak.Load()
						if cur <= p || peak.CompareAndSwap(p, cur) {
							break
						}
					}
					time.Sleep(200 * time.Microsecond)
					inFlight.Add(-1)
					return nil
				})
				if err != nil {
					t.Error(err)
				}
			}()
		}
		wg.Wait()
		parwork.SetParallelism(prev)
		budget := int64(tc.par)
		if budget < 1 {
			budget = 1
		}
		if got := peak.Load(); got > budget {
			t.Errorf("par=%d k=%d: %d workers in flight, budget %d", tc.par, tc.k, got, budget)
		}
	}
}

// TestSplitPoolsShares pins the budget split: shares are near-even, ≥ 1,
// and sum to max(Parallelism(), k).
func TestSplitPoolsShares(t *testing.T) {
	prev := parwork.SetParallelism(5)
	defer parwork.SetParallelism(prev)
	pools := parwork.SplitPools(3)
	want := []int{2, 2, 1}
	for i, p := range pools {
		if p.Workers() != want[i] {
			t.Errorf("pool %d: %d workers, want %d", i, p.Workers(), want[i])
		}
	}
}

// TestShardPoolForEachError checks the lowest-index error wins under a
// gated pool, and that pools stay usable after an error drain.
func TestShardPoolForEachError(t *testing.T) {
	prev := parwork.SetParallelism(2)
	defer parwork.SetParallelism(prev)
	pools := parwork.SplitPools(4)
	for _, pool := range pools {
		err := pool.ForEach(8, func(i int) error {
			if i >= 3 {
				return errIndex(i)
			}
			return nil
		})
		if err == nil || err.Error() != "index 3" {
			t.Fatalf("got %v, want index 3", err)
		}
		if err := pool.ForEach(4, func(i int) error { return nil }); err != nil {
			t.Fatalf("pool unusable after error: %v", err)
		}
	}
}

type errIndex int

func (e errIndex) Error() string { return fmt.Sprintf("index %d", int(e)) }
