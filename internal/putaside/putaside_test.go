package putaside

import (
	"testing"

	"clustercolor/internal/cluster"
	"clustercolor/internal/coloring"
	"clustercolor/internal/graph"
	"clustercolor/internal/network"
)

func testCG(t *testing.T, h *graph.Graph) *cluster.CG {
	t.Helper()
	rng := graph.NewRand(2)
	exp, err := graph.Expand(h, graph.ExpandSpec{Topology: graph.TopologySingleton}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := network.NewCostModel(64)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := cluster.New(h, exp, cost)
	if err != nil {
		t.Fatal(err)
	}
	return cg
}

// cabalInstance builds the Section 2.4 setting: numCliques cliques of size
// s, each vertex with about ext external neighbors.
func cabalInstance(t *testing.T, numCliques, s, ext int, seed uint64) (*graph.Graph, [][]int) {
	t.Helper()
	rng := graph.NewRand(seed)
	g, blocks, err := graph.PlantedCabals(graph.CabalSpec{
		NumCliques: numCliques,
		CliqueSize: s,
		External:   ext,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cabals := make([][]int, numCliques)
	for v := 0; v < g.N(); v++ {
		cabals[blocks[v]] = append(cabals[blocks[v]], v)
	}
	return g, cabals
}

func TestComputePutAsideProperties(t *testing.T) {
	g, cabals := cabalInstance(t, 4, 40, 2, 3)
	cg := testCG(t, g)
	col := coloring.New(g.N(), g.MaxDegree())
	r := 5
	ps, err := ComputePutAside(cg, col, ComputeOptions{
		Phase:  "pa",
		Cabals: cabals,
		R:      r,
	}, graph.NewRand(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 4 {
		t.Fatalf("got %d put-aside sets", len(ps))
	}
	inSet := map[int]int{}
	for i, p := range ps {
		// Property 1: |P_K| = r (dense instances have plenty of eligible
		// vertices).
		if len(p) != r {
			t.Fatalf("cabal %d put-aside size %d, want %d", i, len(p), r)
		}
		for _, v := range p {
			if col.IsColored(v) {
				t.Fatalf("colored vertex %d in put-aside set", v)
			}
			inSet[v] = i
		}
	}
	// Property 2: no edges between different sets.
	for v, i := range inSet {
		for _, u := range g.Neighbors(v) {
			if j, ok := inSet[int(u)]; ok && j != i {
				t.Fatalf("edge between put-aside sets %d,%d", i, j)
			}
		}
	}
	// Property 3: few members adjacent to foreign put-aside vertices.
	for i, members := range cabals {
		frac := ForeignAdjacencyFraction(cg, members, i, ps)
		if frac > 0.5 {
			t.Fatalf("cabal %d: %.2f of members adjacent to foreign put-aside sets", i, frac)
		}
	}
}

func TestComputePutAsideRespectsEligibility(t *testing.T) {
	g, cabals := cabalInstance(t, 2, 30, 1, 7)
	cg := testCG(t, g)
	col := coloring.New(g.N(), g.MaxDegree())
	eligible := func(v int) bool { return v%2 == 0 }
	ps, err := ComputePutAside(cg, col, ComputeOptions{
		Phase:    "pa",
		Cabals:   cabals,
		Eligible: eligible,
		R:        3,
	}, graph.NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		for _, v := range p {
			if v%2 != 0 {
				t.Fatalf("ineligible vertex %d selected", v)
			}
		}
	}
}

func TestComputePutAsideValidation(t *testing.T) {
	g, cabals := cabalInstance(t, 2, 10, 1, 11)
	cg := testCG(t, g)
	col := coloring.New(g.N(), g.MaxDegree())
	if _, err := ComputePutAside(cg, col, ComputeOptions{Phase: "pa", Cabals: cabals, R: -1}, graph.NewRand(1)); err == nil {
		t.Fatal("negative r accepted")
	}
	overlap := [][]int{cabals[0], cabals[0]}
	if _, err := ComputePutAside(cg, col, ComputeOptions{Phase: "pa", Cabals: overlap, R: 1}, graph.NewRand(1)); err == nil {
		t.Fatal("overlapping cabals accepted")
	}
}

// colorAllBut colors every vertex except the given set, using distinct
// colors within each cabal (a proper coloring by construction when cliques
// are near-disjoint), retrying colors against neighbors.
func colorAllBut(t *testing.T, g *graph.Graph, col *coloring.Coloring, skip map[int]bool) {
	t.Helper()
	for v := 0; v < g.N(); v++ {
		if skip[v] {
			continue
		}
		pal := coloring.Palette(g, col, v)
		if len(pal) == 0 {
			t.Fatalf("no palette color for %d while preparing instance", v)
		}
		if err := col.Set(v, pal[0]); err != nil {
			t.Fatal(err)
		}
	}
}

func TestColorPutAsideViaFreeColors(t *testing.T) {
	// Large free palette: the TryFreeColors path should color everything.
	g, cabals := cabalInstance(t, 2, 30, 2, 13)
	cg := testCG(t, g)
	// Δ ≈ 33, so the color space is much larger than each 30-clique:
	// plenty of free colors.
	col := coloring.New(g.N(), g.MaxDegree())
	skip := map[int]bool{cabals[0][3]: true, cabals[0][7]: true}
	colorAllBut(t, g, col, skip)
	res, err := ColorPutAside(cg, col, DonateOptions{
		Phase:              "don",
		Cabal:              cabals[0],
		PutAside:           []int{cabals[0][3], cabals[0][7]},
		FreeColorThreshold: 1,
		BlockSize:          8,
		SampleTries:        16,
	}, graph.NewRand(15))
	if err != nil {
		t.Fatal(err)
	}
	if res.ViaFreeColors != 2 || res.Uncolored != 0 {
		t.Fatalf("result %+v, want 2 via free colors", res)
	}
	if err := coloring.VerifyComplete(g, col); err != nil {
		t.Fatal(err)
	}
}

func TestColorPutAsideViaDonation(t *testing.T) {
	// The donation regime: a clique of exactly Δ+1 vertices (its own Δ is
	// the graph's) with every color used once — the clique palette is
	// empty, so donation is the only route... except swaps. We engineer
	// it: clique K_n as the whole graph, n-1 colored with distinct colors,
	// 1 uncolored, color space n. One free color remains but we set the
	// threshold high to force the donor path; with a free replacement
	// color available, donors exist.
	n := 40
	g := graph.Clique(n)
	cg := testCG(t, g)
	col := coloring.New(n, g.MaxDegree()) // colors 1..n
	skip := map[int]bool{5: true}
	colorAllBut(t, g, col, skip)
	res, err := ColorPutAside(cg, col, DonateOptions{
		Phase:              "don",
		Cabal:              irange(0, n),
		PutAside:           []int{5},
		FreeColorThreshold: 1 << 20, // force donation path
		BlockSize:          8,
		SampleTries:        32,
	}, graph.NewRand(17))
	if err != nil {
		t.Fatal(err)
	}
	if res.ViaDonation+res.ViaFallback < 1 || res.Uncolored != 0 {
		t.Fatalf("result %+v, want vertex colored", res)
	}
	if err := coloring.VerifyComplete(g, col); err != nil {
		t.Fatal(err)
	}
}

func irange(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

func TestColorPutAsideSection24Setting(t *testing.T) {
	// The full Section 2.4 shape: several near-cliques with r external
	// neighbors each; r vertices per cabal stay uncolored; the donation
	// machinery must finish them while keeping the coloring proper.
	g, cabals := cabalInstance(t, 3, 50, 3, 19)
	cg := testCG(t, g)
	col := coloring.New(g.N(), g.MaxDegree())
	r := 4
	ps, err := ComputePutAside(cg, col, ComputeOptions{Phase: "pa", Cabals: cabals, R: r}, graph.NewRand(21))
	if err != nil {
		t.Fatal(err)
	}
	skip := map[int]bool{}
	for _, p := range ps {
		for _, v := range p {
			skip[v] = true
		}
	}
	colorAllBut(t, g, col, skip)
	totalDonated, totalFree, totalFallback := 0, 0, 0
	for i, members := range cabals {
		res, err := ColorPutAside(cg, col, DonateOptions{
			Phase:              "don",
			Cabal:              members,
			PutAside:           ps[i],
			FreeColorThreshold: 4 * r,
			BlockSize:          8,
			SampleTries:        32,
		}, graph.NewRand(23+uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if res.Uncolored != 0 {
			t.Fatalf("cabal %d: %d put-aside vertices left uncolored (%+v)", i, res.Uncolored, res)
		}
		totalDonated += res.ViaDonation
		totalFree += res.ViaFreeColors
		totalFallback += res.ViaFallback
	}
	if err := coloring.VerifyComplete(g, col); err != nil {
		t.Fatal(err)
	}
	if totalDonated+totalFree == 0 {
		t.Fatalf("all vertices went through fallback (donated=%d free=%d fallback=%d)", totalDonated, totalFree, totalFallback)
	}
}

func TestColorPutAsideValidation(t *testing.T) {
	g := graph.Clique(4)
	cg := testCG(t, g)
	col := coloring.New(4, 3)
	if _, err := ColorPutAside(cg, col, DonateOptions{Phase: "x", Cabal: irange(0, 4), PutAside: []int{0}, BlockSize: 0, SampleTries: 1}, graph.NewRand(1)); err == nil {
		t.Fatal("zero block size accepted")
	}
	if _, err := ColorPutAside(cg, col, DonateOptions{Phase: "x", Cabal: irange(0, 4), PutAside: []int{0}, BlockSize: 4, SampleTries: 0}, graph.NewRand(1)); err == nil {
		t.Fatal("zero sample tries accepted")
	}
	_ = col.Set(0, 1)
	if _, err := ColorPutAside(cg, col, DonateOptions{Phase: "x", Cabal: irange(0, 4), PutAside: []int{0}, BlockSize: 4, SampleTries: 1}, graph.NewRand(1)); err == nil {
		t.Fatal("colored put-aside vertex accepted")
	}
}

func TestColorPutAsideEmptySet(t *testing.T) {
	g := graph.Clique(4)
	cg := testCG(t, g)
	col := coloring.New(4, 3)
	res, err := ColorPutAside(cg, col, DonateOptions{Phase: "x", Cabal: irange(0, 4), BlockSize: 4, SampleTries: 1}, graph.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Uncolored != 0 || res.ViaDonation != 0 {
		t.Fatalf("empty put-aside result %+v", res)
	}
}
