// Package putaside implements the put-aside machinery of Sections 4.3 and 7:
//
//   - ComputePutAside (Lemma 4.18 / Algorithm 20): select r uncolored
//     inliers per cabal such that put-aside sets of different cabals are
//     mutually non-adjacent and few cabal vertices neighbor foreign
//     put-aside sets.
//
//   - ColorPutAside (Proposition 4.19 / Algorithms 8–10): color the
//     put-aside vertices in O(1) rounds. If the clique palette is large,
//     TryFreeColors samples hashed free colors; otherwise the 3-way
//     donation scheme runs: candidate donors with unique colors are found
//     (FindCandidateDonors), each uncolored vertex is matched to a distinct
//     replacement color and a block of donors holding similar colors
//     (FindSafeDonors), and finally a donor's color is transferred while the
//     donor recolors itself with the replacement (DonateColors).
//
// The paper's parameter values (ℓ_s = Θ(ℓ³), b = 256·ℓ_s⁶) only matter
// asymptotically; Options exposes them scaled, and a counted fallback path
// guarantees termination at laptop scale without masking the scheme's
// behaviour (experiments report how often donation vs fallback fired).
package putaside

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"clustercolor/internal/cluster"
	"clustercolor/internal/coloring"
)

// ComputeOptions configures put-aside set selection.
type ComputeOptions struct {
	Phase string
	// Cabals lists the member vertices of each cabal.
	Cabals [][]int
	// Eligible reports whether a vertex may join a put-aside set
	// (uncolored inliers). Nil admits every uncolored vertex.
	Eligible func(v int) bool
	// R is the target put-aside size per cabal (the reserved-color count).
	R int
}

// ComputePutAside implements Lemma 4.18: sample candidates in each cabal,
// drop cross-cabal conflicts, and keep r per cabal. Property 2 (no edges
// between put-aside sets of different cabals) is enforced exactly; a cabal
// that cannot field r conflict-free candidates gets as many as exist (the
// caller treats the shortfall via its fallback loop and the experiments
// record it).
func ComputePutAside(cg *cluster.CG, col *coloring.Coloring, opts ComputeOptions, rng *rand.Rand) ([][]int, error) {
	if opts.R < 0 {
		return nil, fmt.Errorf("putaside: negative target r=%d", opts.R)
	}
	cabalOf := make(map[int]int)
	for i, members := range opts.Cabals {
		for _, v := range members {
			if prev, dup := cabalOf[v]; dup {
				return nil, fmt.Errorf("putaside: vertex %d in cabals %d and %d", v, prev, i)
			}
			cabalOf[v] = i
		}
	}
	// Candidate sampling: 2r eligible uncolored vertices per cabal, chosen
	// uniformly (one O(log n)-bit announce round).
	cg.ChargeHRounds(opts.Phase+"/sample", 1, 2*cg.IDBits())
	candidates := make([][]int, len(opts.Cabals))
	for i, members := range opts.Cabals {
		var pool []int
		for _, v := range members {
			if col.IsColored(v) {
				continue
			}
			if opts.Eligible != nil && !opts.Eligible(v) {
				continue
			}
			pool = append(pool, v)
		}
		rng.Shuffle(len(pool), func(a, b int) { pool[a], pool[b] = pool[b], pool[a] })
		take := 2 * opts.R
		if take > len(pool) {
			take = len(pool)
		}
		candidates[i] = pool[:take]
	}
	// Conflict detection: one neighbor-exchange round; a candidate with a
	// candidate neighbor in another cabal drops out (both sides drop,
	// which keeps the rule symmetric and the property exact).
	cg.ChargeHRounds(opts.Phase+"/conflict", 1, 8)
	isCandidate := make(map[int]bool)
	for _, cs := range candidates {
		for _, v := range cs {
			isCandidate[v] = true
		}
	}
	conflicted := make(map[int]bool)
	for _, cs := range candidates {
		for _, v := range cs {
			for _, u := range cg.H.Neighbors(v) {
				w := int(u)
				if isCandidate[w] && cabalOf[w] != cabalOf[v] {
					conflicted[v] = true
					break
				}
			}
		}
	}
	out := make([][]int, len(opts.Cabals))
	selected := make(map[int]int)
	for i, cs := range candidates {
		var keep []int
		for _, v := range cs {
			if !conflicted[v] {
				keep = append(keep, v)
				selected[v] = i
			}
			if len(keep) == opts.R {
				break
			}
		}
		out[i] = keep
	}
	// Refill pass (one extra round): cabals short of r admit further
	// eligible vertices that do not neighbor any foreign selection —
	// checking against the live selection keeps Property 2 invariant.
	cg.ChargeHRounds(opts.Phase+"/refill", 1, 2*cg.IDBits())
	for i, members := range opts.Cabals {
		if len(out[i]) >= opts.R {
			continue
		}
		for _, v := range members {
			if len(out[i]) >= opts.R {
				break
			}
			if _, already := selected[v]; already {
				continue
			}
			if col.IsColored(v) {
				continue
			}
			if opts.Eligible != nil && !opts.Eligible(v) {
				continue
			}
			ok := true
			for _, u := range cg.H.Neighbors(v) {
				if j, sel := selected[int(u)]; sel && j != i {
					ok = false
					break
				}
			}
			if ok {
				out[i] = append(out[i], v)
				selected[v] = i
			}
		}
		sort.Ints(out[i])
	}
	for i := range out {
		sort.Ints(out[i])
	}
	// Verify Property 2 exactly.
	inPutAside := make(map[int]int)
	for i, ps := range out {
		for _, v := range ps {
			inPutAside[v] = i
		}
	}
	for v, i := range inPutAside {
		for _, u := range cg.H.Neighbors(v) {
			if j, ok := inPutAside[int(u)]; ok && j != i {
				return nil, fmt.Errorf("putaside: edge between put-aside sets %d and %d", i, j)
			}
		}
	}
	return out, nil
}

// ForeignAdjacencyFraction measures Property 3 of Lemma 4.18: the fraction
// of a cabal's members adjacent to put-aside vertices of other cabals.
func ForeignAdjacencyFraction(cg *cluster.CG, cabal []int, cabalIdx int, putAside [][]int) float64 {
	foreign := make(map[int]bool)
	for j, ps := range putAside {
		if j == cabalIdx {
			continue
		}
		for _, v := range ps {
			foreign[v] = true
		}
	}
	if len(cabal) == 0 {
		return 0
	}
	hit := 0
	for _, v := range cabal {
		for _, u := range cg.H.Neighbors(v) {
			if foreign[int(u)] {
				hit++
				break
			}
		}
	}
	return float64(hit) / float64(len(cabal))
}
