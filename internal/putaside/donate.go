package putaside

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"clustercolor/internal/cluster"
	"clustercolor/internal/coloring"
)

// DonateOptions configures ColorPutAside for one cabal.
type DonateOptions struct {
	Phase string
	// Cabal is the member list of K.
	Cabal []int
	// PutAside is P_K, the uncolored vertices to color.
	PutAside []int
	// Inlier reports whether a vertex is an inlier of K (candidate donors
	// must be inliers). Nil admits every member.
	Inlier func(v int) bool
	// ForbiddenDonors marks vertices that may not donate (members adjacent
	// to foreign put-aside or candidate sets — Lemma 7.2 Property 2). Nil
	// forbids nothing.
	ForbiddenDonors func(v int) bool
	// FreeColorThreshold is the scaled ℓ_s: with at least this many free
	// colors in the clique palette, TryFreeColors handles everything.
	FreeColorThreshold int
	// BlockSize is the scaled b: donors are grouped by color blocks of
	// this size so donations compress into O(log n)-bit messages.
	BlockSize int
	// SampleTries is k = Θ(log n / log log n), the donations each
	// recipient may test.
	SampleTries int
	// Scratch is the caller-owned palette scratch used for availability
	// tests and exact palette materialization (nil allocates a private
	// one). Parallel per-cabal callers pass their worker's scratch.
	Scratch *coloring.PaletteScratch
}

// DonateResult reports how the put-aside vertices got colored.
type DonateResult struct {
	// ViaFreeColors counts vertices colored from the clique palette
	// (Algorithm 8 Step 2).
	ViaFreeColors int
	// ViaDonation counts vertices colored by the 3-way donation scheme.
	ViaDonation int
	// ViaFallback counts vertices colored by the counted fallback path
	// (exact palette lookup), which the asymptotic analysis makes
	// unnecessary but finite scale occasionally needs.
	ViaFallback int
	// Uncolored counts vertices left for the caller's cleanup loop.
	Uncolored int
	// Recolored counts donors that swapped to a replacement color.
	Recolored int
}

// ColorPutAside implements Algorithm 8 for one cabal. The caller runs it per
// cabal; cross-cabal safety comes from ComputePutAside's Property 2 and from
// donors never being adjacent to foreign put-aside/donor sets.
func ColorPutAside(cg *cluster.CG, col *coloring.Coloring, opts DonateOptions, rng *rand.Rand) (*DonateResult, error) {
	if opts.BlockSize <= 0 {
		return nil, fmt.Errorf("putaside: block size %d must be positive", opts.BlockSize)
	}
	if opts.SampleTries <= 0 {
		return nil, fmt.Errorf("putaside: sample tries %d must be positive", opts.SampleTries)
	}
	if opts.Scratch == nil {
		opts.Scratch = coloring.NewPaletteScratch()
	}
	res := &DonateResult{}
	uncolored := make([]int, 0, len(opts.PutAside))
	for _, v := range opts.PutAside {
		if col.IsColored(v) {
			return nil, fmt.Errorf("putaside: put-aside vertex %d already colored", v)
		}
		uncolored = append(uncolored, v)
	}
	if len(uncolored) == 0 {
		return res, nil
	}
	cp := coloring.BuildCliquePalette(cg, col, opts.Cabal)
	if cp.FreeCount() >= opts.FreeColorThreshold {
		n, err := tryFreeColors(cg, col, cp, uncolored, opts, rng)
		if err != nil {
			return nil, err
		}
		res.ViaFreeColors = n
		uncolored = stillUncolored(col, uncolored)
	}
	if len(uncolored) > 0 {
		don, rec, err := donate(cg, col, cp, uncolored, opts, rng)
		if err != nil {
			return nil, err
		}
		res.ViaDonation = don
		res.Recolored = rec
		uncolored = stillUncolored(col, uncolored)
	}
	if len(uncolored) > 0 {
		// Counted fallback: exact palette lookup, charged as the expensive
		// Ω(Δ/log n)-round primitive it is (Figure 2's lower bound).
		n, err := fallbackExact(cg, col, uncolored, opts.Phase, opts.Scratch, rng)
		if err != nil {
			return nil, err
		}
		res.ViaFallback = n
		uncolored = stillUncolored(col, uncolored)
	}
	res.Uncolored = len(uncolored)
	return res, nil
}

func stillUncolored(col *coloring.Coloring, vs []int) []int {
	var out []int
	for _, v := range vs {
		if !col.IsColored(v) {
			out = append(out, v)
		}
	}
	return out
}

// tryFreeColors is Algorithm 8 Step 2: each uncolored vertex samples
// SampleTries indices into the clique palette (hashes keep messages at
// O(log n) bits, Lemma D.9), keeps one that conflicts with neither external
// neighbors nor other put-aside vertices' picks.
func tryFreeColors(cg *cluster.CG, col *coloring.Coloring, cp *coloring.CliquePalette,
	uncolored []int, opts DonateOptions, rng *rand.Rand) (int, error) {
	free := cp.FreeView()
	if len(free) == 0 {
		return 0, nil
	}
	// Hash agreement + sampled-query round + response round.
	cg.ChargeHRounds(opts.Phase+"/free-hash", 1, 2*cg.IDBits())
	cg.ChargeHRounds(opts.Phase+"/free-query", 1, 2*cg.IDBits())
	colored := 0
	taken := make(map[int32]bool)
	for _, v := range uncolored {
		// One neighborhood load answers every sampled-color test in O(1).
		opts.Scratch.Load(cg.H, col, v)
		var chosen int32
		for try := 0; try < opts.SampleTries; try++ {
			c := free[rng.IntN(len(free))]
			if taken[c] {
				continue
			}
			if opts.Scratch.LoadedAvailable(c) {
				chosen = c
				break
			}
		}
		if chosen == coloring.None {
			continue
		}
		taken[chosen] = true
		if err := col.Set(v, chosen); err != nil {
			return colored, err
		}
		colored++
	}
	return colored, nil
}

// donate runs FindCandidateDonors + FindSafeDonors + DonateColors
// (Algorithms 9 and 10 plus Step 6 of Algorithm 8).
func donate(cg *cluster.CG, col *coloring.Coloring, cp *coloring.CliquePalette,
	uncolored []int, opts DonateOptions, rng *rand.Rand) (donated, recolored int, err error) {
	inPutAside := make(map[int]bool, len(opts.PutAside))
	for _, v := range opts.PutAside {
		inPutAside[v] = true
	}
	// --- FindCandidateDonors (Algorithm 9 / Lemma 7.2) ---
	// Q_K: colored inliers with a unique color in K, not adjacent to
	// foreign put-aside/candidate vertices and not in P_K.
	cg.ChargeHRounds(opts.Phase+"/candidates", 2, 2*cg.IDBits())
	var qK []int
	for _, v := range opts.Cabal {
		if inPutAside[v] || !col.IsColored(v) {
			continue
		}
		if opts.Inlier != nil && !opts.Inlier(v) {
			continue
		}
		if opts.ForbiddenDonors != nil && opts.ForbiddenDonors(v) {
			continue
		}
		if !cp.IsUnique(col.Get(v)) {
			continue
		}
		qK = append(qK, v)
	}
	if len(qK) == 0 {
		return 0, 0, nil
	}
	// --- FindSafeDonors (Algorithm 10 / Lemma 7.3) ---
	// Each candidate samples a replacement color from the clique palette,
	// keeps it only if available; donors are then grouped by (replacement
	// color, block of own color). Each recipient gets a distinct
	// replacement color with a non-empty donor group.
	free := cp.FreeView()
	if len(free) == 0 {
		return 0, 0, nil
	}
	cg.ChargeHRounds(opts.Phase+"/safe-sample", 1, 2*cg.IDBits())
	groups := make(map[groupKey][]int)
	for _, v := range qK {
		c := free[rng.IntN(len(free))]
		if !coloring.Available(cg.H, col, v, c) {
			continue // Step 1 of Algorithm 10: drop if c ∉ L(v)
		}
		block := (col.Get(v) - 1) / int32(opts.BlockSize)
		key := groupKey{recol: c, block: block}
		groups[key] = append(groups[key], v)
	}
	// Fingerprint-style group-size estimation + block selection: O(1)
	// rounds (Steps 2–4 of Algorithm 10).
	cg.ChargeHRounds(opts.Phase+"/safe-select", 3, 2*cg.IDBits())
	// Deterministic order over groups (largest first) so each recipient
	// takes the best remaining replacement color.
	keys := make([]groupKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	// Sort: larger groups first, ties by color then block for determinism.
	sortGroupKeys(keys, groups)
	usedRecol := make(map[int32]bool)
	assignment := make(map[int]groupKey) // recipient → group
	gi := 0
	for _, u := range uncolored {
		for gi < len(keys) {
			k := keys[gi]
			gi++
			if usedRecol[k.recol] {
				continue
			}
			usedRecol[k.recol] = true
			assignment[u] = k
			break
		}
	}
	// --- DonateColors (Step 6 of Algorithm 8) ---
	// Recipient u samples donors from its group; a donation works when the
	// donor's color is unused by u's external neighbors. Donations are
	// k·log(b)-bit messages (block index + offsets).
	cg.ChargeHRounds(opts.Phase+"/donate", 2, 2*cg.IDBits())
	usedDonor := make(map[int]bool)
	for _, u := range uncolored {
		key, ok := assignment[u]
		if !ok {
			continue
		}
		donors := groups[key]
		// One load of u's neighborhood answers every donor test in O(1).
		opts.Scratch.Load(cg.H, col, u)
		var donor int = -1
		for try := 0; try < opts.SampleTries && try < 4*len(donors); try++ {
			v := donors[rng.IntN(len(donors))]
			if usedDonor[v] {
				continue
			}
			// The donated color must be free for u: not used by u's
			// (external) neighbors. In-clique uniqueness holds because
			// candidates hold unique colors.
			if opts.Scratch.LoadedAvailable(col.Get(v)) || onlyBlockerIsDonor(cg, col, u, v) {
				donor = v
				break
			}
		}
		if donor < 0 {
			continue
		}
		usedDonor[donor] = true
		donatedColor := col.Get(donor)
		// Swap: donor takes its replacement, u takes the donated color.
		col.Unset(donor)
		if err := col.Set(donor, key.recol); err != nil {
			return donated, recolored, fmt.Errorf("putaside: recoloring donor: %w", err)
		}
		if err := col.Set(u, donatedColor); err != nil {
			return donated, recolored, fmt.Errorf("putaside: coloring recipient: %w", err)
		}
		// Post-swap safety check (both vertices proper).
		if !properAt(cg, col, donor) || !properAt(cg, col, u) {
			// Undo and skip; the fallback path will handle u.
			col.Unset(u)
			col.Unset(donor)
			if err := col.Set(donor, donatedColor); err != nil {
				return donated, recolored, err
			}
			continue
		}
		donated++
		recolored++
	}
	return donated, recolored, nil
}

// onlyBlockerIsDonor reports whether the single neighbor of u holding
// col(v) is v itself (then the swap frees the color for u).
func onlyBlockerIsDonor(cg *cluster.CG, col *coloring.Coloring, u, v int) bool {
	c := col.Get(v)
	for _, w := range cg.H.Neighbors(u) {
		if int(w) != v && col.Get(int(w)) == c {
			return false
		}
	}
	// u must actually be adjacent to v for this route to matter; if not,
	// Available already answered.
	return cg.H.HasEdge(u, v)
}

func properAt(cg *cluster.CG, col *coloring.Coloring, v int) bool {
	c := col.Get(v)
	if c == coloring.None {
		return true
	}
	for _, u := range cg.H.Neighbors(v) {
		if col.Get(int(u)) == c {
			return false
		}
	}
	return true
}

// fallbackExact colors remaining vertices by exact palette lookup — the
// primitive Figure 2 shows costs Ω(Δ/log n) rounds, charged as such.
func fallbackExact(cg *cluster.CG, col *coloring.Coloring, uncolored []int, phase string,
	scratch *coloring.PaletteScratch, rng *rand.Rand) (int, error) {
	delta := col.Delta()
	bw := cg.Cost().Bandwidth()
	hops := (delta + bw - 1) / bw
	if hops < 1 {
		hops = 1
	}
	cg.ChargeHRounds(phase+"/fallback", hops, bw)
	colored := 0
	for _, v := range uncolored {
		pal := scratch.Palette(cg.H, col, v)
		if len(pal) == 0 {
			continue
		}
		if err := col.Set(v, pal[rng.IntN(len(pal))]); err != nil {
			return colored, err
		}
		if !properAt(cg, col, v) {
			col.Unset(v)
			continue
		}
		colored++
	}
	return colored, nil
}

// groupKey identifies a donor group: the shared replacement color c_i and
// the block B_j the donors' own colors come from (Lemma 7.3 Properties 1, 3).
type groupKey struct {
	recol int32
	block int32
}

// sortGroupKeys orders donor groups largest-first with deterministic
// tie-breaking, so recipients claim the best-stocked replacement colors.
func sortGroupKeys(keys []groupKey, groups map[groupKey][]int) {
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if len(groups[a]) != len(groups[b]) {
			return len(groups[a]) > len(groups[b])
		}
		if a.recol != b.recol {
			return a.recol < b.recol
		}
		return a.block < b.block
	})
}
