package shard

import (
	"testing"

	"clustercolor/internal/cluster"
	"clustercolor/internal/graph"
	"clustercolor/internal/network"
	"clustercolor/internal/parwork"
	"clustercolor/internal/sketch"
)

func testCG(t *testing.T, h *graph.Graph, seed uint64) *cluster.CG {
	t.Helper()
	rng := graph.NewRand(seed)
	exp, err := graph.Expand(h, graph.ExpandSpec{Topology: graph.TopologySingleton}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := network.NewCostModel(64)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := cluster.New(h, exp, cost)
	if err != nil {
		t.Fatal(err)
	}
	return cg
}

// runUnsharded runs one reference collect wave on the vertex-level engine.
func runUnsharded(t *testing.T, cg *cluster.CG, width int, opts sketch.CollectOptions) ([]int8, int, int64) {
	t.Helper()
	cost, err := network.NewCostModel(64)
	if err != nil {
		t.Fatal(err)
	}
	run := cg.WithCost(cost)
	eng := sketch.Engine[int8]{Kernel: sketch.MaxKernel{}}
	n := run.H.N()
	if err := eng.FillSamples(n, width, parwork.RowSeed(99, 0)); err != nil {
		t.Fatal(err)
	}
	maxBits, err := eng.Collect(run, "wave", opts)
	if err != nil {
		t.Fatal(err)
	}
	flat := make([]int8, 0, n*width)
	for v := 0; v < n; v++ {
		flat = append(flat, eng.Row(v)...)
	}
	return flat, maxBits, run.Cost().Rounds()
}

// runSharded runs the same wave on the shard engine at a given shard count
// and parallelism and returns the owner-resolved rows plus charges and
// exchange stats.
func runSharded(t *testing.T, cg *cluster.CG, shards, par, width int, opts CollectOptions) ([]int8, int, int64, ExchangeStats) {
	t.Helper()
	prev := parwork.SetParallelism(par)
	defer parwork.SetParallelism(prev)
	cost, err := network.NewCostModel(64)
	if err != nil {
		t.Fatal(err)
	}
	run := cg.WithCost(cost)
	sg, err := graph.NewShardedGraph(run.H, shards)
	if err != nil {
		t.Fatal(err)
	}
	se := NewEngine(sg, sketch.MaxKernel{})
	if err := se.FillSamples(width, parwork.RowSeed(99, 0), "wave"); err != nil {
		t.Fatal(err)
	}
	maxBits, err := se.Collect(run, "wave", opts)
	if err != nil {
		t.Fatal(err)
	}
	n := run.H.N()
	flat := make([]int8, 0, n*width)
	for v := 0; v < n; v++ {
		flat = append(flat, se.Row(v)...)
	}
	return flat, maxBits, run.Cost().Rounds(), se.Stats
}

// TestShardedCollectByteIdentity is the substrate's core invariant: the
// collect wave must produce byte-identical rows and identical charges at
// shard counts 1/2/4 (plus non-dividing and all-boundary cases) and every
// parallelism, for both the plain and the predicate-filtered wave.
func TestShardedCollectByteIdentity(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"gnp": graph.MustGNP(180, 0.08, graph.NewRand(5)),
	}
	if rc, err := graph.RingOfCliques(8, 9); err == nil {
		graphs["ringcliques"] = rc // shard borders cut mid-clique
	} else {
		t.Fatal(err)
	}
	preds := map[string]func(v, u, slot int) bool{
		"all":  nil,
		"even": func(v, u, slot int) bool { return (v+u)%2 == 0 },
	}
	const width = 48
	for gname, h := range graphs {
		cg := testCG(t, h, 3)
		for pname, pred := range preds {
			want, wantBits, wantRounds := runUnsharded(t, cg, width, sketch.CollectOptions{Pred: pred})
			for _, shards := range []int{1, 2, 4, 7} {
				for _, par := range []int{1, 4} {
					got, gotBits, gotRounds, stats := runSharded(t, cg, shards, par, width, CollectOptions{Pred: pred})
					label := gname + "/" + pname
					if gotBits != wantBits {
						t.Fatalf("%s shards=%d par=%d: payload %d, want %d", label, shards, par, gotBits, wantBits)
					}
					if gotRounds != wantRounds {
						t.Fatalf("%s shards=%d par=%d: rounds %d, want %d", label, shards, par, gotRounds, wantRounds)
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("%s shards=%d par=%d: row bytes diverge at cell %d", label, shards, par, i)
						}
					}
					if shards == 1 && (stats.Rows != 0 || stats.Bits != 0) {
						t.Fatalf("%s: single shard shipped %d rows / %d bits across boundaries", label, stats.Rows, stats.Bits)
					}
					if shards > 1 && gname == "ringcliques" && stats.Rows == 0 {
						t.Fatalf("%s shards=%d: no boundary traffic on a cut graph", label, shards)
					}
				}
			}
		}
	}
}

// TestShardedCollectIncludeSelf covers the IncludeSelf merge path.
func TestShardedCollectIncludeSelf(t *testing.T) {
	h := graph.MustGNP(90, 0.1, graph.NewRand(8))
	cg := testCG(t, h, 4)
	want, wantBits, _ := runUnsharded(t, cg, 32, sketch.CollectOptions{IncludeSelf: true})
	got, gotBits, _, _ := runSharded(t, cg, 3, 4, 32, CollectOptions{IncludeSelf: true})
	if gotBits != wantBits {
		t.Fatalf("payload %d, want %d", gotBits, wantBits)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IncludeSelf rows diverge at cell %d", i)
		}
	}
}

// TestExchangeStatsAccounting pins the bookkeeping: per-pair bits sum to the
// total, phases are recorded in order, and an exchange phase exists per
// wave (samples + out).
func TestExchangeStatsAccounting(t *testing.T) {
	h, err := graph.RingOfCliques(6, 8)
	if err != nil {
		t.Fatal(err)
	}
	cg := testCG(t, h, 9)
	_, _, _, stats := runSharded(t, cg, 4, 2, 40, CollectOptions{})
	if len(stats.Phases) != 2 {
		t.Fatalf("want 2 exchange phases (samples, out), got %d: %+v", len(stats.Phases), stats.Phases)
	}
	if stats.Phases[0].Phase != "wave/samples" || stats.Phases[1].Phase != "wave/out" {
		t.Fatalf("unexpected phase labels: %+v", stats.Phases)
	}
	var pairSum, phaseSum int64
	for _, b := range stats.PairBits {
		pairSum += b
	}
	for _, ph := range stats.Phases {
		phaseSum += ph.Bits
		if ph.Bits > stats.MaxPhaseBits {
			t.Fatalf("phase %q bits %d exceed MaxPhaseBits %d", ph.Phase, ph.Bits, stats.MaxPhaseBits)
		}
	}
	if pairSum != stats.Bits || phaseSum != stats.Bits {
		t.Fatalf("pair sum %d / phase sum %d disagree with total %d", pairSum, phaseSum, stats.Bits)
	}
	if stats.Rows == 0 || stats.Bits == 0 {
		t.Fatal("cut graph produced no boundary traffic")
	}
}

// TestShardedEmptyAndTinyShards drives the engine over degenerate
// partitions: more shards than vertices and single-vertex shards.
func TestShardedEmptyAndTinyShards(t *testing.T) {
	h := graph.Clique(5)
	cg := testCG(t, h, 11)
	want, wantBits, _ := runUnsharded(t, cg, 24, sketch.CollectOptions{})
	for _, shards := range []int{5, 9} {
		got, gotBits, _, _ := runSharded(t, cg, shards, 2, 24, CollectOptions{})
		if gotBits != wantBits {
			t.Fatalf("shards=%d: payload %d, want %d", shards, gotBits, wantBits)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shards=%d: rows diverge at cell %d", shards, i)
			}
		}
	}
}
