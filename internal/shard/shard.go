// Package shard runs sketch waves on a partitioned graph: each shard slice
// owns a contiguous vertex range with its own arenas and worker-pool share,
// and rounds are stitched together by explicit boundary-exchange phases that
// ship sample and sketch rows to the shards whose halos reference them,
// routed by owner shard. Because the kernels' merges are commutative,
// associative, and idempotent (the internal/sketch semilattice laws), a
// per-shard fold over the local CSR — owned neighbors first, then halo
// neighbors — produces rows byte-identical to the unsharded fold over the
// global CSR, at every shard count and every parallelism.
//
// Cost accounting: the shards execute the same logical wave in lockstep, so
// the wave's round cost on the cluster-graph model is charged once,
// globally, exactly as the unsharded engine charges it — the per-link
// budgets of a partitioned run sum to the single-engine budgets. What is
// genuinely new in a partitioned run, the cross-shard row traffic, is
// tracked separately in ExchangeStats and surfaced by BENCH_shard.json.
package shard

import (
	"fmt"
	"time"

	"clustercolor/internal/cluster"
	"clustercolor/internal/graph"
	"clustercolor/internal/parwork"
	"clustercolor/internal/sketch"
)

// PhaseStats records one boundary-exchange phase.
type PhaseStats struct {
	// Phase labels the wave the exchange belongs to.
	Phase string
	// Rows is the number of sketch rows shipped across shard boundaries.
	Rows int64
	// Bits is the total deviation-encoded size of the shipped rows.
	Bits int64
	// Ns is the wall-clock cost of the phase — copy plus encoding-size
	// accounting — for the speedup-curve emitters. Timing feeds no
	// algorithmic decision; outputs are identical whatever the clock says.
	Ns int64
}

// ExchangeStats aggregates the cross-shard traffic of a partitioned run.
type ExchangeStats struct {
	// Phases lists every boundary-exchange phase in execution order.
	Phases []PhaseStats
	// Rows and Bits total the per-phase counts.
	Rows int64
	Bits int64
	// ExchangeNs totals the per-phase wall-clock cost.
	ExchangeNs int64
	// MaxPhaseBits is the largest single-phase exchange.
	MaxPhaseBits int64
	// PairBits sums bits per directed (from, to) shard pair.
	PairBits map[[2]int]int64
}

func (st *ExchangeStats) record(phase string, rows, bits, ns int64) {
	st.Phases = append(st.Phases, PhaseStats{Phase: phase, Rows: rows, Bits: bits, Ns: ns})
	st.Rows += rows
	st.Bits += bits
	st.ExchangeNs += ns
	if bits > st.MaxPhaseBits {
		st.MaxPhaseBits = bits
	}
}

// Engine runs sketch waves over a sharded graph: one sample and one output
// arena per slice (owned rows followed by halo rows, mirroring the local
// CSR), one worker-pool share per slice under the process parallelism
// budget, and the exchange bookkeeping.
type Engine[C sketch.Cell] struct {
	SG     *graph.ShardedGraph
	Kernel sketch.Kernel[C]
	Stats  ExchangeStats

	states []shardState[C]
	pools  []*parwork.ShardPool
	trials int
}

type shardState[C sketch.Cell] struct {
	samples sketch.Arena[C]
	out     sketch.Arena[C]
}

// NewEngine returns an engine for the sharded graph running kernel k. The
// decomposition's waves all run the narrow max kernel, so the constructor is
// typed to int8 cells — existing call sites stay source-compatible, and a
// wider kernel would take an explicit Engine literal anyway (Go cannot infer
// the cell width from a concrete kernel value).
func NewEngine(sg *graph.ShardedGraph, k sketch.Kernel[int8]) *Engine[int8] {
	e := &Engine[int8]{
		SG:     sg,
		Kernel: k,
		states: make([]shardState[int8], sg.NumShards()),
		pools:  parwork.SplitPools(sg.NumShards()),
	}
	e.Stats.PairBits = make(map[[2]int]int64)
	return e
}

// FillSamples regenerates every shard's sample rows for a wave: owned rows
// fill locally from the global per-vertex counter streams (row v is
// Kernel.Fill(row, RowSeed(seed, v)) — a pure function of the global id, so
// shard boundaries cannot shift the bytes), then one boundary-exchange
// phase ships the rows of boundary vertices into the halos that reference
// them.
func (e *Engine[C]) FillSamples(t int, seed uint64, phase string) error {
	e.trials = t
	k := e.SG.NumShards()
	if _, err := parwork.ForEach(k, func(s int) (struct{}, error) {
		sl := e.SG.Slices[s]
		st := &e.states[s]
		st.samples.Reset(sl.CSR.N(), t)
		st.out.Reset(sl.CSR.N(), t)
		return struct{}{}, e.pools[s].ForRange(sl.Own(), func(lo, hi int) error {
			for lv := lo; lv < hi; lv++ {
				e.Kernel.Fill(st.samples.Row(lv), parwork.RowSeed(seed, sl.Lo+lv))
			}
			return nil
		})
	}); err != nil {
		return err
	}
	return e.exchange(phase+"/samples", func(s int) *sketch.Arena[C] { return &e.states[s].samples })
}

// CollectOptions mirrors sketch.CollectOptions with global vertex ids: Pred
// receives the global endpoints and the global CSR slot, so the same
// memoized predicates (the acd buddy bitmap) drive sharded and unsharded
// runs identically. On global-graph-less slices there is no global slot —
// Pred then receives slot = -1, and predicates memoized per edge should use
// LocalPred instead, which takes precedence over Pred and receives the
// shard, the local endpoint ids, and the local directed slot of the owned
// row being folded.
type CollectOptions struct {
	IncludeSelf bool
	Pred        func(v, u, slot int) bool
	LocalPred   func(s, lv, lu, lslot int) bool
}

// Collect runs one aggregation wave: every shard folds its owned rows over
// its local CSR on its own pool share (halo sample rows were provided by
// FillSamples' exchange), the wave is charged once globally — one H-round
// plus the payload round at the global maximum encoded row, exactly the
// unsharded Collect charge — and a boundary-exchange phase then ships the
// collected rows of boundary vertices into neighboring halos for the
// estimate and predicate passes that follow. Returns the charged payload
// bits.
func (e *Engine[C]) Collect(cg *cluster.CG, phase string, opts CollectOptions) (int, error) {
	k := e.SG.NumShards()
	cg.ChargeHRounds(phase, 1, 0) // payload charged below with true size
	shardBits := make([]int, k)
	if _, err := parwork.ForEach(k, func(s int) (struct{}, error) {
		sl := e.SG.Slices[s]
		st := &e.states[s]
		var localOpts sketch.CollectOptions
		localOpts.IncludeSelf = opts.IncludeSelf
		switch {
		case opts.LocalPred != nil:
			pred := opts.LocalPred
			localOpts.Pred = func(lv, lu, lslot int) bool {
				return pred(s, lv, lu, lslot)
			}
		case opts.Pred != nil && sl.SlotToGlobal != nil:
			pred := opts.Pred
			localOpts.Pred = func(lv, lu, lslot int) bool {
				return pred(sl.Lo+lv, sl.ToGlobal(lu), int(sl.SlotToGlobal[lslot]))
			}
		case opts.Pred != nil:
			// Streaming slices carry no slot map; slot-free predicates (the
			// profile wave) still work with the sentinel.
			pred := opts.Pred
			localOpts.Pred = func(lv, lu, lslot int) bool {
				return pred(sl.Lo+lv, sl.ToGlobal(lu), -1)
			}
		}
		bits, err := sketch.CollectRows(sl.CSR, e.Kernel, &st.samples, &st.out, localOpts, sl.Own(), e.pools[s])
		if err != nil {
			return struct{}{}, err
		}
		shardBits[s] = bits
		return struct{}{}, nil
	}); err != nil {
		return 0, err
	}
	// The global payload maximum equals the unsharded maximum: every owned
	// row is encoded by exactly one shard and the rows are byte-identical.
	maxBits := 1
	for _, b := range shardBits {
		if b > maxBits {
			maxBits = b
		}
	}
	cg.ChargeHRounds(phase+"/payload", 1, maxBits)
	if err := e.exchange(phase+"/out", func(s int) *sketch.Arena[C] { return &e.states[s].out }); err != nil {
		return 0, err
	}
	return maxBits, nil
}

// Row returns the collected sketch row of global vertex v from its owner
// shard. Valid until the next Collect or FillSamples.
func (e *Engine[C]) Row(v int) []C {
	s := e.SG.Owner(v)
	return e.states[s].out.Row(v - e.SG.Slices[s].Lo)
}

// SampleRow returns the sample row of global vertex v from its owner shard.
func (e *Engine[C]) SampleRow(v int) []C {
	s := e.SG.Owner(v)
	return e.states[s].samples.Row(v - e.SG.Slices[s].Lo)
}

// OutRowLocal returns the out row of a local id within shard s — owned or
// halo — for shard-local passes.
func (e *Engine[C]) OutRowLocal(s, local int) []C { return e.states[s].out.Row(local) }

// Pool returns shard s's worker-pool share.
func (e *Engine[C]) Pool(s int) *parwork.ShardPool { return e.pools[s] }

// exchange is the boundary-exchange phase: for every shard, every halo row
// is copied from its owner's arena (routing by owner shard), and the shipped
// traffic — rows and deviation-encoded bits, the same encoding the network
// payload charges use — is recorded per phase and per shard pair. Shards
// fill their own halos in parallel; the ForEach barrier orders the phase
// after every owner's rows are final.
func (e *Engine[C]) exchange(phase string, arena func(s int) *sketch.Arena[C]) error {
	start := time.Now()
	k := e.SG.NumShards()
	type pairKey = [2]int
	rows := make([]int64, k)
	bitsTotal := make([]int64, k)
	pair := make([]map[pairKey]int64, k)
	if _, err := parwork.ForEach(k, func(s int) (struct{}, error) {
		sl := e.SG.Slices[s]
		dst := arena(s)
		own := sl.Own()
		var counts []int
		pp := make(map[pairKey]int64)
		for i, u32 := range sl.Halo {
			o := int(sl.HaloOwner[i])
			src := arena(o).Row(int(u32) - e.SG.Slices[o].Lo)
			copy(dst.Row(own+i), src)
			b := int64(e.Kernel.EncodedBits(src, &counts))
			rows[s]++
			bitsTotal[s] += b
			pp[pairKey{o, s}] += b
		}
		pair[s] = pp
		return struct{}{}, nil
	}); err != nil {
		return err
	}
	var totalRows, totalBits int64
	for s := 0; s < k; s++ {
		totalRows += rows[s]
		totalBits += bitsTotal[s]
		for pk, b := range pair[s] {
			e.Stats.PairBits[pk] += b
		}
	}
	e.Stats.record(phase, totalRows, totalBits, int64(time.Since(start)))
	return nil
}

// Trials returns the sample width of the current wave.
func (e *Engine[C]) Trials() int { return e.trials }

// ResetStats clears the exchange bookkeeping between runs.
func (e *Engine[C]) ResetStats() {
	e.Stats = ExchangeStats{PairBits: make(map[[2]int]int64)}
}

// Validate sanity-checks that the engine and graph agree on shard count.
func (e *Engine[C]) Validate() error {
	if len(e.states) != e.SG.NumShards() {
		return fmt.Errorf("shard: %d states for %d shards", len(e.states), e.SG.NumShards())
	}
	return nil
}
