package acd

import (
	"fmt"
	"math/rand/v2"

	"clustercolor/internal/cluster"
	"clustercolor/internal/fingerprint"
	"clustercolor/internal/parwork"
	"clustercolor/internal/sketch"
)

// Profile carries the per-vertex and per-clique quantities of Section 4.1
// computed on top of a decomposition: approximate external degrees ẽ_v,
// per-clique averages ẽ_K, exact clique sizes, the anti-degree proxy x_v of
// Equation (3), and the cabal classification ẽ_K < ℓ.
type Profile struct {
	Decomp *Decomposition
	// ExtDeg is ẽ_v per vertex (0 for sparse vertices).
	ExtDeg []float64
	// AvgExt is ẽ_K per clique.
	AvgExt []float64
	// Size is |K| per clique (computed exactly by aggregation).
	Size []int
	// IsCabal reports ẽ_K < ℓ per clique.
	IsCabal []bool
	// Ell is the cabal threshold ℓ used.
	Ell float64
	// Trees are BFS trees spanning each clique (used downstream for
	// ordering and prefix sums inside cliques).
	Trees []*cluster.HTree
}

// BuildProfile computes the profile of Section 4.1 with a workspace
// allocated for this call; see BuildProfileWith.
func BuildProfile(cg *cluster.CG, d *Decomposition, delta float64, ell float64, rng *rand.Rand) (*Profile, error) {
	return BuildProfileWith(cg, d, delta, ell, rng, NewWorkspace())
}

// BuildProfileWith computes the profile of Section 4.1 on a cluster graph:
// a fingerprint wave estimates external degrees (Lemma 5.7 with the
// predicate u ∉ K_v), then per-clique BFS trees aggregate sizes and
// averages (the proof of Theorem 1.2 does exactly this). The wave reuses the
// workspace's sample arena — refilled from a fresh seed, so it is
// independent of the decomposition waves as the lemma requires — and both
// the external-degree fold and the per-clique aggregation fan across the
// worker pool with byte-identical output at any parallelism level.
func BuildProfileWith(cg *cluster.CG, d *Decomposition, delta float64, ell float64, rng *rand.Rand, ws *Workspace) (*Profile, error) {
	if ell <= 0 {
		return nil, fmt.Errorf("acd: ell %v must be positive", ell)
	}
	n := cg.H.N()
	p := &Profile{
		Decomp:  d,
		ExtDeg:  make([]float64, n),
		AvgExt:  make([]float64, len(d.Cliques)),
		Size:    make([]int, len(d.Cliques)),
		IsCabal: make([]bool, len(d.Cliques)),
		Ell:     ell,
	}
	if len(d.Cliques) > 0 {
		seed := rng.Uint64()
		t, err := fingerprint.TrialsFor(0.25, n)
		if err != nil {
			return nil, err
		}
		eng := ws.engine()
		if err := eng.FillSamples(n, t, parwork.RowSeed(seed, 0)); err != nil {
			return nil, err
		}
		if _, err := eng.Collect(cg, "profile/extdeg", sketch.CollectOptions{
			Pred: func(v, u, slot int) bool {
				return d.CliqueOf[v] >= 0 && d.CliqueOf[u] != d.CliqueOf[v]
			},
		}); err != nil {
			return nil, err
		}
		if err := parwork.ForRange(n, func(lo, hi int) error {
			var est sketch.MaxEstimator[int8]
			for v := lo; v < hi; v++ {
				if d.CliqueOf[v] >= 0 {
					p.ExtDeg[v] = est.Estimate(eng.Row(v))
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
		// Per-clique BFS trees (disjoint subgraphs → parallel, Lemma 3.2).
		sources := make([]int, len(d.Cliques))
		for i, members := range d.Cliques {
			sources[i] = members[0]
			for _, v := range members {
				if v < sources[i] {
					sources[i] = v
				}
			}
		}
		trees, err := cg.BFSForest("profile/trees", d.Cliques, sources, n)
		if err != nil {
			return nil, err
		}
		p.Trees = trees
		// Aggregate |K| and Σẽ_v per clique: two O(log n)-bit aggregation
		// waves up the BFS trees, computed in parallel across the disjoint
		// cliques (each worker writes only its clique's slots).
		cg.ChargeHRounds("profile/aggregate", 2, 2*cg.IDBits())
		if _, err := parwork.ForEach(len(d.Cliques), func(i int) (struct{}, error) {
			members := d.Cliques[i]
			p.Size[i] = len(members)
			var sum float64
			for _, v := range members {
				sum += p.ExtDeg[v]
			}
			p.AvgExt[i] = sum / float64(len(members))
			p.IsCabal[i] = p.AvgExt[i] < ell
			return struct{}{}, nil
		}); err != nil {
			return nil, err
		}
	}
	_ = delta
	return p, nil
}

// ExactExternalDegree returns e_v computed exactly (test/verification aid).
func ExactExternalDegree(cg *cluster.CG, d *Decomposition, v int) int {
	if d.CliqueOf[v] < 0 {
		return 0
	}
	e := 0
	for _, u := range cg.H.Neighbors(v) {
		if d.CliqueOf[int(u)] != d.CliqueOf[v] {
			e++
		}
	}
	return e
}

// ExactAntiDegree returns a_v = |K_v \ N(v)| − 1 computed exactly.
func ExactAntiDegree(cg *cluster.CG, d *Decomposition, v int) int {
	k := d.CliqueOf[v]
	if k < 0 {
		return 0
	}
	a := 0
	for _, u := range d.Cliques[k] {
		if u != v && !cg.H.HasEdge(v, u) {
			a++
		}
	}
	return a
}

// AntiDegreeProxy returns x_v of Equation (3):
// x_v = |K| − (Δ+1) + ẽ_v, the quantity inliers are selected by in
// non-cabals (Equation (4)).
func (p *Profile) AntiDegreeProxy(v int, delta int) float64 {
	k := p.Decomp.CliqueOf[v]
	if k < 0 {
		return 0
	}
	return float64(p.Size[k]) - float64(delta+1) + p.ExtDeg[v]
}

// CabalVertices returns the vertices in cabals (V_cabal).
func (p *Profile) CabalVertices() []int {
	var out []int
	for i, members := range p.Decomp.Cliques {
		if p.IsCabal[i] {
			out = append(out, members...)
		}
	}
	return out
}
