//go:build !race

// The allocation-count assertion is meaningless (and slow) under the race
// detector: instrumentation both allocates and multiplies the arena waves'
// cost. `make race` covers the same code paths through the other tests.

package acd

import (
	"testing"

	"clustercolor/internal/graph"
	"clustercolor/internal/parwork"
)

// TestDecompositionAllocsIndependentOfN verifies the arena contract: with a
// reused Workspace, a full decomposition + profile build performs a bounded
// number of allocations that does not grow with the instance — a per-vertex
// or per-edge allocation would blow past the bound at n=8192 immediately.
// Parallelism is pinned to 1 so goroutine machinery doesn't add noise; the
// parallel path adds only O(workers) allocations per wave.
func TestDecompositionAllocsIndependentOfN(t *testing.T) {
	prev := parwork.SetParallelism(1)
	defer parwork.SetParallelism(prev)
	measure := func(n int) float64 {
		h, err := graph.GNP(n, 64/float64(n), graph.NewRand(uint64(n)))
		if err != nil {
			t.Fatal(err)
		}
		cg := asCGSingleton(t, h, 5)
		ws := NewWorkspace()
		seed := uint64(7)
		runOnce := func() {
			rng := parwork.StreamRNG(seed)
			d, err := ComputeWith(cg, 0.25, rng, ws)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := BuildProfileWith(cg, d, float64(h.MaxDegree()), 20, rng, ws); err != nil {
				t.Fatal(err)
			}
		}
		runOnce() // warm the workspace: arenas and scratch reach steady state
		return testing.AllocsPerRun(3, runOnce)
	}
	small := measure(2048)
	large := measure(8192)
	// BENCH_acd.json measures ~2.7k allocs at n=10⁵ and n=10⁶ alike; the
	// bound only needs to exclude per-vertex or per-edge scaling (≥ 8192
	// here).
	const bound = 4000
	if small > bound || large > bound {
		t.Fatalf("decomposition allocates %.0f (n=2048) / %.0f (n=8192) objects; want ≤ %d (arena contract)", small, large, bound)
	}
	// The counts may wiggle (lazy per-chunk scratch growth follows the
	// degree profile) but must not scale with n: 4× the vertices and edges,
	// same allocation budget.
	if large > small*1.5+64 {
		t.Fatalf("allocations grew with n: %.0f at n=2048 vs %.0f at n=8192", small, large)
	}
}
