package acd

import (
	"fmt"
	"math"
	"math/rand/v2"

	"clustercolor/internal/cluster"
	"clustercolor/internal/fingerprint"
	"clustercolor/internal/graph"
	"clustercolor/internal/parwork"
	"clustercolor/internal/shard"
	"clustercolor/internal/sketch"
)

// ComputeSharded runs the decomposition on a partitioned substrate with a
// workspace and shard engine allocated for this call; see ComputeShardedWith.
func ComputeSharded(cg *cluster.CG, sg *graph.ShardedGraph, eps float64, rng *rand.Rand) (*Decomposition, error) {
	return ComputeShardedWith(cg, shard.NewEngine(sg, sketch.MaxKernel{}), eps, rng, NewWorkspace())
}

// ComputeShardedWith is ComputeWith on a partitioned substrate: the sketch
// waves run per shard slice — each slice folds its own arenas over its local
// CSR on its worker-pool share, with boundary-exchange phases shipping
// sample and sketch rows by owner shard between the waves — and the buddy
// predicate is evaluated by the owner of each forward edge into the global
// slot bitmap through the slice slot maps. Every byte of randomness derives
// from the same draw, every row from the same global RowSeed stream, and
// every estimate from rows the kernel's semilattice merge makes identical to
// the unsharded fold, so the decomposition — and the cost-model charges,
// issued once globally per logical wave — is byte-identical to ComputeWith
// at every shard count and parallelism. Cross-shard traffic lands in the
// engine's ExchangeStats.
//
// The engine may partition a global-graph-less sharded graph (streaming
// construction, SG.G == nil): the buddy predicate is then memoized per shard
// into bitmaps keyed by local directed slots — each owned directed edge
// evaluates the symmetric predicate itself, replacing the forward+mirror
// passes — and component assembly walks the slices. Every estimate still
// derives from rows the semilattice merge makes byte-identical to the
// materialized fold, so the decomposition and the charges are unchanged; the
// cluster graph may be a materialized view over the same vertex count or a
// cluster.NewHeadless view for runs where the global graph never exists.
func ComputeShardedWith(cg *cluster.CG, se *shard.Engine[int8], eps float64, rng *rand.Rand, ws *Workspace) (*Decomposition, error) {
	if eps <= 0 || eps >= 1.0/3 {
		return nil, fmt.Errorf("acd: eps %v out of (0, 1/3)", eps)
	}
	sg := se.SG
	streaming := sg.G == nil
	if !streaming {
		if sg.G != cg.H {
			return nil, fmt.Errorf("acd: shard engine partitions a different graph")
		}
	} else if cg.H != nil && cg.H.N() != sg.N() {
		return nil, fmt.Errorf("acd: shard engine partitions %d vertices, cluster graph has %d", sg.N(), cg.H.N())
	}
	n := sg.N()
	delta := float64(sg.MaxDegree())
	seed := rng.Uint64()
	if delta == 0 {
		d := &Decomposition{Eps: eps, CliqueOf: make([]int, n)}
		for v := range d.CliqueOf {
			d.CliqueOf[v] = -1
		}
		return d, nil
	}
	xi := eps / 2
	t, err := fingerprint.TrialsFor(xi/2, n)
	if err != nil {
		return nil, err
	}
	// Wave 1: neighborhood sketches, per shard with a sample exchange.
	if err := se.FillSamples(t, parwork.RowSeed(seed, 0), "acd/nbhd"); err != nil {
		return nil, err
	}
	maxBits, err := se.Collect(cg, "acd/nbhd", shard.CollectOptions{})
	if err != nil {
		return nil, err
	}
	ws.deg = growFloats(ws.deg, n)
	if err := estimateSharded(se, ws.deg, nil); err != nil {
		return nil, err
	}
	cg.ChargeHRounds("acd/buddy-exchange", 1, maxBits)
	lowCut := (1 - 1.5*xi) * delta
	joinCut := (1 + 1.5*xi) * delta
	var wave2 shard.CollectOptions
	var assembleACD func() (*Decomposition, error)
	if !streaming {
		g := sg.G
		// Buddy predicate: each shard evaluates the forward edges of its
		// owned vertices from its local rows (halo rows arrived in the
		// collect's exchange), writing global slots through the slice slot
		// map; the mirror pass then reflects them onto reverse slots.
		buddy, err := fillEdgeBitsSharded(g, se, ws, t,
			func(v int) bool { return ws.deg[v] >= lowCut },
			func(s int, sl *graph.ShardSlice, sc *sketch.Scratch[int8], lv, lu, lslot int, set func(slot int)) {
				v := sl.Lo + lv
				u := sl.ToGlobal(lu)
				if u <= v || ws.deg[u] < lowCut {
					return
				}
				if sc.Est.EstimateMerged(se.OutRowLocal(s, lv), se.OutRowLocal(s, lu)) <= joinCut {
					set(int(sl.SlotToGlobal[lslot]))
				}
			})
		if err != nil {
			return nil, err
		}
		if cap(ws.buddySrc) < len(buddy) {
			ws.buddySrc = make([]uint64, len(buddy))
		}
		ws.buddySrc = ws.buddySrc[:len(buddy)]
		copy(ws.buddySrc, buddy)
		if err := mirrorEdgeBits(g, ws.buddySrc, buddy); err != nil {
			return nil, err
		}
		wave2.Pred = func(v, u, slot int) bool { return buddy[slot>>6]&(1<<(slot&63)) != 0 }
		assembleACD = func() (*Decomposition, error) {
			return assemble(g, eps, ws.dense, func(v, u, slot int) bool {
				return buddy[slot>>6]&(1<<(slot&63)) != 0
			}, ws)
		}
	} else {
		// No global slots exist: each shard memoizes the predicate into its
		// own local-slot bitmap, evaluating every owned directed edge — the
		// kernel's merge is commutative, so both directions of an edge
		// compute the identical estimate and the bits agree with the
		// materialized forward+mirror result without a mirror pass (which
		// would need the global CSR).
		buddy, wordOff, err := fillEdgeBitsShardedLocal(se, ws, t,
			func(v int) bool { return ws.deg[v] >= lowCut },
			func(s int, sl *graph.ShardSlice, sc *sketch.Scratch[int8], lv, lu, lslot int, set func(slot int)) {
				if ws.deg[sl.ToGlobal(lu)] < lowCut {
					return
				}
				if sc.Est.EstimateMerged(se.OutRowLocal(s, lv), se.OutRowLocal(s, lu)) <= joinCut {
					set(lslot)
				}
			})
		if err != nil {
			return nil, err
		}
		isBuddy := func(s, lslot int) bool {
			return buddy[wordOff[s]+(lslot>>6)]&(1<<(lslot&63)) != 0
		}
		wave2.LocalPred = func(s, lv, lu, lslot int) bool { return isBuddy(s, lslot) }
		assembleACD = func() (*Decomposition, error) {
			return assembleShardedStream(se, eps, ws.dense, isBuddy, ws)
		}
	}
	// Wave 2: buddy-edge counts against the memoized bitmap.
	if err := se.FillSamples(t, parwork.RowSeed(seed, 1), "acd/buddy-count"); err != nil {
		return nil, err
	}
	if _, err := se.Collect(cg, "acd/buddy-count", wave2); err != nil {
		return nil, err
	}
	ws.count = growFloats(ws.count, n)
	if err := estimateSharded(se, ws.count, nil); err != nil {
		return nil, err
	}
	if cap(ws.dense) < n {
		ws.dense = make([]bool, n)
	}
	ws.dense = ws.dense[:n]
	denseCut := (1 - 1.5*xi) * delta
	for v := 0; v < n; v++ {
		ws.dense[v] = ws.count[v] >= denseCut
	}
	cg.ChargeHRounds("acd/leaders", 3, cg.IDBits())
	return assembleACD()
}

// estimateSharded fills out[v] with the estimator applied to v's collected
// row, per shard on its pool share. A non-nil keep predicate gates which
// vertices receive an estimate (others keep their zero value) — the profile
// wave estimates clique members only.
func estimateSharded(se *shard.Engine[int8], out []float64, keep func(v int) bool) error {
	k := se.SG.NumShards()
	_, err := parwork.ForEach(k, func(s int) (struct{}, error) {
		sl := se.SG.Slices[s]
		return struct{}{}, se.Pool(s).ForRange(sl.Own(), func(lo, hi int) error {
			var est sketch.MaxEstimator[int8]
			for lv := lo; lv < hi; lv++ {
				v := sl.Lo + lv
				if keep != nil && !keep(v) {
					continue
				}
				out[v] = est.Estimate(se.OutRowLocal(s, lv))
			}
			return nil
		})
	})
	return err
}

// blockedEdgeSweep drives the cache-blocked edge evaluation of a shard
// chunk: for every admitted owned source lv in [lo, hi) it calls
// eval(lv, lu, lslot) for each neighbor slot, sweeping the sources' neighbor
// runs in ascending blocks of blockRows local target ids — slice neighbor
// lists are sorted ascending by local id (owned then halo sub-rows), so each
// source contributes one contiguous run per round and a block of target rows
// is reused by every source in the chunk while it is cache-resident. admit
// takes the source's global id. eval sees the same (lv, lu, lslot) triples
// as a per-source scan, in a different order.
func blockedEdgeSweep(sl *graph.ShardSlice, lo, hi, blockRows int, admit func(v int) bool, eval func(lv, lu, lslot int)) {
	var srcs, cur []int32
	for lv := lo; lv < hi; lv++ {
		if !admit(sl.Lo + lv) {
			continue
		}
		if len(sl.CSR.Neighbors(lv)) > 0 {
			srcs = append(srcs, int32(lv))
			cur = append(cur, 0)
		}
	}
	for len(srcs) > 0 {
		blockLo := math.MaxInt
		for i, v32 := range srcs {
			if u := int(sl.CSR.Neighbors(int(v32))[cur[i]]); u < blockLo {
				blockLo = u
			}
		}
		blockHi := blockLo + blockRows
		alive := 0
		for i, v32 := range srcs {
			lv := int(v32)
			nb := sl.CSR.Neighbors(lv)
			base := sl.CSR.AdjOffset(lv)
			j := int(cur[i])
			for j < len(nb) && int(nb[j]) < blockHi {
				eval(lv, int(nb[j]), base+j)
				j++
			}
			if j < len(nb) {
				srcs[alive] = v32
				cur[alive] = int32(j)
				alive++
			}
		}
		srcs = srcs[:alive]
		cur = cur[:alive]
	}
}

// fillEdgeBitsSharded is fillEdgeBits on the partitioned substrate: the
// global packed per-slot bitmap is sized once, and each shard's pool chunks
// its owned range with the same word-ownership spill discipline — a chunk
// owns the word-aligned span starting at its first owned global slot; bits
// below it spill and apply sequentially after all shards finish. Owned
// global slot ranges are contiguous and ascending across (shard, chunk)
// pairs, so word ownership is globally consistent and the bitmap stays
// race-free without atomics. Edge evaluation is cache-blocked per chunk
// (blockedEdgeSweep; rowBytes is the sketch-row width in bytes); eval gates
// and judges each edge and maps its local slot to the global bitmap slot.
func fillEdgeBitsSharded(g *graph.Graph, se *shard.Engine[int8], ws *Workspace, rowBytes int, admit func(v int) bool, eval func(s int, sl *graph.ShardSlice, sc *sketch.Scratch[int8], lv, lu, lslot int, set func(slot int))) ([]uint64, error) {
	words := (2*g.M() + 63) / 64
	if cap(ws.buddy) < words {
		ws.buddy = make([]uint64, words)
	}
	ws.buddy = ws.buddy[:words]
	for i := range ws.buddy {
		ws.buddy[i] = 0
	}
	bits := ws.buddy
	blockRows := edgeBlockRows(rowBytes)
	k := se.SG.NumShards()
	spillsPerShard, err := parwork.ForEach(k, func(s int) ([][]int, error) {
		sl := se.SG.Slices[s]
		own := sl.Own()
		chunks := parwork.RangeChunksAt(own, se.Pool(s).Workers())
		cum := func(v int) int64 { return int64(sl.CSR.AdjOffset(v)) + 16*int64(v) }
		spills := make([][]int, chunks)
		err := se.Pool(s).ForEach(chunks, func(ci int) error {
			lo, hi := parwork.WeightedChunkBounds(own, chunks, ci, cum)
			ownStart := (g.AdjOffset(sl.Lo+lo) + 63) &^ 63
			var spill []int
			var sc sketch.Scratch[int8]
			set := func(slot int) {
				if slot < ownStart {
					spill = append(spill, slot)
					return
				}
				bits[slot>>6] |= 1 << (slot & 63)
			}
			blockedEdgeSweep(sl, lo, hi, blockRows, admit, func(lv, lu, lslot int) {
				eval(s, sl, &sc, lv, lu, lslot, set)
			})
			spills[ci] = spill
			return nil
		})
		return spills, err
	})
	if err != nil {
		return nil, err
	}
	for _, spills := range spillsPerShard {
		for _, sp := range spills {
			for _, slot := range sp {
				bits[slot>>6] |= 1 << (slot & 63)
			}
		}
	}
	return bits, nil
}

// fillEdgeBitsShardedLocal is fillEdgeBits for global-graph-less slices: one
// flat packed bitmap holding a word-aligned region per shard, indexed by the
// shard's local directed slots (wordOff[s] is shard s's first word). Each
// shard's pool chunks its owned range with the same word-ownership spill
// discipline as the global variants; a shard's spills apply right after its
// own chunks drain — regions never share words, so shards stay mutually
// race-free. Edge evaluation is cache-blocked per chunk (blockedEdgeSweep;
// rowBytes is the sketch-row width in bytes).
func fillEdgeBitsShardedLocal(se *shard.Engine[int8], ws *Workspace, rowBytes int, admit func(v int) bool, eval func(s int, sl *graph.ShardSlice, sc *sketch.Scratch[int8], lv, lu, lslot int, set func(slot int))) ([]uint64, []int, error) {
	k := se.SG.NumShards()
	wordOff := make([]int, k+1)
	for s := 0; s < k; s++ {
		sl := se.SG.Slices[s]
		wordOff[s+1] = wordOff[s] + (sl.CSR.AdjOffset(sl.Own())+63)/64
	}
	words := wordOff[k]
	if cap(ws.buddy) < words {
		ws.buddy = make([]uint64, words)
	}
	ws.buddy = ws.buddy[:words]
	for i := range ws.buddy {
		ws.buddy[i] = 0
	}
	bits := ws.buddy
	blockRows := edgeBlockRows(rowBytes)
	if _, err := parwork.ForEach(k, func(s int) (struct{}, error) {
		sl := se.SG.Slices[s]
		own := sl.Own()
		base := wordOff[s]
		chunks := parwork.RangeChunksAt(own, se.Pool(s).Workers())
		cum := func(v int) int64 { return int64(sl.CSR.AdjOffset(v)) + 16*int64(v) }
		spills := make([][]int, chunks)
		if err := se.Pool(s).ForEach(chunks, func(ci int) error {
			lo, hi := parwork.WeightedChunkBounds(own, chunks, ci, cum)
			ownStart := (sl.CSR.AdjOffset(lo) + 63) &^ 63
			var spill []int
			var sc sketch.Scratch[int8]
			set := func(slot int) {
				if slot < ownStart {
					spill = append(spill, slot)
					return
				}
				bits[base+(slot>>6)] |= 1 << (slot & 63)
			}
			blockedEdgeSweep(sl, lo, hi, blockRows, admit, func(lv, lu, lslot int) {
				eval(s, sl, &sc, lv, lu, lslot, set)
			})
			spills[ci] = spill
			return nil
		}); err != nil {
			return struct{}{}, err
		}
		for _, sp := range spills {
			for _, slot := range sp {
				bits[base+(slot>>6)] |= 1 << (slot & 63)
			}
		}
		return struct{}{}, nil
	}); err != nil {
		return nil, nil, err
	}
	return bits, wordOff, nil
}

// assembleShardedStream is assemble for global-graph-less runs: the
// propagation pass walks every shard's owned rows on its pool share instead
// of the global CSR. An owned local row holds the exact global neighbor set
// of its vertex and the buddy bits agree with the materialized bitmap, so
// next is the same pure function of label and the fixpoint — hence the
// decomposition — is byte-identical to the materialized assemble.
func assembleShardedStream(se *shard.Engine[int8], eps float64, dense []bool, isBuddy func(s, lslot int) bool, ws *Workspace) (*Decomposition, error) {
	sg := se.SG
	n := sg.N()
	return assembleFrom(n, eps, dense, ws, func(label, next []int32) (bool, error) {
		perShard, err := parwork.ForEach(sg.NumShards(), func(s int) (bool, error) {
			sl := sg.Slices[s]
			own := sl.Own()
			chunks := parwork.RangeChunksAt(own, se.Pool(s).Workers())
			cum := func(v int) int64 { return int64(sl.CSR.AdjOffset(v)) + 16*int64(v) }
			ch := make([]bool, chunks)
			if err := se.Pool(s).ForEach(chunks, func(ci int) error {
				lo, hi := parwork.WeightedChunkBounds(own, chunks, ci, cum)
				changed := false
				for lv := lo; lv < hi; lv++ {
					v := sl.Lo + lv
					if !dense[v] {
						next[v] = -1
						continue
					}
					m := label[v]
					base := sl.CSR.AdjOffset(lv)
					for j, lu := range sl.CSR.Neighbors(lv) {
						u := sl.ToGlobal(int(lu))
						if dense[u] && label[u] < m && isBuddy(s, base+j) {
							m = label[u]
						}
					}
					next[v] = m
					if m != label[v] {
						changed = true
					}
				}
				ch[ci] = changed
				return nil
			}); err != nil {
				return false, err
			}
			for _, c := range ch {
				if c {
					return true, nil
				}
			}
			return false, nil
		})
		if err != nil {
			return false, err
		}
		for _, c := range perShard {
			if c {
				return true, nil
			}
		}
		return false, nil
	})
}

// BuildProfileSharded computes the Section 4.1 profile on the partitioned
// substrate; see BuildProfileShardedWith.
func BuildProfileSharded(cg *cluster.CG, sg *graph.ShardedGraph, d *Decomposition, delta, ell float64, rng *rand.Rand) (*Profile, error) {
	return BuildProfileShardedWith(cg, shard.NewEngine(sg, sketch.MaxKernel{}), d, delta, ell, rng, NewWorkspace())
}

// BuildProfileShardedWith mirrors BuildProfileWith with the external-degree
// wave running on the shard engine: per-shard fills and folds, a boundary
// exchange for the halo rows, and one global charge — byte-identical output
// and cost at every shard count. The tree and aggregation stages are
// vertex-level primitives on the cluster graph and run unchanged.
func BuildProfileShardedWith(cg *cluster.CG, se *shard.Engine[int8], d *Decomposition, delta, ell float64, rng *rand.Rand, ws *Workspace) (*Profile, error) {
	if ell <= 0 {
		return nil, fmt.Errorf("acd: ell %v must be positive", ell)
	}
	if cg.H == nil {
		// The tree stage needs the materialized cluster graph (BFSForest
		// walks H); headless runs get the decomposition only.
		return nil, fmt.Errorf("acd: profile requires a materialized cluster graph")
	}
	n := cg.H.N()
	p := &Profile{
		Decomp:  d,
		ExtDeg:  make([]float64, n),
		AvgExt:  make([]float64, len(d.Cliques)),
		Size:    make([]int, len(d.Cliques)),
		IsCabal: make([]bool, len(d.Cliques)),
		Ell:     ell,
	}
	if len(d.Cliques) > 0 {
		seed := rng.Uint64()
		t, err := fingerprint.TrialsFor(0.25, n)
		if err != nil {
			return nil, err
		}
		if err := se.FillSamples(t, parwork.RowSeed(seed, 0), "profile/extdeg"); err != nil {
			return nil, err
		}
		if _, err := se.Collect(cg, "profile/extdeg", shard.CollectOptions{
			Pred: func(v, u, slot int) bool {
				return d.CliqueOf[v] >= 0 && d.CliqueOf[u] != d.CliqueOf[v]
			},
		}); err != nil {
			return nil, err
		}
		if err := estimateSharded(se, p.ExtDeg, func(v int) bool { return d.CliqueOf[v] >= 0 }); err != nil {
			return nil, err
		}
		sources := make([]int, len(d.Cliques))
		for i, members := range d.Cliques {
			sources[i] = members[0]
			for _, v := range members {
				if v < sources[i] {
					sources[i] = v
				}
			}
		}
		trees, err := cg.BFSForest("profile/trees", d.Cliques, sources, n)
		if err != nil {
			return nil, err
		}
		p.Trees = trees
		cg.ChargeHRounds("profile/aggregate", 2, 2*cg.IDBits())
		if _, err := parwork.ForEach(len(d.Cliques), func(i int) (struct{}, error) {
			members := d.Cliques[i]
			p.Size[i] = len(members)
			var sum float64
			for _, v := range members {
				sum += p.ExtDeg[v]
			}
			p.AvgExt[i] = sum / float64(len(members))
			p.IsCabal[i] = p.AvgExt[i] < ell
			return struct{}{}, nil
		}); err != nil {
			return nil, err
		}
	}
	_ = delta
	return p, nil
}
