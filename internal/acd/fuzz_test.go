package acd

import (
	"testing"

	"clustercolor/internal/graph"
	"clustercolor/internal/parwork"
)

// checkConsistency asserts the structural invariants of a decomposition:
// CliqueOf and Cliques describe the same partition, every almost-clique has
// at least two members, and no vertex appears twice.
func checkConsistency(t *testing.T, g *graph.Graph, d *Decomposition, label string) {
	t.Helper()
	if len(d.CliqueOf) != g.N() {
		t.Fatalf("%s: CliqueOf has %d entries for %d vertices", label, len(d.CliqueOf), g.N())
	}
	seen := make([]bool, g.N())
	for i, members := range d.Cliques {
		if len(members) < 2 {
			t.Fatalf("%s: clique %d has %d members (singletons must be reclassified sparse)", label, i, len(members))
		}
		for _, v := range members {
			if v < 0 || v >= g.N() {
				t.Fatalf("%s: clique %d member %d out of range", label, i, v)
			}
			if seen[v] {
				t.Fatalf("%s: vertex %d in two cliques", label, v)
			}
			seen[v] = true
			if d.CliqueOf[v] != i {
				t.Fatalf("%s: vertex %d in clique %d but CliqueOf says %d", label, v, i, d.CliqueOf[v])
			}
		}
	}
	for v, k := range d.CliqueOf {
		if k >= 0 && !seen[v] {
			t.Fatalf("%s: CliqueOf[%d]=%d but vertex missing from member list", label, v, k)
		}
		if k >= len(d.Cliques) {
			t.Fatalf("%s: CliqueOf[%d]=%d out of range", label, v, k)
		}
	}
}

// FuzzACD runs the decomposition on arbitrary small graphs and seeds:
// whatever (n, eps, seed, edge list) the fuzzer invents, Exact and Compute
// must return structurally consistent decompositions without panicking,
// Exact must satisfy Definition 4.2's size bound under a generous check
// tolerance, Compute must be byte-identical at parallelism 1 and 4, and the
// two must agree on the dense/sparse split within sketch tolerance. The
// agreement bound is deliberately loose — on graphs this small every margin
// sits near a threshold, and near-threshold vertices may legitimately land
// on either side — but it catches gross regressions (an inverted predicate
// flips every clique vertex, not a third of them).
func FuzzACD(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{8, 1, 2, 0, 1, 1, 2, 2, 3, 3, 0})
	f.Add([]byte{30, 0, 3}) // edgeless
	// A clique-ish blob on few vertices.
	f.Add([]byte{6, 2, 9, 0, 1, 0, 2, 0, 3, 0, 4, 1, 2, 1, 3, 1, 4, 2, 3, 2, 4, 3, 4})
	// Two dense blocks joined by one bridge.
	f.Add([]byte{10, 3, 5, 0, 1, 0, 2, 1, 2, 0, 3, 1, 3, 2, 3, 4, 5, 4, 6, 5, 6, 4, 7, 5, 7, 6, 7, 3, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		n := int(data[0]%40) + 2
		eps := []float64{0.1, 0.2, 0.25, 0.3}[data[1]%4]
		seed := uint64(data[2])
		b := graph.NewBuilder(n)
		for i := 3; i+1 < len(data) && i < 163; i += 2 {
			u, v := int(data[i])%n, int(data[i+1])%n
			if u == v {
				continue
			}
			if err := b.AddEdge(u, v); err != nil {
				t.Fatalf("AddEdge(%d,%d) on n=%d: %v", u, v, n, err)
			}
		}
		h := b.Build()
		exact, err := Exact(h, eps)
		if err != nil {
			t.Fatalf("Exact(n=%d, eps=%v): %v", h.N(), eps, err)
		}
		checkConsistency(t, h, exact, "exact")
		if _, err := exact.Validate(h, 0.95); err != nil {
			t.Fatalf("Exact violates the size bound: %v", err)
		}
		cg := asCG(t, h, seed^0xfeed)
		run := func(par int) *Decomposition {
			prev := parwork.SetParallelism(par)
			defer parwork.SetParallelism(prev)
			d, err := ComputeWith(cg, eps, parwork.StreamRNG(seed), NewWorkspace())
			if err != nil {
				t.Fatalf("Compute(n=%d, eps=%v, par=%d): %v", h.N(), eps, par, err)
			}
			return d
		}
		d1 := run(1)
		checkConsistency(t, h, d1, "compute")
		d4 := run(4)
		if len(d1.CliqueOf) != len(d4.CliqueOf) {
			t.Fatal("parallelism changed CliqueOf length")
		}
		for v := range d1.CliqueOf {
			if d1.CliqueOf[v] != d4.CliqueOf[v] {
				t.Fatalf("vertex %d: clique %d at par=1 but %d at par=4", v, d1.CliqueOf[v], d4.CliqueOf[v])
			}
		}
		// Validate must never panic on Compute's output; the size bound can
		// wobble on adversarial tiny graphs where sketch noise merges
		// borderline components, so only its violation fraction is checked.
		if frac, err := d1.Validate(h, 0.95); err == nil && (frac < 0 || frac > 1) {
			t.Fatalf("violation fraction %v out of [0,1]", frac)
		}
		// Agreement with Exact, within sketch tolerance. The distributed
		// predicate thresholds |N(u) ∪ N(v)| at (1+1.5ξ)Δ while Exact
		// thresholds |N(u) ∩ N(v)| at (1−2ξ)Δ; the 0.5ξΔ gap between the
		// two only fits real edges when 1.5ξΔ ≥ 2 (the paper assumes
		// Δ ≫ 1/ε — a K₅ at Δ=4 has (1+1.5ξ)Δ < Δ+1 and legitimately
		// classifies sparse). When the gap is representable, a loose bound
		// still catches gross regressions: an inverted or broken predicate
		// flips essentially every vertex of a sparse instance, not a third.
		xi := eps / 2
		if 1.5*xi*float64(h.MaxDegree()) >= 2 {
			disagree := 0
			for v := 0; v < h.N(); v++ {
				if exact.IsSparse(v) != d1.IsSparse(v) {
					disagree++
				}
			}
			if limit := maxOf(6, 2*h.N()/3); disagree > limit {
				t.Fatalf("%d/%d vertices classified differently from Exact (limit %d)", disagree, h.N(), limit)
			}
		}
	})
}

func maxOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}
