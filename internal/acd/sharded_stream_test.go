package acd

import (
	"runtime"
	"strings"
	"testing"

	"clustercolor/internal/cluster"
	"clustercolor/internal/graph"
	"clustercolor/internal/network"
	"clustercolor/internal/parwork"
	"clustercolor/internal/shard"
	"clustercolor/internal/sketch"
)

// runStreamDecomp is runDecomp with the sharded graph built from an edge
// stream — no global CSR on the engine's side — under the same cluster
// graph, seeds, and parallelism, so its output is directly comparable to
// both the unsharded and the materialized-sharded runs.
func runStreamDecomp(t *testing.T, h *graph.Graph, shards, par int) decompRun {
	t.Helper()
	prev := parwork.SetParallelism(par)
	defer parwork.SetParallelism(prev)
	cg := asCG(t, h, 17)
	cost, err := network.NewCostModel(64)
	if err != nil {
		t.Fatal(err)
	}
	run := cg.WithCost(cost)
	rng := parwork.StreamRNG(41)
	ell := 8.0
	sg, err := graph.NewShardedGraphFromEdges(h.N(), shards, graph.StreamOf(h))
	if err != nil {
		t.Fatal(err)
	}
	se := shard.NewEngine(sg, sketch.MaxKernel{})
	ws := NewWorkspace()
	var out decompRun
	d, err := ComputeShardedWith(run, se, 0.2, rng, ws)
	if err != nil {
		t.Fatal(err)
	}
	// The profile's predicate is slot-free, so it runs on streamed slices
	// too (the cluster graph here is materialized; only the engine's graph
	// is streamed).
	p, err := BuildProfileShardedWith(run, se, d, float64(h.MaxDegree()), ell, rng, ws)
	if err != nil {
		t.Fatal(err)
	}
	out.d, out.p = d, p
	out.xchange = se.Stats
	out.rounds = run.Cost().Rounds()
	out.bits = run.Cost().TotalBits()
	return out
}

// TestComputeStreamedByteIdentity extends the tentpole invariant to
// streaming construction: a decomposition over slices built from an edge
// stream — never materializing the global CSR on the engine side — must
// reproduce the unsharded decomposition and profile bit for bit, same
// charged budget included, at shard counts 1/2/4 and parallelism 1/4/NumCPU.
func TestComputeStreamedByteIdentity(t *testing.T) {
	planted, _ := plantedInstance(t, 3)
	ring, err := graph.RingOfCliques(7, 11)
	if err != nil {
		t.Fatal(err)
	}
	graphs := map[string]*graph.Graph{
		"planted":     planted,
		"ringcliques": ring,
		"gnp":         graph.MustGNP(240, 0.12, graph.NewRand(19)),
	}
	pars := []int{1, 4, runtime.NumCPU()}
	for gname, h := range graphs {
		want := runDecomp(t, h, 0, 1)
		for _, shards := range []int{1, 2, 4} {
			for _, par := range pars {
				got := runStreamDecomp(t, h, shards, par)
				assertSameDecomp(t, gname+"/streamed", want, got)
			}
		}
	}
}

// TestComputeStreamedHeadless checks the fully global-graph-less shape: a
// headless cluster view (machine count and dilation only) over streamed
// slices must charge the identical budget and produce the identical
// decomposition as the same run under the materialized cluster graph — and
// the profile stage, which needs the materialized graph, must refuse.
func TestComputeStreamedHeadless(t *testing.T) {
	h, err := graph.RingOfCliques(6, 9)
	if err != nil {
		t.Fatal(err)
	}
	base := asCG(t, h, 17)
	newCost := func() *network.CostModel {
		cost, err := network.NewCostModel(64)
		if err != nil {
			t.Fatal(err)
		}
		return cost
	}
	run := func(cg *cluster.CG) (decompRun, *shard.Engine[int8]) {
		sg, err := graph.NewShardedGraphFromEdges(h.N(), 3, graph.StreamOf(h))
		if err != nil {
			t.Fatal(err)
		}
		se := shard.NewEngine(sg, sketch.MaxKernel{})
		d, err := ComputeShardedWith(cg, se, 0.2, parwork.StreamRNG(41), NewWorkspace())
		if err != nil {
			t.Fatal(err)
		}
		return decompRun{d: d, rounds: cg.Cost().Rounds(), bits: cg.Cost().TotalBits()}, se
	}
	want, _ := run(base.WithCost(newCost()))
	headless, err := cluster.NewHeadless(base.G.N(), base.Dilation, newCost())
	if err != nil {
		t.Fatal(err)
	}
	got, se := run(headless)
	if got.rounds != want.rounds || got.bits != want.bits {
		t.Fatalf("headless charged %d/%d, want %d/%d", got.rounds, got.bits, want.rounds, want.bits)
	}
	for v := range want.d.CliqueOf {
		if got.d.CliqueOf[v] != want.d.CliqueOf[v] {
			t.Fatalf("headless CliqueOf[%d] = %d, want %d", v, got.d.CliqueOf[v], want.d.CliqueOf[v])
		}
	}
	if _, err := BuildProfileShardedWith(headless, se, got.d, float64(h.MaxDegree()), 8, parwork.StreamRNG(41), NewWorkspace()); err == nil || !strings.Contains(err.Error(), "materialized") {
		t.Fatalf("headless profile: got %v, want materialized-cluster-graph error", err)
	}
}

// TestComputeStreamedRejectsMismatch pins the validation: a streamed engine
// under a cluster graph with a different vertex count must error rather than
// silently mix dimensions.
func TestComputeStreamedRejectsMismatch(t *testing.T) {
	h, err := graph.RingOfCliques(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	cg := asCG(t, h, 17)
	sg, err := graph.NewShardedGraphFromEdges(h.N()+1, 2, func(emit func(u, v int) error) error {
		return emit(0, h.N()) // one edge touching the extra vertex
	})
	if err != nil {
		t.Fatal(err)
	}
	se := shard.NewEngine(sg, sketch.MaxKernel{})
	if _, err := ComputeShardedWith(cg, se, 0.2, parwork.StreamRNG(41), NewWorkspace()); err == nil {
		t.Fatal("vertex-count mismatch accepted")
	}
}
