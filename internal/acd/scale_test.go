package acd

import (
	"reflect"
	"runtime"
	"testing"

	"clustercolor/internal/cluster"
	"clustercolor/internal/graph"
	"clustercolor/internal/network"
	"clustercolor/internal/parwork"
)

// asCGSingleton wraps h as a singleton-cluster graph (H = G), the cheapest
// fixture for allocation accounting.
func asCGSingleton(t *testing.T, h *graph.Graph, seed uint64) *cluster.CG {
	t.Helper()
	exp, err := graph.Expand(h, graph.ExpandSpec{Topology: graph.TopologySingleton}, graph.NewRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	cost, err := network.NewCostModel(64)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := cluster.New(h, exp, cost)
	if err != nil {
		t.Fatal(err)
	}
	return cg
}

// TestDecompositionByteIdenticalAcrossParallelism pins the parallel-waves
// contract: ComputeWith and BuildProfileWith produce bit-identical output
// (clique structure, external degrees, averages, cabal flags) at parallelism
// 1, 4, NumCPU, and 32. The 32 level matters independently of core count:
// past 16 workers the adaptive grain rule scales the chunk count (8 per
// worker), so it runs the folds and the degree-weighted chunk bounds on a
// different partition of the vertex range than the other levels — the
// byte-identity here is what licenses the grain to move with the budget.
// Run under -race via `make race`, this is also the data-race canary for the
// chunked arena folds and the edge-bitmap spill discipline.
func TestDecompositionByteIdenticalAcrossParallelism(t *testing.T) {
	g, _ := plantedInstance(t, 21)
	cg := asCG(t, g, 23)
	type outcome struct {
		cliqueOf []int
		cliques  [][]int
		extDeg   []float64
		avgExt   []float64
		size     []int
		isCabal  []bool
	}
	run := func() outcome {
		rng := parwork.StreamRNG(99)
		ws := NewWorkspace()
		d, err := ComputeWith(cg, 0.3, rng, ws)
		if err != nil {
			t.Fatal(err)
		}
		p, err := BuildProfileWith(cg, d, float64(g.MaxDegree()), 20, rng, ws)
		if err != nil {
			t.Fatal(err)
		}
		return outcome{d.CliqueOf, d.Cliques, p.ExtDeg, p.AvgExt, p.Size, p.IsCabal}
	}
	prev := parwork.SetParallelism(1)
	ref := run()
	parwork.SetParallelism(prev)
	if len(ref.cliques) == 0 {
		t.Fatal("planted instance decomposed into no cliques; the test would be vacuous")
	}
	for _, par := range []int{4, runtime.GOMAXPROCS(0), 32} {
		parwork.SetParallelism(par)
		got := run()
		parwork.SetParallelism(prev)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("parallelism %d decomposition differs from sequential", par)
		}
	}
}

// TestDecompositionRaceStress drives the parallel waves hard enough for the
// race detector to observe real interleavings: a planted instance with many
// buddy edges (so the bitmap mirror pass both reads and writes heavily) at
// parallelism 8, repeated, with outputs compared. A cross-chunk word
// collision between mirror readers and writers reproduced here before the
// snapshot fix; keep this test race-enabled and multi-worker.
func TestDecompositionRaceStress(t *testing.T) {
	rng := graph.NewRand(41)
	g, _, err := graph.PlantedACD(graph.PlantedACDSpec{
		NumCliques:     8,
		CliqueSize:     80,
		DropFraction:   0.05,
		ExternalDegree: 4,
		SparseN:        1000,
		SparseP:        0.02,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cg := asCGSingleton(t, g, 43)
	prev := parwork.SetParallelism(8)
	defer parwork.SetParallelism(prev)
	var ref *Decomposition
	for rep := 0; rep < 3; rep++ {
		d, err := ComputeWith(cg, 0.25, parwork.StreamRNG(7), NewWorkspace())
		if err != nil {
			t.Fatal(err)
		}
		if len(d.Cliques) == 0 {
			t.Fatal("stress instance produced no cliques; the mirror pass went unexercised")
		}
		if rep == 0 {
			ref = d
			continue
		}
		if !reflect.DeepEqual(ref.CliqueOf, d.CliqueOf) {
			t.Fatalf("repetition %d produced a different decomposition", rep)
		}
	}
}
