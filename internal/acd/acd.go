// Package acd computes the ε-almost-clique decomposition of Definition 4.2
// on cluster graphs, following Section 5.4: fingerprint-approximated degrees
// and joint-neighborhood sizes solve the ξ-buddy predicate (Lemma 5.8),
// buddy-edge connected components form the almost-cliques (Proposition 4.3),
// and a further fingerprint wave estimates external degrees to classify
// cabals (Section 4.1).
//
// The decomposition is the pipeline's first stage and runs arena-backed and
// parallel on the generic mergeable-sketch engine of internal/sketch: sample
// and sketch rows live in the workspace's sketch.Engine arenas generated
// from per-vertex parwork.RowSeed streams, the waves fold over the CSR graph
// across the worker pool (the max kernel's merge is commutative and
// idempotent, so every parallelism level produces byte-identical output),
// and the buddy predicate is evaluated exactly once per edge into a packed
// CSR-slot bitmap that the dense classification, the component BFS, and
// downstream consumers all read for free. A Workspace owns the reusable
// engine so repeated decompositions allocate O(1) objects regardless of n.
//
// An exact (centralized) reference decomposition is provided for testing and
// for experiments that need ground truth.
package acd

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"clustercolor/internal/cluster"
	"clustercolor/internal/fingerprint"
	"clustercolor/internal/graph"
	"clustercolor/internal/parwork"
	"clustercolor/internal/sketch"
)

// Decomposition is an ε-almost-clique decomposition: a partition of the
// vertices into sparse vertices and almost-cliques.
type Decomposition struct {
	// Eps is the ε parameter of Definition 4.2.
	Eps float64
	// CliqueOf maps each vertex to its almost-clique index, -1 if sparse.
	CliqueOf []int
	// Cliques lists the member vertices of each almost-clique.
	Cliques [][]int
}

// IsSparse reports whether v is in V_sparse.
func (d *Decomposition) IsSparse(v int) bool { return d.CliqueOf[v] < 0 }

// Sparsity returns ζ_v of Definition 4.1 computed exactly:
// ζ_v = (1/Δ)·( C(Δ,2) − ½·Σ_{u∈N(v)} |N(u) ∩ N(v)| ).
func Sparsity(g *graph.Graph, v int) float64 {
	delta := float64(g.MaxDegree())
	if delta == 0 {
		return 0
	}
	var shared float64
	for _, u := range g.Neighbors(v) {
		shared += float64(g.CommonNeighbors(v, int(u)))
	}
	return (delta*(delta-1)/2 - shared/2) / delta
}

// Workspace owns the reusable scratch of the decomposition waves: the
// sketch-engine handle whose arenas back Compute's two waves and
// BuildProfile's external-degree wave (each wave refills them from an
// independent seed, so the lemmas' independence requirements hold), the
// per-vertex estimate buffers, the packed buddy-edge bitmap, and the
// component-BFS queue. One Workspace serves one decomposition at a time;
// reusing it across calls (core does, per Color run) keeps allocation counts
// independent of n.
type Workspace struct {
	eng      sketch.Engine[int8]
	deg      []float64
	count    []float64
	dense    []bool
	buddy    []uint64
	buddySrc []uint64
	label    []int32
	next     []int32
}

// NewWorkspace returns an empty workspace; buffers grow on first use. The
// engine runs the max kernel — the kernel the paper's lemmas are stated for.
func NewWorkspace() *Workspace {
	return &Workspace{eng: sketch.Engine[int8]{Kernel: sketch.MaxKernel{}}}
}

// engine returns the workspace's sketch engine, defaulting the kernel for
// zero-value workspaces constructed without NewWorkspace.
func (ws *Workspace) engine() *sketch.Engine[int8] {
	if ws.eng.Kernel == nil {
		ws.eng.Kernel = sketch.MaxKernel{}
	}
	return &ws.eng
}

func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// Exact computes the decomposition centrally: buddy edges are pairs with
// |N(u) ∩ N(v)| ≥ (1−2ξ)Δ, dense candidates have ≥ (1−2ξ)Δ incident buddy
// edges, and almost-cliques are the connected components of the buddy graph
// restricted to dense candidates ([ACK19, Lemma 4.8] shape). ξ is derived
// from eps.
func Exact(g *graph.Graph, eps float64) (*Decomposition, error) {
	if eps <= 0 || eps >= 1.0/3 {
		return nil, fmt.Errorf("acd: eps %v out of (0, 1/3)", eps)
	}
	xi := eps / 2
	delta := g.MaxDegree()
	buddyDeg := make([]int, g.N())
	isBuddy := func(u, v int) bool {
		return float64(g.CommonNeighbors(u, v)) >= (1-2*xi)*float64(delta)
	}
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			if int(u) > v && isBuddy(v, int(u)) {
				buddyDeg[v]++
				buddyDeg[u]++
			}
		}
	}
	dense := make([]bool, g.N())
	for v := 0; v < g.N(); v++ {
		dense[v] = float64(buddyDeg[v]) >= (1-2*xi)*float64(delta)
	}
	return assemble(g, eps, dense, func(v, u, slot int) bool { return isBuddy(v, u) }, nil)
}

// assemble groups dense vertices into almost-cliques via connected
// components of the buddy graph restricted to dense vertices. isBuddy
// receives the CSR slot of the directed edge (v, u) so memoized callers
// answer in O(1).
//
// Components are labeled by deterministic parallel min-label propagation
// with pointer jumping: every pass recomputes labels from an immutable
// snapshot across the worker pool, so the fixpoint — each dense vertex
// labeled by its component's minimum member — is byte-identical at any
// parallelism, and the O(m) edge scans that used to run as one serial BFS
// (the last serial scan in the decomposition) now fan out through parwork.
// Pointer jumping bounds the pass count by O(log n) even on long buddy
// paths, though the diameter-2 components of Proposition 4.3 converge in a
// couple of passes. Cliques are indexed by ascending minimum member (the
// same order the serial BFS produced) with members ascending.
func assemble(g *graph.Graph, eps float64, dense []bool, isBuddy func(v, u, slot int) bool, ws *Workspace) (*Decomposition, error) {
	n := g.N()
	return assembleFrom(n, eps, dense, ws, func(label, next []int32) (bool, error) {
		// Propagation cost is one edge scan per dense vertex: weight chunk
		// bounds by the offsets array so heavy rows spread across chunks.
		chunks := parwork.RangeChunks(n)
		cum := func(v int) int64 { return int64(g.AdjOffset(v)) + 16*int64(v) }
		changes, err := parwork.ForEach(chunks, func(ci int) (bool, error) {
			lo, hi := parwork.WeightedChunkBounds(n, chunks, ci, cum)
			changed := false
			for v := lo; v < hi; v++ {
				if !dense[v] {
					next[v] = -1
					continue
				}
				m := label[v]
				base := g.AdjOffset(v)
				for j, u32 := range g.Neighbors(v) {
					u := int(u32)
					if dense[u] && label[u] < m && isBuddy(v, u, base+j) {
						m = label[u]
					}
				}
				next[v] = m
				if m != label[v] {
					changed = true
				}
			}
			return changed, nil
		})
		if err != nil {
			return false, err
		}
		for _, c := range changes {
			if c {
				return true, nil
			}
		}
		return false, nil
	})
}

// assembleFrom is the graph-shape-independent core of assemble: propagate
// performs one full min-label pass — next[v] must be written for every v
// (the component minimum over v's dense buddy neighborhood, or -1 for
// non-dense v) from the immutable previous labels — and reports whether any
// label moved. next is a pure function of label, so any propagate walking
// the same edge set (global CSR or shard slices) reaches the same fixpoint
// byte for byte.
func assembleFrom(n int, eps float64, dense []bool, ws *Workspace, propagate func(label, next []int32) (bool, error)) (*Decomposition, error) {
	d := &Decomposition{Eps: eps, CliqueOf: make([]int, n)}
	var label, next []int32
	if ws != nil {
		ws.label = growInt32(ws.label, n)
		ws.next = growInt32(ws.next, n)
		label, next = ws.label, ws.next
	} else {
		label = make([]int32, n)
		next = make([]int32, n)
	}
	if err := parwork.ForRange(n, func(lo, hi int) error {
		for v := lo; v < hi; v++ {
			if dense[v] {
				label[v] = int32(v)
			} else {
				label[v] = -1
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	chunks := parwork.RangeChunks(n)
	for {
		// Propagate: next[v] = min(label[v], labels of dense buddy
		// neighbors). Reads only the previous labels, writes only next[v].
		changed, err := propagate(label, next)
		if err != nil {
			return nil, err
		}
		// Jump: label[v] = next[next[v]]. A label is always a dense vertex
		// of v's own component, so the hop stays within the component and
		// only shortcuts toward its minimum. Reads only next.
		jumps, err := parwork.ForEach(chunks, func(ci int) (bool, error) {
			lo, hi := parwork.ChunkBoundsIn(n, chunks, ci)
			changed := false
			for v := lo; v < hi; v++ {
				l := next[v]
				if l >= 0 {
					if l2 := next[l]; l2 < l {
						l = l2
						changed = true
					}
				}
				label[v] = l
			}
			return changed, nil
		})
		if err != nil {
			return nil, err
		}
		done := !changed
		for i := range jumps {
			if jumps[i] {
				done = false
				break
			}
		}
		if done {
			break
		}
	}
	// Gather: component sizes per root (reusing next as scratch), clique
	// indices for roots with ≥ 2 members in ascending root order, then the
	// member lists — ascending within each clique. Lone dense candidates are
	// not almost-cliques and reclassify as sparse.
	for v := 0; v < n; v++ {
		next[v] = 0
	}
	for v := 0; v < n; v++ {
		if dense[v] {
			next[label[v]]++
		}
	}
	idx := 0
	for v := 0; v < n; v++ {
		if dense[v] && int(label[v]) == v && next[v] >= 2 {
			next[v] = int32(idx)
			idx++
		} else {
			next[v] = -1
		}
	}
	if err := parwork.ForRange(n, func(lo, hi int) error {
		for v := lo; v < hi; v++ {
			if dense[v] {
				d.CliqueOf[v] = int(next[label[v]])
			} else {
				d.CliqueOf[v] = -1
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if idx > 0 {
		d.Cliques = make([][]int, idx)
		for v := 0; v < n; v++ {
			if ci := d.CliqueOf[v]; ci >= 0 {
				d.Cliques[ci] = append(d.Cliques[ci], v)
			}
		}
	}
	return d, nil
}

func growInt32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// Compute runs the distributed decomposition of Proposition 4.3 on a cluster
// graph with a workspace allocated for this call; see ComputeWith.
func Compute(cg *cluster.CG, eps float64, rng *rand.Rand) (*Decomposition, error) {
	return ComputeWith(cg, eps, rng, NewWorkspace())
}

// ComputeWith runs the distributed decomposition of Proposition 4.3:
// fingerprint waves approximate degrees and joint neighborhood sizes
// (Lemma 5.8), each edge solves the buddy predicate locally (memoized into
// the workspace's packed edge bitmap, exactly one evaluation per edge), a
// further wave counts incident buddy edges, and an O(1)-round BFS labels the
// components. All randomness derives from one draw of rng through
// parwork.RowSeed streams, and every wave runs across the worker pool, so
// the decomposition is byte-identical at any parwork parallelism level.
// ComputeWith is reentrant as long as workspaces are not shared.
func ComputeWith(cg *cluster.CG, eps float64, rng *rand.Rand, ws *Workspace) (*Decomposition, error) {
	if eps <= 0 || eps >= 1.0/3 {
		return nil, fmt.Errorf("acd: eps %v out of (0, 1/3)", eps)
	}
	g := cg.H
	n := g.N()
	delta := float64(g.MaxDegree())
	seed := rng.Uint64()
	if delta == 0 {
		d := &Decomposition{Eps: eps, CliqueOf: make([]int, n)}
		for v := range d.CliqueOf {
			d.CliqueOf[v] = -1
		}
		return d, nil
	}
	xi := eps / 2
	// The buddy predicate conjoins several noisy estimates, so its sketches
	// use double accuracy (ξ/2) relative to the decision margins.
	t, err := fingerprint.TrialsFor(xi/2, n)
	if err != nil {
		return nil, err
	}
	// Wave 1: per-vertex neighborhood sketches (degrees + reusable for the
	// joint-neighborhood estimates on edges).
	eng := ws.engine()
	if err := eng.FillSamples(n, t, parwork.RowSeed(seed, 0)); err != nil {
		return nil, err
	}
	maxBits, err := eng.Collect(cg, "acd/nbhd", sketch.CollectOptions{})
	if err != nil {
		return nil, err
	}
	ws.deg = growFloats(ws.deg, n)
	if err := parwork.ForRange(n, func(lo, hi int) error {
		var est sketch.MaxEstimator[int8]
		for v := lo; v < hi; v++ {
			ws.deg[v] = est.Estimate(eng.Row(v))
		}
		return nil
	}); err != nil {
		return nil, err
	}
	// Edge exchange: endpoints merge sketches and estimate |N(u) ∪ N(v)|.
	// One H-round with a sketch payload (Lemma 5.8).
	cg.ChargeHRounds("acd/buddy-exchange", 1, maxBits)
	lowCut := (1 - 1.5*xi) * delta
	joinCut := (1 + 1.5*xi) * delta
	// The buddy predicate runs exactly once per edge, memoized into the
	// packed per-slot bitmap: pass A evaluates forward slots (u > v) with
	// per-worker estimator scratch, pass B mirrors them onto the reverse
	// slots. The shared-scratch closure this replaces made Compute
	// non-reentrant and pinned the whole stage to one goroutine.
	buddy, err := fillEdgeBits(g, ws, t,
		func(v int) bool { return ws.deg[v] >= lowCut },
		func(sc *sketch.Scratch[int8], v, u int) bool {
			// F ≤ (1+1.5ξ)Δ means the joint neighborhood is small, i.e. the
			// neighborhoods overlap heavily: a buddy edge. The fused kernel
			// estimates the union without materializing the merged row.
			return sc.Est.EstimateMerged(eng.Row(v), eng.Row(u)) <= joinCut
		})
	if err != nil {
		return nil, err
	}
	// Mirroring reads forward bits while writing reverse bits; a reader's
	// forward word can coincide with another worker's reverse-write word, so
	// the pass reads from an immutable snapshot of the forward bits.
	if cap(ws.buddySrc) < len(buddy) {
		ws.buddySrc = make([]uint64, len(buddy))
	}
	ws.buddySrc = ws.buddySrc[:len(buddy)]
	copy(ws.buddySrc, buddy)
	if err := mirrorEdgeBits(g, ws.buddySrc, buddy); err != nil {
		return nil, err
	}
	// Wave 2 (Proposition 4.3): approximate the number of incident buddy
	// edges with the fingerprint counter (Lemma 5.7), reusing the arenas.
	// The dense test sits ~1.5ξ from the count it thresholds and members of
	// one block fail together (their sketches merge nearly the same sample
	// set), so this wave keeps the same doubled accuracy (ξ/2, hence the
	// same t) as the predicate wave rather than Lemma 5.7's bare ξ.
	if err := eng.FillSamples(n, t, parwork.RowSeed(seed, 1)); err != nil {
		return nil, err
	}
	if _, err := eng.Collect(cg, "acd/buddy-count", sketch.CollectOptions{
		Pred: func(v, u, slot int) bool { return buddy[slot>>6]&(1<<(slot&63)) != 0 },
	}); err != nil {
		return nil, err
	}
	ws.count = growFloats(ws.count, n)
	if err := parwork.ForRange(n, func(lo, hi int) error {
		var est sketch.MaxEstimator[int8]
		for v := lo; v < hi; v++ {
			ws.count[v] = est.Estimate(eng.Row(v))
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if cap(ws.dense) < n {
		ws.dense = make([]bool, n)
	}
	ws.dense = ws.dense[:n]
	denseCut := (1 - 1.5*xi) * delta
	for v := 0; v < n; v++ {
		ws.dense[v] = ws.count[v] >= denseCut
	}
	// O(1)-round BFS for leader election in each (diameter-2) component.
	cg.ChargeHRounds("acd/leaders", 3, cg.IDBits())
	return assemble(g, eps, ws.dense, func(v, u, slot int) bool {
		return buddy[slot>>6]&(1<<(slot&63)) != 0
	}, ws)
}

// edgeBlockBytes is the sketch-row footprint one predicate block targets:
// small enough that a block of target rows stays cache-resident while every
// admitted edge into it is judged, large enough that per-block bookkeeping
// stays negligible next to the estimates.
const edgeBlockBytes = 512 << 10

// edgeBlockRows converts the block budget into a target-row count for rows of
// rowBytes bytes.
func edgeBlockRows(rowBytes int) int {
	if rowBytes < 1 {
		rowBytes = 1
	}
	rows := edgeBlockBytes / rowBytes
	if rows < 64 {
		rows = 64
	}
	return rows
}

// fillEdgeBits sizes the workspace's packed per-slot bitmap for g, zeroes
// it, and evaluates judge over every directed forward edge (v, u) with u > v
// and both endpoints admitted, setting the edge's CSR slot bit on success.
// Each chunk owns the word-aligned span of its slot range; bits falling in a
// chunk's leading partial word are spilled and applied sequentially, so no
// two workers ever touch the same word — the packed bitmap stays race-free
// without atomics.
//
// Evaluation is cache-blocked: within each degree-weighted chunk, the
// admitted sources sweep their forward neighbor runs in ascending blocks of
// edgeBlockRows target ids (rowBytes is the sketch-row width in bytes), so a
// block of target rows is reused by every source in the chunk while it is
// cache-resident instead of each source streaming the whole id range. The
// blocked order sets the same slots — OR-ing into the bitmap is order-free —
// so the bitmap is byte-identical to a per-source scan.
func fillEdgeBits(g *graph.Graph, ws *Workspace, rowBytes int, admit func(v int) bool, judge func(sc *sketch.Scratch[int8], v, u int) bool) ([]uint64, error) {
	n := g.N()
	words := (2*g.M() + 63) / 64
	if cap(ws.buddy) < words {
		ws.buddy = make([]uint64, words)
	}
	ws.buddy = ws.buddy[:words]
	for i := range ws.buddy {
		ws.buddy[i] = 0
	}
	bits := ws.buddy
	blockRows := edgeBlockRows(rowBytes)
	chunks := parwork.RangeChunks(n)
	cum := func(v int) int64 { return int64(g.AdjOffset(v)) + 16*int64(v) }
	spills, err := parwork.ForEach(chunks, func(ci int) ([]int, error) {
		lo, hi := parwork.WeightedChunkBounds(n, chunks, ci, cum)
		ownStart := (g.AdjOffset(lo) + 63) &^ 63
		var spill []int
		var sc sketch.Scratch[int8]
		set := func(slot int) {
			if slot < ownStart {
				spill = append(spill, slot)
				return
			}
			bits[slot>>6] |= 1 << (slot & 63)
		}
		// Gather the chunk's admitted sources that have forward neighbors;
		// cur[i] indexes the next unjudged forward neighbor of srcs[i].
		var srcs, cur []int32
		for v := lo; v < hi; v++ {
			if !admit(v) {
				continue
			}
			nb := g.Neighbors(v)
			j := sort.Search(len(nb), func(i int) bool { return int(nb[i]) > v })
			if j < len(nb) {
				srcs = append(srcs, int32(v))
				cur = append(cur, int32(j))
			}
		}
		// Blocked sweep: each round starts at the smallest pending target and
		// judges every admitted edge into [blockLo, blockLo+blockRows) —
		// neighbor lists are sorted ascending, so each source contributes one
		// contiguous run per round — then compacts exhausted sources.
		for len(srcs) > 0 {
			blockLo := n
			for i, v32 := range srcs {
				if u := int(g.Neighbors(int(v32))[cur[i]]); u < blockLo {
					blockLo = u
				}
			}
			blockHi := blockLo + blockRows
			alive := 0
			for i, v32 := range srcs {
				v := int(v32)
				nb := g.Neighbors(v)
				base := g.AdjOffset(v)
				j := int(cur[i])
				for j < len(nb) && int(nb[j]) < blockHi {
					u := int(nb[j])
					if admit(u) && judge(&sc, v, u) {
						set(base + j)
					}
					j++
				}
				if j < len(nb) {
					srcs[alive] = v32
					cur[alive] = int32(j)
					alive++
				}
			}
			srcs = srcs[:alive]
			cur = cur[:alive]
		}
		return spill, nil
	})
	if err != nil {
		return nil, err
	}
	for _, sp := range spills {
		for _, slot := range sp {
			bits[slot>>6] |= 1 << (slot & 63)
		}
	}
	return bits, nil
}

// mirrorEdgeBits copies every forward bit (u > v) onto its reverse slot:
// for each directed slot (v, u) with u < v it looks up the bit of (u, v) by
// binary search in u's row. Forward bits are read from src — an immutable
// snapshot taken before the pass, since a forward word being read can be
// the same word another worker is writing reverse bits into — and workers
// write only their own rows' slots of bits, with the same word-ownership
// spill discipline as fillEdgeBits.
func mirrorEdgeBits(g *graph.Graph, src, bits []uint64) error {
	n := g.N()
	chunks := parwork.RangeChunks(n)
	cum := func(v int) int64 { return int64(g.AdjOffset(v)) + 16*int64(v) }
	spills, err := parwork.ForEach(chunks, func(ci int) ([]int, error) {
		lo, hi := parwork.WeightedChunkBounds(n, chunks, ci, cum)
		ownStart := (g.AdjOffset(lo) + 63) &^ 63
		var spill []int
		for v := lo; v < hi; v++ {
			base := g.AdjOffset(v)
			for j, u32 := range g.Neighbors(v) {
				u := int(u32)
				if u >= v {
					break // neighbor lists are sorted ascending
				}
				fwd := g.AdjOffset(u) + g.NeighborIndex(u, v)
				if src[fwd>>6]&(1<<(fwd&63)) == 0 {
					continue
				}
				slot := base + j
				if slot < ownStart {
					spill = append(spill, slot)
					continue
				}
				bits[slot>>6] |= 1 << (slot & 63)
			}
		}
		return spill, nil
	})
	if err != nil {
		return err
	}
	for _, sp := range spills {
		for _, slot := range sp {
			bits[slot>>6] |= 1 << (slot & 63)
		}
	}
	return nil
}

// Validate checks Definition 4.2 structurally: every almost-clique K has
// |K| ≤ (1+eps')Δ and every member has ≥ (1−eps')|K| neighbors inside K. It
// returns the fraction of members violating the degree condition and an
// error if size bounds break. eps' is the tolerance used for checking.
// Membership tests run against one epoch-stamped array shared by all
// cliques (the PR 2 BFS-scratch idiom) instead of a fresh map per clique.
func (d *Decomposition) Validate(g *graph.Graph, epsCheck float64) (violFrac float64, err error) {
	delta := float64(g.MaxDegree())
	total, viol := 0, 0
	inClique := make([]int32, g.N()) // epoch stamp: inClique[v] == i+1 ⇔ v ∈ clique i
	for i, members := range d.Cliques {
		if float64(len(members)) > (1+epsCheck)*delta+1 {
			return 0, fmt.Errorf("acd: clique %d has %d > (1+%v)Δ members", i, len(members), epsCheck)
		}
		epoch := int32(i + 1)
		for _, v := range members {
			inClique[v] = epoch
		}
		for _, v := range members {
			total++
			in := 0
			for _, u := range g.Neighbors(v) {
				if inClique[u] == epoch {
					in++
				}
			}
			if float64(in) < (1-epsCheck)*float64(len(members)) {
				viol++
			}
		}
	}
	if total == 0 {
		return 0, nil
	}
	return float64(viol) / float64(total), nil
}

// SparseQuality returns the minimum exact sparsity among vertices classified
// sparse (Definition 4.2 requires Ω(ε²Δ)); +Inf when there are none. It
// examines every sparse vertex — O(n·Δ²) worst case; large-instance tests
// should use SparseQualitySampled.
func (d *Decomposition) SparseQuality(g *graph.Graph) float64 {
	return d.SparseQualitySampled(g, 0, 0)
}

// SparseQualitySampled is SparseQuality's documented sampled mode: it
// evaluates the exact sparsity of at most maxSamples sparse vertices, chosen
// uniformly (deterministically from seed), and returns their minimum —
// a one-sided estimate that upper-bounds SparseQuality but costs
// O(maxSamples·Δ²) instead of O(n·Δ²). maxSamples ≤ 0 checks every sparse
// vertex. Evaluation fans across the worker pool; the result is independent
// of the parallelism level (min is order-free).
func (d *Decomposition) SparseQualitySampled(g *graph.Graph, maxSamples int, seed uint64) float64 {
	var sparse []int
	for v := 0; v < g.N(); v++ {
		if d.IsSparse(v) {
			sparse = append(sparse, v)
		}
	}
	if maxSamples > 0 && len(sparse) > maxSamples {
		// Partial Fisher–Yates: the prefix is a uniform sample without
		// replacement.
		rng := parwork.StreamRNG(seed)
		for i := 0; i < maxSamples; i++ {
			j := i + rng.IntN(len(sparse)-i)
			sparse[i], sparse[j] = sparse[j], sparse[i]
		}
		sparse = sparse[:maxSamples]
	}
	min := math.Inf(1)
	chunks := parwork.RangeChunks(len(sparse))
	mins, err := parwork.ForEach(chunks, func(ci int) (float64, error) {
		lo, hi := parwork.ChunkBoundsIn(len(sparse), chunks, ci)
		m := math.Inf(1)
		for _, v := range sparse[lo:hi] {
			if z := Sparsity(g, v); z < m {
				m = z
			}
		}
		return m, nil
	})
	if err != nil {
		// The chunk closure never fails; +Inf here would masquerade as a
		// perfect decomposition, so fail loudly if that ever changes.
		panic("acd: sparse-quality scan failed: " + err.Error())
	}
	for _, m := range mins {
		if m < min {
			min = m
		}
	}
	return min
}
