// Package acd computes the ε-almost-clique decomposition of Definition 4.2
// on cluster graphs, following Section 5.4: fingerprint-approximated degrees
// and joint-neighborhood sizes solve the ξ-buddy predicate (Lemma 5.8),
// buddy-edge connected components form the almost-cliques (Proposition 4.3),
// and a further fingerprint wave estimates external degrees to classify
// cabals (Section 4.1).
//
// An exact (centralized) reference decomposition is provided for testing and
// for experiments that need ground truth.
package acd

import (
	"fmt"
	"math"
	"math/rand/v2"

	"clustercolor/internal/cluster"
	"clustercolor/internal/fingerprint"
	"clustercolor/internal/graph"
)

// Decomposition is an ε-almost-clique decomposition: a partition of the
// vertices into sparse vertices and almost-cliques.
type Decomposition struct {
	// Eps is the ε parameter of Definition 4.2.
	Eps float64
	// CliqueOf maps each vertex to its almost-clique index, -1 if sparse.
	CliqueOf []int
	// Cliques lists the member vertices of each almost-clique.
	Cliques [][]int
}

// IsSparse reports whether v is in V_sparse.
func (d *Decomposition) IsSparse(v int) bool { return d.CliqueOf[v] < 0 }

// Sparsity returns ζ_v of Definition 4.1 computed exactly:
// ζ_v = (1/Δ)·( C(Δ,2) − ½·Σ_{u∈N(v)} |N(u) ∩ N(v)| ).
func Sparsity(g *graph.Graph, v int) float64 {
	delta := float64(g.MaxDegree())
	if delta == 0 {
		return 0
	}
	var shared float64
	for _, u := range g.Neighbors(v) {
		shared += float64(g.CommonNeighbors(v, int(u)))
	}
	return (delta*(delta-1)/2 - shared/2) / delta
}

// Exact computes the decomposition centrally: buddy edges are pairs with
// |N(u) ∩ N(v)| ≥ (1−2ξ)Δ, dense candidates have ≥ (1−2ξ)Δ incident buddy
// edges, and almost-cliques are the connected components of the buddy graph
// restricted to dense candidates ([ACK19, Lemma 4.8] shape). ξ is derived
// from eps.
func Exact(g *graph.Graph, eps float64) (*Decomposition, error) {
	if eps <= 0 || eps >= 1.0/3 {
		return nil, fmt.Errorf("acd: eps %v out of (0, 1/3)", eps)
	}
	xi := eps / 2
	delta := g.MaxDegree()
	buddyDeg := make([]int, g.N())
	isBuddy := func(u, v int) bool {
		return float64(g.CommonNeighbors(u, v)) >= (1-2*xi)*float64(delta)
	}
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			if int(u) > v && isBuddy(v, int(u)) {
				buddyDeg[v]++
				buddyDeg[u]++
			}
		}
	}
	dense := make([]bool, g.N())
	for v := 0; v < g.N(); v++ {
		dense[v] = float64(buddyDeg[v]) >= (1-2*xi)*float64(delta)
	}
	return assemble(g, eps, dense, isBuddy)
}

// assemble groups dense vertices into almost-cliques via connected
// components of the buddy graph restricted to dense vertices.
func assemble(g *graph.Graph, eps float64, dense []bool, isBuddy func(u, v int) bool) (*Decomposition, error) {
	d := &Decomposition{Eps: eps, CliqueOf: make([]int, g.N())}
	for v := range d.CliqueOf {
		d.CliqueOf[v] = -1
	}
	for s := 0; s < g.N(); s++ {
		if !dense[s] || d.CliqueOf[s] >= 0 {
			continue
		}
		idx := len(d.Cliques)
		var members []int
		queue := []int{s}
		d.CliqueOf[s] = idx
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			members = append(members, v)
			for _, u := range g.Neighbors(v) {
				w := int(u)
				if dense[w] && d.CliqueOf[w] < 0 && isBuddy(v, w) {
					d.CliqueOf[w] = idx
					queue = append(queue, w)
				}
			}
		}
		if len(members) == 1 {
			// A lone dense candidate is not an almost-clique; reclassify.
			d.CliqueOf[members[0]] = -1
			continue
		}
		d.Cliques = append(d.Cliques, members)
	}
	// Reindex after dropped singletons.
	for i, members := range d.Cliques {
		for _, v := range members {
			d.CliqueOf[v] = i
		}
	}
	return d, nil
}

// Compute runs the distributed decomposition of Proposition 4.3 on a cluster
// graph: fingerprint waves approximate degrees and joint neighborhood sizes
// (Lemma 5.8), each edge solves the buddy predicate locally, a further wave
// counts incident buddy edges, and an O(1)-round BFS labels the components.
func Compute(cg *cluster.CG, eps float64, rng *rand.Rand) (*Decomposition, error) {
	if eps <= 0 || eps >= 1.0/3 {
		return nil, fmt.Errorf("acd: eps %v out of (0, 1/3)", eps)
	}
	g := cg.H
	delta := float64(g.MaxDegree())
	if delta == 0 {
		d := &Decomposition{Eps: eps, CliqueOf: make([]int, g.N())}
		for v := range d.CliqueOf {
			d.CliqueOf[v] = -1
		}
		return d, nil
	}
	xi := eps / 2
	// The buddy predicate conjoins several noisy estimates, so its sketches
	// use double accuracy (ξ/2) relative to the decision margins.
	t, err := fingerprint.TrialsFor(xi/2, g.N())
	if err != nil {
		return nil, err
	}
	samples := fingerprint.SampleAll(g.N(), t, rng)
	// Wave 1: per-vertex neighborhood sketches (degrees + reusable for the
	// joint-neighborhood estimates on edges).
	sketches, err := fingerprint.CollectSketches(cg, "acd/nbhd", samples, fingerprint.CollectOptions{})
	if err != nil {
		return nil, err
	}
	deg := make([]float64, g.N())
	for v, s := range sketches {
		deg[v] = s.Estimate()
	}
	// Edge exchange: endpoints merge sketches and estimate |N(u) ∪ N(v)|.
	// One H-round with a sketch payload (Lemma 5.8).
	maxBits := 1
	for _, s := range sketches {
		if b := s.EncodedBits(); b > maxBits {
			maxBits = b
		}
	}
	cg.ChargeHRounds("acd/buddy-exchange", 1, maxBits)
	lowDegree := func(v int) bool { return deg[v] < (1-1.5*xi)*delta }
	// The buddy predicate runs once per edge; merging into one reusable
	// scratch sketch instead of cloning keeps the decomposition free of
	// per-edge allocation.
	merged := fingerprint.NewSketch(t)
	isBuddy := func(u, v int) bool {
		if lowDegree(u) || lowDegree(v) {
			return false
		}
		copy(merged, sketches[u])
		if err := merged.Merge(sketches[v]); err != nil {
			return false
		}
		// F ≤ (1+1.5ξ)Δ means the joint neighborhood is small, i.e. the
		// neighborhoods overlap heavily: a buddy edge.
		return merged.Estimate() <= (1+1.5*xi)*delta
	}
	// Wave 2 (Proposition 4.3): approximate the number of incident buddy
	// edges with the fingerprint counter.
	buddyCount, err := fingerprint.ApproxCount(cg, "acd/buddy-count", xi, func(v, u int) bool {
		return isBuddy(v, u)
	}, rng)
	if err != nil {
		return nil, err
	}
	dense := make([]bool, g.N())
	for v := 0; v < g.N(); v++ {
		dense[v] = buddyCount[v] >= (1-1.5*xi)*delta
	}
	// O(1)-round BFS for leader election in each (diameter-2) component.
	cg.ChargeHRounds("acd/leaders", 3, cg.IDBits())
	return assemble(g, eps, dense, isBuddy)
}

// Validate checks Definition 4.2 structurally: every almost-clique K has
// |K| ≤ (1+eps')Δ and every member has ≥ (1−eps')|K| neighbors inside K. It
// returns the fraction of members violating the degree condition and an
// error if size bounds break. eps' is the tolerance used for checking.
func (d *Decomposition) Validate(g *graph.Graph, epsCheck float64) (violFrac float64, err error) {
	delta := float64(g.MaxDegree())
	total, viol := 0, 0
	for i, members := range d.Cliques {
		if float64(len(members)) > (1+epsCheck)*delta+1 {
			return 0, fmt.Errorf("acd: clique %d has %d > (1+%v)Δ members", i, len(members), epsCheck)
		}
		inClique := make(map[int]bool, len(members))
		for _, v := range members {
			inClique[v] = true
		}
		for _, v := range members {
			total++
			in := 0
			for _, u := range g.Neighbors(v) {
				if inClique[int(u)] {
					in++
				}
			}
			if float64(in) < (1-epsCheck)*float64(len(members)) {
				viol++
			}
		}
	}
	if total == 0 {
		return 0, nil
	}
	return float64(viol) / float64(total), nil
}

// SparseQuality returns the minimum exact sparsity among vertices classified
// sparse (Definition 4.2 requires Ω(ε²Δ)); +Inf when there are none.
func (d *Decomposition) SparseQuality(g *graph.Graph) float64 {
	min := math.Inf(1)
	for v := 0; v < g.N(); v++ {
		if d.IsSparse(v) {
			if z := Sparsity(g, v); z < min {
				min = z
			}
		}
	}
	return min
}
