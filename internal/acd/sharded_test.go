package acd

import (
	"math"
	"runtime"
	"testing"

	"clustercolor/internal/graph"
	"clustercolor/internal/network"
	"clustercolor/internal/parwork"
	"clustercolor/internal/shard"
	"clustercolor/internal/sketch"
)

type decompRun struct {
	d       *Decomposition
	p       *Profile
	rounds  int64
	bits    int64
	xchange shard.ExchangeStats
}

func runDecomp(t *testing.T, h *graph.Graph, shards, par int) decompRun {
	t.Helper()
	prev := parwork.SetParallelism(par)
	defer parwork.SetParallelism(prev)
	cg := asCG(t, h, 17)
	cost, err := network.NewCostModel(64)
	if err != nil {
		t.Fatal(err)
	}
	run := cg.WithCost(cost)
	rng := parwork.StreamRNG(41)
	ell := 8.0
	var out decompRun
	if shards == 0 {
		ws := NewWorkspace()
		d, err := ComputeWith(run, 0.2, rng, ws)
		if err != nil {
			t.Fatal(err)
		}
		p, err := BuildProfileWith(run, d, float64(h.MaxDegree()), ell, rng, ws)
		if err != nil {
			t.Fatal(err)
		}
		out.d, out.p = d, p
	} else {
		sg, err := graph.NewShardedGraph(run.H, shards)
		if err != nil {
			t.Fatal(err)
		}
		se := shard.NewEngine(sg, sketch.MaxKernel{})
		ws := NewWorkspace()
		d, err := ComputeShardedWith(run, se, 0.2, rng, ws)
		if err != nil {
			t.Fatal(err)
		}
		p, err := BuildProfileShardedWith(run, se, d, float64(h.MaxDegree()), ell, rng, ws)
		if err != nil {
			t.Fatal(err)
		}
		out.d, out.p = d, p
		out.xchange = se.Stats
	}
	out.rounds = run.Cost().Rounds()
	out.bits = run.Cost().TotalBits()
	return out
}

func assertSameDecomp(t *testing.T, label string, want, got decompRun) {
	t.Helper()
	if len(got.d.CliqueOf) != len(want.d.CliqueOf) {
		t.Fatalf("%s: CliqueOf length %d, want %d", label, len(got.d.CliqueOf), len(want.d.CliqueOf))
	}
	for v := range want.d.CliqueOf {
		if got.d.CliqueOf[v] != want.d.CliqueOf[v] {
			t.Fatalf("%s: CliqueOf[%d] = %d, want %d", label, v, got.d.CliqueOf[v], want.d.CliqueOf[v])
		}
	}
	if len(got.d.Cliques) != len(want.d.Cliques) {
		t.Fatalf("%s: %d cliques, want %d", label, len(got.d.Cliques), len(want.d.Cliques))
	}
	for i := range want.d.Cliques {
		if len(got.d.Cliques[i]) != len(want.d.Cliques[i]) {
			t.Fatalf("%s: clique %d size %d, want %d", label, i, len(got.d.Cliques[i]), len(want.d.Cliques[i]))
		}
		for j := range want.d.Cliques[i] {
			if got.d.Cliques[i][j] != want.d.Cliques[i][j] {
				t.Fatalf("%s: clique %d member %d = %d, want %d", label, i, j, got.d.Cliques[i][j], want.d.Cliques[i][j])
			}
		}
	}
	for i := range want.p.IsCabal {
		if got.p.IsCabal[i] != want.p.IsCabal[i] {
			t.Fatalf("%s: IsCabal[%d] = %v, want %v", label, i, got.p.IsCabal[i], want.p.IsCabal[i])
		}
		if math.Float64bits(got.p.AvgExt[i]) != math.Float64bits(want.p.AvgExt[i]) {
			t.Fatalf("%s: AvgExt[%d] = %v, want %v (bit-exact)", label, i, got.p.AvgExt[i], want.p.AvgExt[i])
		}
	}
	for v := range want.p.ExtDeg {
		if math.Float64bits(got.p.ExtDeg[v]) != math.Float64bits(want.p.ExtDeg[v]) {
			t.Fatalf("%s: ExtDeg[%d] = %v, want %v (bit-exact)", label, v, got.p.ExtDeg[v], want.p.ExtDeg[v])
		}
	}
	if got.rounds != want.rounds || got.bits != want.bits {
		t.Fatalf("%s: charged rounds/bits %d/%d, want %d/%d — sharding must not change the budget", label, got.rounds, got.bits, want.rounds, want.bits)
	}
}

// TestComputeShardedByteIdentity is the tentpole invariant at the
// decomposition layer: the partitioned pipeline must reproduce the
// unsharded decomposition and profile bit for bit — same cliques, same
// cabal flags, same float estimates, same charged budget — at shard counts
// 1/2/4 (plus a non-dividing count) and parallelism 1/4/NumCPU.
func TestComputeShardedByteIdentity(t *testing.T) {
	planted, _ := plantedInstance(t, 3)
	ring, err := graph.RingOfCliques(7, 11)
	if err != nil {
		t.Fatal(err)
	}
	graphs := map[string]*graph.Graph{
		"planted":     planted,
		"ringcliques": ring,
		"gnp":         graph.MustGNP(240, 0.12, graph.NewRand(19)),
	}
	pars := []int{1, 4, runtime.NumCPU()}
	for gname, h := range graphs {
		want := runDecomp(t, h, 0, 1)
		for _, shards := range []int{1, 2, 4, 5} {
			for _, par := range pars {
				label := gname
				got := runDecomp(t, h, shards, par)
				assertSameDecomp(t, label, want, got)
				if shards == 1 && got.xchange.Rows != 0 {
					t.Fatalf("%s: single shard shipped %d boundary rows", label, got.xchange.Rows)
				}
				if shards > 1 && gname == "ringcliques" && got.xchange.Rows == 0 {
					t.Fatalf("%s shards=%d: expected boundary traffic", label, shards)
				}
			}
		}
	}
}
