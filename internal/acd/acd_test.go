package acd

import (
	"testing"

	"clustercolor/internal/cluster"
	"clustercolor/internal/graph"
	"clustercolor/internal/network"
)

func plantedInstance(t *testing.T, seed uint64) (*graph.Graph, []int) {
	t.Helper()
	rng := graph.NewRand(seed)
	g, blocks, err := graph.PlantedACD(graph.PlantedACDSpec{
		NumCliques:     3,
		CliqueSize:     40,
		DropFraction:   0.03,
		ExternalDegree: 2,
		SparseN:        60,
		SparseP:        0.08,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return g, blocks
}

func asCG(t *testing.T, h *graph.Graph, seed uint64) *cluster.CG {
	t.Helper()
	rng := graph.NewRand(seed)
	exp, err := graph.Expand(h, graph.ExpandSpec{Topology: graph.TopologyStar, MachinesPerCluster: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := network.NewCostModel(64)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := cluster.New(h, exp, cost)
	if err != nil {
		t.Fatal(err)
	}
	return cg
}

func TestSparsityExtremes(t *testing.T) {
	// In a clique, every vertex has sparsity 0 (neighborhood is complete).
	k := graph.Clique(10)
	for v := 0; v < 10; v++ {
		if z := Sparsity(k, v); z > 0.01 {
			t.Fatalf("clique sparsity = %v, want ~0", z)
		}
	}
	// In a star, the center's neighborhood has no edges at all: sparsity
	// is about Δ/2.
	s := graph.Star(21)
	z := Sparsity(s, 0)
	if z < 8 || z > 10.1 {
		t.Fatalf("star center sparsity = %v, want ≈ (Δ-1)/2 = 9.5", z)
	}
}

func TestExactRecoversPlantedBlocks(t *testing.T) {
	g, blocks := plantedInstance(t, 3)
	d, err := Exact(g, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	assertRecoversBlocks(t, g, blocks, d)
}

func assertRecoversBlocks(t *testing.T, g *graph.Graph, blocks []int, d *Decomposition) {
	t.Helper()
	// Every planted dense block should be recovered as one almost-clique:
	// members of the same block share a clique id, and sparse vertices are
	// classified sparse.
	blockToClique := map[int]int{}
	misclassified := 0
	for v := 0; v < g.N(); v++ {
		if blocks[v] >= 0 {
			if d.CliqueOf[v] < 0 {
				misclassified++
				continue
			}
			if prev, ok := blockToClique[blocks[v]]; ok {
				if prev != d.CliqueOf[v] {
					t.Fatalf("block %d split across cliques %d and %d", blocks[v], prev, d.CliqueOf[v])
				}
			} else {
				blockToClique[blocks[v]] = d.CliqueOf[v]
			}
		} else if d.CliqueOf[v] >= 0 {
			misclassified++
		}
	}
	if misclassified > g.N()/20 {
		t.Fatalf("%d/%d vertices misclassified", misclassified, g.N())
	}
	// Distinct blocks map to distinct cliques.
	seen := map[int]bool{}
	for _, c := range blockToClique {
		if seen[c] {
			t.Fatal("two blocks merged into one clique")
		}
		seen[c] = true
	}
}

func TestExactRejectsBadEps(t *testing.T) {
	g := graph.Clique(4)
	if _, err := Exact(g, 0); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := Exact(g, 0.5); err == nil {
		t.Fatal("eps=0.5 accepted")
	}
}

func TestComputeDistributedMatchesPlanted(t *testing.T) {
	g, blocks := plantedInstance(t, 5)
	cg := asCG(t, g, 7)
	d, err := Compute(cg, 0.3, graph.NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	assertRecoversBlocks(t, g, blocks, d)
	if cg.Cost().Rounds() == 0 {
		t.Fatal("distributed ACD charged no rounds")
	}
}

func TestComputeRejectsBadEps(t *testing.T) {
	cg := asCG(t, graph.Clique(4), 1)
	if _, err := Compute(cg, 0.4, graph.NewRand(1)); err == nil {
		t.Fatal("eps=0.4 accepted")
	}
}

func TestComputeOnEdgelessGraph(t *testing.T) {
	cg := asCG(t, graph.NewBuilder(5).Build(), 1)
	d, err := Compute(cg, 0.2, graph.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 5; v++ {
		if !d.IsSparse(v) {
			t.Fatalf("vertex %d of edgeless graph not sparse", v)
		}
	}
}

func TestValidateOnPlanted(t *testing.T) {
	g, _ := plantedInstance(t, 11)
	d, err := Exact(g, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	viol, err := d.Validate(g, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	if viol > 0.05 {
		t.Fatalf("%.2f of clique members violate the in-degree condition", viol)
	}
}

func TestValidateDetectsOversizedClique(t *testing.T) {
	g := graph.Path(10) // Δ = 2
	d := &Decomposition{
		Eps:      0.1,
		CliqueOf: make([]int, 10),
		Cliques:  [][]int{{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}},
	}
	if _, err := d.Validate(g, 0.1); err == nil {
		t.Fatal("oversized clique passed validation")
	}
}

func TestSparseQuality(t *testing.T) {
	g, _ := plantedInstance(t, 13)
	d, err := Exact(g, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	q := d.SparseQuality(g)
	if q < 0 {
		t.Fatalf("sparse quality %v negative", q)
	}
}

func TestBuildProfileClassifiesCabals(t *testing.T) {
	// Blocks with tiny external degree are cabals for a threshold above
	// their external average.
	g, _ := plantedInstance(t, 17)
	cg := asCG(t, g, 19)
	d, err := Exact(g, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildProfile(cg, d, float64(g.MaxDegree()), 20, graph.NewRand(21))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Size) != len(d.Cliques) {
		t.Fatalf("profile has %d cliques, want %d", len(p.Size), len(d.Cliques))
	}
	for i, members := range d.Cliques {
		if p.Size[i] != len(members) {
			t.Fatalf("clique %d size %d, want %d", i, p.Size[i], len(members))
		}
		// Planted external degree ≈ 4 (2 sampled each way), far below 20.
		if !p.IsCabal[i] {
			t.Fatalf("clique %d (avg ext %.1f) not classified cabal at ℓ=20", i, p.AvgExt[i])
		}
	}
	if got := len(p.CabalVertices()); got == 0 {
		t.Fatal("no cabal vertices")
	}
	// With ℓ below the external average nothing is a cabal.
	p2, err := BuildProfile(cg, d, float64(g.MaxDegree()), 0.001, graph.NewRand(23))
	if err != nil {
		t.Fatal(err)
	}
	for i := range p2.IsCabal {
		if p2.IsCabal[i] {
			t.Fatalf("clique %d classified cabal at ℓ=0.001", i)
		}
	}
}

func TestBuildProfileValidation(t *testing.T) {
	g, _ := plantedInstance(t, 25)
	cg := asCG(t, g, 27)
	d, err := Exact(g, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildProfile(cg, d, 1, 0, graph.NewRand(1)); err == nil {
		t.Fatal("ell=0 accepted")
	}
}

func TestExternalAndAntiDegreeExact(t *testing.T) {
	g, _ := plantedInstance(t, 29)
	cg := asCG(t, g, 31)
	d, err := Exact(g, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildProfile(cg, d, float64(g.MaxDegree()), 20, graph.NewRand(33))
	if err != nil {
		t.Fatal(err)
	}
	okExt := 0
	dense := 0
	for v := 0; v < g.N(); v++ {
		if d.CliqueOf[v] < 0 {
			continue
		}
		dense++
		e := ExactExternalDegree(cg, d, v)
		// Fingerprint estimate within a factor 2 or absolute slack 3 of
		// truth for most vertices.
		if diff := p.ExtDeg[v] - float64(e); diff < 4 && diff > -4 || (e > 0 && p.ExtDeg[v] > 0.5*float64(e) && p.ExtDeg[v] < 2*float64(e)) {
			okExt++
		}
		a := ExactAntiDegree(cg, d, v)
		if a < 0 || a >= len(d.Cliques[d.CliqueOf[v]]) {
			t.Fatalf("anti-degree %d out of range", a)
		}
	}
	if okExt < dense*8/10 {
		t.Fatalf("only %d/%d external-degree estimates acceptable", okExt, dense)
	}
}

func TestAntiDegreeProxyIdentity(t *testing.T) {
	// For a vertex with exact external degree and no approximation error,
	// x_v = a_v − (Δ − deg(v)) per Equation (3). Verify the proxy tracks
	// the exact value within the estimate error.
	g, _ := plantedInstance(t, 35)
	cg := asCG(t, g, 37)
	d, err := Exact(g, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildProfile(cg, d, float64(g.MaxDegree()), 20, graph.NewRand(39))
	if err != nil {
		t.Fatal(err)
	}
	delta := g.MaxDegree()
	ok := 0
	dense := 0
	for v := 0; v < g.N(); v++ {
		if d.CliqueOf[v] < 0 {
			continue
		}
		dense++
		want := float64(ExactAntiDegree(cg, d, v) - (delta - g.Degree(v)))
		got := p.AntiDegreeProxy(v, delta)
		if diff := got - want; diff > -6 && diff < 6 {
			ok++
		}
	}
	if ok < dense*8/10 {
		t.Fatalf("only %d/%d proxies near identity", ok, dense)
	}
}
