package trials

import (
	"testing"
	"time"

	"clustercolor/internal/cluster"
	"clustercolor/internal/coloring"
	"clustercolor/internal/graph"
	"clustercolor/internal/network"
)

func testCG(t *testing.T, h *graph.Graph) *cluster.CG {
	t.Helper()
	rng := graph.NewRand(2)
	exp, err := graph.Expand(h, graph.ExpandSpec{Topology: graph.TopologySingleton}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := network.NewCostModel(64)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := cluster.New(h, exp, cost)
	if err != nil {
		t.Fatal(err)
	}
	return cg
}

func fullSpace(col *coloring.Coloring) func(v int) []int32 {
	space := RangeSpace(1, col.MaxColor())
	return func(v int) []int32 { return space }
}

func TestTryColorRoundProducesProperColoring(t *testing.T) {
	rng := graph.NewRand(3)
	h := graph.MustGNP(100, 0.1, rng)
	cg := testCG(t, h)
	col := coloring.New(h.N(), h.MaxDegree())
	opts := TryColorOptions{Phase: "try", Space: fullSpace(col), Activation: 1}
	colored, err := TryColorRound(cg, col, opts, graph.NewRand(4))
	if err != nil {
		t.Fatal(err)
	}
	if colored == 0 {
		t.Fatal("no vertex colored in full-activation round")
	}
	if err := coloring.VerifyProper(h, col); err != nil {
		t.Fatal(err)
	}
}

func TestTryColorRoundNilSpace(t *testing.T) {
	h := graph.Path(3)
	cg := testCG(t, h)
	col := coloring.New(3, 2)
	if _, err := TryColorRound(cg, col, TryColorOptions{Phase: "x"}, graph.NewRand(1)); err == nil {
		t.Fatal("nil space accepted")
	}
}

func TestTryColorLowerIDWinsTies(t *testing.T) {
	// Two adjacent vertices, one candidate color: only vertex 0 may take it.
	h := graph.Path(2)
	cg := testCG(t, h)
	col := coloring.New(2, 1)
	one := []int32{1}
	opts := TryColorOptions{Phase: "tie", Space: func(v int) []int32 { return one }, Activation: 1}
	if _, err := TryColorRound(cg, col, opts, graph.NewRand(5)); err != nil {
		t.Fatal(err)
	}
	if col.Get(0) != 1 {
		t.Fatalf("vertex 0 (lower ID) lost the tie: %d", col.Get(0))
	}
	if col.Get(1) != coloring.None {
		t.Fatalf("vertex 1 adopted a conflicting color: %d", col.Get(1))
	}
}

func TestTryColorRespectsActiveSet(t *testing.T) {
	h := graph.Path(4)
	cg := testCG(t, h)
	col := coloring.New(4, 2)
	active := func(v int) bool { return v < 2 }
	opts := TryColorOptions{Phase: "act", Space: fullSpace(col), Activation: 1, Active: active}
	if _, err := TryColorRound(cg, col, opts, graph.NewRand(6)); err != nil {
		t.Fatal(err)
	}
	if col.IsColored(2) || col.IsColored(3) {
		t.Fatal("inactive vertex colored")
	}
}

func TestTryColorSkipsColoredNeighborsColors(t *testing.T) {
	h := graph.Path(2)
	cg := testCG(t, h)
	col := coloring.New(2, 1)
	if err := col.Set(0, 1); err != nil {
		t.Fatal(err)
	}
	one := []int32{1}
	opts := TryColorOptions{Phase: "blocked", Space: func(v int) []int32 { return one }, Activation: 1}
	for i := 0; i < 5; i++ {
		if _, err := TryColorRound(cg, col, opts, graph.NewRand(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if col.IsColored(1) {
		t.Fatal("vertex adopted a color used by its neighbor")
	}
}

func TestTryColorLoopColorsSlackGraph(t *testing.T) {
	// G(n,p) with full palette [Δ+1]: every vertex always has slack ≥ 1,
	// so the loop colors everything quickly (Lemma D.3 regime).
	rng := graph.NewRand(7)
	h := graph.MustGNP(150, 0.08, rng)
	cg := testCG(t, h)
	col := coloring.New(h.N(), h.MaxDegree())
	opts := TryColorOptions{Phase: "loop", Space: fullSpace(col), Activation: 0.5}
	left, err := TryColorLoop(cg, col, opts, 200, graph.NewRand(8))
	if err != nil {
		t.Fatal(err)
	}
	if left != 0 {
		t.Fatalf("%d vertices left uncolored", left)
	}
	if err := coloring.VerifyComplete(h, col); err != nil {
		t.Fatal(err)
	}
}

func TestTryColorReducesUncoloredDegree(t *testing.T) {
	// Lemma D.3's shape: with constant slack fraction, each round shrinks
	// the uncolored count by a constant factor on average.
	rng := graph.NewRand(9)
	h := graph.MustGNP(300, 0.05, rng)
	cg := testCG(t, h)
	col := coloring.New(h.N(), h.MaxDegree())
	opts := TryColorOptions{Phase: "shrink", Space: fullSpace(col), Activation: 0.5}
	before := h.N()
	for i := 0; i < 6; i++ {
		if _, err := TryColorRound(cg, col, opts, graph.NewRand(uint64(10+i))); err != nil {
			t.Fatal(err)
		}
	}
	after := before - col.DomSize()
	if after > before/2 {
		t.Fatalf("6 rounds left %d/%d uncolored", after, before)
	}
}

func TestMultiColorTrialFinishesCliqueWithSlack(t *testing.T) {
	// A clique where the space is [Δ+1] has slack exactly 1 per vertex.
	// MCT must finish it (more phases than the slack-rich case, still
	// bounded).
	h := graph.Clique(30)
	cg := testCG(t, h)
	col := coloring.New(h.N(), h.MaxDegree())
	opts := MCTOptions{Phase: "mct", Space: fullSpace(col), Seed: 99, MaxPhases: 60}
	left, err := MultiColorTrial(cg, col, opts, graph.NewRand(11))
	if err != nil {
		t.Fatal(err)
	}
	if left != 0 {
		t.Fatalf("MCT left %d uncolored in clique", left)
	}
	if err := coloring.VerifyComplete(h, col); err != nil {
		t.Fatal(err)
	}
}

func TestMultiColorTrialSlackRichIsFast(t *testing.T) {
	// With slack γ|C(v)| (space twice the degree), MCT should finish in
	// very few phases (the O(log* n) regime).
	rng := graph.NewRand(13)
	h := graph.MustGNP(200, 0.1, rng)
	cg := testCG(t, h)
	delta := h.MaxDegree()
	col := coloring.New(h.N(), 2*delta) // color space [1, 2Δ+1]
	opts := MCTOptions{Phase: "mct", Space: fullSpace(col), Seed: 7, MaxPhases: 8}
	left, err := MultiColorTrial(cg, col, opts, graph.NewRand(14))
	if err != nil {
		t.Fatal(err)
	}
	if left != 0 {
		t.Fatalf("slack-rich MCT left %d uncolored", left)
	}
	if err := coloring.VerifyProper(h, col); err != nil {
		t.Fatal(err)
	}
}

func TestMultiColorTrialRespectsSpace(t *testing.T) {
	// Restrict every vertex to even colors; the result must only use them.
	rng := graph.NewRand(15)
	h := graph.MustGNP(60, 0.1, rng)
	cg := testCG(t, h)
	delta := h.MaxDegree()
	col := coloring.New(h.N(), 4*delta+2)
	var evens []int32
	for c := int32(2); c <= col.MaxColor(); c += 2 {
		evens = append(evens, c)
	}
	opts := MCTOptions{Phase: "mct", Space: func(v int) []int32 { return evens }, Seed: 3}
	if _, err := MultiColorTrial(cg, col, opts, graph.NewRand(16)); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < h.N(); v++ {
		if c := col.Get(v); c != coloring.None && c%2 != 0 {
			t.Fatalf("vertex %d got odd color %d outside its space", v, c)
		}
	}
}

func TestMultiColorTrialNilSpace(t *testing.T) {
	h := graph.Path(3)
	cg := testCG(t, h)
	col := coloring.New(3, 2)
	if _, err := MultiColorTrial(cg, col, MCTOptions{Phase: "x"}, graph.NewRand(1)); err == nil {
		t.Fatal("nil space accepted")
	}
}

func TestMultiColorTrialActiveSubset(t *testing.T) {
	h := graph.Clique(10)
	cg := testCG(t, h)
	col := coloring.New(10, 9)
	active := func(v int) bool { return v < 5 }
	opts := MCTOptions{Phase: "mct", Space: fullSpace(col), Active: active, Seed: 21, MaxPhases: 40}
	left, err := MultiColorTrial(cg, col, opts, graph.NewRand(17))
	if err != nil {
		t.Fatal(err)
	}
	if left != 0 {
		t.Fatalf("%d active left", left)
	}
	for v := 5; v < 10; v++ {
		if col.IsColored(v) {
			t.Fatalf("inactive vertex %d colored", v)
		}
	}
}

func TestRangeSpace(t *testing.T) {
	s := RangeSpace(3, 6)
	want := []int32{3, 4, 5, 6}
	if len(s) != 4 {
		t.Fatalf("RangeSpace = %v", s)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("RangeSpace = %v, want %v", s, want)
		}
	}
	if RangeSpace(5, 3) != nil {
		t.Fatal("inverted range not nil")
	}
}

func TestTryColorChargesBandwidth(t *testing.T) {
	h := graph.Clique(8)
	cg := testCG(t, h)
	col := coloring.New(8, 7)
	before := cg.Cost().Rounds()
	if _, err := TryColorRound(cg, col, TryColorOptions{Phase: "bw", Space: fullSpace(col), Activation: 1}, graph.NewRand(1)); err != nil {
		t.Fatal(err)
	}
	if cg.Cost().Rounds() <= before {
		t.Fatal("TryColorRound charged no rounds")
	}
}

func TestMultiColorTrialTerminatesOnDuplicateSpaceColors(t *testing.T) {
	// A space with a repeated color: the sampling dedup is by member index,
	// so the phase loop must terminate even though fewer distinct colors
	// exist than member slots. (Color-based dedup would spin forever once
	// the tried set saturates at the distinct-color count.)
	h := graph.Path(2)
	cg := testCG(t, h)
	col := coloring.New(2, 4)
	dup := []int32{3, 3, 3, 3}
	done := make(chan error, 1)
	go func() {
		_, err := MultiColorTrial(cg, col, MCTOptions{
			Phase: "mct",
			Space: func(v int) []int32 { return dup },
			Seed:  9,
		}, graph.NewRand(21))
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("MultiColorTrial hung on a duplicate-color space")
	}
	// Only one of the two adjacent vertices can hold the lone color.
	if err := coloring.VerifyProper(h, col); err != nil {
		t.Fatal(err)
	}
}
