// Package trials implements the random color-trial engines every stage of
// the algorithm is built from:
//
//   - TryColorRound — Algorithm 17 / Lemma D.3: activated vertices try one
//     uniform color from their color space; lower-ID neighbors win ties.
//     Each round reduces uncolored degrees by a constant factor when
//     vertices have slack.
//
//   - MultiColorTrial — Algorithm 16 / Lemmas D.1–D.2: vertices with slack
//     try exponentially growing pseudorandom color sets (sampled from a
//     shared representative-set family so a set costs O(log n) bits to
//     describe), finishing in O(log* n) phases.
//
// Color spaces C(v) are supplied by callers as explicit candidate lists;
// the engines only ever announce O(log n)-bit descriptions per round, which
// is what the cost model charges.
package trials

import (
	"fmt"
	"math/bits"
	"math/rand/v2"

	"clustercolor/internal/cluster"
	"clustercolor/internal/coloring"
	"clustercolor/internal/parwork"
	"clustercolor/internal/prng"
)

// TryColorOptions configures one TryColorRound.
type TryColorOptions struct {
	// Phase labels the cost-model entries.
	Phase string
	// Active restricts the participating set S (nil = all uncolored).
	Active func(v int) bool
	// Space returns C(v), the candidate colors of v. A nil or empty space
	// skips the vertex this round.
	Space func(v int) []int32
	// Activation is the self-activation probability p (Algorithm 17 uses
	// γ/4). Values outside (0,1] are coerced to 1.
	Activation float64
}

// TryColorScratch is the reusable per-round buffer of TryColorRound. Loops
// that run many rounds (TryColorLoop, the low-degree shatter loop) hold one
// scratch so the per-vertex tried array stops being allocated every round.
// The zero value is ready to use.
type TryColorScratch struct {
	tried []int32
	win   []int32
}

// grow resizes the tried buffer to n and resets every cell to None.
func (sc *TryColorScratch) grow(n int) []int32 {
	if cap(sc.tried) < n {
		sc.tried = make([]int32, n)
		return sc.tried
	}
	sc.tried = sc.tried[:n]
	for i := range sc.tried {
		sc.tried[i] = coloring.None
	}
	return sc.tried
}

// TryColorRound runs one round of Algorithm 17 and returns the number of
// vertices newly colored. Semantics: an activated vertex samples a uniform
// color from its space and adopts it iff no colored neighbor holds it and no
// activated neighbor of smaller index tries it.
func TryColorRound(cg *cluster.CG, col *coloring.Coloring, opts TryColorOptions, rng *rand.Rand) (int, error) {
	return TryColorRoundWith(cg, col, opts, rng, &TryColorScratch{})
}

// TryColorRoundWith is TryColorRound with caller-owned scratch.
func TryColorRoundWith(cg *cluster.CG, col *coloring.Coloring, opts TryColorOptions, rng *rand.Rand, sc *TryColorScratch) (int, error) {
	if opts.Space == nil {
		return 0, fmt.Errorf("trials: nil color space")
	}
	p := opts.Activation
	if p <= 0 || p > 1 {
		p = 1
	}
	n := cg.H.N()
	tried := sc.grow(n) // None = not trying
	for v := 0; v < n; v++ {
		if col.IsColored(v) {
			continue
		}
		if opts.Active != nil && !opts.Active(v) {
			continue
		}
		if rng.Float64() >= p {
			continue
		}
		space := opts.Space(v)
		if len(space) == 0 {
			continue
		}
		tried[v] = space[rng.IntN(len(space))]
	}
	// One H-round to announce the tried color (O(log Δ) bits) and one to
	// echo conflicts back.
	colorBits := bits.Len(uint(col.MaxColor())) + 1
	cg.ChargeHRounds(opts.Phase+"/announce", 1, colorBits)
	cg.ChargeHRounds(opts.Phase+"/respond", 1, colorBits)
	// Decide in parallel, apply sequentially (the PR 3 write-apply order
	// contract). A vertex's decision depends only on the pre-round coloring
	// and the tried array: a lower-ID neighbor newly adopting c necessarily
	// tried c, so the tried[w] == c check subsumes every same-round write the
	// serial loop would have observed — the parallel decisions are
	// byte-identical to the serial ones.
	if cap(sc.win) < n {
		sc.win = make([]int32, n)
	}
	sc.win = sc.win[:n]
	win := sc.win
	if err := parwork.ForRange(n, func(lo, hi int) error {
		for v := lo; v < hi; v++ {
			c := tried[v]
			win[v] = coloring.None
			if c == coloring.None {
				continue
			}
			ok := true
			for _, u := range cg.H.Neighbors(v) {
				w := int(u)
				if col.Get(w) == c {
					ok = false
					break
				}
				if w < v && tried[w] == c {
					ok = false
					break
				}
			}
			if ok {
				win[v] = c
			}
		}
		return nil
	}); err != nil {
		return 0, err
	}
	colored := 0
	for v := 0; v < n; v++ {
		if win[v] == coloring.None {
			continue
		}
		if err := col.Set(v, win[v]); err != nil {
			return colored, fmt.Errorf("trials: adopting color: %w", err)
		}
		colored++
	}
	return colored, nil
}

// TryColorLoop runs up to maxRounds TryColorRounds and stops early when the
// active set is fully colored. It returns the number of vertices still
// uncolored in the active set.
func TryColorLoop(cg *cluster.CG, col *coloring.Coloring, opts TryColorOptions, maxRounds int, rng *rand.Rand) (int, error) {
	var sc TryColorScratch
	for r := 0; r < maxRounds; r++ {
		if remainingActive(cg, col, opts.Active) == 0 {
			return 0, nil
		}
		if _, err := TryColorRoundWith(cg, col, opts, rng, &sc); err != nil {
			return 0, err
		}
	}
	return remainingActive(cg, col, opts.Active), nil
}

func remainingActive(cg *cluster.CG, col *coloring.Coloring, active func(v int) bool) int {
	n := 0
	for v := 0; v < cg.H.N(); v++ {
		if col.IsColored(v) {
			continue
		}
		if active != nil && !active(v) {
			continue
		}
		n++
	}
	return n
}

// MCTOptions configures MultiColorTrial.
type MCTOptions struct {
	Phase string
	// Active restricts the participating set (nil = all uncolored).
	Active func(v int) bool
	// Space returns C(v).
	Space func(v int) []int32
	// InitialTries is x in the first phase (default 1).
	InitialTries int
	// MaxPhases bounds the loop (default 4 + log₂ of the largest space,
	// generous for the O(log* n) guarantee).
	MaxPhases int
	// Seed derives the shared representative-set families; all vertices
	// hold it, so describing a member costs only its index.
	Seed uint64
}

// MultiColorTrial runs Algorithm 16 iterated per Lemma D.1 and returns the
// number of active vertices left uncolored (0 on full success).
func MultiColorTrial(cg *cluster.CG, col *coloring.Coloring, opts MCTOptions, rng *rand.Rand) (int, error) {
	if opts.Space == nil {
		return 0, fmt.Errorf("trials: nil color space")
	}
	x := opts.InitialTries
	if x < 1 {
		x = 1
	}
	maxPhases := opts.MaxPhases
	if maxPhases <= 0 {
		maxSpace := 2
		for v := 0; v < cg.H.N(); v++ {
			if col.IsColored(v) {
				continue
			}
			if opts.Active != nil && !opts.Active(v) {
				continue
			}
			if s := len(opts.Space(v)); s > maxSpace {
				maxSpace = s
			}
		}
		maxPhases = 4 + bits.Len(uint(maxSpace))
	}
	// Per-call scratch shared by all phases: tried sets live in one arena
	// addressed by per-vertex spans, families are cached per space size, and
	// member materialization reuses one buffer — no per-vertex allocation.
	ms := &mctScratch{
		spans:  make([][2]int32, cg.H.N()),
		fams:   make(map[int]*prng.RepFamily),
		member: prng.NewMemberScratch(),
	}
	for phase := 0; phase < maxPhases; phase++ {
		if remainingActive(cg, col, opts.Active) == 0 {
			return 0, nil
		}
		if err := mctPhase(cg, col, opts, x, phase, ms, rng); err != nil {
			return 0, err
		}
		// Exponential growth of the number of tried colors.
		x *= 2
	}
	return remainingActive(cg, col, opts.Active), nil
}

// mctScratch is the reusable state of one MultiColorTrial call.
type mctScratch struct {
	// spans[v] is the [lo, hi) range of v's tried set inside arena.
	spans [][2]int32
	// arena holds every tried color of the current phase back to back.
	arena []int32
	// fams caches the representative family per space size for the phase.
	fams map[int]*prng.RepFamily
	// memberBuf and member materialize family members without allocating.
	memberBuf []int
	member    *prng.MemberScratch
	// idxBuf holds the member indices accepted for the current vertex, the
	// dedup set of the sampling loop.
	idxBuf []int
	// win buffers the parallel phase decisions before the sequential apply.
	win []int32
}

// tried returns v's tried set for the current phase.
func (ms *mctScratch) tried(v int) []int32 {
	sp := ms.spans[v]
	return ms.arena[sp[0]:sp[1]]
}

// mctPhase is one TryPseudorandomColors(x) step: sample a representative
// set over C(v), draw x colors from it, adopt any color unused and untried
// in the neighborhood.
func mctPhase(cg *cluster.CG, col *coloring.Coloring, opts MCTOptions, x, phase int, ms *mctScratch, rng *rand.Rand) error {
	n := cg.H.N()
	ms.arena = ms.arena[:0]
	for i := range ms.spans {
		ms.spans[i] = [2]int32{}
	}
	clear(ms.fams)
	maxDescBits := 1
	for v := 0; v < n; v++ {
		if col.IsColored(v) {
			continue
		}
		if opts.Active != nil && !opts.Active(v) {
			continue
		}
		space := opts.Space(v)
		if len(space) == 0 {
			continue
		}
		// Representative-set sampling (Algorithm 16 Steps 1–2): vertex v
		// draws a member Y(v) of the shared family over C(v), then x
		// uniform colors from Y(v). Vertices with equal space sizes share
		// one family (same parameters and seed), so it is cached.
		fam := ms.fams[len(space)]
		if fam == nil {
			var err error
			fam, err = prng.RepFamilyFor(len(space), 0.5, 0.25, opts.Seed+uint64(phase)*1315423911+uint64(len(space)))
			if err != nil {
				return fmt.Errorf("trials: representative family: %w", err)
			}
			ms.fams[len(space)] = fam
		}
		member, err := fam.AppendMember(ms.memberBuf[:0], rng.IntN(fam.Count()), ms.member)
		if err != nil {
			return fmt.Errorf("trials: family member: %w", err)
		}
		ms.memberBuf = member
		k := x
		if k > len(member) {
			k = len(member)
		}
		lo := int32(len(ms.arena))
		ms.idxBuf = ms.idxBuf[:0]
		for len(ms.arena)-int(lo) < k {
			idx := member[rng.IntN(len(member))]
			// Sampling with replacement is fine for the analysis; dedup by
			// member index (a scan of the small accepted set) only to keep
			// the announced set minimal. Index-based dedup also guarantees
			// termination when a caller's space repeats a color: once every
			// member index is accepted, the next sample must be a dup.
			dup := false
			for _, j := range ms.idxBuf {
				if j == idx {
					dup = true
					break
				}
			}
			if dup {
				if len(ms.idxBuf) == len(member) {
					break
				}
				continue
			}
			ms.idxBuf = append(ms.idxBuf, idx)
			ms.arena = append(ms.arena, space[idx])
		}
		ms.spans[v] = [2]int32{lo, int32(len(ms.arena))}
		// Description: family index + x offsets within the member.
		desc := fam.IndexBits() + k*bits.Len(uint(fam.SetSize()))
		if desc > maxDescBits {
			maxDescBits = desc
		}
	}
	cg.ChargeHRounds(opts.Phase+"/announce", 1, maxDescBits)
	cg.ChargeHRounds(opts.Phase+"/respond", 1, maxDescBits)
	// Decide in parallel, apply sequentially: a lower-ID neighbor can only
	// adopt colors from its own tried set, which adoptable already rejects,
	// so decisions match the serial loop exactly (same argument as
	// TryColorRoundWith).
	if cap(ms.win) < n {
		ms.win = make([]int32, n)
	}
	ms.win = ms.win[:n]
	win := ms.win
	if err := parwork.ForRange(n, func(lo, hi int) error {
		for v := lo; v < hi; v++ {
			win[v] = coloring.None
			for _, c := range ms.tried(v) {
				if adoptable(cg, col, ms, v, c) {
					win[v] = c
					break
				}
			}
		}
		return nil
	}); err != nil {
		return err
	}
	for v := 0; v < n; v++ {
		if win[v] == coloring.None {
			continue
		}
		if err := col.Set(v, win[v]); err != nil {
			return fmt.Errorf("trials: adopting color: %w", err)
		}
	}
	return nil
}

// adoptable reports whether color c is neither held by a neighbor of v nor
// tried this phase by a neighbor of smaller index (Algorithm 16 Step 3,
// with the TryColor priority rule added: among same-phase triers of a color
// only the smallest index may adopt it, which guarantees global progress
// even when tried sets saturate the color space).
func adoptable(cg *cluster.CG, col *coloring.Coloring, ms *mctScratch, v int, c int32) bool {
	for _, u := range cg.H.Neighbors(v) {
		w := int(u)
		if col.Get(w) == c {
			return false
		}
		if w < v {
			for _, tc := range ms.tried(w) {
				if tc == c {
					return false
				}
			}
		}
	}
	return true
}

// RangeSpace returns the color space [lo, hi] as a slice (inclusive).
func RangeSpace(lo, hi int32) []int32 {
	if hi < lo {
		return nil
	}
	out := make([]int32, 0, hi-lo+1)
	for c := lo; c <= hi; c++ {
		out = append(out, c)
	}
	return out
}
