// Package linial implements Linial's deterministic color reduction
// [Lin92], the classic building block the paper's small-instance machinery
// rests on (Section 9.4 finishes shattered components by "running Linial",
// and Lemma 9.6's candidate-color sets are the same polynomial set systems).
//
// One Reduce round maps a proper q-coloring to a proper p²-coloring with
// p = O(Δ·log_Δ q): each vertex interprets its color as a degree-d
// polynomial over F_p and picks an evaluation point where it differs from
// all neighbors — distinct degree-d polynomials agree on at most d points,
// so Δ neighbors block at most dΔ < p points. Iterating gives O(Δ² log² Δ)
// colors in O(log* q) rounds; ReduceToDeltaPlusOne then drops one color
// class per round (each class is an independent set).
package linial

import (
	"fmt"
	"math/bits"

	"clustercolor/internal/cluster"
	"clustercolor/internal/graph"
)

// nextPrime returns the smallest prime ≥ n (n ≥ 2).
func nextPrime(n int) int {
	if n < 2 {
		n = 2
	}
	for ; ; n++ {
		if isPrime(n) {
			return n
		}
	}
}

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// Reduce performs one Linial round on a proper coloring with colors in
// [0, q): it returns a proper coloring with colors in [0, p²) and the new
// color count p². Δ is the maximum degree of h. The exchanged messages are
// the current colors (⌈log₂ q⌉ bits), charged as one H-round.
func Reduce(cg *cluster.CG, colors []int, q int, phase string) ([]int, int, error) {
	h := cg.H
	if len(colors) != h.N() {
		return nil, 0, fmt.Errorf("linial: %d colors for %d vertices", len(colors), h.N())
	}
	delta := h.MaxDegree()
	// Choose degree d and prime p minimizing the new color count p², under
	// cover-freeness p > d·Δ (distinct degree-d polynomials collide on at
	// most d points, and Δ neighbors block at most dΔ) and capacity
	// p^(d+1) ≥ q (distinct colors need distinct polynomials).
	bestD, bestP := 0, 0
	for cand := 1; cand <= 8; cand++ {
		p := nextPrime(cand*delta + 1)
		for pow(p, cand+1) < int64(q) {
			p = nextPrime(p + 1)
		}
		if bestP == 0 || p < bestP {
			bestD, bestP = cand, p
		}
	}
	d, p := bestD, bestP
	cg.ChargeHRounds(phase, 1, bits.Len(uint(q))+1)
	// Coefficients: base-p digits of the color.
	coeff := func(c int) []int {
		cs := make([]int, d+1)
		for i := 0; i <= d; i++ {
			cs[i] = c % p
			c /= p
		}
		return cs
	}
	evalAt := func(cs []int, x int) int {
		acc := 0
		for i := len(cs) - 1; i >= 0; i-- {
			acc = (acc*x + cs[i]) % p
		}
		return acc
	}
	next := make([]int, h.N())
	for v := 0; v < h.N(); v++ {
		cs := coeff(colors[v])
		chosen := -1
		for x := 0; x < p; x++ {
			y := evalAt(cs, x)
			ok := true
			for _, u := range h.Neighbors(v) {
				if colors[int(u)] == colors[v] {
					return nil, 0, fmt.Errorf("linial: input coloring improper at edge {%d,%d}", v, u)
				}
				if evalAt(coeff(colors[int(u)]), x) == y {
					ok = false
					break
				}
			}
			if ok {
				chosen = x*p + y
				break
			}
		}
		if chosen < 0 {
			// Impossible when p > d·Δ: each distinct neighbor polynomial
			// blocks ≤ d points.
			return nil, 0, fmt.Errorf("linial: no free evaluation point at vertex %d (p=%d, d=%d, Δ=%d)", v, p, d, delta)
		}
		next[v] = chosen
	}
	return next, p * p, nil
}

func pow(b int, e int) int64 {
	acc := int64(1)
	for i := 0; i < e; i++ {
		acc *= int64(b)
		if acc > 1<<40 {
			return acc
		}
	}
	return acc
}

// Run iterates Reduce until the color count stops shrinking (the O(Δ²·...)
// fixed point), returning the final coloring and count. The iteration count
// is O(log* q).
func Run(cg *cluster.CG, colors []int, q int, phase string) ([]int, int, error) {
	cur, curQ := colors, q
	for iter := 0; iter < 64; iter++ {
		next, nextQ, err := Reduce(cg, cur, curQ, phase)
		if err != nil {
			return nil, 0, err
		}
		if nextQ >= curQ {
			return cur, curQ, nil
		}
		cur, curQ = next, nextQ
	}
	return cur, curQ, nil
}

// ReduceToDeltaPlusOne finishes a proper q-coloring down to Δ+1 colors by
// recoloring one color class per round: a class is an independent set, so
// all its members simultaneously pick a color in [0, Δ] unused by their
// neighbors. Cost: one H-round per dropped class.
func ReduceToDeltaPlusOne(cg *cluster.CG, colors []int, q int, phase string) ([]int, error) {
	h := cg.H
	delta := h.MaxDegree()
	out := make([]int, len(colors))
	copy(out, colors)
	for c := q - 1; c > delta; c-- {
		cg.ChargeHRounds(phase, 1, bits.Len(uint(q))+1)
		for v := 0; v < h.N(); v++ {
			if out[v] != c {
				continue
			}
			used := make([]bool, delta+1)
			for _, u := range h.Neighbors(v) {
				if cu := out[int(u)]; cu <= delta {
					used[cu] = true
				}
			}
			picked := -1
			for cand := 0; cand <= delta; cand++ {
				if !used[cand] {
					picked = cand
					break
				}
			}
			if picked < 0 {
				return nil, fmt.Errorf("linial: vertex %d found no color in [0,Δ]", v)
			}
			out[v] = picked
		}
	}
	return out, nil
}

// FromIDs returns the trivial proper n-coloring (color = vertex id), the
// usual Linial starting point.
func FromIDs(h *graph.Graph) ([]int, int) {
	colors := make([]int, h.N())
	for v := range colors {
		colors[v] = v
	}
	n := h.N()
	if n < 2 {
		n = 2
	}
	return colors, n
}
