package linial

import (
	"testing"

	"clustercolor/internal/cluster"
	"clustercolor/internal/graph"
	"clustercolor/internal/network"
)

func testCG(t *testing.T, h *graph.Graph) *cluster.CG {
	t.Helper()
	rng := graph.NewRand(2)
	exp, err := graph.Expand(h, graph.ExpandSpec{Topology: graph.TopologySingleton}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := network.NewCostModel(64)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := cluster.New(h, exp, cost)
	if err != nil {
		t.Fatal(err)
	}
	return cg
}

func assertProper(t *testing.T, h *graph.Graph, colors []int, q int) {
	t.Helper()
	for v := 0; v < h.N(); v++ {
		if colors[v] < 0 || colors[v] >= q {
			t.Fatalf("color %d at vertex %d outside [0,%d)", colors[v], v, q)
		}
		for _, u := range h.Neighbors(v) {
			if colors[int(u)] == colors[v] {
				t.Fatalf("monochromatic edge {%d,%d}", v, u)
			}
		}
	}
}

func TestNextPrime(t *testing.T) {
	tests := []struct{ in, want int }{
		{0, 2}, {2, 2}, {3, 3}, {4, 5}, {14, 17}, {100, 101},
	}
	for _, tt := range tests {
		if got := nextPrime(tt.in); got != tt.want {
			t.Errorf("nextPrime(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestReduceShrinksColorsAndStaysProper(t *testing.T) {
	rng := graph.NewRand(3)
	// A single Reduce shrinks only when q ≫ Δ² (it maps q → Θ((dΔ)²)), so
	// use many vertices at constant average degree.
	h := graph.MustGNP(2000, 2.0/2000, rng)
	cg := testCG(t, h)
	colors, q := FromIDs(h)
	next, nextQ, err := Reduce(cg, colors, q, "linial")
	if err != nil {
		t.Fatal(err)
	}
	if nextQ >= q {
		t.Fatalf("colors grew: %d → %d (Δ=%d)", q, nextQ, h.MaxDegree())
	}
	assertProper(t, h, next, nextQ)
}

func TestReduceRejectsImproperInput(t *testing.T) {
	h := graph.Path(3)
	cg := testCG(t, h)
	if _, _, err := Reduce(cg, []int{1, 1, 2}, 5, "x"); err == nil {
		t.Fatal("improper input accepted")
	}
	if _, _, err := Reduce(cg, []int{1, 2}, 5, "x"); err == nil {
		t.Fatal("short color slice accepted")
	}
}

func TestRunReachesPolyDeltaColors(t *testing.T) {
	rng := graph.NewRand(5)
	// Linial only makes progress while q ≫ Δ² (its fixed point is Θ(Δ²)),
	// so use a genuinely low-degree instance.
	h := graph.MustGNP(500, 2.0/500, rng)
	cg := testCG(t, h)
	colors, q := FromIDs(h)
	final, finalQ, err := Run(cg, colors, q, "linial")
	if err != nil {
		t.Fatal(err)
	}
	assertProper(t, h, final, finalQ)
	delta := h.MaxDegree()
	// The fixed point is O(Δ² log² Δ)-ish; demand far below n.
	if finalQ > 40*(delta+1)*(delta+1) {
		t.Fatalf("final colors %d too many for Δ=%d", finalQ, delta)
	}
	if finalQ >= h.N() {
		t.Fatalf("no reduction achieved: %d colors for %d vertices", finalQ, h.N())
	}
}

func TestReduceToDeltaPlusOne(t *testing.T) {
	rng := graph.NewRand(7)
	h := graph.MustGNP(300, 3.0/300, rng)
	cg := testCG(t, h)
	colors, q := FromIDs(h)
	mid, midQ, err := Run(cg, colors, q, "linial")
	if err != nil {
		t.Fatal(err)
	}
	final, err := ReduceToDeltaPlusOne(cg, mid, midQ, "classes")
	if err != nil {
		t.Fatal(err)
	}
	assertProper(t, h, final, h.MaxDegree()+1)
}

func TestFullPipelineOnStructuredGraphs(t *testing.T) {
	tests := []struct {
		name string
		h    *graph.Graph
	}{
		{name: "cycle", h: graph.Cycle(31)},
		{name: "path", h: graph.Path(64)},
		{name: "star", h: graph.Star(12)},
		{name: "clique", h: graph.Clique(8)},
		{name: "tree", h: graph.RandomTree(100, graph.NewRand(9))},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cg := testCG(t, tt.h)
			colors, q := FromIDs(tt.h)
			mid, midQ, err := Run(cg, colors, q, "linial")
			if err != nil {
				t.Fatal(err)
			}
			final, err := ReduceToDeltaPlusOne(cg, mid, midQ, "classes")
			if err != nil {
				t.Fatal(err)
			}
			assertProper(t, tt.h, final, tt.h.MaxDegree()+1)
		})
	}
}

func TestRunChargesRounds(t *testing.T) {
	h := graph.Cycle(64)
	cg := testCG(t, h)
	before := cg.Cost().Rounds()
	colors, q := FromIDs(h)
	if _, _, err := Run(cg, colors, q, "linial"); err != nil {
		t.Fatal(err)
	}
	if cg.Cost().Rounds() <= before {
		t.Fatal("Linial charged no rounds")
	}
}

func TestFromIDsTinyGraph(t *testing.T) {
	h := graph.NewBuilder(1).Build()
	colors, q := FromIDs(h)
	if len(colors) != 1 || q < 2 {
		t.Fatalf("FromIDs = %v, %d", colors, q)
	}
}
