package network

import (
	"fmt"
	"runtime"

	"clustercolor/internal/graph"
)

// MultiEngine executes synchronous rounds over a partitioned communication
// graph: one pooled sub-engine per shard slice, each stepping only the
// machines its slice owns over the slice's local CSR, with an explicit
// boundary-exchange phase between the compute and deliver halves of every
// round that re-routes halo-addressed messages to the sub-engine owning the
// recipient. Wrapper machines translate ids at the boundary — inboxes arrive
// with local sender ids and are re-sorted by global sender before the inner
// machine runs, so a Machine implementation observes exactly the rounds,
// inboxes, and ordering the single-address-space Engine would deliver, and
// produces byte-identical outboxes.
//
// Accounting: every message is validated against the local CSR (the slice
// carries every edge incident to an owned vertex, so topology checks match
// the global graph) and accounted once, in its sender's sub-engine, under
// local link keys. Sub-engines run uncapped; MultiEngine merges the per-round
// link totals under global keys — cross-shard traffic from both endpoints
// lands on the same undirected key — and enforces the bandwidth cap on the
// merged map, so per-link budgets of a partitioned run sum to exactly the
// single-engine totals and violations trip identically. Cross-shard re-routed
// traffic is additionally surfaced via Exchanged.
type MultiEngine struct {
	sg        *graph.ShardedGraph
	subs      []*Engine
	bandwidth int
	round     int
	stats     LinkStats
	linkBits  map[[2]int32]int
	observer  RoundObserver
	// exRows/exBits count the messages (and their declared bits) that
	// crossed a shard boundary and were re-routed by the exchange phase.
	exRows, exBits int64
}

// haloStub stands in for a remote machine at a halo index. It never receives
// messages (halo-addressed traffic is re-routed before delivery) and never
// sends.
type haloStub struct{}

func (haloStub) Step(int, []Message) ([]Message, error) { return nil, nil }

// shardMachine adapts a globally-addressed Machine to a shard slice: inbox
// sender ids translate local→global and re-sort stably by global sender
// (halo local ids are not in global order, and the unsharded engine's inbox
// order is part of the Machine contract); outbox addresses translate
// global→local, validating that every recipient is owned or halo — any edge
// of an owned vertex is, so a failure here is a message the global topology
// check would also have rejected.
type shardMachine struct {
	inner  Machine
	sl     *graph.ShardSlice
	global int
	local  int
	in     []Message
	out    []Message
}

func (m *shardMachine) Step(round int, inbox []Message) ([]Message, error) {
	m.in = m.in[:0]
	for _, msg := range inbox {
		msg.From = m.sl.ToGlobal(msg.From)
		msg.To = m.global
		m.in = append(m.in, msg)
	}
	sortInbox(m.in)
	out, err := m.inner.Step(round, m.in)
	if err != nil {
		return nil, err
	}
	m.out = m.out[:0]
	for _, msg := range out {
		if msg.From != m.global {
			return nil, fmt.Errorf("network: machine %d forged sender %d", m.global, msg.From)
		}
		lt, ok := m.sl.LocalOf(msg.To)
		if !ok {
			return nil, fmt.Errorf("network: message %d->%d without link", msg.From, msg.To)
		}
		msg.From = m.local
		msg.To = lt
		m.out = append(m.out, msg)
	}
	return m.out, nil
}

// NewMultiEngine returns a partitioned engine over sg. machines are indexed
// by global vertex id and must have length sg.N(); bandwidthBits caps the
// bits a link may carry per round, enforced on the globally merged per-link
// totals (0 disables the check). The global graph is not consulted, so
// streamed (global-graph-less) sharded graphs work unchanged.
func NewMultiEngine(sg *graph.ShardedGraph, machines []Machine, bandwidthBits int) (*MultiEngine, error) {
	if len(machines) != sg.N() {
		return nil, fmt.Errorf("network: %d machines for %d vertices", len(machines), sg.N())
	}
	me := &MultiEngine{
		sg:        sg,
		bandwidth: bandwidthBits,
		linkBits:  make(map[[2]int32]int),
		subs:      make([]*Engine, 0, sg.NumShards()),
	}
	for _, sl := range sg.Slices {
		locals := make([]Machine, sl.CSR.N())
		for lv := 0; lv < sl.Own(); lv++ {
			locals[lv] = &shardMachine{
				inner:  machines[sl.Lo+lv],
				sl:     sl,
				global: sl.Lo + lv,
				local:  lv,
			}
		}
		for i := range sl.Halo {
			locals[sl.Own()+i] = haloStub{}
		}
		sub, err := NewEngineWithScheduler(sl.CSR, locals, 0, SchedulerPooled)
		if err != nil {
			return nil, err
		}
		sub.egressAt = sl.Own()
		me.subs = append(me.subs, sub)
	}
	return me, nil
}

// Round returns the number of completed rounds.
func (me *MultiEngine) Round() int { return me.round }

// Stats returns the merged bandwidth statistics for the run so far. On
// successful rounds they are identical to the single-engine stats of the
// same machine set.
func (me *MultiEngine) Stats() LinkStats { return me.stats }

// Exchanged returns the cross-shard traffic so far: messages re-routed by
// the boundary-exchange phase and their total declared bits. Both are a
// subset of Stats' totals, not an addition to them.
func (me *MultiEngine) Exchanged() (rows, bits int64) { return me.exRows, me.exBits }

// SetRoundObserver installs obs on the coordinator (nil removes it); the
// delta reported per round is the merged cross-shard view.
func (me *MultiEngine) SetRoundObserver(obs RoundObserver) { me.observer = obs }

// Close releases every sub-engine's worker pool. Idempotent.
func (me *MultiEngine) Close() {
	for _, sub := range me.subs {
		sub.Close()
	}
}

// Step executes one synchronous round across all shards: compute everywhere,
// merge and cap-check link totals globally, re-route boundary traffic, then
// deliver everywhere. A message emitted in round r is delivered in round r+1
// whether or not it crosses a shard boundary, matching Engine.Step latency
// exactly.
func (me *MultiEngine) Step() error {
	defer runtime.KeepAlive(me)
	before := me.stats
	befores := make([]LinkStats, len(me.subs))
	for i, sub := range me.subs {
		befores[i] = sub.stats
	}
	for s, sub := range me.subs {
		if sub.closed.Load() {
			return fmt.Errorf("network: Step on closed engine")
		}
		if err := sub.computePooled(); err != nil {
			return fmt.Errorf("network: shard %d: %w", s, err)
		}
	}
	// Merge per-round link totals under global keys. Each message was
	// accounted once, in its sender's shard; both directions of a cross-shard
	// link merge onto one undirected global key, exactly as in Engine.
	clear(me.linkBits)
	for s, sub := range me.subs {
		sl := me.sg.Slices[s]
		for key, bits := range sub.linkBits {
			gk := linkKey(sl.ToGlobal(int(key[0])), sl.ToGlobal(int(key[1])))
			me.linkBits[gk] += bits
		}
		me.stats.TotalBits += sub.stats.TotalBits - befores[s].TotalBits
		me.stats.Messages += sub.stats.Messages - befores[s].Messages
	}
	roundMax, err := checkLinkCap(me.linkBits, me.bandwidth, me.round)
	if err != nil {
		return err
	}
	if roundMax > me.stats.MaxLinkBits {
		me.stats.MaxLinkBits = roundMax
	}
	// Boundary exchange: drain every shard's egress lists (halo-addressed
	// messages held back from local delivery) and inject each message into
	// the owner shard's next-round inboxes, re-addressed in the owner's
	// local id space. The sender is in the owner's halo by construction —
	// the edge exists and its far endpoint is owned there.
	for s, sub := range me.subs {
		sl := me.sg.Slices[s]
		for _, w := range sub.workers {
			for _, msg := range w.egress {
				gFrom := sl.Lo + msg.From
				gTo := sl.ToGlobal(msg.To)
				o := me.sg.Owner(gTo)
				tsl := me.sg.Slices[o]
				lf, ok := tsl.LocalOf(gFrom)
				if !ok {
					return fmt.Errorf("network: shard %d has no halo entry for sender %d", o, gFrom)
				}
				msg.From = lf
				msg.To = gTo - tsl.Lo
				me.subs[o].next[msg.To] = append(me.subs[o].next[msg.To], msg)
				me.exRows++
				me.exBits += int64(msg.Bits)
			}
		}
	}
	for i, sub := range me.subs {
		sub.finishPooled(befores[i], 0)
	}
	me.round++
	me.stats.Rounds = me.round
	if me.observer != nil {
		me.observer(me.round-1, LinkStats{
			Rounds:      1,
			TotalBits:   me.stats.TotalBits - before.TotalBits,
			MaxLinkBits: roundMax,
			Messages:    me.stats.Messages - before.Messages,
		})
	}
	return nil
}

// Run executes rounds until done returns true or maxRounds is reached,
// mirroring Engine.Run.
func (me *MultiEngine) Run(maxRounds int, done func() bool) (int, error) {
	start := me.round
	for me.round-start < maxRounds {
		if done() {
			return me.round - start, nil
		}
		if err := me.Step(); err != nil {
			return me.round - start, err
		}
	}
	if done() {
		return me.round - start, nil
	}
	return me.round - start, fmt.Errorf("network: budget of %d rounds exhausted", maxRounds)
}
