package network

import (
	"strings"
	"sync"
	"testing"

	"clustercolor/internal/graph"
)

// floodMachine implements a simple BFS flood: the source emits a token; each
// machine forwards the token to all neighbors the round after first hearing
// it. Used to validate the engine against known BFS depths.
type floodMachine struct {
	id        int
	neighbors []int32
	mu        sync.Mutex
	heardAt   int // -1 until heard
	forwarded bool
}

func (m *floodMachine) Step(round int, inbox []Message) ([]Message, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.heardAt < 0 {
		for _, msg := range inbox {
			_ = msg
			m.heardAt = round
			break
		}
	}
	if m.heardAt >= 0 && !m.forwarded {
		m.forwarded = true
		out := make([]Message, 0, len(m.neighbors))
		for _, nb := range m.neighbors {
			out = append(out, Message{From: m.id, To: int(nb), Bits: 1, Payload: "token"})
		}
		return out, nil
	}
	return nil, nil
}

func newFlood(g *graph.Graph, src int) []Machine {
	ms := make([]Machine, g.N())
	for i := 0; i < g.N(); i++ {
		fm := &floodMachine{id: i, neighbors: g.Neighbors(i), heardAt: -1}
		if i == src {
			fm.heardAt = 0
		}
		ms[i] = fm
	}
	return ms
}

func TestEngineFloodMatchesBFS(t *testing.T) {
	rng := graph.NewRand(17)
	g := graph.MustGNP(40, 0.15, rng)
	labels, count := g.ConnectedComponents()
	src := 0
	eng, err := NewEngine(g, newFlood(g, src), 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.N()+2; i++ {
		if err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	depth, _ := g.BFSDepths(src, nil)
	for v := 0; v < g.N(); v++ {
		fm := eng.machines[v].(*floodMachine)
		if labels[v] != labels[src] {
			if fm.heardAt >= 0 {
				t.Fatalf("machine %d in other component heard token", v)
			}
			continue
		}
		// heardAt should be exactly the BFS depth: token crosses one hop
		// per round.
		if fm.heardAt != depth[v] {
			t.Fatalf("machine %d heardAt=%d, BFS depth=%d (components=%d)", v, fm.heardAt, depth[v], count)
		}
	}
	if eng.Stats().Messages == 0 || eng.Stats().TotalBits == 0 {
		t.Fatal("no traffic recorded")
	}
}

// runFlood executes a full flood to quiescence under the given scheduler
// and returns the per-machine hear times plus the engine stats.
func runFlood(t *testing.T, g *graph.Graph, src int, sched Scheduler) ([]int, LinkStats) {
	t.Helper()
	eng, err := NewEngineWithScheduler(g, newFlood(g, src), 0, sched)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for i := 0; i < g.N()+2; i++ {
		if err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	heard := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		heard[v] = eng.machines[v].(*floodMachine).heardAt
	}
	return heard, eng.Stats()
}

// TestEngineSchedulersAgreeFlood checks the acceptance contract: the pooled
// scheduler produces the same machine results and byte-identical LinkStats
// as the legacy spawn scheduler.
func TestEngineSchedulersAgreeFlood(t *testing.T) {
	g := graph.MustGNP(300, 0.03, graph.NewRand(23))
	heardPooled, statsPooled := runFlood(t, g, 0, SchedulerPooled)
	heardSpawn, statsSpawn := runFlood(t, g, 0, SchedulerSpawn)
	for v := range heardPooled {
		if heardPooled[v] != heardSpawn[v] {
			t.Fatalf("machine %d heardAt pooled=%d spawn=%d", v, heardPooled[v], heardSpawn[v])
		}
	}
	if statsPooled != statsSpawn {
		t.Fatalf("LinkStats diverge: pooled=%+v spawn=%+v", statsPooled, statsSpawn)
	}
}

// recorderMachine gossips for a few rounds and records the exact inbox
// sequence (sender order included) it observes each round.
type recorderMachine struct {
	id        int
	neighbors []int32
	history   [][]int
}

func (m *recorderMachine) Step(round int, inbox []Message) ([]Message, error) {
	froms := make([]int, 0, len(inbox))
	for _, msg := range inbox {
		froms = append(froms, msg.From)
	}
	m.history = append(m.history, froms)
	if round >= 3 {
		return nil, nil
	}
	out := make([]Message, 0, len(m.neighbors))
	for _, nb := range m.neighbors {
		out = append(out, Message{From: m.id, To: int(nb), Bits: 2, Payload: round})
	}
	return out, nil
}

func runRecorders(t *testing.T, g *graph.Graph, sched Scheduler) [][][]int {
	t.Helper()
	ms := make([]Machine, g.N())
	for i := 0; i < g.N(); i++ {
		ms[i] = &recorderMachine{id: i, neighbors: g.Neighbors(i)}
	}
	eng, err := NewEngineWithScheduler(g, ms, 0, sched)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for r := 0; r < 5; r++ {
		if err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	histories := make([][][]int, g.N())
	for i, m := range ms {
		histories[i] = m.(*recorderMachine).history
	}
	return histories
}

// TestEngineInboxOrderDeterministic checks the sorted-inbox contract: the
// exact inbox sequences every machine observes are identical under both
// schedulers (and therefore across reruns).
func TestEngineInboxOrderDeterministic(t *testing.T) {
	g := graph.MustGNP(120, 0.08, graph.NewRand(31))
	pooled := runRecorders(t, g, SchedulerPooled)
	spawn := runRecorders(t, g, SchedulerSpawn)
	for v := range pooled {
		if len(pooled[v]) != len(spawn[v]) {
			t.Fatalf("machine %d history length pooled=%d spawn=%d", v, len(pooled[v]), len(spawn[v]))
		}
		for r := range pooled[v] {
			if len(pooled[v][r]) != len(spawn[v][r]) {
				t.Fatalf("machine %d round %d inbox size pooled=%d spawn=%d",
					v, r, len(pooled[v][r]), len(spawn[v][r]))
			}
			for k := range pooled[v][r] {
				if pooled[v][r][k] != spawn[v][r][k] {
					t.Fatalf("machine %d round %d position %d: pooled from %d, spawn from %d",
						v, r, k, pooled[v][r][k], spawn[v][r][k])
				}
			}
		}
	}
}

func TestEngineCloseIdempotent(t *testing.T) {
	g := graph.Path(4)
	eng, err := NewEngine(g, []Machine{idleMachine{}, idleMachine{}, idleMachine{}, idleMachine{}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Step(); err != nil {
		t.Fatal(err)
	}
	eng.Close()
	eng.Close()
	// Close before first Step must also be safe.
	eng2, err := NewEngine(g, []Machine{idleMachine{}, idleMachine{}, idleMachine{}, idleMachine{}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng2.Close()
}

// TestEngineStepAfterCloseErrors pins the lifecycle contract: Step on a
// closed engine must fail fast instead of dispatching to released workers.
func TestEngineStepAfterCloseErrors(t *testing.T) {
	g := graph.Path(2)
	for _, sched := range []Scheduler{SchedulerPooled, SchedulerSpawn} {
		eng, err := NewEngineWithScheduler(g, []Machine{idleMachine{}, idleMachine{}}, 0, sched)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Step(); err != nil {
			t.Fatal(err)
		}
		eng.Close()
		if err := eng.Step(); err == nil {
			t.Fatalf("scheduler %d: Step after Close succeeded", sched)
		}
		// Close before any Step, then Step: same contract.
		eng2, err := NewEngineWithScheduler(g, []Machine{idleMachine{}, idleMachine{}}, 0, sched)
		if err != nil {
			t.Fatal(err)
		}
		eng2.Close()
		if err := eng2.Step(); err == nil {
			t.Fatalf("scheduler %d: Step on never-started closed engine succeeded", sched)
		}
	}
}

func TestEngineEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0).Build()
	eng, err := NewEngine(g, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for i := 0; i < 3; i++ {
		if err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if eng.Round() != 3 {
		t.Fatalf("Round = %d, want 3", eng.Round())
	}
}

func TestEngineRejectsUnknownScheduler(t *testing.T) {
	g := graph.Path(2)
	if _, err := NewEngineWithScheduler(g, []Machine{idleMachine{}, idleMachine{}}, 0, Scheduler(99)); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

// TestEnginePooledErrors re-runs the validation tests under the pooled
// scheduler explicitly (the default may change).
func TestEnginePooledErrors(t *testing.T) {
	g := graph.Path(3)
	eng, err := NewEngineWithScheduler(g, []Machine{badSender{to: 2}, idleMachine{}, idleMachine{}}, 0, SchedulerPooled)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.Step(); err == nil {
		t.Fatal("message over non-existent link accepted")
	}
	eng2, err := NewEngineWithScheduler(graph.Path(2), []Machine{chatty{bits: 100}, idleMachine{}}, 64, SchedulerPooled)
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	if err := eng2.Step(); err == nil {
		t.Fatal("over-bandwidth message accepted")
	}
}

type badSender struct{ to int }

func (b badSender) Step(round int, inbox []Message) ([]Message, error) {
	return []Message{{From: 0, To: b.to, Bits: 1}}, nil
}

type idleMachine struct{}

func (idleMachine) Step(int, []Message) ([]Message, error) { return nil, nil }

func TestEngineRejectsNonLinkMessage(t *testing.T) {
	g := graph.Path(3) // edges {0,1},{1,2}
	ms := []Machine{badSender{to: 2}, idleMachine{}, idleMachine{}}
	eng, err := NewEngine(g, ms, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Step(); err == nil {
		t.Fatal("message over non-existent link accepted")
	}
}

type forger struct{}

func (forger) Step(int, []Message) ([]Message, error) {
	return []Message{{From: 5, To: 1, Bits: 1}}, nil
}

func TestEngineRejectsForgedSender(t *testing.T) {
	g := graph.Path(2)
	eng, err := NewEngine(g, []Machine{forger{}, idleMachine{}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Step(); err == nil {
		t.Fatal("forged sender accepted")
	}
}

type chatty struct{ bits int }

func (c chatty) Step(round int, inbox []Message) ([]Message, error) {
	if round > 0 {
		return nil, nil
	}
	return []Message{{From: 0, To: 1, Bits: c.bits}}, nil
}

func TestEngineEnforcesBandwidth(t *testing.T) {
	g := graph.Path(2)
	eng, err := NewEngine(g, []Machine{chatty{bits: 100}, idleMachine{}}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Step(); err == nil {
		t.Fatal("over-bandwidth message accepted")
	}
	// Within budget is fine.
	eng2, err := NewEngine(g, []Machine{chatty{bits: 64}, idleMachine{}}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.Step(); err != nil {
		t.Fatal(err)
	}
	if eng2.Stats().MaxLinkBits != 64 {
		t.Fatalf("MaxLinkBits = %d, want 64", eng2.Stats().MaxLinkBits)
	}
}

func TestEngineMachineCountMismatch(t *testing.T) {
	g := graph.Path(3)
	if _, err := NewEngine(g, []Machine{idleMachine{}}, 0); err == nil {
		t.Fatal("machine count mismatch accepted")
	}
}

func TestEngineRunBudget(t *testing.T) {
	g := graph.Path(2)
	eng, err := NewEngine(g, []Machine{idleMachine{}, idleMachine{}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ran, err := eng.Run(5, func() bool { return false })
	if err == nil {
		t.Fatal("exhausted budget should error")
	}
	if ran != 5 {
		t.Fatalf("ran %d rounds, want 5", ran)
	}
	ran, err = eng.Run(5, func() bool { return true })
	if err != nil || ran != 0 {
		t.Fatalf("Run with immediate done = %d, %v", ran, err)
	}
}

func TestCostModelChargeAndPipelining(t *testing.T) {
	tests := []struct {
		name       string
		payload    int
		hops       int
		wantRounds int
	}{
		{name: "small payload one hop", payload: 10, hops: 1, wantRounds: 1},
		{name: "exact bandwidth", payload: 64, hops: 1, wantRounds: 1},
		{name: "pipelined", payload: 65, hops: 1, wantRounds: 2},
		{name: "multi hop", payload: 10, hops: 3, wantRounds: 3},
		{name: "pipelined multi hop", payload: 130, hops: 2, wantRounds: 6},
		{name: "zero payload", payload: 0, hops: 1, wantRounds: 1},
		{name: "zero hops coerced", payload: 1, hops: 0, wantRounds: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c, err := NewCostModel(64)
			if err != nil {
				t.Fatal(err)
			}
			if got := c.Charge("p", tt.payload, tt.hops); got != tt.wantRounds {
				t.Fatalf("Charge = %d rounds, want %d", got, tt.wantRounds)
			}
			if c.Rounds() != int64(tt.wantRounds) {
				t.Fatalf("Rounds = %d, want %d", c.Rounds(), tt.wantRounds)
			}
		})
	}
}

func TestCostModelParallelTakesMax(t *testing.T) {
	c, err := NewCostModel(64)
	if err != nil {
		t.Fatal(err)
	}
	rounds := c.Parallel("bfs", [][2]int{{10, 2}, {64, 5}, {128, 3}})
	if rounds != 6 { // 128 bits over 3 hops = 2 slots * 3 hops
		t.Fatalf("Parallel = %d rounds, want 6", rounds)
	}
	if c.TotalBits() != 10+64+128 {
		t.Fatalf("TotalBits = %d", c.TotalBits())
	}
	if c.MaxPayload() != 128 {
		t.Fatalf("MaxPayload = %d, want 128", c.MaxPayload())
	}
	if got := c.PhaseRounds()["bfs"]; got != 6 {
		t.Fatalf("phase rounds = %d, want 6", got)
	}
}

func TestCostModelParallelEmpty(t *testing.T) {
	c, err := NewCostModel(64)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Parallel("noop", nil); got != 1 {
		t.Fatalf("empty Parallel = %d rounds, want 1", got)
	}
}

func TestCostModelRejectsBadBandwidth(t *testing.T) {
	if _, err := NewCostModel(0); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	if _, err := NewCostModel(-5); err == nil {
		t.Fatal("negative bandwidth accepted")
	}
}

func TestCostModelSummary(t *testing.T) {
	c, err := NewCostModel(32)
	if err != nil {
		t.Fatal(err)
	}
	c.Charge("alpha", 10, 1)
	c.Charge("beta", 40, 2)
	s := c.Summary()
	if !strings.Contains(s, "alpha") || !strings.Contains(s, "beta") {
		t.Fatalf("summary missing phases: %q", s)
	}
}

func TestCostModelConcurrentCharges(t *testing.T) {
	c, err := NewCostModel(64)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Charge("concurrent", 64, 1)
		}()
	}
	wg.Wait()
	if c.Rounds() != 50 {
		t.Fatalf("Rounds = %d, want 50", c.Rounds())
	}
}

func TestCostModelAbsorbParallel(t *testing.T) {
	main, err := NewCostModel(64)
	if err != nil {
		t.Fatal(err)
	}
	var subs []*CostModel
	for i, rounds := range []int{3, 7, 5} {
		sub, err := NewCostModel(64)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < rounds; r++ {
			sub.Charge("work", 10+i, 1)
		}
		subs = append(subs, sub)
	}
	subs = append(subs, nil) // nil sub-models are tolerated
	main.AbsorbParallel("stage", subs)
	if main.Rounds() != 7 {
		t.Fatalf("absorbed rounds = %d, want max 7", main.Rounds())
	}
	if main.TotalBits() != 3*10+7*11+5*12 {
		t.Fatalf("absorbed bits = %d", main.TotalBits())
	}
	if got := main.PhaseRounds()["stage"]; got != 7 {
		t.Fatalf("phase rounds = %d, want 7", got)
	}
}

func TestCostModelMultiplier(t *testing.T) {
	c, err := NewCostModel(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetMultiplier(0); err == nil {
		t.Fatal("multiplier 0 accepted")
	}
	if err := c.SetMultiplier(3); err != nil {
		t.Fatal(err)
	}
	if got := c.Charge("x", 10, 2); got != 6 {
		t.Fatalf("multiplied charge = %d rounds, want 6", got)
	}
	if got := c.Parallel("y", [][2]int{{10, 2}}); got != 6 {
		t.Fatalf("multiplied parallel = %d rounds, want 6", got)
	}
	if c.Rounds() != 12 {
		t.Fatalf("total = %d, want 12", c.Rounds())
	}
}

// TestRoundObserver pins the per-round observation hook on both schedulers:
// the observer sees consecutive round indices, its deltas sum to the final
// LinkStats, and each round's MaxLinkBits never exceeds the global maximum.
func TestRoundObserver(t *testing.T) {
	rng := graph.NewRand(7)
	g := graph.MustGNP(40, 0.2, rng)
	for _, sched := range []Scheduler{SchedulerPooled, SchedulerSpawn} {
		eng, err := NewEngineWithScheduler(g, newFlood(g, 0), 0, sched)
		if err != nil {
			t.Fatal(err)
		}
		var rounds []int
		var sum LinkStats
		eng.SetRoundObserver(func(round int, delta LinkStats) {
			rounds = append(rounds, round)
			sum.Rounds += delta.Rounds
			sum.TotalBits += delta.TotalBits
			sum.Messages += delta.Messages
			if delta.MaxLinkBits > sum.MaxLinkBits {
				sum.MaxLinkBits = delta.MaxLinkBits
			}
		})
		for i := 0; i < 6; i++ {
			if err := eng.Step(); err != nil {
				t.Fatal(err)
			}
		}
		stats := eng.Stats()
		eng.Close()
		for i, r := range rounds {
			if r != i {
				t.Fatalf("scheduler %v: observer saw round %d at position %d", sched, r, i)
			}
		}
		if sum != stats {
			t.Fatalf("scheduler %v: observer deltas sum to %+v, stats %+v", sched, sum, stats)
		}
	}
}
