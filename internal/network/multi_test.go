package network

import (
	"strings"
	"testing"

	"clustercolor/internal/graph"
)

func shardGraph(t *testing.T, g *graph.Graph, shards int) *graph.ShardedGraph {
	t.Helper()
	sg, err := graph.NewShardedGraph(g, shards)
	if err != nil {
		t.Fatal(err)
	}
	return sg
}

// runFloodMulti executes the BFS flood on a MultiEngine and returns the
// per-machine hear times, merged stats, and exchanged row count.
func runFloodMulti(t *testing.T, g *graph.Graph, src, shards int) ([]int, LinkStats, int64) {
	t.Helper()
	machines := newFlood(g, src)
	me, err := NewMultiEngine(shardGraph(t, g, shards), machines, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer me.Close()
	for i := 0; i < g.N()+2; i++ {
		if err := me.Step(); err != nil {
			t.Fatal(err)
		}
	}
	heard := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		heard[v] = machines[v].(*floodMachine).heardAt
	}
	rows, _ := me.Exchanged()
	return heard, me.Stats(), rows
}

// TestMultiEngineFloodMatchesEngine is the coordinator's acceptance
// contract: machine results and LinkStats are byte-identical to the
// single-address-space engine at every shard count, and cross-shard traffic
// appears exactly when the partition cuts edges.
func TestMultiEngineFloodMatchesEngine(t *testing.T) {
	g := graph.MustGNP(160, 0.05, graph.NewRand(23))
	wantHeard, wantStats := runFlood(t, g, 0, SchedulerPooled)
	for _, shards := range []int{1, 2, 4, 7} {
		heard, stats, exRows := runFloodMulti(t, g, 0, shards)
		for v := range wantHeard {
			if heard[v] != wantHeard[v] {
				t.Fatalf("shards=%d machine %d heardAt=%d, want %d", shards, v, heard[v], wantHeard[v])
			}
		}
		if stats != wantStats {
			t.Fatalf("shards=%d LinkStats diverge: multi=%+v engine=%+v", shards, stats, wantStats)
		}
		if shards == 1 && exRows != 0 {
			t.Fatalf("single shard exchanged %d rows", exRows)
		}
		if shards > 1 && exRows == 0 {
			t.Fatalf("shards=%d exchanged no rows on a connected graph", shards)
		}
	}
}

// TestMultiEngineInboxOrder pins the id-translation contract: the exact
// inbox sequences (global sender order included) every machine observes are
// identical to the unsharded engine's, even though halo senders occupy
// out-of-order local ids inside each shard.
func TestMultiEngineInboxOrder(t *testing.T) {
	g := graph.MustGNP(120, 0.08, graph.NewRand(31))
	want := runRecorders(t, g, SchedulerPooled)
	ms := make([]Machine, g.N())
	for i := 0; i < g.N(); i++ {
		ms[i] = &recorderMachine{id: i, neighbors: g.Neighbors(i)}
	}
	me, err := NewMultiEngine(shardGraph(t, g, 3), ms, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer me.Close()
	for r := 0; r < 5; r++ {
		if err := me.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for v, m := range ms {
		got := m.(*recorderMachine).history
		if len(got) != len(want[v]) {
			t.Fatalf("machine %d history length %d, want %d", v, len(got), len(want[v]))
		}
		for r := range got {
			if len(got[r]) != len(want[v][r]) {
				t.Fatalf("machine %d round %d inbox size %d, want %d", v, r, len(got[r]), len(want[v][r]))
			}
			for k := range got[r] {
				if got[r][k] != want[v][r][k] {
					t.Fatalf("machine %d round %d position %d: from %d, want %d", v, r, k, got[r][k], want[v][r][k])
				}
			}
		}
	}
}

// TestMultiEngineEnforcesBandwidth checks the cap applies to the globally
// merged per-link totals: the same flood that trips the single engine trips
// the coordinator, including on links that cross a shard boundary.
func TestMultiEngineEnforcesBandwidth(t *testing.T) {
	g := graph.Clique(6)
	me, err := NewMultiEngine(shardGraph(t, g, 3), newFlood(g, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Each flood message is 1 bit and each link carries at most one message
	// per round, so cap 1 passes every round...
	defer me.Close()
	for i := 0; i < g.N()+2; i++ {
		if err := me.Step(); err != nil {
			t.Fatal(err)
		}
	}
	// ...while a wide message on a cross-shard link must trip a cap of 1.
	wide := make([]Machine, g.N())
	for i := range wide {
		wide[i] = idleMachine{}
	}
	wide[0] = stepFunc(func(round int, inbox []Message) ([]Message, error) {
		if round > 0 {
			return nil, nil
		}
		return []Message{{From: 0, To: 5, Bits: 9, Payload: "wide"}}, nil
	})
	me2, err := NewMultiEngine(shardGraph(t, g, 3), wide, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer me2.Close()
	err = me2.Step()
	if err == nil || !strings.Contains(err.Error(), "bandwidth") {
		t.Fatalf("want bandwidth violation, got %v", err)
	}
}

type stepFunc func(round int, inbox []Message) ([]Message, error)

func (f stepFunc) Step(round int, inbox []Message) ([]Message, error) { return f(round, inbox) }

// TestMultiEngineRejectsNonLinkMessage checks validation parity: a message
// to a non-neighbor fails whether the recipient is inside the shard, in its
// halo, or outside both.
func TestMultiEngineRejectsNonLinkMessage(t *testing.T) {
	g := graph.Path(6)
	for _, to := range []int{2, 5} { // 2 = same-shard non-neighbor path case varies; 5 = far vertex
		bad := make([]Machine, g.N())
		for i := range bad {
			bad[i] = idleMachine{}
		}
		target := to
		bad[0] = stepFunc(func(round int, inbox []Message) ([]Message, error) {
			if round > 0 {
				return nil, nil
			}
			return []Message{{From: 0, To: target, Bits: 1}}, nil
		})
		me, err := NewMultiEngine(shardGraph(t, g, 2), bad, 0)
		if err != nil {
			t.Fatal(err)
		}
		err = me.Step()
		me.Close()
		if err == nil || !strings.Contains(err.Error(), "without link") {
			t.Fatalf("to=%d: want link violation, got %v", target, err)
		}
	}
}
