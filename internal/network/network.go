// Package network provides the synchronous message-passing substrate of the
// paper's model (Section 3.2): an n-machine communication network G whose
// links carry O(log n)-bit messages per round.
//
// Two components live here:
//
//   - Engine: a synchronous round executor. Machines implement the Machine
//     interface; each round every machine receives the messages sent to it
//     in the previous round and emits new ones. The engine enforces the
//     per-link bandwidth cap. The default scheduler partitions machines
//     across a persistent pool of ~GOMAXPROCS workers that are signaled
//     each round; the legacy goroutine-per-machine-per-round scheduler is
//     kept selectable as a reference for equivalence tests and benchmarks.
//
//   - CostModel: the round/bandwidth accountant used by the cluster-level
//     algorithm code. Cluster primitives (broadcast, aggregate, neighbor
//     exchange) declare their payload size and hop count; the cost model
//     converts that into rounds on G — pipelining payloads larger than the
//     link bandwidth over multiple rounds — and tracks per-phase totals so
//     experiments can report where rounds are spent.
package network

import (
	"cmp"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"clustercolor/internal/graph"
)

// Message is a single link message. Bits is the declared size used for
// bandwidth accounting; Payload is the simulated content.
type Message struct {
	From    int
	To      int
	Bits    int
	Payload any
}

// Machine is the per-node behaviour driven by the Engine. Step is called
// once per round with the messages delivered this round and returns the
// messages to send (delivered next round). Step implementations run
// concurrently across machines and must not share mutable state. The inbox
// slice is owned by the engine and reused across rounds: implementations
// must not retain it (or its backing array) after Step returns.
type Machine interface {
	Step(round int, inbox []Message) (outbox []Message, err error)
}

// Scheduler selects how the Engine runs machine steps within a round.
type Scheduler int

const (
	// SchedulerPooled is the default: machines are partitioned into
	// contiguous shards across a persistent worker pool (one worker per
	// available CPU, at most one per machine). Workers are signaled twice
	// per round — once to step their machines and accumulate per-link
	// bandwidth locally, once to deliver and sort next-round inboxes for
	// their own shard — and all buffers are reused across rounds.
	SchedulerPooled Scheduler = iota
	// SchedulerSpawn is the original engine: one fresh goroutine per
	// machine per round, with outboxes, error slices, and the link-bit map
	// reallocated every round. Kept as the reference implementation the
	// pooled scheduler must match message-for-message and stat-for-stat.
	SchedulerSpawn
)

// Engine executes synchronous rounds over a communication graph. The
// zero-value Engine is not usable; construct with NewEngine. An Engine is
// not safe for concurrent Step calls.
//
// The pooled scheduler keeps worker goroutines parked between rounds. They
// are released by Close; engines that are dropped without Close are cleaned
// up by a finalizer, so Close is an optimization for tight loops that build
// many engines, not a correctness requirement.
type Engine struct {
	*engineState
}

// engineState carries all engine data. It is split from Engine so that
// worker goroutines reference only the inner state: the finalizer on the
// outer handle can then fire once the caller drops the engine, even while
// workers are parked on their command channels.
type engineState struct {
	g         *graph.Graph
	machines  []Machine
	bandwidth int // bits per link per round, 0 = unlimited
	sched     Scheduler
	round     int
	stats     LinkStats
	observer  RoundObserver
	// egressAt marks the first egress machine index: messages addressed to
	// machines in [egressAt, n) are validated and accounted like any other,
	// but held in per-worker egress lists instead of being delivered locally.
	// The multi-engine coordinator sets it to a shard's owned-vertex count so
	// halo-addressed messages can be re-routed to their owner shard between
	// the compute and deliver phases. Defaults to n (no egress).
	egressAt int

	// Spawn-scheduler state: inbox per machine for the next round.
	pending [][]Message

	// Pooled-scheduler state, allocated once on first Step and reused
	// every round.
	inboxes  [][]Message // current-round inbox per machine
	next     [][]Message // next-round inbox per machine, filled on delivery
	outboxes [][]Message
	shardOf  []int32 // machine -> worker shard index
	stepErrs []error // per-machine Step error for the current round
	valErrs  []error // per-machine message-validation error
	linkBits map[[2]int32]int
	workers  []*engineWorker
	wg       sync.WaitGroup
	stop     chan struct{}
	started  bool
	closed   atomic.Bool
	closing  sync.Once
}

// engineWorker owns the contiguous machine shard [lo, hi) and accumulates
// bandwidth stats locally so the hot path is contention-free; the engine
// merges the per-worker accumulators deterministically between phases.
type engineWorker struct {
	idx       int
	lo, hi    int
	cmd       chan int
	linkBits  map[[2]int32]int
	totalBits int64
	messages  int64
	// routes[t] collects this shard's outgoing messages destined for
	// shard t, in emission order, so the delivery phase only touches
	// messages addressed to it instead of rescanning every outbox.
	routes [][]Message
	// egress collects messages addressed at or beyond engineState.egressAt,
	// in emission order, for the multi-engine boundary exchange.
	egress []Message
}

// Worker commands.
const (
	opCompute = iota + 1
	opDeliver
)

// LinkStats aggregates bandwidth usage observed by an Engine run. On
// successful rounds the totals are identical under every scheduler; after
// a failed Step (machine error, invalid message, bandwidth violation) the
// partially-accumulated values are unspecified and may differ between
// schedulers — a faulted engine is only good for inspection, not resumption.
type LinkStats struct {
	// Rounds is the number of executed rounds.
	Rounds int
	// TotalBits is the sum of all message sizes.
	TotalBits int64
	// MaxLinkBits is the largest number of bits carried by a single link
	// in a single round.
	MaxLinkBits int
	// Messages is the total number of messages delivered.
	Messages int64
}

// NewEngine returns an engine over g using the default pooled scheduler.
// machines must have length g.N(). bandwidthBits caps the bits a link may
// carry per round (0 disables the check).
func NewEngine(g *graph.Graph, machines []Machine, bandwidthBits int) (*Engine, error) {
	return NewEngineWithScheduler(g, machines, bandwidthBits, SchedulerPooled)
}

// NewEngineWithScheduler is NewEngine with an explicit scheduler choice.
func NewEngineWithScheduler(g *graph.Graph, machines []Machine, bandwidthBits int, sched Scheduler) (*Engine, error) {
	if len(machines) != g.N() {
		return nil, fmt.Errorf("network: %d machines for %d vertices", len(machines), g.N())
	}
	if sched != SchedulerPooled && sched != SchedulerSpawn {
		return nil, fmt.Errorf("network: unknown scheduler %d", sched)
	}
	st := &engineState{
		g:         g,
		machines:  machines,
		bandwidth: bandwidthBits,
		sched:     sched,
		pending:   make([][]Message, g.N()),
		stop:      make(chan struct{}),
		egressAt:  len(machines),
	}
	eng := &Engine{st}
	runtime.SetFinalizer(eng, (*Engine).Close)
	return eng, nil
}

// RoundObserver receives, after each successfully executed round, the round
// index and that round's LinkStats delta: Rounds is 1, TotalBits/Messages
// are the round's traffic, and MaxLinkBits is the largest per-link load of
// that round (not the running maximum). Conformance harnesses use it to
// observe per-phase round consumption without touching the hot path when no
// observer is set.
type RoundObserver func(round int, delta LinkStats)

// SetRoundObserver installs obs (nil removes it). It must not be called
// concurrently with Step; the observer runs on the Step goroutine.
func (e *Engine) SetRoundObserver(obs RoundObserver) { e.observer = obs }

// Round returns the number of completed rounds.
func (e *Engine) Round() int { return e.round }

// Stats returns bandwidth statistics for the run so far.
func (e *Engine) Stats() LinkStats { return e.stats }

// Close parks no further work on the pool and releases its goroutines. It
// is idempotent and safe on engines whose pool never started; Step on a
// closed engine returns an error. Close must not be called concurrently
// with Step.
func (e *Engine) Close() {
	e.closing.Do(func() {
		e.closed.Store(true)
		close(e.stop)
	})
}

// Step executes one synchronous round: every machine consumes its inbox and
// produces an outbox; messages are validated against the topology and the
// bandwidth cap, then queued for the next round. Inboxes are delivered in
// deterministic sender order regardless of scheduling.
func (e *Engine) Step() error {
	// The handle must survive the whole round: if the caller drops it
	// mid-call, the finalizer would Close the pool under a live dispatch.
	defer runtime.KeepAlive(e)
	if e.closed.Load() {
		return fmt.Errorf("network: Step on closed engine")
	}
	if e.sched == SchedulerSpawn {
		return e.stepSpawn()
	}
	return e.stepPooled()
}

// Run executes rounds until done returns true or maxRounds is reached. It
// returns the number of rounds executed and an error if the engine faulted
// or the round budget was exhausted.
func (e *Engine) Run(maxRounds int, done func() bool) (int, error) {
	start := e.round
	for e.round-start < maxRounds {
		if done() {
			return e.round - start, nil
		}
		if err := e.Step(); err != nil {
			return e.round - start, err
		}
	}
	if done() {
		return e.round - start, nil
	}
	return e.round - start, fmt.Errorf("network: budget of %d rounds exhausted", maxRounds)
}

// --- pooled scheduler ----------------------------------------------------

// startPool lazily allocates the reusable buffers and parks one worker per
// CPU (capped at one per machine). Workers loop on their command channel
// until the engine is closed.
func (s *engineState) startPool() {
	if s.started {
		return
	}
	s.started = true
	n := len(s.machines)
	s.inboxes = make([][]Message, n)
	s.next = make([][]Message, n)
	s.outboxes = make([][]Message, n)
	s.stepErrs = make([]error, n)
	s.valErrs = make([]error, n)
	s.linkBits = make(map[[2]int32]int)
	nw := runtime.GOMAXPROCS(0)
	if nw > n {
		nw = n
	}
	s.shardOf = make([]int32, n)
	s.workers = make([]*engineWorker, 0, nw)
	for i := 0; i < nw; i++ {
		w := &engineWorker{
			idx:      i,
			lo:       i * n / nw,
			hi:       (i + 1) * n / nw,
			cmd:      make(chan int),
			linkBits: make(map[[2]int32]int),
			routes:   make([][]Message, nw),
		}
		for m := w.lo; m < w.hi; m++ {
			s.shardOf[m] = int32(i)
		}
		s.workers = append(s.workers, w)
		go s.workerLoop(w)
	}
}

func (s *engineState) workerLoop(w *engineWorker) {
	for {
		select {
		case <-s.stop:
			return
		case op := <-w.cmd:
			switch op {
			case opCompute:
				s.computeShard(w)
			case opDeliver:
				s.deliverShard(w)
			}
			s.wg.Done()
		}
	}
}

// dispatch signals every worker with op and waits for all of them; the
// WaitGroup forms a full barrier between the compute and deliver phases.
func (s *engineState) dispatch(op int) {
	if len(s.workers) == 0 {
		return
	}
	s.wg.Add(len(s.workers))
	for _, w := range s.workers {
		w.cmd <- op
	}
	s.wg.Wait()
}

// computeShard steps the worker's machines, validates their outboxes, and
// accumulates link bits into the worker-local map. Only indices in [lo, hi)
// are written, so shards never contend.
func (s *engineState) computeShard(w *engineWorker) {
	clear(w.linkBits)
	w.totalBits, w.messages = 0, 0
	w.egress = w.egress[:0]
	for t := range w.routes {
		w.routes[t] = w.routes[t][:0]
	}
	for i := w.lo; i < w.hi; i++ {
		s.stepErrs[i], s.valErrs[i] = nil, nil
		out, err := s.machines[i].Step(s.round, s.inboxes[i])
		s.outboxes[i] = out
		if err != nil {
			s.stepErrs[i] = err
			continue
		}
		for _, msg := range out {
			if msg.From != i {
				s.valErrs[i] = fmt.Errorf("network: machine %d forged sender %d", i, msg.From)
				break
			}
			if !s.g.HasEdge(msg.From, msg.To) {
				s.valErrs[i] = fmt.Errorf("network: message %d->%d without link", msg.From, msg.To)
				break
			}
			w.linkBits[linkKey(msg.From, msg.To)] += msg.Bits
			w.totalBits += int64(msg.Bits)
			w.messages++
			if msg.To >= s.egressAt {
				w.egress = append(w.egress, msg)
				continue
			}
			t := s.shardOf[msg.To]
			w.routes[t] = append(w.routes[t], msg)
		}
	}
}

// deliverShard appends the messages routed to the worker's own shard and
// sorts its inboxes by sender. Producer workers are drained in index order
// and shards are contiguous ascending machine ranges, so the pre-sort
// append order equals a sequential machine-order scan of all outboxes —
// identical to the spawn scheduler's delivery — while each worker touches
// only its own shard's messages.
func (s *engineState) deliverShard(w *engineWorker) {
	for _, src := range s.workers {
		for _, msg := range src.routes[w.idx] {
			s.next[msg.To] = append(s.next[msg.To], msg)
		}
	}
	for to := w.lo; to < w.hi; to++ {
		sortInbox(s.next[to])
	}
}

// sortInbox orders an inbox by sender, stably: messages from the same
// sender keep the order they were emitted in. Both schedulers use it, so
// the delivered sequences are identical and fully specified.
func sortInbox(inbox []Message) {
	slices.SortStableFunc(inbox, func(a, b Message) int { return cmp.Compare(a.From, b.From) })
}

func (s *engineState) stepPooled() error {
	before := s.stats
	if err := s.computePooled(); err != nil {
		return err
	}
	roundMax, err := checkLinkCap(s.linkBits, s.bandwidth, s.round)
	if err != nil {
		return err
	}
	if roundMax > s.stats.MaxLinkBits {
		s.stats.MaxLinkBits = roundMax
	}
	s.finishPooled(before, roundMax)
	return nil
}

// computePooled is the compute half of a pooled round: it clears the
// next-round inboxes, steps every machine, surfaces machine and validation
// errors, and merges the per-worker accumulators into the round link-bit map
// and the running totals. Sums are order-independent, and per-link totals
// are summed before taking the max, so LinkStats are identical to a single
// global pass over all messages. The multi-engine coordinator calls it per
// sub-engine, re-routes egress messages, then calls finishPooled.
func (s *engineState) computePooled() error {
	s.startPool()
	n := len(s.machines)
	for i := range s.next {
		s.next[i] = s.next[i][:0]
	}
	s.dispatch(opCompute)
	for i := 0; i < n; i++ {
		if err := s.stepErrs[i]; err != nil {
			return fmt.Errorf("network: machine %d round %d: %w", i, s.round, err)
		}
	}
	for i := 0; i < n; i++ {
		if err := s.valErrs[i]; err != nil {
			return err
		}
	}
	clear(s.linkBits)
	for _, w := range s.workers {
		s.stats.TotalBits += w.totalBits
		s.stats.Messages += w.messages
		for key, bits := range w.linkBits {
			s.linkBits[key] += bits
		}
	}
	return nil
}

// checkLinkCap scans a round's per-link totals, returning the round maximum
// and an error for the lowest-numbered link over the cap (deterministic
// regardless of map iteration order). bandwidth 0 disables the cap.
func checkLinkCap(linkBits map[[2]int32]int, bandwidth, round int) (int, error) {
	overKey, overBits := [2]int32{}, -1
	roundMax := 0
	for key, bits := range linkBits {
		if bits > roundMax {
			roundMax = bits
		}
		if bandwidth > 0 && bits > bandwidth {
			if overBits < 0 || key[0] < overKey[0] || (key[0] == overKey[0] && key[1] < overKey[1]) {
				overKey, overBits = key, bits
			}
		}
	}
	if overBits >= 0 {
		return roundMax, fmt.Errorf("network: link {%d,%d} carried %d bits > bandwidth %d in round %d",
			overKey[0], overKey[1], overBits, bandwidth, round)
	}
	return roundMax, nil
}

// finishPooled is the deliver half of a pooled round: routed messages are
// appended and sorted into next-round inboxes, the buffers swap, and the
// round commits.
func (s *engineState) finishPooled(before LinkStats, roundMax int) {
	s.dispatch(opDeliver)
	// The just-consumed inboxes become the scratch buffers for the next
	// round's delivery; machines must not have retained them.
	s.inboxes, s.next = s.next, s.inboxes
	s.round++
	s.stats.Rounds = s.round
	if s.observer != nil {
		s.observer(s.round-1, LinkStats{
			Rounds:      1,
			TotalBits:   s.stats.TotalBits - before.TotalBits,
			MaxLinkBits: roundMax,
			Messages:    s.stats.Messages - before.Messages,
		})
	}
}

// --- spawn scheduler (reference) -----------------------------------------

// stepSpawn is the original engine loop: goroutine per machine per round,
// sequential delivery, fresh allocations throughout. The pooled scheduler
// is validated against it.
func (s *engineState) stepSpawn() error {
	before := s.stats
	n := s.g.N()
	outboxes := make([][]Message, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			inbox := s.pending[i]
			s.pending[i] = nil
			out, err := s.machines[i].Step(s.round, inbox)
			outboxes[i] = out
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("network: machine %d round %d: %w", i, s.round, err)
		}
	}
	// Deliver, validating topology and accounting bandwidth per link.
	linkBits := make(map[[2]int32]int)
	for from, out := range outboxes {
		for _, msg := range out {
			if msg.From != from {
				return fmt.Errorf("network: machine %d forged sender %d", from, msg.From)
			}
			if !s.g.HasEdge(msg.From, msg.To) {
				return fmt.Errorf("network: message %d->%d without link", msg.From, msg.To)
			}
			key := linkKey(msg.From, msg.To)
			linkBits[key] += msg.Bits
			s.stats.TotalBits += int64(msg.Bits)
			s.stats.Messages++
			s.pending[msg.To] = append(s.pending[msg.To], msg)
		}
	}
	roundMax, err := checkLinkCap(linkBits, s.bandwidth, s.round)
	if err != nil {
		return err
	}
	if roundMax > s.stats.MaxLinkBits {
		s.stats.MaxLinkBits = roundMax
	}
	// Deterministic inbox order regardless of goroutine scheduling.
	for i := range s.pending {
		sortInbox(s.pending[i])
	}
	s.round++
	s.stats.Rounds = s.round
	if s.observer != nil {
		s.observer(s.round-1, LinkStats{
			Rounds:      1,
			TotalBits:   s.stats.TotalBits - before.TotalBits,
			MaxLinkBits: roundMax,
			Messages:    s.stats.Messages - before.Messages,
		})
	}
	return nil
}

func linkKey(u, v int) [2]int32 {
	if u > v {
		u, v = v, u
	}
	return [2]int32{int32(u), int32(v)}
}
