// Package network provides the synchronous message-passing substrate of the
// paper's model (Section 3.2): an n-machine communication network G whose
// links carry O(log n)-bit messages per round.
//
// Two components live here:
//
//   - Engine: a real goroutine-per-machine synchronous round executor with
//     channel-based message delivery. Machines implement the Machine
//     interface; each round every machine receives the messages sent to it
//     in the previous round and emits new ones. The engine enforces the
//     per-link bandwidth cap.
//
//   - CostModel: the round/bandwidth accountant used by the cluster-level
//     algorithm code. Cluster primitives (broadcast, aggregate, neighbor
//     exchange) declare their payload size and hop count; the cost model
//     converts that into rounds on G — pipelining payloads larger than the
//     link bandwidth over multiple rounds — and tracks per-phase totals so
//     experiments can report where rounds are spent.
package network

import (
	"fmt"
	"sort"
	"sync"

	"clustercolor/internal/graph"
)

// Message is a single link message. Bits is the declared size used for
// bandwidth accounting; Payload is the simulated content.
type Message struct {
	From    int
	To      int
	Bits    int
	Payload any
}

// Machine is the per-node behaviour driven by the Engine. Step is called
// once per round with the messages delivered this round and returns the
// messages to send (delivered next round). Step implementations run
// concurrently across machines and must not share mutable state.
type Machine interface {
	Step(round int, inbox []Message) (outbox []Message, err error)
}

// Engine executes synchronous rounds over a communication graph.
type Engine struct {
	g         *graph.Graph
	machines  []Machine
	bandwidth int // bits per link per round, 0 = unlimited
	round     int
	pending   [][]Message // inbox per machine for next round
	stats     LinkStats
}

// LinkStats aggregates bandwidth usage observed by an Engine run.
type LinkStats struct {
	// Rounds is the number of executed rounds.
	Rounds int
	// TotalBits is the sum of all message sizes.
	TotalBits int64
	// MaxLinkBits is the largest number of bits carried by a single link
	// in a single round.
	MaxLinkBits int
	// Messages is the total number of messages delivered.
	Messages int64
}

// NewEngine returns an engine over g. machines must have length g.N().
// bandwidthBits caps the bits a link may carry per round (0 disables the
// check).
func NewEngine(g *graph.Graph, machines []Machine, bandwidthBits int) (*Engine, error) {
	if len(machines) != g.N() {
		return nil, fmt.Errorf("network: %d machines for %d vertices", len(machines), g.N())
	}
	return &Engine{
		g:         g,
		machines:  machines,
		bandwidth: bandwidthBits,
		pending:   make([][]Message, g.N()),
	}, nil
}

// Round returns the number of completed rounds.
func (e *Engine) Round() int { return e.round }

// Stats returns bandwidth statistics for the run so far.
func (e *Engine) Stats() LinkStats { return e.stats }

// Step executes one synchronous round: every machine consumes its inbox and
// produces an outbox; messages are validated against the topology and the
// bandwidth cap, then queued for the next round.
func (e *Engine) Step() error {
	n := e.g.N()
	outboxes := make([][]Message, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			inbox := e.pending[i]
			e.pending[i] = nil
			out, err := e.machines[i].Step(e.round, inbox)
			outboxes[i] = out
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("network: machine %d round %d: %w", i, e.round, err)
		}
	}
	// Deliver, validating topology and accounting bandwidth per link.
	linkBits := make(map[[2]int32]int)
	for from, out := range outboxes {
		for _, msg := range out {
			if msg.From != from {
				return fmt.Errorf("network: machine %d forged sender %d", from, msg.From)
			}
			if !e.g.HasEdge(msg.From, msg.To) {
				return fmt.Errorf("network: message %d->%d without link", msg.From, msg.To)
			}
			key := linkKey(msg.From, msg.To)
			linkBits[key] += msg.Bits
			e.stats.TotalBits += int64(msg.Bits)
			e.stats.Messages++
			e.pending[msg.To] = append(e.pending[msg.To], msg)
		}
	}
	for key, bits := range linkBits {
		if bits > e.stats.MaxLinkBits {
			e.stats.MaxLinkBits = bits
		}
		if e.bandwidth > 0 && bits > e.bandwidth {
			return fmt.Errorf("network: link {%d,%d} carried %d bits > bandwidth %d in round %d",
				key[0], key[1], bits, e.bandwidth, e.round)
		}
	}
	// Deterministic inbox order regardless of goroutine scheduling.
	for i := range e.pending {
		sort.Slice(e.pending[i], func(a, b int) bool { return e.pending[i][a].From < e.pending[i][b].From })
	}
	e.round++
	e.stats.Rounds = e.round
	return nil
}

// Run executes rounds until done returns true or maxRounds is reached. It
// returns the number of rounds executed and an error if the engine faulted
// or the round budget was exhausted.
func (e *Engine) Run(maxRounds int, done func() bool) (int, error) {
	start := e.round
	for e.round-start < maxRounds {
		if done() {
			return e.round - start, nil
		}
		if err := e.Step(); err != nil {
			return e.round - start, err
		}
	}
	if done() {
		return e.round - start, nil
	}
	return e.round - start, fmt.Errorf("network: budget of %d rounds exhausted", maxRounds)
}

func linkKey(u, v int) [2]int32 {
	if u > v {
		u, v = v, u
	}
	return [2]int32{int32(u), int32(v)}
}
