package network

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// CostModel accounts rounds and bandwidth for cluster-level primitives.
//
// The paper expresses algorithms as sequences of O(log n)-bit broadcast and
// aggregation operations on cluster support trees, each costing O(d) rounds
// on G (Section 3.2). The cluster layer reports every primitive here with
// its payload size and hop count; payloads exceeding the link bandwidth are
// pipelined over ⌈bits/bandwidth⌉ consecutive rounds, exactly the
// multiplicative overhead the model prescribes.
//
// A CostModel is safe for concurrent use; cluster primitives executing in
// parallel over vertex-disjoint subgraphs charge concurrently and the model
// records the maximum (not the sum) of their round costs via Parallel.
type CostModel struct {
	mu sync.Mutex
	// LinkBandwidth is the per-link per-round bit budget (B = Θ(log n)).
	linkBandwidth int
	// multiplier scales every charged round count; virtual graphs
	// (Appendix A) set it to the edge congestion c.
	multiplier int
	rounds     int64
	totalBits  int64
	maxPayload int
	phases     map[string]int64
}

// NewCostModel returns a cost model with the given per-link bandwidth in
// bits. bandwidthBits must be positive.
func NewCostModel(bandwidthBits int) (*CostModel, error) {
	if bandwidthBits <= 0 {
		return nil, fmt.Errorf("network: bandwidth %d must be positive", bandwidthBits)
	}
	return &CostModel{
		linkBandwidth: bandwidthBits,
		phases:        make(map[string]int64),
	}, nil
}

// Bandwidth returns the per-link bit budget.
func (c *CostModel) Bandwidth() int {
	return c.linkBandwidth
}

// SetMultiplier scales all subsequently charged rounds by k ≥ 1. Virtual
// graphs (Appendix A) run every primitive with an overhead factor equal to
// the edge congestion of their support trees; the multiplier implements
// exactly that factor.
func (c *CostModel) SetMultiplier(k int) error {
	if k < 1 {
		return fmt.Errorf("network: multiplier %d must be >= 1", k)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.multiplier = k
	return nil
}

func (c *CostModel) factor() int {
	if c.multiplier < 1 {
		return 1
	}
	return c.multiplier
}

// Charge records a primitive in the given phase that moves payloadBits over
// hops sequential hops. It returns the number of rounds charged.
func (c *CostModel) Charge(phase string, payloadBits, hops int) int {
	if hops <= 0 {
		hops = 1
	}
	if payloadBits < 0 {
		payloadBits = 0
	}
	slots := (payloadBits + c.linkBandwidth - 1) / c.linkBandwidth
	if slots < 1 {
		slots = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	rounds := hops * slots * c.factor()
	c.rounds += int64(rounds)
	c.totalBits += int64(payloadBits)
	if payloadBits > c.maxPayload {
		c.maxPayload = payloadBits
	}
	c.phases[phase] += int64(rounds)
	return rounds
}

// Parallel records a set of primitives that execute concurrently on
// vertex-disjoint subgraphs: the round cost is the maximum of the individual
// costs, while bits accumulate. Each entry is (payloadBits, hops).
func (c *CostModel) Parallel(phase string, entries [][2]int) int {
	maxRounds := 0
	var bits int64
	maxPayload := 0
	for _, e := range entries {
		payload, hops := e[0], e[1]
		if hops <= 0 {
			hops = 1
		}
		if payload < 0 {
			payload = 0
		}
		slots := (payload + c.linkBandwidth - 1) / c.linkBandwidth
		if slots < 1 {
			slots = 1
		}
		if r := hops * slots; r > maxRounds {
			maxRounds = r
		}
		bits += int64(payload)
		if payload > maxPayload {
			maxPayload = payload
		}
	}
	if maxRounds == 0 {
		maxRounds = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	maxRounds *= c.factor()
	c.rounds += int64(maxRounds)
	c.totalBits += bits
	if maxPayload > c.maxPayload {
		c.maxPayload = maxPayload
	}
	c.phases[phase] += int64(maxRounds)
	return maxRounds
}

// AbsorbParallel merges sub-models whose primitives executed concurrently on
// vertex-disjoint subgraphs (e.g. per-clique stages): the round cost is the
// maximum over the sub-models, bits accumulate, and the merged rounds are
// attributed to the given phase.
func (c *CostModel) AbsorbParallel(phase string, subs []*CostModel) {
	var maxRounds, bitsSum int64
	maxPayload := 0
	for _, s := range subs {
		if s == nil {
			continue
		}
		s.mu.Lock()
		if s.rounds > maxRounds {
			maxRounds = s.rounds
		}
		bitsSum += s.totalBits
		if s.maxPayload > maxPayload {
			maxPayload = s.maxPayload
		}
		s.mu.Unlock()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rounds += maxRounds
	c.totalBits += bitsSum
	if maxPayload > c.maxPayload {
		c.maxPayload = maxPayload
	}
	c.phases[phase] += maxRounds
}

// Rounds returns the total rounds charged so far.
func (c *CostModel) Rounds() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rounds
}

// TotalBits returns the total payload bits charged so far.
func (c *CostModel) TotalBits() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totalBits
}

// MaxPayload returns the largest single payload charged, in bits. A value
// at most the bandwidth certifies that no primitive needed pipelining.
func (c *CostModel) MaxPayload() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxPayload
}

// PhaseRounds returns a copy of the per-phase round totals.
func (c *CostModel) PhaseRounds() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.phases))
	for k, v := range c.phases {
		out[k] = v
	}
	return out
}

// Summary renders a deterministic one-line-per-phase report.
func (c *CostModel) Summary() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, len(c.phases))
	for k := range c.phases {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	fmt.Fprintf(&sb, "rounds=%d totalBits=%d maxPayload=%d\n", c.rounds, c.totalBits, c.maxPayload)
	for _, k := range keys {
		fmt.Fprintf(&sb, "  %-28s %d\n", k, c.phases[k])
	}
	return sb.String()
}
