package benchwork

import (
	"math/bits"

	"clustercolor/internal/acd"
	"clustercolor/internal/cluster"
	"clustercolor/internal/core"
	"clustercolor/internal/network"
	"clustercolor/internal/parwork"
	"clustercolor/internal/shard"
)

// RunACDShardedOnce is RunACDOnce on the partitioned substrate: the same
// decomposition + profile build, driven through a shard engine's per-slice
// arenas and boundary-exchange phases. With equal seeds the outputs are
// byte-identical to RunACDOnce — the benchmarks compare execution layouts,
// not algorithms — and the cross-shard traffic of the run accumulates in
// se.Stats (callers reset it between runs to read per-run numbers).
func RunACDShardedOnce(cg *cluster.CG, se *shard.Engine[int8], eps float64, seed uint64, ws *acd.Workspace) (*acd.Decomposition, *acd.Profile, error) {
	rng := parwork.StreamRNG(seed)
	d, err := acd.ComputeShardedWith(cg, se, eps, rng, ws)
	if err != nil {
		return nil, nil, err
	}
	n := cg.H.N()
	ell := core.DefaultParams(n).Ell(n)
	prof, err := acd.BuildProfileShardedWith(cg, se, d, float64(cg.H.MaxDegree()), ell, rng, ws)
	if err != nil {
		return nil, nil, err
	}
	return d, prof, nil
}

// NewStreamedACDInstance is NewACDInstance without the materialized graphs:
// a headless cluster view charging as n singleton machines — machine count
// n and dilation 0, exactly what the TopologySingleton expansion produces —
// with the same Θ(log n) bandwidth. Decomposition runs under it charge
// byte-identically to runs under the materialized singleton fixture, so the
// streaming benchmarks can cross-check against NewACDInstance at sizes where
// both paths exist.
func NewStreamedACDInstance(n int) (*cluster.CG, error) {
	m := n
	if m < 2 {
		m = 2
	}
	cost, err := network.NewCostModel(2*bits.Len(uint(m)) + 16)
	if err != nil {
		return nil, err
	}
	return cluster.NewHeadless(n, 0, cost)
}

// RunACDStreamedOnce is the decomposition half of RunACDShardedOnce for
// global-graph-less runs: headless cluster views carry no materialized graph
// for the profile stage to walk, so only ComputeShardedWith runs. It works
// under materialized views too, which is how the streaming benchmarks compare
// the two construction paths on equal footing.
func RunACDStreamedOnce(cg *cluster.CG, se *shard.Engine[int8], eps float64, seed uint64, ws *acd.Workspace) (*acd.Decomposition, error) {
	return acd.ComputeShardedWith(cg, se, eps, parwork.StreamRNG(seed), ws)
}
