package benchwork

import (
	"clustercolor/internal/acd"
	"clustercolor/internal/cluster"
	"clustercolor/internal/core"
	"clustercolor/internal/parwork"
	"clustercolor/internal/shard"
)

// RunACDShardedOnce is RunACDOnce on the partitioned substrate: the same
// decomposition + profile build, driven through a shard engine's per-slice
// arenas and boundary-exchange phases. With equal seeds the outputs are
// byte-identical to RunACDOnce — the benchmarks compare execution layouts,
// not algorithms — and the cross-shard traffic of the run accumulates in
// se.Stats (callers reset it between runs to read per-run numbers).
func RunACDShardedOnce(cg *cluster.CG, se *shard.Engine, eps float64, seed uint64, ws *acd.Workspace) (*acd.Decomposition, *acd.Profile, error) {
	rng := parwork.StreamRNG(seed)
	d, err := acd.ComputeShardedWith(cg, se, eps, rng, ws)
	if err != nil {
		return nil, nil, err
	}
	n := cg.H.N()
	ell := core.DefaultParams(n).Ell(n)
	prof, err := acd.BuildProfileShardedWith(cg, se, d, float64(cg.H.MaxDegree()), ell, rng, ws)
	if err != nil {
		return nil, nil, err
	}
	return d, prof, nil
}
