package benchwork

import (
	"math/bits"
	"time"

	"clustercolor/internal/acd"
	"clustercolor/internal/cluster"
	"clustercolor/internal/core"
	"clustercolor/internal/graph"
	"clustercolor/internal/network"
	"clustercolor/internal/parwork"
)

// ACDWorkload is one decomposition benchmark case: an instance builder plus
// the ε the decomposition runs with. The same workloads back BenchmarkACD in
// bench_test.go and the benchtables -acdbench emitter, so BENCH_acd.json
// stays comparable to `go test -bench ACD` output.
type ACDWorkload struct {
	// Name is the benchmark-style identifier (slashes group sub-cases).
	Name string
	// N is the vertex count.
	N int
	// Eps is the decomposition parameter (Definition 4.2).
	Eps float64
	// Build constructs the instance (once per workload; decomposition runs
	// are what the benchmark times).
	Build func() (*graph.Graph, error)
}

// ACDWorkloads returns the decomposition benchmark matrix. GNP deg≈64 at
// two sizes a decade apart exhibits the O(n + m·t/P) scaling directly on
// the all-sparse path (no almost-cliques, so the waves dominate); the
// planted and ring instances make every stage work — buddy evaluation on
// dense blocks, component assembly, external-degree profiling, and cabal
// classification.
func ACDWorkloads() []ACDWorkload {
	gnp := func(n int) ACDWorkload {
		return ACDWorkload{
			Name: graphGenName("ACD/GNP", n, "deg=64"),
			N:    n,
			Eps:  0.25,
			Build: func() (*graph.Graph, error) {
				return graph.GNP(n, 64/float64(n), graph.NewRand(uint64(n)+3))
			},
		}
	}
	return []ACDWorkload{
		gnp(100_000),
		gnp(1_000_000),
		{
			Name: "ACD/PlantedACD/n=5000",
			N:    5000,
			Eps:  0.25,
			Build: func() (*graph.Graph, error) {
				h, _, err := graph.PlantedACD(graph.PlantedACDSpec{
					NumCliques:     20,
					CliqueSize:     150,
					DropFraction:   0.05,
					ExternalDegree: 8,
					SparseN:        2000,
					SparseP:        0.01,
				}, graph.NewRand(3))
				return h, err
			},
		},
		{
			Name: "ACD/RingOfCliques/n=12e3/size=60",
			N:    12_000,
			Eps:  0.25,
			Build: func() (*graph.Graph, error) {
				return graph.RingOfCliques(200, 60)
			},
		},
	}
}

// NewACDInstance builds the decomposition benchmark fixture for h: singleton
// clusters (H = G) with the default Θ(log n) bandwidth. Instance
// construction is separated from RunACDOnce so benchmarks time the
// decomposition alone, and so allocation assertions see the steady state.
func NewACDInstance(h *graph.Graph, seed uint64) (*cluster.CG, error) {
	exp, err := graph.Expand(h, graph.ExpandSpec{Topology: graph.TopologySingleton}, graph.NewRand(seed^0xa5a5a5a5))
	if err != nil {
		return nil, err
	}
	n := exp.G.N()
	if n < 2 {
		n = 2
	}
	cost, err := network.NewCostModel(2*bits.Len(uint(n)) + 16)
	if err != nil {
		return nil, err
	}
	return cluster.New(h, exp, cost)
}

// RunACDOnce executes one decomposition + profile build against the
// instance, reusing ws across calls (steady-state allocations are then
// independent of n). The cabal threshold is the pipeline's default ℓ for
// the instance size.
func RunACDOnce(cg *cluster.CG, eps float64, seed uint64, ws *acd.Workspace) (*acd.Decomposition, *acd.Profile, error) {
	d, prof, _, _, err := RunACDOnceTimed(cg, eps, seed, ws)
	return d, prof, err
}

// RunACDOnceTimed is RunACDOnce reporting the wall-clock split between the
// decomposition waves (ComputeWith) and the profile build — the per-stage
// surface the speedup-curve emitters plot. Timing feeds no decision; the
// outputs are those of RunACDOnce, byte for byte.
func RunACDOnceTimed(cg *cluster.CG, eps float64, seed uint64, ws *acd.Workspace) (*acd.Decomposition, *acd.Profile, time.Duration, time.Duration, error) {
	rng := parwork.StreamRNG(seed)
	start := time.Now()
	d, err := acd.ComputeWith(cg, eps, rng, ws)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	computeNs := time.Since(start)
	n := cg.H.N()
	ell := core.DefaultParams(n).Ell(n)
	start = time.Now()
	prof, err := acd.BuildProfileWith(cg, d, float64(cg.H.MaxDegree()), ell, rng, ws)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	return d, prof, computeNs, time.Since(start), nil
}
