package benchwork

import (
	"math"

	"clustercolor/internal/cluster"
	"clustercolor/internal/fingerprint"
	"clustercolor/internal/graph"
	"clustercolor/internal/parwork"
	"clustercolor/internal/sketch"
)

// SketchWorkload is one sketch-engine benchmark case: an instance builder
// plus the accuracy ξ the wave runs with. The same workloads back the
// benchtables -sketchbench emitter, so BENCH_sketch.json records the engine
// on the instance shapes the decomposition benchmarks already use.
type SketchWorkload struct {
	// Name is the benchmark-style identifier (slashes group sub-cases).
	Name string
	// N is the vertex count.
	N int
	// Xi is the wave accuracy (fixes the max-kernel trial count and the KMV
	// width).
	Xi float64
	// Build constructs the instance (once per workload; waves are what the
	// benchmark times).
	Build func() (*graph.Graph, error)
}

// SketchWorkloads returns the sketch-engine benchmark matrix: GNP deg≈64 at
// two sizes, so the collect wave's O(n + m·t/P) scaling shows directly.
func SketchWorkloads() []SketchWorkload {
	gnp := func(n int) SketchWorkload {
		return SketchWorkload{
			Name: graphGenName("Sketch/GNP", n, "deg=64"),
			N:    n,
			Xi:   0.125,
			Build: func() (*graph.Graph, error) {
				return graph.GNP(n, 64/float64(n), graph.NewRand(uint64(n)+5))
			},
		}
	}
	return []SketchWorkload{gnp(50_000), gnp(400_000)}
}

// NewSketchInstance builds the wave benchmark fixture for h: singleton
// clusters with the default Θ(log n) bandwidth, the same shape the
// decomposition benchmarks run on.
func NewSketchInstance(h *graph.Graph, seed uint64) (*cluster.CG, error) {
	return NewACDInstance(h, seed)
}

// SketchTrials returns the max-kernel trial count for accuracy xi on n
// vertices (Lemma 5.2 via fingerprint.TrialsFor).
func SketchTrials(xi float64, n int) (int, error) {
	return fingerprint.TrialsFor(xi, n)
}

// RunSketchWave executes one engine wave — per-row sample fill plus the
// parallel CSR collect — and returns the peak encoded payload in bits. The
// engine's arenas are reused across calls, so steady-state allocations are
// independent of n.
func RunSketchWave[C sketch.Cell](cg *cluster.CG, eng *sketch.Engine[C], t int, seed uint64) (int, error) {
	if err := eng.FillSamples(cg.H.N(), t, parwork.RowSeed(seed, 0)); err != nil {
		return 0, err
	}
	return eng.Collect(cg, "bench/sketch", sketch.CollectOptions{})
}

// EstimatorStats aggregates one estimator variant over the engine's latest
// wave: the mean encoded row size and the mean relative error of the
// estimates against the exact neighborhood sizes.
type EstimatorStats struct {
	// BitsPerVertex is the mean encoded row size in bits.
	BitsPerVertex float64
	// MeanRelErr is the mean of |d̂ − deg(v)|/deg(v) over vertices with
	// deg(v) > 0.
	MeanRelErr float64
}

// SketchEstimatorStats sweeps the latest wave's output rows with est. The
// wave must have collected plain neighborhoods (no predicate, no self), so
// deg(v) is the exact count each estimate targets.
func SketchEstimatorStats[C sketch.Cell](h *graph.Graph, eng *sketch.Engine[C], est sketch.Estimator[C]) EstimatorStats {
	n := h.N()
	var bits, errSum float64
	counted := 0
	var counts []int
	for v := 0; v < n; v++ {
		row := eng.Row(v)
		bits += float64(eng.Kernel.EncodedBits(row, &counts))
		d := float64(h.Degree(v))
		if d == 0 {
			continue
		}
		errSum += math.Abs(est.Estimate(row)-d) / d
		counted++
	}
	stats := EstimatorStats{}
	if n > 0 {
		stats.BitsPerVertex = bits / float64(n)
	}
	if counted > 0 {
		stats.MeanRelErr = errSum / float64(counted)
	}
	return stats
}
