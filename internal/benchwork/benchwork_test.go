package benchwork

import (
	"testing"

	"clustercolor/internal/graph"
	"clustercolor/internal/network"
)

func TestGossipMachinesTraffic(t *testing.T) {
	g := graph.MustGNP(50, 0.2, graph.NewRand(3))
	eng, err := network.NewEngine(g, GossipMachines(g), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for i := 0; i < 3; i++ {
		if err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	// Every round each machine messages every neighbor: 2m messages/round.
	if want := int64(3 * 2 * g.M()); eng.Stats().Messages != want {
		t.Fatalf("messages = %d, want %d", eng.Stats().Messages, want)
	}
}

func TestBatteryCrossSection(t *testing.T) {
	for i, run := range BatteryCrossSection(5) {
		tbl, err := run()
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if len(tbl.Rows) == 0 {
			t.Fatalf("job %d (%s): empty table", i, tbl.ID)
		}
	}
}
