package benchwork

import (
	"fmt"
	"math/bits"

	"clustercolor/internal/cluster"
	"clustercolor/internal/coloring"
	"clustercolor/internal/core"
	"clustercolor/internal/graph"
	"clustercolor/internal/network"
)

// ColorWorkload is one stage-level coloring benchmark case: an instance
// builder plus the parameters that pin which pipeline runs. The same
// workloads back BenchmarkColor in bench_test.go and the benchtables
// -colorbench emitter, so BENCH_color.json stays comparable to
// `go test -bench Color` output.
type ColorWorkload struct {
	// Name is the benchmark-style identifier (slashes group sub-cases).
	Name string
	// N is the vertex count.
	N int
	// Build constructs the instance (once per workload; Color runs are what
	// the benchmark times).
	Build func() (*graph.Graph, error)
	// Params returns the tuned parameters for an n-vertex instance. The
	// runner overwrites Seed per iteration.
	Params func(n int) core.Params
}

// ColorWorkloads returns the coloring benchmark matrix. GNP deg≈64 runs the
// low-degree pipeline (DeltaLow pinned above Δ) at two sizes so linear
// scaling shows directly; the planted and ring instances take the
// high-degree pipeline and exercise every per-clique stage — colorful
// matchings, synchronized color trials, clique-palette rebuilds and
// put-aside donation.
func ColorWorkloads() []ColorWorkload {
	lowGNP := func(n int) ColorWorkload {
		return ColorWorkload{
			Name: graphGenName("Color/GNP", n, "deg=64/low"),
			N:    n,
			Build: func() (*graph.Graph, error) {
				return graph.GNP(n, 64/float64(n), graph.NewRand(uint64(n)+3))
			},
			Params: func(n int) core.Params {
				p := core.DefaultParams(n)
				// Pin the low-degree pipeline: Δ of GNP deg≈64 sits near the
				// default 4·log₂ n threshold, and the fingerprint-based ACD
				// is not built for Δ ≪ √n instances at this scale.
				p.DeltaLow = 256
				return p
			},
		}
	}
	return []ColorWorkload{
		lowGNP(20_000),
		lowGNP(100_000),
		{
			Name: "Color/PlantedACD/n=1360/high",
			N:    1360,
			Build: func() (*graph.Graph, error) {
				h, _, err := graph.PlantedACD(graph.PlantedACDSpec{
					NumCliques:     12,
					CliqueSize:     80,
					DropFraction:   0.05,
					ExternalDegree: 4,
					SparseN:        400,
					SparseP:        0.08,
				}, graph.NewRand(3))
				return h, err
			},
			Params: core.DefaultParams,
		},
		{
			Name: "Color/RingOfCliques/n=1800/high",
			N:    1800,
			Build: func() (*graph.Graph, error) {
				return graph.RingOfCliques(30, 60)
			},
			Params: core.DefaultParams,
		},
	}
}

// RunColor executes one coloring run of a workload instance: singleton
// clusters (H = G), default Θ(log n) bandwidth, the workload's params with
// the given seed. It returns the run's stats (the coloring is verified by
// core.Color itself).
func RunColor(h *graph.Graph, params core.Params, seed uint64) (*core.Stats, error) {
	params.Seed = seed
	exp, err := graph.Expand(h, graph.ExpandSpec{Topology: graph.TopologySingleton}, graph.NewRand(seed^0xa5a5a5a5))
	if err != nil {
		return nil, err
	}
	n := exp.G.N()
	if n < 2 {
		n = 2
	}
	cost, err := network.NewCostModel(2*bits.Len(uint(n)) + 16)
	if err != nil {
		return nil, err
	}
	cg, err := cluster.New(h, exp, cost)
	if err != nil {
		return nil, err
	}
	_, stats, err := core.Color(cg, params)
	return stats, err
}

// PaletteOpCase is one palette micro-benchmark: a name and the operation to
// time. The table is shared between BenchmarkPaletteOps (bench_test.go) and
// the benchtables -colorbench emitter so the two surfaces cannot drift.
type PaletteOpCase struct {
	Name string
	Op   func(i int)
}

// PaletteOpCases returns the palette micro-benchmark table over a fixture
// produced by PaletteOpsFixture. Scratch-backed cases must measure
// 0 allocs/op; the package-level Palette exactly 1 (its caller-owned
// result).
func PaletteOpCases(g *graph.Graph, col *coloring.Coloring) ([]PaletteOpCase, error) {
	cost, err := network.NewCostModel(48)
	if err != nil {
		return nil, err
	}
	cg, err := cluster.NewAbstract(g, g, 0, cost)
	if err != nil {
		return nil, err
	}
	scratch := coloring.NewPaletteScratch()
	members := make([]int, 256)
	for v := range members {
		members[v] = v % g.N()
	}
	var cp *coloring.CliquePalette
	return []PaletteOpCase{
		{"Palette", func(i int) { _ = coloring.Palette(g, col, i%g.N()) }},
		{"PaletteScratch", func(i int) { _ = scratch.Palette(g, col, i%g.N()) }},
		{"PaletteSize", func(i int) { _ = coloring.PaletteSize(g, col, i%g.N()) }},
		{"Available", func(i int) { _ = coloring.Available(g, col, i%g.N(), int32(i%col.Delta()+1)) }},
		{"Slack", func(i int) { _ = coloring.Slack(g, col, i%g.N(), nil) }},
		{"ReuseSlack", func(i int) { _ = coloring.ReuseSlack(g, col, i%g.N()) }},
		{"CliquePaletteRebuild", func(i int) { cp = coloring.RebuildCliquePalette(cp, cg, col, members) }},
	}, nil
}

// PaletteOpsFixture returns the shared fixture of the palette
// micro-benchmarks: a GNP deg≈64 graph at n and a deterministic proper
// partial coloring covering roughly 60% of the vertices.
func PaletteOpsFixture(n int) (*graph.Graph, *coloring.Coloring, error) {
	g, err := graph.GNP(n, 64/float64(n), graph.NewRand(7))
	if err != nil {
		return nil, nil, err
	}
	col := coloring.New(g.N(), g.MaxDegree())
	rng := graph.NewRand(11)
	for v := 0; v < g.N(); v++ {
		if rng.Float64() >= 0.6 {
			continue
		}
		c := int32(1 + rng.IntN(g.MaxDegree()+1))
		ok := true
		for _, u := range g.Neighbors(v) {
			if col.Get(int(u)) == c {
				ok = false
				break
			}
		}
		if ok {
			if err := col.Set(v, c); err != nil {
				return nil, nil, fmt.Errorf("benchwork: fixture coloring: %w", err)
			}
		}
	}
	return g, col, nil
}
