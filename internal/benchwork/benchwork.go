// Package benchwork holds the benchmark workloads shared by the repo's
// go-test benchmarks (bench_test.go) and the benchtables -enginebench
// emitter. Both measure exactly these, so BENCH_engine.json numbers stay
// comparable to `go test -bench` output.
package benchwork

import (
	"clustercolor/internal/experiments"
	"clustercolor/internal/graph"
	"clustercolor/internal/network"
)

// gossip sends one small message to every neighbor each round — the
// steady-state traffic pattern that stresses the engine's scheduling and
// delivery paths rather than any particular protocol.
type gossip struct {
	id        int
	neighbors []int32
}

func (m *gossip) Step(round int, inbox []network.Message) ([]network.Message, error) {
	out := make([]network.Message, 0, len(m.neighbors))
	for _, nb := range m.neighbors {
		out = append(out, network.Message{From: m.id, To: int(nb), Bits: 8, Payload: round})
	}
	return out, nil
}

// GossipMachines returns one gossip machine per vertex of g.
func GossipMachines(g *graph.Graph) []network.Machine {
	ms := make([]network.Machine, g.N())
	for i := 0; i < g.N(); i++ {
		ms[i] = &gossip{id: i, neighbors: g.Neighbors(i)}
	}
	return ms
}

// BatteryCrossSection returns the cheap cross-section of the experiment
// battery used to benchmark the parallel runner.
func BatteryCrossSection(seed uint64) []func() (*experiments.Table, error) {
	return []func() (*experiments.Table, error){
		func() (*experiments.Table, error) { return experiments.E2LowDegreeRounds([]int{150, 250, 350}, seed) },
		func() (*experiments.Table, error) {
			return experiments.E3FingerprintAccuracy([]int{64, 256}, 300, 20, seed)
		},
		func() (*experiments.Table, error) { return experiments.E6SlackGeneration([]int{50, 100, 200}, seed) },
		func() (*experiments.Table, error) { return experiments.E9SCT(40, []int{1, 3, 6}, seed) },
	}
}
