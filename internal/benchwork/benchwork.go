// Package benchwork holds the benchmark workloads shared by the repo's
// go-test benchmarks (bench_test.go) and the benchtables -enginebench /
// -graphbench emitters. Both measure exactly these, so BENCH_engine.json
// and BENCH_graph.json numbers stay comparable to `go test -bench` output.
package benchwork

import (
	"fmt"
	"math"

	"clustercolor/internal/experiments"
	"clustercolor/internal/graph"
	"clustercolor/internal/network"
)

// gossip sends one small message to every neighbor each round — the
// steady-state traffic pattern that stresses the engine's scheduling and
// delivery paths rather than any particular protocol.
type gossip struct {
	id        int
	neighbors []int32
}

func (m *gossip) Step(round int, inbox []network.Message) ([]network.Message, error) {
	out := make([]network.Message, 0, len(m.neighbors))
	for _, nb := range m.neighbors {
		out = append(out, network.Message{From: m.id, To: int(nb), Bits: 8, Payload: round})
	}
	return out, nil
}

// GossipMachines returns one gossip machine per vertex of g.
func GossipMachines(g *graph.Graph) []network.Machine {
	ms := make([]network.Machine, g.N())
	for i := 0; i < g.N(); i++ {
		ms[i] = &gossip{id: i, neighbors: g.Neighbors(i)}
	}
	return ms
}

// GraphGenWorkload is one graph-generation benchmark case: a named
// generator invocation at a fixed size.
type GraphGenWorkload struct {
	// Name is the benchmark-style identifier (slashes group sub-cases).
	Name string
	// N is the vertex count, recorded alongside timings so the report can
	// demonstrate O(n+m) scaling across rows.
	N int
	// Gen builds the instance for the given seed.
	Gen func(seed uint64) (*graph.Graph, error)
}

// GraphGenWorkloads returns the generator benchmark matrix. GNP and
// geometric appear at two sizes a decade apart so the recorded timings
// exhibit the O(n+m) scaling directly (≈10× time for 10× n at constant
// expected degree); the million-vertex rows are the instances the ROADMAP's
// bandwidth-constrained network scenarios need.
func GraphGenWorkloads() []GraphGenWorkload {
	gnp := func(n int) GraphGenWorkload {
		return GraphGenWorkload{
			Name: graphGenName("GNP", n, "deg=10"),
			N:    n,
			Gen: func(seed uint64) (*graph.Graph, error) {
				return graph.GNP(n, 10/float64(n), graph.NewRand(seed))
			},
		}
	}
	geo := func(n int) GraphGenWorkload {
		radius := math.Sqrt(10 / (math.Pi * float64(n))) // E[deg] ≈ n·π·r² = 10
		return GraphGenWorkload{
			Name: graphGenName("Geometric", n, "deg=10"),
			N:    n,
			Gen: func(seed uint64) (*graph.Graph, error) {
				g, _, err := graph.RandomGeometric(n, radius, graph.NewRand(seed))
				return g, err
			},
		}
	}
	return []GraphGenWorkload{
		gnp(100_000),
		gnp(1_000_000),
		geo(100_000),
		geo(1_000_000),
		{
			Name: graphGenName("BarabasiAlbert", 1_000_000, "attach=5"),
			N:    1_000_000,
			Gen: func(seed uint64) (*graph.Graph, error) {
				return graph.BarabasiAlbert(1_000_000, 5, graph.NewRand(seed))
			},
		},
		{
			Name: graphGenName("RandomRegular", 100_000, "d=10"),
			N:    100_000,
			Gen: func(seed uint64) (*graph.Graph, error) {
				return graph.RandomRegular(100_000, 10, graph.NewRand(seed))
			},
		},
		{
			Name: graphGenName("RingOfCliques", 1_000_000, "size=50"),
			N:    1_000_000,
			Gen: func(seed uint64) (*graph.Graph, error) {
				return graph.RingOfCliques(20_000, 50)
			},
		},
		{
			Name: graphGenName("Power2", 20_000, "deg=8"),
			N:    20_000,
			Gen: func(seed uint64) (*graph.Graph, error) {
				g, err := graph.GNP(20_000, 8/20_000.0, graph.NewRand(seed))
				if err != nil {
					return nil, err
				}
				return g.Power(2)
			},
		},
	}
}

func graphGenName(kind string, n int, extra string) string {
	switch {
	case n%1_000_000 == 0:
		return fmt.Sprintf("%s/n=%de6/%s", kind, n/1_000_000, extra)
	case n%1_000 == 0:
		return fmt.Sprintf("%s/n=%de3/%s", kind, n/1_000, extra)
	default:
		return fmt.Sprintf("%s/n=%d/%s", kind, n, extra)
	}
}

// BatteryCrossSection returns the cheap cross-section of the experiment
// battery used to benchmark the parallel runner.
func BatteryCrossSection(seed uint64) []func() (*experiments.Table, error) {
	return []func() (*experiments.Table, error){
		func() (*experiments.Table, error) { return experiments.E2LowDegreeRounds([]int{150, 250, 350}, seed) },
		func() (*experiments.Table, error) {
			return experiments.E3FingerprintAccuracy([]int{64, 256}, 300, 20, seed)
		},
		func() (*experiments.Table, error) { return experiments.E6SlackGeneration([]int{50, 100, 200}, seed) },
		func() (*experiments.Table, error) { return experiments.E9SCT(40, []int{1, 3, 6}, seed) },
	}
}
