// Package prng implements the pseudo-random tools of the paper's Appendix C
// plus the geometric sampling that fingerprinting (Section 5) builds on:
//
//   - geometric random variables of parameter λ (Section 5.1),
//   - k-wise independent polynomial hash families over a prime field,
//   - (ε, s)-min-wise independent hashing via O(log 1/ε)-wise independence
//     (Definition C.1, Lemma C.2),
//   - ε-almost-pairwise independent hashing (Definition C.3, Theorem C.4),
//   - representative set families (Definition C.5, Lemma C.6) used by
//     TryPseudorandomColors,
//   - seed-describable pseudorandom permutations for the synchronized color
//     trial (Lemma 4.13).
//
// Every object is describable by an O(log n)-bit seed, which is what lets
// the distributed algorithms share them in single messages.
package prng

import (
	"fmt"
	"math/bits"
	"math/rand/v2"
)

// Geometric samples a geometric random variable of parameter lambda:
// Pr[X = k] = λ^k − λ^(k+1) for k ≥ 0 (the number of failures before the
// first success where each trial fails with probability λ).
func Geometric(rng *rand.Rand, lambda float64) int {
	k := 0
	for rng.Float64() < lambda {
		k++
	}
	return k
}

// GeometricHalf samples a geometric of parameter 1/2 using the trailing
// zeros of a uniform word, the distribution used by all fingerprints.
func GeometricHalf(rng *rand.Rand) int {
	for {
		w := rng.Uint64()
		if w != 0 {
			return bits.TrailingZeros64(w)
		}
		// All-zero word (probability 2^-64): count 64 failures and retry.
	}
}

// mersennePrime61 is the modulus of the polynomial hash family.
const mersennePrime61 = (1 << 61) - 1

func mulmod61(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// Reduce modulo 2^61-1: (hi*2^64 + lo) mod p with 2^64 ≡ 2^3 (mod p).
	res := (lo & mersennePrime61) + (lo >> 61) + (hi << 3 & mersennePrime61) + (hi >> 58)
	for res >= mersennePrime61 {
		res -= mersennePrime61
	}
	return res
}

// KWiseHash is a k-wise independent hash function: a degree-(k-1) polynomial
// over GF(2^61 - 1). It is describable in k·61 bits (the coefficient seed).
type KWiseHash struct {
	coeffs []uint64
}

// NewKWiseHash draws a uniformly random member of the k-wise independent
// family. k must be at least 1.
func NewKWiseHash(k int, rng *rand.Rand) (*KWiseHash, error) {
	if k < 1 {
		return nil, fmt.Errorf("prng: k-wise independence requires k >= 1, got %d", k)
	}
	coeffs := make([]uint64, k)
	for i := range coeffs {
		coeffs[i] = rng.Uint64() % mersennePrime61
	}
	return &KWiseHash{coeffs: coeffs}, nil
}

// Eval returns the hash of x in [0, 2^61-1).
func (h *KWiseHash) Eval(x uint64) uint64 {
	x %= mersennePrime61
	var acc uint64
	for i := len(h.coeffs) - 1; i >= 0; i-- {
		acc = mulmod61(acc, x)
		acc += h.coeffs[i]
		if acc >= mersennePrime61 {
			acc -= mersennePrime61
		}
	}
	return acc
}

// EvalRange returns the hash mapped to [0, m).
func (h *KWiseHash) EvalRange(x uint64, m uint64) uint64 {
	return h.Eval(x) % m
}

// SeedBits returns the description length of the function in bits.
func (h *KWiseHash) SeedBits() int { return 61 * len(h.coeffs) }

// MinWiseHash is an (ε, s)-min-wise independent function per Lemma C.2: an
// O(log 1/ε)-wise independent polynomial evaluated into [0, n²) so that ties
// are negligible. For a set X and x ∉ X, Pr[h(x) < min h(X)] is within
// (1±ε)/( |X|+1 ).
type MinWiseHash struct {
	h *KWiseHash
	m uint64
}

// NewMinWiseHash draws a min-wise hash for universe [0, n) with accuracy ε.
func NewMinWiseHash(n int, eps float64, rng *rand.Rand) (*MinWiseHash, error) {
	if n < 1 {
		return nil, fmt.Errorf("prng: universe size %d < 1", n)
	}
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("prng: eps %v out of (0,1)", eps)
	}
	k := 2
	for p := 1.0; p > eps; p /= 2 {
		k++
	}
	h, err := NewKWiseHash(k, rng)
	if err != nil {
		return nil, err
	}
	m := uint64(n) * uint64(n) * 4
	if m < 16 {
		m = 16
	}
	return &MinWiseHash{h: h, m: m}, nil
}

// Eval hashes id into [0, m).
func (h *MinWiseHash) Eval(id int) uint64 {
	return h.h.Eval(uint64(id)) % h.m
}

// SeedBits returns the description length in bits.
func (h *MinWiseHash) SeedBits() int { return h.h.SeedBits() }

// ArgMin returns the element of ids with the smallest hash (ties broken by
// smaller id), or -1 for an empty set.
func (h *MinWiseHash) ArgMin(ids []int) int {
	best, bestVal := -1, ^uint64(0)
	for _, id := range ids {
		v := h.Eval(id)
		if v < bestVal || (v == bestVal && (best == -1 || id < best)) {
			best, bestVal = id, v
		}
	}
	return best
}

// AlmostPairwiseHash is an ε-almost-pairwise independent function
// [N] → [M] (Definition C.3, Theorem C.4): collisions on any fixed pair
// occur with probability at most (1+ε)/M². Implemented as a 2-wise
// polynomial over the Mersenne field truncated to [M] — the truncation
// contributes the ε slack — so its description fits in O(log M + log 1/ε)
// bits plus the field seed.
type AlmostPairwiseHash struct {
	h *KWiseHash
	m uint64
}

// NewAlmostPairwiseHash draws a random member mapping [n] → [m].
func NewAlmostPairwiseHash(n, m int, rng *rand.Rand) (*AlmostPairwiseHash, error) {
	if n < 1 || m < 1 {
		return nil, fmt.Errorf("prng: domain %d and range %d must be positive", n, m)
	}
	h, err := NewKWiseHash(2, rng)
	if err != nil {
		return nil, err
	}
	return &AlmostPairwiseHash{h: h, m: uint64(m)}, nil
}

// Eval hashes x into [0, m).
func (h *AlmostPairwiseHash) Eval(x int) uint64 {
	return h.h.Eval(uint64(x)) % h.m
}

// SeedBits returns the description length in bits.
func (h *AlmostPairwiseHash) SeedBits() int { return h.h.SeedBits() }
