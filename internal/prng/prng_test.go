package prng

import (
	"math"
	"testing"
	"testing/quick"

	"clustercolor/internal/graph"
)

func TestGeometricHalfDistribution(t *testing.T) {
	rng := graph.NewRand(1)
	const samples = 200000
	counts := make([]int, 20)
	for i := 0; i < samples; i++ {
		k := GeometricHalf(rng)
		if k < len(counts) {
			counts[k]++
		}
	}
	// Pr[X = k] = 2^-(k+1).
	for k := 0; k <= 5; k++ {
		got := float64(counts[k]) / samples
		want := math.Pow(0.5, float64(k+1))
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("Pr[X=%d] = %.4f, want %.4f", k, got, want)
		}
	}
}

func TestGeometricGeneralParameter(t *testing.T) {
	rng := graph.NewRand(2)
	const samples = 100000
	lambda := 0.3
	zero := 0
	for i := 0; i < samples; i++ {
		if Geometric(rng, lambda) == 0 {
			zero++
		}
	}
	got := float64(zero) / samples
	want := 1 - lambda // Pr[X=0] = 1-λ
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("Pr[X=0] = %.4f, want %.4f", got, want)
	}
}

func TestKWiseHashRejectsBadK(t *testing.T) {
	rng := graph.NewRand(3)
	if _, err := NewKWiseHash(0, rng); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestKWiseHashDeterministicAndSpread(t *testing.T) {
	rng := graph.NewRand(4)
	h, err := NewKWiseHash(4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if h.Eval(42) != h.Eval(42) {
		t.Fatal("hash not deterministic")
	}
	if h.SeedBits() != 4*61 {
		t.Fatalf("SeedBits = %d", h.SeedBits())
	}
	// Pairwise uniformity sanity: buckets of Eval over [0,4) roughly equal.
	buckets := make([]int, 4)
	for x := uint64(0); x < 40000; x++ {
		buckets[h.EvalRange(x, 4)]++
	}
	for b, c := range buckets {
		if c < 8000 || c > 12000 {
			t.Fatalf("bucket %d has %d of 40000", b, c)
		}
	}
}

func TestMulmod61MatchesBigIntSemantics(t *testing.T) {
	// Cross-check the Mersenne reduction against direct 128-bit math on
	// values near the modulus.
	cases := [][2]uint64{
		{0, 0},
		{1, mersennePrime61 - 1},
		{mersennePrime61 - 1, mersennePrime61 - 1},
		{123456789012345, 987654321098765},
	}
	for _, c := range cases {
		want := naiveMulMod(c[0], c[1])
		if got := mulmod61(c[0], c[1]); got != want {
			t.Fatalf("mulmod61(%d,%d) = %d, want %d", c[0], c[1], got, want)
		}
	}
}

func naiveMulMod(a, b uint64) uint64 {
	// Schoolbook via math/bits through repeated addition in 128 bits is
	// overkill; use big-free double-and-add.
	var res uint64
	a %= mersennePrime61
	b %= mersennePrime61
	for b > 0 {
		if b&1 == 1 {
			res = (res + a) % mersennePrime61
		}
		a = (a * 2) % mersennePrime61
		b >>= 1
	}
	return res
}

func TestMulmod61Property(t *testing.T) {
	f := func(a, b uint64) bool {
		return mulmod61(a%mersennePrime61, b%mersennePrime61) == naiveMulMod(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMinWiseHashUniformArgMin(t *testing.T) {
	// Over many independent functions, ArgMin over a fixed set should be
	// near-uniform (Definition C.1).
	rng := graph.NewRand(5)
	ids := []int{3, 8, 13, 21, 34}
	counts := make(map[int]int)
	const trials = 20000
	for i := 0; i < trials; i++ {
		h, err := NewMinWiseHash(64, 0.25, rng)
		if err != nil {
			t.Fatal(err)
		}
		counts[h.ArgMin(ids)]++
	}
	want := float64(trials) / float64(len(ids))
	for _, id := range ids {
		got := float64(counts[id])
		if got < want*0.7 || got > want*1.3 {
			t.Fatalf("ArgMin hit %d %.0f times, want ≈%.0f", id, got, want)
		}
	}
}

func TestMinWiseHashValidation(t *testing.T) {
	rng := graph.NewRand(6)
	if _, err := NewMinWiseHash(0, 0.1, rng); err == nil {
		t.Fatal("empty universe accepted")
	}
	if _, err := NewMinWiseHash(10, 0, rng); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := NewMinWiseHash(10, 1, rng); err == nil {
		t.Fatal("eps=1 accepted")
	}
	h, err := NewMinWiseHash(10, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if h.ArgMin(nil) != -1 {
		t.Fatal("ArgMin(empty) != -1")
	}
	if h.SeedBits() <= 0 {
		t.Fatal("SeedBits <= 0")
	}
}

func TestRepFamilyValidation(t *testing.T) {
	tests := []struct {
		name                     string
		universe, setSize, count int
	}{
		{name: "zero universe", universe: 0, setSize: 1, count: 1},
		{name: "zero set", universe: 5, setSize: 0, count: 1},
		{name: "oversized set", universe: 5, setSize: 6, count: 1},
		{name: "zero count", universe: 5, setSize: 2, count: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewRepFamily(tt.universe, tt.setSize, tt.count, 1); err == nil {
				t.Fatal("invalid family accepted")
			}
		})
	}
}

func TestRepFamilyMembersAreValidSets(t *testing.T) {
	f, err := NewRepFamily(100, 10, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < f.Count(); i++ {
		m, err := f.Member(i)
		if err != nil {
			t.Fatal(err)
		}
		if len(m) != 10 {
			t.Fatalf("member %d has size %d", i, len(m))
		}
		seen := map[int]bool{}
		for _, x := range m {
			if x < 0 || x >= 100 || seen[x] {
				t.Fatalf("member %d has bad element %d", i, x)
			}
			seen[x] = true
		}
	}
	// Determinism: same index, same set.
	a, _ := f.Member(3)
	b, _ := f.Member(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Member(3) not deterministic")
		}
	}
	if _, err := f.Member(-1); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := f.Member(f.Count()); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestRepFamilyDenseRegime(t *testing.T) {
	// setSize*4 >= universe triggers the Fisher–Yates path.
	f, err := NewRepFamily(12, 6, 20, 9)
	if err != nil {
		t.Fatal(err)
	}
	m, err := f.Member(0)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, x := range m {
		if x < 0 || x >= 12 || seen[x] {
			t.Fatalf("bad dense member %v", m)
		}
		seen[x] = true
	}
}

func TestRepFamilyRepresentativeness(t *testing.T) {
	// Definition C.5 property, empirically: for a target T of half the
	// universe, most members intersect T near-proportionally.
	f, err := RepFamilyFor(200, 0.5, 0.25, 11)
	if err != nil {
		t.Fatal(err)
	}
	inT := func(x int) bool { return x < 100 } // |T|/K = 1/2
	good := 0
	for i := 0; i < f.Count(); i++ {
		m, err := f.Member(i)
		if err != nil {
			t.Fatal(err)
		}
		hits := 0
		for _, x := range m {
			if inT(x) {
				hits++
			}
		}
		frac := float64(hits) / float64(len(m))
		if frac > 0.25 && frac < 0.75 { // within (1±α)|T|/K for α=1/2
			good++
		}
	}
	if float64(good) < 0.9*float64(f.Count()) {
		t.Fatalf("only %d/%d members representative", good, f.Count())
	}
}

func TestRepFamilyForValidation(t *testing.T) {
	if _, err := RepFamilyFor(10, 0, 0.5, 1); err == nil {
		t.Fatal("alpha=0 accepted")
	}
	if _, err := RepFamilyFor(10, 0.5, 2, 1); err == nil {
		t.Fatal("delta=2 accepted")
	}
}

func TestRepFamilyIndexBits(t *testing.T) {
	f, err := NewRepFamily(100, 5, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f.IndexBits() != 10 {
		t.Fatalf("IndexBits = %d, want 10", f.IndexBits())
	}
	if f.Universe() != 100 || f.SetSize() != 5 {
		t.Fatal("accessors wrong")
	}
}

func TestPermutationIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		p := Permutation(50, seed)
		seen := make([]bool, 50)
		for _, x := range p {
			if x < 0 || x >= 50 || seen[x] {
				return false
			}
			seen[x] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
	// Deterministic per seed, different across seeds (overwhelmingly).
	a := Permutation(50, 1)
	b := Permutation(50, 1)
	c := Permutation(50, 2)
	same, diff := true, false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same || !diff {
		t.Fatalf("seed determinism broken: same=%v diff=%v", same, diff)
	}
}

func TestAlmostPairwiseHashCollisions(t *testing.T) {
	// Definition C.3: over random members, a fixed pair collides w.p.
	// ≈ 1/M (summing the M diagonal outcomes of the (1+ε)/M² bound).
	rng := graph.NewRand(51)
	const m, trials = 32, 30000
	collisions := 0
	for i := 0; i < trials; i++ {
		h, err := NewAlmostPairwiseHash(1000, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		if h.Eval(17) == h.Eval(911) {
			collisions++
		}
	}
	got := float64(collisions) / trials
	want := 1.0 / m
	if got > 1.5*want || got < 0.5*want {
		t.Fatalf("pair collision rate %.4f, want ≈ %.4f", got, want)
	}
}

func TestAlmostPairwiseHashValidation(t *testing.T) {
	rng := graph.NewRand(52)
	if _, err := NewAlmostPairwiseHash(0, 4, rng); err == nil {
		t.Fatal("empty domain accepted")
	}
	if _, err := NewAlmostPairwiseHash(4, 0, rng); err == nil {
		t.Fatal("empty range accepted")
	}
	h, err := NewAlmostPairwiseHash(10, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if h.Eval(3) >= 4 {
		t.Fatal("value out of range")
	}
	if h.SeedBits() != 2*61 {
		t.Fatalf("SeedBits = %d", h.SeedBits())
	}
}
