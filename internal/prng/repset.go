package prng

import (
	"fmt"
	"math/rand/v2"
)

// RepFamily is an (α, δ, ν)-representative set family over a universe of
// size K (Definition C.5): a collection of s-sized subsets such that for any
// target T ⊆ U, most members of the family intersect T proportionally. The
// paper (Lemma C.6) shows random s-subsets form such a family; we construct
// members pseudo-randomly from a shared seed so a member is describable by
// its O(log n)-bit index.
type RepFamily struct {
	universe int
	setSize  int
	count    int
	seed     uint64
}

// NewRepFamily creates a family of `count` pseudo-random subsets of size
// setSize over universe [0, universe).
func NewRepFamily(universe, setSize, count int, seed uint64) (*RepFamily, error) {
	if universe < 1 {
		return nil, fmt.Errorf("prng: universe %d < 1", universe)
	}
	if setSize < 1 || setSize > universe {
		return nil, fmt.Errorf("prng: set size %d out of [1,%d]", setSize, universe)
	}
	if count < 1 {
		return nil, fmt.Errorf("prng: count %d < 1", count)
	}
	return &RepFamily{universe: universe, setSize: setSize, count: count, seed: seed}, nil
}

// RepFamilyFor picks family parameters per Lemma C.6 for accuracy α,
// threshold δ and failure ν ≈ 1/poly: s = Θ(α⁻²δ⁻¹ log(1/ν)) capped at the
// universe size.
func RepFamilyFor(universe int, alpha, delta float64, seed uint64) (*RepFamily, error) {
	if alpha <= 0 || alpha > 1 || delta <= 0 || delta > 1 {
		return nil, fmt.Errorf("prng: alpha %v, delta %v out of (0,1]", alpha, delta)
	}
	s := int(4.0 / (alpha * alpha * delta))
	if s < 8 {
		s = 8
	}
	if s > universe {
		s = universe
	}
	count := 2 * universe
	if count < 64 {
		count = 64
	}
	return NewRepFamily(universe, s, count, seed)
}

// Count returns the number of sets in the family.
func (f *RepFamily) Count() int { return f.count }

// SetSize returns s, the size of each member set.
func (f *RepFamily) SetSize() int { return f.setSize }

// Universe returns the universe size.
func (f *RepFamily) Universe() int { return f.universe }

// MemberScratch is reusable state for AppendMember: the derivation PRNG and
// the Fisher–Yates permutation buffer, so materializing a member allocates
// nothing in steady state. One scratch belongs to one goroutine.
type MemberScratch struct {
	pcg  rand.PCG
	rng  *rand.Rand
	perm []int
}

// NewMemberScratch returns an empty scratch; buffers grow on first use.
func NewMemberScratch() *MemberScratch {
	s := &MemberScratch{}
	s.rng = rand.New(&s.pcg)
	return s
}

// Member materializes the i-th set of the family. Every party holding the
// family seed reconstructs the same set from the index alone, so sharing a
// member costs O(log count) bits.
func (f *RepFamily) Member(i int) ([]int, error) {
	return f.AppendMember(nil, i, NewMemberScratch())
}

// AppendMember appends the i-th member set to dst (reusing its capacity)
// and returns it, producing exactly the sequence Member(i) does. Hot loops
// pass a reusable dst and scratch to materialize members allocation-free.
func (f *RepFamily) AppendMember(dst []int, i int, s *MemberScratch) ([]int, error) {
	if i < 0 || i >= f.count {
		return nil, fmt.Errorf("prng: member index %d out of [0,%d)", i, f.count)
	}
	s.pcg.Seed(f.seed, uint64(i)*0x9e3779b97f4a7c15+1)
	base := len(dst)
	if f.setSize*4 >= f.universe {
		// Dense regime: partial Fisher–Yates over the full universe.
		if cap(s.perm) < f.universe {
			s.perm = make([]int, f.universe)
		}
		perm := s.perm[:f.universe]
		for j := range perm {
			perm[j] = j
		}
		for j := 0; j < f.setSize; j++ {
			k := j + s.rng.IntN(f.universe-j)
			perm[j], perm[k] = perm[k], perm[j]
		}
		return append(dst, perm[:f.setSize]...), nil
	}
	// Sparse regime: rejection sampling; the accepted prefix doubles as the
	// dedup set (set sizes are small, so the scan beats a per-call map).
	for len(dst)-base < f.setSize {
		x := s.rng.IntN(f.universe)
		dup := false
		for _, y := range dst[base:] {
			if y == x {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		dst = append(dst, x)
	}
	return dst, nil
}

// IndexBits is the description length of a member index.
func (f *RepFamily) IndexBits() int {
	bits := 1
	for 1<<bits < f.count {
		bits++
	}
	return bits
}

// Permutation returns a pseudorandom permutation of [0, n) derived from a
// seed. The synchronized color trial (Lemma 4.13, Appendix D.9) samples a
// permutation from a seed-describable family; a seeded Fisher–Yates shuffle
// plays that role here, with the seed as the O(log n)-bit description.
func Permutation(n int, seed uint64) []int {
	rng := rand.New(rand.NewPCG(seed, seed^0xda942042e4dd58b5))
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	return perm
}
