package experiments

import (
	"math"
	"sync"

	"clustercolor/internal/cluster"
	"clustercolor/internal/graph"
	"clustercolor/internal/network"
)

// Instance caching across E-table rows. The battery builds the same GNP
// graph and the same expansion over and over — E12 alone expands one graph
// three times (ours + two baselines), and E15/E16 generate identical
// G(n, 4/n) instances — so instances are memoized for the life of the
// process, keyed by exactly the parameters generation is a pure function of:
// (kind, params, seed). Graphs and expansion templates are immutable once
// built (all mutable run state lives in the cost model, which every consumer
// gets fresh via CG.WithCost), so sharing across rows, tables, and the
// parallel runner is safe; a racy double-build can only waste one duplicate
// construction, never change results.

// gnpKey identifies one G(n, p) instance.
type gnpKey struct {
	n     int
	pBits uint64
	seed  uint64
}

var gnpCache sync.Map // gnpKey → *graph.Graph

// cachedGNP returns the G(n, p) graph generated from seed, building it at
// most once per process.
func cachedGNP(n int, p float64, seed uint64) (*graph.Graph, error) {
	key := gnpKey{n, math.Float64bits(p), seed}
	if g, ok := gnpCache.Load(key); ok {
		return g.(*graph.Graph), nil
	}
	g, err := graph.GNP(n, p, graph.NewRand(seed))
	if err != nil {
		return nil, err
	}
	shared, _ := gnpCache.LoadOrStore(key, g)
	return shared.(*graph.Graph), nil
}

// cgKey identifies one expansion template: the concrete cluster graph (by
// identity — cachedGNP makes repeated rows share pointers) plus the
// expansion parameters. Bandwidth is excluded: it only parameterizes the
// cost model, which is rebound per consumer.
type cgKey struct {
	h    *graph.Graph
	topo graph.ClusterTopology
	size int
	seed uint64
}

var cgCache sync.Map // cgKey → *cluster.CG template (its cost model is never charged)

// buildCG is the shared instance constructor. The expansion and support-tree
// construction are memoized per (h, topo, size, seed); every call returns a
// CG bound to a fresh cost model, so concurrent rows never share charge
// state.
func buildCG(h *graph.Graph, topo graph.ClusterTopology, size int, bw int, seed uint64) (*cluster.CG, error) {
	if bw <= 0 {
		bw = 48
	}
	cost, err := network.NewCostModel(bw)
	if err != nil {
		return nil, err
	}
	key := cgKey{h, topo, size, seed}
	if t, ok := cgCache.Load(key); ok {
		return t.(*cluster.CG).WithCost(cost), nil
	}
	exp, err := graph.Expand(h, graph.ExpandSpec{Topology: topo, MachinesPerCluster: size}, graph.NewRand(seed))
	if err != nil {
		return nil, err
	}
	templateCost, err := network.NewCostModel(bw)
	if err != nil {
		return nil, err
	}
	template, err := cluster.New(h, exp, templateCost)
	if err != nil {
		return nil, err
	}
	shared, _ := cgCache.LoadOrStore(key, template)
	return shared.(*cluster.CG).WithCost(cost), nil
}
