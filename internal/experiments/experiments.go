// Package experiments regenerates the paper's quantitative claims as tables
// (see DESIGN.md §4 for the experiment index E1–E15). Each experiment
// returns a Table whose shape — growth rates, who wins, concentration — is
// the reproduction target; EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"math"
	"strings"

	"clustercolor/internal/acd"
	"clustercolor/internal/coloring"
	"clustercolor/internal/core"
	"clustercolor/internal/fingerprint"
	"clustercolor/internal/graph"
)

// Table is one regenerated table or figure series.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	// Notes records interpretation caveats (scaled constants, fallbacks).
	Notes string
}

// Render prints the table in a fixed-width layout.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&sb, "note: %s\n", t.Notes)
	}
	return sb.String()
}

// CSV renders the table as RFC-4180-ish CSV (id/title as a comment line).
func (t *Table) CSV() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s: %s\n", t.ID, t.Title)
	writeCSVRow(&sb, t.Header)
	for _, row := range t.Rows {
		writeCSVRow(&sb, row)
	}
	return sb.String()
}

func writeCSVRow(sb *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			sb.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			fmt.Fprintf(sb, "%q", c)
		} else {
			sb.WriteString(c)
		}
	}
	sb.WriteByte('\n')
}

func f1(x float64) string  { return fmt.Sprintf("%.1f", x) }
func f3(x float64) string  { return fmt.Sprintf("%.3f", x) }
func d(x int) string       { return fmt.Sprintf("%d", x) }
func d64(x int64) string   { return fmt.Sprintf("%d", x) }
func logstar(n int) string { return fmt.Sprintf("%d", logStar(n)) }

func logStar(n int) int {
	k := 0
	x := float64(n)
	for x > 1 {
		x = math.Log2(x)
		k++
	}
	return k
}

// E1HighDegreeRounds measures Theorem 1.2's shape: on planted high-degree
// instances, stage rounds should grow like log* n (i.e. stay nearly flat)
// while n grows geometrically.
func E1HighDegreeRounds(sizes []int, seed uint64) (*Table, error) {
	t := &Table{
		ID:     "E1",
		Title:  "Theorem 1.2 — rounds vs n, high-degree regime",
		Header: []string{"n", "Delta", "rounds", "fallbackRounds", "stageRounds", "log*n", "path"},
		Notes:  "stageRounds = rounds − fallback; Theorem 1.2 predicts O(d·log* n) growth (near-flat)",
	}
	rows, err := forEach(len(sizes), func(i int) ([]string, error) {
		cliqueSize := sizes[i]
		h, _, err := graph.PlantedACD(graph.PlantedACDSpec{
			NumCliques:     3,
			CliqueSize:     cliqueSize,
			DropFraction:   0.04,
			ExternalDegree: 3,
			SparseN:        cliqueSize,
			SparseP:        0.1,
		}, graph.NewRand(seed))
		if err != nil {
			return nil, err
		}
		cg, err := buildCG(h, graph.TopologySingleton, 1, 48, seed+1)
		if err != nil {
			return nil, err
		}
		p := core.DefaultParams(h.N())
		p.Seed = seed + 2
		p.DeltaLow = 20
		_, stats, err := core.Color(cg, p)
		if err != nil {
			return nil, err
		}
		return []string{
			d(h.N()), d(stats.Delta), d64(stats.Rounds), d64(stats.FallbackRounds),
			d64(stats.Rounds - stats.FallbackRounds), logstar(h.N()), stats.Path,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// E2LowDegreeRounds measures Theorem 1.1's shape on sparse G(n,p).
func E2LowDegreeRounds(sizes []int, seed uint64) (*Table, error) {
	t := &Table{
		ID:     "E2",
		Title:  "Theorem 1.1 — rounds vs n, low-degree regime",
		Header: []string{"n", "Delta", "rounds", "fallbackRounds", "path"},
		Notes:  "Theorem 1.1 predicts O(d·polyloglog n) growth",
	}
	rows, err := forEach(len(sizes), func(i int) ([]string, error) {
		n := sizes[i]
		h, err := cachedGNP(n, 6.0/float64(n), seed)
		if err != nil {
			return nil, err
		}
		cg, err := buildCG(h, graph.TopologySingleton, 1, 48, seed+1)
		if err != nil {
			return nil, err
		}
		p := core.DefaultParams(n)
		p.Seed = seed + 2
		_, stats, err := core.Color(cg, p)
		if err != nil {
			return nil, err
		}
		return []string{
			d(n), d(stats.Delta), d64(stats.Rounds), d64(stats.FallbackRounds), stats.Path,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// E3FingerprintAccuracy measures Lemma 5.2: relative estimation error vs
// trial count for fixed true counts.
func E3FingerprintAccuracy(trialCounts []int, dTrue int, reps int, seed uint64) (*Table, error) {
	t := &Table{
		ID:     "E3",
		Title:  fmt.Sprintf("Lemma 5.2 — fingerprint accuracy, d=%d", dTrue),
		Header: []string{"trials", "lemmaMeanRelErr", "lemmaP95", "harmonicMeanRelErr", "harmonicP95", "predicted≈1.1/sqrt(t)"},
		Notes:  "lemma = the literal Lemma 5.2 threshold statistic (|d−d̂| ≤ ξd w.p. 1−6·exp(−ξ²t/200)); harmonic = the production Sketch.Estimate, whose error the prediction column tracks",
	}
	rows, err := forEach(len(trialCounts), func(i int) ([]string, error) {
		trials := trialCounts[i]
		rng := graph.NewRand(rowSeed(seed, i))
		var est fingerprint.Estimator
		lemmaErrs := make([]float64, 0, reps)
		harmErrs := make([]float64, 0, reps)
		for r := 0; r < reps; r++ {
			s := fingerprint.NewSketch(trials)
			for j := 0; j < dTrue; j++ {
				if err := s.AddSamples(fingerprint.NewSamples(trials, rng)); err != nil {
					return nil, err
				}
			}
			lemmaErrs = append(lemmaErrs, math.Abs(est.EstimateThreshold(s)-float64(dTrue))/float64(dTrue))
			harmErrs = append(harmErrs, math.Abs(est.Estimate(s)-float64(dTrue))/float64(dTrue))
		}
		lemmaMean, lemmaP95 := meanP95(lemmaErrs)
		harmMean, harmP95 := meanP95(harmErrs)
		return []string{
			d(trials), f3(lemmaMean), f3(lemmaP95), f3(harmMean), f3(harmP95), f3(1.1 / math.Sqrt(float64(trials))),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

func meanP95(xs []float64) (mean, p95 float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	sorted := append([]float64(nil), xs...)
	for i := range sorted {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] < sorted[i] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	idx := int(0.95 * float64(len(sorted)-1))
	return sum / float64(len(xs)), sorted[idx]
}

// E4FingerprintEncoding measures Lemmas 5.5–5.6: encoded size vs t and d.
func E4FingerprintEncoding(trialCounts, dValues []int, seed uint64) (*Table, error) {
	t := &Table{
		ID:     "E4",
		Title:  "Lemmas 5.5–5.6 — deviation-encoded sketch size",
		Header: []string{"trials", "d", "bits", "bits/trial", "naiveBits"},
		Notes:  "encoding is O(t + log log d); naive = t·⌈log₂ maxY⌉",
	}
	// Rows are the (trials, d) grid flattened in row-major order.
	rows, err := forEach(len(trialCounts)*len(dValues), func(i int) ([]string, error) {
		trials := trialCounts[i/len(dValues)]
		dv := dValues[i%len(dValues)]
		rng := graph.NewRand(rowSeed(seed, i))
		s := fingerprint.NewSketch(trials)
		for j := 0; j < dv; j++ {
			if err := s.AddSamples(fingerprint.NewSamples(trials, rng)); err != nil {
				return nil, err
			}
		}
		bits := s.EncodedBits()
		maxY := 1
		for _, y := range s {
			if int(y) > maxY {
				maxY = int(y)
			}
		}
		naive := trials * (intLog2(maxY) + 1)
		return []string{
			d(trials), d(dv), d(bits), f1(float64(bits) / float64(trials)), d(naive),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

func intLog2(x int) int {
	k := 0
	for 1<<k < x {
		k++
	}
	return k
}

// E5ACDQuality measures Proposition 4.3 / Lemma 5.8 on planted instances.
func E5ACDQuality(cliqueSizes []int, seed uint64) (*Table, error) {
	t := &Table{
		ID:     "E5",
		Title:  "Proposition 4.3 — distributed ACD quality on planted instances",
		Header: []string{"n", "plantedCliques", "foundCliques", "violFrac", "rounds"},
		Notes:  "violFrac = members missing the (1−ε)|K| in-degree bound (Definition 4.2)",
	}
	rows, err := forEach(len(cliqueSizes), func(i int) ([]string, error) {
		cs := cliqueSizes[i]
		h, _, err := graph.PlantedACD(graph.PlantedACDSpec{
			NumCliques:     3,
			CliqueSize:     cs,
			DropFraction:   0.03,
			ExternalDegree: 2,
			SparseN:        cs,
			SparseP:        0.08,
		}, graph.NewRand(seed))
		if err != nil {
			return nil, err
		}
		cg, err := buildCG(h, graph.TopologyStar, 2, 48, seed+1)
		if err != nil {
			return nil, err
		}
		dec, err := acd.Compute(cg, 0.3, graph.NewRand(seed+2))
		if err != nil {
			return nil, err
		}
		viol, err := dec.Validate(h, 0.35)
		if err != nil {
			return nil, err
		}
		return []string{
			d(h.N()), "3", d(len(dec.Cliques)), f3(viol), d64(cg.Cost().Rounds()),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// E10Bandwidth confirms the model: the largest payload of a full run stays
// within O(log n) while n grows.
func E10Bandwidth(sizes []int, seed uint64) (*Table, error) {
	t := &Table{
		ID:     "E10",
		Title:  "Model check — max per-message payload vs bandwidth",
		Header: []string{"n", "bandwidthBits", "maxPayloadBits", "pipelined?"},
		Notes:  "payloads above bandwidth are pipelined over extra rounds; the count of such primitives should be O(1) kinds",
	}
	rows, err := forEach(len(sizes), func(i int) ([]string, error) {
		n := sizes[i]
		h, err := cachedGNP(n, 10.0/float64(n), seed)
		if err != nil {
			return nil, err
		}
		bw := 2*intLog2(n) + 16
		cg, err := buildCG(h, graph.TopologySingleton, 1, bw, seed+1)
		if err != nil {
			return nil, err
		}
		p := core.DefaultParams(n)
		p.Seed = seed + 2
		_, stats, err := core.Color(cg, p)
		if err != nil {
			return nil, err
		}
		pipelined := "no"
		if stats.MaxPayloadBits > bw {
			pipelined = "yes"
		}
		return []string{d(n), d(bw), d(stats.MaxPayloadBits), pipelined}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// E11Dilation measures the linear dependence on d (Theorems 1.1–1.2): one
// fixed H expanded with increasing cluster diameters.
func E11Dilation(h *graph.Graph, clusterSizes []int, seed uint64) (*Table, error) {
	t := &Table{
		ID:     "E11",
		Title:  "Theorems 1.1–1.2 — rounds vs dilation d (path clusters)",
		Header: []string{"machines/cluster", "dilation", "rounds", "rounds/dilation"},
		Notes:  "the d-dependence is linear and unavoidable (Section 1.2)",
	}
	rows, err := forEach(len(clusterSizes), func(i int) ([]string, error) {
		size := clusterSizes[i]
		topo := graph.TopologyPath
		if size == 1 {
			topo = graph.TopologySingleton
		}
		cg, err := buildCG(h, topo, size, 48, seed+1)
		if err != nil {
			return nil, err
		}
		p := core.DefaultParams(h.N())
		p.Seed = seed + 2
		_, stats, err := core.Color(cg, p)
		if err != nil {
			return nil, err
		}
		den := stats.Dilation
		if den == 0 {
			den = 1
		}
		return []string{
			d(size), d(stats.Dilation), d64(stats.Rounds), f1(float64(stats.Rounds) / float64(den)),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

var _ = coloring.None // keep import stable across experiment files
