package experiments

import (
	"strconv"
	"strings"
	"testing"

	"clustercolor/internal/graph"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID:     "T",
		Title:  "test",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  "a note",
	}
	s := tbl.Render()
	for _, want := range []string{"== T: test ==", "333", "a note"} {
		if !strings.Contains(s, want) {
			t.Fatalf("render missing %q:\n%s", want, s)
		}
	}
}

func cell(t *testing.T, tbl *Table, row int, col string) string {
	t.Helper()
	for i, h := range tbl.Header {
		if h == col {
			return tbl.Rows[row][i]
		}
	}
	t.Fatalf("column %q not in %v", col, tbl.Header)
	return ""
}

func cellInt(t *testing.T, tbl *Table, row int, col string) int {
	t.Helper()
	v, err := strconv.Atoi(cell(t, tbl, row, col))
	if err != nil {
		t.Fatalf("cell %q not an int: %v", col, err)
	}
	return v
}

func cellFloat(t *testing.T, tbl *Table, row int, col string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell(t, tbl, row, col), 64)
	if err != nil {
		t.Fatalf("cell %q not a float: %v", col, err)
	}
	return v
}

func TestE1ShapeSublinearGrowth(t *testing.T) {
	tbl, err := E1HighDegreeRounds([]int{30, 90}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	n0 := cellInt(t, tbl, 0, "n")
	n1 := cellInt(t, tbl, 1, "n")
	s0 := cellInt(t, tbl, 0, "stageRounds")
	s1 := cellInt(t, tbl, 1, "stageRounds")
	// Theorem 1.2 shape: stage rounds must grow far slower than n.
	if float64(s1)/float64(s0) > 0.8*float64(n1)/float64(n0) {
		t.Fatalf("stage rounds grew near-linearly: n %d→%d, rounds %d→%d", n0, n1, s0, s1)
	}
}

func TestE2Runs(t *testing.T) {
	tbl, err := E2LowDegreeRounds([]int{150, 300}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tbl.Rows {
		if cell(t, tbl, i, "path") != "low-degree" {
			t.Fatalf("row %d ran %s path", i, cell(t, tbl, i, "path"))
		}
	}
}

func TestE3ErrorDecreasesWithTrials(t *testing.T) {
	tbl, err := E3FingerprintAccuracy([]int{64, 1024}, 300, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"lemmaMeanRelErr", "harmonicMeanRelErr"} {
		if cellFloat(t, tbl, 1, col) >= cellFloat(t, tbl, 0, col) {
			t.Fatalf("%s did not decrease with trials:\n%s", col, tbl.Render())
		}
	}
	// The production estimator extracts strictly more information from the
	// same sketch than the proof's threshold statistic.
	if cellFloat(t, tbl, 1, "harmonicMeanRelErr") >= cellFloat(t, tbl, 1, "lemmaMeanRelErr") {
		t.Fatalf("harmonic estimator not more accurate than the lemma statistic:\n%s", tbl.Render())
	}
}

func TestE4EncodingBeatsNaive(t *testing.T) {
	tbl, err := E4FingerprintEncoding([]int{256}, []int{65536}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if cellInt(t, tbl, 0, "bits") >= cellInt(t, tbl, 0, "naiveBits") {
		t.Fatalf("deviation encoding not smaller than naive:\n%s", tbl.Render())
	}
}

func TestE5FindsPlantedCliques(t *testing.T) {
	tbl, err := E5ACDQuality([]int{40}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if cellInt(t, tbl, 0, "foundCliques") != 3 {
		t.Fatalf("found %s cliques, want 3", cell(t, tbl, 0, "foundCliques"))
	}
}

func TestE6ReuseScalesWithDelta(t *testing.T) {
	tbl, err := E6SlackGeneration([]int{50, 400}, 13)
	if err != nil {
		t.Fatal(err)
	}
	r0 := cellFloat(t, tbl, 0, "reuse/Delta")
	r1 := cellFloat(t, tbl, 1, "reuse/Delta")
	if r1 < r0/4 || r1 == 0 {
		t.Fatalf("reuse/Delta collapsed: %.3f → %.3f", r0, r1)
	}
}

func TestE7MatchingGrowsWithAntiDegree(t *testing.T) {
	tbl, err := E7CabalMatching(60, []int{0, 10}, 15)
	if err != nil {
		t.Fatal(err)
	}
	if cellInt(t, tbl, 0, "matchedPairs") != 0 {
		t.Fatal("matched pairs in a complete clique")
	}
	if cellInt(t, tbl, 1, "matchedPairs") == 0 {
		t.Fatal("no pairs with 10 planted anti-edges")
	}
}

func TestE8AllPutAsideColored(t *testing.T) {
	tbl, err := E8PutAside([]int{40, 80}, 3, 17)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tbl.Rows {
		if cellInt(t, tbl, i, "uncolored") != 0 {
			t.Fatalf("row %d left vertices uncolored:\n%s", i, tbl.Render())
		}
	}
}

func TestE9LeftoverBounded(t *testing.T) {
	tbl, err := E9SCT(50, []int{2, 8}, 19)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tbl.Rows {
		if lf := cellInt(t, tbl, i, "leftover"); lf > 30 {
			t.Fatalf("row %d leftover %d too large:\n%s", i, lf, tbl.Render())
		}
	}
}

func TestE10PayloadBounded(t *testing.T) {
	tbl, err := E10Bandwidth([]int{150}, 21)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 {
		t.Fatal("missing row")
	}
}

func TestE11RoundsGrowWithDilation(t *testing.T) {
	h := graph.MustGNP(60, 0.12, graph.NewRand(23))
	tbl, err := E11Dilation(h, []int{1, 8}, 23)
	if err != nil {
		t.Fatal(err)
	}
	if cellInt(t, tbl, 1, "rounds") <= cellInt(t, tbl, 0, "rounds") {
		t.Fatalf("rounds did not grow with dilation:\n%s", tbl.Render())
	}
}

func TestE12OursCompetitive(t *testing.T) {
	tbl, err := E12Baselines([]int{300}, 25)
	if err != nil {
		t.Fatal(err)
	}
	// All three must have completed (rows exist with positive rounds).
	if cellInt(t, tbl, 0, "lubyRounds") <= 0 || cellInt(t, tbl, 0, "psRounds") <= 0 {
		t.Fatalf("baseline failed to run:\n%s", tbl.Render())
	}
}

func TestE13ShrinkFactorsBelowOne(t *testing.T) {
	tbl, err := E13TryColor(300, 5, 27)
	if err != nil {
		t.Fatal(err)
	}
	if cellFloat(t, tbl, 0, "shrinkFactor") >= 1.0 {
		t.Fatalf("first round made no progress:\n%s", tbl.Render())
	}
}

func TestE14QueriesMatchBruteForce(t *testing.T) {
	tbl, err := E14PaletteQuery(30, 20, 29)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tbl.Rows {
		if cell(t, tbl, i, "match") != "yes" {
			t.Fatalf("query mismatch:\n%s", tbl.Render())
		}
	}
}

func TestE15ProperDistance2(t *testing.T) {
	tbl, err := E15Distance2([]int{80}, 31)
	if err != nil {
		t.Fatal(err)
	}
	if cell(t, tbl, 0, "proper2") != "yes" {
		t.Fatalf("improper distance-2 coloring:\n%s", tbl.Render())
	}
}

func TestAllRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full battery in short mode")
	}
	tables, err := All(33)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 18 {
		t.Fatalf("got %d tables, want 18", len(tables))
	}
	for _, tbl := range tables {
		if len(tbl.Rows) == 0 {
			t.Fatalf("table %s empty", tbl.ID)
		}
	}
}

func TestE16VirtualOverheadEqualsCongestion(t *testing.T) {
	tbl, err := E16VirtualDistance2([]int{100}, 35)
	if err != nil {
		t.Fatal(err)
	}
	if got := cellFloat(t, tbl, 0, "ratio"); got != 2.0 {
		t.Fatalf("virtual/plain round ratio = %v, want exactly the congestion 2:\n%s", got, tbl.Render())
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{
		ID:     "X",
		Title:  "csv test",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "two, with comma"}},
	}
	got := tbl.CSV()
	want := "# X: csv test\na,b\n1,\"two, with comma\"\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestE17LinialTrajectory(t *testing.T) {
	tbl, err := E17Linial(1500, 2.0, 37)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 3 {
		t.Fatalf("trajectory too short:\n%s", tbl.Render())
	}
	for i := range tbl.Rows {
		if cell(t, tbl, i, "proper") != "yes" {
			t.Fatalf("improper step:\n%s", tbl.Render())
		}
	}
	first := cellInt(t, tbl, 0, "colors")
	mid := cellInt(t, tbl, 1, "colors")
	if mid >= first {
		t.Fatalf("first reduction made no progress:\n%s", tbl.Render())
	}
}
