package experiments

import (
	"fmt"
	"math/bits"

	"clustercolor/internal/coloring"
	"clustercolor/internal/core"
	"clustercolor/internal/fingerprint"
	"clustercolor/internal/graph"
	"clustercolor/internal/matching"
	"clustercolor/internal/putaside"
	"clustercolor/internal/trials"
)

// The ablations quantify the design choices DESIGN.md calls out: each table
// removes or replaces one mechanism and reports what it costs.

// A1Encoding compares the deviation encoding of Lemma 5.6 against the naive
// fixed-width encoding in the rounds it implies at Θ(log n) bandwidth.
func A1Encoding(trialCounts []int, dTrue int, bandwidth int, seed uint64) (*Table, error) {
	t := &Table{
		ID:     "A1",
		Title:  "Ablation — deviation encoding vs naive fixed-width (Lemma 5.6)",
		Header: []string{"trials", "devBits", "naiveBits", "devRounds", "naiveRounds", "saving"},
		Notes:  fmt.Sprintf("rounds = ⌈bits/%d⌉ per hop; the saving is what makes O(ξ⁻²)-round waves possible", bandwidth),
	}
	rows, err := forEach(len(trialCounts), func(i int) ([]string, error) {
		trials := trialCounts[i]
		rng := graph.NewRand(rowSeed(seed, i))
		s := fingerprint.NewSketch(trials)
		for j := 0; j < dTrue; j++ {
			if err := s.AddSamples(fingerprint.NewSamples(trials, rng)); err != nil {
				return nil, err
			}
		}
		dev := s.EncodedBits()
		maxY := 1
		for _, y := range s {
			if int(y) > maxY {
				maxY = int(y)
			}
		}
		naive := trials * (intLog2(maxY) + 1)
		devR := (dev + bandwidth - 1) / bandwidth
		naiveR := (naive + bandwidth - 1) / bandwidth
		return []string{
			d(trials), d(dev), d(naive), d(devR), d(naiveR),
			fmt.Sprintf("%.1fx", float64(naiveR)/float64(devR)),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// A2CabalMatching compares the sampling matching alone against sampling
// plus the FingerprintMatching backup in the cabal regime (few anti-edges).
func A2CabalMatching(n, plantedPairs int, seeds int, seed uint64) (*Table, error) {
	t := &Table{
		ID:     "A2",
		Title:  fmt.Sprintf("Ablation — cabal matching: sampling vs +fingerprint backup (n=%d, %d anti-pairs)", n, plantedPairs),
		Header: []string{"variant", "meanRepeats", "runs≥half"},
		Notes:  "in cabals (a_K = O(log n)) sampling alone under-produces; Proposition 4.15's backup closes the gap",
	}
	build := func() (*graph.Graph, error) {
		b := graph.NewBuilder(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				anti := v == u+1 && u%2 == 0 && u/2 < plantedPairs
				if !anti {
					if err := b.AddEdge(u, v); err != nil {
						return nil, err
					}
				}
			}
		}
		return b.Build(), nil
	}
	members := make([]int, n)
	for i := range members {
		members[i] = i
	}
	for _, withBackup := range []bool{false, true} {
		total := 0
		good := 0
		for s := 0; s < seeds; s++ {
			h, err := build()
			if err != nil {
				return nil, err
			}
			cg, err := buildCG(h, graph.TopologySingleton, 1, 48, seed+uint64(s))
			if err != nil {
				return nil, err
			}
			col := coloring.New(h.N(), h.MaxDegree())
			rng := graph.NewRand(seed + 100 + uint64(s))
			m, err := matching.Sampling(cg, col, matching.SamplingOptions{
				Phase:   "a2",
				Members: members,
				Rounds:  8,
			}, rng)
			if err != nil {
				return nil, err
			}
			if withBackup && m < plantedPairs {
				var uncolored []int
				for _, v := range members {
					if !col.IsColored(v) {
						uncolored = append(uncolored, v)
					}
				}
				pairs, err := matching.FingerprintMatching(cg, matching.FingerprintOptions{
					Phase:   "a2fp",
					Members: uncolored,
					Trials:  10 * bits.Len(uint(n)),
				}, rng)
				if err != nil {
					return nil, err
				}
				colored, err := matching.ColorPairs(cg, col, pairs, 0, "a2cp", rng)
				if err != nil {
					return nil, err
				}
				m += colored
			}
			total += m
			if 2*m >= plantedPairs {
				good++
			}
		}
		name := "sampling-only"
		if withBackup {
			name = "sampling+fingerprint"
		}
		t.Rows = append(t.Rows, []string{
			name, f1(float64(total) / float64(seeds)), fmt.Sprintf("%d/%d", good, seeds),
		})
	}
	return t, nil
}

// A3PutAside compares the donation scheme against a fallback-only variant
// (exact palette lookups) in rounds, on the Section 2.4 setting. The
// donation advantage is the Figure 2 gap — O(log n / bandwidth) vs
// Ω(Δ/bandwidth) — so it emerges once Δ dwarfs the link budget.
func A3PutAside(cliqueSize, r, bandwidth int, seed uint64) (*Table, error) {
	t := &Table{
		ID:     "A3",
		Title:  fmt.Sprintf("Ablation — put-aside: donation vs exact-palette fallback (|K|=%d, r=%d, B=%d)", cliqueSize, r, bandwidth),
		Header: []string{"variant", "viaDonation", "viaFallback", "rounds"},
		Notes:  "fallback pays the Figure 2 price Ω(Δ/B) per wave; donation stays O(log n / B) = O(1)",
	}
	for _, donationOn := range []bool{true, false} {
		h, blocks, err := graph.PlantedCabals(graph.CabalSpec{NumCliques: 2, CliqueSize: cliqueSize, External: 3}, graph.NewRand(seed))
		if err != nil {
			return nil, err
		}
		cg, err := buildCG(h, graph.TopologySingleton, 1, bandwidth, seed+1)
		if err != nil {
			return nil, err
		}
		cabals := make([][]int, 2)
		for v := 0; v < h.N(); v++ {
			cabals[blocks[v]] = append(cabals[blocks[v]], v)
		}
		col := coloring.New(h.N(), h.MaxDegree())
		rng := graph.NewRand(seed + 2)
		ps, err := putaside.ComputePutAside(cg, col, putaside.ComputeOptions{Phase: "a3", Cabals: cabals, R: r}, rng)
		if err != nil {
			return nil, err
		}
		skip := map[int]bool{}
		for _, p := range ps {
			for _, v := range p {
				skip[v] = true
			}
		}
		for v := 0; v < h.N(); v++ {
			if skip[v] {
				continue
			}
			pal := coloring.Palette(h, col, v)
			if len(pal) == 0 {
				return nil, fmt.Errorf("experiments: a3 preparation stuck")
			}
			if err := col.Set(v, pal[0]); err != nil {
				return nil, err
			}
		}
		before := cg.Cost().Rounds()
		don, fb := 0, 0
		lg := bits.Len(uint(h.N()))
		for i, members := range cabals {
			sampleTries := 4 * lg
			if !donationOn {
				sampleTries = 1 // cripple donation: one try, then fallback
			}
			opts := putaside.DonateOptions{
				Phase:              "a3/donate",
				Cabal:              members,
				PutAside:           ps[i],
				FreeColorThreshold: 1 << 20, // never take the free-color shortcut
				BlockSize:          8,
				SampleTries:        sampleTries,
			}
			if !donationOn {
				// Forbid every donor: the scheme finds none and falls back.
				opts.ForbiddenDonors = func(v int) bool { return true }
			}
			res, err := putaside.ColorPutAside(cg, col, opts, rng)
			if err != nil {
				return nil, err
			}
			don += res.ViaDonation
			fb += res.ViaFallback
			if res.Uncolored != 0 {
				return nil, fmt.Errorf("experiments: a3 left %d uncolored", res.Uncolored)
			}
		}
		name := "donation"
		if !donationOn {
			name = "fallback-only"
		}
		t.Rows = append(t.Rows, []string{name, d(don), d(fb), d64(cg.Cost().Rounds() - before)})
	}
	return t, nil
}

// A4MCTGrowth compares MultiColorTrial's exponential try-growth against
// single-color trials (TryColor repeated) on a slack-1 clique — the regime
// where growth matters.
func A4MCTGrowth(cliqueSize int, seed uint64) (*Table, error) {
	t := &Table{
		ID:     "A4",
		Title:  fmt.Sprintf("Ablation — MCT exponential growth vs single trials (K_%d, slack 1)", cliqueSize),
		Header: []string{"variant", "finished", "hRounds"},
		Notes:  "single trials need Θ(log n) waves on slack-1 instances; growing tries collapse that",
	}
	run := func(mct bool) (bool, int64, error) {
		h := graph.Clique(cliqueSize)
		cg, err := buildCG(h, graph.TopologySingleton, 1, 48, seed+1)
		if err != nil {
			return false, 0, err
		}
		col := coloring.New(h.N(), h.MaxDegree())
		space := trials.RangeSpace(1, col.MaxColor())
		rng := graph.NewRand(seed + 2)
		before := cg.Cost().Rounds()
		if mct {
			left, err := trials.MultiColorTrial(cg, col, trials.MCTOptions{
				Phase:     "a4/mct",
				Space:     func(v int) []int32 { return space },
				Seed:      seed,
				MaxPhases: 2 * cliqueSize,
			}, rng)
			if err != nil {
				return false, 0, err
			}
			return left == 0, cg.Cost().Rounds() - before, nil
		}
		left, err := trials.TryColorLoop(cg, col, trials.TryColorOptions{
			Phase:      "a4/single",
			Space:      func(v int) []int32 { return space },
			Activation: 0.5,
		}, 40*cliqueSize, rng)
		if err != nil {
			return false, 0, err
		}
		return left == 0, cg.Cost().Rounds() - before, nil
	}
	for _, mct := range []bool{true, false} {
		done, rounds, err := run(mct)
		if err != nil {
			return nil, err
		}
		name := "multicolortrial"
		if !mct {
			name = "single-trials"
		}
		fin := "yes"
		if !done {
			fin = "NO"
		}
		t.Rows = append(t.Rows, []string{name, fin, d64(rounds)})
	}
	return t, nil
}

// A5ReservedFraction sweeps the reserved-color budget on a cabal-heavy
// instance, showing the trade-off Equation (2) fixes: too few reserved
// colors starve the final MCT, too many starve the earlier stages.
func A5ReservedFraction(fracs []float64, seed uint64) (*Table, error) {
	t := &Table{
		ID:     "A5",
		Title:  "Ablation — reserved-color budget (Equation 2)",
		Header: []string{"capFrac", "rounds", "fallbackRounds", "fallbackColored"},
		Notes:  "the reserved prefix must cover put-aside demand without starving non-reserved stages",
	}
	h, _, err := graph.PlantedCabals(graph.CabalSpec{NumCliques: 3, CliqueSize: 50, External: 2}, graph.NewRand(seed))
	if err != nil {
		return nil, err
	}
	rows, err := forEach(len(fracs), func(i int) ([]string, error) {
		frac := fracs[i]
		cg, err := buildCG(h, graph.TopologySingleton, 1, 48, seed+1)
		if err != nil {
			return nil, err
		}
		p := core.DefaultParams(h.N())
		p.Seed = seed + 2
		p.ReservedCapFrac = frac
		p.DeltaLow = 20
		_, stats, err := core.Color(cg, p)
		if err != nil {
			return nil, err
		}
		return []string{
			f3(frac), d64(stats.Rounds), d64(stats.FallbackRounds), d(stats.FallbackColored),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// Ablations runs the full ablation battery.
func Ablations(seed uint64) ([]*Table, error) {
	type job func() (*Table, error)
	jobs := []job{
		func() (*Table, error) { return A1Encoding([]int{64, 256, 1024}, 5000, 48, seed) },
		func() (*Table, error) { return A2CabalMatching(70, 8, 5, seed) },
		func() (*Table, error) { return A3PutAside(400, 4, 14, seed) },
		func() (*Table, error) { return A4MCTGrowth(40, seed) },
		func() (*Table, error) { return A5ReservedFraction([]float64{0.05, 0.2, 0.5}, seed) },
	}
	return forEach(len(jobs), func(i int) (*Table, error) { return jobs[i]() })
}
