package experiments

import (
	"fmt"
	"math/bits"

	"clustercolor/internal/baseline"
	"clustercolor/internal/cluster"
	"clustercolor/internal/coloring"
	"clustercolor/internal/core"
	"clustercolor/internal/graph"
	"clustercolor/internal/matching"
	"clustercolor/internal/putaside"
	"clustercolor/internal/sct"
	"clustercolor/internal/slackgen"
	"clustercolor/internal/trials"
)

// E6SlackGeneration measures Proposition 4.5: slack of sparse vertices and
// reuse slack of dense vertices after one slack-generation wave, vs Δ.
func E6SlackGeneration(deltas []int, seed uint64) (*Table, error) {
	t := &Table{
		ID:     "E6",
		Title:  "Proposition 4.5 — slack generated vs Δ (star centers)",
		Header: []string{"Delta", "reuseSlack", "reuse/Delta"},
		Notes:  "sparse vertices get Ω(Δ) slack: reuse/Delta should be a stable constant",
	}
	rows, err := forEach(len(deltas), func(i int) ([]string, error) {
		delta := deltas[i]
		h := graph.Star(delta + 1)
		cg, err := buildCG(h, graph.TopologySingleton, 1, 48, seed+1)
		if err != nil {
			return nil, err
		}
		col := coloring.New(h.N(), h.MaxDegree())
		if _, err := slackgen.Run(cg, col, slackgen.Options{Activation: 0.5}, graph.NewRand(seed+2)); err != nil {
			return nil, err
		}
		reuse := coloring.ReuseSlack(h, col, 0)
		return []string{
			d(delta), d(reuse), f3(float64(reuse) / float64(delta)),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// E7CabalMatching measures Lemma 6.2 / Proposition 4.15: fingerprint
// matching size vs planted anti-degree in near-cliques.
func E7CabalMatching(n int, plantedPairs []int, seed uint64) (*Table, error) {
	t := &Table{
		ID:     "E7",
		Title:  fmt.Sprintf("Lemma 6.2 — fingerprint matching in %d-vertex cabals", n),
		Header: []string{"plantedAntiPairs", "matchedPairs", "coveredFrac"},
		Notes:  "Lemma 6.2 guarantees τ·â_K/(4ε) pairs; coverage should grow with planted anti-degree",
	}
	k := 12 * bits.Len(uint(n))
	rows, err := forEach(len(plantedPairs), func(i int) ([]string, error) {
		planted := plantedPairs[i]
		b := graph.NewBuilder(n)
		isAnti := func(u, v int) bool {
			if u > v {
				u, v = v, u
			}
			return v == u+1 && u%2 == 0 && u/2 < planted
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if !isAnti(u, v) {
					if err := b.AddEdge(u, v); err != nil {
						return nil, err
					}
				}
			}
		}
		h := b.Build()
		cg, err := buildCG(h, graph.TopologySingleton, 1, 48, seed+1)
		if err != nil {
			return nil, err
		}
		members := make([]int, n)
		for i := range members {
			members[i] = i
		}
		pairs, err := matching.FingerprintMatching(cg, matching.FingerprintOptions{
			Phase:   "e7",
			Members: members,
			Trials:  k,
		}, graph.NewRand(seed+3))
		if err != nil {
			return nil, err
		}
		frac := 0.0
		if planted > 0 {
			frac = float64(len(pairs)) / float64(planted)
		}
		return []string{d(planted), d(len(pairs)), f3(frac)}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// E8PutAside measures Proposition 4.19 in the Section 2.4 setting: put-aside
// coloring outcomes and round cost for growing clique sizes.
func E8PutAside(cliqueSizes []int, r int, seed uint64) (*Table, error) {
	t := &Table{
		ID:     "E8",
		Title:  "Proposition 4.19 — put-aside coloring (Section 2.4 setting)",
		Header: []string{"cliqueSize", "r", "viaFree", "viaDonation", "viaFallback", "uncolored", "rounds"},
		Notes:  "O(1)-round claim: rounds should not grow with clique size; fallback should be rare",
	}
	rows, err := forEach(len(cliqueSizes), func(row int) ([]string, error) {
		s := cliqueSizes[row]
		h, blocks, err := graph.PlantedCabals(graph.CabalSpec{NumCliques: 3, CliqueSize: s, External: 3}, graph.NewRand(seed))
		if err != nil {
			return nil, err
		}
		cg, err := buildCG(h, graph.TopologySingleton, 1, 48, seed+1)
		if err != nil {
			return nil, err
		}
		cabals := make([][]int, 3)
		for v := 0; v < h.N(); v++ {
			cabals[blocks[v]] = append(cabals[blocks[v]], v)
		}
		col := coloring.New(h.N(), h.MaxDegree())
		rng := graph.NewRand(seed + 2)
		ps, err := putaside.ComputePutAside(cg, col, putaside.ComputeOptions{Phase: "e8", Cabals: cabals, R: r}, rng)
		if err != nil {
			return nil, err
		}
		skip := map[int]bool{}
		for _, p := range ps {
			for _, v := range p {
				skip[v] = true
			}
		}
		for v := 0; v < h.N(); v++ {
			if skip[v] {
				continue
			}
			pal := coloring.Palette(h, col, v)
			if len(pal) == 0 {
				return nil, fmt.Errorf("experiments: e8 preparation stuck at %d", v)
			}
			if err := col.Set(v, pal[0]); err != nil {
				return nil, err
			}
		}
		before := cg.Cost().Rounds()
		agg := putaside.DonateResult{}
		lg := bits.Len(uint(h.N()))
		for i, members := range cabals {
			res, err := putaside.ColorPutAside(cg, col, putaside.DonateOptions{
				Phase:              "e8/donate",
				Cabal:              members,
				PutAside:           ps[i],
				FreeColorThreshold: 4 * r,
				BlockSize:          8,
				SampleTries:        4 * lg,
			}, rng)
			if err != nil {
				return nil, err
			}
			agg.ViaFreeColors += res.ViaFreeColors
			agg.ViaDonation += res.ViaDonation
			agg.ViaFallback += res.ViaFallback
			agg.Uncolored += res.Uncolored
		}
		return []string{
			d(s), d(r), d(agg.ViaFreeColors), d(agg.ViaDonation), d(agg.ViaFallback),
			d(agg.Uncolored), d64(cg.Cost().Rounds() - before),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// E9SCT measures Lemma 4.13: leftovers after a synchronized color trial vs
// external degree.
func E9SCT(cliqueSize int, externals []int, seed uint64) (*Table, error) {
	t := &Table{
		ID:     "E9",
		Title:  fmt.Sprintf("Lemma 4.13 — SCT leftovers vs external degree (|K|=%d)", cliqueSize),
		Header: []string{"extDegree", "tried", "colored", "leftover", "leftover/e_K"},
		Notes:  "Lemma 4.13: leftovers ≤ (24/α)·max{e_K, ℓ}; the ratio should stay O(1)",
	}
	rows, err := forEach(len(externals), func(i int) ([]string, error) {
		ext := externals[i]
		h, blocks, err := graph.PlantedCabals(graph.CabalSpec{NumCliques: 2, CliqueSize: cliqueSize, External: ext}, graph.NewRand(seed))
		if err != nil {
			return nil, err
		}
		cg, err := buildCG(h, graph.TopologySingleton, 1, 48, seed+1)
		if err != nil {
			return nil, err
		}
		col := coloring.New(h.N(), h.MaxDegree())
		var members []int
		for v := 0; v < h.N(); v++ {
			if blocks[v] == 0 {
				members = append(members, v)
			}
		}
		res, err := sct.Run(cg, col, sct.Options{Phase: "e9", Members: members, Participants: members}, graph.NewRand(seed+2))
		if err != nil {
			return nil, err
		}
		left := res.Tried - res.Colored
		eK := float64(2*ext) + 0.001 // sampled both ways
		return []string{
			d(ext), d(res.Tried), d(res.Colored), d(left), f3(float64(left) / eK),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// E12Baselines compares the paper's algorithm against Johansson/Luby random
// trials and FGH+24-style palette sparsification on shared workloads.
func E12Baselines(sizes []int, seed uint64) (*Table, error) {
	t := &Table{
		ID:     "E12",
		Title:  "Baselines — rounds: this paper vs Luby vs palette sparsification",
		Header: []string{"n", "Delta", "oursRounds", "lubyRounds", "psRounds", "winner"},
		Notes:  "the paper's win grows with n: Luby pays Θ(log n) palette waves, PS pays Θ(log² n) list machinery",
	}
	rows, err := forEach(len(sizes), func(i int) ([]string, error) {
		n := sizes[i]
		h, err := cachedGNP(n, 20.0/float64(n), seed)
		if err != nil {
			return nil, err
		}
		ours, err := runOurs(h, seed)
		if err != nil {
			return nil, err
		}
		luby, err := runBaseline(h, seed, func(cg clusterCG, col *coloring.Coloring) (int64, error) {
			res, err := baseline.RandomTrials(cg, col, 4*n+100, graph.NewRand(seed+5))
			if err != nil {
				return 0, err
			}
			return res.Rounds, nil
		})
		if err != nil {
			return nil, err
		}
		ps, err := runBaseline(h, seed, func(cg clusterCG, col *coloring.Coloring) (int64, error) {
			res, err := baseline.PaletteSparsification(cg, col, 2.0, 4*n+100, graph.NewRand(seed+6))
			if err != nil {
				return 0, err
			}
			return res.Rounds, nil
		})
		if err != nil {
			return nil, err
		}
		winner := "ours"
		if luby < ours && luby <= ps {
			winner = "luby"
		} else if ps < ours && ps < luby {
			winner = "ps"
		}
		return []string{
			d(n), d(h.MaxDegree()), d64(ours), d64(luby), d64(ps), winner,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// clusterCG aliases the cluster-graph handle used by baseline runners.
type clusterCG = *cluster.CG

// E13TryColor measures Lemma D.3: the uncolored-count reduction factor per
// TryColor round on slack-rich instances.
func E13TryColor(n int, rounds int, seed uint64) (*Table, error) {
	t := &Table{
		ID:     "E13",
		Title:  "Lemma D.3 — TryColor per-round shrink factor",
		Header: []string{"round", "uncolored", "shrinkFactor"},
		Notes:  "with constant slack fraction each round removes a constant fraction (factor < 1)",
	}
	h, err := cachedGNP(n, 12.0/float64(n), seed)
	if err != nil {
		return nil, err
	}
	cg, err := buildCG(h, graph.TopologySingleton, 1, 48, seed+1)
	if err != nil {
		return nil, err
	}
	col := coloring.New(h.N(), h.MaxDegree())
	space := trials.RangeSpace(1, col.MaxColor())
	prev := h.N()
	rng := graph.NewRand(seed + 2)
	for r := 0; r < rounds && prev > 0; r++ {
		if _, err := trials.TryColorRound(cg, col, trials.TryColorOptions{
			Phase:      "e13",
			Activation: 0.5,
			Space:      func(v int) []int32 { return space },
		}, rng); err != nil {
			return nil, err
		}
		cur := h.N() - col.DomSize()
		factor := 0.0
		if prev > 0 {
			factor = float64(cur) / float64(prev)
		}
		t.Rows = append(t.Rows, []string{d(r + 1), d(cur), f3(factor)})
		prev = cur
	}
	return t, nil
}

// E14PaletteQuery checks Lemma 4.8: clique-palette queries agree with brute
// force and cost O(1) rounds per wave.
func E14PaletteQuery(cliqueSize int, colored int, seed uint64) (*Table, error) {
	t := &Table{
		ID:     "E14",
		Title:  fmt.Sprintf("Lemma 4.8 — clique palette queries (|K|=%d, %d colored)", cliqueSize, colored),
		Header: []string{"query", "result", "bruteForce", "match"},
	}
	h := graph.Clique(cliqueSize)
	cg, err := buildCG(h, graph.TopologySingleton, 1, 48, seed+1)
	if err != nil {
		return nil, err
	}
	col := coloring.New(h.N(), h.MaxDegree())
	rng := graph.NewRand(seed + 2)
	members := make([]int, cliqueSize)
	for i := range members {
		members[i] = i
	}
	for i := 0; i < colored && i < cliqueSize; i++ {
		c := int32(rng.IntN(int(col.MaxColor()))) + 1
		if coloring.Available(h, col, i, c) {
			if err := col.Set(i, c); err != nil {
				return nil, err
			}
		}
	}
	cp := coloring.BuildCliquePalette(cg, col, members)
	// Brute force.
	used := map[int32]bool{}
	for _, v := range members {
		if c := col.Get(v); c != coloring.None {
			used[c] = true
		}
	}
	bfFree := 0
	for c := int32(1); c <= col.MaxColor(); c++ {
		if !used[c] {
			bfFree++
		}
	}
	addRow := func(q, res, bf string) {
		match := "yes"
		if res != bf {
			match = "NO"
		}
		t.Rows = append(t.Rows, []string{q, res, bf, match})
	}
	addRow("|L(K)|", d(cp.FreeCount()), d(bfFree))
	half := col.MaxColor() / 2
	bfHalf := 0
	for c := int32(1); c <= half; c++ {
		if !used[c] {
			bfHalf++
		}
	}
	addRow(fmt.Sprintf("|L(K)∩[1,%d]|", half), d(cp.CountFreeInRange(1, half)), d(bfHalf))
	if cp.FreeCount() > 0 {
		got, err := cp.NthFree(1)
		if err != nil {
			return nil, err
		}
		var want int32
		for c := int32(1); c <= col.MaxColor(); c++ {
			if !used[c] {
				want = c
				break
			}
		}
		addRow("1st free color", d(int(got)), d(int(want)))
	}
	return t, nil
}

// E15Distance2 runs Corollary 1.3: distance-2 coloring via the square graph.
func E15Distance2(sizes []int, seed uint64) (*Table, error) {
	t := &Table{
		ID:     "E15",
		Title:  "Corollary 1.3 — distance-2 coloring via cluster graphs",
		Header: []string{"n", "Delta2", "colorsUsed", "rounds", "proper2"},
		Notes:  "colors ≤ Δ²+1 where Δ² = max |N²(v)|",
	}
	rows, err := forEach(len(sizes), func(i int) ([]string, error) {
		n := sizes[i]
		g, err := cachedGNP(n, 4.0/float64(n), seed)
		if err != nil {
			return nil, err
		}
		h2, err := g.Power(2)
		if err != nil {
			return nil, err
		}
		cg, err := buildCG(h2, graph.TopologySingleton, 1, 48, seed+1)
		if err != nil {
			return nil, err
		}
		p := core.DefaultParams(h2.N())
		p.Seed = seed + 2
		col, stats, err := core.Color(cg, p)
		if err != nil {
			return nil, err
		}
		proper := "yes"
		if err := coloring.VerifyComplete(h2, col); err != nil {
			proper = "NO"
		}
		return []string{
			d(n), d(h2.MaxDegree()), d(col.CountColors()), d64(stats.Rounds), proper,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

func runOurs(h *graph.Graph, seed uint64) (int64, error) {
	cg, err := buildCG(h, graph.TopologySingleton, 1, 48, seed+1)
	if err != nil {
		return 0, err
	}
	p := core.DefaultParams(h.N())
	p.Seed = seed + 2
	_, stats, err := core.Color(cg, p)
	if err != nil {
		return 0, err
	}
	return stats.Rounds, nil
}

func runBaseline(h *graph.Graph, seed uint64, run func(clusterCG, *coloring.Coloring) (int64, error)) (int64, error) {
	cg, err := buildCG(h, graph.TopologySingleton, 1, 48, seed+1)
	if err != nil {
		return 0, err
	}
	col := coloring.New(h.N(), h.MaxDegree())
	rounds, err := run(cg, col)
	if err != nil {
		return 0, err
	}
	if err := coloring.VerifyComplete(h, col); err != nil {
		return 0, err
	}
	return rounds, nil
}

// All runs the full experiment battery with modest sizes. Whole experiments
// fan out across the runner's worker pool on top of the per-row parallelism
// inside each table; the emitted tables are identical at every parallelism
// level (see SetParallelism).
func All(seed uint64) ([]*Table, error) {
	type job func() (*Table, error)
	jobs := []job{
		func() (*Table, error) { return E1HighDegreeRounds([]int{30, 60, 120}, seed) },
		func() (*Table, error) { return E2LowDegreeRounds([]int{200, 400, 800}, seed) },
		func() (*Table, error) { return E3FingerprintAccuracy([]int{64, 256, 1024}, 500, 40, seed) },
		func() (*Table, error) { return E4FingerprintEncoding([]int{64, 256}, []int{16, 1024, 65536}, seed) },
		func() (*Table, error) { return E5ACDQuality([]int{30, 60}, seed) },
		func() (*Table, error) { return E6SlackGeneration([]int{50, 100, 200, 400}, seed) },
		func() (*Table, error) { return E7CabalMatching(80, []int{0, 2, 6, 12}, seed) },
		func() (*Table, error) { return E8PutAside([]int{40, 80, 160}, 4, seed) },
		func() (*Table, error) { return E9SCT(60, []int{1, 3, 6, 10}, seed) },
		func() (*Table, error) { return E10Bandwidth([]int{200, 400}, seed) },
		func() (*Table, error) {
			h, err := cachedGNP(100, 0.1, seed)
			if err != nil {
				return nil, err
			}
			return E11Dilation(h, []int{1, 4, 8, 16}, seed)
		},
		func() (*Table, error) { return E12Baselines([]int{200, 400}, seed) },
		func() (*Table, error) { return E13TryColor(400, 8, seed) },
		func() (*Table, error) { return E14PaletteQuery(40, 25, seed) },
		func() (*Table, error) { return E15Distance2([]int{100, 200}, seed) },
		func() (*Table, error) { return E16VirtualDistance2([]int{100, 200}, seed) },
		func() (*Table, error) { return E17Linial(1500, 2.0, seed) },
		func() (*Table, error) { return E18Scenarios(300, seed) },
	}
	return forEach(len(jobs), func(i int) (*Table, error) { return jobs[i]() })
}
