package experiments

import (
	"errors"
	"fmt"
	"testing"

	"clustercolor/internal/graph"
)

// batterySubset is a cheap cross-section of the experiment battery used to
// compare parallel and sequential execution byte-for-byte.
func batterySubset(t *testing.T, seed uint64) []*Table {
	t.Helper()
	h := graph.MustGNP(60, 0.12, graph.NewRand(seed))
	runs := []func() (*Table, error){
		func() (*Table, error) { return E1HighDegreeRounds([]int{30, 60}, seed) },
		func() (*Table, error) { return E2LowDegreeRounds([]int{150, 250}, seed) },
		func() (*Table, error) { return E3FingerprintAccuracy([]int{64, 256}, 200, 10, seed) },
		func() (*Table, error) { return E4FingerprintEncoding([]int{64, 128}, []int{16, 256}, seed) },
		func() (*Table, error) { return E6SlackGeneration([]int{50, 100, 200}, seed) },
		func() (*Table, error) { return E9SCT(40, []int{1, 3, 6}, seed) },
		func() (*Table, error) { return E11Dilation(h, []int{1, 4, 8}, seed) },
		func() (*Table, error) { return A1Encoding([]int{64, 256}, 2000, 48, seed) },
	}
	out := make([]*Table, 0, len(runs))
	for _, run := range runs {
		tbl, err := run()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, tbl)
	}
	return out
}

// TestRunnerParallelMatchesSequential is the determinism contract of the
// parallel runner: for a fixed seed the rendered tables are byte-identical
// at parallelism 1 and at full parallelism.
func TestRunnerParallelMatchesSequential(t *testing.T) {
	const seed = 71
	prev := SetParallelism(1)
	defer SetParallelism(prev)
	sequential := batterySubset(t, seed)
	SetParallelism(8)
	parallel := batterySubset(t, seed)
	if len(sequential) != len(parallel) {
		t.Fatalf("table counts diverge: %d vs %d", len(sequential), len(parallel))
	}
	for i := range sequential {
		seq, par := sequential[i].Render(), parallel[i].Render()
		if seq != par {
			t.Errorf("table %s diverges between sequential and parallel runs:\n--- sequential ---\n%s--- parallel ---\n%s",
				sequential[i].ID, seq, par)
		}
		if sequential[i].CSV() != parallel[i].CSV() {
			t.Errorf("table %s CSV diverges", sequential[i].ID)
		}
	}
}

func TestSetParallelism(t *testing.T) {
	prev := SetParallelism(3)
	defer SetParallelism(prev)
	if got := Parallelism(); got != 3 {
		t.Fatalf("Parallelism = %d, want 3", got)
	}
	if got := SetParallelism(0); got != 3 {
		t.Fatalf("SetParallelism returned %d, want previous 3", got)
	}
	if got := Parallelism(); got != 1 {
		t.Fatalf("Parallelism after SetParallelism(0) = %d, want 1 (clamped)", got)
	}
}

func TestForEachOrderAndErrors(t *testing.T) {
	prev := SetParallelism(4)
	defer SetParallelism(prev)
	vals, err := forEach(100, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v != i*i {
			t.Fatalf("vals[%d] = %d, want %d", i, v, i*i)
		}
	}
	boom := errors.New("boom")
	if _, err := forEach(50, func(i int) (int, error) {
		if i%17 == 3 {
			return 0, fmt.Errorf("row %d: %w", i, boom)
		}
		return i, nil
	}); !errors.Is(err, boom) {
		t.Fatalf("forEach error = %v, want wrapped boom", err)
	}
	if vals, err := forEach(0, func(i int) (int, error) { return 0, nil }); err != nil || len(vals) != 0 {
		t.Fatalf("empty forEach = %v, %v", vals, err)
	}
}

func TestRowSeedDistinct(t *testing.T) {
	seen := map[uint64]int{}
	for _, seed := range []uint64{1, 2, 71} {
		for i := 0; i < 64; i++ {
			s := rowSeed(seed, i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("rowSeed collision: %d (previous index %d)", s, prev)
			}
			seen[s] = i
		}
	}
	if rowSeed(5, 3) != rowSeed(5, 3) {
		t.Fatal("rowSeed not deterministic")
	}
}
