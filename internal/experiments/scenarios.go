package experiments

import (
	"fmt"

	"clustercolor/internal/coloring"
	"clustercolor/internal/core"
	"clustercolor/internal/graph"
)

// E18Scenarios runs the full pipeline once on each scenario generator —
// concentrated degrees (GNP), wireless geometry, power-law hubs
// (Barabási–Albert), perfectly regular degrees, the ring-of-cliques
// density/expansion extreme, the single clique, random trees, squared
// sparse graphs, planted cabals, and planted almost-clique decompositions —
// and reports instance shape and coloring cost side by side. It is the
// cross-generator smoke sweep that keeps every -kind of cmd/colorsim
// exercised by the battery.
func E18Scenarios(n int, seed uint64) (*Table, error) {
	t := &Table{
		ID:     "E18",
		Title:  fmt.Sprintf("Scenario sweep — every generator through the full pipeline (n≈%d)", n),
		Header: []string{"kind", "n", "m", "Delta", "colors", "rounds", "path"},
		Notes:  "one pinned-seed instance per generator; colors must stay ≤ Δ+1 on every shape",
	}
	type scenario struct {
		name string
		make func() (*graph.Graph, error)
	}
	scenarios := []scenario{
		{"gnp", func() (*graph.Graph, error) {
			return cachedGNP(n, 10.0/float64(n), seed)
		}},
		{"geometric", func() (*graph.Graph, error) {
			g, _, err := graph.RandomGeometric(n, 0.06, graph.NewRand(seed))
			return g, err
		}},
		{"ba", func() (*graph.Graph, error) {
			return graph.BarabasiAlbert(n, 4, graph.NewRand(seed))
		}},
		{"regular", func() (*graph.Graph, error) {
			return graph.RandomRegular(n, 8, graph.NewRand(seed))
		}},
		{"ringcliques", func() (*graph.Graph, error) {
			return graph.RingOfCliques(n/25, 25)
		}},
		{"clique", func() (*graph.Graph, error) {
			if !graph.CliqueFits(n) {
				return nil, fmt.Errorf("experiments: clique scenario n %d exceeds the graph substrate's edge capacity", n)
			}
			return graph.Clique(n), nil
		}},
		{"tree", func() (*graph.Graph, error) {
			return graph.RandomTree(n, graph.NewRand(seed)), nil
		}},
		{"power2", func() (*graph.Graph, error) {
			g, err := cachedGNP(n, 8.0/float64(n), seed)
			if err != nil {
				return nil, err
			}
			return g.Power(2)
		}},
		{"cabal", func() (*graph.Graph, error) {
			g, _, err := graph.PlantedCabals(graph.CabalSpec{
				NumCliques: 3,
				CliqueSize: n / 6,
				External:   3,
			}, graph.NewRand(seed))
			return g, err
		}},
		{"planted", func() (*graph.Graph, error) {
			g, _, err := graph.PlantedACD(graph.PlantedACDSpec{
				NumCliques:     3,
				CliqueSize:     n / 6,
				DropFraction:   0.04,
				ExternalDegree: 3,
				SparseN:        n / 2,
				SparseP:        4.0 / float64(n),
			}, graph.NewRand(seed))
			return g, err
		}},
	}
	rows, err := forEach(len(scenarios), func(i int) ([]string, error) {
		h, err := scenarios[i].make()
		if err != nil {
			return nil, err
		}
		cg, err := buildCG(h, graph.TopologySingleton, 1, 48, rowSeed(seed, i))
		if err != nil {
			return nil, err
		}
		p := core.DefaultParams(h.N())
		p.Seed = rowSeed(seed, i) + 1
		col, stats, err := core.Color(cg, p)
		if err != nil {
			return nil, err
		}
		if err := coloring.VerifyComplete(h, col); err != nil {
			return nil, fmt.Errorf("experiments: %s coloring invalid: %w", scenarios[i].name, err)
		}
		return []string{
			scenarios[i].name, d(h.N()), d(h.M()), d(h.MaxDegree()),
			d(col.CountColors()), d64(stats.Rounds), stats.Path,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}
