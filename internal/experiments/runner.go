package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelism is the worker count used by experiment row loops and the
// battery runner. It defaults to the machine's CPU count.
var parallelism atomic.Int64

func init() {
	parallelism.Store(int64(runtime.GOMAXPROCS(0)))
}

// SetParallelism sets how many goroutines experiment row loops and the
// battery runner fan out across; n < 1 selects 1 (sequential). It returns
// the previous value. Tables are byte-identical at every parallelism level:
// each row derives its randomness from the experiment seed and its own
// index only, never from a stream shared across rows.
func SetParallelism(n int) int {
	if n < 1 {
		n = 1
	}
	return int(parallelism.Swap(int64(n)))
}

// Parallelism returns the current runner parallelism.
func Parallelism() int { return int(parallelism.Load()) }

// forEach computes f(i) for every i in [0, n) across min(Parallelism(), n)
// goroutines and returns the results in index order. Workers pull indices
// from a shared counter, so uneven row costs balance out. If any f returns
// an error, the lowest-index error is reported.
func forEach[T any](n int, f func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	p := Parallelism()
	if p > n {
		p = n
	}
	if p <= 1 {
		for i := 0; i < n; i++ {
			out[i], errs[i] = f(i)
			if errs[i] != nil {
				return nil, errs[i]
			}
		}
		return out, nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = f(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// rowSeed derives an independent PRNG seed for row i of an experiment from
// the experiment seed (a splitmix64 step), so rows can run concurrently and
// in any order while the emitted table stays identical to a sequential run.
func rowSeed(seed uint64, i int) uint64 {
	z := seed + 0x9e3779b97f4a7c15*uint64(i+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ z>>31
}
