package experiments

import (
	"clustercolor/internal/parwork"
)

// SetParallelism sets how many goroutines experiment row loops, the battery
// runner, and the coloring pipeline's per-clique stage loops fan out across;
// n < 1 selects 1 (sequential). It returns the previous value. Tables and
// colorings are byte-identical at every parallelism level: each row (and
// each clique) derives its randomness from the governing seed and its own
// index only, never from a stream shared across items. The machinery lives
// in internal/parwork so the core pipeline shares the same knob.
func SetParallelism(n int) int { return parwork.SetParallelism(n) }

// Parallelism returns the current runner parallelism.
func Parallelism() int { return parwork.Parallelism() }

// forEach computes f(i) for every i in [0, n) across min(Parallelism(), n)
// goroutines and returns the results in index order.
func forEach[T any](n int, f func(i int) (T, error)) ([]T, error) {
	return parwork.ForEach(n, f)
}

// rowSeed derives an independent PRNG seed for row i of an experiment from
// the experiment seed, so rows can run concurrently and in any order while
// the emitted table stays identical to a sequential run.
func rowSeed(seed uint64, i int) uint64 { return parwork.RowSeed(seed, i) }
