package experiments

import "testing"

func TestA1DeviationEncodingWins(t *testing.T) {
	tbl, err := A1Encoding([]int{256}, 5000, 48, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cellInt(t, tbl, 0, "devRounds") >= cellInt(t, tbl, 0, "naiveRounds") {
		t.Fatalf("deviation encoding not cheaper:\n%s", tbl.Render())
	}
}

func TestA2BackupImprovesMatching(t *testing.T) {
	tbl, err := A2CabalMatching(60, 8, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	var plain, backed float64
	for i := range tbl.Rows {
		switch cell(t, tbl, i, "variant") {
		case "sampling-only":
			plain = cellFloat(t, tbl, i, "meanRepeats")
		case "sampling+fingerprint":
			backed = cellFloat(t, tbl, i, "meanRepeats")
		}
	}
	if backed < plain {
		t.Fatalf("fingerprint backup reduced the matching: %.1f vs %.1f\n%s", backed, plain, tbl.Render())
	}
}

func TestA3DonationCheaperThanFallback(t *testing.T) {
	tbl, err := A3PutAside(300, 3, 12, 7)
	if err != nil {
		t.Fatal(err)
	}
	var donRounds, fbRounds int
	for i := range tbl.Rows {
		switch cell(t, tbl, i, "variant") {
		case "donation":
			donRounds = cellInt(t, tbl, i, "rounds")
			if cellInt(t, tbl, i, "viaDonation") == 0 {
				t.Fatalf("donation variant did not donate:\n%s", tbl.Render())
			}
		case "fallback-only":
			fbRounds = cellInt(t, tbl, i, "rounds")
			if cellInt(t, tbl, i, "viaFallback") == 0 {
				t.Fatalf("fallback variant did not fall back:\n%s", tbl.Render())
			}
		}
	}
	if donRounds > fbRounds {
		t.Fatalf("donation (%d rounds) costlier than fallback (%d):\n%s", donRounds, fbRounds, tbl.Render())
	}
}

func TestA4MCTBeatsSingleTrials(t *testing.T) {
	tbl, err := A4MCTGrowth(30, 9)
	if err != nil {
		t.Fatal(err)
	}
	var mctRounds, singleRounds int
	singleFinished := false
	for i := range tbl.Rows {
		switch cell(t, tbl, i, "variant") {
		case "multicolortrial":
			if cell(t, tbl, i, "finished") != "yes" {
				t.Fatalf("MCT did not finish:\n%s", tbl.Render())
			}
			mctRounds = cellInt(t, tbl, i, "hRounds")
		case "single-trials":
			singleFinished = cell(t, tbl, i, "finished") == "yes"
			singleRounds = cellInt(t, tbl, i, "hRounds")
		}
	}
	// Either single trials never finished inside a 40·|K| budget, or they
	// did and paid strictly more rounds — both demonstrate the ablation.
	if singleFinished && singleRounds <= mctRounds {
		t.Fatalf("single trials (%d rounds) beat MCT (%d):\n%s", singleRounds, mctRounds, tbl.Render())
	}
}

func TestA5AllFractionsComplete(t *testing.T) {
	tbl, err := A5ReservedFraction([]float64{0.05, 0.3}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestAblationsBattery(t *testing.T) {
	if testing.Short() {
		t.Skip("battery in short mode")
	}
	tables, err := Ablations(13)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 5 {
		t.Fatalf("got %d ablation tables", len(tables))
	}
}
