package experiments

import (
	"fmt"

	"clustercolor/internal/cluster"
	"clustercolor/internal/coloring"
	"clustercolor/internal/core"
	"clustercolor/internal/graph"
	"clustercolor/internal/linial"
	"clustercolor/internal/network"
	"clustercolor/internal/virtual"
)

// E16VirtualDistance2 measures the Appendix A translation: distance-2
// coloring via the virtual graph (overlapping closed-neighborhood supports,
// congestion 2) against the plain cluster-graph simulation of G². The
// virtual run must cost exactly the congestion factor more.
func E16VirtualDistance2(sizes []int, seed uint64) (*Table, error) {
	t := &Table{
		ID:     "E16",
		Title:  "Appendix A — virtual-graph distance-2 coloring (congestion overhead)",
		Header: []string{"n", "Delta2", "congestion", "dilation", "virtualRounds", "plainRounds", "ratio"},
		Notes:  "Appendix A: everything translates with overhead = edge congestion; ratio should equal the congestion",
	}
	for _, n := range sizes {
		g, err := cachedGNP(n, 4.0/float64(n), seed)
		if err != nil {
			return nil, err
		}
		vg, err := virtual.Distance2(g)
		if err != nil {
			return nil, err
		}
		// Virtual run.
		cgV, _, err := vg.ClusterView(48)
		if err != nil {
			return nil, err
		}
		p := core.DefaultParams(vg.H.N())
		p.Seed = seed + 2
		colV, statsV, err := core.Color(cgV, p)
		if err != nil {
			return nil, err
		}
		if err := coloring.VerifyComplete(vg.H, colV); err != nil {
			return nil, err
		}
		// Reference run: identical structure (same H, G, dilation) with
		// congestion multiplier 1, isolating the Appendix A overhead.
		costP, err := network.NewCostModel(48)
		if err != nil {
			return nil, err
		}
		cgP, err := cluster.NewAbstract(vg.H, vg.G, vg.Dilation, costP)
		if err != nil {
			return nil, err
		}
		_, statsP, err := core.Color(cgP, p)
		if err != nil {
			return nil, err
		}
		ratio := float64(statsV.Rounds) / float64(statsP.Rounds)
		t.Rows = append(t.Rows, []string{
			d(n), d(vg.H.MaxDegree()), d(vg.Congestion), d(vg.Dilation),
			d64(statsV.Rounds), d64(statsP.Rounds), f1(ratio),
		})
	}
	return t, nil
}

// E17Linial traces Linial color reduction (the Section 9.4 finishing tool):
// colors per iteration from the trivial n-coloring down to the Θ(Δ²) fixed
// point, then to Δ+1 by class recoloring.
func E17Linial(n int, avgDeg float64, seed uint64) (*Table, error) {
	t := &Table{
		ID:     "E17",
		Title:  fmt.Sprintf("Linial reduction trajectory (n=%d, avg deg %.1f)", n, avgDeg),
		Header: []string{"step", "colors", "proper"},
		Notes:  "colors collapse from n to Θ(Δ²) in O(log* n) steps, then one class per round to Δ+1",
	}
	h, err := cachedGNP(n, avgDeg/float64(n), seed)
	if err != nil {
		return nil, err
	}
	cg, err := buildCG(h, graph.TopologySingleton, 1, 48, seed+1)
	if err != nil {
		return nil, err
	}
	colors, q := linial.FromIDs(h)
	addRow := func(step string, cs []int, qq int) error {
		proper := "yes"
		for v := 0; v < h.N(); v++ {
			for _, u := range h.Neighbors(v) {
				if cs[int(u)] == cs[v] {
					proper = "NO"
				}
			}
		}
		t.Rows = append(t.Rows, []string{step, d(qq), proper})
		if proper != "yes" {
			return fmt.Errorf("experiments: improper intermediate coloring at %s", step)
		}
		return nil
	}
	if err := addRow("ids", colors, q); err != nil {
		return nil, err
	}
	for step := 1; step <= 8; step++ {
		next, nextQ, err := linial.Reduce(cg, colors, q, "e17")
		if err != nil {
			return nil, err
		}
		if nextQ >= q {
			break
		}
		colors, q = next, nextQ
		if err := addRow(fmt.Sprintf("reduce-%d", step), colors, q); err != nil {
			return nil, err
		}
	}
	final, err := linial.ReduceToDeltaPlusOne(cg, colors, q, "e17/classes")
	if err != nil {
		return nil, err
	}
	if err := addRow("classes", final, h.MaxDegree()+1); err != nil {
		return nil, err
	}
	return t, nil
}
