package core

import "testing"

func TestParamsIsZero(t *testing.T) {
	var zero Params
	if !zero.IsZero() {
		t.Fatal("zero Params not IsZero")
	}
	if DefaultParams(100).IsZero() {
		t.Fatal("DefaultParams reported IsZero")
	}
	// Setting only the seed is enough to count as "explicitly provided".
	if (Params{Seed: 1}).IsZero() {
		t.Fatal("Params{Seed:1} reported IsZero")
	}
	// The zero value is never valid on its own — that is what makes using
	// it as the "substitute defaults" sentinel unambiguous.
	if err := zero.Validate(); err == nil {
		t.Fatal("zero Params validated")
	}
	if err := DefaultParams(100).Validate(); err != nil {
		t.Fatal(err)
	}
}
