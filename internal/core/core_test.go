package core

import (
	"testing"

	"clustercolor/internal/cluster"
	"clustercolor/internal/coloring"
	"clustercolor/internal/graph"
	"clustercolor/internal/network"
)

func buildCG(t *testing.T, h *graph.Graph, topo graph.ClusterTopology, size int, seed uint64) *cluster.CG {
	t.Helper()
	rng := graph.NewRand(seed)
	exp, err := graph.Expand(h, graph.ExpandSpec{Topology: topo, MachinesPerCluster: size}, rng)
	if err != nil {
		t.Fatal(err)
	}
	bw := 2*16 + 16
	cost, err := network.NewCostModel(bw)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := cluster.New(h, exp, cost)
	if err != nil {
		t.Fatal(err)
	}
	return cg
}

func runAndVerify(t *testing.T, h *graph.Graph, params Params) *Stats {
	t.Helper()
	cg := buildCG(t, h, graph.TopologySingleton, 1, params.Seed+7)
	col, stats, err := Color(cg, params)
	if err != nil {
		t.Fatal(err)
	}
	if err := coloring.VerifyComplete(h, col); err != nil {
		t.Fatal(err)
	}
	if col.CountColors() > h.MaxDegree()+1 {
		t.Fatalf("used %d colors for Δ=%d", col.CountColors(), h.MaxDegree())
	}
	return stats
}

func TestColorValidatesParams(t *testing.T) {
	h := graph.Path(4)
	cg := buildCG(t, h, graph.TopologySingleton, 1, 1)
	bad := DefaultParams(4)
	bad.Eps = 0.9
	if _, _, err := Color(cg, bad); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestColorSmallGraphs(t *testing.T) {
	tests := []struct {
		name string
		h    *graph.Graph
	}{
		{name: "single vertex", h: graph.NewBuilder(1).Build()},
		{name: "edgeless", h: graph.NewBuilder(6).Build()},
		{name: "single edge", h: graph.Path(2)},
		{name: "path", h: graph.Path(10)},
		{name: "cycle", h: graph.Cycle(9)},
		{name: "star", h: graph.Star(12)},
		{name: "clique", h: graph.Clique(12)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			runAndVerify(t, tt.h, DefaultParams(tt.h.N()))
		})
	}
}

func TestColorGNPLowDegreePath(t *testing.T) {
	rng := graph.NewRand(3)
	h := graph.MustGNP(300, 0.02, rng) // Δ ≈ 6 « 4·log² n → low-degree path
	stats := runAndVerify(t, h, DefaultParams(h.N()))
	if stats.Path != "low-degree" {
		t.Fatalf("path = %q, want low-degree (Δ=%d)", stats.Path, stats.Delta)
	}
}

func TestColorGNPHighDegreePath(t *testing.T) {
	rng := graph.NewRand(5)
	h := graph.MustGNP(300, 0.6, rng) // Δ ≈ 180 > threshold → high-degree path
	p := DefaultParams(h.N())
	p.DeltaLow = 50
	stats := runAndVerify(t, h, p)
	if stats.Path != "high-degree" {
		t.Fatalf("path = %q, want high-degree (Δ=%d)", stats.Path, stats.Delta)
	}
}

func TestColorPlantedACDHighDegree(t *testing.T) {
	rng := graph.NewRand(7)
	h, _, err := graph.PlantedACD(graph.PlantedACDSpec{
		NumCliques:     3,
		CliqueSize:     50,
		DropFraction:   0.04,
		ExternalDegree: 3,
		SparseN:        60,
		SparseP:        0.1,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(h.N())
	p.DeltaLow = 20
	stats := runAndVerify(t, h, p)
	if stats.Path != "high-degree" {
		t.Fatalf("path = %q (Δ=%d)", stats.Path, stats.Delta)
	}
	if stats.NumCliques == 0 {
		t.Fatal("no almost-cliques found on planted instance")
	}
}

func TestColorCabalHeavyInstance(t *testing.T) {
	// Near-disjoint cliques with tiny external degree: everything is a
	// cabal; exercises matching + put-aside + donation.
	rng := graph.NewRand(9)
	h, _, err := graph.PlantedCabals(graph.CabalSpec{
		NumCliques: 3,
		CliqueSize: 60,
		External:   2,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(h.N())
	p.DeltaLow = 20
	stats := runAndVerify(t, h, p)
	if stats.Path != "high-degree" {
		t.Fatalf("path = %q (Δ=%d)", stats.Path, stats.Delta)
	}
	if stats.NumCabals == 0 {
		t.Fatal("no cabals recognized on a cabal-heavy instance")
	}
}

func TestColorWithClusterTopologies(t *testing.T) {
	rng := graph.NewRand(11)
	h := graph.MustGNP(120, 0.1, rng)
	for _, topo := range []graph.ClusterTopology{graph.TopologyStar, graph.TopologyPath, graph.TopologyTree} {
		t.Run(topo.String(), func(t *testing.T) {
			cg := buildCG(t, h, topo, 4, 13)
			col, stats, err := Color(cg, DefaultParams(h.N()))
			if err != nil {
				t.Fatal(err)
			}
			if err := coloring.VerifyComplete(h, col); err != nil {
				t.Fatal(err)
			}
			if stats.Dilation == 0 {
				t.Fatal("multi-machine clusters should have positive dilation")
			}
		})
	}
}

func TestDilationMultipliesRounds(t *testing.T) {
	// Theorem 1.1/1.2: rounds scale linearly with d. Compare star
	// (dilation 1) vs path (dilation k-1) clusters on the same H.
	rng := graph.NewRand(15)
	h := graph.MustGNP(100, 0.1, rng)
	roundsFor := func(topo graph.ClusterTopology, size int) (int64, int) {
		cg := buildCG(t, h, topo, size, 17)
		p := DefaultParams(h.N())
		_, stats, err := Color(cg, p)
		if err != nil {
			t.Fatal(err)
		}
		return stats.Rounds, stats.Dilation
	}
	starRounds, starD := roundsFor(graph.TopologyStar, 8)
	pathRounds, pathD := roundsFor(graph.TopologyPath, 8)
	if pathD <= starD {
		t.Fatalf("path dilation %d not above star %d", pathD, starD)
	}
	if pathRounds <= starRounds {
		t.Fatalf("rounds did not grow with dilation: star=%d path=%d", starRounds, pathRounds)
	}
}

func TestStatsAreCoherent(t *testing.T) {
	rng := graph.NewRand(19)
	h := graph.MustGNP(200, 0.3, rng)
	p := DefaultParams(h.N())
	p.DeltaLow = 30
	stats := runAndVerify(t, h, p)
	if stats.Rounds <= 0 {
		t.Fatal("no rounds recorded")
	}
	if stats.MaxPayloadBits <= 0 {
		t.Fatal("no payload recorded")
	}
	if len(stats.PhaseRounds) == 0 {
		t.Fatal("no phase breakdown")
	}
	var phaseSum int64
	for _, r := range stats.PhaseRounds {
		phaseSum += r
	}
	if phaseSum < stats.Rounds {
		t.Fatalf("phase rounds %d < total %d", phaseSum, stats.Rounds)
	}
}

func TestParamsValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{name: "eps", mutate: func(p *Params) { p.Eps = 0 }},
		{name: "cap", mutate: func(p *Params) { p.ReservedCapFrac = 1 }},
		{name: "ell", mutate: func(p *Params) { p.EllFactor = 0 }},
		{name: "reserved", mutate: func(p *Params) { p.ReservedFactor = -1 }},
		{name: "inlier", mutate: func(p *Params) { p.InlierExtFactor = 0 }},
		{name: "matching", mutate: func(p *Params) { p.MatchingTrialFactor = 0 }},
		{name: "fallback", mutate: func(p *Params) { p.MaxFallbackRounds = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultParams(100)
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Fatal("invalid params accepted")
			}
		})
	}
}

func TestEllGrowsWithN(t *testing.T) {
	p := DefaultParams(100)
	if p.Ell(1000) <= p.Ell(10) {
		t.Fatal("Ell not increasing in n")
	}
	if p.DeltaLowThreshold(1000) <= 0 {
		t.Fatal("threshold not positive")
	}
	p.DeltaLow = 42
	if p.DeltaLowThreshold(1000) != 42 {
		t.Fatal("explicit DeltaLow ignored")
	}
}

func TestReservedForRespectsCap(t *testing.T) {
	p := DefaultParams(100)
	delta := 100
	r := p.reservedFor(1e6, 10, delta)
	if float64(r) > p.ReservedCapFrac*float64(delta+1) {
		t.Fatalf("reserved %d exceeds cap", r)
	}
	if p.reservedFor(0, 0.1, delta) < 1 {
		t.Fatal("reserved floor broken")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	rng := graph.NewRand(21)
	h := graph.MustGNP(80, 0.2, rng)
	p := DefaultParams(h.N())
	p.Seed = 5
	cg1 := buildCG(t, h, graph.TopologySingleton, 1, 23)
	col1, _, err := Color(cg1, p)
	if err != nil {
		t.Fatal(err)
	}
	cg2 := buildCG(t, h, graph.TopologySingleton, 1, 23)
	col2, _, err := Color(cg2, p)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < h.N(); v++ {
		if col1.Get(v) != col2.Get(v) {
			t.Fatalf("run not deterministic at vertex %d", v)
		}
	}
}

func TestManySeedsAllProper(t *testing.T) {
	// Robustness sweep: the pipeline must produce a proper (Δ+1)-coloring
	// for every seed, on mixed instances.
	rng := graph.NewRand(25)
	h, _, err := graph.PlantedACD(graph.PlantedACDSpec{
		NumCliques:     2,
		CliqueSize:     40,
		DropFraction:   0.05,
		ExternalDegree: 4,
		SparseN:        50,
		SparseP:        0.15,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 8; seed++ {
		p := DefaultParams(h.N())
		p.Seed = seed
		p.DeltaLow = 20
		runAndVerify(t, h, p)
	}
}
