package core

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"clustercolor/internal/acd"
	"clustercolor/internal/cluster"
	"clustercolor/internal/coloring"
	"clustercolor/internal/graph"
	"clustercolor/internal/parwork"
	"clustercolor/internal/shard"
	"clustercolor/internal/sketch"
	"clustercolor/internal/trials"
)

// Color runs the full (Δ+1)-coloring algorithm on a cluster graph, choosing
// the high-degree pipeline (Theorem 1.2) or the low-degree pipeline
// (Theorem 1.1) by the Δ_low threshold. It returns a verified total proper
// coloring together with run statistics.
func Color(cg *cluster.CG, params Params) (*coloring.Coloring, *Stats, error) {
	return ColorTraced(cg, params, nil)
}

// ColorTraced is Color with a stage tracer: tr (when non-nil) observes every
// parallel per-clique stage of the high-degree pipeline — its snapshot,
// tasks, seeds, charged rounds, and snapshot-relative writes. The distsim
// conformance harness uses it to re-execute each primitive at machine
// granularity; a nil tracer makes ColorTraced identical to Color.
func ColorTraced(cg *cluster.CG, params Params, tr StageTracer) (*coloring.Coloring, *Stats, error) {
	if err := params.Validate(); err != nil {
		return nil, nil, err
	}
	h := cg.H
	delta := h.MaxDegree()
	col := coloring.New(h.N(), delta)
	stats := &Stats{Delta: delta, Dilation: cg.Dilation}
	rng := parwork.StreamRNG(params.Seed)
	baseline := cg.Cost().Rounds()

	var err error
	if delta <= params.DeltaLowThreshold(h.N()) {
		stats.Path = "low-degree"
		start := time.Now()
		err = colorLowDegree(cg, col, params, stats, rng)
		stats.AddStageNs("lowdegree", time.Since(start))
	} else {
		stats.Path = "high-degree"
		err = colorHighDegree(cg, col, params, stats, rng, tr)
	}
	if err != nil {
		return nil, nil, err
	}
	// Terminal cleanup: whatever probabilistic stages left behind at
	// finite scale is finished by palette-exact random trials, counted
	// separately so experiments can report stage-only behaviour.
	fbStart := cg.Cost().Rounds()
	fbWall := time.Now()
	fbErr := fallbackFinish(cg, col, params, stats, rng)
	stats.AddStageNs("fallback", time.Since(fbWall))
	stats.FallbackRounds = cg.Cost().Rounds() - fbStart
	stats.Rounds = cg.Cost().Rounds() - baseline
	stats.PhaseRounds = cg.Cost().PhaseRounds()
	stats.MaxPayloadBits = cg.Cost().MaxPayload()
	if fbErr != nil {
		// No partial coloring escapes, but the stats (including the rounds
		// charged by the exhausted fallback loop) do, so callers and tests
		// can see what the failed run paid.
		return nil, stats, fbErr
	}
	if err := coloring.VerifyComplete(h, col); err != nil {
		return nil, nil, fmt.Errorf("core: output verification: %w", err)
	}
	return col, stats, nil
}

// fallbackFinish colors any remaining vertices with TryColor over their true
// palettes. Computing a true palette in a cluster graph costs Ω(Δ/log n)
// rounds (Figure 2); the loop charges that price per wave. Palettes are
// materialized through one reusable scratch (zero per-vertex allocation);
// TryColorRound consumes each palette before the next Space call, per the
// scratch-ownership contract.
func fallbackFinish(cg *cluster.CG, col *coloring.Coloring, params Params, stats *Stats, rng *rand.Rand) error {
	h := cg.H
	remaining := uncoloredCount(col)
	if remaining == 0 {
		return nil
	}
	bw := cg.Cost().Bandwidth()
	paletteHops := (col.Delta() + bw - 1) / bw
	if paletteHops < 1 {
		paletteHops = 1
	}
	scratch := coloring.NewPaletteScratch()
	for round := 0; round < params.MaxFallbackRounds && remaining > 0; round++ {
		cg.ChargeHRounds("fallback/palette", paletteHops, bw)
		colored, err := trials.TryColorRound(cg, col, trials.TryColorOptions{
			Phase:      "fallback/try",
			Activation: 0.8,
			Space: func(v int) []int32 {
				return scratch.Palette(h, col, v)
			},
		}, rng)
		if err != nil {
			return err
		}
		stats.FallbackColored += colored
		remaining -= colored
	}
	if remaining > 0 {
		return fmt.Errorf("core: %d vertices uncolored after %d fallback rounds", remaining, params.MaxFallbackRounds)
	}
	return nil
}

func uncoloredCount(col *coloring.Coloring) int {
	return col.N() - col.DomSize()
}

// reservedFor returns r_K for a clique given its estimated average external
// degree (Equation 2, scaled): ReservedFactor·max{ẽ_K, ℓ} capped at
// ReservedCapFrac·(Δ+1) and floored at 1.
func (p Params) reservedFor(avgExt, ell float64, delta int) int32 {
	r := p.ReservedFactor * math.Max(avgExt, ell)
	cap := p.ReservedCapFrac * float64(delta+1)
	if r > cap {
		r = cap
	}
	if r < 1 {
		r = 1
	}
	return int32(r)
}

// decompose runs ComputeACD and profile building as one traced,
// separately-charged stage: both waves share one acd.Workspace (so the
// sample arena is reused across Compute and BuildProfile), the rounds they
// charge are recorded in Stats.DecompRounds, and a non-nil tracer observes
// the stage as a "decompose" StageTrace (vertex-level — no per-clique tasks
// or snapshot; the fingerprint-wave primitive covers its machine-level
// conformance).
func decompose(cg *cluster.CG, params Params, stats *Stats, rng *rand.Rand, tr StageTracer) (*acd.Decomposition, *acd.Profile, error) {
	before := cg.Cost().Rounds()
	wall := time.Now()
	defer func() { stats.AddStageNs("decompose", time.Since(wall)) }()
	ws := acd.NewWorkspace()
	ell := params.Ell(cg.H.N())
	var d *acd.Decomposition
	var prof *acd.Profile
	var err error
	if params.Shards > 1 {
		// Partitioned path: both waves run on one shard engine so arenas and
		// slices are shared, and the cross-shard traffic lands in Stats.
		var sg *graph.ShardedGraph
		sg, err = graph.NewShardedGraph(cg.H, params.Shards)
		if err != nil {
			return nil, nil, err
		}
		se := shard.NewEngine(sg, sketch.MaxKernel{})
		d, err = acd.ComputeShardedWith(cg, se, params.Eps, rng, ws)
		if err != nil {
			return nil, nil, err
		}
		prof, err = acd.BuildProfileShardedWith(cg, se, d, float64(cg.H.MaxDegree()), ell, rng, ws)
		if err != nil {
			return nil, nil, err
		}
		stats.Shards = params.Shards
		stats.ShardExchangedRows = se.Stats.Rows
		stats.ShardExchangedBits = se.Stats.Bits
		stats.AddStageNs("exchange", time.Duration(se.Stats.ExchangeNs))
	} else {
		d, err = acd.ComputeWith(cg, params.Eps, rng, ws)
		if err != nil {
			return nil, nil, err
		}
		prof, err = acd.BuildProfileWith(cg, d, float64(cg.H.MaxDegree()), ell, rng, ws)
		if err != nil {
			return nil, nil, err
		}
	}
	stats.DecompRounds = cg.Cost().Rounds() - before
	stats.NumCliques = len(d.Cliques)
	for _, cab := range prof.IsCabal {
		if cab {
			stats.NumCabals++
		}
	}
	for v := 0; v < cg.H.N(); v++ {
		if d.IsSparse(v) {
			stats.NumSparse++
		}
	}
	if tr != nil {
		tr(&StageTrace{Stage: "decompose", ChargedRounds: stats.DecompRounds})
	}
	return d, prof, nil
}

// sparseSpace returns the full color space [1, Δ+1] used by sparse vertices.
func sparseSpace(col *coloring.Coloring) []int32 {
	return trials.RangeSpace(1, col.MaxColor())
}

// rangeView returns the color range [lo, hi] as a view into the full space
// slice (full[i] == i+1), so per-vertex Space closures never allocate.
func rangeView(full []int32, lo, hi int32) []int32 {
	if lo < 1 {
		lo = 1
	}
	if hi > int32(len(full)) {
		hi = int32(len(full))
	}
	if hi < lo {
		return nil
	}
	return full[lo-1 : hi]
}
