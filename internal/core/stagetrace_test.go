package core

import (
	"strings"
	"testing"

	"clustercolor/internal/graph"
)

// TestStageOrderFigure5HighDegree verifies the Figure 5 flow: the
// high-degree pipeline runs its stages in the published order.
func TestStageOrderFigure5HighDegree(t *testing.T) {
	rng := graph.NewRand(3)
	h, _, err := graph.PlantedACD(graph.PlantedACDSpec{
		NumCliques:     2,
		CliqueSize:     40,
		DropFraction:   0.04,
		ExternalDegree: 3,
		SparseN:        40,
		SparseP:        0.1,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cg := buildCG(t, h, graph.TopologySingleton, 1, 5)
	p := DefaultParams(h.N())
	p.DeltaLow = 15
	_, stats, err := Color(cg, p)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"ComputeACD", "SlackGeneration", "ColoringSparse", "ColoringNonCabals", "ColoringCabals"}
	if got := strings.Join(stats.StageOrder, ","); got != strings.Join(want, ",") {
		t.Fatalf("stage order = %v, want %v", stats.StageOrder, want)
	}
}

// TestStageOrderLowDegree verifies the Section 9 pipeline order.
func TestStageOrderLowDegree(t *testing.T) {
	rng := graph.NewRand(7)
	h := graph.MustGNP(300, 0.02, rng)
	cg := buildCG(t, h, graph.TopologySingleton, 1, 9)
	_, stats, err := Color(cg, DefaultParams(h.N()))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"DegreeReduction", "LearnColors", "Shattering"}
	if len(stats.StageOrder) < len(want) {
		t.Fatalf("stage order too short: %v", stats.StageOrder)
	}
	for i, w := range want {
		if stats.StageOrder[i] != w {
			t.Fatalf("stage %d = %s, want %s (full: %v)", i, stats.StageOrder[i], w, stats.StageOrder)
		}
	}
	// SmallInstanceColoring appears iff shattering left components.
	if len(stats.StageOrder) == 4 && stats.StageOrder[3] != "SmallInstanceColoring" {
		t.Fatalf("unexpected trailing stage %v", stats.StageOrder)
	}
}
