package core

import (
	"math/rand/v2"
	"runtime"
	"testing"

	"clustercolor/internal/cluster"
	"clustercolor/internal/coloring"
	"clustercolor/internal/graph"
	"clustercolor/internal/parwork"
)

// plantedHighDegree returns an instance that takes the high-degree pipeline
// and exercises every per-clique stage (matchings, SCTs, palette builds,
// put-aside donation).
func plantedHighDegree(t *testing.T, seed uint64) *graph.Graph {
	t.Helper()
	h, _, err := graph.PlantedACD(graph.PlantedACDSpec{
		NumCliques:     4,
		CliqueSize:     60,
		DropFraction:   0.05,
		ExternalDegree: 3,
		SparseN:        80,
		SparseP:        0.1,
	}, graph.NewRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestColorByteIdenticalAcrossParallelism pins the contract of the parallel
// per-clique stage loops: for a fixed seed, the output coloring and the
// charged rounds are byte-identical at parallelism 1, 4, NumCPU, and 32. The
// 32 level exercises the adaptive grain (past 16 workers the chunk count
// scales at 8 per worker, so the range loops run on a different partition)
// and the candidate-list conflict apply in runPerClique (gated on
// parallelism > 1); both must leave the output bytes untouched. Two
// instances: a planted high-degree one driving every per-clique stage, and a
// larger GNP on the low-degree pipeline's chunked sweeps.
func TestColorByteIdenticalAcrossParallelism(t *testing.T) {
	instances := []struct {
		name  string
		build func() *graph.Graph
	}{
		{"planted-high", func() *graph.Graph { return plantedHighDegree(t, 5) }},
		{"gnp-low", func() *graph.Graph {
			h, err := graph.GNP(20_000, 8.0/20_000, graph.NewRand(17))
			if err != nil {
				t.Fatal(err)
			}
			return h
		}},
	}
	for _, inst := range instances {
		t.Run(inst.name, func(t *testing.T) {
			h := inst.build()
			params := DefaultParams(h.N())
			params.Seed = 11

			type outcome struct {
				colors []int32
				rounds int64
			}
			runAt := func(par int) outcome {
				prev := parwork.SetParallelism(par)
				defer parwork.SetParallelism(prev)
				cg := buildCG(t, h, graph.TopologySingleton, 1, params.Seed+7)
				col, stats, err := Color(cg, params)
				if err != nil {
					t.Fatalf("parallelism %d: %v", par, err)
				}
				if err := coloring.VerifyComplete(h, col); err != nil {
					t.Fatalf("parallelism %d: %v", par, err)
				}
				colors := make([]int32, h.N())
				for v := 0; v < h.N(); v++ {
					colors[v] = col.Get(v)
				}
				return outcome{colors: colors, rounds: stats.Rounds}
			}

			ref := runAt(1)
			for _, par := range []int{4, runtime.GOMAXPROCS(0), 32} {
				got := runAt(par)
				if got.rounds != ref.rounds {
					t.Errorf("parallelism %d charged %d rounds, sequential charged %d", par, got.rounds, ref.rounds)
				}
				for v := range ref.colors {
					if got.colors[v] != ref.colors[v] {
						t.Fatalf("parallelism %d: vertex %d colored %d, sequential colored %d",
							par, v, got.colors[v], ref.colors[v])
					}
				}
			}
		})
	}
}

// TestRunPerCliqueDropsCrossCliqueConflicts feeds runPerClique two adjacent
// single-vertex "cliques" whose jobs pick the same color against the same
// snapshot; the sequential apply must keep the first write and drop the
// second, leaving the coloring proper and the dropped vertex uncolored for
// a later stage.
func TestRunPerCliqueDropsCrossCliqueConflicts(t *testing.T) {
	h := graph.Path(2) // vertices 0–1 adjacent
	cg := buildCG(t, h, graph.TopologySingleton, 1, 3)
	col := coloring.New(2, h.MaxDegree())
	members := [][]int{{0}, {1}}
	_, _, dropped, err := runPerClique(cg, col, "test", 2, 9, true,
		func(i int) []int { return members[i] },
		func(i int, subCG *cluster.CG, view *coloring.Coloring, scratch *coloring.PaletteScratch, rng *rand.Rand) (int, error) {
			// Both cliques pick color 1 against the shared snapshot.
			return 0, view.Set(members[i][0], 1)
		})
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Fatalf("dropped %d writes, want 1", dropped)
	}
	if got := col.Get(0); got != 1 {
		t.Fatalf("vertex 0 colored %d, want 1 (first clique's write kept)", got)
	}
	if got := col.Get(1); got != coloring.None {
		t.Fatalf("vertex 1 colored %d, want uncolored (conflicting write dropped)", got)
	}
	if err := coloring.VerifyProper(h, col); err != nil {
		t.Fatal(err)
	}
}
