package core

import (
	"math"
	"math/bits"
	"math/rand/v2"
	"time"

	"clustercolor/internal/acd"
	"clustercolor/internal/cluster"
	"clustercolor/internal/coloring"
	"clustercolor/internal/graph"
	"clustercolor/internal/network"
	"clustercolor/internal/parwork"
	"clustercolor/internal/putaside"
	"clustercolor/internal/slackgen"
	"clustercolor/internal/trials"
)

// colorHighDegree is Algorithm 3: ComputeACD, SlackGeneration outside
// cabals, ColoringSparse, ColoringNonCabals (Algorithm 4), ColoringCabals
// (Algorithm 5).
func colorHighDegree(cg *cluster.CG, col *coloring.Coloring, params Params, stats *Stats, rng *rand.Rand, tr StageTracer) error {
	h := cg.H
	delta := h.MaxDegree()
	stats.StageOrder = append(stats.StageOrder, "ComputeACD")
	d, prof, err := decompose(cg, params, stats, rng, tr)
	if err != nil {
		return err
	}
	ell := params.Ell(h.N())
	// Per-clique reserved prefixes; slack generation and the matchings
	// avoid the global maximum (the paper's fixed 300εΔ prefix).
	reserved := make([]int32, len(d.Cliques))
	var globalReserved int32
	for i := range d.Cliques {
		reserved[i] = params.reservedFor(prof.AvgExt[i], ell, delta)
		if reserved[i] > globalReserved {
			globalReserved = reserved[i]
		}
	}
	inCabal := func(v int) bool {
		k := d.CliqueOf[v]
		return k >= 0 && prof.IsCabal[k]
	}
	// Step 2: slack generation everywhere but cabals.
	stats.StageOrder = append(stats.StageOrder, "SlackGeneration")
	wall := time.Now()
	if _, err := slackgen.Run(cg, col, slackgen.Options{
		Activation:  params.SlackActivation,
		ReservedMax: globalReserved,
		Exclude:     inCabal,
	}, rng); err != nil {
		return err
	}
	stats.AddStageNs("slackgen", time.Since(wall))
	stats.StageOrder = append(stats.StageOrder, "ColoringSparse")
	// Step 3: color the sparse vertices (TryColor warm-up + MCT, full
	// color space — Proposition 4.5 gives them Ω(Δ) slack).
	wall = time.Now()
	if err := colorSparse(cg, col, d, stats, rng); err != nil {
		return err
	}
	stats.AddStageNs("sparse", time.Since(wall))
	// Step 4: non-cabals (Algorithm 4).
	stats.StageOrder = append(stats.StageOrder, "ColoringNonCabals")
	if err := colorNonCabals(cg, col, d, prof, reserved, globalReserved, params, stats, rng, tr); err != nil {
		return err
	}
	// Step 5: cabals (Algorithm 5).
	stats.StageOrder = append(stats.StageOrder, "ColoringCabals")
	return colorCabals(cg, col, d, prof, reserved, globalReserved, params, stats, rng, tr)
}

func colorSparse(cg *cluster.CG, col *coloring.Coloring, d *acd.Decomposition, stats *Stats, rng *rand.Rand) error {
	h := cg.H
	sparse := func(v int) bool { return d.IsSparse(v) }
	space := sparseSpace(col)
	before := col.DomSize()
	if _, err := trials.TryColorLoop(cg, col, trials.TryColorOptions{
		Phase:      "sparse/try",
		Active:     sparse,
		Space:      func(v int) []int32 { return space },
		Activation: 0.5,
	}, 6, rng); err != nil {
		return err
	}
	if _, err := trials.MultiColorTrial(cg, col, trials.MCTOptions{
		Phase:  "sparse/mct",
		Active: sparse,
		Space:  func(v int) []int32 { return space },
		Seed:   rng.Uint64(),
	}, rng); err != nil {
		return err
	}
	_ = h
	stats.SparseColored = col.DomSize() - before
	return nil
}

// colorNonCabals is Algorithm 4: ColorfulMatching, ColoringOutliers,
// SynchronizedColorTrial, Complete.
func colorNonCabals(cg *cluster.CG, col *coloring.Coloring, d *acd.Decomposition, prof *acd.Profile,
	reserved []int32, globalReserved int32, params Params, stats *Stats, rng *rand.Rand, tr StageTracer) error {
	h := cg.H
	delta := h.MaxDegree()
	full := sparseSpace(col)
	var cliques []int
	for i := range d.Cliques {
		if !prof.IsCabal[i] {
			cliques = append(cliques, i)
		}
	}
	if len(cliques) == 0 {
		return nil
	}
	before := col.DomSize()
	// Step 1: colorful matching, parallel across cliques.
	repeats, err := runMatchings(cg, col, d, cliques, globalReserved, params, false, stats, rng, tr, "matching/noncabals")
	if err != nil {
		return err
	}
	stats.MatchingRepeats += sum(repeats)
	// Inlier classification (Equation 4): ẽ_v ≤ c·ẽ_K and
	// x_v ≤ M_K/2 + ẽ_K/2 (scaled γ).
	inlier := make([]bool, h.N())
	for idx, i := range cliques {
		mk := float64(repeats[idx])
		for _, v := range d.Cliques[i] {
			xv := prof.AntiDegreeProxy(v, delta)
			inlier[v] = prof.ExtDeg[v] <= params.InlierExtFactor*math.Max(prof.AvgExt[i], 1) &&
				xv <= mk/2+0.5*math.Max(prof.AvgExt[i], 1)
		}
	}
	// Step 2: color outliers with non-reserved colors.
	if err := colorSubset(cg, col, "noncabal/outliers", func(v int) bool {
		k := d.CliqueOf[v]
		return k >= 0 && !prof.IsCabal[k] && !inlier[v]
	}, func(v int) []int32 {
		return rangeView(full, reserved[d.CliqueOf[v]]+1, col.MaxColor())
	}, rng); err != nil {
		return err
	}
	// Step 3: synchronized color trial per clique (parallel).
	if err := runSCTs(cg, col, d, cliques, reserved, inlier, nil, stats, rng, tr, "sct/noncabals"); err != nil {
		return err
	}
	// Step 4: Complete (Algorithm 11).
	if err := complete(cg, col, d, cliques, reserved, inlier, full, stats, rng); err != nil {
		return err
	}
	stats.NonCabalColored = col.DomSize() - before
	return nil
}

// complete is Algorithm 11: Phase I tries non-reserved clique-palette colors
// to shrink the slack-poor set; Phase II finishes on reserved colors with
// MultiColorTrial.
func complete(cg *cluster.CG, col *coloring.Coloring, d *acd.Decomposition,
	cliques []int, reserved []int32, inlier []bool, full []int32, stats *Stats, rng *rand.Rand) error {
	h := cg.H
	active := func(v int) bool {
		k := d.CliqueOf[v]
		if k < 0 || !containsInt(cliques, k) {
			return false
		}
		return inlier[v]
	}
	// Phase I: O(1) iterations of TryColor on L(K) \ [r_K]. The per-clique
	// palettes and their non-reserved views are rebuilt in place each
	// iteration — no per-vertex or per-iteration allocation.
	palettes := make(map[int]*coloring.CliquePalette, len(cliques))
	spaces := make(map[int][]int32, len(cliques))
	for iter := 0; iter < 3; iter++ {
		wall := time.Now()
		if err := buildPalettes(cg, col, d, cliques, palettes); err != nil {
			return err
		}
		stats.AddStageNs("palettes", time.Since(wall))
		for _, i := range cliques {
			space := spaces[i][:0]
			for _, c := range palettes[i].FreeView() {
				if c > reserved[i] {
					space = append(space, c)
				}
			}
			spaces[i] = space
		}
		coloring.ChargeQuery(cg, "complete/query")
		if _, err := trials.TryColorRound(cg, col, trials.TryColorOptions{
			Phase:      "complete/phase1",
			Active:     active,
			Activation: 0.7,
			Space: func(v int) []int32 {
				return spaces[d.CliqueOf[v]]
			},
		}, rng); err != nil {
			return err
		}
	}
	// Phase II: reserved colors via MCT.
	_, err := trials.MultiColorTrial(cg, col, trials.MCTOptions{
		Phase:  "complete/phase2",
		Active: active,
		Space: func(v int) []int32 {
			return rangeView(full, 1, reserved[d.CliqueOf[v]])
		},
		Seed: rng.Uint64(),
	}, rng)
	_ = h
	return err
}

// colorCabals is Algorithm 5.
func colorCabals(cg *cluster.CG, col *coloring.Coloring, d *acd.Decomposition, prof *acd.Profile,
	reserved []int32, globalReserved int32, params Params, stats *Stats, rng *rand.Rand, tr StageTracer) error {
	h := cg.H
	full := sparseSpace(col)
	var cabals []int
	for i := range d.Cliques {
		if prof.IsCabal[i] {
			cabals = append(cabals, i)
		}
	}
	if len(cabals) == 0 {
		return nil
	}
	before := col.DomSize()
	// Step 1: colorful matching with the cabal-specific fingerprint
	// algorithm as backup.
	repeats, err := runMatchings(cg, col, d, cabals, globalReserved, params, true, stats, rng, tr, "matching/cabals")
	if err != nil {
		return err
	}
	stats.MatchingRepeats += sum(repeats)
	// Inliers in cabals need only low external degree (Section 4.3).
	inlier := make([]bool, h.N())
	for _, i := range cabals {
		for _, v := range d.Cliques[i] {
			inlier[v] = prof.ExtDeg[v] <= params.InlierExtFactor*math.Max(prof.AvgExt[i], 1)
		}
	}
	// Step 2: outliers.
	if err := colorSubset(cg, col, "cabal/outliers", func(v int) bool {
		k := d.CliqueOf[v]
		return k >= 0 && prof.IsCabal[k] && !inlier[v]
	}, func(v int) []int32 {
		return rangeView(full, reserved[d.CliqueOf[v]]+1, col.MaxColor())
	}, rng); err != nil {
		return err
	}
	// Step 3: put-aside sets, sized to the reserved prefix but never more
	// than a quarter of the uncolored inliers.
	cabalMembers := make([][]int, len(cabals))
	rs := make([]int, len(cabals))
	for idx, i := range cabals {
		cabalMembers[idx] = d.Cliques[i]
		un := 0
		for _, v := range d.Cliques[i] {
			if !col.IsColored(v) && inlier[v] {
				un++
			}
		}
		r := int(reserved[i])
		if r > un/4 {
			r = un / 4
		}
		rs[idx] = r
	}
	maxR := 0
	for _, r := range rs {
		if r > maxR {
			maxR = r
		}
	}
	putAside := make([][]int, len(cabals))
	if maxR > 0 {
		// ComputePutAside takes a single r; use the per-cabal minimum cap
		// by trimming afterwards.
		ps, err := putaside.ComputePutAside(cg, col, putaside.ComputeOptions{
			Phase:    "cabal/putaside",
			Cabals:   cabalMembers,
			Eligible: func(v int) bool { return inlier[v] },
			R:        maxR,
		}, rng)
		if err != nil {
			return err
		}
		for idx := range ps {
			if len(ps[idx]) > rs[idx] {
				ps[idx] = ps[idx][:rs[idx]]
			}
			putAside[idx] = ps[idx]
		}
	}
	inPutAside := make(map[int]bool)
	for _, ps := range putAside {
		for _, v := range ps {
			inPutAside[v] = true
		}
	}
	// Step 4: synchronized color trial (participants exclude put-aside).
	if err := runSCTs(cg, col, d, cabals, reserved, inlier, inPutAside, stats, rng, tr, "sct/cabals"); err != nil {
		return err
	}
	// Step 5: MultiColorTrial on reserved colors for the rest (not
	// put-aside).
	if _, err := trials.MultiColorTrial(cg, col, trials.MCTOptions{
		Phase: "cabal/mct",
		Active: func(v int) bool {
			k := d.CliqueOf[v]
			return k >= 0 && prof.IsCabal[k] && inlier[v] && !inPutAside[v]
		},
		Space: func(v int) []int32 {
			return rangeView(full, 1, reserved[d.CliqueOf[v]])
		},
		Seed: rng.Uint64(),
	}, rng); err != nil {
		return err
	}
	// Any non-put-aside cabal vertex still uncolored gets a palette pass
	// so put-aside coloring starts from the paper's precondition.
	cleanupScratch := coloring.NewPaletteScratch()
	if err := colorSubset(cg, col, "cabal/cleanup", func(v int) bool {
		k := d.CliqueOf[v]
		return k >= 0 && prof.IsCabal[k] && !inPutAside[v]
	}, func(v int) []int32 {
		return cleanupScratch.Palette(h, col, v)
	}, rng); err != nil {
		return err
	}
	// Step 6: color put-aside sets via donation (parallel across cabals).
	// The per-cabal job body lives in DonateJob (seams.go); the tasks pin
	// the forbidden-donor flags (Lemma 7.2 Property 2) up front.
	donateWall := time.Now()
	lg := bits.Len(uint(h.N()))
	donateSeed := rng.Uint64()
	tasks := make([]DonateTask, len(cabals))
	for idx := range cabals {
		members := cabalMembers[idx]
		task := DonateTask{
			Members:            members,
			PutAside:           putAside[idx],
			Inlier:             make([]bool, len(members)),
			Forbidden:          make([]bool, len(members)),
			FreeColorThreshold: 4 * len(putAside[idx]),
			BlockSize:          maxInt(8, lg),
			SampleTries:        4 * lg,
		}
		for j, v := range members {
			task.Inlier[j] = inlier[v]
		}
		if len(task.PutAside) > 0 {
			// Forbidden-donor marking only matters where donation will run
			// (DonateJob is a no-op on an empty put-aside set).
			foreign := foreignAdjacency(h, putAside, idx)
			for j, v := range members {
				task.Forbidden[j] = foreign[v]
			}
		}
		tasks[idx] = task
	}
	var snap *coloring.Coloring
	chargedBefore := cg.Cost().Rounds()
	if tr != nil {
		snap = col.Clone()
	}
	dstats, writes, dropped, err := runPerClique(cg, col, "cabal/donate", len(cabals), donateSeed, tr != nil,
		func(idx int) []int { return tasks[idx].Members },
		func(idx int, subCG *cluster.CG, view *coloring.Coloring, scratch *coloring.PaletteScratch, crng *rand.Rand) (DonateAux, error) {
			return DonateJob(subCG, view, tasks[idx], scratch, crng)
		})
	if err != nil {
		return err
	}
	stats.ParallelDroppedWrites += dropped
	stats.AddStageNs("donate", time.Since(donateWall))
	for _, ds := range dstats {
		stats.PutAsideDonated += ds.Donated
		stats.PutAsideFree += ds.Free
		stats.PutAsideFallback += ds.Fallback
	}
	if tr != nil {
		tr(&StageTrace{
			Stage:         "donate",
			BaseSeed:      donateSeed,
			Snapshot:      snap,
			ChargedRounds: cg.Cost().Rounds() - chargedBefore,
			Donate:        tasks,
			Writes:        writes,
			DonateAux:     dstats,
		})
	}
	stats.CabalColored = col.DomSize() - before
	return nil
}

// foreignAdjacency marks vertices adjacent to put-aside vertices of other
// cabals (forbidden donors, Lemma 7.2 Property 2).
func foreignAdjacency(h *graph.Graph, putAside [][]int, self int) map[int]bool {
	foreign := make(map[int]bool)
	for j, ps := range putAside {
		if j == self {
			continue
		}
		for _, v := range ps {
			foreign[v] = true
			for _, u := range h.Neighbors(v) {
				foreign[int(u)] = true
			}
		}
	}
	return foreign
}

// runMatchings executes the colorful matching per clique in parallel
// (snapshot views, derived RNG streams, scratch cost models merged as a
// max). withFingerprint enables the cabal backup algorithm (Proposition
// 4.15). The per-clique job body lives in MatchingJob (seams.go) so the
// distsim conformance harness can drive it in isolation.
func runMatchings(cg *cluster.CG, col *coloring.Coloring, d *acd.Decomposition,
	cliques []int, globalReserved int32, params Params, withFingerprint bool, stats *Stats, rng *rand.Rand,
	tr StageTracer, stageLabel string) ([]int, error) {
	wall := time.Now()
	defer func() { stats.AddStageNs("matchings", time.Since(wall)) }()
	h := cg.H
	lg := bits.Len(uint(h.N()))
	baseSeed := rng.Uint64()
	tasks := make([]MatchingTask, len(cliques))
	for idx, i := range cliques {
		members := d.Cliques[i]
		// A clique that fits in the palette needs no matching.
		need := len(members) - (h.MaxDegree() + 1)
		target := need + 2*lg
		if target < lg {
			target = lg
		}
		tasks[idx] = MatchingTask{
			Members:           members,
			ReservedMax:       globalReserved,
			Rounds:            8,
			TargetRepeats:     target,
			WithFingerprint:   withFingerprint,
			FingerprintTrials: params.MatchingTrialFactor * lg,
		}
	}
	var snap *coloring.Coloring
	before := cg.Cost().Rounds()
	if tr != nil {
		snap = col.Clone()
	}
	repeats, writes, dropped, err := runPerClique(cg, col, "matching", len(cliques), baseSeed, tr != nil,
		func(idx int) []int { return tasks[idx].Members },
		func(idx int, subCG *cluster.CG, view *coloring.Coloring, scratch *coloring.PaletteScratch, crng *rand.Rand) (int, error) {
			return MatchingJob(subCG, view, tasks[idx], crng)
		})
	stats.ParallelDroppedWrites += dropped
	if err == nil && tr != nil {
		tr(&StageTrace{
			Stage:           stageLabel,
			BaseSeed:        baseSeed,
			Snapshot:        snap,
			ChargedRounds:   cg.Cost().Rounds() - before,
			Matching:        tasks,
			Writes:          writes,
			MatchingRepeats: repeats,
		})
	}
	return repeats, err
}

// runSCTs executes the synchronized color trial per clique in parallel.
// Participants are uncolored inliers excluding any put-aside set, capped by
// the clique palette's non-reserved capacity (Lemma 4.13's precondition).
// The per-clique job body lives in SCTJob (seams.go).
func runSCTs(cg *cluster.CG, col *coloring.Coloring, d *acd.Decomposition,
	cliques []int, reserved []int32, inlier []bool, exclude map[int]bool, stats *Stats, rng *rand.Rand,
	tr StageTracer, stageLabel string) error {
	wall := time.Now()
	defer func() { stats.AddStageNs("scts", time.Since(wall)) }()
	baseSeed := rng.Uint64()
	tasks := make([]SCTTask, len(cliques))
	for idx, i := range cliques {
		members := d.Cliques[i]
		task := SCTTask{
			Members:     members,
			ReservedMax: reserved[i],
			Inlier:      make([]bool, len(members)),
			Exclude:     make([]bool, len(members)),
		}
		for j, v := range members {
			task.Inlier[j] = inlier[v]
			task.Exclude[j] = exclude != nil && exclude[v]
		}
		tasks[idx] = task
	}
	var snap *coloring.Coloring
	before := cg.Cost().Rounds()
	if tr != nil {
		snap = col.Clone()
	}
	colored, writes, dropped, err := runPerClique(cg, col, "sct", len(cliques), baseSeed, tr != nil,
		func(idx int) []int { return tasks[idx].Members },
		func(idx int, subCG *cluster.CG, view *coloring.Coloring, scratch *coloring.PaletteScratch, crng *rand.Rand) (int, error) {
			return SCTJob(subCG, view, tasks[idx], crng)
		})
	stats.ParallelDroppedWrites += dropped
	if err == nil && tr != nil {
		tr(&StageTrace{
			Stage:         stageLabel,
			BaseSeed:      baseSeed,
			Snapshot:      snap,
			ChargedRounds: cg.Cost().Rounds() - before,
			SCT:           tasks,
			Writes:        writes,
			SCTColored:    colored,
		})
	}
	return err
}

// buildPalettes rebuilds the clique palettes for the given cliques in
// parallel (a read-only aggregation), charging one parallel build. Existing
// entries in out are rebuilt in place so iterated callers allocate nothing.
func buildPalettes(cg *cluster.CG, col *coloring.Coloring, d *acd.Decomposition,
	cliques []int, out map[int]*coloring.CliquePalette) error {
	type built struct {
		cp  *coloring.CliquePalette
		sub *network.CostModel
	}
	res, err := parwork.ForEach(len(cliques), func(idx int) (built, error) {
		sub, err := network.NewCostModel(cg.Cost().Bandwidth())
		if err != nil {
			return built{}, err
		}
		subCG := cg.WithCost(sub)
		cp := coloring.RebuildCliquePalette(out[cliques[idx]], subCG, col, d.Cliques[cliques[idx]])
		return built{cp: cp, sub: sub}, nil
	})
	if err != nil {
		return err
	}
	subs := make([]*network.CostModel, len(res))
	for idx, b := range res {
		out[cliques[idx]] = b.cp
		subs[idx] = b.sub
	}
	cg.Cost().AbsorbParallel("palette/build", subs)
	return nil
}

// colorSubset colors an active set with a warm-up TryColor loop followed by
// MultiColorTrial over the given space.
func colorSubset(cg *cluster.CG, col *coloring.Coloring, phase string,
	active func(v int) bool, space func(v int) []int32, rng *rand.Rand) error {
	if _, err := trials.TryColorLoop(cg, col, trials.TryColorOptions{
		Phase:      phase + "/try",
		Active:     active,
		Space:      space,
		Activation: 0.5,
	}, 4, rng); err != nil {
		return err
	}
	_, err := trials.MultiColorTrial(cg, col, trials.MCTOptions{
		Phase:  phase + "/mct",
		Active: active,
		Space:  space,
		Seed:   rng.Uint64(),
	}, rng)
	return err
}

func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
