package core

import (
	"testing"
	"testing/quick"

	"clustercolor/internal/cluster"
	"clustercolor/internal/coloring"
	"clustercolor/internal/graph"
	"clustercolor/internal/network"
)

// TestPropertyAlwaysProperColoring is the library's master invariant: for
// random instances, random topologies, and random (valid) parameters, the
// pipeline must always return a proper total (Δ+1)-coloring.
func TestPropertyAlwaysProperColoring(t *testing.T) {
	f := func(seed uint64, nRaw, pRaw, topoRaw, epsRaw uint8) bool {
		n := 20 + int(nRaw)%180            // 20..199
		p := 0.02 + float64(pRaw%60)/100.0 // 0.02..0.61
		topos := []graph.ClusterTopology{graph.TopologySingleton, graph.TopologyStar, graph.TopologyPath, graph.TopologyTree}
		topo := topos[int(topoRaw)%len(topos)]
		h := graph.MustGNP(n, p, graph.NewRand(seed))
		size := 1
		if topo != graph.TopologySingleton {
			size = 2 + int(topoRaw)%3
		}
		exp, err := graph.Expand(h, graph.ExpandSpec{Topology: topo, MachinesPerCluster: size}, graph.NewRand(seed+1))
		if err != nil {
			t.Log(err)
			return false
		}
		cost, err := newPropertyCost()
		if err != nil {
			t.Log(err)
			return false
		}
		cg, err := newPropertyCG(h, exp, cost)
		if err != nil {
			t.Log(err)
			return false
		}
		params := DefaultParams(n)
		params.Seed = seed + 2
		params.Eps = 0.1 + float64(epsRaw%20)/100.0 // 0.10..0.29
		col, _, err := Color(cg, params)
		if err != nil {
			t.Log(err)
			return false
		}
		if err := coloring.VerifyComplete(h, col); err != nil {
			t.Log(err)
			return false
		}
		return col.CountColors() <= h.MaxDegree()+1
	}
	cfg := &quick.Config{MaxCount: 12}
	if testing.Short() {
		cfg.MaxCount = 4
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyStatsMonotone: more fallback colored vertices can never exceed
// the instance size, and stage counters stay consistent with the graph.
func TestPropertyStatsMonotone(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := 30 + int(nRaw)%120
		h := graph.MustGNP(n, 10.0/float64(n), graph.NewRand(seed))
		cg := quietCG(h, seed+1)
		if cg == nil {
			return false
		}
		params := DefaultParams(n)
		params.Seed = seed + 2
		_, stats, err := Color(cg, params)
		if err != nil {
			t.Log(err)
			return false
		}
		if stats.FallbackColored < 0 || stats.FallbackColored > n {
			return false
		}
		if stats.FallbackRounds < 0 || stats.FallbackRounds > stats.Rounds {
			return false
		}
		if stats.NumSparse < 0 || stats.NumSparse > n {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 10}
	if testing.Short() {
		cfg.MaxCount = 3
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// helpers shared by the property tests.
func newPropertyCost() (*network.CostModel, error) { return network.NewCostModel(48) }

func newPropertyCG(h *graph.Graph, exp *graph.Expansion, cost *network.CostModel) (*cluster.CG, error) {
	return cluster.New(h, exp, cost)
}

func quietCG(h *graph.Graph, seed uint64) *cluster.CG {
	exp, err := graph.Expand(h, graph.ExpandSpec{Topology: graph.TopologySingleton}, graph.NewRand(seed))
	if err != nil {
		return nil
	}
	cost, err := network.NewCostModel(48)
	if err != nil {
		return nil
	}
	cg, err := cluster.New(h, exp, cost)
	if err != nil {
		return nil
	}
	return cg
}
