package core

import (
	"math/rand/v2"
	"strings"
	"testing"

	"clustercolor/internal/coloring"
	"clustercolor/internal/graph"
)

// TestFallbackFinishExhaustionCleanError pins the exhaustion contract of the
// terminal fallback loop: when MaxFallbackRounds is too small to finish, the
// run returns a clean error — not a partial coloring passing VerifyComplete
// — and the rounds the exhausted loop charged are visible in the stats.
func TestFallbackFinishExhaustionCleanError(t *testing.T) {
	// An entirely uncolored K40: one 0.8-activation TryColor wave over true
	// palettes cannot finish it (same-color collisions and the ~20% that
	// stay inactive), so MaxFallbackRounds=1 must exhaust. Pinned seed.
	h := graph.Clique(40)
	cg := buildCG(t, h, graph.TopologySingleton, 1, 3)
	col := coloring.New(h.N(), h.MaxDegree())
	params := DefaultParams(h.N())
	params.MaxFallbackRounds = 1
	stats := &Stats{}
	rng := rand.New(rand.NewPCG(5, 5))

	fbStart := cg.Cost().Rounds()
	err := fallbackFinish(cg, col, params, stats, rng)
	stats.FallbackRounds = cg.Cost().Rounds() - fbStart
	if err == nil {
		t.Fatal("MaxFallbackRounds=1 finished K40 in one wave; want exhaustion error")
	}
	if !strings.Contains(err.Error(), "uncolored after 1 fallback rounds") {
		t.Fatalf("unexpected exhaustion error: %v", err)
	}
	// The partial result must not masquerade as a complete coloring, and
	// what was colored must still be proper.
	if coloring.VerifyComplete(h, col) == nil {
		t.Fatal("exhausted fallback left a coloring that passes VerifyComplete")
	}
	if err := coloring.VerifyProper(h, col); err != nil {
		t.Fatalf("exhausted fallback corrupted the partial coloring: %v", err)
	}
	// Exactly one wave was charged: one palette materialization round
	// (⌈Δ/bandwidth⌉ = 1 H-round at Δ=39, B=48) plus TryColorRound's
	// announce and respond rounds, all at dilation 0.
	if want := int64(3); stats.FallbackRounds != want {
		t.Fatalf("exhausted run charged FallbackRounds=%d, want %d", stats.FallbackRounds, want)
	}

	// With the default budget the same loop finishes and verifies.
	params.MaxFallbackRounds = DefaultParams(h.N()).MaxFallbackRounds
	if err := fallbackFinish(cg, col, params, stats, rng); err != nil {
		t.Fatalf("default budget: %v", err)
	}
	if err := coloring.VerifyComplete(h, col); err != nil {
		t.Fatalf("default budget left incomplete coloring: %v", err)
	}
}
