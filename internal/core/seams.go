package core

import (
	"fmt"
	"math/rand/v2"

	"clustercolor/internal/cluster"
	"clustercolor/internal/coloring"
	"clustercolor/internal/matching"
	"clustercolor/internal/putaside"
	"clustercolor/internal/sct"
)

// This file exports the per-clique stage seams of the high-degree pipeline:
// the exact job bodies the parallel stage loops run for one almost-clique
// (MatchingJob, SCTJob, DonateJob), the task structs pinning their inputs,
// and a StageTracer hook that surfaces every stage's inputs and outcomes to
// an observer. The distsim conformance harness drives each primitive in
// isolation through these seams — same task, same derived RNG stream, same
// snapshot view — and byte-compares a machine-granularity execution against
// the vertex-level result. Nothing here changes pipeline behaviour: Color
// calls ColorTraced with a nil tracer.

// MatchingTask pins one clique's colorful-matching inputs (Algorithm 4/5
// Step 1): the members, the reserved prefix the matching must avoid, the
// sampling-round budget, and the cabal fingerprint-backup configuration.
type MatchingTask struct {
	Members       []int
	ReservedMax   int32
	Rounds        int
	TargetRepeats int
	// WithFingerprint enables the Proposition 4.15 backup when sampling
	// falls short; FingerprintTrials is its trial count k.
	WithFingerprint   bool
	FingerprintTrials int
}

// MatchingJob runs one clique's colorful matching against a coloring view,
// exactly as the parallel stage loop does. It returns M_K, the number of
// repeated-color units created.
func MatchingJob(subCG *cluster.CG, view *coloring.Coloring, task MatchingTask, rng *rand.Rand) (int, error) {
	m, err := matching.Sampling(subCG, view, matching.SamplingOptions{
		Phase:         "matching/sampling",
		Members:       task.Members,
		ReservedMax:   task.ReservedMax,
		Rounds:        task.Rounds,
		TargetRepeats: task.TargetRepeats,
	}, rng)
	if err != nil {
		return 0, err
	}
	if task.WithFingerprint && m < task.TargetRepeats && len(task.Members) >= 8 {
		// Proposition 4.15 backup: find anti-edges among uncolored members
		// by fingerprinting, then color the pairs.
		var uncolored []int
		for _, v := range task.Members {
			if !view.IsColored(v) {
				uncolored = append(uncolored, v)
			}
		}
		if len(uncolored) >= 4 {
			pairs, err := matching.FingerprintMatching(subCG, matching.FingerprintOptions{
				Phase:       "matching/fingerprint",
				Members:     uncolored,
				Trials:      task.FingerprintTrials,
				TargetPairs: task.TargetRepeats - m,
			}, rng)
			if err != nil {
				return 0, err
			}
			colored, err := matching.ColorPairs(subCG, view, pairs, task.ReservedMax, "matching/colorpairs", rng)
			if err != nil {
				return 0, err
			}
			m += colored
		}
	}
	return m, nil
}

// SCTTask pins one clique's synchronized color trial inputs (Lemma 4.13):
// members, the clique's reserved prefix, and the per-member inlier/exclusion
// flags (aligned with Members) that gate participation.
type SCTTask struct {
	Members     []int
	ReservedMax int32
	Inlier      []bool
	Exclude     []bool
}

// SCTJob runs one clique's synchronized color trial against a coloring view,
// exactly as the parallel stage loop does: participants are the uncolored
// non-excluded inliers, capped by the clique palette's non-reserved capacity
// (Lemma 4.13's precondition). It returns the number of vertices colored.
func SCTJob(subCG *cluster.CG, view *coloring.Coloring, task SCTTask, rng *rand.Rand) (int, error) {
	cp := coloring.BuildCliquePalette(subCG, view, task.Members)
	capacity := 0
	for _, c := range cp.FreeView() {
		if c > task.ReservedMax {
			capacity++
		}
	}
	var participants []int
	for j, v := range task.Members {
		if view.IsColored(v) || !task.Inlier[j] || task.Exclude[j] {
			continue
		}
		if len(participants) == capacity {
			break
		}
		participants = append(participants, v)
	}
	if len(participants) == 0 {
		// Even learning that no one participates costs the enumeration
		// rounds (Lemma 3.3 prefix sums count the participants); charging
		// them keeps the model no cheaper than the machine-level protocol
		// the distsim conformance harness executes.
		subCG.ChargeHRounds("sct/enumerate", 2, 2*subCG.IDBits())
		return 0, nil
	}
	res, err := sct.Run(subCG, view, sct.Options{
		Phase:        "sct",
		Members:      task.Members,
		Participants: participants,
		ReservedMax:  task.ReservedMax,
	}, rng)
	if err != nil {
		return 0, err
	}
	return res.Colored, nil
}

// DonateTask pins one cabal's put-aside donation inputs (Algorithm 8): the
// members, the put-aside set, the per-member inlier and forbidden-donor
// flags (aligned with Members), and the scaled thresholds.
type DonateTask struct {
	Members            []int
	PutAside           []int
	Inlier             []bool
	Forbidden          []bool
	FreeColorThreshold int
	BlockSize          int
	SampleTries        int
}

// DonateAux reports how a DonateJob colored its put-aside set.
type DonateAux struct {
	Donated  int
	Free     int
	Fallback int
}

// DonateJob runs one cabal's put-aside donation against a coloring view,
// exactly as the parallel stage loop does. A task with an empty put-aside
// set is a no-op.
func DonateJob(subCG *cluster.CG, view *coloring.Coloring, task DonateTask,
	scratch *coloring.PaletteScratch, rng *rand.Rand) (DonateAux, error) {
	if len(task.PutAside) == 0 {
		return DonateAux{}, nil
	}
	idxOf := make(map[int]int, len(task.Members))
	for j, v := range task.Members {
		idxOf[v] = j
	}
	// The task carries flags for members only; putaside queries them only
	// on cabal members today. A silent map-miss would read member 0's flag,
	// so fail loudly if that contract ever changes.
	memberIdx := func(v int) int {
		j, ok := idxOf[v]
		if !ok {
			panic(fmt.Sprintf("core: donate flag query for non-member vertex %d", v))
		}
		return j
	}
	res, err := putaside.ColorPutAside(subCG, view, putaside.DonateOptions{
		Phase:              "cabal/donate",
		Cabal:              task.Members,
		PutAside:           task.PutAside,
		Inlier:             func(v int) bool { return task.Inlier[memberIdx(v)] },
		ForbiddenDonors:    func(v int) bool { return task.Forbidden[memberIdx(v)] },
		FreeColorThreshold: task.FreeColorThreshold,
		BlockSize:          task.BlockSize,
		SampleTries:        task.SampleTries,
		Scratch:            scratch,
	}, rng)
	if err != nil {
		return DonateAux{}, err
	}
	return DonateAux{Donated: res.ViaDonation, Free: res.ViaFreeColors, Fallback: res.ViaFallback}, nil
}

// MemberWrite is one vertex recolored by a per-clique stage engine relative
// to the stage's snapshot.
type MemberWrite struct {
	V int
	C int32
}

// StageTrace reports one parallel per-clique stage of the high-degree
// pipeline: which primitive ran, against which frozen snapshot, with which
// per-clique tasks and derived seeds, what the cost model charged for it,
// and what every clique's engine wrote against its snapshot view (before
// cross-clique conflict drops).
type StageTrace struct {
	// Stage is "decompose", "matching/noncabals", "sct/noncabals",
	// "matching/cabals", "sct/cabals", or "donate". A "decompose" trace is
	// vertex-level: it carries only ChargedRounds (no tasks, snapshot, or
	// writes) — the fingerprint-wave primitive covers its machine level.
	Stage string
	// BaseSeed is the stage's seed; clique i ran with a fresh PCG stream
	// seeded by parwork.RowSeed(BaseSeed, i).
	BaseSeed uint64
	// Snapshot is a clone of the coloring every clique's engine ran against.
	Snapshot *coloring.Coloring
	// ChargedRounds is what the stage added to the cost model: the maximum
	// over the per-clique scratch models (AbsorbParallel semantics).
	ChargedRounds int64
	// Exactly one of the task slices is non-nil, aligned with Writes.
	Matching []MatchingTask
	SCT      []SCTTask
	Donate   []DonateTask
	// Writes lists each clique's snapshot-relative writes.
	Writes [][]MemberWrite
	// Per-clique auxiliary outcomes, aligned with the task slice.
	MatchingRepeats []int
	SCTColored      []int
	DonateAux       []DonateAux
}

// StageTracer observes per-clique stages as the pipeline executes them.
// The trace and its Snapshot are owned by the observer: the pipeline clones
// the coloring per stage and never touches the trace again, so retaining it
// (as the conformance harness does) is safe.
type StageTracer func(*StageTrace)
