package core

import (
	"math/rand/v2"
	"sync"

	"clustercolor/internal/cluster"
	"clustercolor/internal/coloring"
	"clustercolor/internal/network"
	"clustercolor/internal/parwork"
)

// The per-clique stage loops (colorful matchings, synchronized color trials,
// clique-palette builds, put-aside donation) are embarrassingly parallel:
// almost-cliques are vertex-disjoint, so each clique's engine writes only
// its own members. runPerClique fans them across the parwork worker pool —
// the same machinery and SetParallelism knob as the experiment runner —
// while keeping the output coloring byte-identical at every parallelism
// level:
//
//   - each clique derives its own RNG stream from one base seed and its
//     clique index (parwork.RowSeed), never from a shared stream;
//   - each worker runs its engine against a private snapshot view of the
//     coloring (frozen at loop entry), so no engine observes another
//     clique's concurrent writes;
//   - the resulting member writes are applied to the shared coloring
//     sequentially in clique order, and any write that conflicts with an
//     earlier-applied neighbor write (a cross-clique edge whose endpoints
//     picked the same color against the same snapshot) is dropped — the
//     vertex keeps its snapshot state and a later stage or the terminal
//     fallback recovers it.
//
// Dropping on conflict keeps the coloring proper by construction: a kept
// snapshot color was proper when the snapshot was taken, and every applied
// write is validated against all previously applied writes.

// cliqueWorker is the reusable per-worker state: a private snapshot view of
// the coloring and a palette scratch.
type cliqueWorker struct {
	view    *coloring.Coloring
	scratch *coloring.PaletteScratch
}

// cliqueRun is one clique's outcome: the engine payload, the scratch cost
// model, and the member writes (recolorings first, so donor swaps apply
// before their recipients adopt the freed color).
type cliqueRun[T any] struct {
	val     T
	sub     *network.CostModel
	writesV []int32
	writesC []int32
}

// runPerClique executes job for each of n vertex-disjoint cliques in
// parallel and applies the resulting writes in clique order. memberOf(i)
// must return the vertex set job i writes into; job receives a subCG bound
// to a scratch cost model (merged afterwards with AbsorbParallel under
// phase), a private coloring view, a reusable palette scratch, and a
// derived RNG.
//
// It returns the per-clique payloads in index order, the snapshot-relative
// member writes per clique (what each engine decided, before cross-clique
// conflict drops — the stage tracer and the distsim conformance harness
// compare machine-level protocols against exactly these), plus the number
// of writes dropped at apply time. Payloads are measured against the
// clique's snapshot run, so when a cross-clique collision drops a write
// they can overstate the applied effect; the drop count makes that skew
// visible (callers surface it via Stats.ParallelDroppedWrites).
// captureWrites selects whether the per-clique write lists are materialized
// (only stage tracing needs them; untraced runs skip the extra pass).
func runPerClique[T any](cg *cluster.CG, col *coloring.Coloring, phase string,
	n int, baseSeed uint64, captureWrites bool, memberOf func(i int) []int,
	job func(i int, subCG *cluster.CG, view *coloring.Coloring, scratch *coloring.PaletteScratch, rng *rand.Rand) (T, error),
) ([]T, [][]MemberWrite, int, error) {
	if n == 0 {
		return nil, nil, 0, nil
	}
	pool := sync.Pool{New: func() any {
		return &cliqueWorker{view: col.Clone(), scratch: coloring.NewPaletteScratch()}
	}}
	runs, err := parwork.ForEach(n, func(i int) (cliqueRun[T], error) {
		// The worker is returned to the pool only after its view has been
		// reverted to the shared snapshot; on an error path it is discarded
		// instead, so no later clique can run against a dirtied view.
		w := pool.Get().(*cliqueWorker)
		rng := parwork.StreamRNG(parwork.RowSeed(baseSeed, i))
		sub, err := network.NewCostModel(cg.Cost().Bandwidth())
		if err != nil {
			return cliqueRun[T]{}, err
		}
		val, err := job(i, cg.WithCost(sub), w.view, w.scratch, rng)
		if err != nil {
			return cliqueRun[T]{}, err
		}
		run := cliqueRun[T]{val: val, sub: sub}
		for pass := 0; pass < 2; pass++ {
			for _, m := range memberOf(i) {
				nc, oc := w.view.Get(m), col.Get(m)
				if nc == oc {
					continue
				}
				if recolor := oc != coloring.None; (pass == 0) != recolor {
					continue
				}
				run.writesV = append(run.writesV, int32(m))
				run.writesC = append(run.writesC, nc)
			}
		}
		// Revert the view to the shared snapshot for this worker's next
		// clique: engines write only their own members, so undoing those is
		// O(|K|), not an O(n) copy (col is frozen for the whole fan-out).
		for _, m := range memberOf(i) {
			if c := col.Get(m); c == coloring.None {
				w.view.Unset(m)
			} else if err := w.view.Set(m, c); err != nil {
				return cliqueRun[T]{}, err
			}
		}
		pool.Put(w)
		return run, nil
	})
	if err != nil {
		return nil, nil, 0, err
	}
	vals := make([]T, n)
	var writes [][]MemberWrite
	if captureWrites {
		writes = make([][]MemberWrite, n)
	}
	subs := make([]*network.CostModel, n)
	// The apply loop must stay sequential (clique order is the conflict
	// tie-break), but its O(deg) neighbor scan per write only needs the
	// neighbors that were themselves written this stage: every engine keeps
	// its snapshot view proper against the full neighborhood, so for any
	// write v→c and unwritten neighbor u, c differs from u's snapshot color —
	// which is exactly u's color for the whole apply pass. (Neighbors whose
	// write is a net-uncolor still count as written: their write drops and
	// they keep a snapshot color the engine no longer vouches against.) So at
	// parallelism > 1 the edge scans — the serial fraction that capped Amdahl
	// scaling of the per-clique stages — precompute candidate lists across
	// the pool, and the sequential decision loop touches candidates only.
	// Checking the same col.Get values in the same order, it makes decisions
	// byte-identical to the full scan.
	var cands [][][]int32
	totalWrites := 0
	for i := range runs {
		totalWrites += len(runs[i].writesV)
	}
	if totalWrites >= parallelApplyMinWrites && parwork.Parallelism() > 1 {
		written := make([]bool, col.N())
		for i := range runs {
			for _, vv := range runs[i].writesV {
				written[vv] = true
			}
		}
		cands = make([][][]int32, n)
		if _, err := parwork.ForEach(n, func(i int) (struct{}, error) {
			wv := runs[i].writesV
			if len(wv) == 0 {
				return struct{}{}, nil
			}
			lists := make([][]int32, len(wv))
			for j, vv := range wv {
				var cl []int32
				for _, u := range cg.H.Neighbors(int(vv)) {
					if written[u] {
						cl = append(cl, int32(u))
					}
				}
				lists[j] = cl
			}
			cands[i] = lists
			return struct{}{}, nil
		}); err != nil {
			return nil, nil, 0, err
		}
	}
	dropped := 0
	for i, run := range runs {
		vals[i] = run.val
		subs[i] = run.sub
		for j, vv := range run.writesV {
			v, c := int(vv), run.writesC[j]
			if captureWrites {
				writes[i] = append(writes[i], MemberWrite{V: v, C: c})
			}
			if c == coloring.None {
				// Engines never net-uncolor a member; if one ever does, keep
				// the snapshot color — dropping information is always proper.
				dropped++
				continue
			}
			conflict := false
			if cands != nil {
				for _, u := range cands[i][j] {
					if col.Get(int(u)) == c {
						conflict = true
						break
					}
				}
			} else {
				for _, u := range cg.H.Neighbors(v) {
					if col.Get(int(u)) == c {
						conflict = true
						break
					}
				}
			}
			if conflict {
				dropped++
				continue
			}
			if err := col.Set(v, c); err != nil {
				return nil, nil, 0, err
			}
		}
	}
	cg.Cost().AbsorbParallel(phase, subs)
	return vals, writes, dropped, nil
}

// parallelApplyMinWrites gates the candidate precompute: below it the plain
// serial scan is cheaper than a pool dispatch. The decisions are identical
// either way — the gate moves only wall-clock.
const parallelApplyMinWrites = 128
