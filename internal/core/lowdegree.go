package core

import (
	"math/bits"
	"math/rand/v2"
	"sort"

	"clustercolor/internal/cluster"
	"clustercolor/internal/coloring"
	"clustercolor/internal/linial"
	"clustercolor/internal/parwork"
	"clustercolor/internal/trials"
)

// colorLowDegree is the Theorem 1.1 pipeline of Section 9 for
// Δ ≤ poly(log n):
//
//  1. DegreeReduction — O(log log n) TryColor waves over the full palette
//     (Section 9.2's use of Lemma D.3).
//  2. LearnColors — with Δ = O(polylog n), a cluster learns its palette by
//     aggregating an O(Δ)-bit bitmap, pipelined over ⌈Δ/bandwidth⌉ rounds
//     (Section 9.1).
//  3. Shattering — BEPS-style random palette trials until the uncolored
//     components are polylog-sized.
//  4. SmallInstanceColoring — the Lemma 9.1 contract: the shattered
//     components are deg+1-list-colored via Linial color reduction plus
//     class-by-class recoloring (the finishing move of the lemma's own
//     proof); the Ghaffari–Kuhn rounding itself is substituted per
//     DESIGN.md §3 and the round charge follows the lemma's bound.
func colorLowDegree(cg *cluster.CG, col *coloring.Coloring, params Params, stats *Stats, rng *rand.Rand) error {
	h := cg.H
	n := h.N()
	if n == 0 {
		return nil
	}
	stats.StageOrder = append(stats.StageOrder, "DegreeReduction")
	loglog := bits.Len(uint(bits.Len(uint(n)))) + 2
	space := sparseSpace(col)
	// Stage 1: degree reduction, O(log log n) waves.
	if _, err := trials.TryColorLoop(cg, col, trials.TryColorOptions{
		Phase:      "lowdeg/reduce",
		Space:      func(v int) []int32 { return space },
		Activation: 0.5,
	}, 2*loglog, rng); err != nil {
		return err
	}
	stats.StageOrder = append(stats.StageOrder, "LearnColors")
	// Stage 2: palette learning — one aggregated Δ-bit bitmap per cluster.
	cg.ChargeHRounds("lowdeg/learn", 1, col.Delta()+1)
	stats.StageOrder = append(stats.StageOrder, "Shattering")
	// Stage 3: shattering — palette-restricted trials for O(log log n)
	// waves. After this, uncolored components are small w.h.p. Palettes go
	// through one reusable scratch; each is consumed before the next Space
	// call, per the scratch-ownership contract.
	scratch := coloring.NewPaletteScratch()
	var tsc trials.TryColorScratch
	for i := 0; i < 2*loglog; i++ {
		if uncoloredCount(col) == 0 {
			return nil
		}
		if _, err := trials.TryColorRoundWith(cg, col, trials.TryColorOptions{
			Phase:      "lowdeg/shatter",
			Activation: 0.7,
			Space: func(v int) []int32 {
				return scratch.Palette(h, col, v)
			},
		}, rng, &tsc); err != nil {
			return err
		}
	}
	// Stage 4: small-instance coloring per shattered component.
	stats.StageOrder = append(stats.StageOrder, "SmallInstanceColoring")
	return smallInstanceColoring(cg, col, stats, rng)
}

// smallInstanceColoring colors the uncolored subgraph left by shattering,
// following the Lemma 9.1 proof structure: a Linial color reduction on the
// shattered subgraph produces a proper O(Δ'²)-coloring of its (polylog-size)
// components in O(log* n) waves, and the color classes — independent sets —
// are then recolored one per round from the vertices' learned deg+1 lists.
// Rounds are charged per the lemma's budget; a vertex with an exhausted
// palette (impossible under deg+1 lists, guarded anyway) is left to the
// terminal fallback.
func smallInstanceColoring(cg *cluster.CG, col *coloring.Coloring, stats *Stats, rng *rand.Rand) error {
	h := cg.H
	var uncolored []int
	for v := 0; v < h.N(); v++ {
		if !col.IsColored(v) {
			uncolored = append(uncolored, v)
		}
	}
	if len(uncolored) == 0 {
		return nil
	}
	// Induced shattered subgraph; Linial runs on it against the same cost
	// model (the sub-instance lives on the same network).
	sub, orig := h.InducedSubgraph(uncolored)
	subCG, err := cluster.NewAbstract(sub, cg.G, cg.Dilation, cg.Cost())
	if err != nil {
		return err
	}
	linColors, linQ := linial.FromIDs(sub)
	linColors, linQ, err = linial.Run(subCG, linColors, linQ, "lowdeg/linial")
	if err != nil {
		return err
	}
	// Recolor one Linial class per round: classes are independent sets of
	// the shattered subgraph, and uncolored vertices of different
	// components are never adjacent, so simultaneous palette picks stay
	// proper.
	byClass := make([][]int, linQ)
	for i, c := range linColors {
		byClass[c] = append(byClass[c], orig[i])
	}
	// Each class is an independent set of the shattered subgraph, and its
	// members are pairwise non-adjacent in h too (all were uncolored, so an
	// h-edge would appear in the induced subgraph). Palette picks within a
	// class therefore never observe each other's writes: compute them in
	// parallel across the pool, apply sequentially in vertex order —
	// byte-identical to the serial loop.
	var choice []int32
	for c := linQ - 1; c >= 0; c-- {
		vs := byClass[c]
		if len(vs) == 0 {
			continue
		}
		cg.ChargeHRounds("lowdeg/small-instance", 1, 2*cg.IDBits())
		sort.Ints(vs)
		if cap(choice) < len(vs) {
			choice = make([]int32, len(vs))
		}
		choice = choice[:len(vs)]
		chunks := parwork.RangeChunks(len(vs))
		if _, err := parwork.ForEach(chunks, func(ci int) (struct{}, error) {
			lo, hi := parwork.ChunkBoundsIn(len(vs), chunks, ci)
			sc := coloring.NewPaletteScratch()
			for i := lo; i < hi; i++ {
				pal := sc.Palette(h, col, vs[i])
				if len(pal) == 0 {
					choice[i] = coloring.None // left to the terminal fallback
					continue
				}
				choice[i] = pal[0]
			}
			return struct{}{}, nil
		}); err != nil {
			return err
		}
		for i, v := range vs {
			if choice[i] == coloring.None {
				continue
			}
			if err := col.Set(v, choice[i]); err != nil {
				return err
			}
		}
	}
	_ = rng
	_ = stats
	return nil
}
