// Package core assembles the full (Δ+1)-coloring algorithm of the paper on
// top of the substrate packages: the high-degree pipeline of Theorem 1.2
// (Algorithms 3–5 and 11) and the low-degree pipeline of Theorem 1.1
// (Section 9: degree reduction, shattering, small-instance coloring).
//
// The paper's constants (ε = 1/2000, ℓ = Θ(log^1.1 n), Δ_low = Θ(log²¹ n),
// r_K = 250·max{ẽ_K, ℓ}) are asymptotic; Params exposes them with
// laptop-scale defaults. Every stage keeps its paper semantics, and a
// bounded fallback loop guarantees a proper total coloring at any scale;
// fallback activity is counted separately in Stats so experiments can report
// how far the stage logic alone carried.
package core

import (
	"fmt"
	"math"
	"time"
)

// Params are the tunable constants of the algorithm.
type Params struct {
	// Eps is the almost-clique decomposition parameter (paper: 1/2000;
	// default 0.25 — small graphs need a permissive ε to find any dense
	// structure).
	Eps float64
	// EllFactor scales the cabal threshold ℓ = EllFactor·log^1.1 n
	// (paper: Θ(1) with a large constant; default 1.0).
	EllFactor float64
	// ReservedFactor scales r_K = ReservedFactor·max{ẽ_K, ℓ} (paper: 250;
	// default 1.0 — 250 exceeds Δ at any testable size).
	ReservedFactor float64
	// ReservedCapFrac caps reserved colors at this fraction of Δ+1
	// (paper's 300εΔ with ε = 1/2000 is 0.15Δ; default 0.2).
	ReservedCapFrac float64
	// SlackActivation is p_g for slack generation (paper: 1/200; default
	// 0.1 so small graphs generate measurable slack).
	SlackActivation float64
	// InlierExtFactor is the ẽ_v ≤ c·ẽ_K inlier condition (paper: 20).
	InlierExtFactor float64
	// DeltaLow is the Δ threshold below which the low-degree pipeline of
	// Theorem 1.1 runs (paper: Θ(log²¹ n); default 4·log₂ n scaled).
	// Zero means "choose from n".
	DeltaLow int
	// MatchingTrialFactor scales the fingerprint-matching trial count
	// k = factor·log₂ n (paper: 6C/(ετ); default 10).
	MatchingTrialFactor int
	// MaxFallbackRounds bounds the terminal cleanup loop (default 200).
	MaxFallbackRounds int
	// Shards routes the decomposition stage through the partitioned
	// substrate (internal/shard): the graph splits into this many contiguous
	// vertex slices, each running its own sketch arenas and worker-pool
	// share, stitched by boundary-exchange phases. 0 or 1 keeps the
	// single-address-space path. The coloring, decomposition, and charged
	// rounds are byte-identical either way; only the execution layout (and
	// the cross-shard traffic reported in Stats) changes.
	Shards int
	// Seed drives all randomness.
	Seed uint64
}

// DefaultParams returns laptop-scale defaults for an n-vertex instance.
func DefaultParams(n int) Params {
	return Params{
		Eps:                 0.25,
		EllFactor:           1.0,
		ReservedFactor:      1.0,
		ReservedCapFrac:     0.2,
		SlackActivation:     0.1,
		InlierExtFactor:     20,
		DeltaLow:            0,
		MatchingTrialFactor: 10,
		MaxFallbackRounds:   200,
		Seed:                1,
	}
}

// IsZero reports whether p is the zero value. A zero Params never validates
// (Eps must be positive), so callers use IsZero as the explicit "unset —
// substitute DefaultParams" signal rather than comparing structs inline.
func (p Params) IsZero() bool { return p == (Params{}) }

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.Eps <= 0 || p.Eps >= 1.0/3 {
		return fmt.Errorf("core: Eps %v out of (0, 1/3)", p.Eps)
	}
	if p.ReservedCapFrac <= 0 || p.ReservedCapFrac >= 1 {
		return fmt.Errorf("core: ReservedCapFrac %v out of (0,1)", p.ReservedCapFrac)
	}
	if p.EllFactor <= 0 {
		return fmt.Errorf("core: EllFactor %v must be positive", p.EllFactor)
	}
	if p.ReservedFactor <= 0 {
		return fmt.Errorf("core: ReservedFactor %v must be positive", p.ReservedFactor)
	}
	if p.InlierExtFactor < 1 {
		return fmt.Errorf("core: InlierExtFactor %v must be >= 1", p.InlierExtFactor)
	}
	if p.MatchingTrialFactor < 1 {
		return fmt.Errorf("core: MatchingTrialFactor %v must be >= 1", p.MatchingTrialFactor)
	}
	if p.MaxFallbackRounds < 1 {
		return fmt.Errorf("core: MaxFallbackRounds %v must be >= 1", p.MaxFallbackRounds)
	}
	if p.Shards < 0 {
		return fmt.Errorf("core: Shards %v must be >= 0", p.Shards)
	}
	return nil
}

// Ell returns the cabal threshold ℓ = EllFactor·(log₂ n)^1.1 for an n-vertex
// instance.
func (p Params) Ell(n int) float64 {
	if n < 2 {
		n = 2
	}
	lg := math.Log2(float64(n))
	return p.EllFactor * math.Pow(lg, 1.1)
}

// DeltaLowThreshold returns the low/high-degree boundary: explicit DeltaLow
// when set, otherwise 4·log₂ n — the scaled stand-in for Θ(log²¹ n); the
// high-degree stages only need Δ ≫ log n headroom at simulation scale.
func (p Params) DeltaLowThreshold(n int) int {
	if p.DeltaLow > 0 {
		return p.DeltaLow
	}
	if n < 2 {
		n = 2
	}
	return int(4 * math.Log2(float64(n)))
}

// Stats reports what a run did and what it cost.
type Stats struct {
	// Path is "high-degree" or "low-degree".
	Path string
	// StageOrder traces the executed stages in order (the Figure 5 flow).
	StageOrder []string
	// Rounds is the total G-rounds charged by the cost model, including
	// fallback.
	Rounds int64
	// FallbackRounds is the subset of rounds spent in the terminal
	// cleanup loop (0 = the stage logic finished everything itself).
	FallbackRounds int64
	// DecompRounds is the subset of rounds spent in the almost-clique
	// decomposition stage (ComputeACD + profile building), charged
	// separately so experiments can attribute decomposition cost.
	DecompRounds int64
	// PhaseRounds breaks rounds down by phase label.
	PhaseRounds map[string]int64
	// MaxPayloadBits is the largest single-message payload charged.
	MaxPayloadBits int
	// Dilation is the support-tree height of the instance.
	Dilation int
	// Delta is Δ of the input.
	Delta int
	// NumCliques, NumCabals, NumSparse describe the decomposition.
	NumCliques int
	NumCabals  int
	NumSparse  int
	// SparseColored .. PutAsideStats track per-stage coloring volume. The
	// matching/put-aside counters are measured against each clique's
	// snapshot run; see ParallelDroppedWrites.
	SparseColored    int
	NonCabalColored  int
	CabalColored     int
	MatchingRepeats  int
	PutAsideDonated  int
	PutAsideFree     int
	PutAsideFallback int
	FallbackColored  int
	// ParallelDroppedWrites counts proposals the parallel per-clique stage
	// loops dropped at apply time (cross-clique collisions against the
	// shared snapshot). When positive, the per-stage counters above can
	// overstate the applied effect by at most this amount; the dropped
	// vertices are recovered by later stages or the terminal fallback.
	ParallelDroppedWrites int
	// Shards echoes Params.Shards when the decomposition ran partitioned
	// (0 = single address space); ShardExchangedRows/Bits are the sketch
	// rows shipped across shard boundaries and their deviation-encoded
	// size. Exchange traffic is an execution-layout cost, not a cluster
	// round charge — Rounds is identical with and without sharding.
	Shards             int
	ShardExchangedRows int64
	ShardExchangedBits int64
	// StageNs accrues wall-clock nanoseconds per pipeline stage ("decompose",
	// "slackgen", "sparse", "matchings", "scts", "palettes", "donate",
	// "lowdegree", "fallback", ...). Stages that run more than once (the
	// matching and SCT stages run for non-cabals and cabals) accumulate.
	// Wall time is an execution measurement for the speedup-curve emitters —
	// it feeds no algorithmic decision, so colorings stay byte-identical
	// whatever the clock says.
	StageNs map[string]int64
}

// AddStageNs accrues d under StageNs[stage], allocating the map on first use.
func (s *Stats) AddStageNs(stage string, d time.Duration) {
	if s.StageNs == nil {
		s.StageNs = make(map[string]int64)
	}
	s.StageNs[stage] += int64(d)
}
