package coloring

import (
	"testing"

	"clustercolor/internal/cluster"
	"clustercolor/internal/graph"
	"clustercolor/internal/network"
)

// propertyInstances returns a matrix of graphs with deterministic random
// partial colorings at several densities.
func propertyInstances(t *testing.T) []struct {
	name string
	g    *graph.Graph
	col  *Coloring
} {
	t.Helper()
	var out []struct {
		name string
		g    *graph.Graph
		col  *Coloring
	}
	add := func(name string, g *graph.Graph, fill float64, seed uint64) {
		col := New(g.N(), g.MaxDegree())
		rng := graph.NewRand(seed)
		for v := 0; v < g.N(); v++ {
			if rng.Float64() >= fill {
				continue
			}
			c := int32(1 + rng.IntN(g.MaxDegree()+1))
			ok := true
			for _, u := range g.Neighbors(v) {
				if col.Get(int(u)) == c {
					ok = false
					break
				}
			}
			if ok {
				if err := col.Set(v, c); err != nil {
					t.Fatal(err)
				}
			}
		}
		out = append(out, struct {
			name string
			g    *graph.Graph
			col  *Coloring
		}{name, g, col})
	}
	add("gnp-sparse", graph.MustGNP(300, 0.02, graph.NewRand(1)), 0.5, 10)
	add("gnp-dense", graph.MustGNP(120, 0.4, graph.NewRand(2)), 0.7, 11)
	add("clique", graph.Clique(60), 0.6, 12)
	add("path", graph.Path(50), 0.3, 13)
	add("empty-coloring", graph.MustGNP(80, 0.1, graph.NewRand(4)), 0, 14)
	return out
}

// bruteUsed returns φ(N(v)) as a bool table, the reference every palette
// quantity reduces to.
func bruteUsed(g *graph.Graph, col *Coloring, v int) []bool {
	used := make([]bool, col.MaxColor()+2)
	for _, u := range g.Neighbors(v) {
		if c := col.Get(int(u)); c != None {
			used[c] = true
		}
	}
	return used
}

// TestPaletteProperties ties the bitset machinery to first principles on
// random partial colorings: palette contents against a brute-force
// recomputation, len(Palette) == PaletteSize, Available ⇔ palette
// membership (scratch and package-level), and Slack == PaletteSize −
// active-restricted uncolored degree.
func TestPaletteProperties(t *testing.T) {
	for _, tc := range propertyInstances(t) {
		t.Run(tc.name, func(t *testing.T) {
			g, col := tc.g, tc.col
			scratch := NewPaletteScratch()
			active := func(v int) bool { return v%3 != 0 }
			for v := 0; v < g.N(); v++ {
				used := bruteUsed(g, col, v)
				var want []int32
				for c := int32(1); c <= col.MaxColor(); c++ {
					if !used[c] {
						want = append(want, c)
					}
				}
				pal := Palette(g, col, v)
				if len(pal) != len(want) {
					t.Fatalf("vertex %d: Palette has %d colors, brute force %d", v, len(pal), len(want))
				}
				for i := range pal {
					if pal[i] != want[i] {
						t.Fatalf("vertex %d: Palette[%d]=%d, brute force %d", v, i, pal[i], want[i])
					}
				}
				spal := scratch.Palette(g, col, v)
				for i := range spal {
					if spal[i] != want[i] {
						t.Fatalf("vertex %d: scratch Palette[%d]=%d, brute force %d", v, i, spal[i], want[i])
					}
				}
				if got := PaletteSize(g, col, v); got != len(want) {
					t.Fatalf("vertex %d: PaletteSize=%d, len(Palette)=%d", v, got, len(want))
				}
				if got := scratch.PaletteSize(g, col, v); got != len(want) {
					t.Fatalf("vertex %d: scratch PaletteSize=%d, len(Palette)=%d", v, got, len(want))
				}
				// Available ⇔ c ∈ Palette, probed over the whole space plus
				// both out-of-range sentinels.
				scratch.Load(g, col, v)
				for c := int32(0); c <= col.MaxColor()+1; c++ {
					inPalette := c >= 1 && c <= col.MaxColor() && !used[c]
					if got := Available(g, col, v, c); got != inPalette {
						t.Fatalf("vertex %d color %d: Available=%v, membership=%v", v, c, got, inPalette)
					}
					if got := scratch.LoadedAvailable(c); got != inPalette {
						t.Fatalf("vertex %d color %d: LoadedAvailable=%v, membership=%v", v, c, got, inPalette)
					}
				}
				// Slack against its definition, with and without an active
				// restriction.
				for _, act := range []func(int) bool{nil, active} {
					deg := 0
					for _, u := range g.Neighbors(v) {
						if col.IsColored(int(u)) {
							continue
						}
						if act != nil && !act(int(u)) {
							continue
						}
						deg++
					}
					if got := Slack(g, col, v, act); got != len(want)-deg {
						t.Fatalf("vertex %d: Slack=%d, PaletteSize−deg=%d", v, got, len(want)-deg)
					}
					if got := scratch.Slack(g, col, v, act); got != len(want)-deg {
						t.Fatalf("vertex %d: scratch Slack=%d, PaletteSize−deg=%d", v, got, len(want)-deg)
					}
				}
				// ReuseSlack = colored neighbors − distinct neighbor colors.
				colored, distinct := 0, 0
				for c := int32(1); c <= col.MaxColor(); c++ {
					if used[c] {
						distinct++
					}
				}
				for _, u := range g.Neighbors(v) {
					if col.IsColored(int(u)) {
						colored++
					}
				}
				if got := ReuseSlack(g, col, v); got != colored-distinct {
					t.Fatalf("vertex %d: ReuseSlack=%d, brute force %d", v, got, colored-distinct)
				}
				if got := scratch.ReuseSlack(g, col, v); got != colored-distinct {
					t.Fatalf("vertex %d: scratch ReuseSlack=%d, brute force %d", v, got, colored-distinct)
				}
			}
		})
	}
}

// TestCliquePaletteProperties checks the rebuilt clique palette against a
// brute-force recount on random partial colorings: repeats (the measured
// colorful-matching size), the free list, and buffer-reusing rebuilds
// agreeing with fresh builds.
func TestCliquePaletteProperties(t *testing.T) {
	cost, err := network.NewCostModel(48)
	if err != nil {
		t.Fatal(err)
	}
	var reused *CliquePalette
	for _, tc := range propertyInstances(t) {
		t.Run(tc.name, func(t *testing.T) {
			g, col := tc.g, tc.col
			cg, err := cluster.NewAbstract(g, g, 0, cost)
			if err != nil {
				t.Fatal(err)
			}
			// Members: a deterministic subset of the vertices.
			var members []int
			for v := 0; v < g.N(); v += 2 {
				members = append(members, v)
			}
			fresh := BuildCliquePalette(cg, col, members)
			reused = RebuildCliquePalette(reused, cg, col, members)

			// Brute-force recount of repeats and the free set.
			count := make(map[int32]int)
			for _, v := range members {
				if c := col.Get(v); c != None {
					count[c]++
				}
			}
			wantRepeats := 0
			for _, n := range count {
				if n > 1 {
					wantRepeats += n - 1
				}
			}
			var wantFree []int32
			for c := int32(1); c <= col.MaxColor(); c++ {
				if count[c] == 0 {
					wantFree = append(wantFree, c)
				}
			}
			for _, cp := range []*CliquePalette{fresh, reused} {
				if cp.Repeats() != wantRepeats {
					t.Fatalf("repeats=%d, brute-force recount %d", cp.Repeats(), wantRepeats)
				}
				if cp.FreeCount() != len(wantFree) {
					t.Fatalf("FreeCount=%d, brute force %d", cp.FreeCount(), len(wantFree))
				}
				free := cp.Free()
				view := cp.FreeView()
				for i := range wantFree {
					if free[i] != wantFree[i] || view[i] != wantFree[i] {
						t.Fatalf("free[%d]=%d view=%d, brute force %d", i, free[i], view[i], wantFree[i])
					}
				}
				for c := int32(1); c <= col.MaxColor(); c++ {
					if got := cp.UsedCount(c); int(got) != count[c] {
						t.Fatalf("UsedCount(%d)=%d, brute force %d", c, got, count[c])
					}
				}
			}
		})
	}
}
