package coloring

import (
	"math/bits"
	"sync"

	"clustercolor/internal/graph"
)

// PaletteScratch is caller-owned reusable scratch for palette queries: a
// flat []uint64 bitset over the color space plus a reusable output buffer.
// One scratch replaces the per-call []bool / map allocations of the
// package-level helpers, so steady-state palette work in the stage loops
// does zero per-vertex heap allocation.
//
// Ownership contract: a scratch belongs to exactly one goroutine at a time.
// Load, Palette, PaletteSize, Slack and ReuseSlack overwrite the scratch;
// slices returned by Palette alias the scratch's buffer and are valid only
// until the next call on the same scratch. Callers that retain a palette
// copy it (or use AppendPalette with their own destination). Parallel stage
// loops give each worker its own scratch.
type PaletteScratch struct {
	used      []uint64 // bitset over colors 0..loadedMax (index 0 unused)
	out       []int32  // reusable palette output buffer
	loadedMax int32    // MaxColor of the coloring at the last Load
}

// NewPaletteScratch returns an empty scratch; buffers grow on first use.
func NewPaletteScratch() *PaletteScratch { return &PaletteScratch{} }

// reset sizes the bitset for colors 1..maxColor and clears it.
func (s *PaletteScratch) reset(maxColor int32) {
	words := int(maxColor)/64 + 1
	if cap(s.used) < words {
		s.used = make([]uint64, words)
	} else {
		s.used = s.used[:words]
		for i := range s.used {
			s.used[i] = 0
		}
	}
	s.loadedMax = maxColor
}

// Load populates the scratch with φ(N(v)), the colors used in v's
// neighborhood, and returns s for chaining. After a Load, Has and Available
// answer membership queries in O(1).
func (s *PaletteScratch) Load(g *graph.Graph, c *Coloring, v int) *PaletteScratch {
	s.reset(c.MaxColor())
	for _, u := range g.Neighbors(v) {
		if col := c.colors[u]; col != None {
			s.used[col>>6] |= 1 << uint(col&63)
		}
	}
	return s
}

// Has reports whether col was used by a neighbor at the last Load.
func (s *PaletteScratch) Has(col int32) bool {
	if col < 1 || col > s.loadedMax {
		return false
	}
	return s.used[col>>6]&(1<<uint(col&63)) != 0
}

// LoadedAvailable reports whether col ∈ L_φ(v) for the vertex of the last
// Load: a legal color not used by any neighbor.
func (s *PaletteScratch) LoadedAvailable(col int32) bool {
	return col >= 1 && col <= s.loadedMax && !s.Has(col)
}

// usedCount returns |φ(N(v))| for the last Load.
func (s *PaletteScratch) usedCount() int {
	n := 0
	for _, w := range s.used {
		n += bits.OnesCount64(w)
	}
	return n
}

// Palette returns L_φ(v) = [Δ+1] \ φ(N(v)) sorted ascending. The returned
// slice aliases the scratch and is valid until the next call on s.
func (s *PaletteScratch) Palette(g *graph.Graph, c *Coloring, v int) []int32 {
	s.Load(g, c, v)
	s.out = appendFree(s.out[:0], s.used, s.loadedMax)
	return s.out
}

// AppendPalette appends L_φ(v) to dst and returns it; dst may be nil (the
// result is then exactly sized). Unlike Palette, the result is owned by the
// caller.
func (s *PaletteScratch) AppendPalette(dst []int32, g *graph.Graph, c *Coloring, v int) []int32 {
	s.Load(g, c, v)
	if need := int(s.loadedMax) - s.usedCount(); cap(dst)-len(dst) < need {
		grown := make([]int32, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	return appendFree(dst, s.used, s.loadedMax)
}

// appendFree appends the colors of [1, maxColor] absent from the bitset.
func appendFree(dst []int32, used []uint64, maxColor int32) []int32 {
	for col := int32(1); col <= maxColor; col++ {
		if used[col>>6]&(1<<uint(col&63)) == 0 {
			dst = append(dst, col)
		}
	}
	return dst
}

// Reset prepares the scratch as an empty used-set over colors 1..maxColor,
// for callers that assemble φ(N(v)) by hand instead of loading it from a
// graph — machine-granularity replays (internal/distsim) build their view of
// a neighborhood from received messages and then query it through the same
// bitset machinery as the vertex-level code.
func (s *PaletteScratch) Reset(maxColor int32) { s.reset(maxColor) }

// Mark records col as used by a neighbor. Out-of-range colors are ignored,
// matching Load's treatment of None.
func (s *PaletteScratch) Mark(col int32) {
	if col < 1 || col > s.loadedMax {
		return
	}
	s.used[col>>6] |= 1 << uint(col&63)
}

// MarkWords ORs an external used-color bitset into the scratch. words must
// use the scratch's layout (bit c of word c/64 = color c used); extra words
// beyond the scratch's color space are ignored.
func (s *PaletteScratch) MarkWords(words []uint64) {
	n := len(s.used)
	if len(words) < n {
		n = len(words)
	}
	for i := 0; i < n; i++ {
		s.used[i] |= words[i]
	}
}

// FreeColors returns the colors of [1, maxColor] not marked used, ascending.
// The slice aliases the scratch and is valid until its next use — the same
// contract (and the same order) as Palette.
func (s *PaletteScratch) FreeColors() []int32 {
	s.out = appendFree(s.out[:0], s.used, s.loadedMax)
	return s.out
}

// PaletteSize returns |L_φ(v)| without materializing the palette and without
// allocating: MaxColor minus the popcount of the used-color bitset.
func (s *PaletteScratch) PaletteSize(g *graph.Graph, c *Coloring, v int) int {
	s.Load(g, c, v)
	return int(c.MaxColor()) - s.usedCount()
}

// Slack returns s_φ(v) = |L_φ(v)| − deg_φ(v; active) with one neighborhood
// pass for the palette and one for the uncolored degree.
func (s *PaletteScratch) Slack(g *graph.Graph, c *Coloring, v int, active func(int) bool) int {
	return s.PaletteSize(g, c, v) - UncoloredDegree(g, c, v, active)
}

// ReuseSlack returns |N(v) ∩ dom φ| − |φ(N(v))| (Section 4.1's reuse slack)
// allocation-free.
func (s *PaletteScratch) ReuseSlack(g *graph.Graph, c *Coloring, v int) int {
	s.reset(c.MaxColor())
	colored := 0
	for _, u := range g.Neighbors(v) {
		if col := c.colors[u]; col != None {
			colored++
			s.used[col>>6] |= 1 << uint(col&63)
		}
	}
	return colored - s.usedCount()
}

// scratchPool backs the package-level convenience wrappers so legacy callers
// keep their signatures yet stop allocating per call in steady state.
var scratchPool = sync.Pool{New: func() any { return NewPaletteScratch() }}

func pooledScratch() *PaletteScratch   { return scratchPool.Get().(*PaletteScratch) }
func releaseScratch(s *PaletteScratch) { scratchPool.Put(s) }
