package coloring

import (
	"fmt"

	"clustercolor/internal/cluster"
)

// CliquePalette is the distributed data structure of Lemma 4.8: for an
// almost-clique K and partial coloring φ it answers, in O(1) H-rounds,
// queries about L_φ(K) = [Δ+1] \ φ(K) (the clique palette) and about
// φ(K) (the used set) — counts over a color range and "give me the i-th
// color in the range". Vertices of cluster graphs cannot learn their own
// palettes, so the algorithm leans on these queries throughout.
//
// The structure is rebuilt after coloring steps; each build is one
// aggregation wave over the clique's BFS tree.
type CliquePalette struct {
	// used[c] = number of members of K colored c (index 0 unused).
	used []int32
	// free is the sorted list of colors in L_φ(K).
	free []int32
	// repeats is Σ_c max(used[c]−1, 0): the colorful-matching size M_K
	// measured on the current coloring.
	repeats int
}

// BuildCliquePalette aggregates the used-color multiset of the members of K
// and charges one O(1)-round query-structure build (Lemma 4.8's
// preprocessing: counts travel as O(log n)-bit partial sums up the clique
// tree, pipelined per bandwidth).
func BuildCliquePalette(cg *cluster.CG, c *Coloring, members []int) *CliquePalette {
	return RebuildCliquePalette(nil, cg, c, members)
}

// RebuildCliquePalette is BuildCliquePalette with caller-owned reuse: when cp
// is non-nil its buffers are recycled, so the per-wave rebuilds of the stage
// loops allocate nothing in steady state. The charged cost is identical.
func RebuildCliquePalette(cp *CliquePalette, cg *cluster.CG, c *Coloring, members []int) *CliquePalette {
	if cp == nil {
		cp = &CliquePalette{}
	}
	words := int(c.MaxColor()) + 1
	if cap(cp.used) < words {
		cp.used = make([]int32, words)
	} else {
		cp.used = cp.used[:words]
		for i := range cp.used {
			cp.used[i] = 0
		}
	}
	cp.free = cp.free[:0]
	cp.repeats = 0
	for _, v := range members {
		if col := c.Get(v); col != None {
			cp.used[col]++
		}
	}
	for col := int32(1); col <= c.MaxColor(); col++ {
		switch {
		case cp.used[col] == 0:
			cp.free = append(cp.free, col)
		case cp.used[col] > 1:
			cp.repeats += int(cp.used[col] - 1)
		}
	}
	cg.ChargeHRounds("palette/build", 1, 2*cg.IDBits())
	return cp
}

// FreeCount returns |L_φ(K)|.
func (cp *CliquePalette) FreeCount() int { return len(cp.free) }

// Repeats returns the number of repeated color uses in K (the measured
// colorful-matching quantity M_K = |K ∩ dom φ| − |φ(K)|).
func (cp *CliquePalette) Repeats() int { return cp.repeats }

// UsedCount returns how many members of K use color col.
func (cp *CliquePalette) UsedCount(col int32) int32 {
	if col < 1 || int(col) >= len(cp.used) {
		return 0
	}
	return cp.used[col]
}

// IsUnique reports whether exactly one member of K uses col.
func (cp *CliquePalette) IsUnique(col int32) bool { return cp.UsedCount(col) == 1 }

// CountFreeInRange implements Lemma 4.8(1) for C(v) = L_φ(K): the number of
// free colors in [a, b].
func (cp *CliquePalette) CountFreeInRange(a, b int32) int {
	n := 0
	for _, col := range cp.free {
		if col >= a && col <= b {
			n++
		}
	}
	return n
}

// NthFreeInRange implements Lemma 4.8(2): the i-th (1-based) free color in
// [a, b]. It returns an error when fewer than i free colors exist there.
func (cp *CliquePalette) NthFreeInRange(i int, a, b int32) (int32, error) {
	if i < 1 {
		return 0, fmt.Errorf("coloring: query index %d < 1", i)
	}
	seen := 0
	for _, col := range cp.free {
		if col >= a && col <= b {
			seen++
			if seen == i {
				return col, nil
			}
		}
	}
	return 0, fmt.Errorf("coloring: only %d free colors in [%d,%d], wanted %d", seen, a, b, i)
}

// NthFree returns the i-th free color over the whole space.
func (cp *CliquePalette) NthFree(i int) (int32, error) {
	if i < 1 || i > len(cp.free) {
		return 0, fmt.Errorf("coloring: free index %d out of [1,%d]", i, len(cp.free))
	}
	return cp.free[i-1], nil
}

// Free returns a copy of the free-color list.
func (cp *CliquePalette) Free() []int32 {
	out := make([]int32, len(cp.free))
	copy(out, cp.free)
	return out
}

// FreeView returns the free-color list without copying. The slice aliases
// the palette and is valid until the next rebuild; callers must not mutate
// it. Hot loops use this instead of Free.
func (cp *CliquePalette) FreeView() []int32 { return cp.free }

// ChargeQuery charges one Lemma 4.8 query round (binary-search style, O(1)
// H-rounds with O(log n)-bit messages) to the cost model. Callers batch one
// charge per parallel query wave.
func ChargeQuery(cg *cluster.CG, phase string) {
	cg.ChargeHRounds(phase, 1, 2*cg.IDBits())
}
