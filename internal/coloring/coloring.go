// Package coloring holds the partial-coloring state shared by every stage of
// the algorithm: color assignments, palettes, the three kinds of slack of
// Section 4.1 (degree, temporary, reuse), the clique palette as a queryable
// distributed structure (Lemma 4.8), and proper-coloring verification.
//
// Colors are 1-based: the zero value None means "uncolored" (⊥), and a
// (Δ+1)-coloring uses colors 1..Δ+1. Reserved colors are the prefix 1..r.
//
// # Palette scratch ownership
//
// All palette queries run over a PaletteScratch: a flat []uint64 bitset over
// the color space plus a reusable output buffer. Hot paths own a scratch
// explicitly (one per goroutine) and call its methods — Palette, PaletteSize,
// Slack, ReuseSlack, Load/LoadedAvailable — which never allocate in steady
// state; slices returned by PaletteScratch.Palette alias the scratch and are
// valid only until its next use. The package-level functions of the same
// names keep their allocate-free-to-call signatures by borrowing a scratch
// from an internal pool; only Palette itself still allocates (exactly one
// slice, the caller-owned result).
package coloring

import (
	"fmt"

	"clustercolor/internal/graph"
)

// None is the uncolored sentinel (⊥).
const None int32 = 0

// Coloring is a partial coloring of a graph's vertices.
type Coloring struct {
	colors []int32
	delta  int
}

// New returns the all-uncolored coloring for n vertices with color space
// [1, delta+1].
func New(n, delta int) *Coloring {
	return &Coloring{colors: make([]int32, n), delta: delta}
}

// Delta returns the Δ the color space was sized by.
func (c *Coloring) Delta() int { return c.delta }

// MaxColor returns Δ+1, the largest legal color.
func (c *Coloring) MaxColor() int32 { return int32(c.delta + 1) }

// N returns the number of vertices.
func (c *Coloring) N() int { return len(c.colors) }

// Get returns v's color (None if uncolored).
func (c *Coloring) Get(v int) int32 { return c.colors[v] }

// IsColored reports whether v is colored.
func (c *Coloring) IsColored(v int) bool { return c.colors[v] != None }

// Set colors v. Colors must lie in [1, Δ+1].
func (c *Coloring) Set(v int, col int32) error {
	if col < 1 || col > c.MaxColor() {
		return fmt.Errorf("coloring: color %d out of [1,%d]", col, c.MaxColor())
	}
	c.colors[v] = col
	return nil
}

// Unset resets v to uncolored.
func (c *Coloring) Unset(v int) { c.colors[v] = None }

// DomSize returns |dom φ|, the number of colored vertices.
func (c *Coloring) DomSize() int {
	n := 0
	for _, col := range c.colors {
		if col != None {
			n++
		}
	}
	return n
}

// Clone returns an independent copy.
func (c *Coloring) Clone() *Coloring {
	out := &Coloring{colors: make([]int32, len(c.colors)), delta: c.delta}
	copy(out.colors, c.colors)
	return out
}

// UncoloredDegree returns deg_φ(v) restricted to the active set (nil = all):
// the number of uncolored (active) neighbors.
func UncoloredDegree(g *graph.Graph, c *Coloring, v int, active func(int) bool) int {
	d := 0
	for _, u := range g.Neighbors(v) {
		if c.IsColored(int(u)) {
			continue
		}
		if active != nil && !active(int(u)) {
			continue
		}
		d++
	}
	return d
}

// Palette returns L_φ(v) = [Δ+1] \ φ(N(v)) as a sorted caller-owned slice
// (one allocation). Hot loops use PaletteScratch.Palette instead, which
// reuses a buffer across calls.
func Palette(g *graph.Graph, c *Coloring, v int) []int32 {
	s := pooledScratch()
	out := s.AppendPalette(nil, g, c, v)
	releaseScratch(s)
	return out
}

// PaletteSize returns |L_φ(v)| without materializing the palette and without
// allocating (pooled bitset scratch; popcount instead of a per-call map).
func PaletteSize(g *graph.Graph, c *Coloring, v int) int {
	s := pooledScratch()
	n := s.PaletteSize(g, c, v)
	releaseScratch(s)
	return n
}

// Available reports whether col is in L_φ(v).
func Available(g *graph.Graph, c *Coloring, v int, col int32) bool {
	if col < 1 || col > c.MaxColor() {
		return false
	}
	for _, u := range g.Neighbors(v) {
		if c.Get(int(u)) == col {
			return false
		}
	}
	return true
}

// Slack returns s_φ(v) = |L_φ(v)| − deg_φ(v; active), the slack of
// Section 3.1 with respect to an active subgraph.
func Slack(g *graph.Graph, c *Coloring, v int, active func(int) bool) int {
	s := pooledScratch()
	n := s.Slack(g, c, v, active)
	releaseScratch(s)
	return n
}

// ReuseSlack returns |N(v) ∩ dom φ| − |φ(N(v))|: the number of "repeated
// colors" among v's colored neighbors (Section 4.1's reuse slack).
func ReuseSlack(g *graph.Graph, c *Coloring, v int) int {
	s := pooledScratch()
	n := s.ReuseSlack(g, c, v)
	releaseScratch(s)
	return n
}

// VerifyProper checks that φ is proper: no edge is monochromatic. It returns
// a descriptive error naming the first violation.
func VerifyProper(g *graph.Graph, c *Coloring) error {
	for v := 0; v < g.N(); v++ {
		col := c.Get(v)
		if col == None {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if int(u) > v && c.Get(int(u)) == col {
				return fmt.Errorf("coloring: edge {%d,%d} monochromatic with color %d", v, u, col)
			}
		}
	}
	return nil
}

// VerifyComplete checks that φ is total and proper with colors in [1, Δ+1].
func VerifyComplete(g *graph.Graph, c *Coloring) error {
	for v := 0; v < g.N(); v++ {
		col := c.Get(v)
		if col == None {
			return fmt.Errorf("coloring: vertex %d uncolored", v)
		}
		if col < 1 || col > c.MaxColor() {
			return fmt.Errorf("coloring: vertex %d has color %d outside [1,%d]", v, col, c.MaxColor())
		}
	}
	return VerifyProper(g, c)
}

// CountColors returns the number of distinct colors in use.
func (c *Coloring) CountColors() int {
	distinct := make(map[int32]struct{})
	for _, col := range c.colors {
		if col != None {
			distinct[col] = struct{}{}
		}
	}
	return len(distinct)
}
