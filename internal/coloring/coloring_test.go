package coloring

import (
	"testing"

	"clustercolor/internal/cluster"
	"clustercolor/internal/graph"
	"clustercolor/internal/network"
)

func TestSetGetUnset(t *testing.T) {
	c := New(5, 3)
	if c.IsColored(0) {
		t.Fatal("fresh coloring has colored vertex")
	}
	if err := c.Set(0, 2); err != nil {
		t.Fatal(err)
	}
	if c.Get(0) != 2 || !c.IsColored(0) {
		t.Fatal("Set/Get mismatch")
	}
	c.Unset(0)
	if c.IsColored(0) {
		t.Fatal("Unset failed")
	}
	if err := c.Set(0, 0); err == nil {
		t.Fatal("color 0 accepted")
	}
	if err := c.Set(0, 5); err == nil {
		t.Fatal("color > Δ+1 accepted")
	}
	if c.MaxColor() != 4 || c.Delta() != 3 || c.N() != 5 {
		t.Fatal("accessors wrong")
	}
}

func TestDomSizeAndClone(t *testing.T) {
	c := New(4, 3)
	_ = c.Set(1, 1)
	_ = c.Set(2, 2)
	if c.DomSize() != 2 {
		t.Fatalf("DomSize = %d, want 2", c.DomSize())
	}
	d := c.Clone()
	_ = d.Set(3, 3)
	if c.DomSize() != 2 || d.DomSize() != 3 {
		t.Fatal("Clone not independent")
	}
	if d.CountColors() != 3 {
		t.Fatalf("CountColors = %d, want 3", d.CountColors())
	}
}

func TestPaletteAndAvailability(t *testing.T) {
	g := graph.Star(4) // center 0, leaves 1..3; Δ=3, colors 1..4
	c := New(4, 3)
	_ = c.Set(1, 2)
	_ = c.Set(2, 4)
	pal := Palette(g, c, 0)
	want := []int32{1, 3}
	if len(pal) != 2 || pal[0] != want[0] || pal[1] != want[1] {
		t.Fatalf("Palette = %v, want %v", pal, want)
	}
	if PaletteSize(g, c, 0) != 2 {
		t.Fatalf("PaletteSize = %d", PaletteSize(g, c, 0))
	}
	if Available(g, c, 0, 2) || !Available(g, c, 0, 3) {
		t.Fatal("Available wrong")
	}
	if Available(g, c, 0, 0) || Available(g, c, 0, 9) {
		t.Fatal("out-of-range colors available")
	}
}

func TestUncoloredDegreeWithActiveSet(t *testing.T) {
	g := graph.Star(5)
	c := New(5, 4)
	_ = c.Set(1, 1)
	if got := UncoloredDegree(g, c, 0, nil); got != 3 {
		t.Fatalf("UncoloredDegree = %d, want 3", got)
	}
	active := func(v int) bool { return v != 2 }
	if got := UncoloredDegree(g, c, 0, active); got != 2 {
		t.Fatalf("restricted UncoloredDegree = %d, want 2", got)
	}
}

func TestSlackDefinitions(t *testing.T) {
	// Star center with two leaves colored the same: one reuse slack unit.
	g := graph.Star(4)
	c := New(4, 3)
	_ = c.Set(1, 2)
	_ = c.Set(2, 2)
	if got := ReuseSlack(g, c, 0); got != 1 {
		t.Fatalf("ReuseSlack = %d, want 1", got)
	}
	// |L(0)| = 3 (colors 1,3,4), uncolored degree 1 → slack 2.
	if got := Slack(g, c, 0, nil); got != 2 {
		t.Fatalf("Slack = %d, want 2", got)
	}
}

func TestVerifyProperAndComplete(t *testing.T) {
	g := graph.Path(3)
	c := New(3, 2)
	_ = c.Set(0, 1)
	_ = c.Set(1, 2)
	if err := VerifyProper(g, c); err != nil {
		t.Fatal(err)
	}
	if err := VerifyComplete(g, c); err == nil {
		t.Fatal("incomplete coloring passed VerifyComplete")
	}
	_ = c.Set(2, 1)
	if err := VerifyComplete(g, c); err != nil {
		t.Fatal(err)
	}
	_ = c.Set(2, 2) // conflict with vertex 1
	if err := VerifyProper(g, c); err == nil {
		t.Fatal("monochromatic edge passed VerifyProper")
	}
}

func newTestCG(t *testing.T) *cluster.CG {
	t.Helper()
	h := graph.Clique(6)
	rng := graph.NewRand(1)
	exp, err := graph.Expand(h, graph.ExpandSpec{Topology: graph.TopologySingleton}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := network.NewCostModel(64)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := cluster.New(h, exp, cost)
	if err != nil {
		t.Fatal(err)
	}
	return cg
}

func TestCliquePaletteQueries(t *testing.T) {
	cg := newTestCG(t)
	c := New(6, 5) // colors 1..6
	members := []int{0, 1, 2, 3, 4, 5}
	_ = c.Set(0, 2)
	_ = c.Set(1, 2) // repeated color
	_ = c.Set(2, 5)
	cp := BuildCliquePalette(cg, c, members)
	if cp.FreeCount() != 4 { // free: 1,3,4,6
		t.Fatalf("FreeCount = %d, want 4", cp.FreeCount())
	}
	if cp.Repeats() != 1 {
		t.Fatalf("Repeats = %d, want 1", cp.Repeats())
	}
	if cp.UsedCount(2) != 2 || cp.UsedCount(5) != 1 || cp.UsedCount(1) != 0 {
		t.Fatal("UsedCount wrong")
	}
	if cp.IsUnique(2) || !cp.IsUnique(5) {
		t.Fatal("IsUnique wrong")
	}
	if got := cp.CountFreeInRange(3, 6); got != 3 { // 3,4,6
		t.Fatalf("CountFreeInRange = %d, want 3", got)
	}
	col, err := cp.NthFreeInRange(2, 3, 6)
	if err != nil || col != 4 {
		t.Fatalf("NthFreeInRange(2,3,6) = %d, %v; want 4", col, err)
	}
	if _, err := cp.NthFreeInRange(9, 3, 6); err == nil {
		t.Fatal("out-of-range query succeeded")
	}
	if _, err := cp.NthFreeInRange(0, 1, 6); err == nil {
		t.Fatal("index 0 accepted")
	}
	col, err = cp.NthFree(1)
	if err != nil || col != 1 {
		t.Fatalf("NthFree(1) = %d, %v", col, err)
	}
	if _, err := cp.NthFree(5); err == nil {
		t.Fatal("NthFree past end accepted")
	}
	free := cp.Free()
	if len(free) != 4 || free[3] != 6 {
		t.Fatalf("Free = %v", free)
	}
	// Queries and builds charge rounds.
	before := cg.Cost().Rounds()
	ChargeQuery(cg, "palette/test")
	if cg.Cost().Rounds() <= before {
		t.Fatal("ChargeQuery charged nothing")
	}
	if cp.UsedCount(0) != 0 || cp.UsedCount(99) != 0 {
		t.Fatal("out-of-range UsedCount not zero")
	}
}

func TestCliquePaletteMatchesBruteForce(t *testing.T) {
	cg := newTestCG(t)
	rng := graph.NewRand(5)
	c := New(6, 5)
	for v := 0; v < 6; v++ {
		if rng.IntN(2) == 0 {
			_ = c.Set(v, int32(rng.IntN(6))+1)
		}
	}
	members := []int{0, 1, 2, 3, 4, 5}
	cp := BuildCliquePalette(cg, c, members)
	// Brute-force L(K).
	used := map[int32]int{}
	for _, v := range members {
		if col := c.Get(v); col != None {
			used[col]++
		}
	}
	wantFree := 0
	wantRepeats := 0
	for col := int32(1); col <= 6; col++ {
		if used[col] == 0 {
			wantFree++
		} else {
			wantRepeats += used[col] - 1
		}
	}
	if cp.FreeCount() != wantFree || cp.Repeats() != wantRepeats {
		t.Fatalf("FreeCount,Repeats = %d,%d; want %d,%d", cp.FreeCount(), cp.Repeats(), wantFree, wantRepeats)
	}
}
