package matching

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"clustercolor/internal/cluster"
)

// Relays implements Lemma 9.2: in the low-degree regime (Δ = O(log² n)),
// random groups are unavailable, so each matched anti-edge needs a dedicated
// relay — a distinct vertex adjacent to both endpoints — to ferry the
// endpoints' MultiColorTrial messages. The relays are found by sampling
// candidate vertices and computing a maximal matching in the bipartite
// graph between anti-edges and eligible candidates (the paper runs
// Fischer's CONGEST maximal matching; we run the equivalent
// propose-and-accept rounds with the same round charging).
//
// It returns one relay per pair (aligned with pairs) or an error if some
// pair has no eligible candidate at all.
func Relays(cg *cluster.CG, members []int, pairs [][2]int, phase string, rng *rand.Rand) ([]int, error) {
	if len(pairs) == 0 {
		return nil, nil
	}
	endpoint := make(map[int]bool, 2*len(pairs))
	for _, p := range pairs {
		endpoint[p[0]] = true
		endpoint[p[1]] = true
	}
	// Candidate sampling (Lemma 9.2 samples w.p. 3k/Δ; at simulation scale
	// we admit every non-endpoint member and let the matching choose —
	// the bipartite structure is identical, only denser).
	eligible := make([][]int, len(pairs))
	for i, p := range pairs {
		for _, w := range members {
			if endpoint[w] {
				continue
			}
			if cg.H.HasEdge(w, p[0]) && cg.H.HasEdge(w, p[1]) {
				eligible[i] = append(eligible[i], w)
			}
		}
		if len(eligible[i]) == 0 {
			return nil, fmt.Errorf("matching: pair %d (%v) has no eligible relay", i, p)
		}
		sort.Ints(eligible[i])
	}
	relay := make([]int, len(pairs))
	for i := range relay {
		relay[i] = -1
	}
	taken := make(map[int]int) // relay vertex → pair index
	// Propose-and-accept maximal matching: O(log)-round shape, charged as
	// Fischer's O(log² Δ · log n) with O(log log n)-bit messages.
	maxRounds := 4 * len(pairs)
	for round := 0; round < maxRounds; round++ {
		cg.ChargeHRounds(phase+"/propose", 2, cg.IDBits())
		type proposal struct{ pair, vertex int }
		var proposals []proposal
		done := true
		for i := range pairs {
			if relay[i] >= 0 {
				continue
			}
			done = false
			var free []int
			for _, w := range eligible[i] {
				if _, used := taken[w]; !used {
					free = append(free, w)
				}
			}
			if len(free) == 0 {
				return nil, fmt.Errorf("matching: pair %d starved of relays", i)
			}
			proposals = append(proposals, proposal{pair: i, vertex: free[rng.IntN(len(free))]})
		}
		if done {
			break
		}
		// Each proposed vertex accepts the smallest pair index.
		accepted := make(map[int]int)
		for _, pr := range proposals {
			if cur, ok := accepted[pr.vertex]; !ok || pr.pair < cur {
				accepted[pr.vertex] = pr.pair
			}
		}
		for w, i := range accepted {
			relay[i] = w
			taken[w] = i
		}
	}
	for i, w := range relay {
		if w < 0 {
			return nil, fmt.Errorf("matching: pair %d unmatched after %d rounds", i, maxRounds)
		}
	}
	return relay, nil
}
