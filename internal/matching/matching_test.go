package matching

import (
	"math/bits"
	"testing"

	"clustercolor/internal/cluster"
	"clustercolor/internal/coloring"
	"clustercolor/internal/graph"
	"clustercolor/internal/network"
)

func testCG(t *testing.T, h *graph.Graph) *cluster.CG {
	t.Helper()
	rng := graph.NewRand(2)
	exp, err := graph.Expand(h, graph.ExpandSpec{Topology: graph.TopologySingleton}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := network.NewCostModel(64)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := cluster.New(h, exp, cost)
	if err != nil {
		t.Fatal(err)
	}
	return cg
}

// denseWithAntiEdges builds one almost-clique of size n with a planted
// perfect anti-matching: vertices 2i and 2i+1 are non-adjacent for
// i < plantedPairs, everything else is complete.
func denseWithAntiEdges(t *testing.T, n, plantedPairs int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	isAnti := func(u, v int) bool {
		if u > v {
			u, v = v, u
		}
		return v == u+1 && u%2 == 0 && u/2 < plantedPairs
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !isAnti(u, v) {
				if err := b.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return b.Build()
}

func irange(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

func TestSamplingCreatesRepeats(t *testing.T) {
	// A clique of 60 with 20 planted anti-pairs and Δ ≈ 59: random trials
	// should find several same-colored pairs.
	g := denseWithAntiEdges(t, 60, 20)
	cg := testCG(t, g)
	col := coloring.New(g.N(), g.MaxDegree())
	m, err := Sampling(cg, col, SamplingOptions{
		Phase:   "cm",
		Members: irange(0, 60),
		Rounds:  20,
	}, graph.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	if m == 0 {
		t.Fatal("sampling produced no repeated colors")
	}
	if err := coloring.VerifyProper(g, col); err != nil {
		t.Fatal(err)
	}
	// Lemma 4.9: a vertex is colored iff it provides reuse slack (its
	// color is shared within K).
	counts := map[int32]int{}
	for v := 0; v < 60; v++ {
		if c := col.Get(v); c != coloring.None {
			counts[c]++
		}
	}
	for c, n := range counts {
		if n < 2 {
			t.Fatalf("color %d used by a single vertex (no reuse slack)", c)
		}
	}
	// Measured M_K must match the coloring.
	cp := coloring.BuildCliquePalette(cg, col, irange(0, 60))
	if cp.Repeats() != m {
		t.Fatalf("reported repeats %d != measured %d", m, cp.Repeats())
	}
}

func TestSamplingAvoidsReservedColors(t *testing.T) {
	g := denseWithAntiEdges(t, 40, 15)
	cg := testCG(t, g)
	col := coloring.New(g.N(), g.MaxDegree())
	if _, err := Sampling(cg, col, SamplingOptions{
		Phase:       "cm",
		Members:     irange(0, 40),
		ReservedMax: 10,
		Rounds:      15,
	}, graph.NewRand(5)); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 40; v++ {
		if c := col.Get(v); c != coloring.None && c <= 10 {
			t.Fatalf("vertex %d took reserved color %d", v, c)
		}
	}
}

func TestSamplingValidation(t *testing.T) {
	g := graph.Clique(4)
	cg := testCG(t, g)
	col := coloring.New(4, 3)
	if _, err := Sampling(cg, col, SamplingOptions{Phase: "x"}, graph.NewRand(1)); err == nil {
		t.Fatal("empty clique accepted")
	}
	if _, err := Sampling(cg, col, SamplingOptions{Phase: "x", Members: irange(0, 4), ReservedMax: 4}, graph.NewRand(1)); err == nil {
		t.Fatal("reserved covering space accepted")
	}
}

func TestSamplingTargetStopsEarly(t *testing.T) {
	g := denseWithAntiEdges(t, 60, 25)
	cg := testCG(t, g)
	col := coloring.New(g.N(), g.MaxDegree())
	m, err := Sampling(cg, col, SamplingOptions{
		Phase:         "cm",
		Members:       irange(0, 60),
		Rounds:        100,
		TargetRepeats: 3,
	}, graph.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	if m < 3 {
		t.Fatalf("target not reached: %d", m)
	}
}

func TestFingerprintMatchingFindsPlantedAntiEdges(t *testing.T) {
	// The cabal regime: large clique, few anti-edges (a_K = O(log n)).
	n := 80
	planted := 6
	g := denseWithAntiEdges(t, n, planted)
	cg := testCG(t, g)
	k := 12 * bits.Len(uint(n)) // Θ(log n) trials with generous constant
	pairs, err := FingerprintMatching(cg, FingerprintOptions{
		Phase:   "fm",
		Members: irange(0, n),
		Trials:  k,
	}, graph.NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 {
		t.Fatal("no anti-edges found")
	}
	// Every returned pair must be a planted anti-edge (they are the only
	// non-edges), and pairs must be vertex-disjoint (checked inside, but
	// re-verify).
	seen := map[int]bool{}
	for _, p := range pairs {
		if g.HasEdge(p[0], p[1]) {
			t.Fatalf("pair %v is an edge", p)
		}
		if seen[p[0]] || seen[p[1]] {
			t.Fatalf("pair %v reuses a vertex", p)
		}
		seen[p[0]] = true
		seen[p[1]] = true
	}
}

func TestFingerprintMatchingSizeTracksAntiDegree(t *testing.T) {
	// Lemma 6.2 shape: more planted anti-edges → more matched pairs, up to
	// the Θ(log n) cap. Compare 2 vs 12 planted pairs over seeds.
	n := 100
	k := 10 * bits.Len(uint(n))
	total2, total12 := 0, 0
	for seed := uint64(0); seed < 5; seed++ {
		for _, planted := range []int{2, 12} {
			g := denseWithAntiEdges(t, n, planted)
			cg := testCG(t, g)
			pairs, err := FingerprintMatching(cg, FingerprintOptions{
				Phase:   "fm",
				Members: irange(0, n),
				Trials:  k,
			}, graph.NewRand(100+seed))
			if err != nil {
				t.Fatal(err)
			}
			if planted == 2 {
				total2 += len(pairs)
			} else {
				total12 += len(pairs)
			}
		}
	}
	if total12 <= total2 {
		t.Fatalf("matching size did not grow with anti-degree: %d (12 planted) vs %d (2 planted)", total12, total2)
	}
}

func TestFingerprintMatchingValidation(t *testing.T) {
	g := graph.Clique(4)
	cg := testCG(t, g)
	if _, err := FingerprintMatching(cg, FingerprintOptions{Phase: "x", Members: irange(0, 4)}, graph.NewRand(1)); err == nil {
		t.Fatal("zero trials accepted")
	}
	if _, err := FingerprintMatching(cg, FingerprintOptions{Phase: "x", Members: []int{0}, Trials: 8}, graph.NewRand(1)); err == nil {
		t.Fatal("single-vertex cabal accepted")
	}
}

func TestFingerprintMatchingOnTrueCliqueFindsNothing(t *testing.T) {
	g := graph.Clique(50)
	cg := testCG(t, g)
	pairs, err := FingerprintMatching(cg, FingerprintOptions{
		Phase:   "fm",
		Members: irange(0, 50),
		Trials:  64,
	}, graph.NewRand(11))
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 0 {
		t.Fatalf("found %d anti-edges in a complete clique", len(pairs))
	}
}

func TestColorPairsProducesProperSameColoredPairs(t *testing.T) {
	n := 60
	g := denseWithAntiEdges(t, n, 8)
	cg := testCG(t, g)
	col := coloring.New(g.N(), g.MaxDegree())
	pairs, err := FingerprintMatching(cg, FingerprintOptions{
		Phase:   "fm",
		Members: irange(0, n),
		Trials:  80,
	}, graph.NewRand(13))
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 {
		t.Skip("no pairs found at this seed")
	}
	colored, err := ColorPairs(cg, col, pairs, 5, "color", graph.NewRand(15))
	if err != nil {
		t.Fatal(err)
	}
	if colored != len(pairs) {
		t.Fatalf("colored %d/%d pairs", colored, len(pairs))
	}
	if err := coloring.VerifyProper(g, col); err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		cu, cw := col.Get(p[0]), col.Get(p[1])
		if cu == coloring.None || cu != cw {
			t.Fatalf("pair %v colors %d,%d not equal", p, cu, cw)
		}
		if cu <= 5 {
			t.Fatalf("pair %v used reserved color %d", p, cu)
		}
	}
}

func TestColorPairsValidation(t *testing.T) {
	g := graph.Clique(4)
	cg := testCG(t, g)
	col := coloring.New(4, 3)
	if _, err := ColorPairs(cg, col, nil, 4, "x", graph.NewRand(1)); err == nil {
		t.Fatal("reserved covering space accepted")
	}
}
