// Package matching computes colorful matchings in almost-cliques: sets of
// same-colored non-adjacent vertex pairs that create the reuse slack needed
// when a clique has more vertices than palette colors.
//
// Two regimes, as in the paper:
//
//   - Sampling (Lemma 4.9 / Algorithm 19, after [FGH+24]): when the average
//     anti-degree is Ω(log n), O(1/ε) rounds of random color trials produce
//     Ω(a_K/ε) repeated colors.
//
//   - FingerprintMatching (Section 6, Algorithm 7, Proposition 4.15): in the
//     densest cabals, anti-edges are found by locating trials whose unique
//     maximum fingerprint is invisible to some vertex's neighborhood — those
//     vertices are anti-neighbors of the maximum holder. A min-wise hash
//     samples one anti-neighbor per trial, and the discovered anti-edges
//     form a matching that is then colored with MultiColorTrial semantics.
package matching

import (
	"fmt"
	"math/rand/v2"

	"clustercolor/internal/cluster"
	"clustercolor/internal/coloring"
	"clustercolor/internal/fingerprint"
	"clustercolor/internal/prng"
	"clustercolor/internal/trials"
)

// SamplingOptions configures the Lemma 4.9 algorithm.
type SamplingOptions struct {
	Phase string
	// Members is the almost-clique K.
	Members []int
	// ReservedMax: matched pairs never use colors 1..ReservedMax.
	ReservedMax int32
	// Rounds is the number of sampling rounds (paper: O(1/ε); default 8).
	Rounds int
	// TargetRepeats stops early once this many repeated colors exist
	// (0 = run all rounds).
	TargetRepeats int
}

// Sampling runs the random-trial colorful matching. It returns M_K, the
// number of repeated-color units created (each unit is one extra vertex on
// an already-used matching color). Only vertices that provide reuse slack
// are colored (Lemma 4.9's guarantee).
func Sampling(cg *cluster.CG, col *coloring.Coloring, opts SamplingOptions, rng *rand.Rand) (int, error) {
	if len(opts.Members) == 0 {
		return 0, fmt.Errorf("matching: empty clique")
	}
	rounds := opts.Rounds
	if rounds <= 0 {
		rounds = 8
	}
	if opts.ReservedMax >= col.MaxColor() {
		return 0, fmt.Errorf("matching: reserved prefix %d leaves no colors", opts.ReservedMax)
	}
	inK := make(map[int]bool, len(opts.Members))
	for _, v := range opts.Members {
		inK[v] = true
	}
	// One O(log n)-bit gather round before the trials: resolving a round's
	// groups is a radius-2 computation inside K (a member's acceptance can
	// hinge on an anti-neighbor it only hears through a common neighbor).
	// The distsim conformance harness measured the machine-level protocol at
	// one H-round more than announce+respond alone; this charge keeps the
	// cost model honest about it.
	cg.ChargeHRounds(opts.Phase+"/gather", 1, 2*cg.IDBits())
	repeats := 0
	for r := 0; r < rounds; r++ {
		if opts.TargetRepeats > 0 && repeats >= opts.TargetRepeats {
			break
		}
		// Each uncolored member samples one non-reserved color: one
		// O(log Δ)-bit announce round plus one response round.
		cg.ChargeHRounds(opts.Phase+"/announce", 1, 2*cg.IDBits())
		cg.ChargeHRounds(opts.Phase+"/respond", 1, 2*cg.IDBits())
		byColor := make(map[int32][]int)
		for _, v := range opts.Members {
			if col.IsColored(v) {
				continue
			}
			c := opts.ReservedMax + 1 + int32(rng.IntN(int(col.MaxColor()-opts.ReservedMax)))
			byColor[c] = append(byColor[c], v)
		}
		for c, cands := range byColor {
			// Keep candidates whose neighbors don't already use c.
			var ok []int
			for _, v := range cands {
				if coloring.Available(cg.H, col, v, c) {
					ok = append(ok, v)
				}
			}
			// Greedy independent subset among the candidates (anti-edge
			// groups): same-colored members must be pairwise non-adjacent.
			var group []int
			for _, v := range ok {
				indep := true
				for _, u := range group {
					if cg.H.HasEdge(v, u) {
						indep = false
						break
					}
				}
				if indep {
					group = append(group, v)
				}
			}
			if len(group) < 2 {
				continue // coloring a lone vertex provides no reuse slack
			}
			for _, v := range group {
				if err := col.Set(v, c); err != nil {
					return repeats, fmt.Errorf("matching: sampling adopt: %w", err)
				}
			}
			repeats += len(group) - 1
		}
	}
	return repeats, nil
}

// FingerprintOptions configures Algorithm 7.
type FingerprintOptions struct {
	Phase string
	// Members is the cabal K.
	Members []int
	// Trials is k (paper: Θ(log n / (ετ)); default 6·log₂ n scaled by the
	// caller).
	Trials int
	// TargetPairs stops the scan once this many matched anti-edges exist
	// (0 = use all trials).
	TargetPairs int
}

// FingerprintMatching runs Algorithm 7 and returns the matched anti-edges
// (u_i, w_i): vertex-disjoint non-adjacent pairs inside K.
func FingerprintMatching(cg *cluster.CG, opts FingerprintOptions, rng *rand.Rand) ([][2]int, error) {
	k := opts.Trials
	if k <= 0 {
		return nil, fmt.Errorf("matching: trial count %d must be positive", k)
	}
	members := opts.Members
	if len(members) < 2 {
		return nil, fmt.Errorf("matching: cabal of size %d too small", len(members))
	}
	inK := make(map[int]bool, len(members))
	for _, v := range members {
		inK[v] = true
	}
	// Step 2: fingerprints of N(v) ∩ K and of K. One aggregation wave;
	// deviation-encoded payloads (Lemma 5.6) charged below.
	samples := make(map[int]fingerprint.Samples, len(members))
	for _, v := range members {
		samples[v] = fingerprint.NewSamples(k, rng)
	}
	yK := fingerprint.NewSketch(k)
	for _, v := range members {
		if err := yK.AddSamples(samples[v]); err != nil {
			return nil, err
		}
	}
	yV := make(map[int]fingerprint.Sketch, len(members))
	maxBits := yK.EncodedBits()
	for _, v := range members {
		s := fingerprint.NewSketch(k)
		for _, u := range cg.H.Neighbors(v) {
			if inK[int(u)] {
				if err := s.AddSamples(samples[int(u)]); err != nil {
					return nil, err
				}
			}
		}
		yV[v] = s
		if b := s.EncodedBits(); b > maxBits {
			maxBits = b
		}
	}
	cg.ChargeHRounds(opts.Phase+"/fingerprints", 1, maxBits)
	// Step 3: local identifiers via BFS enumeration — O(1) rounds.
	cg.ChargeHRounds(opts.Phase+"/enumerate", 2, 2*cg.IDBits())
	// Step 4: per-trial screening by O(k)-bit aggregated bitmaps.
	cg.ChargeHRounds(opts.Phase+"/screen", 1, k+8)
	uniqueMaxCount := make(map[int]int)
	type trial struct {
		u    int   // unique maximum holder
		anti []int // A_i: detected anti-neighbors of u
	}
	var kept []trial
	for i := 0; i < k; i++ {
		// Unique maximum?
		maxVal := yK[i]
		var holder, count int
		for _, v := range members {
			if samples[v][i] == maxVal {
				holder = v
				count++
				if count > 1 {
					break
				}
			}
		}
		if count != 1 {
			continue
		}
		uniqueMaxCount[holder]++
		if uniqueMaxCount[holder] > 1 {
			continue // third condition of Step 4
		}
		// Anti-neighbors: Y_v_i ≠ Y_K_i (excluding the holder itself).
		var anti []int
		for _, v := range members {
			if v != holder && yV[v][i] != maxVal {
				anti = append(anti, v)
			}
		}
		if len(anti) == 0 {
			continue // second condition: some non-edge must be visible
		}
		kept = append(kept, trial{u: holder, anti: anti})
	}
	// Steps 5–9: random groups relay; each trial samples one anti-neighbor
	// with a min-wise hash. Group communication is O(1) rounds with
	// O(log n)-bit hash seeds.
	cg.ChargeHRounds(opts.Phase+"/minwise", 3, 2*cg.IDBits())
	type pick struct{ u, w int }
	var picks []pick
	for _, tr := range kept {
		h, err := prng.NewMinWiseHash(cg.H.N(), 0.5, rng)
		if err != nil {
			return nil, err
		}
		w := h.ArgMin(tr.anti)
		if w < 0 {
			continue
		}
		picks = append(picks, pick{u: tr.u, w: w})
	}
	// Step 10: discard trials whose unique maximum was sampled as an
	// anti-neighbor elsewhere.
	sampledAsW := make(map[int]bool)
	for _, p := range picks {
		sampledAsW[p.w] = true
	}
	// Step 11: each w keeps one trial.
	usedW := make(map[int]bool)
	var pairs [][2]int
	for _, p := range picks {
		if sampledAsW[p.u] {
			continue
		}
		if usedW[p.w] {
			continue
		}
		usedW[p.w] = true
		pairs = append(pairs, [2]int{p.u, p.w})
		if opts.TargetPairs > 0 && len(pairs) >= opts.TargetPairs {
			break
		}
	}
	// Structural invariant check: pairs are anti-edges and vertex-disjoint.
	seen := make(map[int]bool)
	for _, p := range pairs {
		if cg.H.HasEdge(p[0], p[1]) {
			return nil, fmt.Errorf("matching: pair {%d,%d} is an edge, not an anti-edge", p[0], p[1])
		}
		if seen[p[0]] || seen[p[1]] {
			return nil, fmt.Errorf("matching: pair {%d,%d} reuses a matched vertex", p[0], p[1])
		}
		seen[p[0]] = true
		seen[p[1]] = true
	}
	return pairs, nil
}

// ColorPairs colors each matched anti-edge with a shared non-reserved color
// (Algorithm 6 Steps 2–3): the pair behaves as one MultiColorTrial vertex
// whose palette is the intersection of its endpoints' palettes. Returns the
// number of pairs colored.
func ColorPairs(cg *cluster.CG, col *coloring.Coloring, pairs [][2]int, reservedMax int32, phase string, rng *rand.Rand) (int, error) {
	if reservedMax >= col.MaxColor() {
		return 0, fmt.Errorf("matching: reserved prefix %d leaves no colors", reservedMax)
	}
	space := trials.RangeSpace(reservedMax+1, col.MaxColor())
	colored := 0
	// Pairs behave like super-vertices; O(1) TryColor rounds followed by
	// exhaustive fallback keep this at O(log* n) shape while guaranteeing
	// termination at laptop scale.
	const maxRounds = 40
	done := make([]bool, len(pairs))
	for r := 0; r < maxRounds && colored < len(pairs); r++ {
		cg.ChargeHRounds(phase+"/try", 2, 2*cg.IDBits())
		tried := make(map[int]int32, len(pairs)) // pair index → color
		for i, p := range pairs {
			if done[i] {
				continue
			}
			c := space[rng.IntN(len(space))]
			if coloring.Available(cg.H, col, p[0], c) && coloring.Available(cg.H, col, p[1], c) {
				tried[i] = c
			}
		}
		for i, p := range pairs {
			c, ok := tried[i]
			if !ok {
				continue
			}
			conflict := false
			for j, q := range pairs {
				cj, trying := tried[j]
				if !trying || j >= i || cj != c {
					continue
				}
				// An earlier pair trying the same color blocks i if they
				// touch or are adjacent.
				if adjacentPairs(cg, p, q) {
					conflict = true
					break
				}
			}
			if conflict {
				continue
			}
			if err := col.Set(p[0], c); err != nil {
				return colored, err
			}
			if err := col.Set(p[1], c); err != nil {
				return colored, err
			}
			done[i] = true
			colored++
		}
	}
	return colored, nil
}

func adjacentPairs(cg *cluster.CG, p, q [2]int) bool {
	for _, a := range p {
		for _, b := range q {
			if a == b || cg.H.HasEdge(a, b) {
				return true
			}
		}
	}
	return false
}
