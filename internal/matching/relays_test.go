package matching

import (
	"testing"

	"clustercolor/internal/graph"
)

func TestRelaysAssignsDistinctAdjacentRelays(t *testing.T) {
	n := 60
	planted := 10
	g := denseWithAntiEdges(t, n, planted)
	cg := testCG(t, g)
	pairs, err := FingerprintMatching(cg, FingerprintOptions{
		Phase:   "fm",
		Members: irange(0, n),
		Trials:  100,
	}, graph.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) < 2 {
		t.Skip("too few pairs at this seed")
	}
	relays, err := Relays(cg, irange(0, n), pairs, "relay", graph.NewRand(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(relays) != len(pairs) {
		t.Fatalf("%d relays for %d pairs", len(relays), len(pairs))
	}
	seen := map[int]bool{}
	endpoint := map[int]bool{}
	for _, p := range pairs {
		endpoint[p[0]] = true
		endpoint[p[1]] = true
	}
	for i, w := range relays {
		if seen[w] {
			t.Fatalf("relay %d reused", w)
		}
		seen[w] = true
		if endpoint[w] {
			t.Fatalf("relay %d is an anti-edge endpoint", w)
		}
		if !cg.H.HasEdge(w, pairs[i][0]) || !cg.H.HasEdge(w, pairs[i][1]) {
			t.Fatalf("relay %d not adjacent to both endpoints of %v", w, pairs[i])
		}
	}
}

func TestRelaysEmptyPairs(t *testing.T) {
	g := graph.Clique(5)
	cg := testCG(t, g)
	relays, err := Relays(cg, irange(0, 5), nil, "relay", graph.NewRand(1))
	if err != nil || relays != nil {
		t.Fatalf("empty pairs: %v, %v", relays, err)
	}
}

func TestRelaysFailsWithoutCandidates(t *testing.T) {
	// A 4-cycle: vertices 0-1-2-3-0; the anti-edge {0,2} has common
	// neighbors 1 and 3, but restrict members to the endpoints only.
	g := graph.Cycle(4)
	cg := testCG(t, g)
	if _, err := Relays(cg, []int{0, 2}, [][2]int{{0, 2}}, "relay", graph.NewRand(1)); err == nil {
		t.Fatal("relay found with no eligible members")
	}
	// With all members, vertex 1 or 3 serves.
	relays, err := Relays(cg, []int{0, 1, 2, 3}, [][2]int{{0, 2}}, "relay", graph.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if relays[0] != 1 && relays[0] != 3 {
		t.Fatalf("relay = %d, want 1 or 3", relays[0])
	}
}

func TestRelaysManyPairsContention(t *testing.T) {
	// More pairs than trivially separable: planted anti-matching of 15 in
	// an 80-clique; every candidate serves every pair, so contention is
	// maximal and the matching must still be a system of distinct
	// representatives.
	n := 80
	g := denseWithAntiEdges(t, n, 15)
	cg := testCG(t, g)
	var pairs [][2]int
	for i := 0; i < 15; i++ {
		pairs = append(pairs, [2]int{2 * i, 2*i + 1})
	}
	relays, err := Relays(cg, irange(0, n), pairs, "relay", graph.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, w := range relays {
		if seen[w] {
			t.Fatal("duplicate relay under contention")
		}
		seen[w] = true
	}
}
