// Package slackgen implements SlackGeneration (Algorithm 18, Proposition
// 4.5): every non-cabal vertex activates with a small constant probability
// and tries one uniform random color outside the reserved prefix. Pairs of
// same-colored non-adjacent vertices in a neighborhood create the reuse
// slack the later stages depend on. Slack generation is brittle — it must
// run before anything else is colored, colors only a small fraction of each
// almost-clique, and never touches reserved colors — and all three
// guarantees are enforced here.
package slackgen

import (
	"fmt"
	"math/rand/v2"

	"clustercolor/internal/cluster"
	"clustercolor/internal/coloring"
	"clustercolor/internal/trials"
)

// Options configures SlackGeneration.
type Options struct {
	// Activation is p_g, the self-activation probability (paper: 1/200;
	// laptop-scale default 0.1 when zero).
	Activation float64
	// ReservedMax is the largest reserved color (paper: 300εΔ); tried
	// colors are drawn from [ReservedMax+1, Δ+1].
	ReservedMax int32
	// Exclude marks vertices that must stay uncolored (V_cabal).
	Exclude func(v int) bool
}

// Result reports what slack generation achieved.
type Result struct {
	// Colored is the number of vertices colored.
	Colored int
}

// Run executes one slack-generation step on the cluster graph. The coloring
// must be empty (Proposition 4.5 requires slack generation to go first).
func Run(cg *cluster.CG, col *coloring.Coloring, opts Options, rng *rand.Rand) (*Result, error) {
	if col.DomSize() != 0 {
		return nil, fmt.Errorf("slackgen: coloring already has %d colored vertices; slack generation must run first", col.DomSize())
	}
	if opts.ReservedMax < 0 || opts.ReservedMax >= col.MaxColor() {
		return nil, fmt.Errorf("slackgen: reserved prefix %d leaves no tryable colors in [1,%d]", opts.ReservedMax, col.MaxColor())
	}
	p := opts.Activation
	if p <= 0 {
		p = 0.1
	}
	space := trials.RangeSpace(opts.ReservedMax+1, col.MaxColor())
	active := func(v int) bool {
		return opts.Exclude == nil || !opts.Exclude(v)
	}
	colored, err := trials.TryColorRound(cg, col, trials.TryColorOptions{
		Phase:      "slackgen",
		Active:     active,
		Space:      func(v int) []int32 { return space },
		Activation: p,
	}, rng)
	if err != nil {
		return nil, err
	}
	// Postconditions of Proposition 4.5 that are checkable structurally.
	for v := 0; v < cg.H.N(); v++ {
		c := col.Get(v)
		if c == coloring.None {
			continue
		}
		if c <= opts.ReservedMax {
			return nil, fmt.Errorf("slackgen: vertex %d took reserved color %d", v, c)
		}
		if opts.Exclude != nil && opts.Exclude(v) {
			return nil, fmt.Errorf("slackgen: excluded (cabal) vertex %d was colored", v)
		}
	}
	return &Result{Colored: colored}, nil
}
