package slackgen

import (
	"testing"

	"clustercolor/internal/cluster"
	"clustercolor/internal/coloring"
	"clustercolor/internal/graph"
	"clustercolor/internal/network"
)

func testCG(t *testing.T, h *graph.Graph) *cluster.CG {
	t.Helper()
	rng := graph.NewRand(2)
	exp, err := graph.Expand(h, graph.ExpandSpec{Topology: graph.TopologySingleton}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := network.NewCostModel(64)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := cluster.New(h, exp, cost)
	if err != nil {
		t.Fatal(err)
	}
	return cg
}

func TestRunColorsSomeVerticesProperly(t *testing.T) {
	rng := graph.NewRand(3)
	h := graph.MustGNP(200, 0.2, rng)
	cg := testCG(t, h)
	col := coloring.New(h.N(), h.MaxDegree())
	res, err := Run(cg, col, Options{Activation: 0.3, ReservedMax: 3}, graph.NewRand(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Colored == 0 {
		t.Fatal("slack generation colored nothing")
	}
	if err := coloring.VerifyProper(h, col); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < h.N(); v++ {
		if c := col.Get(v); c != coloring.None && c <= 3 {
			t.Fatalf("vertex %d took reserved color %d", v, c)
		}
	}
}

func TestRunGeneratesReuseSlackOnSparseVertices(t *testing.T) {
	// Proposition 4.5's shape: sparse (high-sparsity) vertices should see
	// repeated colors among neighbors after one trial wave. A star center
	// with many leaves is the extreme sparse vertex.
	h := graph.Star(401)
	cg := testCG(t, h)
	col := coloring.New(h.N(), h.MaxDegree())
	if _, err := Run(cg, col, Options{Activation: 0.5}, graph.NewRand(5)); err != nil {
		t.Fatal(err)
	}
	if got := coloring.ReuseSlack(h, col, 0); got < 10 {
		t.Fatalf("star center reuse slack = %d, want substantial (Ω(Δ) regime)", got)
	}
}

func TestRunExcludesCabalVertices(t *testing.T) {
	h := graph.Clique(20)
	cg := testCG(t, h)
	col := coloring.New(h.N(), h.MaxDegree())
	cabal := func(v int) bool { return v < 10 }
	if _, err := Run(cg, col, Options{Activation: 1, Exclude: cabal}, graph.NewRand(6)); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 10; v++ {
		if col.IsColored(v) {
			t.Fatalf("cabal vertex %d colored by slack generation", v)
		}
	}
}

func TestRunRejectsNonEmptyColoring(t *testing.T) {
	h := graph.Path(3)
	cg := testCG(t, h)
	col := coloring.New(3, 2)
	if err := col.Set(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(cg, col, Options{}, graph.NewRand(1)); err == nil {
		t.Fatal("non-empty coloring accepted")
	}
}

func TestRunRejectsBadReservedPrefix(t *testing.T) {
	h := graph.Path(3)
	cg := testCG(t, h)
	col := coloring.New(3, 2) // colors 1..3
	if _, err := Run(cg, col, Options{ReservedMax: 3}, graph.NewRand(1)); err == nil {
		t.Fatal("reserved prefix covering all colors accepted")
	}
	if _, err := Run(cg, col, Options{ReservedMax: -1}, graph.NewRand(1)); err == nil {
		t.Fatal("negative reserved prefix accepted")
	}
}

func TestRunColorsOnlySmallFraction(t *testing.T) {
	// Property 3 of Proposition 4.5: with the paper's activation 1/200,
	// only a small fraction of each clique is colored.
	h := graph.Clique(200)
	cg := testCG(t, h)
	col := coloring.New(h.N(), h.MaxDegree())
	res, err := Run(cg, col, Options{Activation: 1.0 / 200}, graph.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.Colored > 20 {
		t.Fatalf("slack generation colored %d/200 vertices (want ≤ |K|/10 at p=1/200)", res.Colored)
	}
}
