package clustercolor

import (
	"testing"
)

// FuzzColor runs the whole pipeline on arbitrary small graphs and seeds:
// whatever (n, seed, edge list) the fuzzer invents, Color must return a
// verified total proper (Δ+1)-coloring with non-negative round counts —
// never a panic, never an improper or partial coloring.
func FuzzColor(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{8, 1, 0, 1, 1, 2, 2, 3, 3, 0, 4, 5})
	f.Add([]byte{40, 3})            // edgeless graph
	f.Add([]byte{5, 7, 0, 1, 0, 1}) // duplicate edges
	// A dense blob: decodes to a ~clique-ish instance on few vertices.
	f.Add([]byte{6, 9, 0, 1, 0, 2, 0, 3, 0, 4, 1, 2, 1, 3, 1, 4, 2, 3, 2, 4, 3, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		n := int(data[0]%48) + 2
		seed := uint64(data[1])
		b := NewGraphBuilder(n)
		for i := 2; i+1 < len(data) && i < 202; i += 2 {
			u, v := int(data[i])%n, int(data[i+1])%n
			if u == v {
				continue
			}
			if err := b.AddEdge(u, v); err != nil {
				t.Fatalf("AddEdge(%d,%d) on n=%d: %v", u, v, n, err)
			}
		}
		h := b.Build()
		res, err := Color(h, Options{Seed: seed})
		if err != nil {
			t.Fatalf("Color failed on n=%d m=%d seed=%d: %v", h.N(), h.M(), seed, err)
		}
		if err := Verify(h, res.Colors()); err != nil {
			t.Fatalf("output fails verification on n=%d m=%d seed=%d: %v", h.N(), h.M(), seed, err)
		}
		if res.Rounds() < 0 {
			t.Fatalf("negative round count %d", res.Rounds())
		}
		st := res.Stats()
		if st.FallbackRounds < 0 || st.FallbackRounds > st.Rounds {
			t.Fatalf("fallback rounds %d outside [0,%d]", st.FallbackRounds, st.Rounds)
		}
	})
}
