module clustercolor

go 1.22
