package clustercolor

import "testing"

// figure1Instance reproduces Figure 1's communication graph: machines
// partitioned into 4 clusters; H is the induced cluster graph.
func figure1Instance() (*Graph, []int) {
	// 10 machines: cluster 0 = {0,1,2}, 1 = {3,4}, 2 = {5,6,7}, 3 = {8,9}.
	b := NewGraphBuilder(10)
	edges := [][2]int{
		{0, 1}, {1, 2}, // cluster 0 internal (path)
		{3, 4},                 // cluster 1 internal
		{5, 6}, {6, 7}, {5, 7}, // cluster 2 internal (triangle)
		{8, 9}, // cluster 3 internal
		// Inter-cluster links (including a redundant pair 0↔2).
		{2, 3}, {4, 5}, {7, 8}, {9, 0}, {1, 5},
	}
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			panic(err)
		}
	}
	g := b.Build()
	clusterOf := []int{0, 0, 0, 1, 1, 2, 2, 2, 3, 3}
	return g, clusterOf
}

func TestColorClusteredFigure1(t *testing.T) {
	g, clusterOf := figure1Instance()
	h, err := ContractedGraph(g, clusterOf)
	if err != nil {
		t.Fatal(err)
	}
	// H is the 4-cycle plus the chord 0-2: edges {0,1},{1,2},{2,3},{3,0},{0,2}.
	wantEdges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}, {0, 2}}
	if h.M() != len(wantEdges) {
		t.Fatalf("H has %d edges, want %d", h.M(), len(wantEdges))
	}
	for _, e := range wantEdges {
		if !h.HasEdge(e[0], e[1]) {
			t.Fatalf("H missing edge %v", e)
		}
	}
	res, err := ColorClustered(g, clusterOf, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(h, res.Colors()); err != nil {
		t.Fatal(err)
	}
}

func TestColorClusteredValidation(t *testing.T) {
	g, clusterOf := figure1Instance()
	if _, err := ColorClustered(g, clusterOf[:5], Options{}); err == nil {
		t.Fatal("short assignment accepted")
	}
	bad := append([]int(nil), clusterOf...)
	bad[0] = -1
	if _, err := ColorClustered(g, bad, Options{}); err == nil {
		t.Fatal("negative cluster accepted")
	}
	sparseIDs := append([]int(nil), clusterOf...)
	sparseIDs[0] = 9 // cluster ids 0..9 but most empty
	if _, err := ColorClustered(g, sparseIDs, Options{}); err == nil {
		t.Fatal("non-dense cluster ids accepted")
	}
	// Disconnected cluster: machines 0 and 7 as one cluster.
	disc := append([]int(nil), clusterOf...)
	disc[0] = 2
	if _, err := ColorClustered(g, disc, Options{}); err == nil {
		t.Fatal("disconnected cluster accepted")
	}
}

func TestColorClusteredBFSBallDecomposition(t *testing.T) {
	// The network-decomposition scenario: grow BFS balls over a random
	// network, contract them, and color the contracted graph.
	g := mustGNP(t, 400, 0.015, 17)
	clusterOf := bfsBalls(g, 2)
	res, err := ColorClustered(g, clusterOf, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	h, err := ContractedGraph(g, clusterOf)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(h, res.Colors()); err != nil {
		t.Fatal(err)
	}
	// The cluster coloring induces a valid "cluster-distinct" labelling of
	// machines: adjacent machines of different clusters differ.
	for m := 0; m < g.N(); m++ {
		for _, m2 := range g.Neighbors(m) {
			cu, cv := clusterOf[m], clusterOf[int(m2)]
			if cu != cv && res.ColorOf(cu) == res.ColorOf(cv) {
				t.Fatalf("adjacent clusters %d,%d share color", cu, cv)
			}
		}
	}
}

// bfsBalls greedily partitions g into BFS balls of the given radius.
func bfsBalls(g *Graph, radius int) []int {
	clusterOf := make([]int, g.N())
	for i := range clusterOf {
		clusterOf[i] = -1
	}
	next := 0
	for s := 0; s < g.N(); s++ {
		if clusterOf[s] >= 0 {
			continue
		}
		id := next
		next++
		clusterOf[s] = id
		frontier := []int{s}
		for r := 0; r < radius; r++ {
			var nf []int
			for _, v := range frontier {
				for _, u := range g.Neighbors(v) {
					if clusterOf[u] < 0 {
						clusterOf[u] = id
						nf = append(nf, int(u))
					}
				}
			}
			frontier = nf
		}
	}
	return clusterOf
}

func TestColorBaselines(t *testing.T) {
	h := mustGNP(t, 200, 0.08, 19)
	for _, kind := range []BaselineKind{LubyBaseline, PaletteSparsificationBaseline} {
		res, err := ColorBaseline(h, kind, Options{Seed: 7})
		if err != nil {
			t.Fatalf("baseline %d: %v", kind, err)
		}
		if err := Verify(h, res.Colors()); err != nil {
			t.Fatalf("baseline %d: %v", kind, err)
		}
		if res.Rounds() <= 0 {
			t.Fatalf("baseline %d recorded no rounds", kind)
		}
	}
	if _, err := ColorBaseline(h, BaselineKind(99), Options{}); err == nil {
		t.Fatal("unknown baseline accepted")
	}
}

func TestColorDistance2Facade(t *testing.T) {
	g := mustGNP(t, 150, 0.025, 23)
	res, err := ColorDistance2(g, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Power(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(h2, res.Colors()); err != nil {
		t.Fatal(err)
	}
	colors := res.Colors()
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			if colors[v] == colors[int(u)] {
				t.Fatalf("distance-1 conflict %d,%d", v, u)
			}
		}
	}
	if res.NumColors() > h2.MaxDegree()+1 {
		t.Fatalf("used %d colors, budget %d", res.NumColors(), h2.MaxDegree()+1)
	}
}
