GO ?= go

.PHONY: build test race fuzz bench bench-smoke bench-engine bench-graph bench-color bench-distsim bench-acd bench-sketch bench-shard bench-speedup bench-speedup-smoke bench-compare tables benchjson vet fmt check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The whole module: the per-clique stage loops of internal/core now run
# parallel, so the race detector must see every package, not a hand-picked
# subset.
race:
	$(GO) test -race ./...

# Native fuzz smoke: each target for a bounded wall-clock slice. The corpus
# lives under testdata/fuzz and grows as CI finds inputs.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzColor$$' -fuzztime 10s .
	$(GO) test -run '^$$' -fuzz '^FuzzBuilder$$' -fuzztime 10s ./internal/graph
	$(GO) test -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime 10s ./internal/fingerprint
	$(GO) test -run '^$$' -fuzz '^FuzzWave$$' -fuzztime 10s ./internal/distsim
	$(GO) test -run '^$$' -fuzz '^FuzzACD$$' -fuzztime 10s ./internal/acd
	$(GO) test -run '^$$' -fuzz '^FuzzSketchMerge$$' -fuzztime 10s ./internal/sketch
	$(GO) test -run '^$$' -fuzz '^FuzzShardStream$$' -fuzztime 10s ./internal/graph

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# One iteration of every benchmark in the module: catches bit-rotted
# benchmark code without paying for statistically meaningful timings.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

bench-graph:
	$(GO) run ./cmd/benchtables -graphbench BENCH_graph.json

bench-color:
	$(GO) run ./cmd/benchtables -colorbench BENCH_color.json

bench-distsim:
	$(GO) run ./cmd/benchtables -distsimbench BENCH_distsim.json

# The full decomposition matrix includes the million-vertex GNP row; expect
# multi-gigabyte sketch arenas and minutes of single-core wave time.
bench-acd:
	$(GO) run ./cmd/benchtables -acdbench BENCH_acd.json

# Sketch-engine microbench: merge kernels in isolation, collect waves at
# parallelism 1/2/4/NumCPU, and the bits-per-vertex/accuracy profile of every
# estimator variant.
bench-sketch:
	$(GO) run ./cmd/benchtables -sketchbench BENCH_sketch.json

# Partitioned-substrate grid: the decomposition at shard counts 1/2/4/8 ×
# parallelism 1/2/4/NumCPU against an unsharded reference, plus the
# streaming-construction rows (GNP edge streams up to n=10⁷ partitioned with
# no global CSR). Includes million- and ten-million-vertex rows — expect the
# better part of an hour single-core and ~90 GB of peak sketch arenas.
bench-shard:
	$(GO) run ./cmd/benchtables -shardbench BENCH_shard.json -shardstream 10000000

# Speedup-curve surface: per-stage wall-clock at parallelism 1/2/4/NumCPU for
# every pipeline mode (coloring stages, decomposition waves + profile, sketch
# collect, sharded exchange), written as BENCH_speedup.json. On a box that
# cannot schedule more than one effective level the artifact is annotated
# degraded_grid=true (loudly); add -require-full-grid to refuse instead.
bench-speedup:
	$(GO) run ./cmd/benchtables -speedupbench BENCH_speedup.json

# CI-sized speedup smoke under the race detector: one curve per pipeline mode
# (the 50000 cap keeps the smallest sketch workload) on the 1,2 grid.
# -require-full-grid turns a collapsed grid — a runner that cannot actually
# schedule 2 workers — into a hard failure instead of a silently degraded
# artifact, so the smoke also asserts no grid level was dropped.
bench-speedup-smoke:
	$(GO) run -race ./cmd/benchtables -speedupbench /tmp/BENCH_speedup_smoke.json -speedupn 50000 -speedupgrid 1,2 -require-full-grid

# Per-row ns/op and allocs/op delta table between two BENCH_*.json artifacts
# of the same schema (and the same gomaxprocs — anything else is refused).
# Defaults to the decomposition trajectory: the checked-in pre-narrowing
# baseline against the current artifact. Override either end:
#   make bench-compare OLD=BENCH_sketch_old.json NEW=BENCH_sketch.json
OLD ?= BENCH_acd_baseline.json
NEW ?= BENCH_acd.json
bench-compare:
	$(GO) run ./cmd/benchtables -compare $(OLD) $(NEW)

tables:
	$(GO) run ./cmd/benchtables

# Round-engine + experiment-runner microbench (BENCH_engine.json), part of
# the bench-* family; benchjson is the historical alias.
bench-engine:
	$(GO) run ./cmd/benchtables -enginebench BENCH_engine.json

benchjson: bench-engine

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

check: fmt vet build test
