GO ?= go

.PHONY: build test race bench tables benchjson vet fmt check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/network ./internal/distsim ./internal/experiments

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

tables:
	$(GO) run ./cmd/benchtables

benchjson:
	$(GO) run ./cmd/benchtables -enginebench BENCH_engine.json

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

check: fmt vet build test
