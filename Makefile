GO ?= go

.PHONY: build test race bench bench-smoke bench-graph tables benchjson vet fmt check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/network ./internal/distsim ./internal/experiments

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# One iteration of every benchmark in the module: catches bit-rotted
# benchmark code without paying for statistically meaningful timings.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

bench-graph:
	$(GO) run ./cmd/benchtables -graphbench BENCH_graph.json

tables:
	$(GO) run ./cmd/benchtables

benchjson:
	$(GO) run ./cmd/benchtables -enginebench BENCH_engine.json

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

check: fmt vet build test
