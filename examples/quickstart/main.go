// Quickstart: color the paper's Figure 1 instance — a communication network
// of machines partitioned into four clusters — and then a larger random
// graph, printing the verified colorings and their round costs.
package main

import (
	"fmt"
	"os"

	"clustercolor"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// --- Part 1: Figure 1 of the paper -------------------------------
	// Ten machines wired into four connected clusters; two clusters can
	// be linked by several machine links (H-edges collapse them).
	b := clustercolor.NewGraphBuilder(10)
	for _, e := range [][2]int{
		{0, 1}, {1, 2}, // cluster A: a path of three machines
		{3, 4},                 // cluster B
		{5, 6}, {6, 7}, {5, 7}, // cluster C: a triangle
		{8, 9},                                 // cluster D
		{2, 3}, {4, 5}, {7, 8}, {9, 0}, {1, 5}, // inter-cluster links
	} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			return err
		}
	}
	g := b.Build()
	clusterOf := []int{0, 0, 0, 1, 1, 2, 2, 2, 3, 3}
	h, err := clustercolor.ContractedGraph(g, clusterOf)
	if err != nil {
		return err
	}
	fmt.Printf("Figure 1: %d machines → cluster graph H with %d nodes, %d edges (Δ=%d)\n",
		g.N(), h.N(), h.M(), h.MaxDegree())
	res, err := clustercolor.ColorClustered(g, clusterOf, clustercolor.Options{Seed: 1})
	if err != nil {
		return err
	}
	if err := clustercolor.Verify(h, res.Colors()); err != nil {
		return err
	}
	for v := 0; v < h.N(); v++ {
		fmt.Printf("  cluster %c → color %d\n", 'A'+v, res.ColorOf(v))
	}
	fmt.Printf("  verified proper; %d simulated rounds\n\n", res.Rounds())

	// --- Part 2: a larger random instance ----------------------------
	big, err := clustercolor.GNP(1000, 0.02, 42)
	if err != nil {
		return err
	}
	res2, err := clustercolor.Color(big, clustercolor.Options{
		Topology:           clustercolor.StarCluster,
		MachinesPerCluster: 3,
		Seed:               7,
	})
	if err != nil {
		return err
	}
	if err := clustercolor.Verify(big, res2.Colors()); err != nil {
		return err
	}
	fmt.Printf("G(1000, 0.02) with star clusters: Δ=%d, colors=%d, rounds=%d\n",
		big.MaxDegree(), res2.NumColors(), res2.Rounds())
	fmt.Printf("stage breakdown:\n%s", res2.CostSummary())
	return nil
}
