// CONGEST head-to-head: with singleton clusters the model degenerates to
// CONGEST (H = G), where the paper's algorithm can be compared against the
// classic Johansson/Luby random trials and FGH+24-style palette
// sparsification under identical round accounting.
package main

import (
	"fmt"
	"os"

	"clustercolor"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "congest:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("CONGEST (H = G) round comparison, G(n, 80/n) — high-degree regime:")
	fmt.Println("(the paper's claim is about growth: ours stays near-flat in n,")
	fmt.Println(" Luby pays Θ(log n) waves, palette sparsification Θ(log² n) machinery)")
	fmt.Printf("%8s %8s %10s %10s %10s\n", "n", "Delta", "ours", "luby", "palette-sp")
	for _, n := range []int{400, 800, 1600} {
		h, err := clustercolor.GNP(n, 80.0/float64(n), uint64(n))
		if err != nil {
			return err
		}
		opts := clustercolor.Options{Seed: 9}
		ours, err := clustercolor.Color(h, opts)
		if err != nil {
			return err
		}
		luby, err := clustercolor.ColorBaseline(h, clustercolor.LubyBaseline, opts)
		if err != nil {
			return err
		}
		ps, err := clustercolor.ColorBaseline(h, clustercolor.PaletteSparsificationBaseline, opts)
		if err != nil {
			return err
		}
		for name, r := range map[string]*clustercolor.Result{"ours": ours, "luby": luby, "ps": ps} {
			if err := clustercolor.Verify(h, r.Colors()); err != nil {
				return fmt.Errorf("%s on n=%d: %w", name, n, err)
			}
		}
		fmt.Printf("%8d %8d %10d %10d %10d\n",
			n, h.MaxDegree(), ours.Rounds(), luby.Rounds(), ps.Rounds())
	}
	fmt.Println("\nall colorings verified proper with ≤ Δ+1 colors")
	return nil
}
