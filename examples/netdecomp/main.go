// Network-decomposition scenario (Section 1.1): algorithms like RG20/GGR21
// grow low-diameter clusters over a network and then need to operate on the
// contracted cluster graph. This example grows BFS balls over a random
// network, contracts them, and (Δ+1)-colors the resulting cluster graph —
// the exact workflow Definition 3.1 formalizes.
package main

import (
	"fmt"
	"os"

	"clustercolor"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "netdecomp:", err)
		os.Exit(1)
	}
}

func run() error {
	g, err := clustercolor.GNP(2000, 0.003, 123)
	if err != nil {
		return err
	}
	clusterOf := bfsBalls(g, 2)
	h, err := clustercolor.ContractedGraph(g, clusterOf)
	if err != nil {
		return err
	}
	fmt.Printf("network: %d machines, %d links\n", g.N(), g.M())
	fmt.Printf("decomposition: %d radius-2 clusters; cluster graph Δ=%d\n", h.N(), h.MaxDegree())

	res, err := clustercolor.ColorClustered(g, clusterOf, clustercolor.Options{Seed: 5})
	if err != nil {
		return err
	}
	if err := clustercolor.Verify(h, res.Colors()); err != nil {
		return err
	}
	// The cluster coloring partitions the decomposition into color classes
	// of mutually non-adjacent clusters — the "phases" a network
	// decomposition algorithm would process independently.
	classSize := map[int]int{}
	for v := 0; v < h.N(); v++ {
		classSize[res.ColorOf(v)]++
	}
	largest := 0
	for _, s := range classSize {
		if s > largest {
			largest = s
		}
	}
	fmt.Printf("coloring: %d classes (budget Δ+1 = %d), largest class %d clusters\n",
		res.NumColors(), h.MaxDegree()+1, largest)
	fmt.Printf("simulated rounds: %d\n", res.Rounds())
	return nil
}

// bfsBalls partitions g into BFS balls of the given radius.
func bfsBalls(g *clustercolor.Graph, radius int) []int {
	clusterOf := make([]int, g.N())
	for i := range clusterOf {
		clusterOf[i] = -1
	}
	next := 0
	for s := 0; s < g.N(); s++ {
		if clusterOf[s] >= 0 {
			continue
		}
		id := next
		next++
		clusterOf[s] = id
		frontier := []int{s}
		for r := 0; r < radius; r++ {
			var nf []int
			for _, v := range frontier {
				for _, u := range g.Neighbors(v) {
					if clusterOf[u] < 0 {
						clusterOf[u] = id
						nf = append(nf, int(u))
					}
				}
			}
			frontier = nf
		}
	}
	return clusterOf
}
