// Distance-2 coloring (Corollary 1.3): frequency assignment in a wireless
// network. Two transmitters within two hops of each other must use distinct
// frequencies, i.e. we (Δ²+1)-color the square of the communication graph.
// Cluster graphs make the square colorable without materializing it at any
// single node.
package main

import (
	"fmt"
	"os"

	"clustercolor"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "distance2:", err)
		os.Exit(1)
	}
}

func run() error {
	// A "radio" network: 600 transmitters in the unit square, hearing
	// range 0.05.
	g, err := clustercolor.RandomGeometric(600, 0.05, 99)
	if err != nil {
		return err
	}
	h2, err := clustercolor.Power(g, 2)
	if err != nil {
		return err
	}
	fmt.Printf("network: n=%d, Δ=%d; conflict graph G²: Δ²=%d\n",
		g.N(), g.MaxDegree(), h2.MaxDegree())

	// The Appendix A virtual-graph route: overlapping closed-neighborhood
	// supports, every round charged with the congestion-2 overhead.
	res, err := clustercolor.ColorDistance2(g, clustercolor.Options{Seed: 3})
	if err != nil {
		return err
	}
	if err := clustercolor.Verify(h2, res.Colors()); err != nil {
		return err
	}
	colors := res.Colors()
	// Double-check the frequency-assignment property on the base graph.
	conflicts := 0
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			if colors[v] == colors[int(u)] {
				conflicts++
			}
			for _, w := range g.Neighbors(int(u)) {
				if int(w) != v && colors[v] == colors[int(w)] {
					conflicts++
				}
			}
		}
	}
	fmt.Printf("frequencies used: %d (budget Δ²+1 = %d)\n", res.NumColors(), h2.MaxDegree()+1)
	fmt.Printf("distance-2 conflicts: %d\n", conflicts)
	fmt.Printf("simulated rounds: %d (path: %s)\n", res.Rounds(), res.Stats().Path)
	if conflicts != 0 {
		return fmt.Errorf("frequency assignment has conflicts")
	}
	return nil
}
